// Package core implements the MultiView technique of the Millipage paper:
// mapping one memory object into several virtual-address views so that
// sub-page objects (minipages) sharing a physical page get independent
// protection through the ordinary virtual-memory mechanism.
//
// The package has three parts:
//
//   - Layout: the pure geometry of the views — where each application view
//     and the privileged view sit in the virtual address space. The paper
//     configures DSM addresses so views map to the same addresses in every
//     process; Layout is that shared configuration.
//
//   - Region: a Layout instantiated on one host — a memory object mapped
//     n+1 times into the host's address space (n application views plus
//     the always-ReadWrite privileged view), with per-minipage protection
//     control.
//
//   - MPT: the minipage table — the allocator and directory geometry kept
//     by the manager host: which <offset, length> region of which view
//     each minipage occupies, with dynamic-layout allocation and the
//     paper's chunking switch.
package core

import (
	"fmt"

	"millipage/internal/vm"
)

// DefaultBase is where the first application view is placed in each
// process's virtual address space. The concrete value is arbitrary; what
// matters is that every host uses the same Layout, so minipage addresses
// need no translation between hosts (Section 2.4 of the paper).
const DefaultBase uint64 = 0x2000_0000

// viewGuard is the unmapped gap left between consecutive views, so stray
// accesses just past a view fault as unmapped rather than silently hitting
// the next view.
const viewGuard = 1 << 20

// Layout describes the view geometry for a shared region: n application
// views plus one privileged view, each mapping the whole memory object,
// at identical addresses in every process.
type Layout struct {
	ObjectSize int    // bytes in the memory object (multiple of page size)
	NumPages   int    // ObjectSize / vm.PageSize
	NumViews   int    // application views (the paper's n)
	Base       uint64 // VA of view 0
	Stride     uint64 // distance between consecutive view bases
}

// NewLayout computes the view geometry for a shared region of sharedSize
// bytes with numViews application views.
func NewLayout(sharedSize, numViews int) (Layout, error) {
	if sharedSize <= 0 {
		return Layout{}, fmt.Errorf("core: shared size %d must be positive", sharedSize)
	}
	if numViews < 1 {
		return Layout{}, fmt.Errorf("core: need at least 1 view, got %d", numViews)
	}
	pages := (sharedSize + vm.PageSize - 1) / vm.PageSize
	objSize := pages * vm.PageSize
	stride := uint64(objSize) + viewGuard
	// Round the stride to a page multiple (it already is: objSize and
	// viewGuard are page multiples), and sanity-check the 32-bit-era
	// address-space budget the paper ran under (about 1.63 GB of user VA).
	l := Layout{
		ObjectSize: objSize,
		NumPages:   pages,
		NumViews:   numViews,
		Base:       DefaultBase,
		Stride:     stride,
	}
	return l, nil
}

// VASpan reports the total virtual address space the layout consumes —
// the quantity that limited the paper's experiments to n <= 1.63GB/N.
func (l Layout) VASpan() uint64 { return uint64(l.NumViews+1) * l.Stride }

// ViewBase returns the base VA of application view i.
func (l Layout) ViewBase(i int) uint64 {
	if i < 0 || i >= l.NumViews {
		panic(fmt.Sprintf("core: view %d out of range [0,%d)", i, l.NumViews))
	}
	return l.Base + uint64(i)*l.Stride
}

// PrivBase returns the base VA of the privileged view.
func (l Layout) PrivBase() uint64 { return l.Base + uint64(l.NumViews)*l.Stride }

// AppAddr returns the VA of object offset off as seen through view i.
func (l Layout) AppAddr(view int, off int) uint64 {
	return l.ViewBase(view) + uint64(off)
}

// PrivAddr returns the VA of object offset off through the privileged
// view — the paper's addr2priv translation.
func (l Layout) PrivAddr(off int) uint64 { return l.PrivBase() + uint64(off) }

// Decompose maps a VA back to (view, offset). ok is false if va does not
// fall inside any application view's object range. The privileged view is
// reported as view == NumViews.
func (l Layout) Decompose(va uint64) (view int, off int, ok bool) {
	if va < l.Base {
		return 0, 0, false
	}
	rel := va - l.Base
	view = int(rel / l.Stride)
	if view > l.NumViews {
		return 0, 0, false
	}
	off64 := rel % l.Stride
	if off64 >= uint64(l.ObjectSize) {
		return 0, 0, false // in the guard gap
	}
	return view, int(off64), true
}

// Region is a Layout realized on one host: a local memory object mapped
// once per view into the host's address space. Application views start
// NoAccess (nothing is present until the DSM protocol brings it in); the
// privileged view is permanently ReadWrite for the DSM server threads.
type Region struct {
	L   Layout
	AS  *vm.AddressSpace
	Obj *vm.MemObject
}

// NewRegion creates the host-local memory object and maps all views.
func NewRegion(l Layout, as *vm.AddressSpace) (*Region, error) {
	obj := vm.NewMemObject(l.ObjectSize)
	// Reserve the whole span (view 0 through the privileged view) up
	// front: mapping n+1 views one at a time would otherwise re-allocate
	// and copy the dense page table once per view.
	span := int((l.PrivBase()-l.Base)/vm.PageSize) + l.NumPages
	as.Reserve(l.Base, span)
	for i := 0; i < l.NumViews; i++ {
		if err := as.MapView(l.ViewBase(i), obj, 0, l.NumPages, vm.NoAccess); err != nil {
			return nil, fmt.Errorf("core: mapping view %d: %w", i, err)
		}
	}
	if err := as.MapView(l.PrivBase(), obj, 0, l.NumPages, vm.ReadWrite); err != nil {
		return nil, fmt.Errorf("core: mapping privileged view: %w", err)
	}
	return &Region{L: l, AS: as, Obj: obj}, nil
}

// pageSpan returns the vpage-aligned VA and page count covering
// [base, base+size).
func pageSpan(base uint64, size int) (va uint64, nPages int) {
	va = base &^ uint64(vm.PageSize-1)
	end := base + uint64(size)
	nPages = int((end - va + vm.PageSize - 1) / vm.PageSize)
	return va, nPages
}

// Protect sets the protection of every vpage covering the minipage at
// app-view address base with the given size. Only the minipage's own view
// is touched; all other views of the same frames keep their protections —
// the property MultiView exists to provide.
func (r *Region) Protect(base uint64, size int, prot vm.Prot) error {
	va, n := pageSpan(base, size)
	return r.AS.Protect(va, n, prot)
}

// ProtOf returns the protection of the vpage containing the app-view
// address base.
func (r *Region) ProtOf(base uint64) (vm.Prot, error) { return r.AS.ProtOf(base) }

// PrivBytes returns the minipage's backing bytes via the privileged view,
// aliased (zero copy), given its app-view base address and size. It is
// how DSM server threads read and write minipage contents regardless of
// the application-view protections.
func (r *Region) PrivBytes(base uint64, size int) ([]byte, error) {
	_, off, ok := r.L.Decompose(base)
	if !ok {
		return nil, fmt.Errorf("core: %#x is not a view address", base)
	}
	var out []byte
	err := r.AS.BypassRange(r.L.PrivAddr(off), size, func(chunk []byte) error {
		if out == nil && len(chunk) == size {
			out = chunk // common case: within one page, alias directly
			return nil
		}
		out = append(out, chunk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WritePriv copies data into the minipage at app-view address base via the
// privileged view — the paper's atomic user-mode minipage update: the
// application views can be NoAccess while this proceeds.
func (r *Region) WritePriv(base uint64, data []byte) error {
	_, off, ok := r.L.Decompose(base)
	if !ok {
		return fmt.Errorf("core: %#x is not a view address", base)
	}
	i := 0
	return r.AS.BypassRange(r.L.PrivAddr(off), len(data), func(chunk []byte) error {
		copy(chunk, data[i:])
		i += len(chunk)
		return nil
	})
}

// ReadPriv copies the minipage at app-view address base out via the
// privileged view.
func (r *Region) ReadPriv(base uint64, size int) ([]byte, error) {
	buf := make([]byte, size)
	if err := r.ReadPrivInto(base, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadPrivInto copies len(buf) bytes of the minipage at app-view address
// base into buf via the privileged view — the allocation-free form of
// ReadPriv for callers with a reusable scratch buffer.
func (r *Region) ReadPrivInto(base uint64, buf []byte) error {
	_, off, ok := r.L.Decompose(base)
	if !ok {
		return fmt.Errorf("core: %#x is not a view address", base)
	}
	i := 0
	return r.AS.BypassRange(r.L.PrivAddr(off), len(buf), func(chunk []byte) error {
		copy(buf[i:], chunk)
		i += len(chunk)
		return nil
	})
}
