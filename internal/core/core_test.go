package core

import (
	"errors"
	"testing"
	"testing/quick"

	"millipage/internal/vm"
)

func mustLayout(t *testing.T, size, views int) Layout {
	t.Helper()
	l, err := NewLayout(size, views)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutGeometry(t *testing.T) {
	l := mustLayout(t, 100_000, 4)
	if l.ObjectSize%vm.PageSize != 0 || l.ObjectSize < 100_000 {
		t.Fatalf("ObjectSize = %d", l.ObjectSize)
	}
	if l.NumPages != l.ObjectSize/vm.PageSize {
		t.Fatalf("NumPages = %d", l.NumPages)
	}
	// Views must not overlap.
	for i := 0; i < l.NumViews; i++ {
		end := l.ViewBase(i) + uint64(l.ObjectSize)
		next := l.PrivBase()
		if i+1 < l.NumViews {
			next = l.ViewBase(i + 1)
		}
		if end > next {
			t.Fatalf("view %d [%#x,%#x) overlaps next at %#x", i, l.ViewBase(i), end, next)
		}
	}
}

func TestLayoutDecomposeRoundTrip(t *testing.T) {
	l := mustLayout(t, 64*vm.PageSize, 7)
	for view := 0; view < l.NumViews; view++ {
		for _, off := range []int{0, 1, vm.PageSize - 1, vm.PageSize, l.ObjectSize - 1} {
			v, o, ok := l.Decompose(l.AppAddr(view, off))
			if !ok || v != view || o != off {
				t.Fatalf("Decompose(AppAddr(%d,%d)) = (%d,%d,%v)", view, off, v, o, ok)
			}
		}
	}
	// Privileged view decomposes as view == NumViews.
	v, o, ok := l.Decompose(l.PrivAddr(123))
	if !ok || v != l.NumViews || o != 123 {
		t.Fatalf("Decompose(priv) = (%d,%d,%v)", v, o, ok)
	}
	// Guard gap addresses do not decompose.
	if _, _, ok := l.Decompose(l.ViewBase(0) + uint64(l.ObjectSize) + 1); ok {
		t.Fatal("guard-gap address decomposed")
	}
	if _, _, ok := l.Decompose(l.Base - 1); ok {
		t.Fatal("address below base decomposed")
	}
}

func TestRegionMapsAllViews(t *testing.T) {
	l := mustLayout(t, 4*vm.PageSize, 3)
	as := vm.NewAddressSpace()
	r, err := NewRegion(l, as)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if p, err := as.ProtOf(l.ViewBase(i)); err != nil || p != vm.NoAccess {
			t.Fatalf("view %d prot = %v, %v", i, p, err)
		}
	}
	if p, err := as.ProtOf(l.PrivBase()); err != nil || p != vm.ReadWrite {
		t.Fatalf("priv prot = %v, %v", p, err)
	}
	// All views alias the same object.
	r.Obj.Frame(1)[5] = 0x7E
	for i := 0; i < 3; i++ {
		pte, ok := as.Lookup(l.ViewBase(i) + vm.PageSize)
		if !ok || pte.Obj != r.Obj || pte.Frame != 1 {
			t.Fatalf("view %d page 1 pte = %+v ok=%v", i, pte, ok)
		}
	}
}

func TestRegionProtectIsPerView(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 3)
	as := vm.NewAddressSpace()
	r, err := NewRegion(l, as)
	if err != nil {
		t.Fatal(err)
	}
	// A 100-byte minipage in view 1, page 0.
	base := l.AppAddr(1, 50)
	if err := r.Protect(base, 100, vm.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if p, _ := as.ProtOf(l.ViewBase(1)); p != vm.ReadWrite {
		t.Fatal("view 1 page 0 not upgraded")
	}
	for _, v := range []int{0, 2} {
		if p, _ := as.ProtOf(l.ViewBase(v)); p != vm.NoAccess {
			t.Fatalf("view %d page 0 affected by view 1 protect", v)
		}
	}
	// A minipage straddling pages protects both vpages.
	base2 := l.AppAddr(0, vm.PageSize-10)
	if err := r.Protect(base2, 20, vm.ReadOnly); err != nil {
		t.Fatal(err)
	}
	if p, _ := as.ProtOf(l.ViewBase(0)); p != vm.ReadOnly {
		t.Fatal("first vpage not protected")
	}
	if p, _ := as.ProtOf(l.ViewBase(0) + vm.PageSize); p != vm.ReadOnly {
		t.Fatal("second vpage not protected")
	}
}

func TestPrivViewReadWrite(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 2)
	as := vm.NewAddressSpace()
	r, err := NewRegion(l, as)
	if err != nil {
		t.Fatal(err)
	}
	base := l.AppAddr(1, 4090) // straddles page 0/1
	if err := r.WritePriv(base, []byte("0123456789AB")); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadPriv(base, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456789AB" {
		t.Fatalf("got %q", got)
	}
	// And the app view aliases it (once readable).
	if err := r.Protect(base, 12, vm.ReadOnly); err != nil {
		t.Fatal(err)
	}
	buf, err := as.ReadAt(nil, base, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123456789AB" {
		t.Fatalf("app view sees %q", buf)
	}
}

func TestAllocAssignsDistinctViewsPerPage(t *testing.T) {
	l := mustLayout(t, 16*vm.PageSize, 16)
	mpt := NewMPT(l, GrainMinipage, 1)
	// 256-byte allocations: 16 per page, one view each (the SOR shape).
	seen := map[[2]int]bool{} // (page, view) pairs must be unique
	for i := 0; i < 64; i++ {
		mp, va, err := mpt.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if mp.Size != 256 {
			t.Fatalf("size = %d", mp.Size)
		}
		key := [2]int{mp.Off / vm.PageSize, mp.View}
		if seen[key] {
			t.Fatalf("duplicate (page,view) = %v", key)
		}
		seen[key] = true
		// The returned VA resolves back to the same minipage.
		got, ok := mpt.Lookup(va)
		if !ok || got != mp {
			t.Fatalf("Lookup(va) = %v, %v", got, ok)
		}
	}
	if mpt.ViewsUsed() != 16 {
		t.Fatalf("ViewsUsed = %d, want 16", mpt.ViewsUsed())
	}
}

func TestAllocNeverStraddlesForSmall(t *testing.T) {
	// 672-byte molecules (WATER): 6 per page, the 7th opens a new page.
	l := mustLayout(t, 128*vm.PageSize, 8)
	mpt := NewMPT(l, GrainMinipage, 1)
	for i := 0; i < 100; i++ {
		mp, _, err := mpt.Alloc(672)
		if err != nil {
			t.Fatal(err)
		}
		first := mp.Off / vm.PageSize
		last := (mp.Off + mp.Size - 1) / vm.PageSize
		if first != last {
			t.Fatalf("alloc %d straddles pages %d..%d", i, first, last)
		}
	}
	if mpt.ViewsUsed() != 6 {
		t.Fatalf("ViewsUsed = %d, want 6 (WATER's Table 2 value)", mpt.ViewsUsed())
	}
}

func TestAllocLargeTakesExclusivePages(t *testing.T) {
	// 4 KB LU blocks: one view, page-aligned.
	l := mustLayout(t, 64*vm.PageSize, 4)
	mpt := NewMPT(l, GrainMinipage, 1)
	for i := 0; i < 8; i++ {
		mp, _, err := mpt.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if mp.Off%vm.PageSize != 0 {
			t.Fatalf("large alloc not page aligned: off=%d", mp.Off)
		}
		if mp.View != 0 {
			t.Fatalf("large alloc view = %d, want 0", mp.View)
		}
	}
	if mpt.ViewsUsed() != 1 {
		t.Fatalf("ViewsUsed = %d, want 1 (LU's Table 2 value)", mpt.ViewsUsed())
	}
	// A multi-page allocation spans contiguous exclusive pages.
	mp, _, err := mpt.Alloc(3 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Size != 3*vm.PageSize || mp.Off%vm.PageSize != 0 {
		t.Fatalf("multi-page alloc = %+v", mp)
	}
}

func TestChunkingAggregatesAllocations(t *testing.T) {
	l := mustLayout(t, 512*vm.PageSize, 8)
	mpt := NewMPT(l, GrainMinipage, 4)
	// 672-byte molecules at chunking level 4: every 4 allocations share a
	// minipage of 2688 bytes (the paper's optimal WATER configuration).
	var mps []*Minipage
	for i := 0; i < 16; i++ {
		mp, va, err := mpt.Alloc(672)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := mpt.Lookup(va); !ok || got != mp {
			t.Fatalf("lookup mismatch at alloc %d", i)
		}
		if len(mps) == 0 || mps[len(mps)-1] != mp {
			mps = append(mps, mp)
		}
	}
	if len(mps) != 4 {
		t.Fatalf("16 allocations became %d minipages, want 4", len(mps))
	}
	for _, mp := range mps {
		if mp.Size != 4*672 {
			t.Fatalf("chunk size = %d, want %d", mp.Size, 4*672)
		}
	}
}

func TestChunkClosesOnSizeChange(t *testing.T) {
	l := mustLayout(t, 64*vm.PageSize, 8)
	mpt := NewMPT(l, GrainMinipage, 4)
	a, _, _ := mpt.Alloc(100)
	b, _, _ := mpt.Alloc(200) // different size: new chunk
	if a == b {
		t.Fatal("different-size allocations shared a chunk")
	}
}

func TestPageGrainMode(t *testing.T) {
	l := mustLayout(t, 8*vm.PageSize, 1)
	mpt := NewMPT(l, GrainPage, 1)
	// Allocations pack with no regard for boundaries; sharing unit = page.
	seen := map[*Minipage]bool{}
	for i := 0; i < 40; i++ { // 40 * 672 = 26880 bytes over 7 pages
		mp, va, err := mpt.Alloc(672)
		if err != nil {
			t.Fatal(err)
		}
		seen[mp] = true
		if mp.Size != vm.PageSize {
			t.Fatalf("page-grain minipage size = %d", mp.Size)
		}
		if got, ok := mpt.Lookup(va); !ok || got != mp {
			t.Fatalf("lookup mismatch at alloc %d", i)
		}
	}
	if len(seen) != 7 {
		t.Fatalf("40 x 672B allocations touched %d page-minipages, want 7", len(seen))
	}
	if mpt.ViewsUsed() != 1 {
		t.Fatalf("ViewsUsed = %d, want 1", mpt.ViewsUsed())
	}
}

func TestAllocExhaustion(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 2)
	mpt := NewMPT(l, GrainMinipage, 1)
	for i := 0; i < 2; i++ {
		if _, _, err := mpt.Alloc(vm.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := mpt.Alloc(8); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestViewLimitOpensNewPage(t *testing.T) {
	// With 2 views, a page can host at most 2 minipages: the third small
	// allocation must move to a fresh page even though bytes remain.
	l := mustLayout(t, 2*vm.PageSize, 2)
	mpt := NewMPT(l, GrainMinipage, 1)
	a, _, _ := mpt.Alloc(8)
	b, _, _ := mpt.Alloc(8)
	c, _, err := mpt.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off/vm.PageSize != 0 || b.Off/vm.PageSize != 0 {
		t.Fatalf("first two allocations not on page 0: %d %d", a.Off, b.Off)
	}
	if c.Off/vm.PageSize != 1 {
		t.Fatalf("third allocation on page %d, want 1 (view slots exhausted)", c.Off/vm.PageSize)
	}
	if a.View == b.View || c.View != 0 {
		t.Fatalf("views = %d,%d,%d", a.View, b.View, c.View)
	}
	// Page 1 takes one more, then the object is exhausted.
	if _, _, err := mpt.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mpt.Alloc(8); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestLookupRejectsWrongView(t *testing.T) {
	l := mustLayout(t, 4*vm.PageSize, 4)
	mpt := NewMPT(l, GrainMinipage, 1)
	mp, va, err := mpt.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Same offset through a different view is not this minipage's address.
	otherView := (mp.View + 1) % l.NumViews
	_, off, _ := l.Decompose(va)
	if _, ok := mpt.Lookup(l.AppAddr(otherView, off)); ok {
		t.Fatal("lookup through wrong view succeeded")
	}
	if _, ok := mpt.Lookup(l.PrivAddr(off)); ok {
		t.Fatal("lookup through privileged view succeeded")
	}
}

func TestMinipageInfoTranslation(t *testing.T) {
	l := mustLayout(t, 4*vm.PageSize, 4)
	mpt := NewMPT(l, GrainMinipage, 1)
	mp, va, err := mpt.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	info := mp.Info(l)
	if info.Base != va {
		t.Fatalf("info.Base = %#x, va = %#x", info.Base, va)
	}
	if info.Size != 128 || info.ID != mp.ID {
		t.Fatalf("info = %+v", info)
	}
	// addr2priv: same offset, privileged view.
	_, off, _ := l.Decompose(va)
	if info.Priv != l.PrivAddr(off) {
		t.Fatalf("info.Priv = %#x, want %#x", info.Priv, l.PrivAddr(off))
	}
}

// Property: allocations never overlap in object offsets, every returned
// address looks up to its own minipage, and no (page, view) pair is used
// by two single-page minipages — for random allocation-size sequences.
func TestAllocatorInvariantsProperty(t *testing.T) {
	f := func(sizes []uint16, chunkLevel uint8) bool {
		l, err := NewLayout(256*vm.PageSize, 32)
		if err != nil {
			return false
		}
		cl := int(chunkLevel%4) + 1
		mpt := NewMPT(l, GrainMinipage, cl)
		type span struct{ lo, hi, id int }
		var spans []span
		byID := map[int]span{}
		for _, s16 := range sizes {
			size := int(s16)%3000 + 1
			mp, va, err := mpt.Alloc(size)
			if err != nil {
				break // exhaustion is fine
			}
			got, ok := mpt.Lookup(va)
			if !ok || got != mp {
				return false
			}
			// Track the grown extent of each minipage by ID.
			byID[mp.ID] = span{mp.Off, mp.Off + mp.Size, mp.ID}
		}
		for _, s := range byID {
			spans = append(spans, s)
		}
		for i := range spans {
			for j := range spans {
				if i == j {
					continue
				}
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi {
					return false // overlap
				}
			}
		}
		// (page, view) uniqueness across minipages.
		type pv struct{ p, v int }
		seen := map[pv]int{}
		for _, mp := range mpt.Minipages() {
			first := mp.Off / vm.PageSize
			last := (mp.Off + mp.Size - 1) / vm.PageSize
			for p := first; p <= last; p++ {
				key := pv{p, mp.View}
				if owner, dup := seen[key]; dup && owner != mp.ID {
					return false
				}
				seen[key] = mp.ID
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
