package core

import "testing"

// BenchmarkAlloc measures dynamic-layout allocation throughput. The
// arena is recycled off the clock when it fills.
func BenchmarkAlloc(b *testing.B) {
	l, err := NewLayout(1<<28, 16)
	if err != nil {
		b.Fatal(err)
	}
	mpt := NewMPT(l, GrainMinipage, 1)
	// 16 slots per page under the view limit.
	perArena := l.NumPages * 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%perArena == perArena-1 {
			b.StopTimer()
			mpt = NewMPT(l, GrainMinipage, 1)
			b.StartTimer()
		}
		if _, _, err := mpt.Alloc(200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPTLookup measures the manager's per-fault address
// resolution.
func BenchmarkMPTLookup(b *testing.B) {
	l, err := NewLayout(64<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	mpt := NewMPT(l, GrainMinipage, 1)
	var vas []uint64
	for i := 0; i < 50_000; i++ {
		_, va, err := mpt.Alloc(256)
		if err != nil {
			b.Fatal(err)
		}
		vas = append(vas, va)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mpt.Lookup(vas[i%len(vas)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkStaticLookup measures the static layout's arithmetic
// resolution (no table search).
func BenchmarkStaticLookup(b *testing.B) {
	l, err := NewLayout(64<<20, 16)
	if err != nil {
		b.Fatal(err)
	}
	mpt, err := NewStaticMPT(l, 16)
	if err != nil {
		b.Fatal(err)
	}
	var vas []uint64
	for i := 0; i < 50_000; i++ {
		_, va, err := mpt.Alloc(mpt.SlotSize())
		if err != nil {
			b.Fatal(err)
		}
		vas = append(vas, va)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := mpt.Lookup(vas[i%len(vas)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}
