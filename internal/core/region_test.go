package core

import (
	"testing"

	"millipage/internal/vm"
)

func TestRegionErrorPaths(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 2)
	as := vm.NewAddressSpace()
	r, err := NewRegion(l, as)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses outside every view are rejected.
	if _, err := r.PrivBytes(0x1, 8); err == nil {
		t.Fatal("PrivBytes accepted a non-view address")
	}
	if err := r.WritePriv(0x1, []byte{1}); err == nil {
		t.Fatal("WritePriv accepted a non-view address")
	}
	if _, err := r.ReadPriv(0x1, 8); err == nil {
		t.Fatal("ReadPriv accepted a non-view address")
	}
	// Protect beyond the object range fails (unmapped vpages).
	end := l.ViewBase(0) + uint64(l.ObjectSize)
	if err := r.Protect(end, 8, vm.ReadOnly); err == nil {
		t.Fatal("Protect past the view accepted")
	}
}

func TestPrivBytesAliasesSinglePage(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 2)
	as := vm.NewAddressSpace()
	r, err := NewRegion(l, as)
	if err != nil {
		t.Fatal(err)
	}
	// Within one page: the returned slice aliases the frame (zero copy).
	base := l.AppAddr(1, 100)
	bs, err := r.PrivBytes(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	bs[0] = 0xEE
	if r.Obj.Frame(0)[100] != 0xEE {
		t.Fatal("single-page PrivBytes is not aliased")
	}
	// Crossing pages: a copy is returned, but contents are correct.
	base2 := l.AppAddr(0, vm.PageSize-8)
	r.Obj.Frame(0)[vm.PageSize-1] = 0x11
	r.Obj.Frame(1)[0] = 0x22
	bs2, err := r.PrivBytes(base2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bs2[7] != 0x11 || bs2[8] != 0x22 {
		t.Fatalf("cross-page PrivBytes contents wrong: %x", bs2)
	}
}

func TestLayoutVASpanGuardsAddressBudget(t *testing.T) {
	// The paper was limited to about 1.63 GB of views: the layout exposes
	// the span so callers can check it (we do not hard-fail, since the
	// simulated address space is 64-bit).
	l := mustLayout(t, 16<<20, 104) // the paper's N=16MB, n=104 example
	span := l.VASpan()
	if span < 104*16<<20 {
		t.Fatalf("VASpan = %d, impossibly small", span)
	}
	if span > 4<<30 {
		t.Fatalf("VASpan = %d, should be around 1.7GB for this configuration", span)
	}
}

func TestChunkReservationDoesNotLeakAcrossSizes(t *testing.T) {
	l := mustLayout(t, 64*vm.PageSize, 8)
	mpt := NewMPT(l, GrainMinipage, 4)
	a, _, _ := mpt.Alloc(100) // opens a 400-byte reservation
	b, _, _ := mpt.Alloc(100) // joins the chunk
	c, _, _ := mpt.Alloc(600) // different size: new chunk
	if a != b {
		t.Fatal("same-size allocations did not share the chunk")
	}
	if c == a {
		t.Fatal("different-size allocation joined the chunk")
	}
	// The closed chunk never grows again, even for matching sizes.
	d, _, _ := mpt.Alloc(100)
	if d == a {
		t.Fatal("closed chunk reopened")
	}
}

func TestPageGrainLookupAnywhereInAllocation(t *testing.T) {
	l := mustLayout(t, 8*vm.PageSize, 1)
	mpt := NewMPT(l, GrainPage, 1)
	// An allocation spanning pages: every interior address resolves to a
	// page minipage.
	_, va, err := mpt.Alloc(3 * vm.PageSize / 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{0, 17, vm.PageSize - 1, vm.PageSize, vm.PageSize + 99} {
		if _, ok := mpt.Lookup(va + off); !ok {
			t.Fatalf("offset %d did not resolve", off)
		}
	}
}
