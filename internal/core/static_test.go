package core

import (
	"errors"
	"testing"
	"testing/quick"

	"millipage/internal/vm"
)

func TestStaticLayoutValidation(t *testing.T) {
	l := mustLayout(t, 4*vm.PageSize, 8)
	if _, err := NewStaticMPT(l, 3); err == nil {
		t.Fatal("k=3 does not divide 4096 but was accepted")
	}
	if _, err := NewStaticMPT(l, 16); err == nil {
		t.Fatal("k=16 > 8 views but was accepted")
	}
	if _, err := NewStaticMPT(l, 8); err != nil {
		t.Fatal(err)
	}
}

func TestStaticAllocAndLookup(t *testing.T) {
	l := mustLayout(t, 2*vm.PageSize, 4)
	mpt, err := NewStaticMPT(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mpt.SlotSize() != 1024 {
		t.Fatalf("slot size = %d", mpt.SlotSize())
	}
	var addrs []uint64
	for i := 0; i < 8; i++ { // fills both pages
		mp, va, err := mpt.Alloc(1000)
		if err != nil {
			t.Fatal(err)
		}
		if mp.Size != 1024 {
			t.Fatalf("minipage size = %d, want slot size", mp.Size)
		}
		if mp.View != i%4 {
			t.Fatalf("alloc %d view = %d, want %d", i, mp.View, i%4)
		}
		addrs = append(addrs, va)
	}
	if _, _, err := mpt.Alloc(8); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	for i, va := range addrs {
		mp, ok := mpt.Lookup(va + 37) // interior address
		if !ok || mp.ID != i {
			t.Fatalf("Lookup(addrs[%d]) = %v, %v", i, mp, ok)
		}
	}
}

func TestStaticRejectsOversizedAlloc(t *testing.T) {
	l := mustLayout(t, vm.PageSize, 4)
	mpt, _ := NewStaticMPT(l, 4)
	if _, _, err := mpt.Alloc(2000); err == nil {
		t.Fatal("allocation larger than a slot accepted")
	}
}

func TestStaticLookupWrongViewFails(t *testing.T) {
	l := mustLayout(t, vm.PageSize, 4)
	mpt, _ := NewStaticMPT(l, 4)
	mp, va, _ := mpt.Alloc(64)
	_, off, _ := l.Decompose(va)
	other := (mp.View + 1) % 4
	if _, ok := mpt.Lookup(l.AppAddr(other, off)); ok {
		t.Fatal("lookup through wrong view succeeded")
	}
	if _, ok := mpt.Lookup(l.AppAddr(mp.View, off+mpt.SlotSize())); ok {
		t.Fatal("unallocated slot resolved")
	}
}

// Property: static allocation gives disjoint, arithmetically recoverable
// slots for any valid k.
func TestStaticSlotProperty(t *testing.T) {
	f := func(kSel, count uint8) bool {
		ks := []int{1, 2, 4, 8, 16}
		k := ks[int(kSel)%len(ks)]
		l, err := NewLayout(8*vm.PageSize, 16)
		if err != nil {
			return false
		}
		mpt, err := NewStaticMPT(l, k)
		if err != nil {
			return false
		}
		n := int(count)%32 + 1
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			mp, va, err := mpt.Alloc(mpt.SlotSize())
			if err != nil {
				break
			}
			if seen[mp.Off] {
				return false
			}
			seen[mp.Off] = true
			got, ok := mpt.Lookup(va)
			if !ok || got != mp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
