package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"millipage/internal/vm"
)

// Grain selects the allocator's sharing-granularity policy.
type Grain int

const (
	// GrainMinipage is the paper's dynamic layout: each allocation (or
	// chunk of allocations) defines its own minipage.
	GrainMinipage Grain = iota
	// GrainPage is the traditional page-based layout used as the false
	// sharing baseline and as Figure 7's "none" point: allocations are
	// packed disregarding minipage boundaries and the sharing unit is the
	// full page. Only one view is needed.
	GrainPage
)

// allocAlign is the minimum alignment of allocations, the memory
// addressing granularity of the testbed.
const allocAlign = 4

// Minipage is one entry of the minipage table: the unit of sharing and
// protection. It is identified by its view and <offset, length> within
// the memory object (equivalently, within its associated vpages).
type Minipage struct {
	ID   int
	View int // the application view this minipage is accessed through
	Off  int // byte offset within the memory object
	Size int
}

// Info is the translation record the manager places in reserved message
// header space: everything a host needs to service a request without any
// local lookup (the paper's "thin layer" property for non-manager hosts).
type Info struct {
	ID   int
	Base uint64 // minipage base address in its application view
	Size int
	Priv uint64 // the same bytes through the privileged view (addr2priv)
}

// Info computes the wire translation record for mp under layout l.
func (mp *Minipage) Info(l Layout) Info {
	return Info{
		ID:   mp.ID,
		Base: l.AppAddr(mp.View, mp.Off),
		Size: mp.Size,
		Priv: l.PrivAddr(mp.Off),
	}
}

// ErrOutOfMemory is returned when the shared region is exhausted.
var ErrOutOfMemory = errors.New("core: shared memory object exhausted")

// ErrTooManyViews is returned when an allocation would need more
// minipages on one page than there are configured views.
var ErrTooManyViews = errors.New("core: allocation needs more views than configured")

// pageState tracks the allocator's per-object-page fill.
type pageState struct {
	used  int // bytes consumed from this page
	slots int // minipages whose data lives (partly) on this page
}

// openChunk is an in-progress chunked minipage (paper Section 4.4): up to
// chunkLevel successive same-size allocations aggregated into one
// minipage.
type openChunk struct {
	mp        *Minipage
	allocSize int
	count     int
	capBytes  int
}

// MPT is the minipage table: allocator state plus the directory geometry,
// maintained by the manager host. Lookup by faulting address is the
// manager's Translate step.
type MPT struct {
	l          Layout
	grain      Grain
	chunkLevel int

	pages    []pageState
	nextPage int // first page that has never been touched

	mps    []*Minipage
	byPage [][]*Minipage // per object page, minipages covering it, sorted by Off

	// Slab arenas: minipage records and byPage slot windows are carved
	// out of block allocations instead of being allocated one at a time —
	// workloads allocate tens of thousands of minipages per run and the
	// per-record allocations dominated the E2E profiles.
	mpArena  []Minipage  // remaining records in the current slab
	ptrArena []*Minipage // remaining slot-window space in the current slab

	chunk *openChunk

	maxSlots int // high-water mark of minipages per page = views actually needed

	// mu is non-nil when the table is shared across engine shards (a
	// parallel-engine DSM run: host 0 grows the table at allocation time
	// while every host's router reads it). Window barriers already order
	// growth before any remote use of a new minipage — a host can only
	// touch an address after learning it through a message — so the lock
	// adds no ordering the simulation needs; it makes the concurrent
	// slice/field access clean under the race detector. Nil (the
	// default) keeps the sequential engine's lock-free paths.
	mu *sync.RWMutex
}

// NewMPT creates a minipage table over layout l. chunkLevel <= 1 disables
// chunking; higher values aggregate that many successive allocations per
// minipage.
func NewMPT(l Layout, grain Grain, chunkLevel int) *MPT {
	if chunkLevel < 1 {
		chunkLevel = 1
	}
	return &MPT{
		l:          l,
		grain:      grain,
		chunkLevel: chunkLevel,
		pages:      make([]pageState, l.NumPages),
		byPage:     make([][]*Minipage, l.NumPages),
	}
}

// SetShared declares whether the table is read concurrently from other
// engine shards while the owner grows it; see the mu field. Call it at
// system construction, before any traffic.
func (t *MPT) SetShared(shared bool) {
	if shared {
		if t.mu == nil {
			t.mu = &sync.RWMutex{}
		}
	} else {
		t.mu = nil
	}
}

// Layout returns the table's view geometry.
func (t *MPT) Layout() Layout { return t.l }

// Minipages returns all allocated minipages in allocation order. The
// returned slice is the table's own; callers must not modify it.
func (t *MPT) Minipages() []*Minipage { return t.mps }

// NumMinipages reports the number of allocated minipages.
func (t *MPT) NumMinipages() int { return len(t.mps) }

// ViewsUsed reports the maximum number of minipages sharing one object
// page so far — the number of application views the workload actually
// needs (Table 2's "Num. views" column).
func (t *MPT) ViewsUsed() int {
	if t.grain == GrainPage {
		return 1
	}
	if t.maxSlots == 0 {
		return 0
	}
	return t.maxSlots
}

// BytesAllocated reports the total bytes under minipage management — the
// shared-memory footprint Table 2 reports.
func (t *MPT) BytesAllocated() int {
	n := 0
	for _, mp := range t.mps {
		n += mp.Size
	}
	return n
}

// align rounds n up to the allocation alignment.
func align(n int) int { return (n + allocAlign - 1) &^ (allocAlign - 1) }

// mpSlab is how many minipage records one arena slab holds.
const mpSlab = 256

// newMinipage carves one record out of the minipage slab arena.
func (t *MPT) newMinipage() *Minipage {
	if len(t.mpArena) == 0 {
		t.mpArena = make([]Minipage, mpSlab)
	}
	mp := &t.mpArena[0]
	t.mpArena = t.mpArena[1:]
	return mp
}

// newSlotList carves a byPage slot window with capacity for the layout's
// view count — the most minipages one page can host — so appends to it
// never re-allocate.
func (t *MPT) newSlotList() []*Minipage {
	w := t.l.NumViews
	if w < 1 {
		w = 1
	}
	if len(t.ptrArena) < w {
		n := w * 128
		if n < 512 {
			n = 512
		}
		t.ptrArena = make([]*Minipage, n)
	}
	lst := t.ptrArena[:0:w]
	t.ptrArena = t.ptrArena[w:]
	return lst
}

// Alloc carves a new allocation of size bytes out of the shared region
// and returns the minipage that manages it together with the VA the
// application should use. With chunking, several allocations may share a
// minipage, so distinct calls can return the same *Minipage with
// different addresses.
func (t *MPT) Alloc(size int) (*Minipage, uint64, error) {
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	if size <= 0 {
		return nil, 0, fmt.Errorf("core: Alloc(%d): size must be positive", size)
	}
	if t.grain == GrainPage {
		return t.allocPageGrain(size)
	}
	asz := align(size)

	// Try to extend the open chunk.
	if c := t.chunk; c != nil {
		if c.allocSize == asz && c.count < t.chunkLevel && c.mp.Size+asz <= c.capBytes {
			off := c.mp.Off + c.mp.Size
			c.mp.Size += asz
			c.count++
			t.coverPages(c.mp, off, asz)
			if c.count == t.chunkLevel {
				t.chunk = nil
			}
			return c.mp, t.l.AppAddr(c.mp.View, off), nil
		}
		t.chunk = nil // size changed or chunk filled: close it
	}

	reserve := asz
	if t.chunkLevel > 1 {
		reserve = asz * t.chunkLevel
	}
	mp, err := t.place(asz, reserve)
	if err != nil {
		return nil, 0, err
	}
	if t.chunkLevel > 1 {
		t.chunk = &openChunk{mp: mp, allocSize: asz, count: 1, capBytes: reserve}
	}
	return mp, t.l.AppAddr(mp.View, mp.Off), nil
}

// place creates a minipage of initial size asz, positioned so that it can
// grow to reserve bytes contiguously. Small reservations (<= page size)
// never straddle a page; larger ones take exclusive whole pages.
func (t *MPT) place(asz, reserve int) (*Minipage, error) {
	var off int
	switch {
	case reserve <= vm.PageSize:
		p, err := t.findPageWithRoom(reserve)
		if err != nil {
			return nil, err
		}
		off = p*vm.PageSize + t.pages[p].used
		// The reservation occupies the page up to its cap even before the
		// chunk fills, so later unrelated allocations don't interleave.
		t.pages[p].used += reserve
	default:
		// Exclusive whole pages.
		nPages := (reserve + vm.PageSize - 1) / vm.PageSize
		if t.nextPage+nPages > t.l.NumPages {
			return nil, fmt.Errorf("%w: need %d pages at page %d of %d",
				ErrOutOfMemory, nPages, t.nextPage, t.l.NumPages)
		}
		// Skip the remainder of a partially used page.
		p := t.nextPage
		off = p * vm.PageSize
		for i := 0; i < nPages; i++ {
			t.pages[p+i].used = vm.PageSize
		}
		t.nextPage = p + nPages
	}

	mp := t.newMinipage()
	*mp = Minipage{ID: len(t.mps), Off: off, Size: asz}
	mp.View = t.slotFor(off, reserve)
	if mp.View >= t.l.NumViews {
		return nil, fmt.Errorf("%w: page %d would need view %d of %d",
			ErrTooManyViews, off/vm.PageSize, mp.View, t.l.NumViews)
	}
	t.mps = append(t.mps, mp)
	t.coverPages(mp, off, asz)
	return mp, nil
}

// findPageWithRoom returns the index of the current fill page if it has
// room for n more bytes and a free view slot, otherwise opens a fresh
// page. The number of views is fixed at initialization (Section 3.2), so
// a page already hosting NumViews minipages cannot take another.
func (t *MPT) findPageWithRoom(n int) (int, error) {
	if t.nextPage > 0 {
		p := t.nextPage - 1
		if t.pages[p].used+n <= vm.PageSize && t.pages[p].slots < t.l.NumViews {
			return p, nil
		}
	}
	if t.nextPage >= t.l.NumPages {
		return 0, fmt.Errorf("%w: %d pages in use", ErrOutOfMemory, t.nextPage)
	}
	t.nextPage++
	return t.nextPage - 1, nil
}

// slotFor picks the view for a minipage whose reservation starts at off:
// the number of minipages already resident on its first page. Exclusive
// multi-page reservations always start a page, so they get view 0.
func (t *MPT) slotFor(off, reserve int) int {
	first := off / vm.PageSize
	return t.pages[first].slots
}

// coverPages registers mp as covering [off, off+n) and maintains the
// per-page slot counts and directory.
func (t *MPT) coverPages(mp *Minipage, off, n int) {
	first := off / vm.PageSize
	last := (off + n - 1) / vm.PageSize
	for p := first; p <= last; p++ {
		lst := t.byPage[p]
		if len(lst) == 0 || lst[len(lst)-1] != mp {
			if lst == nil {
				lst = t.newSlotList()
			}
			t.byPage[p] = append(lst, mp)
			t.pages[p].slots++
			if t.pages[p].slots > t.maxSlots {
				t.maxSlots = t.pages[p].slots
			}
		}
	}
}

// allocPageGrain is the traditional page-based layout: bump allocation
// that ignores sharing-unit boundaries; each object page is one minipage
// in view 0, created on first touch.
func (t *MPT) allocPageGrain(size int) (*Minipage, uint64, error) {
	asz := align(size)
	// Bump across pages freely.
	if t.nextPage == 0 {
		if t.l.NumPages == 0 {
			return nil, 0, ErrOutOfMemory
		}
		t.nextPage = 1
	}
	p := t.nextPage - 1
	if t.pages[p].used == vm.PageSize {
		if t.nextPage >= t.l.NumPages {
			return nil, 0, ErrOutOfMemory
		}
		t.nextPage++
		p++
	}
	off := p*vm.PageSize + t.pages[p].used
	if off+asz > t.l.ObjectSize {
		return nil, 0, fmt.Errorf("%w: page-grain bump at %d + %d", ErrOutOfMemory, off, asz)
	}
	// Consume bytes across as many pages as needed.
	rem := asz
	for rem > 0 {
		p = t.nextPage - 1
		avail := vm.PageSize - t.pages[p].used
		take := avail
		if take > rem {
			take = rem
		}
		t.pages[p].used += take
		rem -= take
		if t.pages[p].used == vm.PageSize && rem > 0 {
			if t.nextPage >= t.l.NumPages {
				return nil, 0, ErrOutOfMemory
			}
			t.nextPage++
		}
	}
	// Ensure each covered page has its page-minipage.
	first := off / vm.PageSize
	last := (off + asz - 1) / vm.PageSize
	for q := first; q <= last; q++ {
		if len(t.byPage[q]) == 0 {
			mp := t.newMinipage()
			*mp = Minipage{ID: len(t.mps), View: 0, Off: q * vm.PageSize, Size: vm.PageSize}
			t.mps = append(t.mps, mp)
			if t.byPage[q] == nil {
				t.byPage[q] = t.newSlotList()
			}
			t.byPage[q] = append(t.byPage[q], mp)
			t.pages[q].slots = 1
			if t.maxSlots == 0 {
				t.maxSlots = 1
			}
		}
	}
	return t.byPage[first][0], t.l.AppAddr(0, off), nil
}

// Lookup resolves a faulting application-view address to its minipage —
// the manager's MPT lookup (7 µs in Table 1). ok is false for addresses
// outside any allocation.
func (t *MPT) Lookup(va uint64) (*Minipage, bool) {
	if t.mu != nil {
		t.mu.RLock()
		defer t.mu.RUnlock()
	}
	view, off, ok := t.l.Decompose(va)
	if !ok || view >= t.l.NumViews {
		return nil, false
	}
	page := off / vm.PageSize
	lst := t.byPage[page]
	// Binary search the page's minipages by offset.
	i := sort.Search(len(lst), func(i int) bool { return lst[i].Off+lst[i].Size > off })
	if i == len(lst) {
		return nil, false
	}
	mp := lst[i]
	if off < mp.Off || off >= mp.Off+mp.Size {
		return nil, false
	}
	if t.grain != GrainPage && mp.View != view {
		// The address is inside mp's bytes but seen through the wrong
		// view: the application is not using the allocation's address.
		return nil, false
	}
	return mp, true
}

// ByID returns minipage id, if allocated.
func (t *MPT) ByID(id int) (*Minipage, bool) {
	if t.mu != nil {
		t.mu.RLock()
		defer t.mu.RUnlock()
	}
	if id < 0 || id >= len(t.mps) {
		return nil, false
	}
	return t.mps[id], true
}
