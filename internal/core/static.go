package core

import (
	"fmt"

	"millipage/internal/vm"
)

// StaticMPT is the paper's static minipage layout (Section 2.3): every
// page of the memory object is pre-divided into k equal minipages, so
// minipage borders are computed arithmetically on a fault — no table
// search. The paper notes this layout suits general-purpose caching and
// global memory systems, where a fixed subpage transfer unit is wanted
// (Jamrozik et al.'s subpages).
//
// Allocation is a bump over slots; every allocation must fit one slot.
// Minipage identity is (page, slot), with slot s accessed through view s.
type StaticMPT struct {
	l        Layout
	k        int // minipages per page
	slotSize int
	next     int // next unallocated slot index (page*k + slot)

	mps []*Minipage // materialized minipages, indexed by slot index
}

// NewStaticMPT divides layout l into k minipages per page. k must divide
// the page size and not exceed the number of views.
func NewStaticMPT(l Layout, k int) (*StaticMPT, error) {
	if k < 1 || vm.PageSize%k != 0 {
		return nil, fmt.Errorf("core: static layout k=%d must divide the page size", k)
	}
	if k > l.NumViews {
		return nil, fmt.Errorf("core: static layout k=%d exceeds %d views", k, l.NumViews)
	}
	return &StaticMPT{l: l, k: k, slotSize: vm.PageSize / k}, nil
}

// SlotSize returns the fixed minipage size.
func (t *StaticMPT) SlotSize() int { return t.slotSize }

// NumMinipages reports how many slots have been materialized.
func (t *StaticMPT) NumMinipages() int { return len(t.mps) }

// Minipages returns the materialized minipages in slot order.
func (t *StaticMPT) Minipages() []*Minipage { return t.mps }

// Alloc takes the next free slot. size must fit the fixed slot size.
func (t *StaticMPT) Alloc(size int) (*Minipage, uint64, error) {
	if size <= 0 || size > t.slotSize {
		return nil, 0, fmt.Errorf("core: static slot is %d bytes; cannot allocate %d", t.slotSize, size)
	}
	page := t.next / t.k
	if page >= t.l.NumPages {
		return nil, 0, ErrOutOfMemory
	}
	slot := t.next % t.k
	t.next++
	mp := &Minipage{
		ID:   len(t.mps),
		View: slot,
		Off:  page*vm.PageSize + slot*t.slotSize,
		Size: t.slotSize,
	}
	t.mps = append(t.mps, mp)
	return mp, t.l.AppAddr(mp.View, mp.Off), nil
}

// Lookup resolves a faulting address arithmetically — the static
// layout's advantage: "it is easy to calculate the minipage borders when
// a fault occurs", with no table search at all.
func (t *StaticMPT) Lookup(va uint64) (*Minipage, bool) {
	view, off, ok := t.l.Decompose(va)
	if !ok || view >= t.l.NumViews {
		return nil, false
	}
	page := off / vm.PageSize
	slot := (off % vm.PageSize) / t.slotSize
	if slot != view {
		// The address is not in the view its slot is served through.
		return nil, false
	}
	idx := page*t.k + slot
	if idx >= len(t.mps) {
		return nil, false // slot not yet allocated
	}
	return t.mps[idx], true
}
