package serve

import (
	"fmt"
	"sort"
)

// scenarios.go — the declarative scenario table. A serving scenario is
// a table entry, not code: protocol × hosts × keyspace × skew × rate ×
// mix × fault preset. New scenarios are appended here (or built in a
// test) and immediately get the full harness — oracle validation,
// deterministic fingerprint, golden pinning, CLI and bench exposure.

// base returns the shared 8-host mid-size shape the per-protocol rows
// specialize: 100k simulated clients over a 4096-key space in 256
// buckets (~16 keys/bucket, 128-byte buckets, 16 to the page), 90/10
// read/write at 20k ops/s for one virtual second of traffic. The rate
// sits at ~50% of SC-Millipage's measured saturation throughput so the
// percentiles read as service latency, not backlog growth; the LRC
// protocols (whose DRF contract makes every GET a lock round-trip) run
// visibly hotter at the same offered load, and that is the point of the
// cross-protocol table.
func base(name, protocol string) Scenario {
	return Scenario{
		Name:          name,
		Protocol:      protocol,
		Hosts:         8,
		Keys:          4096,
		Buckets:       256,
		Clients:       100_000,
		Rate:          20_000,
		Ops:           20_000,
		ReadFrac:      0.90,
		ZipfS:         0.99,
		Seed:          1,
		PerfectTimers: true,
	}
}

// Scenarios is the registry. Order is the presentation order of the
// bench tables.
func Scenarios() []Scenario {
	smoke := Scenario{
		Name:          "smoke",
		Protocol:      "millipage",
		Hosts:         4,
		Keys:          1024,
		Buckets:       64,
		Clients:       10_000,
		Rate:          20_000,
		Ops:           4_000,
		ReadFrac:      0.90,
		ZipfS:         0.99,
		Seed:          1,
		PerfectTimers: true,
	}
	smokeMW := smoke
	smokeMW.Name, smokeMW.Protocol = "smoke-lrc-mw", "lrc-mw"

	// million is the acceptance workload: one million simulated clients
	// multiplexed over 8 hosts, 150k requests at 50k ops/s (~70% of the
	// measured saturation throughput of this shape, so the tail is
	// protocol service plus transient queueing, not unbounded backlog).
	million := Scenario{
		Name:          "million",
		Protocol:      "millipage",
		Hosts:         8,
		Keys:          16_384,
		Buckets:       512,
		Clients:       1_000_000,
		Rate:          50_000,
		Ops:           150_000,
		ReadFrac:      0.95,
		ZipfS:         0.99,
		Seed:          1,
		PerfectTimers: true,
	}

	ntTimers := base("nt-timers", "millipage")
	ntTimers.PerfectTimers = false
	ntTimers.Rate = 10_000
	ntTimers.Ops = 5_000

	hotspot := base("hotspot", "millipage")
	hotspot.ZipfS = 1.2

	uniform := base("uniform", "millipage")
	uniform.ZipfS = 0

	dropHeavy := Scenario{
		Name:          "drop-heavy",
		Protocol:      "millipage",
		Hosts:         4,
		Keys:          512,
		Buckets:       32,
		Clients:       10_000,
		Rate:          10_000,
		Ops:           2_000,
		ReadFrac:      0.80,
		ZipfS:         0.99,
		Seed:          1,
		Faults:        "drop-heavy",
		PerfectTimers: true,
	}
	crashRestart := dropHeavy
	crashRestart.Name, crashRestart.Faults = "crash-restart", "crash-restart"
	// Stretch the run past the preset's second crash window (host 0 goes
	// down at 15ms virtual) so the service keeps taking traffic while the
	// allocation/lock authority is dead and restarting.
	crashRestart.Ops = 4_000
	crashRestart.Rate = 8_000

	// manager-kill is the failover serving row: replicated directory
	// management with the hot shard's primary (host 1) crashed 2ms into
	// the burst and kept down for 28ms — roughly the first eighth of the
	// run. The service must keep answering through the view change (the
	// synced backup promotes and re-serves); the oracle map proves zero
	// acked PUTs were lost and none were redone, and the latency
	// percentiles record what the failover cost the tail.
	managerKill := Scenario{
		Name:          "manager-kill",
		Protocol:      "millipage",
		Hosts:         4,
		Keys:          512,
		Buckets:       32,
		Clients:       10_000,
		Rate:          8_000,
		Ops:           2_000,
		ReadFrac:      0.80,
		ZipfS:         0.99,
		Seed:          1,
		Faults:        "manager-kill",
		Replicated:    true,
		PerfectTimers: true,
	}

	out := []Scenario{
		smoke,
		smokeMW,
		base("base-millipage", "millipage"),
		base("base-ivy", "ivy"),
		base("base-lrc", "lrc"),
		base("base-lrc-mw", "lrc-mw"),
		million,
		ntTimers,
		hotspot,
		uniform,
		dropHeavy,
		crashRestart,
		managerKill,
	}
	return out
}

// Lookup finds a named scenario.
func Lookup(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0, len(Scenarios()))
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("serve: unknown scenario %q (have %v)", name, names)
}

// Names lists the registered scenario names in table order.
func Names() []string {
	scs := Scenarios()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	return names
}
