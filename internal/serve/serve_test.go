package serve

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/fingerprints.golden from this run")

func TestScenarioValidation(t *testing.T) {
	ok, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no hosts", func(s *Scenario) { s.Hosts = 0 }, "Hosts"},
		{"no keys", func(s *Scenario) { s.Keys = 0 }, "Keys"},
		{"buckets above keys", func(s *Scenario) { s.Buckets = s.Keys + 1 }, "Buckets"},
		{"clients below hosts", func(s *Scenario) { s.Clients = s.Hosts - 1 }, "Clients"},
		{"zero rate", func(s *Scenario) { s.Rate = 0 }, "Rate"},
		{"no ops", func(s *Scenario) { s.Ops = 0 }, "Ops"},
		{"bad mix", func(s *Scenario) { s.ReadFrac = 1.5 }, "ReadFrac"},
		{"negative skew", func(s *Scenario) { s.ZipfS = -1 }, "ZipfS"},
		{"faults on par engine", func(s *Scenario) { s.Faults, s.Engine = "drop-heavy", "par" }, "parallel engine"},
		{"unknown preset", func(s *Scenario) { s.Faults = "nonsense" }, "unknown fault preset"},
	}
	for _, tc := range cases {
		sc := ok
		tc.mutate(&sc)
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup accepted an unknown name")
	}
}

// TestSlotOracle unit-tests the in-line response validator: a correct
// slot passes, a corrupt payload and a sequence rollback are both
// violations, and the writer's own observations advance the watermark.
func TestSlotOracle(t *testing.T) {
	const keys = 128
	st := &threadState{seen: make(map[uint64]uint32)}
	st.observe(7, 5, encodeSlot(3, payload(5, 3)), keys)
	if st.violations != 0 {
		t.Fatalf("valid slot flagged: %s", st.firstViol)
	}
	st.observe(7, 5, encodeSlot(4, payload(5, 4)), keys)
	if st.violations != 0 {
		t.Fatalf("monotone advance flagged: %s", st.firstViol)
	}
	st.observe(7, 5, encodeSlot(3, payload(5, 3)), keys) // well-formed but older
	if st.violations != 1 || !strings.Contains(st.firstViol, "stale") {
		t.Fatalf("stale read not caught: n=%d %q", st.violations, st.firstViol)
	}
	st2 := &threadState{seen: make(map[uint64]uint32)}
	st2.observe(1, 2, encodeSlot(9, payload(2, 9)^1), keys) // flipped payload bit
	if st2.violations != 1 || !strings.Contains(st2.firstViol, "torn or cross-key") {
		t.Fatalf("corrupt payload not caught: n=%d %q", st2.violations, st2.firstViol)
	}
	// The unwritten slot is valid for every client.
	st3 := &threadState{seen: make(map[uint64]uint32)}
	st3.observe(0, 0, 0, keys)
	if st3.violations != 0 {
		t.Fatalf("zero slot flagged: %s", st3.firstViol)
	}
	if seq, pay := decodeSlot(encodeSlot(42, 0xdead)); seq != 42 || pay != 0xdead {
		t.Fatal("slot encode/decode round trip broken")
	}
}

// TestGeneratorShape checks the deterministic splits and the skew: the
// client and op shares must partition exactly, and under Zipf s=0.99
// the most popular rank must be sampled far more often than a mid one.
func TestGeneratorShape(t *testing.T) {
	for _, tc := range []struct{ total, threads int }{{100, 8}, {7, 8}, {1_000_000, 8}, {13, 4}} {
		sum := 0
		for th := 0; th < tc.threads; th++ {
			sum += clientsFor(tc.total, tc.threads, th)
		}
		if sum != tc.total {
			t.Fatalf("clientsFor(%d, %d) sums to %d", tc.total, tc.threads, sum)
		}
		sum = 0
		for th := 0; th < tc.threads; th++ {
			sum += opsFor(tc.total, tc.threads, th)
		}
		if sum != tc.total {
			t.Fatalf("opsFor(%d, %d) sums to %d", tc.total, tc.threads, sum)
		}
	}

	z := newZipf(1024, 0.99)
	r := newRNG(99)
	counts := make([]int, 1024)
	for i := 0; i < 100_000; i++ {
		counts[z.sample(r.Float64())]++
	}
	if counts[0] < 20*counts[512] {
		t.Fatalf("zipf skew too flat: rank0=%d rank512=%d", counts[0], counts[512])
	}
	u := newZipf(1024, 0)
	uc := make([]int, 1024)
	r2 := newRNG(7)
	for i := 0; i < 100_000; i++ {
		uc[u.sample(r2.Float64())]++
	}
	if uc[0] > 3*uc[512]+30 {
		t.Fatalf("uniform sampler skewed: rank0=%d rank512=%d", uc[0], uc[512])
	}

	perm := keyPermutation(4096, 1)
	seen := make([]bool, 4096)
	for _, k := range perm {
		if seen[k] {
			t.Fatalf("key %d appears twice in the permutation", k)
		}
		seen[k] = true
	}
	if p2 := keyPermutation(4096, 1); p2[0] != perm[0] || p2[4095] != perm[4095] {
		t.Fatal("permutation is not a pure function of the seed")
	}
}

// TestDeterminism is the harness's core guarantee: the same scenario
// run twice produces bit-identical fingerprints, op counts, latency
// quantiles and elapsed time.
func TestDeterminism(t *testing.T) {
	sc, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if a.Elapsed != b.Elapsed || a.Ops != b.Ops || a.Gets != b.Gets {
		t.Fatal("run shape differs across identical runs")
	}
	if a.GetLat != b.GetLat || a.PutLat != b.PutLat {
		t.Fatal("latency histograms differ across identical runs")
	}
	// A different seed must actually change the stream.
	sc.Seed = 2
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("seed change did not change the fingerprint")
	}
}

// TestProtocolMatrix runs one small scenario under all four protocols:
// the oracle must hold everywhere, and the per-protocol latency
// profiles must be the profiles of different protocols (the LRC pair
// acquires the bucket lock on every GET; the SC pair does not).
func TestProtocolMatrix(t *testing.T) {
	sc, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	sc.Ops = 1500
	for _, proto := range []string{"millipage", "ivy", "lrc", "lrc-mw"} {
		res := runProto(t, sc, proto)
		wantLocked := proto == "lrc" || proto == "lrc-mw"
		gotLocked := res.Report.LockAcquisitions >= res.Ops
		if wantLocked != gotLocked {
			t.Errorf("%s: locks=%d for %d ops; lockedReads misrouted", proto, res.Report.LockAcquisitions, res.Ops)
		}
		if res.Throughput <= 0 || res.GetLat.Count() == 0 {
			t.Errorf("%s: empty result", proto)
		}
	}
}

func runProto(t *testing.T, sc Scenario, proto string) *Result {
	t.Helper()
	sc.Protocol = proto
	sc.Name = sc.Name + "-" + proto
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("%s: %v", proto, err)
	}
	return res
}

// TestMillion is the acceptance workload: one million simulated clients,
// Zipfian keys, deterministic across two runs (the CLI's -check and the
// bench sweep rely on exactly this).
func TestMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("large scenario")
	}
	sc, err := Lookup("million")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenario.Clients != 1_000_000 {
		t.Fatalf("clients = %d", a.Scenario.Clients)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("million fingerprint differs across runs: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
}

// goldenScenarios are the rows TestGoldenFingerprints pins: fast enough
// for every `go test` run, covering both SC and multi-writer protocols
// and both chaos presets.
var goldenScenarios = []string{"smoke", "smoke-lrc-mw", "drop-heavy", "crash-restart", "manager-kill"}

// TestGoldenFingerprints pins the determinism fingerprint of the golden
// scenario rows. A diff here means serving behaviour changed — generator
// stream, protocol timing, or oracle-visible responses. Regenerate with
//
//	go test ./internal/serve/ -run TestGoldenFingerprints -update
//
// and say why in the commit message.
func TestGoldenFingerprints(t *testing.T) {
	got := make(map[string]uint64, len(goldenScenarios))
	var lines []string
	for _, name := range goldenScenarios {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = res.Fingerprint
		lines = append(lines, fmt.Sprintf("%s %016x\n", name, res.Fingerprint))
	}
	const path = "testdata/fingerprints.golden"
	if *update {
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create it)", err)
	}
	want := make(map[string]uint64)
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		var name string
		var fp uint64
		if _, err := fmt.Sscanf(line, "%s %x", &name, &fp); err != nil {
			t.Fatalf("bad golden line %q: %v", line, err)
		}
		want[name] = fp
	}
	for _, name := range goldenScenarios {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (rerun with -update)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: fingerprint %016x, golden %016x", name, got[name], w)
		}
	}
}

// TestScenarioTable sanity-checks the registry: unique names, every
// entry validates, and Lookup agrees with Names.
func TestScenarioTable(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" {
			t.Fatal("scenario with empty name")
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.withDefaults().validate(); err != nil {
			t.Errorf("registered scenario fails validation: %v", err)
		}
	}
	for _, name := range Names() {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Names/Lookup disagree on %q: %v", name, err)
		}
	}
}
