// Package serve turns the DSM into a serving substrate: a sharded
// key-value/session-cache service whose backing store is Millipage
// minipages, driven by an open-loop workload generator that multiplexes
// up to millions of simulated clients over the cluster's threads.
//
// Layout: keys hash to buckets; each bucket is one shared allocation —
// one minipage — holding an 8-byte slot per resident key, so every GET
// and PUT is a real shared-memory access that exercises the configured
// protocol's fault/fetch/invalidate machinery. A PUT takes the bucket's
// cluster lock, increments the key's sequence number and stores
// (seq, payload(key, seq)) as one 64-bit word; a GET reads the word —
// lock-free under the sequentially consistent protocols, under the
// bucket lock on the LRC protocols (their data-race-free contract).
//
// Every response is validated in-line against the oracle the payload
// encoding defines: the value half of a slot must equal
// payload(key, seq) for the sequence half — any torn, lost or cross-key
// write shows up immediately — and a per-client monotonicity check turns
// the sequence numbers into a staleness detector (a client that saw
// version s of a key must never be served s' < s). After the final
// barrier the harness replays an in-process oracle map: every key's
// final sequence number must equal the exact number of PUTs the
// generator issued to it.
//
// Scenarios are declarative (see Scenario and scenarios.go): protocol ×
// hosts × keyspace × skew × rate × mix × fault preset, run to a
// deterministic fingerprint that golden tests pin.
package serve

import (
	"fmt"

	millipage "millipage"
	"millipage/internal/faultnet"
	"millipage/internal/mcheck"
	"millipage/internal/sim"
	"millipage/internal/stats"
)

// Scenario declares one serving run. The zero value is not runnable;
// start from a named entry (Scenarios, Lookup) or fill every field.
type Scenario struct {
	Name     string
	Protocol string // millipage.Config.Protocol ("" = "millipage")

	Hosts   int
	Keys    int // keyspace size
	Buckets int // minipage-resident buckets keys hash into
	Clients int // simulated clients, multiplexed over the cluster's threads

	Rate     float64 // aggregate open-loop arrival rate, ops per virtual second
	Ops      int     // total operations across the cluster
	ReadFrac float64 // fraction of operations that are GETs, in [0, 1]
	ZipfS    float64 // key-popularity skew exponent; 0 = uniform

	Seed   int64
	Faults string // fault preset name (mcheck.FaultNames), "" or "clean" = clean wire

	// Replicated turns on primary/backup directory-shard replication
	// (Config.ManagerReplication, which implies home-based management):
	// the service keeps answering while a shard's primary is dead,
	// because the synced backup promotes and re-serves. Millipage-only,
	// sequential engine only.
	Replicated bool

	// PerfectTimers removes the NT timer pathology from the service
	// threads. Serving scenarios default to true (scenarios.go) so
	// latency percentiles reflect protocol behaviour; set false to watch
	// the paper's Section 3.5.1 timer tail reappear at p999.
	PerfectTimers bool

	Engine     string // event engine, "seq" (default) or "par"
	ParWorkers int
	Views      int // minipages per page bound; default 16
}

// withDefaults fills the optional fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Protocol == "" {
		sc.Protocol = "millipage"
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Views == 0 {
		sc.Views = 16
	}
	if sc.Faults == "clean" {
		sc.Faults = ""
	}
	return sc
}

// validate rejects unrunnable scenarios with a field-specific error.
func (sc Scenario) validate() error {
	switch {
	case sc.Hosts < 1:
		return fmt.Errorf("serve: scenario %q needs Hosts >= 1, got %d", sc.Name, sc.Hosts)
	case sc.Keys < 1:
		return fmt.Errorf("serve: scenario %q needs Keys >= 1, got %d", sc.Name, sc.Keys)
	case sc.Buckets < 1 || sc.Buckets > sc.Keys:
		return fmt.Errorf("serve: scenario %q needs Buckets in [1, Keys=%d], got %d", sc.Name, sc.Keys, sc.Buckets)
	case sc.Clients < sc.Hosts:
		return fmt.Errorf("serve: scenario %q needs Clients >= Hosts (every thread multiplexes at least one client), got %d < %d", sc.Name, sc.Clients, sc.Hosts)
	case sc.Rate <= 0:
		return fmt.Errorf("serve: scenario %q needs Rate > 0 ops/s, got %g", sc.Name, sc.Rate)
	case sc.Ops < 1:
		return fmt.Errorf("serve: scenario %q needs Ops >= 1, got %d", sc.Name, sc.Ops)
	case sc.ReadFrac < 0 || sc.ReadFrac > 1:
		return fmt.Errorf("serve: scenario %q needs ReadFrac in [0, 1], got %g", sc.Name, sc.ReadFrac)
	case sc.ZipfS < 0:
		return fmt.Errorf("serve: scenario %q needs ZipfS >= 0, got %g", sc.Name, sc.ZipfS)
	case sc.Faults != "" && sc.Engine == "par":
		return fmt.Errorf("serve: scenario %q combines a fault preset with the parallel engine; faults need Engine \"seq\"", sc.Name)
	case sc.Replicated && sc.Protocol != "millipage":
		return fmt.Errorf("serve: scenario %q sets Replicated, which is millipage-only (got protocol %q)", sc.Name, sc.Protocol)
	case sc.Replicated && sc.Engine == "par":
		return fmt.Errorf("serve: scenario %q combines Replicated with the parallel engine; replication needs Engine \"seq\"", sc.Name)
	}
	return nil
}

// Result is one scenario run's outcome.
type Result struct {
	Scenario Scenario
	Report   *millipage.Report // the underlying DSM run report (fault-service breakdown)

	Elapsed    sim.Duration // the timed serving section (excludes setup)
	Ops        uint64
	Gets, Puts uint64
	GetLat     stats.Histogram // per-op-type latency: arrival -> completion (queueing included)
	PutLat     stats.Histogram
	Throughput float64 // ops per virtual second over the timed section

	// Fingerprint folds every response (thread, client, key, observed
	// slot word, arrival and completion times) into one FNV-64 digest, a
	// pure function of the scenario — identical across repeat runs, bench
	// sweep widths and engine worker counts.
	Fingerprint uint64

	Violations     uint64 // oracle violations observed in-line (0 on a correct run)
	FirstViolation string
}

// String renders the run summary the CLI prints.
func (r *Result) String() string {
	s := fmt.Sprintf("scenario=%s protocol=%s hosts=%d keys=%d buckets=%d clients=%d\n",
		r.Scenario.Name, r.Report.Protocol, r.Scenario.Hosts, r.Scenario.Keys, r.Scenario.Buckets, r.Scenario.Clients)
	s += fmt.Sprintf("ops=%d (get=%d put=%d) rate=%.0f/s elapsed=%v throughput=%.0f ops/s\n",
		r.Ops, r.Gets, r.Puts, r.Scenario.Rate, r.Elapsed, r.Throughput)
	s += fmt.Sprintf("get latency: %s\n", r.GetLat.String())
	s += fmt.Sprintf("put latency: %s\n", r.PutLat.String())
	s += fmt.Sprintf("faults: read=%d write=%d invalidations=%d competing=%d locks=%d\n",
		r.Report.ReadFaults, r.Report.WriteFaults, r.Report.Invalidations,
		r.Report.CompetingRequests, r.Report.LockAcquisitions)
	if r.Report.Retransmits+r.Report.DupsDropped+r.Report.FramesDropped > 0 {
		s += fmt.Sprintf("reliability: retransmits=%d dups=%d ooo=%d dropped=%d\n",
			r.Report.Retransmits, r.Report.DupsDropped, r.Report.OutOfOrder, r.Report.FramesDropped)
	}
	s += fmt.Sprintf("fingerprint=%016x oracle=OK", r.Fingerprint)
	return s
}

// fnvOffset/fnvPrime are the FNV-64a constants.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fpMix folds v into a running FNV-64a digest byte by byte.
func fpMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// threadState is one thread's private slice of the run: generator
// tallies, latency histograms, the response fingerprint, oracle state.
// Threads touch only their own entry; the harness merges them in thread
// order after the run, so every derived number is deterministic.
type threadState struct {
	gets, puts uint64
	getLat     stats.Histogram
	putLat     stats.Histogram
	fp         uint64

	seen      map[uint64]uint32 // client*Keys+key -> highest sequence number served
	putCounts map[uint32]uint32 // key -> PUTs this thread issued (the oracle map's shards)

	violations uint64
	firstViol  string

	elapsed sim.Duration // thread 0 only: the timed section
}

// violate records an oracle violation (keeping the first description).
func (st *threadState) violate(format string, args ...any) {
	st.violations++
	if st.firstViol == "" {
		st.firstViol = fmt.Sprintf(format, args...)
	}
}

// observe validates one served slot word against the oracle: the
// payload half must match the sequence half, and this client must never
// see the key's sequence number go backwards.
func (st *threadState) observe(client uint64, key uint32, word uint64, keys int) {
	seq, pay := decodeSlot(word)
	if pay != payload(key, seq) {
		st.violate("key %d: slot (seq=%d, payload=%#x) does not decode to payload(key, seq)=%#x — torn or cross-key write", key, seq, pay, payload(key, seq))
	}
	ck := client*uint64(keys) + uint64(key)
	if last := st.seen[ck]; seq < last {
		st.violate("client %d key %d: served seq %d after having seen seq %d — stale read", client, key, seq, last)
	} else if seq > last {
		st.seen[ck] = seq
	}
}

// Run executes the scenario and validates every oracle; a non-nil error
// means either the run itself failed or the service returned a wrong
// answer (in-line violation or final oracle-map mismatch).
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}

	var plan *faultnet.Plan
	if sc.Faults != "" {
		var err error
		plan, err = mcheck.FaultPlan(sc.Faults, sc.Hosts, sc.Seed)
		if err != nil {
			return nil, err
		}
	}

	// Key -> bucket -> slot layout, computed once up front and shared
	// read-only with every thread. Buckets get their keys in key order;
	// the hash scatters, the permutation in the generator decides which
	// of them are hot.
	bucketOf := make([]uint32, sc.Keys)
	slotOf := make([]uint32, sc.Keys)
	bucketLen := make([]uint32, sc.Buckets)
	for k := 0; k < sc.Keys; k++ {
		b := uint32(mix64(uint64(k)^0xb0c4e7) % uint64(sc.Buckets))
		bucketOf[k] = b
		slotOf[k] = bucketLen[b]
		bucketLen[b]++
	}
	perm := keyPermutation(sc.Keys, sc.Seed)
	z := newZipf(sc.Keys, sc.ZipfS)

	shared := 8*sc.Keys + 64*sc.Buckets + (256 << 10)
	cl, err := millipage.NewCluster(millipage.Config{
		Protocol:            sc.Protocol,
		Hosts:               sc.Hosts,
		SharedMemory:        shared,
		Views:               sc.Views,
		Seed:                sc.Seed,
		PerfectTimers:       sc.PerfectTimers,
		Engine:              sc.Engine,
		ParWorkers:          sc.ParWorkers,
		Faults:              plan,
		HomeBasedManagement: sc.Replicated,
		ManagerReplication:  sc.Replicated,
	})
	if err != nil {
		return nil, err
	}

	threads := sc.Hosts
	// The LRC protocols' correctness contract is data-race freedom, so
	// their GETs synchronize through the bucket lock; the SC protocols
	// serve GETs lock-free (the coherence protocol itself orders them).
	lockedReads := sc.Protocol == "lrc" || sc.Protocol == "lrc-mw"

	keyAddr := make([]millipage.Addr, sc.Keys)
	sts := make([]threadState, threads)
	for i := range sts {
		sts[i].seen = make(map[uint64]uint32)
		sts[i].putCounts = make(map[uint32]uint32)
	}
	var oracleErr error

	report, err := cl.Run(func(w *millipage.Worker) {
		t := w.ThreadID()
		if t == 0 {
			bucketAddr := make([]millipage.Addr, sc.Buckets)
			for b := range bucketAddr {
				sz := 8 * int(bucketLen[b])
				if sz == 0 {
					sz = 8
				}
				bucketAddr[b] = w.Malloc(sz)
			}
			for k := range keyAddr {
				keyAddr[k] = bucketAddr[bucketOf[k]] + millipage.Addr(8*slotOf[k])
			}
		}
		w.Barrier()
		w.ResetStats()
		start := w.Now()

		st := &sts[t]
		st.fp = fnvOffset
		g := newThreadGen(sc, t, threads, z, perm)
		ops := opsFor(sc.Ops, threads, t)
		next := start
		for i := 0; i < ops; i++ {
			next += g.gap()
			if now := w.Now(); now < next {
				// Open loop: idle until the arrival. When the thread is
				// behind, the op has been queueing — its latency below
				// includes the backlog delay, as a real ingress queue would.
				w.Compute(next - now)
			}
			key, client, isGet := g.op()
			addr := keyAddr[key]
			lockID := int(bucketOf[key])
			var word uint64
			if isGet {
				if lockedReads {
					w.Lock(lockID)
					word = w.ReadU64(addr)
					w.Unlock(lockID)
				} else {
					word = w.ReadU64(addr)
				}
				st.observe(client, key, word, sc.Keys)
				st.gets++
			} else {
				w.Lock(lockID)
				cur := w.ReadU64(addr)
				st.observe(client, key, cur, sc.Keys)
				seq, _ := decodeSlot(cur)
				seq++
				word = encodeSlot(seq, payload(key, seq))
				w.WriteU64(addr, word)
				w.Unlock(lockID)
				st.putCounts[key]++
				// The writer is also a client of its own write.
				st.observe(client, key, word, sc.Keys)
				st.puts++
			}
			done := w.Now()
			lat := done - next
			if isGet {
				st.getLat.Add(lat)
			} else {
				st.putLat.Add(lat)
			}
			kind := uint64(0)
			if !isGet {
				kind = 1
			}
			fp := st.fp
			fp = fpMix(fp, kind)
			fp = fpMix(fp, uint64(key))
			fp = fpMix(fp, client)
			fp = fpMix(fp, word)
			fp = fpMix(fp, uint64(next))
			fp = fpMix(fp, uint64(done))
			st.fp = fp
		}
		w.Barrier()
		if t == 0 {
			st.elapsed = w.Now() - start
			// Final oracle map: every key's sequence number must equal the
			// exact number of PUTs the generator issued to it, cluster-wide
			// (exactly-once semantics survive any fault preset), and the
			// payload must still decode.
			for k := 0; k < sc.Keys; k++ {
				var want uint32
				for i := range sts {
					want += sts[i].putCounts[uint32(k)]
				}
				seq, pay := decodeSlot(w.ReadU64(keyAddr[k]))
				if seq != want || pay != payload(uint32(k), seq) {
					oracleErr = fmt.Errorf("serve: final oracle: key %d ended at (seq=%d, payload=%#x), want seq=%d payload=%#x",
						k, seq, pay, want, payload(uint32(k), want))
					return
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if oracleErr != nil {
		return nil, oracleErr
	}

	res := &Result{Scenario: sc, Report: report, Elapsed: sts[0].elapsed}
	fp := uint64(fnvOffset)
	for i := range sts {
		st := &sts[i]
		res.Gets += st.gets
		res.Puts += st.puts
		res.GetLat.Merge(&st.getLat)
		res.PutLat.Merge(&st.putLat)
		res.Violations += st.violations
		if res.FirstViolation == "" {
			res.FirstViolation = st.firstViol
		}
		fp = fpMix(fp, uint64(i))
		fp = fpMix(fp, st.fp)
		fp = fpMix(fp, st.gets+st.puts)
	}
	res.Ops = res.Gets + res.Puts
	fp = fpMix(fp, uint64(res.Elapsed))
	res.Fingerprint = fp
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Ops) / sec
	}
	if res.Violations > 0 {
		return res, fmt.Errorf("serve: %d oracle violation(s); first: %s", res.Violations, res.FirstViolation)
	}
	return res, nil
}
