package serve

// gen.go — the deterministic open-loop workload generator. Every draw
// comes from a per-thread splitmix64 stream seeded from (scenario seed,
// thread id), so the op sequence a thread issues is a pure function of
// the scenario — independent of other threads, of the event engine's
// worker count and of the bench sweep width. Arrivals are a virtual-time
// Poisson process (exponential inter-arrival gaps at the thread's share
// of the aggregate rate); key popularity is Zipfian over a seeded
// permutation of the keyspace, so the hot ranks scatter across buckets.

import (
	"math"

	"millipage/internal/sim"
)

// rng is a splitmix64 stream: tiny, fast, and identical everywhere — no
// dependence on math/rand's algorithm or its global state (the
// determinism lint bans the latter outright).
type rng struct{ s uint64 }

// mix64 is the splitmix64 finalizer, also used standalone to derive
// seeds and payloads.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func newRNG(seed uint64) rng { return rng{s: seed} }

func (r *rng) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n) via the multiply-shift trick
// (no modulo bias worth caring about at workload scales, and branch-free).
func (r *rng) Intn(n int) int {
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s via a precomputed CDF and binary search. s = 0 is the
// uniform distribution (and skips the table entirely).
type zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i); nil when uniform
	n   int
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{n: n}
	if s == 0 {
		return z
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	z.cdf = cdf
	return z
}

// sample maps a uniform u in [0,1) to a rank.
func (z *zipf) sample(u float64) int {
	if z.cdf == nil {
		r := int(u * float64(z.n))
		if r >= z.n {
			r = z.n - 1
		}
		return r
	}
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// keyPermutation returns a seeded Fisher–Yates shuffle of 0..n-1: the
// map from popularity rank to key identity. Without it the hottest keys
// would all be the numerically smallest ones and land in adjacent
// buckets; with it the hot set scatters across the bucket space like a
// real cache's does.
func keyPermutation(n int, seed int64) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	r := newRNG(mix64(uint64(seed) ^ 0x5eedca5e))
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// threadGen drives one cluster thread's share of the open-loop stream.
type threadGen struct {
	rng        rng
	zipf       *zipf
	perm       []uint32 // rank -> key (shared, read-only)
	meanGap    float64  // mean inter-arrival gap, virtual ns
	readFrac   float64  // P(op is a GET)
	clients    int      // clients multiplexed on this thread
	thread     int      // this thread's id
	numThreads int      // stride of the client id space
}

// newThreadGen builds thread t's generator for scenario sc. threads is
// the cluster-wide thread count; the aggregate arrival rate divides
// evenly so the superposition of the per-thread Poisson streams is a
// Poisson process at the configured rate.
func newThreadGen(sc Scenario, t, threads int, z *zipf, perm []uint32) threadGen {
	return threadGen{
		rng:        newRNG(mix64(uint64(sc.Seed)) ^ (uint64(t)+1)*0x9e3779b97f4a7c15),
		zipf:       z,
		perm:       perm,
		meanGap:    1e9 * float64(threads) / sc.Rate,
		readFrac:   sc.ReadFrac,
		clients:    clientsFor(sc.Clients, threads, t),
		thread:     t,
		numThreads: threads,
	}
}

// clientsFor splits c simulated clients over threads; thread t owns the
// ids {t, t+threads, t+2*threads, ...}.
func clientsFor(c, threads, t int) int {
	n := c / threads
	if t < c%threads {
		n++
	}
	return n
}

// opsFor splits the scenario's total op count over threads.
func opsFor(ops, threads, t int) int {
	n := ops / threads
	if t < ops%threads {
		n++
	}
	return n
}

// gap draws the next exponential inter-arrival gap (at least 1 ns, so
// virtual time always advances between arrivals of one thread).
func (g *threadGen) gap() sim.Duration {
	u := g.rng.Float64()
	d := -math.Log1p(-u) * g.meanGap
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// op draws the next operation: the key (Zipf rank through the seeded
// permutation), the issuing client, and whether it is a GET. The draw
// order is fixed — gap, key, client, kind — so streams replay exactly.
func (g *threadGen) op() (key uint32, client uint64, isGet bool) {
	rank := g.zipf.sample(g.rng.Float64())
	key = g.perm[rank]
	idx := 0
	if g.clients > 1 {
		idx = g.rng.Intn(g.clients)
	}
	client = uint64(g.thread) + uint64(g.numThreads)*uint64(idx)
	isGet = g.rng.Float64() < g.readFrac
	return key, client, isGet
}

// payload derives the oracle value a key must hold after its seq-th PUT
// (seq counts from 1; an unwritten slot holds 0/0). Stored next to the
// sequence number in the same 8-byte slot, it lets any reader verify —
// without global knowledge — that the bytes it got are exactly what some
// PUT wrote, and the per-client monotonicity check turns the sequence
// number into a staleness detector.
func payload(key, seq uint32) uint32 {
	if seq == 0 {
		return 0
	}
	return uint32(mix64(uint64(key)<<32 | uint64(seq)))
}

// encodeSlot packs (seq, payload) into the 8-byte slot word.
func encodeSlot(seq, pay uint32) uint64 { return uint64(seq)<<32 | uint64(pay) }

// decodeSlot unpacks a slot word.
func decodeSlot(w uint64) (seq, pay uint32) { return uint32(w >> 32), uint32(w) }
