package serve

import "testing"

// Chaos conformance for the serving workload: the scenario rows below
// run real GET/PUT traffic while the faultnet preset mangles the wire —
// a quarter of all frames dropped and 15% duplicated under drop-heavy;
// two host crashes (including host 0, the allocation and lock
// authority, mid-burst) under crash-restart. Run validates every
// response in-line (payload integrity plus the per-client staleness
// oracle — under the SC protocols GETs are lock-free, so "responses
// never stale-read" is a protocol property, not a locking artifact) and
// replays the oracle map against the final store state. Faults may
// change timing and the latency tail; they must never change answers.

// chaosRows is the serving chaos matrix: both hostile presets across an
// SC protocol serving lock-free reads, the page-granularity baseline,
// and the multi-writer LRC protocol.
var chaosRows = []struct {
	scenario string
	protocol string
}{
	{"drop-heavy", "millipage"},
	{"drop-heavy", "ivy"},
	{"drop-heavy", "lrc-mw"},
	{"crash-restart", "millipage"},
	{"crash-restart", "ivy"},
	{"crash-restart", "lrc-mw"},
	// The failover row: replicated directory management with the hot
	// shard's primary crashed mid-burst. Scenario "manager-kill" sets
	// Replicated, so the protocol stays millipage.
	{"manager-kill", "millipage"},
}

func TestChaosServing(t *testing.T) {
	for _, row := range chaosRows {
		row := row
		t.Run(row.scenario+"/"+row.protocol, func(t *testing.T) {
			sc, err := Lookup(row.scenario)
			if err != nil {
				t.Fatal(err)
			}
			sc.Protocol = row.protocol
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("serving under %s faults: %v", row.scenario, err)
			}
			if res.Violations != 0 {
				t.Fatalf("%d oracle violations; first: %s", res.Violations, res.FirstViolation)
			}
			// The preset must actually have bitten: a chaos row that never
			// exercised the reliability layer proves nothing.
			if res.Report.Retransmits == 0 {
				t.Fatal("fault preset produced no retransmits — the chaos row ran on a clean wire")
			}
			// The failover row must actually have failed over: a view change
			// happened (the dead primary's backup promoted), mirrors flowed,
			// and — the Run oracles having passed above — zero acked PUTs
			// were lost or redone across it.
			if row.scenario == "manager-kill" {
				if res.Report.Promotions == 0 {
					t.Fatal("manager-kill run recorded no promotion — the primary was never failed over")
				}
				if res.Report.MirrorsSent == 0 {
					t.Fatal("manager-kill run mirrored nothing — directory effects were not mirror-gated")
				}
			}
			// Double-run determinism under faults: the injector draws from
			// the plan seed, so even a mangled wire replays bit-identically.
			res2, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fingerprint != res2.Fingerprint {
				t.Fatalf("chaos serving fingerprint differs across runs: %016x vs %016x",
					res.Fingerprint, res2.Fingerprint)
			}
		})
	}
}
