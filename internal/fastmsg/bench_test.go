package fastmsg

import (
	"testing"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// BenchmarkMsgHopPooled measures the full one-hop message path — send,
// wire, arrival scheduling, poller fire, service-thread handoff, handler
// — with pool-allocated envelopes, as the DSM layer sends. The whole
// path is required to be allocation-free in steady state: envelopes,
// pending records and calendar events are all recycled, and the FIFO
// queues never shed capacity.
func BenchmarkMsgHopPooled(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		for got < b.N { // the run ends when the last proc exits
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkMsgHopLiteral is the same hop with caller-allocated envelopes
// (the pre-pooling interface, still supported for receivers that retain
// messages): exactly the literal Message per send on top of the pooled
// path's zero.
func BenchmarkMsgHopLiteral(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			ep.Send(p, 1, &Message{Size: 32})
		}
		for got < b.N {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// TestMsgHopSteadyStateAllocFree pins the acceptance criterion as a
// test, not just a benchmark number: after warmup, a pooled one-hop send
// costs zero heap allocations.
func TestMsgHopSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {})
	const warmup, measured = 200, 2000
	var avg float64
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < warmup; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		avg = testing.AllocsPerRun(measured, func() {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun rounds to integers; any steady-state allocation on the
	// path shows up as >= 1.
	if avg != 0 {
		t.Fatalf("pooled send path allocates %.2f objects/msg in steady state, want 0", avg)
	}
}

// TestMsgHopArmedSteadyStateAllocFree pins the same criterion for the
// armed path: with the reliability layer installed (a far-future
// partition keeps Enabled() true but no fault ever fires) a pooled
// one-hop send — sequence numbering, send-log retention, cumulative
// acks, retransmit-timer bookkeeping and all — also costs zero heap
// allocations in steady state. Envelopes are refcount-pooled, the timer
// and ack calendar records come from free lists, and the send log never
// sheds capacity.
func TestMsgHopArmedSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	far := sim.Time(1 << 60)
	inj, err := faultnet.NewInjector(faultnet.Plan{
		Partitions: []faultnet.Partition{{A: 0b01, B: 0b10, From: far, Until: far + 1}},
	}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.InstallFaults(inj)
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {})
	const warmup, measured = 200, 2000
	var avg float64
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		send := func() {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
			// Drain before the next send: the armed path holds envelopes in
			// the send log until the ack returns, so an unbounded burst would
			// legitimately grow the log and the pools. Steady state for the
			// DSM is request/reply, not an infinite pipeline.
			p.Sleep(sim.Millisecond)
		}
		for i := 0; i < warmup; i++ {
			send()
		}
		avg = testing.AllocsPerRun(measured, send)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("armed send path allocates %.2f objects/msg in steady state, want 0", avg)
	}
}
