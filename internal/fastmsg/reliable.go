package fastmsg

// The reliability layer: when a faultnet plan is installed, the raw wire
// drops, duplicates, delays and partitions frames, and hosts crash — so
// this file layers a per-directed-link sliding protocol over it that
// restores the FM guarantee the protocols were written against:
// exactly-once, per-link-FIFO delivery.
//
//   - Every frame carries a per-(sender,destination) sequence number.
//   - The receiver admits frames in sequence order, parking early
//     arrivals in a reorder buffer and discarding duplicates (re-acking
//     its processed floor so the sender can advance).
//   - Acks are cumulative and are sent when the destination's handler
//     COMPLETES, not when the frame arrives — so a crash that wipes the
//     receive queue loses only unacknowledged work, which the sender
//     still holds and retransmits.
//   - The sender retransmits everything outstanding (go-back-N) on a
//     per-link timer with exponential backoff between RTOMin and RTOMax.
//
// Crash model (fail-restart with durable memory): a crashed host keeps
// its memory, page protections, protocol state and session floors, but
// loses everything volatile in the transport — frames on the wire to
// it, its receive queue, its reorder buffers, and undelivered poll/sweep
// events. On crash each receive session's accept floor rolls back to
// its processed floor, so the peers' retransmissions re-deliver exactly
// the lost tail; a handler already mid-flight at the crash completes
// (message-granularity failure boundary) and its duplicate, if
// retransmitted, is recognized and dropped. On restart the host
// immediately flushes its own outbound sessions and the network's
// restart hook lets the cluster runtime run protocol-level recovery.
//
// Everything here is fault-mode only: a Network without InstallFaults
// never touches this file, keeping the clean path allocation-free and
// bit-identical in virtual time.

import (
	"fmt"
	"sort"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// reliability is the per-network state of the layer.
type reliability struct {
	nw     *Network
	inj    *faultnet.Injector
	rtoMin sim.Duration
	rtoMax sim.Duration
	hosts  []*relHost

	// Pooled calendar records and their once-bound callbacks, so arming a
	// retransmit timer or shipping an ack never allocates a closure.
	freeTR  []*timerRec
	freeAR  []*ackRec
	timerFn func(any) // r.timerFireAny, bound in InstallFaults
	ackFn   func(any) // r.ackArriveAny, bound in InstallFaults

	// Scratch for the per-frame codec self-check (see selfCheckFrame).
	frameBuf []byte
	frameTmp Frame
}

// timerRec is one armed retransmission timer on the engine calendar.
type timerRec struct {
	from, to int
	gen      uint64
}

// ackRec is one cumulative ack in flight on the wire.
type ackRec struct {
	to, from int
	cum      uint64
}

// relHost is one host's transport state.
type relHost struct {
	down bool
	send []sendSession // indexed by destination host
	recv []recvSession // indexed by source host

	// The message currently in the service thread's handler, if any.
	// A crash rolls the accept floor back underneath it; this record
	// keeps its retransmitted twin from being admitted a second time.
	inServiceFrom int
	inServiceSeq  uint64
}

// sendSession is the sender half of one directed link. Its contents are
// durable across the sender's crashes (the production analogue: a send
// log on stable storage); only transmission is suppressed while down.
type sendSession struct {
	nextSeq    uint64     // next sequence number to assign (sessions start at 1)
	unacked    []*Message // retransmission log, live from unaHead
	unaHead    int        // head index: popping with [1:] would shed capacity and realloc per ack
	rto        sim.Duration
	timerGen   uint64 // arms are numbered so superseded timers no-op
	timerArmed bool
}

// outstanding returns the link's unacknowledged frames in send order.
func (ss *sendSession) outstanding() []*Message { return ss.unacked[ss.unaHead:] }

// recvSession is the receiver half of one directed link. The floors are
// durable; the reorder buffer is volatile (lost at a crash).
type recvSession struct {
	nextAccept  uint64 // lowest sequence number not yet admitted for delivery
	nextProcess uint64 // lowest sequence number whose handler has not completed
	ooo         map[uint64]*Message
}

// InstallFaults arms the network with a fault injector: the wire becomes
// lossy per the injector's plan and the reliability layer switches on.
// It must be called before any traffic (cluster setup time), and the
// plan's crash schedule is placed on the engine calendar here.
func (nw *Network) InstallFaults(inj *faultnet.Injector) {
	if nw.rel != nil {
		panic("fastmsg: InstallFaults called twice")
	}
	if nw.eng.NumShards() > 1 {
		// The reliability layer threads per-link session state through
		// every host's sends and acks — cross-shard shared mutation with
		// no window discipline. Fault injection stays on the sequential
		// engine.
		panic("fastmsg: fault injection requires the sequential engine (faults share per-link session state across hosts)")
	}
	for _, ep := range nw.eps {
		if ep.stats.Sent != 0 || ep.stats.Received != 0 {
			panic("fastmsg: InstallFaults after traffic")
		}
	}
	plan := inj.Plan()
	rtoMin, rtoMax := plan.RTOBounds()
	r := &reliability{nw: nw, inj: inj, rtoMin: rtoMin, rtoMax: rtoMax}
	r.timerFn = r.timerFireAny
	r.ackFn = r.ackArriveAny
	n := len(nw.eps)
	for i := 0; i < n; i++ {
		rh := &relHost{
			send:          make([]sendSession, n),
			recv:          make([]recvSession, n),
			inServiceFrom: -1,
		}
		for j := 0; j < n; j++ {
			rh.send[j].nextSeq = 1
			rh.recv[j].nextAccept = 1
			rh.recv[j].nextProcess = 1
		}
		r.hosts = append(r.hosts, rh)
	}
	nw.rel = r
	for _, c := range inj.Crashes() {
		h := c.Host
		nw.eng.At(c.At, func() { r.crash(h) })
		nw.eng.At(c.RestartAt, func() { r.restart(h) })
	}
}

// FaultsEnabled reports whether a fault plan is installed.
func (nw *Network) FaultsEnabled() bool { return nw.rel != nil }

// SetRestartHook registers fn to run (in engine context) whenever a
// crashed host restarts, after its outbound sessions have been flushed.
// The cluster runtime uses it to spawn protocol-level crash recovery.
func (nw *Network) SetRestartHook(fn func(host int)) { nw.restartHook = fn }

// Down reports whether host h is currently crashed.
func (nw *Network) Down(h int) bool {
	return nw.rel != nil && nw.rel.hosts[h].down
}

// send assigns the next sequence number on the (ep, to) link, logs the
// frame for retransmission, and attempts a first transmission.
func (r *reliability) send(ep *Endpoint, to int, m *Message) {
	ss := &r.hosts[ep.id].send[to]
	m.Seq = ss.nextSeq
	ss.nextSeq++
	ss.unacked = append(ss.unacked, m)
	r.nw.retainMessage(m) // the send log's hold, dropped when an ack pops it
	ep.stats.Sent++
	ep.stats.BytesSent += uint64(m.Size)
	r.transmit(ep.id, to, m)
	if !ss.timerArmed {
		r.armTimer(ep.id, to, ss)
	}
}

// transmit puts one frame on the faulty wire: partition and crash checks,
// then the drop/duplicate/jitter draws. Used for first transmissions and
// retransmissions alike; a suppressed or lost frame stays in the send
// session and the timer covers it.
func (r *reliability) transmit(from, to int, m *Message) {
	if r.hosts[from].down {
		return // NIC is dead; the restart flush re-sends
	}
	r.selfCheckData(m)
	now := r.nw.eng.Now()
	if r.inj.Partitioned(from, to, now) {
		return
	}
	dst := r.nw.eps[to]
	base := r.nw.params.WireLatency(m.Size)
	if !r.inj.DropFrame() {
		r.nw.retainMessage(m) // this arrival's hold, dropped or transferred in arrive
		r.nw.eng.AtArg(now.Add(base+r.inj.ExtraDelay()), dst.arriveFn, m)
	}
	if r.inj.DupFrame() {
		r.nw.retainMessage(m)
		r.nw.eng.AtArg(now.Add(base+r.inj.ExtraDelay()), dst.arriveFn, m)
	}
}

// armTimer schedules the link's retransmission timer at its current RTO,
// on a pooled record so arming never allocates.
func (r *reliability) armTimer(from, to int, ss *sendSession) {
	ss.timerArmed = true
	ss.timerGen++
	if ss.rto == 0 {
		ss.rto = r.rtoMin
	}
	var tr *timerRec
	if n := len(r.freeTR); n > 0 {
		tr = r.freeTR[n-1]
		r.freeTR = r.freeTR[:n-1]
	} else {
		tr = &timerRec{}
	}
	tr.from, tr.to, tr.gen = from, to, ss.timerGen
	r.nw.eng.AfterArg(ss.rto, r.timerFn, tr)
}

// timerFireAny is the calendar-side entry: unpack and recycle the record,
// then run the fire logic.
func (r *reliability) timerFireAny(a any) {
	tr := a.(*timerRec)
	from, to, gen := tr.from, tr.to, tr.gen
	*tr = timerRec{}
	r.freeTR = append(r.freeTR, tr)
	r.timerFire(from, to, gen)
}

// timerFire retransmits everything outstanding on the link (go-back-N)
// and re-arms with doubled backoff.
func (r *reliability) timerFire(from, to int, gen uint64) {
	ss := &r.hosts[from].send[to]
	if gen != ss.timerGen {
		return // superseded by an ack or a restart flush
	}
	ss.timerArmed = false
	if len(ss.outstanding()) == 0 {
		return
	}
	ep := r.nw.eps[from]
	for _, m := range ss.outstanding() {
		ep.stats.Retransmits++
		r.transmit(from, to, m)
	}
	ss.rto *= 2
	if ss.rto > r.rtoMax {
		ss.rto = r.rtoMax
	}
	r.armTimer(from, to, ss)
}

// arrive gates one frame off the wire: discard if this host is down,
// drop-and-re-ack duplicates, buffer early arrivals, and admit in-order
// frames (plus any buffered successors they release) to delivery. The
// arrival event's hold on the envelope either drops here (discards) or
// transfers to the reorder buffer / delivery pipeline (admissions).
func (r *reliability) arrive(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	if rh.down {
		ep.stats.DroppedDown++
		r.nw.releaseMessage(m)
		return
	}
	rs := &rh.recv[m.From]
	if m.Seq < rs.nextAccept {
		// Already admitted once: a wire duplicate or a retransmission
		// that crossed our ack. Re-ack the processed floor so the
		// sender stops resending even if the original ack was lost.
		ep.stats.DupsDropped++
		from := m.From
		r.nw.releaseMessage(m) // may recycle and zero m; no field reads past here
		if rs.nextProcess > 1 {
			r.sendAck(ep.id, from, rs.nextProcess-1)
		}
		return
	}
	if m.Seq == rs.nextAccept && rh.inServiceFrom == m.From && rh.inServiceSeq == m.Seq {
		// A crash rolled the accept floor back under the handler that is
		// still processing this very sequence number; its retransmitted
		// twin must not be admitted again.
		ep.stats.DupsDropped++
		r.nw.releaseMessage(m)
		return
	}
	if m.Seq > rs.nextAccept {
		if rs.ooo == nil {
			rs.ooo = make(map[uint64]*Message)
		}
		if _, dup := rs.ooo[m.Seq]; dup {
			ep.stats.DupsDropped++
			r.nw.releaseMessage(m)
		} else {
			rs.ooo[m.Seq] = m
			ep.stats.OutOfOrder++
		}
		return
	}
	rs.nextAccept++
	ep.deliver(m)
	for {
		next, ok := rs.ooo[rs.nextAccept]
		if !ok {
			return
		}
		delete(rs.ooo, rs.nextAccept)
		rs.nextAccept++
		ep.deliver(next)
	}
}

// beginService marks m as the frame the service thread is processing.
func (r *reliability) beginService(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	rh.inServiceFrom, rh.inServiceSeq = m.From, m.Seq
}

// complete advances the link's processed floor once the handler for m
// has returned, and sends the cumulative ack. Called from the service
// thread; acks are charged no CPU (FM acks piggyback on the NIC).
func (r *reliability) complete(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	rs := &rh.recv[m.From]
	if m.Seq != rs.nextProcess {
		panic(fmt.Sprintf("fastmsg: host %d completed seq %d from host %d, expected %d — per-link FIFO processing violated",
			ep.id, m.Seq, m.From, rs.nextProcess))
	}
	rs.nextProcess = m.Seq + 1
	if rs.nextAccept < rs.nextProcess {
		// A crash rolled the accept floor back while this handler was
		// mid-flight; it has now completed, so the floor moves past it.
		rs.nextAccept = rs.nextProcess
	}
	rh.inServiceFrom, rh.inServiceSeq = -1, 0
	r.sendAck(ep.id, m.From, m.Seq)
}

// sendAck ships a cumulative ack for the (to → from) link over the same
// faulty wire as any frame. A lost ack is healed by the next duplicate's
// re-ack, so acks need no sequencing of their own.
func (r *reliability) sendAck(from, to int, cum uint64) {
	if r.hosts[from].down {
		return
	}
	r.selfCheckAck(from, to, cum)
	now := r.nw.eng.Now()
	if r.inj.Partitioned(from, to, now) {
		return
	}
	base := r.nw.params.WireBase
	if !r.inj.DropFrame() {
		r.shipAck(to, from, cum, base+r.inj.ExtraDelay())
	}
	if r.inj.DupFrame() {
		r.shipAck(to, from, cum, base+r.inj.ExtraDelay())
	}
}

// shipAck schedules one ack arrival on a pooled record.
func (r *reliability) shipAck(to, from int, cum uint64, d sim.Duration) {
	var ae *ackRec
	if n := len(r.freeAR); n > 0 {
		ae = r.freeAR[n-1]
		r.freeAR = r.freeAR[:n-1]
	} else {
		ae = &ackRec{}
	}
	ae.to, ae.from, ae.cum = to, from, cum
	r.nw.eng.AfterArg(d, r.ackFn, ae)
}

// ackArriveAny is the calendar-side entry: unpack and recycle the
// record, then consume the ack.
func (r *reliability) ackArriveAny(a any) {
	ae := a.(*ackRec)
	at, from, cum := ae.to, ae.from, ae.cum
	*ae = ackRec{}
	r.freeAR = append(r.freeAR, ae)
	r.ackArrive(at, from, cum)
}

// ackArrive consumes a cumulative ack at the original sender: pop the
// acknowledged prefix, reset backoff on progress, and re-arm or cancel
// the timer.
func (r *reliability) ackArrive(at, from int, cum uint64) {
	rh := r.hosts[at]
	if rh.down {
		return
	}
	ss := &rh.send[from]
	progress := false
	for ss.unaHead < len(ss.unacked) && ss.unacked[ss.unaHead].Seq <= cum {
		m := ss.unacked[ss.unaHead]
		ss.unacked[ss.unaHead] = nil
		ss.unaHead++
		progress = true
		r.nw.releaseMessage(m) // the send log's hold
	}
	if ss.unaHead == len(ss.unacked) {
		ss.unacked = ss.unacked[:0]
		ss.unaHead = 0
	}
	if !progress {
		return
	}
	ss.timerGen++ // cancel the outstanding arm
	ss.timerArmed = false
	ss.rto = r.rtoMin
	if len(ss.outstanding()) > 0 {
		r.armTimer(at, from, ss)
	}
}

// crash takes host h's network stack down: volatile receive state is
// lost, and each receive session's accept floor rolls back to its
// processed floor so peers' retransmissions re-deliver the lost tail.
func (r *reliability) crash(h int) {
	rh := r.hosts[h]
	if rh.down {
		return
	}
	rh.down = true
	ep := r.nw.eps[h]
	// The receive queue and undelivered poll/sweep events are volatile.
	// Each wiped message loses its delivery-pipeline hold; the sender's
	// log still holds it (unacked), so retransmission re-delivers it.
	for {
		m, ok := ep.ready.TryGet()
		if !ok {
			break
		}
		r.nw.releaseMessage(m)
	}
	for _, pm := range ep.pending[ep.pendHead:] {
		// Unfired entries only: fired ones were already removed by fire().
		pm.fired = true // their scheduled fire events will no-op and recycle
		r.nw.releaseMessage(pm.m)
	}
	for i := range ep.pending {
		ep.pending[i] = nil
	}
	ep.pending = ep.pending[:0]
	ep.pendHead = 0
	for i := range rh.recv {
		rs := &rh.recv[i]
		if len(rs.ooo) > 0 {
			// Release the reorder buffer's holds in sequence order so the
			// pool's contents stay deterministic run to run.
			seqs := make([]uint64, 0, len(rs.ooo))
			for seq := range rs.ooo { //detlint:ok sorted below
				seqs = append(seqs, seq)
			}
			sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
			for _, seq := range seqs {
				r.nw.releaseMessage(rs.ooo[seq])
			}
		}
		rs.ooo = nil
		if rs.nextAccept > rs.nextProcess {
			rs.nextAccept = rs.nextProcess
		}
	}
}

// restart brings host h back: flush every outbound session immediately
// (peers may be blocked on frames we queued while down) and hand control
// to the cluster's recovery hook.
func (r *reliability) restart(h int) {
	rh := r.hosts[h]
	if !rh.down {
		return
	}
	rh.down = false
	ep := r.nw.eps[h]
	for to := range rh.send {
		ss := &rh.send[to]
		if len(ss.outstanding()) == 0 {
			continue
		}
		ss.timerGen++
		ss.timerArmed = false
		ss.rto = r.rtoMin
		for _, m := range ss.outstanding() {
			ep.stats.Retransmits++
			r.transmit(h, to, m)
		}
		r.armTimer(h, to, ss)
	}
	if r.nw.restartHook != nil {
		r.nw.restartHook(h)
	}
}
