package fastmsg

// The reliability layer: when a faultnet plan is installed, the raw wire
// drops, duplicates, delays and partitions frames, and hosts crash — so
// this file layers a per-directed-link sliding protocol over it that
// restores the FM guarantee the protocols were written against:
// exactly-once, per-link-FIFO delivery.
//
//   - Every frame carries a per-(sender,destination) sequence number.
//   - The receiver admits frames in sequence order, parking early
//     arrivals in a reorder buffer and discarding duplicates (re-acking
//     its processed floor so the sender can advance).
//   - Acks are cumulative and are sent when the destination's handler
//     COMPLETES, not when the frame arrives — so a crash that wipes the
//     receive queue loses only unacknowledged work, which the sender
//     still holds and retransmits.
//   - The sender retransmits everything outstanding (go-back-N) on a
//     per-link timer with exponential backoff between RTOMin and RTOMax.
//
// Crash model (fail-restart with durable memory): a crashed host keeps
// its memory, page protections, protocol state and session floors, but
// loses everything volatile in the transport — frames on the wire to
// it, its receive queue, its reorder buffers, and undelivered poll/sweep
// events. On crash each receive session's accept floor rolls back to
// its processed floor, so the peers' retransmissions re-deliver exactly
// the lost tail; a handler already mid-flight at the crash completes
// (message-granularity failure boundary) and its duplicate, if
// retransmitted, is recognized and dropped. On restart the host
// immediately flushes its own outbound sessions and the network's
// restart hook lets the cluster runtime run protocol-level recovery.
//
// Everything here is fault-mode only: a Network without InstallFaults
// never touches this file, keeping the clean path allocation-free and
// bit-identical in virtual time.

import (
	"fmt"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// reliability is the per-network state of the layer.
type reliability struct {
	nw     *Network
	inj    *faultnet.Injector
	rtoMin sim.Duration
	rtoMax sim.Duration
	hosts  []*relHost
}

// relHost is one host's transport state.
type relHost struct {
	down bool
	send []sendSession // indexed by destination host
	recv []recvSession // indexed by source host

	// The message currently in the service thread's handler, if any.
	// A crash rolls the accept floor back underneath it; this record
	// keeps its retransmitted twin from being admitted a second time.
	inServiceFrom int
	inServiceSeq  uint64
}

// sendSession is the sender half of one directed link. Its contents are
// durable across the sender's crashes (the production analogue: a send
// log on stable storage); only transmission is suppressed while down.
type sendSession struct {
	nextSeq    uint64 // next sequence number to assign (sessions start at 1)
	unacked    []*Message
	rto        sim.Duration
	timerGen   uint64 // arms are numbered so superseded timers no-op
	timerArmed bool
}

// recvSession is the receiver half of one directed link. The floors are
// durable; the reorder buffer is volatile (lost at a crash).
type recvSession struct {
	nextAccept  uint64 // lowest sequence number not yet admitted for delivery
	nextProcess uint64 // lowest sequence number whose handler has not completed
	ooo         map[uint64]*Message
}

// InstallFaults arms the network with a fault injector: the wire becomes
// lossy per the injector's plan and the reliability layer switches on.
// It must be called before any traffic (cluster setup time), and the
// plan's crash schedule is placed on the engine calendar here.
func (nw *Network) InstallFaults(inj *faultnet.Injector) {
	if nw.rel != nil {
		panic("fastmsg: InstallFaults called twice")
	}
	for _, ep := range nw.eps {
		if ep.stats.Sent != 0 || ep.stats.Received != 0 {
			panic("fastmsg: InstallFaults after traffic")
		}
	}
	plan := inj.Plan()
	rtoMin, rtoMax := plan.RTOBounds()
	r := &reliability{nw: nw, inj: inj, rtoMin: rtoMin, rtoMax: rtoMax}
	n := len(nw.eps)
	for i := 0; i < n; i++ {
		rh := &relHost{
			send:          make([]sendSession, n),
			recv:          make([]recvSession, n),
			inServiceFrom: -1,
		}
		for j := 0; j < n; j++ {
			rh.send[j].nextSeq = 1
			rh.recv[j].nextAccept = 1
			rh.recv[j].nextProcess = 1
		}
		r.hosts = append(r.hosts, rh)
	}
	nw.rel = r
	for _, c := range inj.Crashes() {
		h := c.Host
		nw.eng.At(c.At, func() { r.crash(h) })
		nw.eng.At(c.RestartAt, func() { r.restart(h) })
	}
}

// FaultsEnabled reports whether a fault plan is installed.
func (nw *Network) FaultsEnabled() bool { return nw.rel != nil }

// SetRestartHook registers fn to run (in engine context) whenever a
// crashed host restarts, after its outbound sessions have been flushed.
// The cluster runtime uses it to spawn protocol-level crash recovery.
func (nw *Network) SetRestartHook(fn func(host int)) { nw.restartHook = fn }

// Down reports whether host h is currently crashed.
func (nw *Network) Down(h int) bool {
	return nw.rel != nil && nw.rel.hosts[h].down
}

// send assigns the next sequence number on the (ep, to) link, logs the
// frame for retransmission, and attempts a first transmission.
func (r *reliability) send(ep *Endpoint, to int, m *Message) {
	ss := &r.hosts[ep.id].send[to]
	m.Seq = ss.nextSeq
	ss.nextSeq++
	ss.unacked = append(ss.unacked, m)
	ep.stats.Sent++
	ep.stats.BytesSent += uint64(m.Size)
	r.transmit(ep.id, to, m)
	if !ss.timerArmed {
		r.armTimer(ep.id, to, ss)
	}
}

// transmit puts one frame on the faulty wire: partition and crash checks,
// then the drop/duplicate/jitter draws. Used for first transmissions and
// retransmissions alike; a suppressed or lost frame stays in the send
// session and the timer covers it.
func (r *reliability) transmit(from, to int, m *Message) {
	if r.hosts[from].down {
		return // NIC is dead; the restart flush re-sends
	}
	selfCheckData(m)
	now := r.nw.eng.Now()
	if r.inj.Partitioned(from, to, now) {
		return
	}
	dst := r.nw.eps[to]
	base := r.nw.params.WireLatency(m.Size)
	if !r.inj.DropFrame() {
		r.nw.eng.AtArg(now.Add(base+r.inj.ExtraDelay()), dst.arriveFn, m)
	}
	if r.inj.DupFrame() {
		r.nw.eng.AtArg(now.Add(base+r.inj.ExtraDelay()), dst.arriveFn, m)
	}
}

// armTimer schedules the link's retransmission timer at its current RTO.
func (r *reliability) armTimer(from, to int, ss *sendSession) {
	ss.timerArmed = true
	ss.timerGen++
	gen := ss.timerGen
	if ss.rto == 0 {
		ss.rto = r.rtoMin
	}
	r.nw.eng.After(ss.rto, func() { r.timerFire(from, to, gen) })
}

// timerFire retransmits everything outstanding on the link (go-back-N)
// and re-arms with doubled backoff.
func (r *reliability) timerFire(from, to int, gen uint64) {
	ss := &r.hosts[from].send[to]
	if gen != ss.timerGen {
		return // superseded by an ack or a restart flush
	}
	ss.timerArmed = false
	if len(ss.unacked) == 0 {
		return
	}
	ep := r.nw.eps[from]
	for _, m := range ss.unacked {
		ep.stats.Retransmits++
		r.transmit(from, to, m)
	}
	ss.rto *= 2
	if ss.rto > r.rtoMax {
		ss.rto = r.rtoMax
	}
	r.armTimer(from, to, ss)
}

// arrive gates one frame off the wire: discard if this host is down,
// drop-and-re-ack duplicates, buffer early arrivals, and admit in-order
// frames (plus any buffered successors they release) to delivery.
func (r *reliability) arrive(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	if rh.down {
		ep.stats.DroppedDown++
		return
	}
	rs := &rh.recv[m.From]
	if m.Seq < rs.nextAccept {
		// Already admitted once: a wire duplicate or a retransmission
		// that crossed our ack. Re-ack the processed floor so the
		// sender stops resending even if the original ack was lost.
		ep.stats.DupsDropped++
		if rs.nextProcess > 1 {
			r.sendAck(ep.id, m.From, rs.nextProcess-1)
		}
		return
	}
	if m.Seq == rs.nextAccept && rh.inServiceFrom == m.From && rh.inServiceSeq == m.Seq {
		// A crash rolled the accept floor back under the handler that is
		// still processing this very sequence number; its retransmitted
		// twin must not be admitted again.
		ep.stats.DupsDropped++
		return
	}
	if m.Seq > rs.nextAccept {
		if rs.ooo == nil {
			rs.ooo = make(map[uint64]*Message)
		}
		if _, dup := rs.ooo[m.Seq]; dup {
			ep.stats.DupsDropped++
		} else {
			rs.ooo[m.Seq] = m
			ep.stats.OutOfOrder++
		}
		return
	}
	rs.nextAccept++
	ep.deliver(m)
	for {
		next, ok := rs.ooo[rs.nextAccept]
		if !ok {
			return
		}
		delete(rs.ooo, rs.nextAccept)
		rs.nextAccept++
		ep.deliver(next)
	}
}

// beginService marks m as the frame the service thread is processing.
func (r *reliability) beginService(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	rh.inServiceFrom, rh.inServiceSeq = m.From, m.Seq
}

// complete advances the link's processed floor once the handler for m
// has returned, and sends the cumulative ack. Called from the service
// thread; acks are charged no CPU (FM acks piggyback on the NIC).
func (r *reliability) complete(ep *Endpoint, m *Message) {
	rh := r.hosts[ep.id]
	rs := &rh.recv[m.From]
	if m.Seq != rs.nextProcess {
		panic(fmt.Sprintf("fastmsg: host %d completed seq %d from host %d, expected %d — per-link FIFO processing violated",
			ep.id, m.Seq, m.From, rs.nextProcess))
	}
	rs.nextProcess = m.Seq + 1
	if rs.nextAccept < rs.nextProcess {
		// A crash rolled the accept floor back while this handler was
		// mid-flight; it has now completed, so the floor moves past it.
		rs.nextAccept = rs.nextProcess
	}
	rh.inServiceFrom, rh.inServiceSeq = -1, 0
	r.sendAck(ep.id, m.From, m.Seq)
}

// sendAck ships a cumulative ack for the (to → from) link over the same
// faulty wire as any frame. A lost ack is healed by the next duplicate's
// re-ack, so acks need no sequencing of their own.
func (r *reliability) sendAck(from, to int, cum uint64) {
	if r.hosts[from].down {
		return
	}
	selfCheckAck(from, to, cum)
	now := r.nw.eng.Now()
	if r.inj.Partitioned(from, to, now) {
		return
	}
	base := r.nw.params.WireBase
	if !r.inj.DropFrame() {
		d := base + r.inj.ExtraDelay()
		r.nw.eng.After(d, func() { r.ackArrive(to, from, cum) })
	}
	if r.inj.DupFrame() {
		d := base + r.inj.ExtraDelay()
		r.nw.eng.After(d, func() { r.ackArrive(to, from, cum) })
	}
}

// ackArrive consumes a cumulative ack at the original sender: pop the
// acknowledged prefix, reset backoff on progress, and re-arm or cancel
// the timer.
func (r *reliability) ackArrive(at, from int, cum uint64) {
	rh := r.hosts[at]
	if rh.down {
		return
	}
	ss := &rh.send[from]
	progress := false
	for len(ss.unacked) > 0 && ss.unacked[0].Seq <= cum {
		ss.unacked[0] = nil
		ss.unacked = ss.unacked[1:]
		progress = true
	}
	if !progress {
		return
	}
	ss.timerGen++ // cancel the outstanding arm
	ss.timerArmed = false
	ss.rto = r.rtoMin
	if len(ss.unacked) > 0 {
		r.armTimer(at, from, ss)
	}
}

// crash takes host h's network stack down: volatile receive state is
// lost, and each receive session's accept floor rolls back to its
// processed floor so peers' retransmissions re-deliver the lost tail.
func (r *reliability) crash(h int) {
	rh := r.hosts[h]
	if rh.down {
		return
	}
	rh.down = true
	ep := r.nw.eps[h]
	// The receive queue and undelivered poll/sweep events are volatile.
	for {
		if _, ok := ep.ready.TryGet(); !ok {
			break
		}
	}
	for _, pm := range ep.pending[ep.pendHead:] {
		// Unfired entries only: fired ones were already removed by fire().
		pm.fired = true // their scheduled fire events will no-op and recycle
	}
	for i := range ep.pending {
		ep.pending[i] = nil
	}
	ep.pending = ep.pending[:0]
	ep.pendHead = 0
	for i := range rh.recv {
		rs := &rh.recv[i]
		rs.ooo = nil
		if rs.nextAccept > rs.nextProcess {
			rs.nextAccept = rs.nextProcess
		}
	}
}

// restart brings host h back: flush every outbound session immediately
// (peers may be blocked on frames we queued while down) and hand control
// to the cluster's recovery hook.
func (r *reliability) restart(h int) {
	rh := r.hosts[h]
	if !rh.down {
		return
	}
	rh.down = false
	ep := r.nw.eps[h]
	for to := range rh.send {
		ss := &rh.send[to]
		if len(ss.unacked) == 0 {
			continue
		}
		ss.timerGen++
		ss.timerArmed = false
		ss.rto = r.rtoMin
		for _, m := range ss.unacked {
			ep.stats.Retransmits++
			r.transmit(h, to, m)
		}
		r.armTimer(h, to, ss)
	}
	if r.nw.restartHook != nil {
		r.nw.restartHook(h)
	}
}
