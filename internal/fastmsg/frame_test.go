package fastmsg

import (
	"bytes"
	"hash/fnv"
	"testing"
)

func frameSeeds() []*Frame {
	return []*Frame{
		{Kind: FrameData, From: 0, To: 1, Seq: 1, Size: 40, Data: []byte("hello")},
		{Kind: FrameData, From: 3, To: 0, Seq: 1 << 40, Size: 4096, Data: bytes.Repeat([]byte{0xAB}, 64)},
		{Kind: FrameData, From: 7, To: 7, Seq: 2, Size: 0, Data: nil},
		{Kind: FrameAck, From: 1, To: 0, Seq: 17},
		{Kind: FrameAck, From: 65535, To: 65534, Seq: 1},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range frameSeeds() {
		enc := EncodeFrame(f)
		g, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", f, err)
		}
		if g.Kind != f.Kind || g.From != f.From || g.To != f.To || g.Seq != f.Seq ||
			g.Size != f.Size || !bytes.Equal(g.Data, f.Data) {
			t.Fatalf("round trip changed the frame: %+v -> %+v", f, g)
		}
		r := &reliability{}
		r.selfCheckFrame(f)
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	good := EncodeFrame(frameSeeds()[0])
	body := good[:len(good)-4]
	cases := map[string][]byte{
		"empty":         nil,
		"short":         good[:5],
		"bad checksum":  append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^0xFF),
		"bad magic":     reseal(body, func(b []byte) { b[0] = 0x00 }),
		"bad version":   reseal(body, func(b []byte) { b[1] = 0x7F }),
		"bad kind":      reseal(body, func(b []byte) { b[2] = 9 }),
		"trailing junk": reseal(append(append([]byte{}, body...), 0x00), nil),
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// reseal mutates a frame's body and recomputes the checksum, so the
// mutation is reached rather than caught by the integrity check.
func reseal(body []byte, mutate func([]byte)) []byte {
	b := append([]byte{}, body...)
	if mutate != nil {
		mutate(b)
	}
	h := fnv.New32a()
	h.Write(b)
	return h.Sum(b)
}

// FuzzFrameDecode feeds DecodeFrame adversarial inputs: it must reject
// garbage with an error (never panic or over-read), and anything it
// accepts must survive a re-encode/re-decode round trip unchanged —
// the parser and printer agree on the format.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range frameSeeds() {
		f.Add(EncodeFrame(fr))
	}
	f.Add([]byte{})
	f.Add([]byte{frameMagic, frameVersion, FrameData})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		enc := EncodeFrame(fr)
		g, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded accepted frame failed: %v", err)
		}
		if g.Kind != fr.Kind || g.From != fr.From || g.To != fr.To || g.Seq != fr.Seq ||
			g.Size != fr.Size || !bytes.Equal(g.Data, fr.Data) {
			t.Fatalf("round trip changed an accepted frame: %+v -> %+v", fr, g)
		}
	})
}
