package fastmsg

import (
	"testing"

	"millipage/internal/sim"
)

// TestFireRemovesEntryOutOfArrivalOrder covers the pending-list leak:
// fire used to compact only the already-fired *prefix* of pending, so an
// entry fired ahead of an earlier arrival (which happens when a busy/idle
// transition re-times part of the list) stayed in pending — re-walked by
// every idle flush — until the whole prefix ahead of it cleared.
func TestFireRemovesEntryOutOfArrivalOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	ep := nw.Endpoint(1)

	a := &pendingMsg{m: &Message{Payload: "a"}, arrived: eng.Now()}
	b := &pendingMsg{m: &Message{Payload: "b"}, arrived: eng.Now()}
	c := &pendingMsg{m: &Message{Payload: "c"}, arrived: eng.Now()}
	ep.pending = []*pendingMsg{a, b, c}

	ep.fire(b) // out of arrival order: a has not fired yet
	if len(ep.pending) != 2 || ep.pending[0] != a || ep.pending[1] != c {
		t.Fatalf("fired entry retained: pending has %d entries", len(ep.pending))
	}
	ep.fire(b) // double fire must be a no-op
	if len(ep.pending) != 2 || ep.stats.Received != 1 {
		t.Fatalf("double fire not idempotent: %d pending, %d received",
			len(ep.pending), ep.stats.Received)
	}
	ep.fire(c)
	ep.fire(a)
	if len(ep.pending) != 0 {
		t.Fatalf("pending not drained: %d entries left", len(ep.pending))
	}
	if ep.stats.Received != 3 {
		t.Fatalf("received = %d, want 3", ep.stats.Received)
	}
}

// TestPerSenderFIFOAcrossBusyTransitions drives two senders at a
// destination that oscillates between busy and idle — the pattern that
// produces out-of-arrival-order fires — and checks that per-sender FIFO
// holds, nothing is lost or duplicated, and the pending list drains.
func TestPerSenderFIFOAcrossBusyTransitions(t *testing.T) {
	const perSender = 12
	eng := sim.NewEngine(9)
	nw := New(eng, 3, DefaultParams())
	dst := nw.Endpoint(2)
	var got []int
	dst.SetHandler(func(p *sim.Proc, m *Message) {
		got = append(got, m.Payload.(int))
	})

	sender := func(id int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				nw.Endpoint(id).Send(p, 2, &Message{Size: 32, Payload: i*2 + id})
				p.Sleep(50 * sim.Microsecond)
			}
		}
	}
	eng.Spawn("sender-0", sender(0))
	eng.Spawn("sender-1", sender(1))
	eng.Spawn("toggler", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			dst.SetBusy(+1)
			p.Sleep(150 * sim.Microsecond)
			dst.SetBusy(-1)
			p.Sleep(60 * sim.Microsecond)
		}
		p.Sleep(10 * sim.Millisecond) // let the sweeper-delayed tail drain
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2*perSender {
		t.Fatalf("delivered %d messages, want %d", len(got), 2*perSender)
	}
	last := map[int]int{0: -1, 1: -1}
	for _, v := range got {
		id, seq := v%2, v/2
		if seq != last[id]+1 {
			t.Fatalf("sender %d delivered out of order: seq %d after %d", id, seq, last[id])
		}
		last[id] = seq
	}
	if n := len(dst.pending); n != 0 {
		t.Fatalf("pending list not drained: %d entries", n)
	}
}
