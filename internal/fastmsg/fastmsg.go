// Package fastmsg simulates the messaging substrate of the Millipage paper:
// Illinois FastMessages (FM) on a switched Myrinet LAN, as driven by
// Millipage's DSM service threads on Windows NT.
//
// The model has three calibrated components, all in virtual time:
//
//   - per-message CPU cost at the sender and at the receiver (FM is a
//     user-level library: send/receive cost is endpoint processing, not
//     kernel crossings), plus a small wire latency. The constants are
//     fitted to Table 1 of the paper (32-byte header send/recv 12 µs,
//     0.5 KB 22 µs, 1 KB 34 µs, 4 KB 90 µs) and to the quoted 25 µs
//     small-message roundtrip;
//
//   - the polling discipline: FM only delivers when the receiver polls.
//     When the destination host is idle (its application threads are all
//     blocked) the low-priority poller thread picks messages up almost
//     immediately. When the host is computing, messages wait for the
//     sweeper thread, which wakes on a nominal 1 ms multimedia timer;
//
//   - the NT timer pathology reported in the paper (after Jones & Regehr):
//     timer events arrive either within tens of microseconds or after
//     several milliseconds (σ ≈ 955 µs for a 1 ms timer). The sweeper's
//     tick train is drawn from a bimodal gap distribution, which is what
//     produces the paper's ~500 µs average service-thread delay.
//
// Messages between a pair of endpoints are reliable and FIFO, as FM
// guarantees. When a faultnet plan is installed (see reliable.go) the
// raw wire becomes lossy instead, and a sequence-numbered ack/
// retransmission layer above it restores exactly-once FIFO delivery;
// the clean path is untouched — no sequencing, no acks, no allocation.
package fastmsg

import (
	"fmt"

	"millipage/internal/sim"
)

// Params holds the calibrated cost model. All durations are virtual time.
type Params struct {
	// Sender-side CPU per message: SendBase + size*SendPerByte.
	SendBase    sim.Duration
	SendPerByte sim.Duration // duration per byte (fractional ns folded into base)

	// Wire/NIC latency between send completion and arrival at the
	// destination adapter: WireBase + size*WirePerByte.
	WireBase    sim.Duration
	WirePerByte sim.Duration

	// Receiver-side CPU per message, charged to the service thread before
	// the handler runs: RecvBase + size*RecvPerByte.
	RecvBase    sim.Duration
	RecvPerByte sim.Duration

	// PollIdle is how long an arrived message waits when the destination
	// host is idle: the poller's loop latency.
	PollIdle sim.Duration

	// Sweeper tick-gap distribution for busy hosts (the NT timer model):
	// with probability SweepShortProb the gap is uniform in
	// [SweepShortLo, SweepShortHi], otherwise uniform in
	// [SweepLongLo, SweepLongHi].
	SweepShortProb float64
	SweepShortLo   sim.Duration
	SweepShortHi   sim.Duration
	SweepLongLo    sim.Duration
	SweepLongHi    sim.Duration

	// PerfectTimers disables the sweeper pathology: busy hosts service
	// messages after exactly SweepShortLo. Used by ablation benchmarks
	// ("once the polling and timer-resolution problems are solved").
	PerfectTimers bool
}

// DefaultParams returns the model calibrated to the paper's testbed
// (300 MHz Pentium II, HPVM FM 1.0, Myrinet, NT 4.0 SP3).
func DefaultParams() Params {
	return Params{
		// Fit to Table 1: send/recv of 32 B = 12 µs ... 4 KB = 90 µs.
		SendBase:    4900 * sim.Nanosecond,
		SendPerByte: 9,
		WireBase:    1500 * sim.Nanosecond,
		WirePerByte: 1,
		RecvBase:    4900 * sim.Nanosecond,
		RecvPerByte: 9,

		PollIdle: 3 * sim.Microsecond,

		// Bimodal NT-timer model: "most of them appear either within
		// several tens of microseconds ... or take several milliseconds".
		SweepShortProb: 0.55,
		SweepShortLo:   20 * sim.Microsecond,
		SweepShortHi:   80 * sim.Microsecond,
		SweepLongLo:    500 * sim.Microsecond,
		SweepLongHi:    2600 * sim.Microsecond,
	}
}

// SendCPU returns the sender-side CPU cost for a message of size bytes.
func (pr Params) SendCPU(size int) sim.Duration {
	return pr.SendBase + sim.Duration(size)*pr.SendPerByte
}

// WireLatency returns the adapter-to-adapter latency for size bytes.
func (pr Params) WireLatency(size int) sim.Duration {
	return pr.WireBase + sim.Duration(size)*pr.WirePerByte
}

// RecvCPU returns the receiver-side CPU cost for size bytes.
func (pr Params) RecvCPU(size int) sim.Duration {
	return pr.RecvBase + sim.Duration(size)*pr.RecvPerByte
}

// LatencyFloor returns the smallest cross-host delay the model can
// produce: the wire latency of a zero-byte frame. Every Send schedules
// its arrival at least this far in the future (WireLatency grows with
// size, and the per-destination FIFO bump only pushes arrivals later),
// which is exactly the lookahead contract a sharded engine's
// conservative windows rely on — fastmsg declares it via
// sim.Engine.SetLookahead in New.
func (pr Params) LatencyFloor() sim.Duration { return pr.WireBase }

// OneWay returns the full uncontended cost of moving size bytes from a
// sender process to a receiver handler on an idle host — the quantity
// Table 1 reports as "message send/recv".
func (pr Params) OneWay(size int) sim.Duration {
	return pr.SendCPU(size) + pr.WireLatency(size) + pr.RecvCPU(size)
}

// Message is one FM message. Payload carries the protocol structure
// (opaque to this package); Data carries bulk bytes (minipage contents).
// Size is the wire size used by the cost model — protocols set it to the
// header size plus len(Data).
//
// Allocation-sensitive senders obtain envelopes with AllocMessage
// instead of allocating literals. A pool envelope is sent at most once
// and is recycled as soon as the destination's handler returns, so
// neither sender nor handler may retain it. Literal-constructed
// messages keep the historical ownership: the receiver may hold on to
// them indefinitely.
type Message struct {
	From    int
	To      int
	Size    int
	Payload any
	Data    []byte

	// Seq is the reliability layer's per-link sequence number; 0 on the
	// clean path (no faults installed), where the wire itself is FIFO.
	Seq uint64

	// refs counts the reliability layer's holders of this envelope: the
	// send session's retransmission log, every scheduled wire arrival
	// (first transmission, duplicates, retransmits), and the delivery
	// pipeline. Always 0 on the clean path, where the single in-flight
	// arrival is the only holder.
	refs int

	pooled bool  // lifecycle managed by the network free pool
	state  uint8 // envelope lifecycle, for retention/double-free detection
}

// Envelope lifecycle states. Literal-constructed messages stay at
// msgLiteral and are unchecked (their historical ownership: the receiver
// may retain them). Pool envelopes walk allocated → sent → delivered →
// recycled; any other transition is a lifecycle bug (an envelope re-sent
// or retained past its handler's return) and panics at the spot instead
// of silently aliasing a recycled record.
const (
	msgLiteral uint8 = iota
	msgAllocated
	msgSent
	msgDelivered
	msgRecycled // parked in the free pool; any use is a retention bug
)

// Handler processes one delivered message in the destination's service
// thread. It runs in process context: it may sleep (to charge protocol
// CPU costs) and send further messages.
type Handler func(p *sim.Proc, m *Message)

// Network connects n endpoints over the simulated fabric.
type Network struct {
	eng    *sim.Engine
	params Params
	eps    []*Endpoint

	// pools holds the recycled-envelope freelists, one per calendar
	// shard: every alloc and recycle happens on the owning shard, so no
	// locking. On the single-shard engine all endpoints share pools[0] —
	// the historical network-wide pool, where even one-way flows recycle
	// back to their sender. On a sharded engine each host pools its own
	// envelopes (allocated from the sender's pool, recycled into the
	// receiver's; request/reply traffic balances the flows).
	pools []*msgPool

	// rel is non-nil once a fault plan is installed: the sequence/ack/
	// retransmission machinery of reliable.go. Nil on the clean path.
	rel         *reliability
	restartHook func(host int)
}

// msgPool is one shard's envelope freelist.
type msgPool struct {
	free []*Message
}

// New creates a network of n endpoints on eng. Each endpoint gets a
// daemon service-thread process that runs its handler.
//
// On a sharded engine the network binds endpoint i to shard i+1 (shard
// 0 is reserved for global services, per the engine's convention), so
// eng must have been built with n+1 shards; New also declares the cost
// model's latency floor as the engine's lookahead, which is what lets
// the conservative windows run the hosts concurrently.
func New(eng *sim.Engine, n int, params Params) *Network {
	nw := &Network{eng: eng, params: params}
	nw.eps = make([]*Endpoint, n)
	sharded := eng.NumShards() > 1
	if sharded {
		if eng.NumShards() != n+1 {
			panic(fmt.Sprintf("fastmsg: sharded engine has %d shards for %d endpoints (want one per endpoint plus shard 0)", eng.NumShards(), n))
		}
		eng.SetLookahead(params.LatencyFloor())
	}
	nw.pools = make([]*msgPool, eng.NumShards())
	for i := range nw.pools {
		nw.pools[i] = &msgPool{}
	}
	for i := range nw.eps {
		sh := eng.Shard(0)
		if sharded {
			sh = eng.Shard(i + 1)
		}
		ep := &Endpoint{
			nw:          nw,
			sh:          sh,
			pool:        nw.pools[sh.ID()],
			id:          i,
			ready:       sim.NewQueue[*Message](eng),
			lastDeliver: make([]sim.Time, n),
		}
		// Bind the hot-path callbacks once so scheduling an arrival or a
		// service-thread handoff never allocates a closure.
		ep.arriveFn = ep.arriveAny
		ep.fireFn = ep.fireAny
		nw.eps[i] = ep
		sh.SpawnDaemon(fmt.Sprintf("fm-server-%d", i), ep.serve)
	}
	return nw
}

// allocMessage reuses a recycled envelope from the endpoint's shard
// pool when one is available. Under an installed fault plan the
// retransmission buffer and duplicated wire arrivals share the envelope
// past the handler's return, so there the pool is driven by the
// reference count (releaseMessage) instead of the handler's completion.
func (ep *Endpoint) allocMessage() *Message {
	pool := ep.pool
	if n := len(pool.free); n > 0 {
		m := pool.free[n-1]
		pool.free = pool.free[:n-1]
		m.pooled = true
		m.state = msgAllocated
		return m
	}
	return &Message{pooled: true, state: msgAllocated}
}

// recycleMessage returns a delivered pool envelope to this endpoint's
// shard pool. A recycled envelope is zeroed, so recycling it twice (a
// handler retained it past return and a later path freed it again)
// trips the state check here rather than corrupting the pool with an
// aliased record.
func (ep *Endpoint) recycleMessage(m *Message) {
	if !m.pooled || m.state != msgDelivered {
		panic("fastmsg: recycle of an envelope that is not a delivered pool envelope (double free?)")
	}
	*m = Message{}
	m.state = msgRecycled
	ep.pool.free = append(ep.pool.free, m)
}

// retainMessage records one more reliability-layer holder of m. Only
// meaningful under an installed fault plan; the clean path never shares
// an envelope.
func (nw *Network) retainMessage(m *Message) { m.refs++ }

// releaseMessage drops one reliability-layer hold on m and recycles the
// envelope once the last holder is gone. The last hold can only drop
// after the destination's handler completed (the send-log hold needs a
// cumulative ack, which complete() emits), so a pool envelope is always
// msgDelivered here.
func (nw *Network) releaseMessage(m *Message) {
	m.refs--
	if m.refs < 0 {
		panic("fastmsg: release of an envelope with no holders (double free?)")
	}
	if m.refs == 0 && m.pooled {
		nw.eps[m.To].recycleMessage(m)
	}
}

// Endpoint returns endpoint i.
func (nw *Network) Endpoint(i int) *Endpoint { return nw.eps[i] }

// Size returns the number of endpoints.
func (nw *Network) Size() int { return len(nw.eps) }

// Params returns the network's cost model.
func (nw *Network) Params() Params { return nw.params }

// Stats aggregates per-endpoint message accounting. The last four
// counters move only under an installed fault plan.
type Stats struct {
	Sent         uint64
	Received     uint64
	BytesSent    uint64
	ServiceDelay sim.Duration // total arrival→handler-start delay

	Retransmits uint64 // frames re-sent by the reliability layer
	DupsDropped uint64 // duplicate frames discarded at the receiver
	OutOfOrder  uint64 // frames buffered waiting for a sequence gap
	DroppedDown uint64 // frames discarded because this host was down
}

// AvgServiceDelay reports the mean delay between a message's arrival and
// its handler starting — the paper's "response of the server thread".
func (s Stats) AvgServiceDelay() sim.Duration {
	if s.Received == 0 {
		return 0
	}
	return s.ServiceDelay / sim.Duration(s.Received)
}

// Endpoint is one host's attachment to the network. All of an
// endpoint's mutable state is owned by its calendar shard (the host's
// shard on a sharded engine, shard 0 otherwise): arrivals, fires, and
// the service thread all execute there, and cross-host sends travel
// through Shard.Post.
type Endpoint struct {
	nw          *Network
	sh          *sim.Shard // calendar shard that owns this endpoint
	pool        *msgPool   // the shard's envelope freelist (shared on shard 0)
	id          int
	handler     Handler
	ready       *sim.Queue[*Message]
	busy        int // number of runnable application threads on this host
	lastDeliver []sim.Time
	sweepTick   sim.Time
	pending     []*pendingMsg // in-flight arrivals, live from pendHead
	pendHead    int           // head index: popping with [1:] would shed capacity and realloc per message
	freePM      []*pendingMsg // recycled pending records
	arriveFn    func(any)     // ep.arriveAny, bound once at New
	fireFn      func(any)     // ep.fireAny, bound once at New
	stats       Stats
}

type pendingMsg struct {
	m       *Message
	arrived sim.Time
	fired   bool
	refs    int // fire events in the calendar still referencing this record
}

// ID returns the endpoint's host id.
func (ep *Endpoint) ID() int { return ep.id }

// Shard returns the calendar shard that owns this endpoint. Everything
// a host does — application threads, service handlers, timers — must be
// scheduled on its endpoint's shard.
func (ep *Endpoint) Shard() *sim.Shard { return ep.sh }

// Stats returns a copy of the endpoint's counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// SetHandler installs the message handler. It must be set before any
// message arrives.
func (ep *Endpoint) SetHandler(h Handler) { ep.handler = h }

// SetBusy adjusts the count of runnable application threads on this host.
// The transition to zero (host idle) releases any messages waiting for a
// sweeper tick to the fast poller path — the poller only gets CPU when the
// application does not need it.
func (ep *Endpoint) SetBusy(delta int) {
	was := ep.busy
	ep.busy += delta
	if ep.busy < 0 {
		panic("fastmsg: negative busy count")
	}
	if was > 0 && ep.busy == 0 {
		// Poller takes over: flush pending messages promptly.
		for _, pm := range ep.pending[ep.pendHead:] {
			if pm.fired {
				continue
			}
			pm.refs++
			ep.sh.AfterArg(ep.nw.params.PollIdle, ep.fireFn, pm)
		}
	}
}

// Busy reports whether any application thread on this host is runnable.
func (ep *Endpoint) Busy() bool { return ep.busy > 0 }

// AllocMessage returns a zeroed envelope, reusing one whose handler has
// already completed when possible. See the Message doc for the
// single-send lifecycle this implies.
func (ep *Endpoint) AllocMessage() *Message { return ep.allocMessage() }

// Send transmits m to endpoint `to`. It charges the sending process the
// sender-side CPU cost (p may be nil for engine-context sends, which
// charge nothing). Delivery is reliable and FIFO per destination —
// natively on the clean path, via the reliability layer under faults.
func (ep *Endpoint) Send(p *sim.Proc, to int, m *Message) {
	if m.Size <= 0 {
		m.Size = len(m.Data)
	}
	if m.state == msgRecycled {
		panic("fastmsg: Send of a recycled envelope — it was retained past its handler's return")
	}
	if m.pooled {
		if m.state != msgAllocated {
			panic("fastmsg: Send of a pooled envelope that is already in flight — AllocMessage envelopes are single-send")
		}
		m.state = msgSent
	}
	m.From = ep.id
	m.To = to
	pr := ep.nw.params
	if p != nil {
		p.Sleep(pr.SendCPU(m.Size))
	}
	if r := ep.nw.rel; r != nil {
		r.send(ep, to, m)
		return
	}
	at := ep.sh.Now().Add(pr.WireLatency(m.Size))
	if at <= ep.lastDeliver[to] {
		at = ep.lastDeliver[to] + 1 // preserve FIFO ordering per destination
	}
	ep.lastDeliver[to] = at
	ep.stats.Sent++
	ep.stats.BytesSent += uint64(m.Size)
	dst := ep.nw.eps[to]
	// Cross-shard arrivals respect the engine's lookahead: at is at
	// least WireBase past this shard's clock (the FIFO bump above only
	// pushes later), which is the floor New declared.
	ep.sh.Post(dst.sh, at, dst.arriveFn, m)
}

// arriveAny runs in engine context when a message reaches this
// endpoint's adapter. Under faults the reliability layer gates admission
// (dedup, reordering repair, down-host discard) before delivery.
func (ep *Endpoint) arriveAny(a any) {
	m := a.(*Message)
	if r := ep.nw.rel; r != nil {
		r.arrive(ep, m)
		return
	}
	ep.deliver(m)
}

// deliver admits one message to the poll/sweep machinery that hands it
// to the service thread. It runs on the endpoint's own shard.
func (ep *Endpoint) deliver(m *Message) {
	pm := ep.newPending(m, ep.sh.Now())
	ep.pending = append(ep.pending, pm)
	var wait sim.Duration
	if ep.busy == 0 {
		wait = ep.nw.params.PollIdle
	} else {
		wait = ep.nextSweepGap()
	}
	pm.refs++
	ep.sh.AfterArg(wait, ep.fireFn, pm)
}

// newPending reuses a recycled pending record when one is available.
func (ep *Endpoint) newPending(m *Message, at sim.Time) *pendingMsg {
	if n := len(ep.freePM); n > 0 {
		pm := ep.freePM[n-1]
		ep.freePM = ep.freePM[:n-1]
		pm.m, pm.arrived = m, at
		return pm
	}
	return &pendingMsg{m: m, arrived: at}
}

// fireAny is the calendar-side entry: it drops the event's reference and
// recycles the record once the last scheduled fire has passed through
// (a record can be referenced by its arrival event and by busy→idle
// flushes at once, so reuse must wait for all of them).
func (ep *Endpoint) fireAny(a any) {
	pm := a.(*pendingMsg)
	pm.refs--
	ep.fire(pm)
	if pm.fired && pm.refs == 0 {
		*pm = pendingMsg{}
		ep.freePM = append(ep.freePM, pm)
	}
}

// fire hands a pending message to the service thread, exactly once.
func (ep *Endpoint) fire(pm *pendingMsg) {
	if pm.fired {
		return
	}
	if ep.nw.rel != nil {
		// Under faults the reliability layer admits frames in per-link
		// sequence order, but each admission schedules its own fire event,
		// and same-instant fire events may pop in either order (schedule
		// exploration exercises exactly this). Handing the service thread
		// whichever record pops first would break the per-link FIFO
		// guarantee that complete() asserts, so deliver the link's oldest
		// undelivered message instead — the unfired record with the
		// smallest sequence number, since earlier swaps may have scrambled
		// which record holds which message — and let the younger message
		// ride this record's remaining fire event.
		best := pm
		for i := ep.pendHead; i < len(ep.pending); i++ {
			q := ep.pending[i]
			if q == nil || q == pm || q.fired || q.m.From != pm.m.From {
				continue
			}
			if q.m.Seq < best.m.Seq {
				best = q
			}
		}
		if best != pm {
			pm.m, best.m = best.m, pm.m
			pm.arrived, best.arrived = best.arrived, pm.arrived
		}
	}
	pm.fired = true
	// Remove the fired entry itself, wherever it sits. The head is the
	// overwhelmingly common case (FIFO delivery), made O(1) here; the
	// scan below covers entries fired out of arrival order after a
	// busy/idle transition re-timed part of the list — dropping only a
	// fired prefix instead would strand such entries behind a
	// still-pending one, re-walked by every idle flush in SetBusy and
	// retained until the whole prefix clears.
	if ep.pendHead < len(ep.pending) && ep.pending[ep.pendHead] == pm {
		ep.pending[ep.pendHead] = nil
		ep.pendHead++
		if ep.pendHead == len(ep.pending) {
			ep.pending = ep.pending[:0]
			ep.pendHead = 0
		}
	} else {
		for i := ep.pendHead; i < len(ep.pending); i++ {
			if ep.pending[i] == pm {
				ep.pending = append(ep.pending[:i], ep.pending[i+1:]...)
				break
			}
		}
	}
	ep.stats.Received++
	ep.stats.ServiceDelay += ep.sh.Now().Sub(pm.arrived)
	ep.ready.Put(pm.m)
}

// nextSweepGap returns the wait until the busy host's sweeper next runs.
func (ep *Endpoint) nextSweepGap() sim.Duration {
	now := ep.sh.Now()
	if ep.sweepTick < now {
		ep.sweepTick = now
	}
	for ep.sweepTick <= now {
		ep.sweepTick = ep.sweepTick.Add(ep.sweepGap())
	}
	return ep.sweepTick.Sub(now)
}

// sweepGap draws one inter-tick gap from the NT timer model. The draw
// comes from the endpoint's shard stream: on the single-shard engine
// that is the engine's historical stream (digests unchanged); on a
// sharded engine each host consumes its own stream, so the draws are
// independent of other hosts' traffic — and of worker count.
func (ep *Endpoint) sweepGap() sim.Duration {
	pr := ep.nw.params
	rng := ep.sh.Rand()
	if pr.PerfectTimers {
		return pr.SweepShortLo
	}
	uniform := func(lo, hi sim.Duration) sim.Duration {
		if hi <= lo {
			return lo
		}
		return lo + sim.Duration(rng.Int63n(int64(hi-lo)))
	}
	if rng.Float64() < pr.SweepShortProb {
		return uniform(pr.SweepShortLo, pr.SweepShortHi)
	}
	return uniform(pr.SweepLongLo, pr.SweepLongHi)
}

// serve is the endpoint's service-thread body: receive, charge receive
// CPU, run the protocol handler, then (under faults) acknowledge the
// completed sequence number and (clean path) recycle the envelope.
func (ep *Endpoint) serve(p *sim.Proc) {
	for {
		m := ep.ready.Get(p)
		m.state = msgDelivered
		r := ep.nw.rel
		if r != nil && m.Seq != 0 {
			r.beginService(ep, m)
		}
		p.Sleep(ep.nw.params.RecvCPU(m.Size))
		if ep.handler == nil {
			panic(fmt.Sprintf("fastmsg: endpoint %d received %T with no handler", ep.id, m.Payload))
		}
		ep.handler(p, m)
		if r != nil && m.Seq != 0 {
			r.complete(ep, m)
			// Under faults the send log and late wire duplicates may still
			// hold the envelope; drop only the delivery pipeline's hold.
			ep.nw.releaseMessage(m)
		} else if m.pooled {
			ep.recycleMessage(m)
		}
	}
}
