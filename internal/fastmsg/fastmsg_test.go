package fastmsg

import (
	"testing"

	"millipage/internal/sim"
)

// newPair builds a 2-endpoint network with handler plumbing for tests.
func newPair(t *testing.T, params Params) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(42)
	return eng, New(eng, 2, params)
}

func TestOneWayCostMatchesTable1(t *testing.T) {
	// The paper's Table 1: header (32 B) 12 µs, 0.5 KB 22 µs, 1 KB 34 µs,
	// 4 KB 90 µs. The calibrated model must land within 10% of each.
	pr := DefaultParams()
	cases := []struct {
		size int
		want float64 // µs
	}{
		{32, 12}, {512, 22}, {1024, 34}, {4096, 90},
	}
	for _, c := range cases {
		got := pr.OneWay(c.size).Microseconds()
		if got < c.want*0.90 || got > c.want*1.10 {
			t.Errorf("OneWay(%d) = %.1fus, want %.1fus +-10%%", c.size, got, c.want)
		}
	}
}

func TestDeliveryToIdleHost(t *testing.T) {
	eng, nw := newPair(t, DefaultParams())
	var gotAt sim.Time
	var got *Message
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		got = m
		gotAt = p.Now()
	})
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 1, &Message{Size: 32, Payload: "ping"})
		p.Sleep(sim.Millisecond) // keep the run alive through delivery
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("message not delivered")
	}
	if got.Payload != "ping" || got.From != 0 || got.To != 1 {
		t.Fatalf("bad message: %+v", got)
	}
	want := DefaultParams().OneWay(32) + DefaultParams().PollIdle
	d := sim.Duration(gotAt)
	if d < want-sim.Microsecond || d > want+2*sim.Microsecond {
		t.Fatalf("handled at %v, want about %v", d, want)
	}
}

func TestFIFOPerDestination(t *testing.T) {
	// A large message followed by a small one must not be overtaken.
	eng, nw := newPair(t, DefaultParams())
	var order []int
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		order = append(order, m.Payload.(int))
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		// Engine-context sends (p=nil charges nothing) issued back-to-back
		// so wire latency alone would reorder them.
		ep.Send(nil, 1, &Message{Size: 65536, Payload: 1})
		ep.Send(nil, 1, &Message{Size: 8, Payload: 2})
		p.Sleep(sim.Second)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestBusyHostWaitsForSweeper(t *testing.T) {
	pr := DefaultParams()
	eng, nw := newPair(t, pr)
	var handledAt sim.Time
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { handledAt = p.Now() })
	nw.Endpoint(1).SetBusy(+1) // host 1 is computing
	var sentAt sim.Time
	eng.Spawn("sender", func(p *sim.Proc) {
		sentAt = p.Now()
		nw.Endpoint(0).Send(p, 1, &Message{Size: 32})
		p.Sleep(20 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	delay := handledAt.Sub(sentAt)
	if delay < pr.SweepShortLo {
		t.Fatalf("busy-host delivery after %v, want at least a sweeper gap (>=%v)", delay, pr.SweepShortLo)
	}
}

func TestIdleTransitionFlushesPending(t *testing.T) {
	// Force a long sweeper gap, then make the host idle: the poller must
	// pick the message up in ~PollIdle rather than waiting out the tick.
	pr := DefaultParams()
	pr.SweepShortProb = 0 // every gap is long
	pr.SweepLongLo = 50 * sim.Millisecond
	pr.SweepLongHi = 60 * sim.Millisecond
	eng, nw := newPair(t, pr)
	var handledAt sim.Time
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { handledAt = p.Now() })
	nw.Endpoint(1).SetBusy(+1)
	eng.Spawn("sender", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 1, &Message{Size: 32})
		p.Sleep(500 * sim.Microsecond)
		nw.Endpoint(1).SetBusy(-1) // app thread blocks; host 1 goes idle
		p.Sleep(5 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if handledAt == 0 {
		t.Fatal("message never handled")
	}
	if sim.Duration(handledAt) > 600*sim.Microsecond {
		t.Fatalf("handled at %v, want shortly after the idle transition at 500us+send", handledAt)
	}
}

func TestPerfectTimersServiceQuickly(t *testing.T) {
	pr := DefaultParams()
	pr.PerfectTimers = true
	pr.SweepShortLo = 10 * sim.Microsecond
	eng, nw := newPair(t, pr)
	var handledAt sim.Time
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { handledAt = p.Now() })
	nw.Endpoint(1).SetBusy(+1)
	eng.Spawn("sender", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 1, &Message{Size: 32})
		p.Sleep(10 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.Duration(handledAt) > 50*sim.Microsecond {
		t.Fatalf("perfect-timer delivery took %v, want < 50us", sim.Duration(handledAt))
	}
}

func TestHandlerCanReply(t *testing.T) {
	eng, nw := newPair(t, DefaultParams())
	done := false
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		nw.Endpoint(1).Send(p, 0, &Message{Size: 32, Payload: "pong"})
	})
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) {
		if m.Payload == "pong" {
			done = true
		}
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 1, &Message{Size: 32, Payload: "ping"})
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("no pong")
	}
}

func TestRoundTripSmallMessageNearPaper(t *testing.T) {
	// The paper measured a 25 µs roundtrip for 200-byte messages. Our
	// model should be in the same ballpark (within 2x, it is a model).
	eng, nw := newPair(t, DefaultParams())
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		nw.Endpoint(1).Send(p, 0, &Message{Size: 200})
	})
	var rtt sim.Duration
	evDone := sim.NewEvent(eng)
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) { evDone.Set() })
	eng.Spawn("pinger", func(p *sim.Proc) {
		start := p.Now()
		nw.Endpoint(0).Send(p, 1, &Message{Size: 200})
		evDone.Wait(p)
		rtt = p.Now().Sub(start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	us := rtt.Microseconds()
	if us < 15 || us > 50 {
		t.Fatalf("200B roundtrip = %.1fus, want 15-50us (paper: 25us)", us)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, nw := newPair(t, DefaultParams())
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			nw.Endpoint(0).Send(p, 1, &Message{Size: 100})
		}
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := nw.Endpoint(0).Stats(), nw.Endpoint(1).Stats()
	if s0.Sent != 5 || s0.BytesSent != 500 {
		t.Fatalf("sender stats = %+v", s0)
	}
	if s1.Received != 5 {
		t.Fatalf("receiver stats = %+v", s1)
	}
	if s1.AvgServiceDelay() <= 0 {
		t.Fatal("no service delay recorded")
	}
}

func TestSizeDefaultsToDataLength(t *testing.T) {
	eng, nw := newPair(t, DefaultParams())
	var gotSize int
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) { gotSize = m.Size })
	eng.Spawn("s", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 1, &Message{Data: make([]byte, 77)})
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotSize != 77 {
		t.Fatalf("Size = %d, want 77", gotSize)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	eng := sim.NewEngine(4)
	nw := New(eng, 1, DefaultParams())
	var got *Message
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) { got = m })
	eng.Spawn("self", func(p *sim.Proc) {
		nw.Endpoint(0).Send(p, 0, &Message{Size: 32, Payload: "loopback"})
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Payload != "loopback" || got.From != 0 {
		t.Fatalf("self-send: %+v", got)
	}
}

func TestNegativeBusyPanics(t *testing.T) {
	eng := sim.NewEngine(4)
	nw := New(eng, 1, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative busy count did not panic")
		}
	}()
	nw.Endpoint(0).SetBusy(-1)
}

func TestManyMessagesKeepPerPairOrder(t *testing.T) {
	eng := sim.NewEngine(9)
	nw := New(eng, 3, DefaultParams())
	var got [3][]int
	for i := 0; i < 3; i++ {
		i := i
		nw.Endpoint(i).SetHandler(func(p *sim.Proc, m *Message) {
			got[i] = append(got[i], m.Payload.(int))
		})
	}
	eng.Spawn("sender", func(p *sim.Proc) {
		for k := 0; k < 30; k++ {
			// Alternate sizes so naive latency would reorder.
			size := 32
			if k%2 == 0 {
				size = 8192
			}
			nw.Endpoint(0).Send(p, 1+k%2, &Message{Size: size, Payload: k})
		}
		p.Sleep(20 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for dst := 1; dst <= 2; dst++ {
		prev := -1
		for _, v := range got[dst] {
			if v < prev {
				t.Fatalf("dst %d received out of order: %v", dst, got[dst])
			}
			prev = v
		}
		if len(got[dst]) != 15 {
			t.Fatalf("dst %d received %d messages, want 15", dst, len(got[dst]))
		}
	}
}

func TestServiceDelayStatsAccumulate(t *testing.T) {
	pr := DefaultParams()
	eng := sim.NewEngine(3)
	nw := New(eng, 2, pr)
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {})
	nw.Endpoint(1).SetBusy(+1) // sweeper-bound deliveries
	eng.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			nw.Endpoint(0).Send(p, 1, &Message{Size: 32})
			p.Sleep(sim.Millisecond)
		}
		p.Sleep(10 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := nw.Endpoint(1).Stats()
	if s.Received != 20 {
		t.Fatalf("received = %d", s.Received)
	}
	if avg := s.AvgServiceDelay(); avg < pr.SweepShortLo/2 {
		t.Fatalf("avg service delay = %v, implausibly small for a busy host", avg)
	}
}
