package fastmsg

// Transport-level conformance for the reliability layer: exactly-once,
// per-link-FIFO delivery over a wire that drops, duplicates, delays,
// partitions and crashes — plus the envelope-lifecycle guard
// regressions (pooled envelopes retained past their handler).

import (
	"fmt"
	"testing"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// relHarness runs `senders` hosts each streaming msgs sequenced payloads
// to every other host under plan, and asserts every link delivered
// exactly 0..msgs-1 in order.
func relHarness(t *testing.T, hosts, msgs int, plan faultnet.Plan, seed int64) *Network {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := New(eng, hosts, DefaultParams())
	inj, err := faultnet.NewInjector(plan, hosts, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw.InstallFaults(inj)

	// got[dst][src] collects the payload sequence each link delivered.
	got := make([][][]int, hosts)
	for i := range got {
		got[i] = make([][]int, hosts)
	}
	for i := 0; i < hosts; i++ {
		i := i
		nw.Endpoint(i).SetHandler(func(p *sim.Proc, m *Message) {
			got[i][m.From] = append(got[i][m.From], m.Payload.(int))
		})
	}

	const limit = 30 * sim.Second
	eng.At(sim.Time(limit), eng.Stop)

	total := hosts * (hosts - 1) * msgs
	delivered := func() int {
		n := 0
		for i := range got {
			for j := range got[i] {
				n += len(got[i][j])
			}
		}
		return n
	}
	for i := 0; i < hosts; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("sender-%d", i), func(p *sim.Proc) {
			ep := nw.Endpoint(i)
			for k := 0; k < msgs; k++ {
				for j := 0; j < hosts; j++ {
					if j == i {
						continue
					}
					m := ep.AllocMessage()
					m.Size = 32
					m.Payload = k
					ep.Send(p, j, m)
				}
				p.Sleep(50 * sim.Microsecond)
			}
			// Keep one non-daemon process alive until every link drains.
			if i == 0 {
				for delivered() < total {
					p.Sleep(sim.Millisecond)
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if d := delivered(); d != total {
		t.Fatalf("delivered %d of %d messages before the %v watchdog", d, total, limit)
	}
	for dst := range got {
		for src := range got[dst] {
			if src == dst {
				continue
			}
			seq := got[dst][src]
			if len(seq) != msgs {
				t.Fatalf("link %d->%d: delivered %d messages, want %d", src, dst, len(seq), msgs)
			}
			for k, v := range seq {
				if v != k {
					t.Fatalf("link %d->%d: position %d got payload %d (reordered or duplicated delivery)", src, dst, k, v)
				}
			}
		}
	}
	return nw
}

func TestReliableDropHeavy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		nw := relHarness(t, 3, 40, faultnet.Plan{Drop: 0.3, Dup: 0.15}, seed)
		var retrans uint64
		for i := 0; i < 3; i++ {
			retrans += nw.Endpoint(i).Stats().Retransmits
		}
		if retrans == 0 {
			t.Error("30% drop produced zero retransmissions — faults are not being injected")
		}
	}
}

func TestReliableReorderHeavy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		nw := relHarness(t, 3, 40, faultnet.Plan{Reorder: 0.6, Jitter: 2 * sim.Millisecond}, seed)
		var ooo uint64
		for i := 0; i < 3; i++ {
			ooo += nw.Endpoint(i).Stats().OutOfOrder
		}
		if ooo == 0 {
			t.Error("60% reorder produced zero out-of-order buffering — jitter is not biting")
		}
	}
}

func TestReliableEverything(t *testing.T) {
	plan := faultnet.Plan{
		Drop: 0.2, Dup: 0.1, Reorder: 0.3, Jitter: 3 * sim.Millisecond,
		Partitions: []faultnet.Partition{
			{A: 0b001, B: 0b110, From: sim.Time(5 * sim.Millisecond), Until: sim.Time(60 * sim.Millisecond)},
		},
		Crashes: []faultnet.Crash{
			{Host: 1, At: sim.Time(20 * sim.Millisecond), RestartAt: sim.Time(80 * sim.Millisecond)},
		},
	}
	relHarness(t, 3, 30, plan, 7)
}

// TestReliablePartitionHeal: traffic across an active partition stalls
// and is delivered after the heal, in order.
func TestReliablePartitionHeal(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	cut := faultnet.Partition{A: 0b01, B: 0b10,
		From: 0, Until: sim.Time(40 * sim.Millisecond)}
	inj, err := faultnet.NewInjector(faultnet.Plan{Partitions: []faultnet.Partition{cut}}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.InstallFaults(inj)
	var gotAt []sim.Time
	var payloads []int
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		gotAt = append(gotAt, p.Now())
		payloads = append(payloads, m.Payload.(int))
	})
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) {})
	eng.At(sim.Time(2*sim.Second), eng.Stop)
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for k := 0; k < 5; k++ {
			m := ep.AllocMessage()
			m.Size = 32
			m.Payload = k
			ep.Send(p, 1, m)
		}
		for len(payloads) < 5 {
			p.Sleep(sim.Millisecond)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 5 {
		t.Fatalf("delivered %d of 5 across the partition", len(payloads))
	}
	for i, at := range gotAt {
		if at < cut.Until {
			t.Errorf("message %d delivered at %v, inside the partition window", i, at)
		}
	}
	for i, v := range payloads {
		if v != i {
			t.Fatalf("position %d got payload %d after heal", i, v)
		}
	}
}

// TestReliableCrashRedelivery: messages accepted but not yet serviced at
// the crash are lost from the receive queue, re-delivered by the
// sender's retransmission after restart, and processed exactly once.
func TestReliableCrashRedelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	crashAt := sim.Time(10 * sim.Millisecond)
	restartAt := sim.Time(50 * sim.Millisecond)
	inj, err := faultnet.NewInjector(faultnet.Plan{
		Crashes: []faultnet.Crash{{Host: 1, At: crashAt, RestartAt: restartAt}},
	}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.InstallFaults(inj)
	restarted := false
	nw.SetRestartHook(func(h int) {
		if h != 1 {
			t.Errorf("restart hook for host %d, want 1", h)
		}
		restarted = true
	})
	var payloads []int
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		payloads = append(payloads, m.Payload.(int))
	})
	nw.Endpoint(0).SetHandler(func(p *sim.Proc, m *Message) {})
	eng.At(sim.Time(2*sim.Second), eng.Stop)
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		// A steady stream across the crash window: some messages are
		// serviced before the crash, some sit in the receive queue when
		// it hits, some arrive while the host is down.
		for k := 0; k < 40; k++ {
			m := ep.AllocMessage()
			m.Size = 32
			m.Payload = k
			ep.Send(p, 1, m)
			p.Sleep(750 * sim.Microsecond)
		}
		for len(payloads) < 40 {
			p.Sleep(sim.Millisecond)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 40 {
		t.Fatalf("delivered %d of 40 across the crash", len(payloads))
	}
	for i, v := range payloads {
		if v != i {
			t.Fatalf("position %d got payload %d — crash redelivery broke exactly-once FIFO", i, v)
		}
	}
	if !restarted {
		t.Error("restart hook never ran")
	}
	if nw.Endpoint(1).Stats().DroppedDown == 0 {
		t.Error("no frames were dropped while the host was down — the crash window never bit")
	}
}

// TestReliableDeterminism: two runs with identical plan and seed produce
// identical virtual end times and identical transport counters.
func TestReliableDeterminism(t *testing.T) {
	plan := faultnet.Plan{Drop: 0.25, Dup: 0.1, Reorder: 0.4, Jitter: 2 * sim.Millisecond}
	type fingerprint struct {
		elapsed sim.Time
		stats   [3]Stats
	}
	run := func() fingerprint {
		eng := sim.NewEngine(5)
		nw := New(eng, 3, DefaultParams())
		inj, err := faultnet.NewInjector(plan, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		nw.InstallFaults(inj)
		got := 0
		for i := 0; i < 3; i++ {
			nw.Endpoint(i).SetHandler(func(p *sim.Proc, m *Message) { got++ })
		}
		eng.At(sim.Time(10*sim.Second), eng.Stop)
		eng.Spawn("sender", func(p *sim.Proc) {
			ep := nw.Endpoint(0)
			for k := 0; k < 60; k++ {
				for j := 1; j < 3; j++ {
					m := ep.AllocMessage()
					m.Size = 64
					m.Payload = k
					ep.Send(p, j, m)
				}
				p.Sleep(100 * sim.Microsecond)
			}
			for got < 120 {
				p.Sleep(sim.Millisecond)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		var fp fingerprint
		fp.elapsed = eng.Now()
		for i := 0; i < 3; i++ {
			fp.stats[i] = nw.Endpoint(i).Stats()
		}
		return fp
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical fault runs diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// ---- Envelope lifecycle guards (pooled-envelope retention hazard) ----

func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
	}()
	fn()
}

// TestEnvelopeDoubleSend: re-sending a pooled envelope that is already
// in flight panics at the second Send.
func TestEnvelopeDoubleSend(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	ep := nw.Endpoint(0)
	m := ep.AllocMessage()
	m.Size = 32
	ep.Send(nil, 1, m)
	expectPanic(t, "single-send", func() { ep.Send(nil, 1, m) })
}

// TestEnvelopeDoubleRecycle: recycling an envelope twice (the double
// free) trips the state check instead of aliasing the pool.
func TestEnvelopeDoubleRecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	m := nw.Endpoint(0).AllocMessage()
	m.state = msgDelivered // as serve() marks it before the handler runs
	nw.Endpoint(0).recycleMessage(m)
	expectPanic(t, "double free", func() { nw.Endpoint(0).recycleMessage(m) })
}

// TestEnvelopeRetainedResend is the regression for the retention hazard:
// a handler that stores a pooled envelope and re-sends it after its
// handler returned (when the pool has already reclaimed it) panics
// instead of corrupting whatever transaction reused the envelope.
func TestEnvelopeRetainedResend(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	var retained *Message
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {
		retained = m // the bug: keeping a pooled envelope past return
	})
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		m := ep.AllocMessage()
		m.Size = 32
		ep.Send(p, 1, m)
		for retained == nil {
			p.Sleep(sim.Millisecond)
		}
		p.Sleep(sim.Millisecond) // let the service thread recycle it
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if retained == nil {
		t.Fatal("handler never ran")
	}
	if retained.state != msgRecycled {
		t.Fatalf("retained envelope state = %d, want recycled", retained.state)
	}
	expectPanic(t, "retained", func() { nw.Endpoint(1).Send(nil, 0, retained) })
}

// TestInstallFaultsAfterTraffic: arming faults mid-run is a setup bug.
func TestInstallFaultsAfterTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, DefaultParams())
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *Message) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		m := nw.Endpoint(0).AllocMessage()
		m.Size = 32
		nw.Endpoint(0).Send(p, 1, m)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.NewInjector(faultnet.Plan{Drop: 0.1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectPanic(t, "after traffic", func() { nw.InstallFaults(inj) })
}
