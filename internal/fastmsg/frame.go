package fastmsg

// Wire-format frames. The simulator hands *Message values between
// endpoints directly, but the reliability layer's contract is defined
// in terms of what a real FM implementation would put on the wire:
// a framed header carrying the link addressing, the per-link sequence
// or cumulative-ack number, and the bulk bytes, integrity-checked.
// This file is that specification — EncodeFrame/DecodeFrame are the
// single source of truth for the format — and the fault-mode transmit
// path runs every outgoing frame through an encode/decode self-check,
// so the codec is exercised by every chaos and exploration run, and
// DecodeFrame additionally faces adversarial inputs under fuzzing:
// it must reject arbitrary garbage with an error, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame kinds.
const (
	FrameData uint8 = 1 // a sequenced payload frame
	FrameAck  uint8 = 2 // a cumulative acknowledgement
)

const (
	frameVersion  = 0x01
	frameMagic    = 0xFA
	maxFrameHosts = 1 << 16 // sanity bound on host indices
	maxFrameSize  = 1 << 30 // sanity bound on the modeled wire size
)

// Frame is the decoded form of one wire frame.
type Frame struct {
	Kind uint8
	From int
	To   int
	Seq  uint64 // per-link sequence (data) or cumulative ack floor (ack)
	Size int    // modeled wire size in bytes (data only)
	Data []byte // bulk bytes (data only; nil for ack)
}

// EncodeFrame renders f in the wire format: magic, version, kind,
// varint header fields, length-prefixed bulk bytes, and a trailing
// FNV-1a/32 checksum over everything before it.
func EncodeFrame(f *Frame) []byte {
	n := 3 + 5*binary.MaxVarintLen64 + len(f.Data) + 4
	return appendFrame(make([]byte, 0, n), f)
}

// appendFrame appends f's wire encoding to dst and returns the extended
// slice — the allocation-free form of EncodeFrame, for callers that
// recycle a scratch buffer (the per-frame codec self-check on the
// fault-mode hot path).
func appendFrame(dst []byte, f *Frame) []byte {
	start := len(dst)
	dst = append(dst, frameMagic, frameVersion, f.Kind)
	dst = binary.AppendUvarint(dst, uint64(f.From))
	dst = binary.AppendUvarint(dst, uint64(f.To))
	dst = binary.AppendUvarint(dst, f.Seq)
	if f.Kind == FrameData {
		dst = binary.AppendUvarint(dst, uint64(f.Size))
		dst = binary.AppendUvarint(dst, uint64(len(f.Data)))
		dst = append(dst, f.Data...)
	}
	return binary.BigEndian.AppendUint32(dst, fnv1a32(dst[start:]))
}

// fnv1a32 is FNV-1a/32 over b, identical to hash/fnv's New32a but
// without allocating a hasher object.
func fnv1a32(b []byte) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// Frame decoding errors.
var (
	ErrFrameShort    = errors.New("fastmsg: frame truncated")
	ErrFrameMagic    = errors.New("fastmsg: bad frame magic or version")
	ErrFrameKind     = errors.New("fastmsg: unknown frame kind")
	ErrFrameField    = errors.New("fastmsg: malformed frame field")
	ErrFrameChecksum = errors.New("fastmsg: frame checksum mismatch")
)

// DecodeFrame parses one wire frame. It returns an error — never
// panics, never over-reads — on any malformed input, and requires the
// input to be exactly one frame (no trailing bytes).
func DecodeFrame(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := decodeFrameInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// decodeFrameInto is DecodeFrame into a caller-supplied Frame, for
// callers that recycle a scratch record.
func decodeFrameInto(f *Frame, b []byte) error {
	*f = Frame{}
	if len(b) < 3+1+4 {
		return ErrFrameShort
	}
	body, sum := b[:len(b)-4], b[len(b)-4:]
	if binary.BigEndian.Uint32(sum) != fnv1a32(body) {
		return ErrFrameChecksum
	}
	if body[0] != frameMagic || body[1] != frameVersion {
		return ErrFrameMagic
	}
	f.Kind = body[2]
	if f.Kind != FrameData && f.Kind != FrameAck {
		return ErrFrameKind
	}
	rest := body[3:]
	field := func(name string, max uint64) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s", ErrFrameField, name)
		}
		if v > max {
			return 0, fmt.Errorf("%w: %s %d out of range", ErrFrameField, name, v)
		}
		rest = rest[n:]
		return v, nil
	}
	from, err := field("from", maxFrameHosts-1)
	if err != nil {
		return err
	}
	to, err := field("to", maxFrameHosts-1)
	if err != nil {
		return err
	}
	f.From, f.To = int(from), int(to)
	if f.Seq, err = field("seq", 1<<62); err != nil {
		return err
	}
	if f.Kind == FrameData {
		size, err := field("size", maxFrameSize)
		if err != nil {
			return err
		}
		f.Size = int(size)
		dlen, err := field("datalen", uint64(len(rest)))
		if err != nil {
			return err
		}
		if dlen > 0 {
			f.Data = rest[:dlen:dlen]
			rest = rest[dlen:]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrameField, len(rest))
	}
	return nil
}

// selfCheckFrame round-trips f through the wire format and panics on
// any disagreement — a modeling invariant, asserted on the fault path
// where frames conceptually cross a lossy wire. The encode buffer and
// decode record are per-network scratch so the check is allocation-free
// on the armed hot path.
func (r *reliability) selfCheckFrame(f *Frame) {
	r.frameBuf = appendFrame(r.frameBuf[:0], f)
	g := &r.frameTmp
	if err := decodeFrameInto(g, r.frameBuf); err != nil {
		panic("fastmsg: frame codec self-check: " + err.Error())
	}
	if g.Kind != f.Kind || g.From != f.From || g.To != f.To || g.Seq != f.Seq ||
		g.Size != f.Size || len(g.Data) != len(f.Data) {
		panic("fastmsg: frame codec self-check: round trip changed the frame")
	}
}

// selfCheckData asserts the wire format round-trips m's data frame.
func (r *reliability) selfCheckData(m *Message) {
	f := Frame{Kind: FrameData, From: m.From, To: m.To, Seq: m.Seq, Size: m.Size, Data: m.Data}
	r.selfCheckFrame(&f)
}

// selfCheckAck asserts the wire format round-trips a cumulative ack.
func (r *reliability) selfCheckAck(from, to int, cum uint64) {
	f := Frame{Kind: FrameAck, From: from, To: to, Seq: cum}
	r.selfCheckFrame(&f)
}
