package fastmsg

// Wire-format frames. The simulator hands *Message values between
// endpoints directly, but the reliability layer's contract is defined
// in terms of what a real FM implementation would put on the wire:
// a framed header carrying the link addressing, the per-link sequence
// or cumulative-ack number, and the bulk bytes, integrity-checked.
// This file is that specification — EncodeFrame/DecodeFrame are the
// single source of truth for the format — and the fault-mode transmit
// path runs every outgoing frame through an encode/decode self-check,
// so the codec is exercised by every chaos and exploration run, and
// DecodeFrame additionally faces adversarial inputs under fuzzing:
// it must reject arbitrary garbage with an error, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Frame kinds.
const (
	FrameData uint8 = 1 // a sequenced payload frame
	FrameAck  uint8 = 2 // a cumulative acknowledgement
)

const (
	frameVersion  = 0x01
	frameMagic    = 0xFA
	maxFrameHosts = 1 << 16 // sanity bound on host indices
	maxFrameSize  = 1 << 30 // sanity bound on the modeled wire size
)

// Frame is the decoded form of one wire frame.
type Frame struct {
	Kind uint8
	From int
	To   int
	Seq  uint64 // per-link sequence (data) or cumulative ack floor (ack)
	Size int    // modeled wire size in bytes (data only)
	Data []byte // bulk bytes (data only; nil for ack)
}

// EncodeFrame renders f in the wire format: magic, version, kind,
// varint header fields, length-prefixed bulk bytes, and a trailing
// FNV-1a/32 checksum over everything before it.
func EncodeFrame(f *Frame) []byte {
	n := 3 + 5*binary.MaxVarintLen64 + len(f.Data) + 4
	b := make([]byte, 0, n)
	b = append(b, frameMagic, frameVersion, f.Kind)
	b = binary.AppendUvarint(b, uint64(f.From))
	b = binary.AppendUvarint(b, uint64(f.To))
	b = binary.AppendUvarint(b, f.Seq)
	if f.Kind == FrameData {
		b = binary.AppendUvarint(b, uint64(f.Size))
		b = binary.AppendUvarint(b, uint64(len(f.Data)))
		b = append(b, f.Data...)
	}
	h := fnv.New32a()
	h.Write(b)
	return h.Sum(b)
}

// Frame decoding errors.
var (
	ErrFrameShort    = errors.New("fastmsg: frame truncated")
	ErrFrameMagic    = errors.New("fastmsg: bad frame magic or version")
	ErrFrameKind     = errors.New("fastmsg: unknown frame kind")
	ErrFrameField    = errors.New("fastmsg: malformed frame field")
	ErrFrameChecksum = errors.New("fastmsg: frame checksum mismatch")
)

// DecodeFrame parses one wire frame. It returns an error — never
// panics, never over-reads — on any malformed input, and requires the
// input to be exactly one frame (no trailing bytes).
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < 3+1+4 {
		return nil, ErrFrameShort
	}
	body, sum := b[:len(b)-4], b[len(b)-4:]
	h := fnv.New32a()
	h.Write(body)
	if binary.BigEndian.Uint32(sum) != h.Sum32() {
		return nil, ErrFrameChecksum
	}
	if body[0] != frameMagic || body[1] != frameVersion {
		return nil, ErrFrameMagic
	}
	f := &Frame{Kind: body[2]}
	if f.Kind != FrameData && f.Kind != FrameAck {
		return nil, ErrFrameKind
	}
	rest := body[3:]
	field := func(name string, max uint64) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s", ErrFrameField, name)
		}
		if v > max {
			return 0, fmt.Errorf("%w: %s %d out of range", ErrFrameField, name, v)
		}
		rest = rest[n:]
		return v, nil
	}
	from, err := field("from", maxFrameHosts-1)
	if err != nil {
		return nil, err
	}
	to, err := field("to", maxFrameHosts-1)
	if err != nil {
		return nil, err
	}
	f.From, f.To = int(from), int(to)
	if f.Seq, err = field("seq", 1<<62); err != nil {
		return nil, err
	}
	if f.Kind == FrameData {
		size, err := field("size", maxFrameSize)
		if err != nil {
			return nil, err
		}
		f.Size = int(size)
		dlen, err := field("datalen", uint64(len(rest)))
		if err != nil {
			return nil, err
		}
		if dlen > 0 {
			f.Data = rest[:dlen:dlen]
			rest = rest[dlen:]
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrameField, len(rest))
	}
	return f, nil
}

// selfCheck round-trips f through the wire format and panics on any
// disagreement — a modeling invariant, asserted on the fault path
// where frames conceptually cross a lossy wire.
func (f *Frame) selfCheck() {
	g, err := DecodeFrame(EncodeFrame(f))
	if err != nil {
		panic("fastmsg: frame codec self-check: " + err.Error())
	}
	if g.Kind != f.Kind || g.From != f.From || g.To != f.To || g.Seq != f.Seq ||
		g.Size != f.Size || len(g.Data) != len(f.Data) {
		panic("fastmsg: frame codec self-check: round trip changed the frame")
	}
}

// selfCheckData asserts the wire format round-trips m's data frame.
func selfCheckData(m *Message) {
	(&Frame{Kind: FrameData, From: m.From, To: m.To, Seq: m.Seq, Size: m.Size, Data: m.Data}).selfCheck()
}

// selfCheckAck asserts the wire format round-trips a cumulative ack.
func selfCheckAck(from, to int, cum uint64) {
	(&Frame{Kind: FrameAck, From: from, To: to, Seq: cum}).selfCheck()
}
