package ivy

import (
	"testing"

	"millipage/internal/sim"
	"millipage/internal/vm"
)

func newSys(t *testing.T, hosts int) *System {
	t.Helper()
	s, err := New(Options{Hosts: hosts, SharedSize: 1 << 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleHostRoundTrip(t *testing.T) {
	s := newSys(t, 1)
	var got uint32
	err := s.Run(func(th *Thread) {
		th.WriteU32(s.Base(), 99)
		got = th.ReadU32(s.Base())
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got %d", got)
	}
}

func TestCrossHostSharing(t *testing.T) {
	s := newSys(t, 4)
	base := s.Base()
	var got [4]uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			th.WriteU32(base+vm.PageSize, 1234) // page 1: managed by host 1
		}
		th.Barrier()
		got[th.Host()] = th.ReadU32(base + vm.PageSize)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range got {
		if v != 1234 {
			t.Fatalf("host %d read %d", h, v)
		}
	}
}

func TestDistributedManagers(t *testing.T) {
	// Pages are managed by their residue class and initially owned there.
	s := newSys(t, 4)
	for p := 0; p < 8; p++ {
		mgr := p % 4
		for h := 0; h < 4; h++ {
			_, managed := s.Host(h).dir[p]
			if managed != (h == mgr) {
				t.Fatalf("page %d managed at host %d = %v", p, h, managed)
			}
		}
		prot, err := s.Host(mgr).AS.ProtOf(s.Base() + uint64(p*vm.PageSize))
		if err != nil || prot != vm.ReadWrite {
			t.Fatalf("page %d not writable at its manager: %v %v", p, prot, err)
		}
	}
}

func TestWriteInvalidation(t *testing.T) {
	s := newSys(t, 3)
	base := s.Base()
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			th.WriteU32(base, 1)
		}
		th.Barrier()
		_ = th.ReadU32(base) // everyone caches page 0
		th.Barrier()
		if th.Host() == 2 {
			th.WriteU32(base, 2)
		}
		th.Barrier()
		if v := th.ReadU32(base); v != 2 {
			t.Errorf("host %d read %d, want 2", th.Host(), v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Invalidates == 0 {
		t.Fatal("no invalidations issued")
	}
}

// The structural comparison the paper is about: two variables 64 bytes
// apart ping-pong under Ivy's page granularity.
func TestFalseSharingIsStructural(t *testing.T) {
	s := newSys(t, 2)
	base := s.Base()
	err := s.Run(func(th *Thread) {
		mine := base + uint64(th.Host()*64)
		for i := 0; i < 40; i++ {
			th.WriteU32(mine, uint32(i))
			th.Compute(600 * sim.Microsecond)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.WriteFaults < 10 {
		t.Fatalf("write faults = %d, want many (page ping-pong)", s.Stats.WriteFaults)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Duration {
		s := newSys(t, 4)
		err := s.Run(func(th *Thread) {
			for i := 0; i < 5; i++ {
				th.WriteU32(s.Base()+uint64(th.Host()*vm.PageSize), uint32(i))
				th.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Elapsed()
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}

func TestQueuedCompetingRequests(t *testing.T) {
	s := newSys(t, 4)
	base := s.Base()
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			th.WriteU32(base, 7)
		}
		th.Barrier()
		_ = th.ReadU32(base) // simultaneous requests collide at the manager
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Competing == 0 {
		t.Fatal("no competing requests recorded")
	}
}
