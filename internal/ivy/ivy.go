// Package ivy implements a classic Li/Hudak-style page-based DSM — the
// system family the Millipage paper is built against. It exists for
// architectural comparison:
//
//   - the sharing unit is the virtual page, full stop: no views, no
//     minipages — so false sharing is structural;
//   - the directory is distributed statically (Li & Hudak's "fixed
//     distributed manager"): page p's manager is host p mod N, rather
//     than Millipage's single manager host;
//   - otherwise the protocol is the same Single-Writer/Multiple-Readers
//     invalidation scheme, over the same simulated substrate
//     (internal/cluster: the identical engine, network, thread
//     lifecycle and cost table as the other protocols).
//
// Benchmarks use it for two comparisons: false sharing (pages vs
// minipages) and directory placement (distributed vs Millipage's
// centralized thin manager).
package ivy

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/hostset"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// Options configures an Ivy cluster.
type Options struct {
	Hosts      int
	SharedSize int
	Seed       int64
	Net        fastmsg.Params
	Costs      cluster.Costs

	// Engine selects the event engine ("seq" default, "par" for the
	// sharded parallel engine) and ParWorkers bounds its goroutines; see
	// cluster.Config.
	Engine     string
	ParWorkers int

	// Faults, when non-nil and enabled, makes the wire lossy per the
	// plan; the transport's reliability layer restores exactly-once FIFO
	// delivery, which is all this protocol's handlers assume. Nil (or an
	// all-zero plan) leaves the clean path untouched.
	Faults *faultnet.Plan

	// Trace, if non-nil, records protocol events (message sends, fault
	// entries, handler dispatches) for debugging.
	Trace *trace.Recorder
}

type mtype int

const (
	mReadReq mtype = iota
	mWriteReq
	mReadFwd
	mWriteFwd
	mReadReply
	mWriteReply
	mUpgrade
	mData
	mInvReq
	mInvReply
	mAck
	mBarArrive
	mBarRelease

	mAllocReq
	mAllocReply
	mLockReq
	mLockGrant
	mUnlock
)

var mtypeNames = [...]string{
	"READ_REQUEST", "WRITE_REQUEST", "READ_FWD", "WRITE_FWD",
	"READ_REPLY", "WRITE_REPLY", "UPGRADE_GRANT", "DATA",
	"INVALIDATE_REQUEST", "INVALIDATE_REPLY", "ACK",
	"BARRIER_ARRIVE", "BARRIER_RELEASE",
	"ALLOC_REQUEST", "ALLOC_REPLY", "LOCK_REQUEST", "LOCK_GRANT", "UNLOCK",
}

// The trace recorder stores message types as raw codes offset by the
// package's registered base, so dsm/ivy/lrc coexist in one binary.
var opBase = trace.RegisterOps(mtypeNames[:])

func (m mtype) String() string {
	if int(m) >= 0 && int(m) < len(mtypeNames) {
		return mtypeNames[m]
	}
	return fmt.Sprintf("mtype(%d)", int(m))
}

// dataMarker is the shared payload of every bulk mData message: the
// header that matters was sent separately.
var dataMarker = &pmsg{Type: mData}

type pmsg struct {
	Type  mtype
	From  int
	Page  int
	Write bool
	FW    *cluster.Wait

	// Service fields.
	AllocSize int
	AllocVA   uint64
	LockID    int
}

// dirEntry is one page's directory record at its manager host.
type dirEntry struct {
	copyset hostset.Set
	owner   int
	busy    bool
	queue   cluster.FIFO[*pmsg]

	pendingWrite *pmsg
	invAwait     int
	upgrade      bool
	writeSrc     int

	Competing uint64
}

// System is an Ivy cluster.
type System struct {
	Opt Options
	Eng *sim.Engine
	Net *fastmsg.Network

	rt      *cluster.Runtime
	hosts   []*Host
	threads []*Thread

	numPages int
	base     uint64

	// nextAlloc is the bump pointer of the malloc-like API; host 0 is the
	// allocation authority (page ownership stays with the per-page
	// managers — allocation only hands out addresses).
	nextAlloc uint64

	barrier cluster.BarrierService[*pmsg]
	locks   *cluster.LockService[*pmsg]

	Stats Stats
}

// Stats aggregates cluster-wide counters.
type Stats struct {
	ReadFaults  uint64
	WriteFaults uint64
	Invalidates uint64
	Competing   uint64
}

// Host is one Ivy process. Each host manages the directory entries of
// its page residue class.
type Host struct {
	*cluster.Host
	sys *System
	obj *vm.MemObject

	dir map[int]*dirEntry // pages this host manages

	pendingHdr map[int]*pmsg

	// stats accumulates this host's share of the cluster counters;
	// folded into System.Stats after Run. Per-host rather than one
	// shared struct so the parallel engine's shards never write the same
	// counter.
	stats Stats
}

const base = uint64(0x4000_0000)

// New builds the cluster. The shared region is mapped at the same base
// address on every host, one view, page protection granularity.
func New(opt Options) (*System, error) {
	if opt.Hosts < 1 || opt.Hosts > 1024 {
		return nil, fmt.Errorf("ivy: bad host count %d", opt.Hosts)
	}
	pages := (opt.SharedSize + vm.PageSize - 1) / vm.PageSize
	if pages < 1 {
		return nil, fmt.Errorf("ivy: shared size %d too small", opt.SharedSize)
	}
	if opt.Faults.Enabled() {
		if err := opt.Faults.Validate(opt.Hosts); err != nil {
			return nil, fmt.Errorf("ivy: %w", err)
		}
	}
	rt := cluster.New(cluster.Config{
		Name:       "ivy",
		Hosts:      opt.Hosts,
		Seed:       opt.Seed,
		Engine:     opt.Engine,
		ParWorkers: opt.ParWorkers,
		Net:        opt.Net,
		Costs:      opt.Costs,
		Faults:     opt.Faults,
		Trace:      opt.Trace,
	})
	opt.Seed = rt.Cfg.Seed
	opt.Net = rt.Cfg.Net
	opt.Costs = rt.Cfg.Costs
	s := &System{
		Opt: opt, Eng: rt.Eng, Net: rt.Net, rt: rt,
		numPages: pages, base: base, nextAlloc: base,
		locks: cluster.NewLockService[*pmsg](),
	}
	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		obj := vm.NewMemObject(pages * vm.PageSize)
		if err := as.MapView(base, obj, 0, pages, vm.NoAccess); err != nil {
			return nil, err
		}
		h := &Host{
			sys:        s,
			obj:        obj,
			dir:        make(map[int]*dirEntry),
			pendingHdr: make(map[int]*pmsg),
		}
		h.Host = rt.NewHost(as, h)
		s.hosts = append(s.hosts, h)
	}
	// Pages start owned by their managers, writable there.
	for p := 0; p < pages; p++ {
		mgr := p % opt.Hosts
		s.hosts[mgr].dir[p] = &dirEntry{copyset: hostset.One(mgr), owner: mgr}
		va := base + uint64(p*vm.PageSize)
		if err := s.hosts[mgr].AS.Protect(va, 1, vm.ReadWrite); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Base returns the shared region's base address (identical on all hosts).
func (s *System) Base() uint64 { return s.base }

// Host returns host i.
func (s *System) Host(i int) *Host { return s.hosts[i] }

// NumHosts returns the cluster size.
func (s *System) NumHosts() int { return s.Opt.Hosts }

// Runtime returns the shared cluster substrate (engine, network, threads),
// for protocol-independent reporting.
func (s *System) Runtime() *cluster.Runtime { return s.rt }

// Threads returns the application threads after Run (for statistics).
func (s *System) Threads() []*Thread { return s.threads }

// Elapsed returns the run's virtual duration.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }

// Messages returns the total messages sent.
func (s *System) Messages() uint64 {
	var n uint64
	for _, h := range s.hosts {
		n += h.EP.Stats().Sent
	}
	return n
}

// BarrierEpisodes returns the number of completed barrier episodes.
func (s *System) BarrierEpisodes() uint64 { return s.barrier.Episodes }

// LockAcquisitions returns the number of lock grants handed out.
func (s *System) LockAcquisitions() uint64 { return s.locks.Acquisitions }

// managerOf returns the host managing page p (static distribution).
func (s *System) managerOf(p int) int { return p % s.Opt.Hosts }

// Thread is one application thread's handle: the generic substrate
// surface (memory access, Compute, time-breakdown stats) plus Ivy's
// synchronization and allocation operations.
type Thread struct {
	*cluster.Thread
	host *Host
}

// ThreadStats is the per-thread execution-time breakdown, shared across
// protocols via internal/cluster.
type ThreadStats = cluster.ThreadStats

// Run starts one application thread per host.
func (s *System) Run(body func(t *Thread)) error {
	if body == nil {
		return fmt.Errorf("ivy: nil thread body")
	}
	err := s.rt.Run(func(ct *cluster.Thread) func() {
		t := &Thread{Thread: ct, host: s.hosts[ct.Host()]}
		ct.SetSelf(t)
		s.threads = append(s.threads, t)
		return func() { body(t) }
	})
	for _, h := range s.hosts {
		s.Stats.ReadFaults += h.stats.ReadFaults
		s.Stats.WriteFaults += h.stats.WriteFaults
		s.Stats.Invalidates += h.stats.Invalidates
		s.Stats.Competing += h.stats.Competing
	}
	return err
}

// Malloc allocates size bytes of shared memory (8-byte aligned) from the
// cluster-wide bump allocator at host 0 and returns the address. Pages
// remain owned by their per-page managers; allocation only assigns
// addresses, so the first access faults the page over as usual.
func (t *Thread) Malloc(size int) uint64 {
	p := t.Proc()
	start := p.Now()
	c := t.host.Costs()
	if t.host.ID() == 0 {
		p.Sleep(c.MallocBase)
		va := t.host.sys.allocLocal(size)
		t.Stats.MallocTime += p.Now().Sub(start)
		return va
	}
	fw := t.WaitSlot()
	t.host.Send(p, 0, &pmsg{Type: mAllocReq, From: t.host.ID(), AllocSize: size, FW: fw})
	t.Block(fw)
	p.Sleep(c.ThreadWake)
	t.Stats.MallocTime += p.Now().Sub(start)
	return fw.VA
}

// allocLocal bumps the shared allocation pointer (host 0 only).
func (s *System) allocLocal(size int) uint64 {
	va := (s.nextAlloc + 7) &^ 7
	limit := s.base + uint64(s.numPages*vm.PageSize)
	if size <= 0 || va+uint64(size) > limit {
		panic(fmt.Sprintf("ivy: out of shared memory: alloc %d with %d free", size, limit-va))
	}
	s.nextAlloc = va + uint64(size)
	return va
}

// Barrier rendezvouses all threads (coordinated at host 0).
func (t *Thread) Barrier() {
	p := t.Proc()
	start := p.Now()
	h := t.host
	c := h.Costs()
	p.Sleep(c.BarrierBase)
	fw := t.WaitSlot()
	h.Send(p, 0, &pmsg{Type: mBarArrive, From: h.ID(), FW: fw})
	t.Block(fw)
	p.Sleep(c.ThreadWake)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.Barriers++
}

// Lock acquires the cluster-wide lock with the given id (FIFO at host 0).
func (t *Thread) Lock(id int) {
	p := t.Proc()
	start := p.Now()
	fw := t.WaitSlot()
	t.host.Send(p, 0, &pmsg{Type: mLockReq, From: t.host.ID(), LockID: id, FW: fw})
	t.Block(fw)
	p.Sleep(t.host.Costs().ThreadWake)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// Unlock releases the lock with the given id (asynchronous; host 0
// grants it to the next waiter in FIFO order).
func (t *Thread) Unlock(id int) {
	p := t.Proc()
	start := p.Now()
	t.host.Send(p, 0, &pmsg{Type: mUnlock, From: t.host.ID(), LockID: id})
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// sendPage ships a page's bytes to host `to` (zero-copy data message; the
// header that describes it was sent separately).
func (h *Host) sendPage(p *sim.Proc, to int, page int) {
	data := make([]byte, vm.PageSize)
	copy(data, h.obj.Frame(page))
	h.SendData(p, to, data, dataMarker)
}

func (h *Host) pageVA(page int) uint64 { return h.sys.base + uint64(page*vm.PageSize) }

// DescribeMsg extracts the trace fields from a protocol header (the
// cluster runtime calls it only when tracing is enabled).
func (h *Host) DescribeMsg(payload any) (op uint16, mp int, addr uint64, home int) {
	m := payload.(*pmsg)
	op = opBase + uint16(m.Type)
	switch m.Type {
	case mBarArrive, mBarRelease, mAllocReq, mAllocReply, mLockReq, mLockGrant, mUnlock:
		return op, -1, 0, -1
	}
	return op, m.Page, h.pageVA(m.Page), h.sys.managerOf(m.Page)
}

// HandleFault sends the request to the page's distributed manager and
// waits. It runs in the faulting thread's context.
func (h *Host) HandleFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("ivy: fault outside app thread")
	}
	c := h.Costs()
	p := t.Proc()
	start := p.Now()
	p.Sleep(c.AccessFault)
	page := int((f.Addr - h.sys.base) / vm.PageSize)
	typ := mReadReq
	if f.Kind == vm.Write {
		typ = mWriteReq
		h.stats.WriteFaults++
	} else {
		h.stats.ReadFaults++
	}
	fw := t.WaitSlot()
	h.Send(p, h.sys.managerOf(page), &pmsg{Type: typ, From: h.ID(), Page: page, FW: fw})
	p.Sleep(c.BlockThread)
	t.Block(fw)
	p.Sleep(c.ThreadWake + c.FaultResume)
	h.Send(p, h.sys.managerOf(page), &pmsg{Type: mAck, From: h.ID(), Page: page, Write: f.Kind == vm.Write})

	elapsed := p.Now().Sub(start)
	if f.Kind == vm.Write {
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
	} else {
		t.Stats.ReadFaultTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	}
	return nil
}

// HandleMessage dispatches protocol messages; directory operations run at
// the page's manager (this host, for its residue class).
func (h *Host) HandleMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	c := h.Costs()
	switch m.Type {
	case mReadReq, mWriteReq:
		h.managerHandle(p, m)

	case mAck:
		e := h.dir[m.Page]
		e.busy = false
		if next, ok := e.queue.Pop(); ok {
			h.managerHandle(p, next)
		}

	case mInvReply:
		e := h.dir[m.Page]
		e.copyset = e.copyset.Without(m.From)
		if e.invAwait--; e.invAwait > 0 {
			return
		}
		wr := e.pendingWrite
		e.pendingWrite = nil
		if e.upgrade {
			e.upgrade = false
			e.copyset = hostset.One(wr.From)
			e.owner = wr.From
			grant := *wr
			grant.Type = mUpgrade
			h.Send(p, wr.From, &grant)
			return
		}
		e.copyset = hostset.One(wr.From)
		e.owner = wr.From
		fwd := *wr
		fwd.Type = mWriteFwd
		h.Send(p, e.writeSrc, &fwd)

	case mReadFwd:
		p.Sleep(c.GetProt)
		va := h.pageVA(m.Page)
		if prot, _ := h.AS.ProtOf(va); prot == vm.ReadWrite {
			p.Sleep(c.SetProt)
			h.AS.Protect(va, 1, vm.ReadOnly)
		}
		reply := *m
		reply.Type = mReadReply
		h.Send(p, m.From, &reply)
		h.sendPage(p, m.From, m.Page)

	case mWriteFwd:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.NoAccess)
		reply := *m
		reply.Type = mWriteReply
		h.Send(p, m.From, &reply)
		h.sendPage(p, m.From, m.Page)

	case mInvReq:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.NoAccess)
		h.stats.Invalidates++
		h.Send(p, h.sys.managerOf(m.Page), &pmsg{Type: mInvReply, From: h.ID(), Page: m.Page})

	case mReadReply, mWriteReply:
		h.pendingHdr[fm.From] = m

	case mData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic("ivy: data without header")
		}
		delete(h.pendingHdr, fm.From)
		copy(h.obj.Frame(hdr.Page), fm.Data)
		p.Sleep(c.SetProt + sim.Duration(len(fm.Data))*c.InstallPerByte)
		prot := vm.ReadOnly
		if hdr.Type == mWriteReply {
			prot = vm.ReadWrite
		}
		h.AS.Protect(h.pageVA(hdr.Page), 1, prot)
		hdr.FW.Ev.Set()

	case mUpgrade:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.ReadWrite)
		m.FW.Ev.Set()

	case mBarArrive:
		s := h.sys
		arrivals, done := s.barrier.Arrive(m, len(s.hosts))
		if !done {
			return
		}
		for _, a := range arrivals {
			rel := pmsg{Type: mBarRelease, FW: a.FW}
			h.Send(p, a.From, &rel)
		}

	case mBarRelease:
		m.FW.Ev.Set()

	case mAllocReq:
		p.Sleep(c.MallocBase)
		reply := *m
		reply.Type = mAllocReply
		reply.AllocVA = h.sys.allocLocal(m.AllocSize)
		h.Send(p, m.From, &reply)

	case mAllocReply:
		m.FW.VA = m.AllocVA
		m.FW.Ev.Set()

	case mLockReq:
		if !h.sys.locks.Acquire(m.LockID, m) {
			return
		}
		grant := pmsg{Type: mLockGrant, LockID: m.LockID, FW: m.FW}
		h.Send(p, m.From, &grant)

	case mLockGrant:
		m.FW.Ev.Set()

	case mUnlock:
		next, granted, wasHeld := h.sys.locks.Release(m.LockID)
		if !wasHeld {
			panic(fmt.Sprintf("ivy: unlock of free lock %d", m.LockID))
		}
		if !granted {
			return
		}
		grant := pmsg{Type: mLockGrant, LockID: next.LockID, FW: next.FW}
		h.Send(p, next.From, &grant)

	default:
		panic(fmt.Sprintf("ivy: unexpected message %d", int(m.Type)))
	}
}

// managerHandle runs the SW/MR directory logic for a page this host
// manages.
func (h *Host) managerHandle(p *sim.Proc, m *pmsg) {
	c := h.Costs()
	p.Sleep(c.MPTLookup)
	e := h.dir[m.Page]
	if e == nil {
		panic(fmt.Sprintf("ivy: host %d asked to manage page %d", h.ID(), m.Page))
	}
	if e.busy {
		e.queue.Push(m)
		e.Competing++
		h.stats.Competing++
		return
	}
	e.busy = true

	if m.Type == mReadReq {
		src := e.owner
		if !e.copyset.Has(src) {
			src = firstBit(e.copyset)
		}
		e.copyset = e.copyset.With(m.From)
		fwd := *m
		fwd.Type = mReadFwd
		h.Send(p, src, &fwd)
		return
	}

	// Write request.
	others := e.copyset.Without(m.From)
	if others.Empty() {
		e.owner = m.From
		grant := *m
		grant.Type = mUpgrade
		h.Send(p, m.From, &grant)
		return
	}
	if e.copyset.Has(m.From) {
		e.pendingWrite = m
		e.upgrade = true
		e.invAwait = others.Count()
		h.sendInvalidates(p, m.Page, others)
		return
	}
	src := e.owner
	if !e.copyset.Has(src) {
		src = firstBit(others)
	}
	targets := others.Without(src)
	if targets.Empty() {
		e.copyset = hostset.One(m.From)
		e.owner = m.From
		fwd := *m
		fwd.Type = mWriteFwd
		h.Send(p, src, &fwd)
		return
	}
	e.pendingWrite = m
	e.upgrade = false
	e.writeSrc = src
	e.invAwait = targets.Count()
	h.sendInvalidates(p, m.Page, targets)
}

func (h *Host) sendInvalidates(p *sim.Proc, page int, mask hostset.Set) {
	for i := 0; i < len(h.sys.hosts); i++ {
		if mask.Has(i) {
			h.Send(p, i, &pmsg{Type: mInvReq, From: h.ID(), Page: page})
		}
	}
}

func firstBit(s hostset.Set) int {
	h := s.First()
	if h < 0 {
		panic("ivy: empty copyset")
	}
	return h
}
