// Package ivy implements a classic Li/Hudak-style page-based DSM — the
// system family the Millipage paper is built against. It exists for
// architectural comparison:
//
//   - the sharing unit is the virtual page, full stop: no views, no
//     minipages — so false sharing is structural;
//   - the directory is distributed statically (Li & Hudak's "fixed
//     distributed manager"): page p's manager is host p mod N, rather
//     than Millipage's single manager host;
//   - otherwise the protocol is the same Single-Writer/Multiple-Readers
//     invalidation scheme, over the same simulated substrate.
//
// Benchmarks use it for two comparisons: false sharing (pages vs
// minipages) and directory placement (distributed vs Millipage's
// centralized thin manager).
package ivy

import (
	"fmt"

	"millipage/internal/dsm"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// Options configures an Ivy cluster.
type Options struct {
	Hosts      int
	SharedSize int
	Seed       int64
	Net        fastmsg.Params
	Costs      dsm.Costs
}

type mtype int

const (
	mReadReq mtype = iota
	mWriteReq
	mReadFwd
	mWriteFwd
	mReadReply
	mWriteReply
	mUpgrade
	mData
	mInvReq
	mInvReply
	mAck
	mBarArrive
	mBarRelease
)

type pmsg struct {
	Type  mtype
	From  int
	Page  int
	Write bool
	FW    *wait
}

type wait struct {
	ev *sim.Event
}

// dirEntry is one page's directory record at its manager host.
type dirEntry struct {
	copyset uint64
	owner   int
	busy    bool
	queue   []*pmsg

	pendingWrite *pmsg
	invAwait     int
	upgrade      bool
	writeSrc     int

	Competing uint64
}

// System is an Ivy cluster.
type System struct {
	Opt   Options
	Eng   *sim.Engine
	Net   *fastmsg.Network
	hosts []*Host

	numPages int
	base     uint64

	barrierArrivals []*pmsg

	Stats Stats
}

// Stats aggregates cluster-wide counters.
type Stats struct {
	ReadFaults  uint64
	WriteFaults uint64
	Invalidates uint64
	Competing   uint64
}

// Host is one Ivy process. Each host manages the directory entries of
// its page residue class.
type Host struct {
	sys *System
	id  int
	AS  *vm.AddressSpace
	obj *vm.MemObject
	ep  *fastmsg.Endpoint

	dir map[int]*dirEntry // pages this host manages

	pendingHdr map[int]*pmsg
}

const base = uint64(0x4000_0000)

// New builds the cluster. The shared region is mapped at the same base
// address on every host, one view, page protection granularity.
func New(opt Options) (*System, error) {
	if opt.Hosts < 1 || opt.Hosts > 64 {
		return nil, fmt.Errorf("ivy: bad host count %d", opt.Hosts)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Net == (fastmsg.Params{}) {
		opt.Net = fastmsg.DefaultParams()
	}
	if opt.Costs == (dsm.Costs{}) {
		opt.Costs = dsm.DefaultCosts()
	}
	pages := (opt.SharedSize + vm.PageSize - 1) / vm.PageSize
	if pages < 1 {
		return nil, fmt.Errorf("ivy: shared size %d too small", opt.SharedSize)
	}
	eng := sim.NewEngine(opt.Seed)
	net := fastmsg.New(eng, opt.Hosts, opt.Net)
	s := &System{Opt: opt, Eng: eng, Net: net, numPages: pages, base: base}
	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		obj := vm.NewMemObject(pages * vm.PageSize)
		if err := as.MapView(base, obj, 0, pages, vm.NoAccess); err != nil {
			return nil, err
		}
		h := &Host{
			sys:        s,
			id:         i,
			AS:         as,
			obj:        obj,
			ep:         net.Endpoint(i),
			dir:        make(map[int]*dirEntry),
			pendingHdr: make(map[int]*pmsg),
		}
		as.SetFaultHandler(h.onFault)
		h.ep.SetHandler(h.onMessage)
		s.hosts = append(s.hosts, h)
	}
	// Pages start owned by their managers, writable there.
	for p := 0; p < pages; p++ {
		mgr := p % opt.Hosts
		s.hosts[mgr].dir[p] = &dirEntry{copyset: 1 << uint(mgr), owner: mgr}
		va := base + uint64(p*vm.PageSize)
		if err := s.hosts[mgr].AS.Protect(va, 1, vm.ReadWrite); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Base returns the shared region's base address (identical on all hosts).
func (s *System) Base() uint64 { return s.base }

// Host returns host i.
func (s *System) Host(i int) *Host { return s.hosts[i] }

// Elapsed returns the run's virtual duration.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }

// Messages returns the total messages sent.
func (s *System) Messages() uint64 {
	var n uint64
	for _, h := range s.hosts {
		n += h.ep.Stats().Sent
	}
	return n
}

// managerOf returns the host managing page p (static distribution).
func (s *System) managerOf(p int) int { return p % s.Opt.Hosts }

// Thread is one application thread's handle.
type Thread struct {
	host *Host
	p    *sim.Proc
}

// Run starts one application thread per host.
func (s *System) Run(body func(t *Thread)) error {
	for _, h := range s.hosts {
		h := h
		t := &Thread{host: h}
		s.Eng.Spawn(fmt.Sprintf("ivy-app-%d", h.id), func(p *sim.Proc) {
			t.p = p
			h.ep.SetBusy(+1)
			body(t)
			h.ep.SetBusy(-1)
		})
	}
	return s.Eng.Run()
}

// Host returns the thread's host id.
func (t *Thread) Host() int { return t.host.id }

// NumHosts returns the cluster size.
func (t *Thread) NumHosts() int { return len(t.host.sys.hosts) }

// Compute charges computation time.
func (t *Thread) Compute(d sim.Duration) { t.p.Sleep(d) }

// Read copies shared bytes at va.
func (t *Thread) Read(va uint64, buf []byte) {
	if err := t.host.AS.Access(t, va, buf, vm.Read); err != nil {
		panic(err)
	}
}

// Write stores shared bytes at va.
func (t *Thread) Write(va uint64, data []byte) {
	if err := t.host.AS.Access(t, va, data, vm.Write); err != nil {
		panic(err)
	}
}

// ReadU32 reads a shared uint32.
func (t *Thread) ReadU32(va uint64) uint32 {
	v, err := t.host.AS.ReadU32(t, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU32 writes a shared uint32.
func (t *Thread) WriteU32(va uint64, v uint32) {
	if err := t.host.AS.WriteU32(t, va, v); err != nil {
		panic(err)
	}
}

// Barrier rendezvouses all threads (coordinated at host 0).
func (t *Thread) Barrier() {
	h := t.host
	c := h.sys.Opt.Costs
	t.p.Sleep(c.BarrierBase)
	fw := &wait{ev: sim.NewEvent(h.sys.Eng)}
	h.send(t.p, 0, &pmsg{Type: mBarArrive, From: h.id, FW: fw})
	h.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake)
}

func (h *Host) send(p *sim.Proc, to int, m *pmsg) {
	h.ep.Send(p, to, &fastmsg.Message{Size: h.sys.Opt.Costs.HeaderSize, Payload: m})
}

func (h *Host) sendPage(p *sim.Proc, to int, page int) {
	data := make([]byte, vm.PageSize)
	copy(data, h.obj.Frame(page))
	h.ep.Send(p, to, &fastmsg.Message{Size: len(data), Data: data, Payload: &pmsg{Type: mData, Page: page}})
}

func (h *Host) pageVA(page int) uint64 { return h.sys.base + uint64(page*vm.PageSize) }

// onFault sends the request to the page's distributed manager and waits.
func (h *Host) onFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("ivy: fault outside app thread")
	}
	c := h.sys.Opt.Costs
	t.p.Sleep(c.AccessFault)
	page := int((f.Addr - h.sys.base) / vm.PageSize)
	typ := mReadReq
	if f.Kind == vm.Write {
		typ = mWriteReq
		h.sys.Stats.WriteFaults++
	} else {
		h.sys.Stats.ReadFaults++
	}
	fw := &wait{ev: sim.NewEvent(h.sys.Eng)}
	h.send(t.p, h.sys.managerOf(page), &pmsg{Type: typ, From: h.id, Page: page, FW: fw})
	t.p.Sleep(c.BlockThread)
	h.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake + c.FaultResume)
	h.send(t.p, h.sys.managerOf(page), &pmsg{Type: mAck, From: h.id, Page: page, Write: f.Kind == vm.Write})
	return nil
}

// onMessage dispatches protocol messages; directory operations run at
// the page's manager (this host, for its residue class).
func (h *Host) onMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	c := h.sys.Opt.Costs
	switch m.Type {
	case mReadReq, mWriteReq:
		h.managerHandle(p, m)

	case mAck:
		e := h.dir[m.Page]
		e.busy = false
		if len(e.queue) > 0 {
			next := e.queue[0]
			e.queue = e.queue[1:]
			h.managerHandle(p, next)
		}

	case mInvReply:
		e := h.dir[m.Page]
		e.copyset &^= 1 << uint(m.From)
		if e.invAwait--; e.invAwait > 0 {
			return
		}
		wr := e.pendingWrite
		e.pendingWrite = nil
		if e.upgrade {
			e.upgrade = false
			e.copyset = 1 << uint(wr.From)
			e.owner = wr.From
			grant := *wr
			grant.Type = mUpgrade
			h.send(p, wr.From, &grant)
			return
		}
		e.copyset = 1 << uint(wr.From)
		e.owner = wr.From
		fwd := *wr
		fwd.Type = mWriteFwd
		h.send(p, e.writeSrc, &fwd)

	case mReadFwd:
		p.Sleep(c.GetProt)
		va := h.pageVA(m.Page)
		if prot, _ := h.AS.ProtOf(va); prot == vm.ReadWrite {
			p.Sleep(c.SetProt)
			h.AS.Protect(va, 1, vm.ReadOnly)
		}
		reply := *m
		reply.Type = mReadReply
		h.send(p, m.From, &reply)
		h.sendPage(p, m.From, m.Page)

	case mWriteFwd:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.NoAccess)
		reply := *m
		reply.Type = mWriteReply
		h.send(p, m.From, &reply)
		h.sendPage(p, m.From, m.Page)

	case mInvReq:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.NoAccess)
		h.sys.Stats.Invalidates++
		h.send(p, h.sys.managerOf(m.Page), &pmsg{Type: mInvReply, From: h.id, Page: m.Page})

	case mReadReply, mWriteReply:
		h.pendingHdr[fm.From] = m

	case mData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic("ivy: data without header")
		}
		delete(h.pendingHdr, fm.From)
		copy(h.obj.Frame(hdr.Page), fm.Data)
		p.Sleep(c.SetProt + sim.Duration(len(fm.Data))*c.InstallPerByte)
		prot := vm.ReadOnly
		if hdr.Type == mWriteReply {
			prot = vm.ReadWrite
		}
		h.AS.Protect(h.pageVA(hdr.Page), 1, prot)
		hdr.FW.ev.Set()

	case mUpgrade:
		p.Sleep(c.SetProt)
		h.AS.Protect(h.pageVA(m.Page), 1, vm.ReadWrite)
		m.FW.ev.Set()

	case mBarArrive:
		s := h.sys
		s.barrierArrivals = append(s.barrierArrivals, m)
		if len(s.barrierArrivals) < len(s.hosts) {
			return
		}
		arrivals := s.barrierArrivals
		s.barrierArrivals = nil
		for _, a := range arrivals {
			rel := pmsg{Type: mBarRelease, FW: a.FW}
			h.send(p, a.From, &rel)
		}

	case mBarRelease:
		m.FW.ev.Set()

	default:
		panic(fmt.Sprintf("ivy: unexpected message %d", int(m.Type)))
	}
}

// managerHandle runs the SW/MR directory logic for a page this host
// manages.
func (h *Host) managerHandle(p *sim.Proc, m *pmsg) {
	c := h.sys.Opt.Costs
	p.Sleep(c.MPTLookup)
	e := h.dir[m.Page]
	if e == nil {
		panic(fmt.Sprintf("ivy: host %d asked to manage page %d", h.id, m.Page))
	}
	if e.busy {
		e.queue = append(e.queue, m)
		e.Competing++
		h.sys.Stats.Competing++
		return
	}
	e.busy = true
	reqBit := uint64(1) << uint(m.From)

	if m.Type == mReadReq {
		src := e.owner
		if e.copyset&(1<<uint(src)) == 0 {
			src = firstBit(e.copyset)
		}
		e.copyset |= reqBit
		fwd := *m
		fwd.Type = mReadFwd
		h.send(p, src, &fwd)
		return
	}

	// Write request.
	others := e.copyset &^ reqBit
	if others == 0 {
		e.owner = m.From
		grant := *m
		grant.Type = mUpgrade
		h.send(p, m.From, &grant)
		return
	}
	if e.copyset&reqBit != 0 {
		e.pendingWrite = m
		e.upgrade = true
		e.invAwait = popcount(others)
		h.sendInvalidates(p, m.Page, others)
		return
	}
	src := e.owner
	if e.copyset&(1<<uint(src)) == 0 {
		src = firstBit(others)
	}
	targets := others &^ (1 << uint(src))
	if targets == 0 {
		e.copyset = reqBit
		e.owner = m.From
		fwd := *m
		fwd.Type = mWriteFwd
		h.send(p, src, &fwd)
		return
	}
	e.pendingWrite = m
	e.upgrade = false
	e.writeSrc = src
	e.invAwait = popcount(targets)
	h.sendInvalidates(p, m.Page, targets)
}

func (h *Host) sendInvalidates(p *sim.Proc, page int, mask uint64) {
	for i := 0; i < len(h.sys.hosts); i++ {
		if mask&(1<<uint(i)) != 0 {
			h.send(p, i, &pmsg{Type: mInvReq, From: h.id, Page: page})
		}
	}
}

func firstBit(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	panic("ivy: empty copyset")
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
