package mcheck

import (
	"fmt"
)

// DefaultShrinkRuns bounds the shrinker's replay budget when
// Options.ShrinkRuns is zero. Each candidate costs one full (but
// millisecond-scale) simulation run.
const DefaultShrinkRuns = 400

// Shrink delta-debugs a failing trace down to a smallest-known failing
// schedule. A decision with Pick = 0 is the engine's default order, so
// shrinking means zeroing decisions, not deleting them: the shrinker
// searches for a minimal set of non-default choices that still
// reproduces a failure of the same kind as fail.
//
// Candidates replay with clamping (a mutated prefix can change later
// tie arities); once the set is minimal, the surviving schedule is
// re-recorded into a canonical trace whose decisions line up exactly
// with the run, so it replays strictly. The result is 1-minimal —
// zeroing any single remaining non-default decision loses the failure
// — provided the run budget (Options.ShrinkRuns) was not exhausted.
func (o Options) Shrink(t *Trace, fail *Failure) (*Trace, *ScheduleResult, error) {
	if fail == nil {
		return nil, nil, fmt.Errorf("mcheck: Shrink needs the failure to reproduce")
	}
	budget := o.ShrinkRuns
	if budget <= 0 {
		budget = DefaultShrinkRuns
	}
	// fails reports whether keeping only the non-default picks at
	// `keep` still reproduces the failure kind.
	fails := func(keep map[int]bool) bool {
		if budget <= 0 {
			return false
		}
		budget--
		dec := make([]Decision, len(t.Decisions))
		for i, d := range t.Decisions {
			if keep[i] {
				dec[i] = d
			} else {
				dec[i] = Decision{N: d.N, Pick: 0}
			}
		}
		_, f, err := o.runOne(&Replayer{Decisions: dec})
		return err == nil && sameKind(fail, f)
	}

	var nonzero []int
	for i, d := range t.Decisions {
		if d.Pick != 0 {
			nonzero = append(nonzero, i)
		}
	}
	work := nonzero
	if fails(map[int]bool{}) {
		// The default schedule already fails: no decision is needed.
		work = nil
	} else {
		work = ddmin(work, fails)
	}

	// Re-record the canonical trace of the shrunk schedule: replay the
	// zeroed decision list once more with a Recorder around it, so the
	// saved decisions match the run's tie structure exactly.
	keep := make(map[int]bool, len(work))
	for _, i := range work {
		keep[i] = true
	}
	dec := make([]Decision, len(t.Decisions))
	for i, d := range t.Decisions {
		if keep[i] {
			dec[i] = d
		} else {
			dec[i] = Decision{N: d.N, Pick: 0}
		}
	}
	rec := &Recorder{Inner: &Replayer{Decisions: dec}}
	_, f, err := o.runOne(rec)
	if err != nil {
		return nil, nil, err
	}
	if !sameKind(fail, f) {
		return nil, nil, fmt.Errorf("mcheck: shrunk schedule no longer reproduces %s", fail.Kind)
	}
	// Trailing default decisions add nothing: drop them.
	canon := rec.Decisions
	for len(canon) > 0 && canon[len(canon)-1].Pick == 0 {
		canon = canon[:len(canon)-1]
	}
	shrunk := &Trace{
		Protocol: t.Protocol, Workload: t.Workload, Faults: t.Faults,
		Hosts: t.Hosts, Seed: t.Seed, Decisions: canon, Failure: f.Error(),
	}
	res, err := Replay(shrunk)
	if err != nil {
		return nil, nil, err
	}
	if !sameKind(fail, res.Failure) {
		return nil, nil, fmt.Errorf("mcheck: canonical shrunk trace does not replay to %s", fail.Kind)
	}
	return shrunk, res, nil
}

// ddmin is the classic delta-debugging minimization over the index
// set, with `fails` as the test oracle. It returns a subset of items
// that still fails, 1-minimal if the oracle's budget holds out.
func ddmin(items []int, fails func(map[int]bool) bool) []int {
	asSet := func(xs []int) map[int]bool {
		m := make(map[int]bool, len(xs))
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	work := items
	n := 2
	for len(work) >= 2 {
		chunk := (len(work) + n - 1) / n
		reduced := false
		// Try each complement: drop one chunk, keep the rest.
		for start := 0; start < len(work); start += chunk {
			end := start + chunk
			if end > len(work) {
				end = len(work)
			}
			cand := make([]int, 0, len(work)-(end-start))
			cand = append(cand, work[:start]...)
			cand = append(cand, work[end:]...)
			if fails(asSet(cand)) {
				work = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(work) {
				break
			}
			n *= 2
			if n > len(work) {
				n = len(work)
			}
		}
	}
	return work
}
