// Package mcheck is the schedule-exploration model checker: it drives
// the deterministic simulator through many distinct schedules per
// configuration by perturbing the pop order of same-timestamp calendar
// events (sim.Explorer), asserts the DESIGN.md §8 invariants from
// internal/check after every explored schedule, and when a schedule
// fails, delta-debugs the recorded decision trace down to a smallest-
// known failing schedule saved as a replayable repro artifact.
package mcheck

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/faultnet"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
)

// Watchdog bounds one explored schedule's virtual time: well past any
// retransmission backoff chain, far below forever. A run that has not
// finished by then is classified as a stall (livelock) failure.
const Watchdog = 120 * sim.Second

// Options configures one exploration campaign.
type Options struct {
	Protocol string // "millipage", "millipage-repl", "ivy", "lrc", or "lrc-mw"
	Workload string // a Workloads key: "swmr", "mp", "dekker", "drf", "merge", "failover", "drf-nolock"
	Faults   string // a fault preset name (FaultPresets), or "" for a clean network
	Hosts    int    // 0 = the workload's default
	Seed     int64  // system seed: engine rng and fault plan

	Schedules   int     // schedules to explore (schedule 0 is the default order)
	ExploreSeed int64   // seeds the per-schedule random strategies
	Preempt     float64 // probability of deferring a yielded process at a tie
	Budget      int     // max preemptions per schedule; 0 = unbounded

	ShrinkRuns  int    // replay budget for the shrinker; 0 = DefaultShrinkRuns
	KeepGoing   bool   // keep exploring after the first failure
	ArtifactDir string // where to write shrunk repro traces; "" = don't write
}

// Failure is one way an explored schedule can go wrong.
type Failure struct {
	Kind string // "oracle", "deadlock", "panic", "stall", or "run-error"
	Msg  string
}

func (f *Failure) Error() string { return f.Kind + ": " + f.Msg }

// sameKind reports whether two failures count as the same bug for
// shrinking purposes. Message text may embed schedule-dependent
// values, so only the kind is compared.
func sameKind(a, b *Failure) bool { return a != nil && b != nil && a.Kind == b.Kind }

// ScheduleResult summarizes one explored schedule.
type ScheduleResult struct {
	Index       int
	Digest      uint64 // decision-sequence fingerprint; distinctness key
	Fingerprint string // run fingerprint: elapsed virtual time + transport counters
	Decisions   int
	Failure     *Failure // nil if every invariant held
}

// FailureReport is the exploration campaign's output for a failing
// schedule: the trace as recorded, its shrunk canonical form, and
// where the repro artifact was written.
type FailureReport struct {
	Schedule     ScheduleResult
	Trace        *Trace
	Shrunk       *Trace
	ShrunkResult *ScheduleResult
	ArtifactPath string
}

// Report is the result of Explore.
type Report struct {
	Options   Options
	Schedules []ScheduleResult
	Distinct  int // number of distinct decision digests among Schedules
	Failure   *FailureReport
}

// buildSystem constructs one protocol cluster and its runner.
func buildSystem(protocol string, hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
	switch protocol {
	case "millipage":
		sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *dsm.Thread) { body(t) })
		}, nil
	case "millipage-repl":
		sys, err := dsm.New(dsm.Options{
			Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed,
			Management: dsm.HomeBased, Replication: true, Faults: plan,
		})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *dsm.Thread) { body(t) })
		}, nil
	case "ivy":
		sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 16, Seed: seed, Faults: plan})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *ivy.Thread) { body(t) })
		}, nil
	case "lrc":
		sys, err := lrc.New(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *lrc.Thread) { body(t) })
		}, nil
	case "lrc-mw":
		sys, err := lrc.NewMW(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *lrc.MWThread) { body(t) })
		}, nil
	default:
		return nil, nil, fmt.Errorf("mcheck: unknown protocol %q", protocol)
	}
}

// fingerprint reduces one finished run to a comparable value: elapsed
// virtual time plus every endpoint's full transport counters. Two runs
// with equal fingerprints took the same schedule through the protocol.
func fingerprint(rt *cluster.Runtime) string {
	s := fmt.Sprintf("elapsed=%d", rt.Elapsed())
	for i := 0; i < rt.NumHosts(); i++ {
		s += fmt.Sprintf(";%+v", rt.Net.Endpoint(i).Stats())
	}
	return s
}

// runOne executes one schedule of the configured (protocol, workload,
// faults, seed) under explorer x and classifies the outcome. Every
// call builds a fresh system: schedules never share state.
func (o *Options) runOne(x sim.Explorer) (string, *Failure, error) {
	wl, err := buildWorkload(o)
	if err != nil {
		return "", nil, err
	}
	var plan *faultnet.Plan
	if o.Faults != "" {
		if plan, err = FaultPlan(o.Faults, wl.hosts, o.Seed); err != nil {
			return "", nil, err
		}
	}
	rt, run, err := buildSystem(o.Protocol, wl.hosts, o.Seed, plan)
	if err != nil {
		return "", nil, err
	}
	rt.Eng.SetExplorer(x)
	rt.Eng.At(sim.Time(Watchdog), rt.Eng.Stop)
	done := 0
	runErr := run(func(w cluster.AppThread) {
		wl.body(rt, w)
		done++
	})
	fp := fingerprint(rt)
	switch {
	case runErr != nil:
		var pe *sim.ErrPanic
		var de *sim.ErrDeadlock
		switch {
		case errors.As(runErr, &pe):
			return fp, &Failure{Kind: "panic", Msg: runErr.Error()}, nil
		case errors.As(runErr, &de):
			return fp, &Failure{Kind: "deadlock", Msg: runErr.Error()}, nil
		default:
			return fp, &Failure{Kind: "run-error", Msg: runErr.Error()}, nil
		}
	case wl.err() != nil:
		return fp, &Failure{Kind: "oracle", Msg: wl.err().Error()}, nil
	case done < rt.TotalThreads():
		return fp, &Failure{Kind: "stall", Msg: fmt.Sprintf("%d of %d threads finished before the %v watchdog", done, rt.TotalThreads(), sim.Duration(Watchdog))}, nil
	}
	return fp, nil, nil
}

// Explore runs the campaign: Schedules distinct-seeded schedules of
// one configuration, invariants checked after each. Schedule 0 is the
// unperturbed default order; the rest use the Random strategy. On the
// first failing schedule the decision trace is shrunk and (if
// ArtifactDir is set) written as a repro artifact; exploration then
// stops unless KeepGoing is set.
func Explore(o Options) (*Report, error) {
	if o.Schedules <= 0 {
		o.Schedules = 1
	}
	rep := &Report{Options: o}
	digests := make(map[uint64]struct{})
	for i := 0; i < o.Schedules; i++ {
		var strat sim.Explorer
		if i == 0 {
			strat = &Replayer{} // no decisions: the default schedule
		} else {
			strat = NewRandom(o.ExploreSeed+int64(i)*0x9E3779B9, o.Preempt, o.Budget)
		}
		rec := &Recorder{Inner: strat}
		fp, fail, err := o.runOne(rec)
		if err != nil {
			return rep, err
		}
		tr := &Trace{
			Protocol: o.Protocol, Workload: o.Workload, Faults: o.Faults,
			Hosts: o.Hosts, Seed: o.Seed, Decisions: rec.Decisions,
		}
		res := ScheduleResult{
			Index: i, Digest: tr.Digest(), Fingerprint: fp,
			Decisions: len(rec.Decisions), Failure: fail,
		}
		digests[res.Digest] = struct{}{}
		rep.Schedules = append(rep.Schedules, res)
		if fail != nil && rep.Failure == nil {
			tr.Failure = fail.Error()
			fr := &FailureReport{Schedule: res, Trace: tr}
			shrunk, sres, err := o.Shrink(tr, fail)
			if err == nil {
				fr.Shrunk, fr.ShrunkResult = shrunk, sres
			}
			if o.ArtifactDir != "" {
				art := fr.Shrunk
				if art == nil {
					art = tr
				}
				path := filepath.Join(o.ArtifactDir, fmt.Sprintf("%s-%s-seed%d-%016x.mchk", o.Protocol, o.Workload, o.Seed, res.Digest))
				if err := os.MkdirAll(o.ArtifactDir, 0o755); err == nil {
					if err := art.Save(path); err == nil {
						fr.ArtifactPath = path
					}
				}
			}
			rep.Failure = fr
			if !o.KeepGoing {
				break
			}
		}
	}
	rep.Distinct = len(digests)
	return rep, nil
}

// Replay re-executes a saved trace strictly: every recorded decision
// must line up with the run's actual tie structure. The returned
// result carries the run fingerprint, which is bit-identical across
// replays of the same trace.
func Replay(t *Trace) (*ScheduleResult, error) {
	o := Options{Protocol: t.Protocol, Workload: t.Workload, Faults: t.Faults, Hosts: t.Hosts, Seed: t.Seed}
	r := &Replayer{Decisions: t.Decisions, Strict: true}
	fp, fail, err := o.runOne(r)
	if err != nil {
		return nil, err
	}
	if r.Diverged() {
		return nil, fmt.Errorf("mcheck: trace does not correspond to this configuration (decision %d diverged)", r.Consumed())
	}
	return &ScheduleResult{Digest: t.Digest(), Fingerprint: fp, Decisions: len(t.Decisions), Failure: fail}, nil
}
