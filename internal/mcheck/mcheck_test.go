package mcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"millipage/internal/sim"
)

// TestTraceRoundTrip pins the MCHK1 artifact format.
func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Protocol: "millipage", Workload: "drf", Faults: "drop-heavy",
		Hosts: 3, Seed: -7,
		Decisions: []Decision{{N: 4, Pick: 2}, {N: 2, Pick: 0}, {N: 3, Pick: 1}},
		Failure:   "oracle: host 1: accumulator = 11, want 12",
	}
	got, err := UnmarshalTrace(tr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != tr.Protocol || got.Workload != tr.Workload || got.Faults != tr.Faults ||
		got.Hosts != tr.Hosts || got.Seed != tr.Seed || got.Failure != tr.Failure ||
		len(got.Decisions) != len(tr.Decisions) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Decisions {
		if got.Decisions[i] != tr.Decisions[i] {
			t.Fatalf("decision %d: %v vs %v", i, got.Decisions[i], tr.Decisions[i])
		}
	}
	if got.Digest() != tr.Digest() {
		t.Fatal("digest changed across round trip")
	}

	// Save/Load through a file.
	path := filepath.Join(t.TempDir(), "t.mchk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err != nil {
		t.Fatal(err)
	}

	// Corruption is detected.
	bad := tr.Marshal()
	bad[len(bad)/2] ^= 0xff
	if _, err := UnmarshalTrace(bad); err == nil {
		t.Fatal("corrupt trace accepted")
	}
	if _, err := UnmarshalTrace([]byte("not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestExploreDistinctSchedules is the campaign guarantee the CI smoke
// relies on: >= 100 distinct schedules per (protocol, workload, seed).
func TestExploreDistinctSchedules(t *testing.T) {
	for _, proto := range []string{"millipage", "ivy"} {
		t.Run(proto, func(t *testing.T) {
			rep, err := Explore(Options{
				Protocol: proto, Workload: "drf", Seed: 1,
				Schedules: 110, ExploreSeed: 42, Preempt: 0.25, Budget: 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failure != nil {
				t.Fatalf("schedule %d failed: %v (digest %016x)",
					rep.Failure.Schedule.Index, rep.Failure.Schedule.Failure, rep.Failure.Schedule.Digest)
			}
			if rep.Distinct < 100 {
				t.Fatalf("only %d distinct schedules out of %d explored", rep.Distinct, len(rep.Schedules))
			}
		})
	}
}

// TestExploreFailoverSchedules is the replicated-management campaign
// guarantee: under the manager-kill preset — the hot shard's primary
// crashed in the middle of the lock-guarded increment burst — at least
// 100 distinct schedules must pass the exactly-once oracle, with no
// stall until the dead host's restart (a stall past the watchdog is a
// failure classification of its own).
func TestExploreFailoverSchedules(t *testing.T) {
	rep, err := Explore(Options{
		Protocol: "millipage-repl", Workload: "failover", Faults: "manager-kill",
		Seed: 3, Schedules: 110, ExploreSeed: 21, Preempt: 0.25, Budget: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("schedule %d failed: %v (digest %016x)",
			rep.Failure.Schedule.Index, rep.Failure.Schedule.Failure, rep.Failure.Schedule.Digest)
	}
	if rep.Distinct < 100 {
		t.Fatalf("only %d distinct schedules out of %d explored", rep.Distinct, len(rep.Schedules))
	}
	// The litmus refuses to run where replication is off: the workload
	// would silently test nothing.
	if _, err := Explore(Options{Protocol: "millipage", Workload: "failover", Schedules: 1}); err == nil {
		t.Fatal("failover workload accepted without replicated management")
	}
}

// TestFailoverRegressionTrace replays the checked-in failover schedule:
// a seeded manager-kill interleaving recorded while fixing the
// dedup-table rebuild bug (a promoted backup redoing a completed
// transaction). The artifact must load, replay bit-identically twice,
// and pass — forever.
//
// Regenerate after an intentional protocol timing change with:
//
//	MCHECK_REGEN=1 go test ./internal/mcheck -run TestFailoverRegressionTrace
func TestFailoverRegressionTrace(t *testing.T) {
	const path = "testdata/failover-manager-kill.mchk"
	o := Options{
		Protocol: "millipage-repl", Workload: "failover", Faults: "manager-kill",
		Seed: 3, ExploreSeed: 21, Preempt: 0.25, Budget: 40,
	}
	if os.Getenv("MCHECK_REGEN") != "" {
		rec := &Recorder{Inner: NewRandom(o.ExploreSeed+7*0x9E3779B9, o.Preempt, o.Budget)}
		_, fail, err := o.runOne(rec)
		if err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatalf("regeneration schedule failed: %v", fail)
		}
		tr := &Trace{
			Protocol: o.Protocol, Workload: o.Workload, Faults: o.Faults,
			Hosts: o.Hosts, Seed: o.Seed, Decisions: rec.Decisions,
		}
		if err := tr.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s: %d decisions, digest %016x", path, len(tr.Decisions), tr.Digest())
	}
	art, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Protocol != "millipage-repl" || art.Workload != "failover" || art.Faults != "manager-kill" {
		t.Fatalf("artifact drifted: %s/%s/%s", art.Protocol, art.Workload, art.Faults)
	}
	r1, err := Replay(art)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(art)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failure != nil || r2.Failure != nil {
		t.Fatalf("regression trace fails again: %v / %v", r1.Failure, r2.Failure)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("replay is not deterministic:\n r1: %s\n r2: %s", r1.Fingerprint, r2.Fingerprint)
	}
	if r1.Digest != art.Digest() {
		t.Fatal("replay digest diverged from the artifact")
	}
}

// TestExploreLRCDRF: the DRF workload explores under lazy release
// consistency too, and SC-dependent workloads are refused.
func TestExploreLRCDRF(t *testing.T) {
	rep, err := Explore(Options{Protocol: "lrc", Workload: "drf", Seed: 1, Schedules: 25, ExploreSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("lrc drf failed: %v", rep.Failure.Schedule.Failure)
	}
	if rep.Distinct < 20 {
		t.Fatalf("only %d distinct schedules", rep.Distinct)
	}
	if _, err := Explore(Options{Protocol: "lrc", Workload: "dekker", Seed: 1, Schedules: 1}); err == nil {
		t.Fatal("lrc accepted an SC litmus workload")
	}
}

// TestExploreWithFaults composes exploration with every fault preset.
func TestExploreWithFaults(t *testing.T) {
	for _, preset := range FaultNames() {
		t.Run(preset, func(t *testing.T) {
			rep, err := Explore(Options{
				Protocol: "millipage", Workload: "drf", Faults: preset,
				Seed: 3, Schedules: 8, ExploreSeed: 11, Preempt: 0.1, Budget: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failure != nil {
				t.Fatalf("schedule %d under %s failed: %v",
					rep.Failure.Schedule.Index, preset, rep.Failure.Schedule.Failure)
			}
		})
	}
}

// TestReplayBitIdentical: a recorded schedule replays to the same run
// fingerprint (elapsed virtual time + full transport counters) across
// two independent replays, including through a save/load cycle.
func TestReplayBitIdentical(t *testing.T) {
	o := Options{Protocol: "millipage", Workload: "drf", Seed: 5, Schedules: 4, ExploreSeed: 99, Preempt: 0.2, Budget: 30}
	rep, err := Explore(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("exploration failed: %v", rep.Failure.Schedule.Failure)
	}
	// Re-record schedule 3 to get its trace (Explore keeps digests only
	// for passing schedules), by replaying the same strategy seed.
	rec := &Recorder{Inner: NewRandom(o.ExploreSeed+3*0x9E3779B9, o.Preempt, o.Budget)}
	fp0, fail, err := o.runOne(rec)
	if err != nil || fail != nil {
		t.Fatal(err, fail)
	}
	tr := &Trace{Protocol: o.Protocol, Workload: o.Workload, Hosts: o.Hosts, Seed: o.Seed, Decisions: rec.Decisions}
	if tr.Digest() != rep.Schedules[3].Digest || fp0 != rep.Schedules[3].Fingerprint {
		t.Fatal("re-recorded schedule does not match the explored one")
	}

	path := filepath.Join(t.TempDir(), "sched3.mchk")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint != fp0 || r2.Fingerprint != fp0 {
		t.Fatalf("replay fingerprints diverged:\n rec: %s\n r1:  %s\n r2:  %s", fp0, r1.Fingerprint, r2.Fingerprint)
	}
	if r1.Digest != tr.Digest() || r2.Digest != r1.Digest {
		t.Fatal("replay digests diverged")
	}
}

// TestInjectedBugCaughtShrunkReplayed is the end-to-end acceptance
// criterion: the drf-nolock mutation (lock elided around the
// accumulator read-modify-write) must be caught by exploration, its
// failing schedule must shrink to a repro artifact, and the artifact
// must replay to the same failure.
func TestInjectedBugCaughtShrunkReplayed(t *testing.T) {
	dir := t.TempDir()
	rep, err := Explore(Options{
		Protocol: "millipage", Workload: "drf-nolock", Seed: 1,
		Schedules: 60, ExploreSeed: 1, Preempt: 0.3, Budget: 50,
		ArtifactDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil {
		t.Fatalf("injected lost-update bug survived %d explored schedules", len(rep.Schedules))
	}
	fr := rep.Failure
	if fr.Schedule.Failure.Kind != "oracle" || !strings.Contains(fr.Schedule.Failure.Msg, "accumulator") {
		t.Fatalf("unexpected failure: %v", fr.Schedule.Failure)
	}
	if fr.Shrunk == nil {
		t.Fatal("failing schedule did not shrink")
	}
	if got, orig := len(fr.Shrunk.Decisions), len(fr.Trace.Decisions); got > orig {
		t.Fatalf("shrunk trace grew: %d > %d decisions", got, orig)
	}
	if fr.ArtifactPath == "" {
		t.Fatal("no repro artifact written")
	}

	// The artifact replays to the same failure, twice.
	art, err := LoadTrace(fr.ArtifactPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Replay(art)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil || res.Failure.Kind != "oracle" {
			t.Fatalf("replay %d of artifact: failure = %v, want the oracle violation", i, res.Failure)
		}
		if res.Failure.Error() != art.Failure {
			t.Fatalf("replayed failure %q, artifact recorded %q", res.Failure.Error(), art.Failure)
		}
		if res.Fingerprint != fr.ShrunkResult.Fingerprint {
			t.Fatalf("replay %d fingerprint diverged from shrink-time replay", i)
		}
	}

	// 1-minimality: zeroing any single remaining non-default decision
	// loses the failure (the shrinker's guarantee, verified directly).
	var nonzero []int
	for i, d := range fr.Shrunk.Decisions {
		if d.Pick != 0 {
			nonzero = append(nonzero, i)
		}
	}
	o := Options{Protocol: fr.Shrunk.Protocol, Workload: fr.Shrunk.Workload, Hosts: fr.Shrunk.Hosts, Seed: fr.Shrunk.Seed}
	for _, i := range nonzero {
		dec := make([]Decision, len(fr.Shrunk.Decisions))
		copy(dec, fr.Shrunk.Decisions)
		dec[i].Pick = 0
		_, f, err := o.runOne(&Replayer{Decisions: dec})
		if err != nil {
			t.Fatal(err)
		}
		if f != nil && f.Kind == "oracle" {
			t.Fatalf("shrunk trace is not 1-minimal: zeroing decision %d still fails", i)
		}
	}
}

// TestReplayerDivergence exercises the Replayer clamping contract: an
// out-of-range pick clamps into range and marks divergence, and an
// exhausted replayer answers the default order.
func TestReplayerDivergence(t *testing.T) {
	r := &Replayer{Decisions: []Decision{{N: 3, Pick: 5}}}
	ties := make([]sim.EventInfo, 2)
	if k := r.ChooseTie(ties); k != 1 || !r.Diverged() {
		t.Fatalf("clamped pick = %d, diverged = %v", k, r.Diverged())
	}
	if k := r.ChooseTie(ties); k != 0 {
		t.Fatalf("exhausted replayer picked %d, want 0", k)
	}
	if r.Consumed() != 1 {
		t.Fatalf("Consumed = %d", r.Consumed())
	}
}
