package mcheck

import (
	"fmt"
	"sort"

	"millipage/internal/check"
	"millipage/internal/cluster"
	"millipage/internal/sim"
)

// workloadRun is one built workload instance: the portable body every
// thread executes, and the oracle to consult after the run.
type workloadRun struct {
	hosts int
	body  func(rt *cluster.Runtime, w cluster.AppThread)
	err   func() error
}

// workloadSpec names a workload and its constraints.
type workloadSpec struct {
	defaultHosts int
	fixedHosts   bool // body shape requires exactly defaultHosts
	sc           bool // requires sequential consistency (not runnable under lrc)
	repl         bool // exercises replicated management (millipage-repl only)
	build        func(hosts int, seed int64) workloadRun
}

// failoverVictim is the host whose directory primary the "manager-kill"
// fault preset crashes; the failover workload hammers minipages homed
// there so the kill lands mid-transaction.
const failoverVictim = 1

var workloads = map[string]workloadSpec{
	// swmr: seed-dependent read/write mix with the SW/MR page-table
	// invariant asserted after every operation.
	"swmr": {defaultHosts: 4, sc: true, build: func(hosts int, seed int64) workloadRun {
		wl := &check.SWMRSweep{Words: 4, Iters: 12, Seed: uint64(seed)}
		return workloadRun{
			hosts: hosts,
			body: func(rt *cluster.Runtime, w cluster.AppThread) {
				if wl.Prots == nil {
					wl.Prots = check.RuntimeProts{RT: rt}
				}
				wl.Body(w)
			},
			err: wl.Err,
		}
	}},
	// mp: the message-passing litmus (observed flag implies observed
	// data), with one background-traffic host.
	"mp": {defaultHosts: 3, sc: true, build: func(hosts int, seed int64) workloadRun {
		wl := &check.MessagePassing{}
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) { wl.Body(w) }, err: wl.Err}
	}},
	// dekker: the store-buffering litmus; exactly two hosts.
	"dekker": {defaultHosts: 2, fixedHosts: true, sc: true, build: func(hosts int, seed int64) workloadRun {
		wl := &check.Dekker{}
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) { wl.Body(w) }, err: wl.Err}
	}},
	// drf: the barrier/lock-structured agreement program; runnable
	// under all three protocols, LRC included.
	"drf": {defaultHosts: 3, build: func(hosts int, seed int64) workloadRun {
		wl := &check.DRF{Hosts: hosts, Rounds: 2, LockReps: 2}
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) { wl.Body(w) }, err: wl.Err}
	}},
	// merge: the multiple-writer agreement program — every host writes
	// its own word of one shared minipage each round. DRF, so runnable
	// under every protocol; under lrc-mw it exercises twin/diff merging
	// of concurrent intervals directly.
	"merge": {defaultHosts: 3, build: func(hosts int, seed int64) workloadRun {
		wl := &check.ConcurrentMerge{Hosts: hosts, Rounds: 2}
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) { wl.Body(w) }, err: wl.Err}
	}},
	// failover: the replicated-management litmus. Every surviving host
	// runs a lock-guarded increment burst against a minipage homed at
	// failoverVictim, starting right after the opening barrier so the
	// manager-kill preset's crash (2ms in) lands in the middle of the
	// burst — on some explored schedules between a directory mutation's
	// mirror to the backup and its ack to the requester. The oracle is
	// the accumulator's high-water mark: the last increment to land
	// observes the full sum iff no increment was lost to the dead
	// primary or redone by the promoted backup.
	"failover": {defaultHosts: 4, sc: true, repl: true, build: func(hosts int, seed int64) workloadRun {
		const incs = 6
		vas := make([]uint64, hosts)
		var maxSeen uint32
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) {
			if w.Host() == 0 {
				for i := range vas {
					vas[i] = w.Malloc(64) // minipage i, homed at host i
					w.WriteU32(vas[i], 0)
				}
			}
			w.Barrier()
			if w.Host() == failoverVictim {
				return // its host crashes mid-burst; the survivors carry on
			}
			for i := 0; i < incs; i++ {
				w.Lock(0)
				v := w.ReadU32(vas[failoverVictim]) + 1
				w.WriteU32(vas[failoverVictim], v)
				if v > maxSeen {
					maxSeen = v
				}
				w.Unlock(0)
				// Spread the burst across the crash window so requests are
				// in flight at the primary when it dies.
				w.Compute(400 * sim.Microsecond)
			}
		}, err: func() error {
			want := uint32((hosts - 1) * incs)
			if maxSeen != want {
				return fmt.Errorf("failover accumulator high-water = %d, want %d (increments lost or redone across the view change)", maxSeen, want)
			}
			return nil
		}}
	}},
	// drf-nolock: the intentionally injected bug — the accumulator
	// update races because the lock is skipped. Exploration must catch
	// the lost update; used by self-tests and demos, never by CI gates
	// that expect success.
	"drf-nolock": {defaultHosts: 3, build: func(hosts int, seed int64) workloadRun {
		wl := &check.DRF{Hosts: hosts, Rounds: 1, LockReps: 2, SkipLock: true}
		return workloadRun{hosts: hosts, body: func(rt *cluster.Runtime, w cluster.AppThread) { wl.Body(w) }, err: wl.Err}
	}},
}

// WorkloadNames lists the available workloads, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads { //detlint:ok sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildWorkload resolves o.Workload (and a zero o.Hosts) into a fresh
// workload instance for one run.
func buildWorkload(o *Options) (workloadRun, error) {
	spec, ok := workloads[o.Workload]
	if !ok {
		return workloadRun{}, fmt.Errorf("mcheck: unknown workload %q (have %v)", o.Workload, WorkloadNames())
	}
	if spec.sc && (o.Protocol == "lrc" || o.Protocol == "lrc-mw") {
		return workloadRun{}, fmt.Errorf("mcheck: workload %q needs sequential consistency; %s guarantees DRF programs only", o.Workload, o.Protocol)
	}
	if spec.repl && o.Protocol != "millipage-repl" {
		return workloadRun{}, fmt.Errorf("mcheck: workload %q exercises replicated directory management; run it under the millipage-repl protocol", o.Workload)
	}
	if o.Hosts == 0 {
		o.Hosts = spec.defaultHosts
	}
	if spec.fixedHosts && o.Hosts != spec.defaultHosts {
		return workloadRun{}, fmt.Errorf("mcheck: workload %q requires exactly %d hosts", o.Workload, spec.defaultHosts)
	}
	if o.Hosts < 2 {
		return workloadRun{}, fmt.Errorf("mcheck: workload %q needs at least 2 hosts", o.Workload)
	}
	return spec.build(o.Hosts, o.Seed), nil
}
