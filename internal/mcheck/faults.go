package mcheck

import (
	"fmt"
	"sort"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// Fault presets: the chaos suite's four-point matrix, exported so
// exploration composes schedule perturbation with wire hostility.
// Partition and crash windows sit a few virtual milliseconds in —
// inside the barrier phases of every mcheck workload.
var faultPresets = map[string]func(hosts int, seed int64) *faultnet.Plan{
	"drop-heavy": func(hosts int, seed int64) *faultnet.Plan {
		return &faultnet.Plan{Seed: seed, Drop: 0.25, Dup: 0.15}
	},
	"reorder-heavy": func(hosts int, seed int64) *faultnet.Plan {
		return &faultnet.Plan{Seed: seed, Drop: 0.05, Reorder: 0.6, Jitter: 3 * sim.Millisecond}
	},
	"partition-heal": func(hosts int, seed int64) *faultnet.Plan {
		half := hosts / 2
		var a, b uint64
		for h := 0; h < hosts; h++ {
			if h < half {
				a |= 1 << uint(h)
			} else {
				b |= 1 << uint(h)
			}
		}
		return &faultnet.Plan{
			Seed: seed,
			Drop: 0.05,
			Partitions: []faultnet.Partition{
				{A: a, B: b, From: sim.Time(2 * sim.Millisecond), Until: sim.Time(12 * sim.Millisecond)},
			},
		}
	},
	// manager-kill: the failover litmus schedule — crash the hot
	// shard's primary (the failover workload's victim host) mid-burst
	// and keep it down long past the burst, so any protocol stalling
	// until its restart trips the stall classifier rather than quietly
	// riding it out. A little frame loss keeps retries in play.
	"manager-kill": func(hosts int, seed int64) *faultnet.Plan {
		return &faultnet.Plan{Seed: seed, Drop: 0.02, Crashes: []faultnet.Crash{
			{Host: 1, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(30 * sim.Millisecond)},
		}}
	},
	"crash-restart": func(hosts int, seed int64) *faultnet.Plan {
		return &faultnet.Plan{Seed: seed, Drop: 0.02, Crashes: []faultnet.Crash{
			{Host: hosts - 1, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(8 * sim.Millisecond)},
			// The manager / allocation authority itself.
			{Host: 0, At: sim.Time(15 * sim.Millisecond), RestartAt: sim.Time(22 * sim.Millisecond)},
		}}
	},
}

// FaultNames lists the available fault presets, sorted.
func FaultNames() []string {
	names := make([]string, 0, len(faultPresets))
	for name := range faultPresets { //detlint:ok sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FaultPlan builds the named fault preset for a cluster of hosts,
// seeded with seed.
func FaultPlan(name string, hosts int, seed int64) (*faultnet.Plan, error) {
	mk, ok := faultPresets[name]
	if !ok {
		return nil, fmt.Errorf("mcheck: unknown fault preset %q (have %v)", name, FaultNames())
	}
	return mk(hosts, seed), nil
}
