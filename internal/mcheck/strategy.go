package mcheck

import (
	"math/rand"

	"millipage/internal/sim"
)

// Random is the exploration strategy: a seeded uniform tie-break
// shuffle, optionally biased toward preempting processes that yielded.
//
// With Preempt = 0 every tied event is equally likely, which diffuses
// over the schedule space. Preempt > 0 adds targeted hostility at
// exactly the points the paper's protocols are most delicate — a
// process that volunteered the processor (Yield / Sleep(0), e.g. a
// spin-wait backoff) is then kept parked with that probability while
// non-yield work at the same instant runs first, for at most Budget
// preemptions per run (bounded preemption keeps the schedule space
// tractable, in the PCT tradition).
type Random struct {
	Preempt float64 // probability of deferring a FromYield event
	Budget  int     // max preemptions per run; 0 means no bound

	rng   *rand.Rand
	spent int
}

// NewRandom returns a Random strategy seeded with seed.
func NewRandom(seed int64, preempt float64, budget int) *Random {
	return &Random{Preempt: preempt, Budget: budget, rng: rand.New(rand.NewSource(seed))}
}

func (s *Random) ChooseTie(ties []sim.EventInfo) int {
	k := s.rng.Intn(len(ties))
	if s.Preempt <= 0 || !ties[k].FromYield || (s.Budget > 0 && s.spent >= s.Budget) {
		return k
	}
	if s.rng.Float64() >= s.Preempt {
		return k
	}
	// Preempt the yielder: redirect to a uniformly chosen non-yield
	// event, if any exists at this instant.
	other := -1
	n := 0
	for i, ti := range ties {
		if !ti.FromYield {
			if n++; s.rng.Intn(n) == 0 {
				other = i
			}
		}
	}
	if other < 0 {
		return k // everyone yielded; someone has to run
	}
	s.spent++
	return other
}

// Recorder wraps a strategy and records every decision it takes, in
// the order the engine asked. The recorded sequence replays the
// schedule bit-identically through a Replayer.
type Recorder struct {
	Inner     sim.Explorer
	Decisions []Decision
}

func (r *Recorder) ChooseTie(ties []sim.EventInfo) int {
	k := r.Inner.ChooseTie(ties)
	r.Decisions = append(r.Decisions, Decision{N: uint32(len(ties)), Pick: uint32(k)})
	return k
}

// Replayer replays a recorded decision sequence. Once the sequence is
// exhausted it answers 0 (the default engine order) forever.
//
// In strict mode any arity mismatch or out-of-range pick means the
// trace does not correspond to this run, which is a hard error — the
// caller checks Diverged after the run. In clamping mode (strict
// false) mismatches are tolerated by clamping the pick into range;
// the shrinker uses this while mutating prefixes, then re-records a
// canonical trace from whatever schedule the clamped replay produced.
type Replayer struct {
	Decisions []Decision
	Strict    bool

	pos      int
	diverged bool
}

func (r *Replayer) ChooseTie(ties []sim.EventInfo) int {
	if r.pos >= len(r.Decisions) {
		return 0
	}
	d := r.Decisions[r.pos]
	r.pos++
	if int(d.N) != len(ties) {
		r.diverged = true
	}
	if int(d.Pick) >= len(ties) {
		r.diverged = true
		return len(ties) - 1
	}
	return int(d.Pick)
}

// Diverged reports whether any decision failed to line up with the
// run's actual tie structure.
func (r *Replayer) Diverged() bool { return r.diverged }

// Consumed reports how many decisions the run used.
func (r *Replayer) Consumed() int { return r.pos }
