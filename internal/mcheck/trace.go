package mcheck

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
)

// A Decision records one scheduling choice: N events were tied at the
// calendar minimum and the explorer fired index Pick (0 = the event
// the default, non-exploring engine would have fired). The sequence of
// decisions, together with the run configuration, determines an
// explored schedule completely — that is what makes a failing schedule
// a file on disk instead of a heisenbug.
type Decision struct {
	N    uint32
	Pick uint32
}

// Trace is a saved schedule: the configuration that ran plus every
// scheduling decision taken. Failure carries the human-readable
// failure the schedule exhibited when it was saved ("" for a passing
// schedule); replay verifies against it.
type Trace struct {
	Protocol  string
	Workload  string
	Faults    string // fault preset name, "" for a clean network
	Hosts     int
	Seed      int64 // system seed (engine rng, fault plan)
	Decisions []Decision
	Failure   string
}

// Digest returns the FNV-1a fingerprint of the decision sequence. Two
// schedules of the same configuration are distinct exactly when their
// digests differ.
func (t *Trace) Digest() uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	for _, d := range t.Decisions {
		n := binary.PutUvarint(buf[:], uint64(d.N))
		h.Write(buf[:n])
		n = binary.PutUvarint(buf[:], uint64(d.Pick))
		h.Write(buf[:n])
	}
	return h.Sum64()
}

// traceMagic versions the on-disk format.
const traceMagic = "MCHK1\n"

// Marshal encodes the trace in the MCHK1 format: magic, then
// varint-framed header fields and decisions, then an FNV-1a checksum
// of everything between magic and checksum.
func (t *Trace) Marshal() []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	putStr := func(s string) {
		putUvarint(&b, uint64(len(s)))
		b.WriteString(s)
	}
	putStr(t.Protocol)
	putStr(t.Workload)
	putStr(t.Faults)
	putUvarint(&b, uint64(t.Hosts))
	putVarint(&b, t.Seed)
	putStr(t.Failure)
	putUvarint(&b, uint64(len(t.Decisions)))
	for _, d := range t.Decisions {
		putUvarint(&b, uint64(d.N))
		putUvarint(&b, uint64(d.Pick))
	}
	h := fnv.New64a()
	h.Write(b.Bytes()[len(traceMagic):])
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	b.Write(sum[:])
	return b.Bytes()
}

// UnmarshalTrace decodes a MCHK1 trace, verifying magic and checksum.
func UnmarshalTrace(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic)+8 || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("mcheck: not a %q trace", traceMagic[:5])
	}
	body, sum := data[len(traceMagic):len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.BigEndian.Uint64(sum) {
		return nil, fmt.Errorf("mcheck: trace checksum mismatch (corrupt or truncated)")
	}
	r := bytes.NewReader(body)
	var t Trace
	var err error
	getStr := func() string {
		if err != nil {
			return ""
		}
		var n uint64
		if n, err = binary.ReadUvarint(r); err != nil {
			return ""
		}
		buf := make([]byte, n)
		if _, e := r.Read(buf); e != nil {
			err = e
			return ""
		}
		return string(buf)
	}
	t.Protocol = getStr()
	t.Workload = getStr()
	t.Faults = getStr()
	hosts, e1 := binary.ReadUvarint(r)
	seed, e2 := binary.ReadVarint(r)
	t.Hosts, t.Seed = int(hosts), seed
	t.Failure = getStr()
	nd, e3 := binary.ReadUvarint(r)
	for _, e := range []error{err, e1, e2, e3} {
		if e != nil {
			return nil, fmt.Errorf("mcheck: malformed trace header: %w", e)
		}
	}
	t.Decisions = make([]Decision, 0, nd)
	for i := uint64(0); i < nd; i++ {
		n, e1 := binary.ReadUvarint(r)
		p, e2 := binary.ReadUvarint(r)
		if e1 != nil || e2 != nil {
			return nil, fmt.Errorf("mcheck: malformed decision %d", i)
		}
		t.Decisions = append(t.Decisions, Decision{N: uint32(n), Pick: uint32(p)})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("mcheck: %d trailing bytes after decisions", r.Len())
	}
	return &t, nil
}

// Save writes the trace to path (the repro artifact).
func (t *Trace) Save(path string) error {
	return os.WriteFile(path, t.Marshal(), 0o644)
}

// LoadTrace reads a trace saved by Save.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalTrace(data)
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putVarint(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutVarint(buf[:], v)])
}
