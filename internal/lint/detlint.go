// Package lint implements the repository's determinism lint: a static
// scan of the simulation code under internal/ for constructs that break
// replayable, seed-stable execution. Everything the engine runs must be
// a pure function of (program, seed, decision trace) — see
// docs/MODEL.md — so wall-clock reads, the process-global RNG, and
// iteration over Go maps (whose order is deliberately randomized by the
// runtime) are all banned on simulation paths.
//
// Intentional exceptions carry a `//detlint:ok <reason>` directive on
// the offending line or the line above — for example a map iteration
// whose results are sorted before they influence anything observable.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one determinism hazard.
type Finding struct {
	Pos  token.Position
	Rule string // "time-now", "global-rand" or "map-range"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// globalRand lists math/rand package-level functions that draw from the
// process-global, non-seeded (or globally seeded) source. Constructing
// a private source with rand.New(rand.NewSource(seed)) is the approved
// pattern and is not flagged.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// Check scans every non-test Go file in the packages under root
// (recursively) and returns the unsuppressed findings, sorted by
// position.
func Check(root string) ([]Finding, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []Finding
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return all, nil
}

// stubImporter satisfies type-checking imports with empty packages, so
// each package can be checked in isolation: locally declared types (the
// ones the map-range rule needs) resolve fully, cross-package types
// degrade to invalid and are skipped.
type stubImporter struct{ cache map[string]*types.Package }

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.cache[path] = p
	return p, nil
}

func checkDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var all []Finding
	for _, pkg := range pkgs {
		var files []*ast.File
		for _, f := range pkg.Files {
			files = append(files, f)
		}
		sort.Slice(files, func(i, j int) bool {
			return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
		})

		// Tolerant type check: import and type errors are expected (the
		// stub importer returns empty packages); we only need types for
		// locally declared expressions.
		info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
		conf := types.Config{
			Importer:                 &stubImporter{cache: make(map[string]*types.Package)},
			Error:                    func(error) {},
			DisableUnusedImportCheck: true,
		}
		conf.Check(pkg.Name, fset, files, info) //nolint:errcheck // tolerant by design

		for _, f := range files {
			all = append(all, checkFile(fset, f, info)...)
		}
	}
	return all, nil
}

func checkFile(fset *token.FileSet, f *ast.File, info *types.Info) []Finding {
	// Import alias → path, for this file.
	imports := make(map[string]string)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
	}

	// Lines carrying a //detlint:ok directive suppress findings on the
	// same line or the line below.
	okLines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detlint:ok") {
				okLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	suppressed := func(pos token.Pos) bool {
		line := fset.Position(pos).Line
		return okLines[line] || okLines[line-1]
	}

	var fs []Finding
	report := func(pos token.Pos, rule, msg string) {
		if suppressed(pos) {
			return
		}
		fs = append(fs, Finding{Pos: fset.Position(pos), Rule: rule, Msg: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || id.Obj != nil { // shadowed by a local declaration
				return true
			}
			switch imports[id.Name] {
			case "time":
				if n.Sel.Name == "Now" {
					report(n.Pos(), "time-now",
						"time.Now reads the wall clock; simulation code must use the engine's virtual clock")
				}
			case "math/rand", "math/rand/v2":
				if globalRand[n.Sel.Name] {
					report(n.Pos(), "global-rand",
						"rand."+n.Sel.Name+" draws from the process-global RNG; use rand.New(rand.NewSource(seed))")
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "map-range",
						"map iteration order is randomized; sort the keys or annotate //detlint:ok <reason>")
				}
			}
		}
		return true
	})
	return fs
}
