package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalIsDeterministic is the lint gate: no simulation code under
// internal/ may read the wall clock, draw from the global RNG, or
// iterate a map without either sorting or a //detlint:ok exemption.
func TestInternalIsDeterministic(t *testing.T) {
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d determinism hazard(s); fix or annotate //detlint:ok <reason>", len(findings))
	}
}

// writeFixture lays out a throwaway package and returns its directory.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestCheckFlagsHazards(t *testing.T) {
	dir := writeFixture(t, `package fix

import (
	"math/rand"
	"time"
)

func bad() int64 {
	m := map[int]int{1: 2}
	s := 0
	for k := range m {
		s += k
	}
	return time.Now().UnixNano() + int64(rand.Intn(10)) + int64(s)
}
`)
	fs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rules(fs), ",")
	if got != "map-range,time-now,global-rand" {
		t.Fatalf("rules = %q, want map-range,time-now,global-rand\nfindings: %v", got, fs)
	}
}

func TestCheckAllowsSeededRandAndDirectives(t *testing.T) {
	dir := writeFixture(t, `package fix

import "math/rand"

func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	m := map[int]int{1: 2}
	s := 0
	for k := range m { //detlint:ok commutative sum
		s += k
	}
	//detlint:ok keys feed a sorted slice
	for k := range m {
		s += k
	}
	return r.Intn(10) + s
}
`)
	fs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("false positives: %v", fs)
	}
}

func TestCheckIgnoresShadowedImports(t *testing.T) {
	dir := writeFixture(t, `package fix

type clock struct{}

func (clock) Now() int { return 0 }

func good() int {
	var time clock
	return time.Now()
}
`)
	fs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("false positives on shadowed identifier: %v", fs)
	}
}
