package vm

import "testing"

// BenchmarkAccessSamePage measures the fast path: protection check plus
// copy within one mapped page.
func BenchmarkAccessSamePage(b *testing.B) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, ReadWrite); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.Access(nil, 0x10000+uint64(i%64)*64, buf, Read); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessCrossPage measures a 256-byte access spanning pages.
func BenchmarkAccessCrossPage(b *testing.B) {
	mo := NewMemObject(2 * PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 2, ReadWrite); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	va := uint64(0x10000 + PageSize - 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.Access(nil, va, buf, Write); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtect measures protection flips (the DSM's hottest
// metadata operation).
func BenchmarkProtect(b *testing.B) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, ReadWrite); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Protect(0x10000, 1, Prot(i%3))
	}
}
