package vm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMemObjectRoundsUpToPages(t *testing.T) {
	mo := NewMemObject(PageSize + 1)
	if mo.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", mo.NumPages())
	}
	if mo.Size() != 2*PageSize {
		t.Fatalf("Size = %d, want %d", mo.Size(), 2*PageSize)
	}
}

func TestMapViewAndAccess(t *testing.T) {
	mo := NewMemObject(4 * PageSize)
	as := NewAddressSpace()
	const base = 0x10000
	if err := as.MapView(base, mo, 0, 4, ReadWrite); err != nil {
		t.Fatal(err)
	}
	want := []byte("hello, millipage")
	if err := as.WriteAt(nil, base+100, want); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadAt(nil, base+100, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestMapViewRejectsUnaligned(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10001, mo, 0, 1, ReadWrite); err == nil {
		t.Fatal("unaligned MapView succeeded")
	}
}

func TestMapViewRejectsOverlap(t *testing.T) {
	mo := NewMemObject(2 * PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 2, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.MapView(0x11000, mo, 0, 1, ReadWrite); err == nil {
		t.Fatal("overlapping MapView succeeded")
	}
}

func TestMapViewRejectsFrameRange(t *testing.T) {
	mo := NewMemObject(2 * PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 1, 2, ReadWrite); err == nil {
		t.Fatal("out-of-range frames accepted")
	}
}

// The heart of MultiView: two views of the same frames alias each other,
// but their protections are independent.
func TestViewAliasingWithIndependentProtection(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	const v1, v2 = 0x10000, 0x20000
	if err := as.MapView(v1, mo, 0, 1, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.MapView(v2, mo, 0, 1, ReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteAt(nil, v1+8, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	b, err := as.ReadU8(nil, v2+8)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xAB {
		t.Fatalf("write through view1 not visible through view2: got %#x", b)
	}
	// view2 is ReadOnly: a write must fault, and with no handler, error.
	if err := as.WriteAt(nil, v2+8, []byte{1}); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("write through ReadOnly view: err = %v, want ErrNoHandler", err)
	}
	// view1 keeps its own protection.
	if p, _ := as.ProtOf(v1); p != ReadWrite {
		t.Fatalf("view1 prot = %v, want ReadWrite", p)
	}
}

func TestFaultHandlerUpgradesProtection(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	const base = 0x10000
	if err := as.MapView(base, mo, 0, 1, NoAccess); err != nil {
		t.Fatal(err)
	}
	var faults []Fault
	as.SetFaultHandler(func(ctx any, f Fault) error {
		faults = append(faults, f)
		switch f.Kind {
		case Read:
			return as.Protect(f.Addr, 1, ReadOnly)
		default:
			return as.Protect(f.Addr, 1, ReadWrite)
		}
	})
	if _, err := as.ReadU8(nil, base+5); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU8(nil, base+5, 9); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("faults = %d, want 2 (one read upgrade, one write upgrade)", len(faults))
	}
	if faults[0].Kind != Read || faults[1].Kind != Write {
		t.Fatalf("fault kinds = %v,%v want read,write", faults[0].Kind, faults[1].Kind)
	}
	if as.ReadFaults != 1 || as.WriteFaults != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", as.ReadFaults, as.WriteFaults)
	}
}

func TestFaultStormDetected(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, NoAccess); err != nil {
		t.Fatal(err)
	}
	as.SetFaultHandler(func(ctx any, f Fault) error { return nil }) // never fixes
	_, err := as.ReadU8(nil, 0x10000)
	if !errors.Is(err, ErrFaultStorm) {
		t.Fatalf("err = %v, want ErrFaultStorm", err)
	}
}

func TestAccessSpansPagesWithPerPageChecks(t *testing.T) {
	mo := NewMemObject(2 * PageSize)
	as := NewAddressSpace()
	const base = 0x10000
	if err := as.MapView(base, mo, 0, 1, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.MapView(base+PageSize, mo, 1, 1, NoAccess); err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	as.SetFaultHandler(func(ctx any, f Fault) error {
		upgrades++
		return as.Protect(f.Addr, 1, ReadWrite)
	})
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	// Write straddling the page boundary: second page must fault once.
	if err := as.WriteAt(nil, base+uint64(PageSize)-50, data); err != nil {
		t.Fatal(err)
	}
	if upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", upgrades)
	}
	got, err := as.ReadAt(nil, base+uint64(PageSize)-50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("straddling write/read mismatch")
	}
}

func TestUnmappedAccess(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.ReadU8(nil, 0x999999); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestUnmap(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, ReadWrite); err != nil {
		t.Fatal(err)
	}
	as.Unmap(0x10000, 1)
	if as.Mapped(0x10000) {
		t.Fatal("still mapped after Unmap")
	}
}

func TestBypassIgnoresProtection(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, NoAccess); err != nil {
		t.Fatal(err)
	}
	mem, err := as.Bypass(0x10000+16, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(mem, "ZEROCOPY")
	// Visible through the object's frames directly (aliasing, no copy).
	if string(mo.Frame(0)[16:24]) != "ZEROCOPY" {
		t.Fatal("Bypass write not aliased into frame")
	}
	if _, err := as.Bypass(0x10000+uint64(PageSize)-4, 8); err == nil {
		t.Fatal("page-crossing Bypass accepted")
	}
}

func TestBypassRangeCrossesPages(t *testing.T) {
	mo := NewMemObject(2 * PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 2, NoAccess); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := as.BypassRange(0x10000+uint64(PageSize)-10, 20, func(chunk []byte) error {
		n += len(chunk)
		for i := range chunk {
			chunk[i] = 0x5A
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("visited %d bytes, want 20", n)
	}
	if mo.Frame(0)[PageSize-1] != 0x5A || mo.Frame(1)[9] != 0x5A {
		t.Fatal("BypassRange did not write both pages")
	}
}

func TestTypedAccessors(t *testing.T) {
	mo := NewMemObject(PageSize)
	as := NewAddressSpace()
	if err := as.MapView(0x10000, mo, 0, 1, ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU32(nil, 0x10000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU32(nil, 0x10000); v != 0xDEADBEEF {
		t.Fatalf("u32 = %#x", v)
	}
	if err := as.WriteU64(nil, 0x10008, 1<<40+7); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(nil, 0x10008); v != 1<<40+7 {
		t.Fatalf("u64 = %d", v)
	}
	if err := as.WriteF64(nil, 0x10010, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadF64(nil, 0x10010); v != 3.25 {
		t.Fatalf("f64 = %v", v)
	}
}

// Property: data written through any view is read back identically through
// any other view of the same frames, for arbitrary offsets and contents.
func TestViewAliasProperty(t *testing.T) {
	const pages = 4
	mo := NewMemObject(pages * PageSize)
	as := NewAddressSpace()
	bases := []uint64{0x100000, 0x200000, 0x300000}
	for _, b := range bases {
		if err := as.MapView(b, mo, 0, pages, ReadWrite); err != nil {
			t.Fatal(err)
		}
	}
	f := func(off uint16, data []byte, wi, ri uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		o := uint64(off) % uint64(pages*PageSize-len(data))
		w := bases[int(wi)%len(bases)]
		r := bases[int(ri)%len(bases)]
		if err := as.WriteAt(nil, w+o, data); err != nil {
			return false
		}
		got, err := as.ReadAt(nil, r+o, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
