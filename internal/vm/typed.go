package vm

import (
	"encoding/binary"
	"math"
)

// Typed accessors. These are convenience wrappers over Access used by the
// benchmark applications; all shared data is stored little-endian, the
// byte order of the paper's Pentium II testbed.

// ReadU32 reads a little-endian uint32 at va.
func (as *AddressSpace) ReadU32(ctx any, va uint64) (uint32, error) {
	var b [4]byte
	if err := as.Access(ctx, va, b[:], Read); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian uint32 at va.
func (as *AddressSpace) WriteU32(ctx any, va uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Access(ctx, va, b[:], Write)
}

// ReadU64 reads a little-endian uint64 at va.
func (as *AddressSpace) ReadU64(ctx any, va uint64) (uint64, error) {
	var b [8]byte
	if err := as.Access(ctx, va, b[:], Read); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 at va.
func (as *AddressSpace) WriteU64(ctx any, va uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Access(ctx, va, b[:], Write)
}

// ReadF64 reads a little-endian float64 at va.
func (as *AddressSpace) ReadF64(ctx any, va uint64) (float64, error) {
	v, err := as.ReadU64(ctx, va)
	return math.Float64frombits(v), err
}

// WriteF64 writes a little-endian float64 at va.
func (as *AddressSpace) WriteF64(ctx any, va uint64, v float64) error {
	return as.WriteU64(ctx, va, math.Float64bits(v))
}

// ReadU8 reads the byte at va.
func (as *AddressSpace) ReadU8(ctx any, va uint64) (byte, error) {
	var b [1]byte
	if err := as.Access(ctx, va, b[:], Read); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 writes one byte at va.
func (as *AddressSpace) WriteU8(ctx any, va uint64, v byte) error {
	b := [1]byte{v}
	return as.Access(ctx, va, b[:], Write)
}
