// Package vm is a software virtual-memory subsystem: memory objects backed
// by page frames, per-host address spaces with page tables, per-page
// protections, and synchronous fault upcalls.
//
// It stands in for the Windows-NT mechanisms the Millipage paper uses —
// CreateFileMapping / MapViewOfFile / VirtualProtect and SEH page-fault
// interception. The substitution preserves the paper's semantics exactly:
// every access checks the protection of the virtual page it goes through;
// an insufficient protection invokes the installed fault handler in the
// faulting thread's context; the access retries once the handler returns.
// The only difference is that the "trap" is a function call rather than a
// CPU exception, which is what makes the system buildable in portable Go.
//
// The package is deliberately time-free: it never charges virtual time
// itself. Cost accounting lives in the DSM layer (which knows what each
// operation costs on the paper's hardware) and in the mmu package (which
// models the TLB/cache behaviour of translations for the MultiView
// overhead study).
package vm

import (
	"errors"
	"fmt"
)

// PageSize is the architecture page size used throughout the reproduction,
// matching the Intel Pentium II of the paper's testbed.
const PageSize = 4096

// Prot is a virtual-page protection, exactly the three states the paper's
// protocol uses: NoAccess marks a non-present minipage, ReadOnly a read
// copy, ReadWrite a writable copy.
type Prot uint8

const (
	NoAccess Prot = iota
	ReadOnly
	ReadWrite
)

func (p Prot) String() string {
	switch p {
	case NoAccess:
		return "NoAccess"
	case ReadOnly:
		return "ReadOnly"
	case ReadWrite:
		return "ReadWrite"
	default:
		return fmt.Sprintf("Prot(%d)", uint8(p))
	}
}

// AccessKind distinguishes read faults from write faults.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// allows reports whether protection p permits an access of kind k.
func (p Prot) allows(k AccessKind) bool {
	switch k {
	case Read:
		return p >= ReadOnly
	case Write:
		return p == ReadWrite
	}
	return false
}

// MemObject is a shared memory region backed by page frames — the analogue
// of an NT memory section created with CreateFileMapping. Several views in
// one or more address spaces may map (parts of) the same object; all views
// alias the same frames.
type MemObject struct {
	data     []byte
	numPages int
}

// NewMemObject creates a zero-filled memory object of the given size,
// rounded up to a whole number of pages.
func NewMemObject(size int) *MemObject {
	if size <= 0 {
		panic("vm: NewMemObject with non-positive size")
	}
	pages := (size + PageSize - 1) / PageSize
	return &MemObject{data: make([]byte, pages*PageSize), numPages: pages}
}

// NumPages reports the number of page frames in the object.
func (mo *MemObject) NumPages() int { return mo.numPages }

// Size reports the object's size in bytes (always a multiple of PageSize).
func (mo *MemObject) Size() int { return len(mo.data) }

// Frame returns the backing bytes of frame i. The returned slice aliases
// the object's storage: writes through it are visible through every view.
func (mo *MemObject) Frame(i int) []byte {
	return mo.data[i*PageSize : (i+1)*PageSize]
}

// Bytes returns the object's entire backing store, aliased.
func (mo *MemObject) Bytes() []byte { return mo.data }

// PTE is one page-table entry: which frame of which object a virtual page
// maps, and with what protection.
type PTE struct {
	Obj   *MemObject
	Frame int
	Prot  Prot
}

// Fault describes a protection or presence violation, as delivered to the
// installed fault handler.
type Fault struct {
	Addr uint64     // the faulting virtual address
	Kind AccessKind // read or write
	Prot Prot       // the protection found on the vpage
}

func (f Fault) Error() string {
	return fmt.Sprintf("vm: %s fault at %#x (prot %v)", f.Kind, f.Addr, f.Prot)
}

// FaultHandler services a fault in the faulting thread's context. ctx is
// an opaque per-thread value supplied by the accessor (the DSM passes its
// thread state through it). The handler must raise the page's protection
// so the access can succeed, or return an error to abort it.
type FaultHandler func(ctx any, f Fault) error

// Errors returned by address-space operations.
var (
	ErrUnmapped   = errors.New("vm: address not mapped")
	ErrNoHandler  = errors.New("vm: fault with no handler installed")
	ErrFaultStorm = errors.New("vm: access still faulting after repeated handler invocations")
)

// maxFaultRetries bounds handler-retry loops so a handler that fails to
// raise the protection surfaces as an error instead of livelock.
const maxFaultRetries = 8

// AddressSpace is one host's (process's) virtual address space: a page
// table plus an installed fault handler. It is not safe for use from
// multiple OS threads; in this reproduction all access is serialized by
// the simulation engine.
//
// The page table is a dense slice covering the mapped span. Every user of
// this package maps compact contiguous view ranges (the layout places all
// views back to back), so density costs little memory and makes the
// per-access translation an index instead of a map probe — the single
// hottest operation in the whole simulator.
type AddressSpace struct {
	base    uint64 // vpn of pt[0]
	pt      []PTE  // dense page table; a nil Obj marks an unmapped slot
	handler FaultHandler

	// Counters, read by the DSM statistics layer.
	ReadFaults  uint64
	WriteFaults uint64
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{}
}

// slot returns the live entry for vpn, or nil if the page is unmapped.
func (as *AddressSpace) slot(vpn uint64) *PTE {
	if vpn < as.base || vpn >= as.base+uint64(len(as.pt)) {
		return nil
	}
	pte := &as.pt[vpn-as.base]
	if pte.Obj == nil {
		return nil
	}
	return pte
}

// ensure grows the table to cover vpns [lo, hi).
func (as *AddressSpace) ensure(lo, hi uint64) {
	if as.pt == nil {
		as.base = lo
		as.pt = make([]PTE, hi-lo)
		return
	}
	end := as.base + uint64(len(as.pt))
	nb, ne := as.base, end
	if lo < nb {
		nb = lo
	}
	if hi > ne {
		ne = hi
	}
	if nb == as.base && ne == end {
		return
	}
	np := make([]PTE, ne-nb)
	copy(np[as.base-nb:], as.pt)
	as.base, as.pt = nb, np
}

// Reserve pre-sizes the page table to cover nPages vpages starting at the
// page containing va, without mapping anything. Callers that map many
// views of one layout (core.NewRegion maps n+1 of them back to back)
// reserve the full span once, so the dense table is allocated a single
// time instead of being re-allocated and copied on every MapView.
func (as *AddressSpace) Reserve(va uint64, nPages int) {
	if nPages <= 0 {
		return
	}
	vpn := va / PageSize
	as.ensure(vpn, vpn+uint64(nPages))
}

// SetFaultHandler installs h as the space's fault handler, returning the
// previous handler.
func (as *AddressSpace) SetFaultHandler(h FaultHandler) FaultHandler {
	old := as.handler
	as.handler = h
	return old
}

// MapView maps nPages pages of obj, starting at frame firstFrame, into the
// space at virtual address va with protection prot — the analogue of
// MapViewOfFile. va must be page-aligned. Remapping an already-mapped
// vpage is an error; views never overlap.
func (as *AddressSpace) MapView(va uint64, obj *MemObject, firstFrame, nPages int, prot Prot) error {
	if va%PageSize != 0 {
		return fmt.Errorf("vm: MapView at unaligned address %#x", va)
	}
	if firstFrame < 0 || firstFrame+nPages > obj.numPages {
		return fmt.Errorf("vm: MapView frames [%d,%d) out of object range %d",
			firstFrame, firstFrame+nPages, obj.numPages)
	}
	vpn := va / PageSize
	as.ensure(vpn, vpn+uint64(nPages))
	for i := 0; i < nPages; i++ {
		if as.pt[vpn-as.base+uint64(i)].Obj != nil {
			return fmt.Errorf("vm: MapView overlaps existing mapping at %#x", (vpn+uint64(i))*PageSize)
		}
	}
	for i := 0; i < nPages; i++ {
		as.pt[vpn-as.base+uint64(i)] = PTE{Obj: obj, Frame: firstFrame + i, Prot: prot}
	}
	return nil
}

// Unmap removes nPages mappings starting at page-aligned va.
func (as *AddressSpace) Unmap(va uint64, nPages int) {
	vpn := va / PageSize
	for i := 0; i < nPages; i++ {
		if p := vpn + uint64(i); p >= as.base && p < as.base+uint64(len(as.pt)) {
			as.pt[p-as.base] = PTE{}
		}
	}
}

// Protect sets the protection of nPages vpages starting at the page
// containing va — the analogue of VirtualProtect. It affects only these
// vpages; other views of the same frames are untouched, which is the
// property MultiView is built on.
func (as *AddressSpace) Protect(va uint64, nPages int, prot Prot) error {
	vpn := va / PageSize
	for i := 0; i < nPages; i++ {
		pte := as.slot(vpn + uint64(i))
		if pte == nil {
			return fmt.Errorf("%w: %#x", ErrUnmapped, (vpn+uint64(i))*PageSize)
		}
		pte.Prot = prot
	}
	return nil
}

// ProtOf returns the protection of the vpage containing va.
func (as *AddressSpace) ProtOf(va uint64) (Prot, error) {
	pte := as.slot(va / PageSize)
	if pte == nil {
		return NoAccess, fmt.Errorf("%w: %#x", ErrUnmapped, va)
	}
	return pte.Prot, nil
}

// Lookup returns the PTE of the vpage containing va, if mapped. The
// returned struct is a copy; use Protect to change protections.
func (as *AddressSpace) Lookup(va uint64) (PTE, bool) {
	pte := as.slot(va / PageSize)
	if pte == nil {
		return PTE{}, false
	}
	return *pte, true
}

// Mapped reports whether the vpage containing va is mapped.
func (as *AddressSpace) Mapped(va uint64) bool {
	return as.slot(va/PageSize) != nil
}

// resolve returns the frame bytes addressed by va..va+n (within one page)
// after protection checking, faulting as needed. ctx is passed through to
// the fault handler.
func (as *AddressSpace) resolve(ctx any, va uint64, n int, kind AccessKind) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		pte := as.slot(va / PageSize)
		if pte == nil {
			return nil, fmt.Errorf("%w: %#x", ErrUnmapped, va)
		}
		if pte.Prot.allows(kind) {
			off := int(va % PageSize)
			return pte.Obj.Frame(pte.Frame)[off : off+n], nil
		}
		if kind == Write {
			as.WriteFaults++
		} else {
			as.ReadFaults++
		}
		if as.handler == nil {
			return nil, fmt.Errorf("%w: %v", ErrNoHandler, Fault{Addr: va, Kind: kind, Prot: pte.Prot})
		}
		if attempt >= maxFaultRetries {
			return nil, fmt.Errorf("%w: %v", ErrFaultStorm, Fault{Addr: va, Kind: kind, Prot: pte.Prot})
		}
		if err := as.handler(ctx, Fault{Addr: va, Kind: kind, Prot: pte.Prot}); err != nil {
			return nil, err
		}
	}
}

// Access performs a read or write of len(buf) bytes at va through the
// page-protection machinery, invoking the fault handler as needed. For
// reads the bytes are copied into buf; for writes buf is copied into the
// frames. Accesses may span pages (each page is checked independently,
// as the hardware would).
func (as *AddressSpace) Access(ctx any, va uint64, buf []byte, kind AccessKind) error {
	for len(buf) > 0 {
		n := PageSize - int(va%PageSize)
		if n > len(buf) {
			n = len(buf)
		}
		mem, err := as.resolve(ctx, va, n, kind)
		if err != nil {
			return err
		}
		if kind == Write {
			copy(mem, buf[:n])
		} else {
			copy(buf[:n], mem)
		}
		va += uint64(n)
		buf = buf[n:]
	}
	return nil
}

// ReadAt copies n bytes at va into a new slice, faulting as needed.
func (as *AddressSpace) ReadAt(ctx any, va uint64, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := as.Access(ctx, va, buf, Read); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteAt writes data at va, faulting as needed.
func (as *AddressSpace) WriteAt(ctx any, va uint64, data []byte) error {
	// Access never modifies buf on writes, but takes []byte for symmetry.
	return as.Access(ctx, va, data, Write)
}

// Bypass returns the frame bytes for va..va+n ignoring protections — the
// privileged-view path used by DSM server threads. The range must not
// cross a page boundary and must be mapped. The returned slice aliases the
// frame, enabling the paper's zero-copy send/receive.
func (as *AddressSpace) Bypass(va uint64, n int) ([]byte, error) {
	if int(va%PageSize)+n > PageSize {
		return nil, fmt.Errorf("vm: Bypass range at %#x+%d crosses a page boundary", va, n)
	}
	pte := as.slot(va / PageSize)
	if pte == nil {
		return nil, fmt.Errorf("%w: %#x", ErrUnmapped, va)
	}
	off := int(va % PageSize)
	return pte.Obj.Frame(pte.Frame)[off : off+n], nil
}

// BypassRange is Bypass generalized to page-crossing ranges: it invokes fn
// once per page-contiguous chunk with the chunk's aliased frame bytes.
func (as *AddressSpace) BypassRange(va uint64, n int, fn func(chunk []byte) error) error {
	for n > 0 {
		c := PageSize - int(va%PageSize)
		if c > n {
			c = n
		}
		mem, err := as.Bypass(va, c)
		if err != nil {
			return err
		}
		if err := fn(mem); err != nil {
			return err
		}
		va += uint64(c)
		n -= c
	}
	return nil
}
