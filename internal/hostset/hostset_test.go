package hostset

import "testing"

// TestAcrossWordBoundaries exercises members on both sides of every
// uint64 word — the exact regime where the old uint64 copysets silently
// overflowed (host ids >= 64 mapped to bit 0 of nothing).
func TestAcrossWordBoundaries(t *testing.T) {
	members := []int{0, 1, 63, 64, 65, 127, 128, 255, 511, CapHosts - 1}
	s := Of(members...)
	if s.Count() != len(members) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(members))
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
	for _, h := range members {
		if !s.Has(h) {
			t.Errorf("Has(%d) = false", h)
		}
		if One(h) != Of(h) {
			t.Errorf("One(%d) != Of(%d)", h, h)
		}
	}
	for _, h := range []int{2, 62, 66, 126, 129, 512} {
		if s.Has(h) {
			t.Errorf("Has(%d) = true for a non-member", h)
		}
	}
	// Drain it one member at a time; the set must empty exactly once
	// the last member goes.
	for i, h := range members {
		s = s.Without(h)
		if s.Has(h) {
			t.Errorf("Has(%d) after Without", h)
		}
		if got, want := s.Empty(), i == len(members)-1; got != want {
			t.Errorf("after removing %d: Empty = %v, want %v", h, got, want)
		}
	}
	if s != (Set{}) {
		t.Errorf("drained set != zero value")
	}
}

func TestWithWithoutAreValues(t *testing.T) {
	s := One(70)
	_ = s.With(200)
	if s.Has(200) {
		t.Error("With mutated its receiver")
	}
	_ = s.Without(70)
	if !s.Has(70) {
		t.Error("Without mutated its receiver")
	}
	if (Set{}).First() != -1 {
		t.Error("First on empty != -1")
	}
}
