// Package hostset provides a fixed-capacity set of host identifiers for
// protocol copysets. A plain uint64 bitmask caps the cluster at 64
// hosts and — worse — overflows silently above that: 1<<h is 0 for
// h >= 64, so a big cluster loses copyset members without any error
// until a directory operation trips over an impossibly empty set. Set
// keeps the bitmask idiom but spans CapHosts hosts: it is a comparable
// value type (== compares membership), its zero value is the empty set,
// and no operation allocates.
package hostset

import "math/bits"

// CapHosts is the largest host id + 1 a Set can hold. It matches the
// cluster's host-count cap (millipage.Config.Hosts).
const CapHosts = 1024

const words = CapHosts / 64

// Set is a bit set of host ids in [0, CapHosts). Out-of-range ids panic
// (index out of range), the same loud failure an oversized cluster
// config produces.
type Set [words]uint64

// One returns the singleton {h}.
func One(h int) Set {
	var s Set
	s[h>>6] = 1 << uint(h&63)
	return s
}

// Of returns the set of the given hosts.
func Of(hs ...int) Set {
	var s Set
	for _, h := range hs {
		s[h>>6] |= 1 << uint(h&63)
	}
	return s
}

// Has reports whether h is a member.
func (s Set) Has(h int) bool { return s[h>>6]&(1<<uint(h&63)) != 0 }

// With returns s ∪ {h}.
func (s Set) With(h int) Set {
	s[h>>6] |= 1 << uint(h&63)
	return s
}

// Without returns s \ {h}.
func (s Set) Without(h int) Set {
	s[h>>6] &^= 1 << uint(h&63)
	return s
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == Set{} }

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the lowest member, or -1 when the set is empty.
func (s Set) First() int {
	for i, w := range s {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
