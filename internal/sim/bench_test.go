package sim

import "testing"

// BenchmarkEventDispatch measures raw calendar throughput: schedule and
// fire engine callbacks.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Spawn("driver", func(p *Proc) {
		for n < b.N {
			p.Sleep(1000)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessSwitch measures the goroutine-handshake cost of one
// Sleep (park + resume round trip).
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures producer->consumer rendezvous.
func BenchmarkQueueHandoff(b *testing.B) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(1)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
