package sim

// The FIFO collections here (Signal waiters, Queue items) are consumed
// from the front. Popping with s = s[1:] would shed front capacity until
// every append reallocates — a steady-state allocation per operation on
// the simulator's hottest paths — so they keep an explicit head index
// and reset to the start of the backing array whenever they drain.

// Signal is a condition-variable-like wakeup primitive. Processes block on
// it with Wait; any simulation code (another process or an engine callback)
// releases them with Broadcast or Pulse. Waiters are released in FIFO
// order, preserving determinism.
//
// As with condition variables, Wait returning does not by itself imply that
// the awaited predicate holds: callers re-check in a loop.
type Signal struct {
	e       *Engine
	label   string
	waiters []*Proc
	head    int
}

// NewSignal returns a Signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// SetLabel names the signal for deadlock reports: a process found
// blocked on it is reported as "name (waiting on label)". Callers on
// reused rendezvous slots may relabel per operation; assigning a
// constant string costs nothing.
func (s *Signal) SetLabel(label string) { s.label = label }

// Label returns the signal's deadlock-report label.
func (s *Signal) Label() string { return s.label }

// Wait blocks p until the signal is pulsed or broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.waitOn = s
	p.park(stateBlocked)
}

// Broadcast wakes every waiting process. The wakeups are delivered at the
// current virtual time, after any events already scheduled for this
// instant.
func (s *Signal) Broadcast() {
	// wake only schedules resume events, so no new waiter can appear
	// while this loop runs (the engine is serial).
	for _, w := range s.waiters[s.head:] {
		s.e.wake(w)
	}
	clear(s.waiters)
	s.waiters = s.waiters[:0]
	s.head = 0
}

// Pulse wakes the longest-waiting process, if any.
func (s *Signal) Pulse() {
	if s.head == len(s.waiters) {
		return
	}
	w := s.waiters[s.head]
	s.waiters[s.head] = nil
	s.head++
	if s.head == len(s.waiters) {
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.e.wake(w)
}

// Waiting reports the number of processes currently blocked on s.
func (s *Signal) Waiting() int { return len(s.waiters) - s.head }

// Event is a one-shot latch, the analogue of a Win32 manual-reset event:
// processes Wait until Set fires, after which Wait returns immediately
// until Reset. Millipage's faulting threads block on an Event while their
// request is serviced.
type Event struct {
	set bool
	sig Signal
}

// NewEvent returns an unset event bound to e.
func NewEvent(e *Engine) *Event { return &Event{sig: Signal{e: e}} }

// SetLabel names the event for deadlock reports.
func (ev *Event) SetLabel(label string) { ev.sig.SetLabel(label) }

// Wait blocks p until the event is set. Returns immediately if already set.
func (ev *Event) Wait(p *Proc) {
	for !ev.set {
		ev.sig.Wait(p)
	}
}

// Set fires the event, releasing all current and future waiters.
func (ev *Event) Set() {
	if ev.set {
		return
	}
	ev.set = true
	ev.sig.Broadcast()
}

// Reset returns the event to the unset state.
func (ev *Event) Reset() { ev.set = false }

// IsSet reports whether the event is currently set.
func (ev *Event) IsSet() bool { return ev.set }

// Mutex is a FIFO mutual-exclusion lock for simulated processes.
type Mutex struct {
	held bool
	sig  Signal
}

// NewMutex returns an unlocked mutex bound to e.
func NewMutex(e *Engine) *Mutex { return &Mutex{sig: Signal{e: e}} }

// SetLabel names the mutex for deadlock reports.
func (m *Mutex) SetLabel(label string) { m.sig.SetLabel(label) }

// Lock blocks p until it acquires the mutex.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.sig.Wait(p)
	}
	m.held = true
}

// Unlock releases the mutex and wakes the longest-waiting locker. It
// panics if the mutex is not held.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.held = false
	m.sig.Pulse()
}

// Queue is an unbounded deterministic FIFO mailbox. Put never blocks; Get
// blocks the calling process until an item is available. Concurrent
// getters are served in arrival order.
type Queue[T any] struct {
	items []T
	head  int
	sig   Signal
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{sig: Signal{e: e}} }

// SetLabel names the queue for deadlock reports.
func (q *Queue[T]) SetLabel(label string) { q.sig.SetLabel(label) }

// Put appends v and wakes one waiting getter. It may be called from
// process context or an engine callback.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.sig.Pulse()
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.head == len(q.items) {
		q.sig.Wait(p)
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release the reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// TryGet removes and returns the oldest item without blocking. ok is false
// if the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.head == len(q.items) {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
