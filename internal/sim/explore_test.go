package sim

import (
	"fmt"
	"strings"
	"testing"
)

// chooserFunc adapts a function to the Explorer interface.
type chooserFunc func(ties []EventInfo) int

func (f chooserFunc) ChooseTie(ties []EventInfo) int { return f(ties) }

// traceRun drives a small three-process program whose tied wakeups give
// the explorer decision points, and returns the observed event order.
func traceRun(x Explorer) []string {
	e := NewEngine(1)
	e.SetExplorer(x)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Sleep(10) // all three tie at t=10
			order = append(order, name)
			p.Sleep(5) // and again at t=15
			order = append(order, name+"2")
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return order
}

func TestExplorerChooseZeroMatchesDefault(t *testing.T) {
	def := traceRun(nil)
	zero := traceRun(chooserFunc(func(ties []EventInfo) int { return 0 }))
	if fmt.Sprint(def) != fmt.Sprint(zero) {
		t.Fatalf("always-0 explorer diverged from default: %v vs %v", zero, def)
	}
}

func TestExplorerPerturbsTieOrder(t *testing.T) {
	last := traceRun(chooserFunc(func(ties []EventInfo) int { return len(ties) - 1 }))
	def := traceRun(nil)
	if fmt.Sprint(last) == fmt.Sprint(def) {
		t.Fatalf("always-last explorer produced the default order %v", def)
	}
	// Same multiset of events either way.
	if len(last) != len(def) {
		t.Fatalf("event counts differ: %v vs %v", last, def)
	}
}

// TestExplorerDecisionReplay records every (arity, choice) pair from a
// randomized-looking run and replays it: the event order must be
// bit-identical, the defining property of the decision trace.
func TestExplorerDecisionReplay(t *testing.T) {
	type dec struct{ n, k int }
	var recorded []dec
	rec := chooserFunc(func(ties []EventInfo) int {
		k := (len(recorded)*7 + 3) % len(ties)
		recorded = append(recorded, dec{len(ties), k})
		return k
	})
	first := traceRun(rec)

	pos := 0
	rep := chooserFunc(func(ties []EventInfo) int {
		if pos >= len(recorded) {
			t.Fatalf("replay asked for decision %d, only %d recorded", pos, len(recorded))
		}
		d := recorded[pos]
		pos++
		if d.n != len(ties) {
			t.Fatalf("replay decision %d: arity %d, recorded %d", pos-1, len(ties), d.n)
		}
		return d.k
	})
	second := traceRun(rep)
	if pos != len(recorded) {
		t.Fatalf("replay consumed %d of %d decisions", pos, len(recorded))
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("replay diverged: %v vs %v", second, first)
	}
}

// TestExplorerSeesYields checks that resumes scheduled by Yield carry
// the FromYield mark while ordinary sleeps and callbacks do not.
func TestExplorerSeesYields(t *testing.T) {
	sawYield, sawPlain := false, false
	x := chooserFunc(func(ties []EventInfo) int {
		for _, ti := range ties {
			if ti.FromYield {
				sawYield = true
			} else {
				sawPlain = true
			}
		}
		return 0
	})
	e := NewEngine(1)
	e.SetExplorer(x)
	e.Spawn("yielder", func(p *Proc) {
		p.Sleep(10)
		p.Yield()
	})
	e.Spawn("worker", func(p *Proc) {
		p.Sleep(10)
		p.Sleep(0)
	})
	e.At(10, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawYield {
		t.Error("no tie event carried FromYield")
	}
	if !sawPlain {
		t.Error("every tie event carried FromYield; callbacks/sleeps should not")
	}
}

// TestExplorerCapturesPanic: under exploration a process panic becomes
// an ErrPanic from Run instead of crashing the test binary.
func TestExplorerCapturesPanic(t *testing.T) {
	e := NewEngine(1)
	e.SetExplorer(chooserFunc(func(ties []EventInfo) int { return 0 }))
	e.Spawn("bystander", func(p *Proc) { p.Sleep(100) })
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(10)
		panic("invariant violated")
	})
	err := e.Run()
	pe, ok := err.(*ErrPanic)
	if !ok {
		t.Fatalf("err = %v, want *ErrPanic", err)
	}
	if pe.Proc != "bomb" || !strings.Contains(pe.Msg, "invariant violated") {
		t.Fatalf("ErrPanic = %+v", pe)
	}
	if pe.At != 10 {
		t.Fatalf("panic at %v, want t=10ns", pe.At)
	}
}

// TestExplorerCapturesCallbackPanic covers the engine-callback arm.
func TestExplorerCapturesCallbackPanic(t *testing.T) {
	e := NewEngine(1)
	e.SetExplorer(chooserFunc(func(ties []EventInfo) int { return 0 }))
	e.Spawn("w", func(p *Proc) { p.Sleep(100) })
	e.At(5, func() { panic("callback bomb") })
	err := e.Run()
	pe, ok := err.(*ErrPanic)
	if !ok {
		t.Fatalf("err = %v, want *ErrPanic", err)
	}
	if pe.Proc != "" || !strings.Contains(pe.Msg, "callback bomb") {
		t.Fatalf("ErrPanic = %+v", pe)
	}
}

// TestDeadlockReportsWaitReason: a labeled primitive shows up in the
// deadlock error, so shrunk exploration repros say what each stuck
// process was waiting for.
func TestDeadlockReportsWaitReason(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	s.SetLabel("reply for txn 7")
	m := NewMutex(e)
	m.SetLabel("lock-3")
	e.Spawn("askew", func(p *Proc) { s.Wait(p) })
	e.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		s.Wait(p) // never signaled; holds lock-3 forever
	})
	e.Spawn("queued", func(p *Proc) {
		p.Sleep(1)
		m.Lock(p)
	})
	err := e.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if len(de.Waits) != 3 {
		t.Fatalf("Waits = %v, want 3 entries", de.Waits)
	}
	want := map[string]string{
		"askew":  "reply for txn 7",
		"holder": "reply for txn 7",
		"queued": "lock-3",
	}
	for _, w := range de.Waits {
		if want[w.Name] != w.Waiting {
			t.Errorf("%s waiting on %q, want %q", w.Name, w.Waiting, want[w.Name])
		}
	}
	msg := de.Error()
	if !strings.Contains(msg, "askew (waiting on reply for txn 7)") ||
		!strings.Contains(msg, "queued (waiting on lock-3)") {
		t.Errorf("deadlock message lacks wait reasons: %s", msg)
	}
	// Blocked stays the plain sorted name list for older consumers.
	if fmt.Sprint(de.Blocked) != "[askew holder queued]" {
		t.Errorf("Blocked = %v", de.Blocked)
	}
}

// TestUnlabeledDeadlockStillNamesProcs guards the zero-label rendering.
func TestUnlabeledDeadlockStillNamesProcs(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := e.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if !strings.Contains(de.Error(), "[stuck]") {
		t.Errorf("message = %s", de.Error())
	}
}

// TestExplorerTiePushback: events not chosen stay in the calendar and
// are offered again, joined by newly scheduled same-instant events.
func TestExplorerTiePushback(t *testing.T) {
	var arities []int
	e := NewEngine(1)
	e.SetExplorer(chooserFunc(func(ties []EventInfo) int {
		arities = append(arities, len(ties))
		return len(ties) - 1
	}))
	for i := 0; i < 4; i++ {
		e.At(10, func() {})
	}
	e.Spawn("w", func(p *Proc) { p.Sleep(20) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 callbacks tie with each other (the spawn resume fires at t=0):
	// arity shrinks 4, 3, 2 and then the final pop is forced.
	if fmt.Sprint(arities) != "[4 3 2]" {
		t.Fatalf("arities = %v, want [4 3 2]", arities)
	}
}
