package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", woke)
	}
}

func TestEventOrderIsTimestampThenSeq(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "b")
	})
	e.Spawn("c", func(p *Proc) {
		p.Sleep(5)
		order = append(order, "c")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"c", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine(1)
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(3)
		e.Spawn("child", func(q *Proc) {
			q.Sleep(4)
			childRan = true
			if q.Now() != 7 {
				t.Errorf("child woke at %v, want 7ns", q.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestSignalBroadcastFIFO(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Duration(i)) // register in a known order
			s.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(100)
		s.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want ascending", order)
		}
	}
}

func TestEventLatch(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		ev.Wait(p)
		at = p.Now()
		ev.Wait(p) // already set: returns immediately
		if p.Now() != at {
			t.Error("second Wait on set event blocked")
		}
	})
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(42)
		ev.Set()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("waiter released at %v, want 42ns", at)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			q.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want [0 1 2]", got)
		}
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEngine(1)
	m := NewMutex(e)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("locker%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(7)
			inside--
			m.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if e.Now() != Time(5*7) {
		t.Fatalf("finished at %v, want 35ns (serialized)", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := e.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestDaemonDoesNotBlockRun(t *testing.T) {
	e := NewEngine(1)
	e.SpawnDaemon("forever", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
		}
	})
	e.Spawn("worker", func(p *Proc) { p.Sleep(10 * Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(10*Microsecond) {
		t.Fatalf("ended at %v, want 10us", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("runner", func(p *Proc) {
		for i := 0; ; i++ {
			p.Sleep(Microsecond)
			if p.Now() >= Time(5*Microsecond) {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("stopped at %v, want 5us", e.Now())
	}
}

func TestEngineCallbacks(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(30, func() { fired = append(fired, e.Now()) })
	e.At(10, func() { fired = append(fired, e.Now()) })
	e.Spawn("w", func(p *Proc) { p.Sleep(100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Fatalf("fired = %v, want [10 30]", fired)
	}
}

// Determinism: the same seed and program must produce the identical
// interleaving, observed here as the exact sequence of (time, proc) pairs.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []string {
		e := NewEngine(seed)
		var trace []string
		q := NewQueue[int](e)
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 4; j++ {
					d := Duration(e.Rand().Intn(50))
					p.Sleep(d)
					q.Put(i)
					trace = append(trace, fmt.Sprintf("%d@%d", i, p.Now()))
				}
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for j := 0; j < 12; j++ {
				v := q.Get(p)
				trace = append(trace, fmt.Sprintf("got%d@%d", v, p.Now()))
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, every process observes its own
// cumulative sleep as its finish time, and the engine finishes at the max.
func TestSleepAccumulationProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 64 {
			durs = durs[:64]
		}
		e := NewEngine(3)
		finish := make([]Time, len(durs))
		var max Time
		for i, d := range durs {
			i, d := i, Duration(d)
			if Time(d) > max {
				max = Time(d)
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				finish[i] = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, d := range durs {
			if finish[i] != Time(d) {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
