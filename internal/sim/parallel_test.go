package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestShardedSpawnsRunAtTimeZero — regression guard: initial Spawns sit
// on the same-instant rings, not the calendars, so the first window's
// floor computation must consult the rings or it declares a spurious
// deadlock at t=0.
func TestShardedSpawnsRunAtTimeZero(t *testing.T) {
	e := NewShardedEngine(1, 3)
	e.SetLookahead(100)
	var ran [3]bool
	for i := range ran {
		i := i
		e.Shard(i).Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { ran[i] = true })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("shard %d's process never ran", i)
		}
	}
}

// TestShardedDeadlockReportsAllShards: a deadlock is a global condition;
// the report must name every blocked process with its wait label no
// matter which shard owns it, and date the deadlock at the latest shard
// clock.
func TestShardedDeadlockReportsAllShards(t *testing.T) {
	e := NewShardedEngine(1, 3)
	e.SetLookahead(100)
	s1 := NewSignal(e)
	s1.SetLabel("page 12 reply")
	s2 := NewSignal(e)
	s2.SetLabel("barrier episode 3")
	e.Shard(1).Spawn("host1-worker", func(p *Proc) {
		p.Sleep(50)
		s1.Wait(p)
	})
	e.Shard(2).Spawn("host2-worker", func(p *Proc) { s2.Wait(p) })
	err := e.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if de.At != Time(50) {
		t.Errorf("At = %v, want 50", de.At)
	}
	want := map[string]string{
		"host1-worker": "page 12 reply",
		"host2-worker": "barrier episode 3",
	}
	if len(de.Waits) != len(want) {
		t.Fatalf("Waits = %v, want %d entries", de.Waits, len(want))
	}
	for _, w := range de.Waits {
		if want[w.Name] != w.Waiting {
			t.Errorf("%s waiting on %q, want %q", w.Name, w.Waiting, want[w.Name])
		}
	}
	msg := de.Error()
	if !strings.Contains(msg, "host1-worker (waiting on page 12 reply)") ||
		!strings.Contains(msg, "host2-worker (waiting on barrier episode 3)") {
		t.Errorf("deadlock message lacks cross-shard wait reasons: %s", msg)
	}
}

// TestShardedStopHaltsCleanly: Stop called from a process on a non-zero
// shard halts the whole run — including another shard's endless ticker —
// and Run reports the stopper's finish time.
func TestShardedStopHaltsCleanly(t *testing.T) {
	e := NewShardedEngine(1, 4)
	e.SetLookahead(10)
	e.Shard(1).SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(5)
		}
	})
	e.Shard(3).Spawn("stopper", func(p *Proc) {
		p.Sleep(42)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(42) {
		t.Errorf("Now = %v, want 42", e.Now())
	}
}

// TestCrossShardPostMergeOrder: same-instant cross-shard arrivals merge
// in canonical (arrival, send time, source shard, source seq) order, at
// every worker count.
func TestCrossShardPostMergeOrder(t *testing.T) {
	var windows uint64
	for _, workers := range []int{1, 2, 8} {
		e := NewShardedEngine(1, 3)
		e.SetLookahead(100)
		e.SetParWorkers(workers)
		var got []int
		// Keep the foreground alive past the arrivals: like the classic
		// engine, the run ends when the last non-daemon process exits.
		e.Shard(0).Spawn("keeper", func(p *Proc) { p.Sleep(300) })
		for s := 1; s <= 2; s++ {
			s := s
			sh := e.Shard(s)
			sh.Spawn("sender", func(p *Proc) {
				for i := 0; i < 3; i++ {
					tag := s*10 + i
					sh.Post(e.Shard(0), p.Now().Add(100), func(a any) { got = append(got, a.(int)) }, tag)
					p.Sleep(7)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Arrivals collide pairwise at t=100, 107, 114; each tie breaks
		// to the lower source shard.
		want := fmt.Sprint([]int{10, 20, 11, 21, 12, 22})
		if fmt.Sprint(got) != want {
			t.Errorf("workers=%d: merge order %v, want %v", workers, got, want)
		}
		if e.MaxShardsActive() < 2 {
			t.Errorf("workers=%d: MaxShardsActive = %d, want >= 2", workers, e.MaxShardsActive())
		}
		if workers == 1 {
			windows = e.Windows()
		} else if e.Windows() != windows {
			t.Errorf("workers=%d: %d windows, want %d (worker count must not change windowing)", workers, e.Windows(), windows)
		}
	}
}

// TestLookaheadViolationPanics: a cross-shard post below the declared
// latency floor is a transport correctness bug and must fail loudly at
// the merge barrier.
func TestLookaheadViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run returned without panicking")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Errorf("panic = %v, want a lookahead violation", r)
		}
	}()
	e := NewShardedEngine(1, 3)
	e.SetLookahead(100)
	e.Shard(1).Spawn("cheater", func(p *Proc) {
		e.Shard(1).Post(e.Shard(2), p.Now().Add(50), func(any) {}, nil)
	})
	_ = e.Run()
}

// TestShardedRunNeedsLookahead: a sharded engine without a declared
// latency floor has an empty conservative window; Run must refuse.
func TestShardedRunNeedsLookahead(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run returned without panicking")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Errorf("panic = %v, want a lookahead complaint", r)
		}
	}()
	e := NewShardedEngine(1, 2)
	e.Shard(1).Spawn("p", func(p *Proc) {})
	_ = e.Run()
}
