package sim

import "fmt"

// Schedule exploration. A deterministic engine always fires events with
// equal timestamps in scheduling order (seq), which makes every run a
// single schedule per seed. An installed Explorer turns that one
// schedule into a family: whenever two or more events are tied at the
// calendar minimum, the explorer chooses which fires next. Everything
// else — timestamps, the engine's random stream, process semantics — is
// untouched, so a run remains a pure function of (program, seed,
// choice sequence), which is what makes explored schedules replayable
// and shrinkable.
//
// With no explorer installed the engine takes none of these paths: the
// default pop, the Sleep fast path and the process spawn sequence are
// bit-identical to the non-exploring engine.

// EventInfo describes one tied calendar event to an Explorer, in
// deterministic scheduling (seq) order.
type EventInfo struct {
	// Proc is the name of the process the event resumes, or "" for an
	// engine callback (message arrival, timer, ...).
	Proc string

	// FromYield marks a resume scheduled by Yield / Sleep(0): the process
	// volunteered the processor at this instant. Preemption-biased
	// strategies use it to keep a yielding process parked while other
	// same-instant work runs.
	FromYield bool
}

// Explorer perturbs the engine's schedule. ChooseTie is called whenever
// n >= 2 events are tied at the current minimum timestamp; it returns
// the index (0..n-1) of the event to fire next, with index 0 being the
// event the non-exploring engine would have fired. The remaining events
// stay tied (joined by any new same-timestamp arrivals) and the engine
// asks again on the next pop.
//
// An explorer must be deterministic given its own construction-time
// inputs: the engine consults nothing else, so replaying a recorded
// choice sequence reproduces the run bit-identically.
type Explorer interface {
	ChooseTie(ties []EventInfo) int
}

// SetExplorer installs (or, with nil, removes) the engine's schedule
// explorer. It must be called before Run. Exploration requires the
// single-shard engine: a strategy perturbs one global event order, and
// the sharded executor has no such order until its windows merge.
func (e *Engine) SetExplorer(x Explorer) {
	if e.running {
		panic("sim: SetExplorer after Run")
	}
	if x != nil && !e.single {
		panic("sim: SetExplorer on a sharded engine (exploration needs the single global event order)")
	}
	e.x = x
	if x != nil && e.yieldSeq == nil {
		e.yieldSeq = make(map[uint64]struct{})
	}
	// Exploration pops through popTie, which consults only the heap, so
	// flush anything the same-instant ring gathered before the explorer
	// was installed (events scheduled during setup keep their seq, hence
	// their deterministic order).
	s := e.shards[0]
	for s.ringHead < len(s.ring) {
		s.calQ.push(s.popRing())
	}
}

// popTie is the exploring replacement for calQ.pop: gather every event
// tied at the minimum timestamp, let the explorer pick one, and return
// the rest to the calendar with their original sequence numbers (so
// their relative default order is preserved for the next decision).
func (e *Engine) popTie() event {
	s := e.shards[0]
	first := s.calQ.pop()
	if s.calQ.Len() == 0 || s.calQ.min().at != first.at {
		delete(e.yieldSeq, first.seq)
		return first // forced move: no decision point
	}
	ties := e.tieEvents[:0]
	ties = append(ties, first)
	for s.calQ.Len() > 0 && s.calQ.min().at == first.at {
		ties = append(ties, s.calQ.pop())
	}
	infos := e.tieInfos[:0]
	for _, ev := range ties {
		info := EventInfo{}
		if ev.proc != nil {
			info.Proc = ev.proc.name
			_, info.FromYield = e.yieldSeq[ev.seq]
		}
		infos = append(infos, info)
	}
	k := e.x.ChooseTie(infos)
	if k < 0 || k >= len(ties) {
		panic("sim: Explorer.ChooseTie returned an out-of-range index")
	}
	chosen := ties[k]
	for i, ev := range ties {
		if i != k {
			s.calQ.push(ev)
		}
	}
	e.tieEvents, e.tieInfos = ties[:0], infos[:0]
	delete(e.yieldSeq, chosen.seq)
	return chosen
}

// ErrPanic is returned by Run when, under an installed Explorer, a
// simulated process or engine callback panicked. Outside exploration a
// panic propagates as usual; during exploration a panic is a finding —
// an assertion the explored schedule violated — so the engine converts
// it into a run failure that the model checker can record, shrink and
// replay.
type ErrPanic struct {
	At   Time
	Proc string // panicking process name; "" for an engine callback
	Msg  string // the panic value, rendered
}

func (e *ErrPanic) Error() string {
	who := e.Proc
	if who == "" {
		who = "engine callback"
	}
	return "sim: panic at " + e.At.String() + " in " + who + ": " + e.Msg
}

// explorePanic records the first panic observed under exploration and
// stops the run. Later panics (possible while the corrupted simulation
// unwinds) keep the first message, which is the root cause.
func (e *Engine) explorePanic(proc string, r any) {
	if e.panicErr == nil {
		e.panicErr = &ErrPanic{At: e.shards[0].now, Proc: proc, Msg: renderPanic(r)}
	}
	e.stopped.Store(true)
}

func renderPanic(r any) string { return fmt.Sprint(r) }

// runEventExplored fires one callback event with panic capture.
func (e *Engine) runEventExplored(ev event) {
	defer func() {
		if r := recover(); r != nil {
			e.explorePanic("", r)
		}
	}()
	ev.fn(ev.arg)
}
