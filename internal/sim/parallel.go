package sim

import "fmt"

// Conservative windowed execution of a sharded engine.
//
// The correctness argument is the classic conservative-PDES one,
// specialized to this engine's contract:
//
//  1. Let m be the earliest pending event time across all shards at a
//     barrier, and L the declared lookahead. The window horizon is
//     H = m + L.
//  2. Every event a shard executes inside the window fires at some time
//     t with m <= t < H (nextProc never pops at or past the horizon,
//     and the Sleep fast path never crosses it).
//  3. A cross-shard effect can only be produced by Shard.Post, whose
//     contract (enforced below) is at >= t + L >= m + L = H. So nothing
//     produced during the window can land inside it: each shard's
//     sub-horizon future is fully determined by its own calendar, and
//     the shards may execute concurrently without coordination.
//  4. At the barrier the buffered cross-shard events are merged in
//     (at, source shard, source seq) order, which is a pure function of
//     the shards' individual executions — themselves pure functions of
//     (program, seed, shard count) by induction. Worker count and
//     goroutine interleaving therefore never influence the outcome.
//
// Same-instant cross-shard ties (two shards posting to one destination
// at the same virtual time) are broken by source shard id, then source
// sequence — the deterministic (at, seq, shard) rule the merge sort
// below implements via the destination's seq assignment order.

// runSharded is Run's body for a multi-shard engine.
func (e *Engine) runSharded() error {
	if e.lookahead <= 0 {
		panic("sim: sharded Run without a positive lookahead (transport must call SetLookahead)")
	}
	defer e.stopPool()
	active := make([]*Shard, 0, len(e.shards))
	nexts := make([]Time, len(e.shards))
	for {
		// Barrier state, in one pass: each shard's earliest pending event,
		// the two smallest such times across shards, and the live
		// foreground count. Rings matter here: before the first window —
		// and after any top-level Spawn/At at the current instant — a
		// shard's next work sits on its ring, not its calendar, so nextAt
		// consults both.
		min1 := maxTime
		totalFG := 0
		for i, s := range e.shards {
			at := s.nextAt()
			nexts[i] = at
			if at < min1 {
				min1 = at
			}
			totalFG += s.liveFG
		}
		if e.stopped.Load() || totalFG == 0 {
			e.setFinalNow()
			return nil
		}
		if min1 == maxTime {
			// No events anywhere, processes still live: a global deadlock.
			e.setFinalNow()
			e.finalNow = e.maxShardNow()
			return e.deadlockError()
		}
		e.finalNow = min1
		// One global horizon H = m + L for every shard. A per-shard
		// refinement (shard i running to L past the earliest event of any
		// OTHER shard) is causally safe but lets windows overlap in
		// virtual time, so a shard with a tighter horizon can issue an
		// earlier-sent same-instant message in a LATER window — its
		// arrival would then merge behind a later send, inverting the
		// canonical (at, sent, src, seq) order the sequential engine
		// produces. A single horizon keeps successive windows disjoint and
		// ordered in virtual time, which makes cross-barrier collisions
		// merge in send order for free. Shards with nothing below H sit
		// the window out.
		h := min1.Add(e.lookahead)
		active = active[:0]
		for i, s := range e.shards {
			if nexts[i] < h {
				s.horizon = h
				active = append(active, s)
			}
		}
		e.windows++
		if len(active) > e.maxActive {
			e.maxActive = len(active)
		}
		e.runShards(active)
		e.mergeOutboxes(active)
	}
}

// nextAt returns the virtual time of the shard's earliest pending work:
// its current instant when the same-instant ring holds entries, else the
// calendar minimum, else "never".
func (s *Shard) nextAt() Time {
	if !s.ringEmpty() {
		return s.now
	}
	if s.calQ.Len() > 0 {
		return s.calQ.min().at
	}
	return maxTime
}

// runShards executes the active shards' windows, across up to
// e.workers goroutines. Shards are independent inside a window (see the
// package comment above), so the split of shards over goroutines is
// invisible to the simulation. Workers come from the persistent pool;
// the barrier goroutine itself steals too, so w goroutines total work
// the window with only w-1 channel handoffs.
func (e *Engine) runShards(active []*Shard) {
	w := e.workers
	if w > len(active) {
		w = len(active)
	}
	if w <= 1 {
		for _, s := range active {
			s.runWindow()
		}
		return
	}
	e.growPool(w - 1)
	e.parActive = active
	e.parNext.Store(0)
	e.parWG.Add(w - 1)
	for i := 0; i < w-1; i++ {
		e.parWork <- struct{}{}
	}
	e.stealShards(active)
	e.parWG.Wait()
}

// growPool brings the persistent worker pool up to n goroutines. Each
// worker parks on parWork; one token means "steal from the current
// window until it drains". The channel send happens after the barrier
// writes parActive and before the worker reads it, and parWG.Wait
// happens after the worker's last steal — those two edges are the only
// synchronization a window needs.
func (e *Engine) growPool(n int) {
	if e.parWork == nil {
		e.parWork = make(chan struct{})
	}
	for ; e.poolSize < n; e.poolSize++ {
		go func() {
			for range e.parWork {
				e.stealShards(e.parActive)
				e.parWG.Done()
			}
		}()
	}
}

// stealShards runs window work off the shared cursor until none is left.
func (e *Engine) stealShards(active []*Shard) {
	for {
		i := int(e.parNext.Add(1)) - 1
		if i >= len(active) {
			return
		}
		active[i].runWindow()
	}
}

// stopPool dismisses the persistent workers (no-op if none started).
func (e *Engine) stopPool() {
	if e.parWork != nil {
		close(e.parWork)
		e.parWork = nil
		e.poolSize = 0
	}
}

// mergeOutboxes moves every cross-shard event buffered during the
// window into its destination calendar, in deterministic
// (at, send time, source shard, source seq) order, and verifies the
// lookahead contract per event: an arrival below its own send time plus
// the declared floor means the transport lied about its latency.
// Only active shards executed, so only they can hold outbox entries.
func (e *Engine) mergeOutboxes(active []*Shard) {
	xs := e.merge[:0]
	for _, s := range active {
		xs = append(xs, s.outbox...)
		clearXevs(s.outbox)
		s.outbox = s.outbox[:0]
	}
	sortXevs(xs)
	for i := range xs {
		x := &xs[i]
		if x.at < x.sent.Add(e.lookahead) {
			panic(fmt.Sprintf(
				"sim: lookahead violation: shard %d posted a cross-shard event at %v, only %v after its send at %v (declared lookahead %v is larger than the transport's real latency floor)",
				x.src, x.at, x.at.Sub(x.sent), x.sent, e.lookahead))
		}
		x.dst.scheduleFn(x.at, x.fn, x.arg)
	}
	clearXevs(xs)
	e.merge = xs[:0]
}

// xevBefore is the canonical cross-shard merge order. Arrival time
// first; at the same arrival instant, send time — the sequential engine
// inserts deliveries at Post time, so later sends colliding with
// earlier ones sort after them there too. Only sends at the same
// instant on different shards have no sequential-mode order to
// reproduce; those fall to the (shard, seq) rule.
func xevBefore(a, b *xev) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// sortXevs is an insertion sort: a window's merged outbox is small (the
// cross-shard messages of one lookahead-wide slice, usually a handful),
// and unlike sort.Slice this allocates nothing — the merge barrier runs
// tens of thousands of times per simulation, so a per-call closure and
// reflect swapper would dominate the engine's allocation profile.
func sortXevs(xs []xev) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xevBefore(&xs[j], &xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// clearXevs zeroes the slice so recycled outbox capacity does not pin
// delivered event payloads.
func clearXevs(xs []xev) {
	for i := range xs {
		xs[i] = xev{}
	}
}

// setFinalNow records the run's final virtual time: the latest instant
// at which any shard's foreground drained (shards that never had
// foreground work contribute nothing).
func (e *Engine) setFinalNow() {
	for _, s := range e.shards {
		if s.fgEnd > e.finalNow {
			e.finalNow = s.fgEnd
		}
	}
}

// maxShardNow returns the latest shard clock, the natural "current
// time" of a stuck sharded run.
func (e *Engine) maxShardNow() Time {
	t := Time(0)
	for _, s := range e.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}
