package sim

// The calendar is a concrete 4-ary min-heap of event values ordered by
// (at, seq). It replaces the earlier container/heap-based implementation,
// which boxed every event into an interface on Push and Pop — the single
// largest allocation site in end-to-end runs. A 4-ary heap halves the
// tree depth of the binary heap, trading slightly wider sift-down scans
// (three extra comparisons per level) for fewer cache-missing levels;
// with value-typed 48-byte events the wider nodes still sit on one or
// two cache lines.
//
// Event records are typed rather than closures: the common operations —
// resuming a parked process, delivering a message — are encoded as a
// *Proc pointer or a (func(any), arg) pair, so the hot paths schedule
// without allocating. Plain func() callbacks ride in arg behind a
// package-level trampoline.

// event is a single entry in the engine's calendar. Events with equal
// timestamps fire in scheduling order (seq), which is what makes the
// engine deterministic. Exactly one of proc / fn is set: a resume event
// hands control to proc, a callback event invokes fn(arg) in engine
// context.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func(any)
	arg  any
}

// callFunc0 is the trampoline that lets argument-less callbacks share
// the typed event record: the func() itself travels in arg.
func callFunc0(a any) { a.(func())() }

func (ev event) before(other event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// calendar is the 4-ary heap. The zero value is an empty calendar.
type calendar struct {
	ev []event
}

func (c *calendar) Len() int { return len(c.ev) }

// min returns the earliest event without removing it. The calendar must
// be non-empty.
func (c *calendar) min() *event { return &c.ev[0] }

func (c *calendar) push(ev event) {
	// Sift up with a hole: shift ancestors down and store ev once,
	// instead of swapping the 48-byte record at every level. The
	// comparison sequence (and so the resulting heap layout) is the same
	// as the swapping version.
	c.ev = append(c.ev, ev)
	i := len(c.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(c.ev[parent]) {
			break
		}
		c.ev[i] = c.ev[parent]
		i = parent
	}
	c.ev[i] = ev
}

func (c *calendar) pop() event {
	top := c.ev[0]
	n := len(c.ev) - 1
	moved := c.ev[n]
	c.ev[n] = event{} // release the arg/proc references
	c.ev = c.ev[:n]
	if n == 0 {
		return top
	}
	// Sift the former last element down with a hole: winners move up
	// into the hole and moved is stored once at the end. Comparisons
	// match the swapping version exactly, so the heap layout — and with
	// it the deterministic pop order — is unchanged.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if c.ev[j].before(c.ev[best]) {
				best = j
			}
		}
		if !c.ev[best].before(moved) {
			break
		}
		c.ev[i] = c.ev[best]
		i = best
	}
	c.ev[i] = moved
	return top
}
