// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock measured in nanoseconds. Simulated
// processes are ordinary goroutines, but the engine guarantees that at most
// one process executes at any instant: a process runs until it blocks on a
// simulation primitive (Sleep, Wait, queue receive, ...), at which point
// control returns to the engine, which dispatches the next event in
// timestamp order. Events with equal timestamps are delivered in the order
// they were scheduled, so a run is a pure function of the program and the
// engine's seed.
//
// This engine is the substrate for the Millipage reproduction: simulated
// hosts, DSM protocol threads, and application threads are all sim
// processes, and every cost charged by the system (fault handling,
// message latency, protection changes) is virtual time on this clock.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is kept distinct so wall-clock values cannot be mixed
// into the simulation by accident.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports d as a floating-point count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports d as a floating-point count of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a floating-point count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("t=%.3fus", float64(t)/1e3) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}
