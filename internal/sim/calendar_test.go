package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refQueue is the retired container/heap calendar, kept here as the
// ordering oracle: (at, seq) lexicographic, exactly what the engine ran
// on before the typed 4-ary heap replaced it.
type refEvent struct {
	at  Time
	seq uint64
}

type refQueue []refEvent

func (q refQueue) Len() int      { return len(q) }
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q *refQueue) Push(x any)  { *q = append(*q, x.(refEvent)) }
func (q *refQueue) Pop() any    { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// TestCalendarMatchesHeapReference drives the typed calendar and the
// container/heap oracle through identical interleaved push/pop schedules
// — bursts of events with heavy timestamp collisions — and requires the
// same pop order, including the seq tiebreak for equal times.
func TestCalendarMatchesHeapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var cal calendar
		ref := &refQueue{}
		var seq uint64
		pending := 0
		for op := 0; op < 2000; op++ {
			if pending == 0 || rng.Intn(3) != 0 {
				// Coarse timestamps force collisions so the tiebreak matters.
				at := Time(rng.Int63n(50))
				seq++
				cal.push(event{at: at, seq: seq})
				heap.Push(ref, refEvent{at: at, seq: seq})
				pending++
			} else {
				got := cal.pop()
				want := heap.Pop(ref).(refEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d op %d: pop = (at=%d seq=%d), reference (at=%d seq=%d)",
						trial, op, got.at, got.seq, want.at, want.seq)
				}
				pending--
			}
		}
		for pending > 0 {
			got := cal.pop()
			want := heap.Pop(ref).(refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d drain: pop = (at=%d seq=%d), reference (at=%d seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
			pending--
		}
		if cal.Len() != 0 {
			t.Fatalf("trial %d: calendar not empty after drain", trial)
		}
	}
}

// TestCalendarPopClearsSlot guards the pop-side hygiene: the vacated tail
// slot must be zeroed so the calendar never pins a dead Proc or callback
// argument for the garbage collector.
func TestCalendarPopClearsSlot(t *testing.T) {
	var cal calendar
	p := &Proc{}
	cal.push(event{at: 1, seq: 1, proc: p})
	cal.push(event{at: 2, seq: 2, proc: p})
	cal.pop()
	cal.pop()
	tail := cal.ev[:cap(cal.ev)]
	for i := range tail {
		if tail[i].proc != nil || tail[i].fn != nil || tail[i].arg != nil {
			t.Fatalf("slot %d retains references after pop: %+v", i, tail[i])
		}
	}
}
