package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

type procState int8

const (
	stateNew procState = iota
	stateRunning
	stateBlocked   // parked, waiting on a Signal; no event scheduled
	stateScheduled // parked, a resume event is in the calendar
	stateDone
)

// maxTime is the open horizon: no event is ever scheduled at or past it,
// so a shard whose horizon is maxTime (the single-shard engine) executes
// its calendar unconditionally.
const maxTime = Time(math.MaxInt64)

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create one with NewEngine (single calendar) or NewShardedEngine
// (one calendar shard per simulated host, executable in parallel).
//
// In the single-shard engine all methods must be called either from the
// goroutine that calls Run (for setup and engine callbacks) or from a
// simulated process's own goroutine while that process is the running
// process; the engine enforces the one-runnable-process-at-a-time
// discipline itself. In a sharded engine the same discipline holds per
// shard: each shard runs at most one of its processes at a time, and all
// simulation state a shard's processes and callbacks touch must belong to
// that shard (cross-shard effects travel through Shard.Post, which
// enforces the lookahead contract). Engine-level convenience methods
// (Spawn, At, Now, ...) address shard 0.
type Engine struct {
	shards []*Shard
	single bool // exactly one shard: the classic sequential engine

	// lookahead is the minimum cross-shard scheduling distance: every
	// Shard.Post to another shard must land at least this far after the
	// posting shard's current time. It is what makes a conservative
	// window safe (see Run). Declared by the transport via SetLookahead.
	lookahead Duration

	workers   int  // goroutines executing shard windows; 1 = serial
	maxActive int  // high-water mark of shards active in one window
	windows   uint64

	// finalNow is the sharded engine's answer to Now(): the current
	// window floor while running, and the virtual time the last
	// non-daemon process finished once Run returns. (Each shard keeps
	// its own clock; a single global "now" does not exist mid-window.)
	finalNow Time

	// merge is the scratch buffer window barriers collect outboxes into.
	merge []xev

	// Persistent window-worker pool (parallel.go). Workers park on
	// parWork between windows; parActive/parNext describe the current
	// window's shard list and steal cursor. Lazily started the first
	// time a window wants more than one goroutine, torn down when
	// runSharded returns — spawning fresh goroutines per window would
	// cost an allocation and a scheduler hop each, tens of thousands of
	// times per run.
	parWork   chan struct{}
	parActive []*Shard
	parNext   atomic.Int64
	parWG     sync.WaitGroup
	poolSize  int

	stopped atomic.Bool // Stop was called; may be set from any shard
	reaping bool        // Run is over; woken processes must exit, not run
	running bool

	// Exploration state (explore.go); all nil/empty unless SetExplorer
	// installed a schedule explorer, so the default path is untouched.
	// Exploration requires the single-shard engine: a strategy must see
	// one global event order.
	x         Explorer
	yieldSeq  map[uint64]struct{} // seqs of resumes scheduled by Yield/Sleep(0)
	tieEvents []event             // scratch for popTie
	tieInfos  []EventInfo         // scratch for popTie
	panicErr  *ErrPanic           // first panic captured under exploration
}

// Shard owns one slice of the simulation: a calendar, a same-instant
// ring, a clock, a random stream, and the processes bound to it. The
// single-shard engine is exactly one Shard driven with an open horizon;
// the sharded engine executes many Shards inside conservative windows
// (see Engine.Run). A Shard's methods follow the same calling discipline
// as the classic engine, per shard: at most one of its processes runs at
// a time, and only that process (or the shard's own engine callbacks)
// may touch the shard.
type Shard struct {
	e  *Engine
	id int

	now  Time
	seq  uint64
	calQ calendar

	// ring is the same-instant FIFO: events scheduled for the current
	// virtual time (wakes, yields, zero-latency callbacks — the majority
	// of all events) are appended here instead of sifting through the
	// heap, and popped in O(1). Appends carry strictly increasing seq, so
	// the ring is seq-sorted by construction; popNext merges it with the
	// heap on (at, seq), preserving the shard's deterministic order
	// exactly. Invariant: every ring entry has at == now (now only
	// advances by popping a later heap event, possible only when the
	// ring is drained). Unused under exploration (see SetExplorer).
	ring     []event
	ringHead int

	rng     *rand.Rand
	parked  chan struct{} // signalled when the shard's window is over
	nextID  int
	procs   map[int]*Proc
	liveFG  int // live non-daemon processes on this shard
	current *Proc // process currently executing, nil when engine code runs

	// horizon is the exclusive upper bound on executable event times for
	// the current window; maxTime on the single-shard engine. A shard
	// never pops an event at or past its horizon, and the Sleep fast
	// path never advances the clock across it.
	horizon Time

	// fgHalt makes the dispatch loop stop as soon as the shard's last
	// non-daemon process finishes — the classic single-shard termination
	// rule. Sharded engines leave it false: a shard with no foreground
	// processes of its own (a pure server host) must keep serving until
	// the cluster-wide count drains, which the window loop checks at
	// barriers.
	fgHalt bool

	// fgEnd is the shard time at which liveFG last reached zero; the
	// sharded engine's final Now() is the maximum over shards.
	fgEnd Time

	// outbox buffers cross-shard events produced during the current
	// window; the barrier merges all outboxes in (at, src, seq) order.
	outbox []xev
	xseq   uint64
}

// xev is one cross-shard event in flight between windows.
type xev struct {
	at   Time
	sent Time   // posting shard's clock at Post time
	src  int    // posting shard id
	seq  uint64 // posting shard's outbox sequence
	dst  *Shard
	fn   func(any)
	arg  any
}

// NewEngine returns a single-shard engine whose random source is seeded
// with seed. Identical programs run on engines with identical seeds
// produce identical event traces.
func NewEngine(seed int64) *Engine {
	return newEngine(seed, 1)
}

// NewShardedEngine returns an engine with shards calendar shards
// (shards >= 2: shard 0 for global services plus one per simulated
// host, by convention). Each shard draws from its own random stream
// derived from (seed, shard id), so a sharded run is a pure function of
// (program, seed, shard count) regardless of how many worker goroutines
// execute the windows — Run produces identical results at every worker
// count, which is what makes the parallel engine testable against its
// own serial execution.
func NewShardedEngine(seed int64, shards int) *Engine {
	if shards < 2 {
		panic("sim: NewShardedEngine needs at least 2 shards (use NewEngine for one)")
	}
	return newEngine(seed, shards)
}

func newEngine(seed int64, shards int) *Engine {
	e := &Engine{
		shards:  make([]*Shard, shards),
		single:  shards == 1,
		workers: runtime.GOMAXPROCS(0),
	}
	for i := range e.shards {
		e.shards[i] = &Shard{
			e:       e,
			id:      i,
			rng:     rand.New(rand.NewSource(shardSeed(seed, i))),
			parked:  make(chan struct{}),
			procs:   make(map[int]*Proc),
			horizon: maxTime,
			fgHalt:  shards == 1,
		}
	}
	return e
}

// shardSeed derives shard i's random seed. Shard 0 uses the engine seed
// itself, so the single-shard engine's stream is exactly the historical
// one; higher shards mix the id through a splitmix64 round to decorrelate
// neighboring seeds.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NumShards returns the number of calendar shards (1 for NewEngine).
func (e *Engine) NumShards() int { return len(e.shards) }

// Shard returns shard i. Shard 0 is the engine's default shard: the
// engine-level Spawn/At/Now methods address it.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// SetLookahead declares the minimum cross-shard latency: every
// Shard.Post to another shard lands at least d after the posting shard's
// clock. The transport that owns the latency floor calls this before
// Run; the sharded Run panics without a positive lookahead, because the
// conservative window would be empty.
func (e *Engine) SetLookahead(d Duration) { e.lookahead = d }

// Lookahead returns the declared cross-shard latency floor.
func (e *Engine) Lookahead() Duration { return e.lookahead }

// SetParWorkers bounds the number of goroutines that execute shard
// windows concurrently (minimum 1; the default is GOMAXPROCS). The
// simulation's outcome is identical at every width.
func (e *Engine) SetParWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// ParWorkers returns the window executor's width.
func (e *Engine) ParWorkers() int { return e.workers }

// MaxShardsActive reports the high-water mark of shards that were
// runnable in a single window — the run's effective parallelism bound.
func (e *Engine) MaxShardsActive() int { return e.maxActive }

// Windows reports how many conservative windows the sharded run executed.
func (e *Engine) Windows() uint64 { return e.windows }

// Now returns the current virtual time. On a sharded engine the shards'
// clocks advance independently inside a window, so Now reports the
// current window floor while running and the finish time of the last
// non-daemon process after Run; simulation code on a shard uses
// Proc.Now or Shard.Now.
func (e *Engine) Now() Time {
	if e.single {
		return e.shards[0].now
	}
	return e.finalNow
}

// Rand returns shard 0's deterministic random source. Simulation code
// must use the owning shard's source (never math/rand's global functions
// or wall-clock entropy) so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.shards[0].rng }

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the owning engine.
func (s *Shard) Engine() *Engine { return s.e }

// Now returns the shard's current virtual time.
func (s *Shard) Now() Time { return s.now }

// Rand returns the shard's deterministic random source.
func (s *Shard) Rand() *rand.Rand { return s.rng }

// clamp bounds at to the present: the past is not addressable.
func (s *Shard) clamp(at Time) Time {
	if at < s.now {
		return s.now
	}
	return at
}

// scheduleResume inserts a resume record for p at absolute time at.
func (s *Shard) scheduleResume(at Time, p *Proc) {
	s.seq++
	if at = s.clamp(at); at == s.now && s.e.x == nil {
		s.ring = append(s.ring, event{at: at, seq: s.seq, proc: p})
		return
	}
	s.calQ.push(event{at: at, seq: s.seq, proc: p})
}

// scheduleFn inserts a callback record at absolute time at.
func (s *Shard) scheduleFn(at Time, fn func(any), arg any) {
	s.seq++
	if at = s.clamp(at); at == s.now && s.e.x == nil {
		s.ring = append(s.ring, event{at: at, seq: s.seq, fn: fn, arg: arg})
		return
	}
	s.calQ.push(event{at: at, seq: s.seq, fn: fn, arg: arg})
}

// ringEmpty reports whether the same-instant FIFO is drained.
func (s *Shard) ringEmpty() bool { return s.ringHead == len(s.ring) }

// popNext removes the shard's earliest event, merging the same-instant
// ring with the calendar heap on (at, seq).
func (s *Shard) popNext() event {
	if s.ringHead < len(s.ring) {
		rh := &s.ring[s.ringHead]
		// Ring entries sit at the current instant; the heap wins only
		// with an equal timestamp and an older seq.
		if s.calQ.Len() == 0 {
			return s.popRing()
		}
		if m := s.calQ.min(); m.at != rh.at || m.seq > rh.seq {
			return s.popRing()
		}
	}
	return s.calQ.pop()
}

func (s *Shard) popRing() event {
	ev := s.ring[s.ringHead]
	s.ring[s.ringHead] = event{} // release the arg/proc references
	s.ringHead++
	if s.ringHead == len(s.ring) {
		s.ring = s.ring[:0]
		s.ringHead = 0
	}
	return ev
}

// At schedules fn to run in engine context at absolute virtual time at
// on shard 0. fn must not block on simulation primitives; it may
// schedule further events, signal conditions, and spawn processes.
func (e *Engine) At(at Time, fn func()) { e.shards[0].At(at, fn) }

// After schedules fn to run in engine context d from now on shard 0.
func (e *Engine) After(d Duration, fn func()) { e.shards[0].After(d, fn) }

// AtArg schedules fn(arg) on shard 0 at absolute virtual time at.
func (e *Engine) AtArg(at Time, fn func(any), arg any) { e.shards[0].AtArg(at, fn, arg) }

// AfterArg schedules fn(arg) on shard 0, d from now.
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) { e.shards[0].AfterArg(d, fn, arg) }

// At schedules fn to run in this shard's engine context at absolute
// virtual time at. fn must not block on simulation primitives; it may
// schedule further events, signal conditions, and spawn processes on
// this shard.
func (s *Shard) At(at Time, fn func()) { s.scheduleFn(at, callFunc0, fn) }

// After schedules fn to run in this shard's engine context d from now.
func (s *Shard) After(d Duration, fn func()) { s.scheduleFn(s.now.Add(d), callFunc0, fn) }

// AtArg schedules fn(arg) at absolute virtual time at. Unlike At it does
// not force a closure: callers on allocation-sensitive paths keep one fn
// per receiver and thread the per-event state through arg (boxing a
// pointer into any does not allocate).
func (s *Shard) AtArg(at Time, fn func(any), arg any) { s.scheduleFn(at, fn, arg) }

// AfterArg schedules fn(arg) d from now.
func (s *Shard) AfterArg(d Duration, fn func(any), arg any) {
	s.scheduleFn(s.now.Add(d), fn, arg)
}

// Post schedules fn(arg) at absolute time at on shard dst, which may be
// a different shard. Same-shard posts are ordinary AtArg scheduling. A
// cross-shard post is buffered in the posting shard's outbox and merged
// into dst's calendar at the next window barrier, so it must respect the
// engine's lookahead: at >= the posting shard's current time plus the
// declared cross-shard latency floor. The barrier panics on a violation
// — a transport scheduling below its own declared floor is a
// correctness bug, not a tolerable slowdown.
func (s *Shard) Post(dst *Shard, at Time, fn func(any), arg any) {
	if dst == s || s.e.single {
		dst.scheduleFn(at, fn, arg)
		return
	}
	s.xseq++
	s.outbox = append(s.outbox, xev{at: at, sent: s.now, src: s.id, seq: s.xseq, dst: dst, fn: fn, arg: arg})
}

// Spawn creates a process named name running fn on shard 0 and
// schedules it to start at the current virtual time. The process counts
// toward Run's completion condition: Run returns once every non-daemon
// process (across all shards) has finished.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.shards[0].spawn(name, fn, false)
}

// SpawnDaemon creates a process on shard 0 that does not keep Run
// alive: like a daemon thread, it is abandoned once all non-daemon
// processes finish. DSM server threads, pollers and timers are daemons.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.shards[0].spawn(name, fn, true)
}

// Spawn creates a process on this shard; see Engine.Spawn.
func (s *Shard) Spawn(name string, fn func(*Proc)) *Proc {
	return s.spawn(name, fn, false)
}

// SpawnDaemon creates a daemon process on this shard; see
// Engine.SpawnDaemon.
func (s *Shard) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Shard) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e := s.e
	s.nextID++
	p := &Proc{
		e:      e,
		sh:     s,
		id:     s.nextID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	s.procs[p.id] = p
	if !daemon {
		s.liveFG++
	}
	go func() {
		<-p.resume
		if e.reaping {
			return // reaped before ever running
		}
		if e.x != nil {
			// Under exploration a panic is a finding, not a crash: record
			// it, stop the run, and hand control back to the engine.
			defer func() {
				if r := recover(); r != nil {
					e.explorePanic(p.name, r)
					p.finish()
				}
			}()
		}
		fn(p)
		p.finish()
	}()
	p.state = stateScheduled
	s.scheduleResume(s.now, p)
	return p
}

// finish retires the process: it runs on the process's own goroutine as
// the last thing before it exits (normally or, under exploration, from
// a recovered panic). The departing goroutine dispatches the shard's
// next event itself, so retirement hands control on with a single
// channel send.
func (p *Proc) finish() {
	s := p.sh
	p.state = stateDone
	delete(s.procs, p.id)
	if !p.daemon {
		s.liveFG--
		if s.liveFG == 0 {
			s.fgEnd = s.now
		}
	}
	s.current = nil
	if next := s.nextProc(); next != nil {
		s.handoff(next)
	} else {
		s.parked <- struct{}{}
	}
}

// nextProc advances the shard on the calling goroutine: it pops and
// fires events below the horizon — running engine callbacks inline —
// until it reaches a process resume, returned for the caller to hand
// control to, or an end condition (Stop called, the shard's foreground
// drained under fgHalt, or no event left below the horizon), signalled
// by returning nil.
//
// Centralizing dispatch here is what makes a process switch cost one
// channel handoff instead of two: the goroutine giving up the processor
// resumes its successor directly rather than bouncing through a
// dedicated scheduler goroutine (see park and finish).
func (s *Shard) nextProc() *Proc {
	e := s.e
	for {
		if e.stopped.Load() || (s.fgHalt && s.liveFG == 0) {
			return nil
		}
		if s.ringHead == len(s.ring) && (s.calQ.Len() == 0 || s.calQ.min().at >= s.horizon) {
			return nil
		}
		var ev event
		if e.x != nil {
			ev = e.popTie()
		} else {
			ev = s.popNext()
		}
		s.now = ev.at
		switch {
		case ev.proc != nil:
			if ev.proc.state == stateDone {
				continue
			}
			return ev.proc
		case e.x != nil:
			e.runEventExplored(ev)
		default:
			ev.fn(ev.arg)
		}
	}
}

// handoff transfers control to next and returns immediately. The calling
// goroutine must block on its own resume channel (park), wait for the
// window to end (runWindow), or exit (finish) right after.
func (s *Shard) handoff(next *Proc) {
	next.state = stateRunning
	s.current = next
	next.resume <- struct{}{}
}

// wake moves a blocked process into its shard's calendar at the shard's
// current time. It is a no-op if the process is already scheduled,
// running, or done. The caller must be executing on the process's own
// shard (Signals never span shards).
func (e *Engine) wake(p *Proc) {
	if p.state != stateBlocked {
		return
	}
	p.state = stateScheduled
	p.sh.scheduleResume(p.sh.now, p)
}

// runWindow drives the shard until nextProc finds no more work below
// the horizon; on return every process of the shard is parked. It is
// the body of classic Run (horizon = maxTime) and of one shard's turn
// inside a conservative window.
func (s *Shard) runWindow() {
	if next := s.nextProc(); next != nil {
		s.handoff(next)
		<-s.parked
	}
}

// BlockedProc names one process stuck in a deadlock, together with the
// label of the Signal (or Signal-derived primitive) it parked on — the
// wait reason that makes a deadlock report, and in particular a shrunk
// exploration repro, readable.
type BlockedProc struct {
	Name    string
	Waiting string // label of the primitive the process parked on; "" if unlabeled
}

func (b BlockedProc) String() string {
	if b.Waiting == "" {
		return b.Name
	}
	return b.Name + " (waiting on " + b.Waiting + ")"
}

// ErrDeadlock is returned by Run when no events remain but unfinished
// non-daemon processes are still blocked. On a sharded engine the report
// spans every shard: a deadlock is a global condition (all calendars and
// outboxes empty), and each blocked process is listed with its wait
// label no matter which shard owns it.
type ErrDeadlock struct {
	At      Time
	Blocked []string      // names of the blocked processes, sorted
	Waits   []BlockedProc // the same processes with their wait reasons
}

func (e *ErrDeadlock) Error() string {
	if len(e.Waits) > 0 {
		return fmt.Sprintf("sim: deadlock at %v: blocked processes %v", e.At, e.Waits)
	}
	return fmt.Sprintf("sim: deadlock at %v: blocked processes %v", e.At, e.Blocked)
}

// Run drives the simulation until every non-daemon process has finished,
// Stop is called, or no progress is possible. It returns *ErrDeadlock if
// non-daemon processes remain blocked with an empty calendar, and nil
// otherwise. Run must be called exactly once, from the goroutine that
// created the engine.
//
// On a sharded engine Run executes conservative windows: each window
// spans [m, m+L) where m is the earliest pending event across all
// shards and L the declared lookahead. Within the window every shard
// executes its own events independently — in parallel across up to
// ParWorkers goroutines — because no cross-shard effect can land below
// the window horizon: Shard.Post guarantees a cross-shard event fires
// at least L after the posting shard's clock, which never trails m.
// Windows meet at barriers that merge the shards' outboxes in
// deterministic (at, shard, seq) order, so the run's outcome is a pure
// function of (program, seed, shard count), independent of worker
// count and goroutine scheduling.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called twice")
	}
	e.running = true
	defer e.reapProcs()
	if !e.single {
		return e.runSharded()
	}
	s := e.shards[0]
	s.runWindow()
	if e.stopped.Load() {
		if e.panicErr != nil {
			return e.panicErr
		}
		return nil
	}
	if s.liveFG == 0 {
		return nil
	}
	return e.deadlockError()
}

// reapProcs runs when Run returns: every process still parked at that
// point (abandoned daemons and, after Stop or a deadlock, blocked
// processes) is woken one last time and exits instead of resuming.
// Without this the goroutines block on their resume channels forever,
// and — since each one references the engine — keep the entire
// simulation heap live; programs that run many simulations (benchmarks,
// model checkers, parameter sweeps) then accumulate stacks and heaps
// without bound.
func (e *Engine) reapProcs() {
	e.reaping = true
	for _, s := range e.shards {
		for _, p := range s.procs { //detlint:ok post-run teardown, order invisible
			if p.state == stateDone {
				continue
			}
			p.resume <- struct{}{} // wakes in park or at the spawn gate; exits
		}
	}
}

func (e *Engine) deadlockError() error {
	var waits []BlockedProc
	for _, s := range e.shards {
		for _, p := range s.procs { //detlint:ok sorted below
			if !p.daemon && p.state == stateBlocked {
				waits = append(waits, BlockedProc{Name: p.name, Waiting: p.waitLabel()})
			}
		}
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i].Name < waits[j].Name })
	blocked := make([]string, len(waits))
	for i, w := range waits {
		blocked[i] = w.Name
	}
	return &ErrDeadlock{At: e.Now(), Blocked: blocked, Waits: waits}
}

// Stop makes Run return after the current event completes — on a
// sharded engine, after every shard finishes its in-progress event and
// the window unwinds. It may be called from process context or an
// engine callback on any shard.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Proc is a simulated process (thread). All Proc methods must be called
// from the process's own goroutine while it is the running process.
type Proc struct {
	e      *Engine
	sh     *Shard
	id     int
	name   string
	daemon bool
	resume chan struct{}
	state  procState

	// waitOn is the Signal the process most recently parked on; consulted
	// only while state == stateBlocked, for deadlock reporting.
	waitOn *Signal
}

// waitLabel returns the label of the primitive the process is blocked
// on, for deadlock reports.
func (p *Proc) waitLabel() string {
	if p.waitOn == nil {
		return ""
	}
	return p.waitOn.label
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Shard returns the calendar shard that owns this process.
func (p *Proc) Shard() *Shard { return p.sh }

// Now returns the current virtual time on the process's shard.
func (p *Proc) Now() Time { return p.sh.now }

// park gives up the processor and blocks until resumed. The caller must
// have arranged a wakeup (calendar event or Signal registration) before
// calling park, or the process deadlocks.
//
// The parking goroutine dispatches events itself until the next process
// switch (nextProc). Two outcomes avoid channel traffic entirely: the
// next resume may be this process's own (sleep across engine callbacks),
// and engine callbacks between resumes run inline. Otherwise control
// moves to the successor — or, when the window is over, back to the
// shard driver — with a single send.
func (p *Proc) park(st procState) {
	s := p.sh
	p.state = st
	s.current = nil
	next := s.nextProc()
	if next == p {
		p.state = stateRunning
		s.current = p
		return
	}
	if next != nil {
		s.handoff(next)
	} else {
		s.parked <- struct{}{} // window over: wake the driver, then await resume
	}
	<-p.resume
	if p.e.reaping {
		runtime.Goexit() // run over: unwind instead of resuming
	}
	p.state = stateRunning
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time. Sleep(0) yields: other events at the current timestamp
// run before the process continues.
//
// Fast path: when no calendar event precedes the wakeup and the wakeup
// lies inside the shard's window, the resume record this Sleep would
// push is exactly the event the engine would pop next. The process then
// advances the clock itself and keeps running — same execution order, no
// heap traffic, and no goroutine handshake. Events already scheduled for
// the wakeup instant have smaller sequence numbers than the would-be
// resume, so the fast path requires the calendar minimum to lie strictly
// after the wakeup time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sh
	e := p.e
	at := s.now.Add(d)
	if !e.stopped.Load() && s.ringEmpty() && at < s.horizon &&
		(s.calQ.Len() == 0 || at < s.calQ.min().at) {
		s.now = at
		return
	}
	s.scheduleResume(at, p)
	if d == 0 && e.x != nil {
		e.yieldSeq[s.seq] = struct{}{} // tag the resume as a yield for the explorer
	}
	p.park(stateScheduled)
}

// Yield lets every other event scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
