package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
)

type procState int8

const (
	stateNew procState = iota
	stateRunning
	stateBlocked   // parked, waiting on a Signal; no event scheduled
	stateScheduled // parked, a resume event is in the calendar
	stateDone
)

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create one with NewEngine.
//
// All methods must be called either from the goroutine that calls Run (for
// setup and engine callbacks) or from a simulated process's own goroutine
// while that process is the running process. The engine enforces the
// one-runnable-process-at-a-time discipline itself; callers never need
// additional locking for simulation state.
type Engine struct {
	now     Time
	seq     uint64
	calQ    calendar

	// ring is the same-instant FIFO: events scheduled for the current
	// virtual time (wakes, yields, zero-latency callbacks — the majority
	// of all events) are appended here instead of sifting through the
	// heap, and popped in O(1). Appends carry strictly increasing seq, so
	// the ring is seq-sorted by construction; popNext merges it with the
	// heap on (at, seq), preserving the global deterministic order
	// exactly. Invariant: every ring entry has at == now (now only
	// advances by popping a later heap event, possible only when the
	// ring is drained). Unused under exploration (see SetExplorer).
	ring     []event
	ringHead int
	rng     *rand.Rand
	parked  chan struct{} // a process signals here when the run is over
	nextID  int
	procs   map[int]*Proc
	liveFG  int // live non-daemon processes
	stopped bool
	running bool
	reaping bool  // Run is over; woken processes must exit, not run
	current *Proc // process currently executing, nil when engine code runs

	// Exploration state (explore.go); all nil/empty unless SetExplorer
	// installed a schedule explorer, so the default path is untouched.
	x         Explorer
	yieldSeq  map[uint64]struct{} // seqs of resumes scheduled by Yield/Sleep(0)
	tieEvents []event             // scratch for popTie
	tieInfos  []EventInfo         // scratch for popTie
	panicErr  *ErrPanic           // first panic captured under exploration
}

// NewEngine returns an engine whose random source is seeded with seed.
// Identical programs run on engines with identical seeds produce identical
// event traces.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Simulation code
// must use this source (never math/rand's global functions or wall-clock
// entropy) so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// clamp bounds at to the present: the past is not addressable.
func (e *Engine) clamp(at Time) Time {
	if at < e.now {
		return e.now
	}
	return at
}

// scheduleResume inserts a resume record for p at absolute time at.
func (e *Engine) scheduleResume(at Time, p *Proc) {
	e.seq++
	if at = e.clamp(at); at == e.now && e.x == nil {
		e.ring = append(e.ring, event{at: at, seq: e.seq, proc: p})
		return
	}
	e.calQ.push(event{at: at, seq: e.seq, proc: p})
}

// scheduleFn inserts a callback record at absolute time at.
func (e *Engine) scheduleFn(at Time, fn func(any), arg any) {
	e.seq++
	if at = e.clamp(at); at == e.now && e.x == nil {
		e.ring = append(e.ring, event{at: at, seq: e.seq, fn: fn, arg: arg})
		return
	}
	e.calQ.push(event{at: at, seq: e.seq, fn: fn, arg: arg})
}

// ringEmpty reports whether the same-instant FIFO is drained.
func (e *Engine) ringEmpty() bool { return e.ringHead == len(e.ring) }

// popNext removes the globally earliest event, merging the same-instant
// ring with the calendar heap on (at, seq).
func (e *Engine) popNext() event {
	if e.ringHead < len(e.ring) {
		rh := &e.ring[e.ringHead]
		// Ring entries sit at the current instant; the heap wins only
		// with an equal timestamp and an older seq.
		if e.calQ.Len() == 0 {
			return e.popRing()
		}
		if m := e.calQ.min(); m.at != rh.at || m.seq > rh.seq {
			return e.popRing()
		}
	}
	return e.calQ.pop()
}

func (e *Engine) popRing() event {
	ev := e.ring[e.ringHead]
	e.ring[e.ringHead] = event{} // release the arg/proc references
	e.ringHead++
	if e.ringHead == len(e.ring) {
		e.ring = e.ring[:0]
		e.ringHead = 0
	}
	return ev
}

// At schedules fn to run in engine context at absolute virtual time at.
// fn must not block on simulation primitives; it may schedule further
// events, signal conditions, and spawn processes.
func (e *Engine) At(at Time, fn func()) { e.scheduleFn(at, callFunc0, fn) }

// After schedules fn to run in engine context d from now. The same
// restrictions as At apply.
func (e *Engine) After(d Duration, fn func()) { e.scheduleFn(e.now.Add(d), callFunc0, fn) }

// AtArg schedules fn(arg) to run in engine context at absolute virtual
// time at. Unlike At it does not force a closure: callers on allocation-
// sensitive paths keep one fn per receiver and thread the per-event state
// through arg (boxing a pointer into any does not allocate).
func (e *Engine) AtArg(at Time, fn func(any), arg any) { e.scheduleFn(at, fn, arg) }

// AfterArg schedules fn(arg) to run in engine context d from now.
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) {
	e.scheduleFn(e.now.Add(d), fn, arg)
}

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. The process counts toward Run's completion
// condition: Run returns once every non-daemon process has finished.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon creates a process that does not keep Run alive: like a
// daemon thread, it is abandoned once all non-daemon processes finish.
// DSM server threads, pollers and timers are daemons.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e.nextID++
	p := &Proc{
		e:      e,
		id:     e.nextID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	e.procs[p.id] = p
	if !daemon {
		e.liveFG++
	}
	go func() {
		<-p.resume
		if e.reaping {
			return // reaped before ever running
		}
		if e.x != nil {
			// Under exploration a panic is a finding, not a crash: record
			// it, stop the run, and hand control back to the engine.
			defer func() {
				if r := recover(); r != nil {
					e.explorePanic(p.name, r)
					p.finish()
				}
			}()
		}
		fn(p)
		p.finish()
	}()
	p.state = stateScheduled
	e.scheduleResume(e.now, p)
	return p
}

// finish retires the process: it runs on the process's own goroutine as
// the last thing before it exits (normally or, under exploration, from
// a recovered panic). The departing goroutine dispatches the next event
// itself, so retirement hands control on with a single channel send.
func (p *Proc) finish() {
	e := p.e
	p.state = stateDone
	delete(e.procs, p.id)
	if !p.daemon {
		e.liveFG--
	}
	e.current = nil
	if next := e.nextProc(); next != nil {
		e.handoff(next)
	} else {
		e.parked <- struct{}{}
	}
}

// nextProc advances the simulation on the calling goroutine: it pops and
// fires events — running engine callbacks inline — until it reaches a
// process resume, returned for the caller to hand control to, or an end
// condition (Stop called, all non-daemon processes finished, or an empty
// calendar), signalled by returning nil.
//
// Centralizing dispatch here is what makes a process switch cost one
// channel handoff instead of two: the goroutine giving up the processor
// resumes its successor directly rather than bouncing through a
// dedicated scheduler goroutine (see park and finish).
func (e *Engine) nextProc() *Proc {
	for {
		if e.stopped || e.liveFG == 0 || (e.calQ.Len() == 0 && e.ringEmpty()) {
			return nil
		}
		var ev event
		if e.x != nil {
			ev = e.popTie()
		} else {
			ev = e.popNext()
		}
		e.now = ev.at
		switch {
		case ev.proc != nil:
			if ev.proc.state == stateDone {
				continue
			}
			return ev.proc
		case e.x != nil:
			e.runEventExplored(ev)
		default:
			ev.fn(ev.arg)
		}
	}
}

// handoff transfers control to next and returns immediately. The calling
// goroutine must block on its own resume channel (park), wait for the
// run to end (Run), or exit (finish) right after.
func (e *Engine) handoff(next *Proc) {
	next.state = stateRunning
	e.current = next
	next.resume <- struct{}{}
}

// wake moves a blocked process into the calendar at the current time.
// It is a no-op if the process is already scheduled, running, or done.
func (e *Engine) wake(p *Proc) {
	if p.state != stateBlocked {
		return
	}
	p.state = stateScheduled
	e.scheduleResume(e.now, p)
}

// BlockedProc names one process stuck in a deadlock, together with the
// label of the Signal (or Signal-derived primitive) it parked on — the
// wait reason that makes a deadlock report, and in particular a shrunk
// exploration repro, readable.
type BlockedProc struct {
	Name    string
	Waiting string // label of the primitive the process parked on; "" if unlabeled
}

func (b BlockedProc) String() string {
	if b.Waiting == "" {
		return b.Name
	}
	return b.Name + " (waiting on " + b.Waiting + ")"
}

// ErrDeadlock is returned by Run when no events remain but unfinished
// non-daemon processes are still blocked.
type ErrDeadlock struct {
	At      Time
	Blocked []string      // names of the blocked processes, sorted
	Waits   []BlockedProc // the same processes with their wait reasons
}

func (e *ErrDeadlock) Error() string {
	if len(e.Waits) > 0 {
		return fmt.Sprintf("sim: deadlock at %v: blocked processes %v", e.At, e.Waits)
	}
	return fmt.Sprintf("sim: deadlock at %v: blocked processes %v", e.At, e.Blocked)
}

// Run drives the simulation until every non-daemon process has finished,
// Stop is called, or no progress is possible. It returns *ErrDeadlock if
// non-daemon processes remain blocked with an empty calendar, and nil
// otherwise. Run must be called exactly once, from the goroutine that
// created the engine.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called twice")
	}
	e.running = true
	defer e.reapProcs()
	if next := e.nextProc(); next != nil {
		e.handoff(next)
		<-e.parked // the final process signals here when the run is over
	}
	if e.stopped {
		if e.panicErr != nil {
			return e.panicErr
		}
		return nil
	}
	if e.liveFG == 0 {
		return nil
	}
	return e.deadlockError()
}

// reapProcs runs when Run returns: every process still parked at that
// point (abandoned daemons and, after Stop or a deadlock, blocked
// processes) is woken one last time and exits instead of resuming.
// Without this the goroutines block on their resume channels forever,
// and — since each one references the engine — keep the entire
// simulation heap live; programs that run many simulations (benchmarks,
// model checkers, parameter sweeps) then accumulate stacks and heaps
// without bound.
func (e *Engine) reapProcs() {
	e.reaping = true
	for _, p := range e.procs { //detlint:ok post-run teardown, order invisible
		if p.state == stateDone {
			continue
		}
		p.resume <- struct{}{} // wakes in park or at the spawn gate; exits
	}
}

func (e *Engine) deadlockError() error {
	var waits []BlockedProc
	for _, p := range e.procs { //detlint:ok sorted below
		if !p.daemon && p.state == stateBlocked {
			waits = append(waits, BlockedProc{Name: p.name, Waiting: p.waitLabel()})
		}
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i].Name < waits[j].Name })
	blocked := make([]string, len(waits))
	for i, w := range waits {
		blocked[i] = w.Name
	}
	return &ErrDeadlock{At: e.now, Blocked: blocked, Waits: waits}
}

// Stop makes Run return after the current event completes. It may be
// called from process context or an engine callback.
func (e *Engine) Stop() { e.stopped = true }

// Proc is a simulated process (thread). All Proc methods must be called
// from the process's own goroutine while it is the running process.
type Proc struct {
	e      *Engine
	id     int
	name   string
	daemon bool
	resume chan struct{}
	state  procState

	// waitOn is the Signal the process most recently parked on; consulted
	// only while state == stateBlocked, for deadlock reporting.
	waitOn *Signal
}

// waitLabel returns the label of the primitive the process is blocked
// on, for deadlock reports.
func (p *Proc) waitLabel() string {
	if p.waitOn == nil {
		return ""
	}
	return p.waitOn.label
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// park gives up the processor and blocks until resumed. The caller must
// have arranged a wakeup (calendar event or Signal registration) before
// calling park, or the process deadlocks.
//
// The parking goroutine dispatches events itself until the next process
// switch (nextProc). Two outcomes avoid channel traffic entirely: the
// next resume may be this process's own (sleep across engine callbacks),
// and engine callbacks between resumes run inline. Otherwise control
// moves to the successor — or, when the run is over, back to Run — with
// a single send.
func (p *Proc) park(st procState) {
	e := p.e
	p.state = st
	e.current = nil
	next := e.nextProc()
	if next == p {
		p.state = stateRunning
		e.current = p
		return
	}
	if next != nil {
		e.handoff(next)
	} else {
		e.parked <- struct{}{} // run over: wake Run, then await the reaper
	}
	<-p.resume
	if e.reaping {
		runtime.Goexit() // run over: unwind instead of resuming
	}
	p.state = stateRunning
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time. Sleep(0) yields: other events at the current timestamp
// run before the process continues.
//
// Fast path: when no calendar event precedes the wakeup, the resume
// record this Sleep would push is exactly the event the engine would pop
// next. The process then advances the clock itself and keeps running —
// same execution order, no heap traffic, and no goroutine handshake.
// Events already scheduled for the wakeup instant have smaller sequence
// numbers than the would-be resume, so the fast path requires the
// calendar minimum to lie strictly after the wakeup time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.e
	at := e.now.Add(d)
	if !e.stopped && e.ringEmpty() && (e.calQ.Len() == 0 || at < e.calQ.min().at) {
		e.now = at
		return
	}
	e.scheduleResume(at, p)
	if d == 0 && e.x != nil {
		e.yieldSeq[e.seq] = struct{}{} // tag the resume as a yield for the explorer
	}
	p.park(stateScheduled)
}

// Yield lets every other event scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
