package mmu

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(1024, 32, 2)
	if c.access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.access(0x1010) {
		t.Fatal("same-line access missed")
	}
	if c.access(0x2000) {
		t.Fatal("different line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 32B lines, 2 sets (128 bytes total).
	c := newCache(128, 32, 2)
	// Three conflicting lines in set 0: 0, 128, 256 (line numbers 0,4,8
	// all map to set 0 of 2 sets -> even lines).
	c.access(0)   // miss, insert
	c.access(128) // miss, insert; set full
	c.access(0)   // hit, refreshes 0
	if c.access(256) {
		t.Fatal("conflict access hit")
	}
	// 128 was LRU and must be gone; 0 must survive.
	if !c.access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.access(128) {
		t.Fatal("LRU line survived")
	}
}

func TestTLBBasics(t *testing.T) {
	tl := newTLB(4, 2)
	if tl.access(7) {
		t.Fatal("cold TLB hit")
	}
	if !tl.access(7) {
		t.Fatal("TLB re-access missed")
	}
}

func TestMachineSequentialScanCosts(t *testing.T) {
	// A sequential scan of one page: 1 TLB miss, 4096/32 = 128 data-line
	// fetches, the rest L1 hits.
	m := New(PentiumII())
	for i := uint64(0); i < 4096; i++ {
		m.Access(0x10000+i, 0x50000+i)
	}
	if m.S.TLBMisses != 1 {
		t.Fatalf("TLB misses = %d, want 1", m.S.TLBMisses)
	}
	if m.S.L1Misses != 128 {
		t.Fatalf("L1 misses = %d, want 128", m.S.L1Misses)
	}
	if m.S.Accesses != 4096 {
		t.Fatalf("accesses = %d", m.S.Accesses)
	}
}

func TestPTEWorkingSetDrivesSlowdown(t *testing.T) {
	// Shrink the hardware so the experiment is fast: L2 of 4 KB holds
	// 1024 PTEs. An array of 64 pages at 8 views has 512 active PTEs
	// (fits); at 32 views it has 2048 (thrashes). The slowdown must jump.
	cfg := PentiumII()
	cfg.L2Size = 4 << 10
	cfg.L1Size = 1 << 10
	arr := 64 * cfg.PageSize

	below := Traversal{ArrayBytes: arr, Views: 8, Passes: 2, Warmup: 1}
	above := Traversal{ArrayBytes: arr, Views: 32, Passes: 2, Warmup: 1}
	if got, want := below.ActivePTEs(cfg), 512; got != want {
		t.Fatalf("ActivePTEs below = %d, want %d", got, want)
	}
	if got, want := above.ActivePTEs(cfg), 2048; got != want {
		t.Fatalf("ActivePTEs above = %d, want %d", got, want)
	}
	rBelow, _, _ := below.Slowdown(cfg)
	rAbove, mAbove, _ := above.Slowdown(cfg)
	if rBelow >= rAbove {
		t.Fatalf("slowdown below (%.2f) >= above (%.2f)", rBelow, rAbove)
	}
	if rAbove < 1.5 {
		t.Fatalf("beyond the breaking point slowdown = %.2f, want substantial", rAbove)
	}
	if mAbove.S.PTEL2Miss == 0 {
		t.Fatal("no PTE L2 misses beyond the breaking point")
	}
}

func TestSmallViewCountsNegligibleOverhead(t *testing.T) {
	// The paper: for n <= 32 and 512KB <= N <= 16MB the overhead is < 4%.
	// Check a representative point with the real hardware config (small N
	// to keep the test fast).
	cfg := PentiumII()
	tr := Traversal{ArrayBytes: 512 << 10, Views: 16, Passes: 1, Warmup: 1}
	ratio, _, _ := tr.Slowdown(cfg)
	if ratio > 1.06 {
		t.Fatalf("slowdown at 16 views = %.3f, want <= ~1.04", ratio)
	}
}

func TestTraversalTouchesEveryByte(t *testing.T) {
	cfg := PentiumII()
	m := New(cfg)
	tr := Traversal{ArrayBytes: 3 * cfg.PageSize, Views: 4, Passes: 1}
	tr.Run(m)
	if m.S.Accesses != uint64(3*cfg.PageSize) {
		t.Fatalf("accesses = %d, want %d", m.S.Accesses, 3*cfg.PageSize)
	}
}

func TestSlowdownDeterministic(t *testing.T) {
	cfg := PentiumII()
	cfg.L2Size = 8 << 10
	tr := Traversal{ArrayBytes: 32 * cfg.PageSize, Views: 16, Passes: 1, Warmup: 1}
	a, _, _ := tr.Slowdown(cfg)
	b, _, _ := tr.Slowdown(cfg)
	if a != b {
		t.Fatalf("nondeterministic slowdown: %v vs %v", a, b)
	}
}

// Property: cycle cost is monotone under cache size — a machine with a
// larger L2 never spends more cycles on the same traversal.
func TestLargerL2NeverSlower(t *testing.T) {
	f := func(viewsSeed, pagesSeed uint8) bool {
		views := int(viewsSeed)%16 + 1
		pages := int(pagesSeed)%32 + 4
		small := PentiumII()
		small.L2Size = 8 << 10
		big := PentiumII()
		big.L2Size = 64 << 10
		tr := Traversal{ArrayBytes: pages * small.PageSize, Views: views, Passes: 1, Warmup: 1}
		cs := tr.Run(New(small))
		cb := tr.Run(New(big))
		return cb <= cs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAccessAllocFree pins the MMU model's cost contract: Access never
// heap-allocates — neither on the MRU fast path (repeated address), nor
// on TLB/cache misses, nor with the fast path disabled.
func TestAccessAllocFree(t *testing.T) {
	m := New(PentiumII())
	if avg := testing.AllocsPerRun(1000, func() {
		m.Access(0x2000_0000, 0x1000_0000) // fast-path repeat after the first
	}); avg != 0 {
		t.Fatalf("fast-path Access allocates %.2f objects/op, want 0", avg)
	}
	var va uint64
	if avg := testing.AllocsPerRun(1000, func() {
		m.Access(0x2000_0000+va, 0x1000_0000+va) // new page every call: walk + miss
		va += 4096
	}); avg != 0 {
		t.Fatalf("miss-path Access allocates %.2f objects/op, want 0", avg)
	}
	slow := New(PentiumII())
	slow.NoFastPath = true
	if avg := testing.AllocsPerRun(1000, func() {
		slow.Access(0x2000_0000, 0x1000_0000)
	}); avg != 0 {
		t.Fatalf("full-model Access allocates %.2f objects/op, want 0", avg)
	}
}

// TestAccessFastPathEquivalence walks a mixed stream (repeats, line
// changes within a page, page changes) through a fast-path machine and a
// NoFastPath machine and requires identical statistics at every step.
func TestAccessFastPathEquivalence(t *testing.T) {
	fast := New(PentiumII())
	slow := New(PentiumII())
	slow.NoFastPath = true
	refs := []struct{ va, pa uint64 }{
		{0x2000_0000, 0x1000_0000},
		{0x2000_0000, 0x1000_0000}, // exact repeat: vpn + line fast path
		{0x2000_0008, 0x1000_0008}, // same line
		{0x2000_0040, 0x1000_0040}, // same page, new line
		{0x2000_0000, 0x1000_0000}, // back to the first line
		{0x2000_1000, 0x1000_1000}, // new page
		{0x2000_1000, 0x1000_1000},
		{0x2000_0040, 0x2000_0040}, // old page, different physical line
	}
	for i, r := range refs {
		fast.Access(r.va, r.pa)
		slow.Access(r.va, r.pa)
		if fast.S != slow.S {
			t.Fatalf("stats diverge after ref %d (%#x/%#x):\nfast %+v\nslow %+v",
				i, r.va, r.pa, fast.S, slow.S)
		}
	}
}
