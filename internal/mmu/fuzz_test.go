package mmu

import (
	"testing"
)

// FuzzTraverse drives the minipage address-traversal microbenchmark
// through adversarial (ArrayBytes, Views, Passes, Stride) corners on
// the PentiumII machine model. Properties: Run never panics (the
// address arithmetic — view slots, guard pages, mini-page rounding —
// stays in bounds for any inputs), measured cycles are nonzero
// whenever at least one access happens, and the cycle count is
// deterministic for identical inputs.
func FuzzTraverse(f *testing.F) {
	f.Add(4096, 4, 1, 1)
	f.Add(64*1024, 8, 2, 7)
	f.Add(1, 1, 1, 1)
	f.Add(8192, 64, 1, 4096)
	f.Add(3000, 3, 1, 13)
	f.Add(0, 0, 0, 0)
	f.Add(5, 100, 1, 1)
	f.Fuzz(func(t *testing.T, arrayBytes, views, passes, stride int) {
		// Clamp to keep one fuzz execution cheap; the clamps mirror the
		// microbenchmark's real operating envelope, not a code limit.
		if arrayBytes < 0 || arrayBytes > 1<<16 {
			t.Skip()
		}
		if views < 0 || views > 256 || passes < 0 || passes > 3 {
			t.Skip()
		}
		if stride < 0 {
			t.Skip()
		}
		tr := Traversal{ArrayBytes: arrayBytes, Views: views, Passes: passes, Stride: stride}
		cfg := PentiumII()
		m1 := New(cfg)
		c1 := tr.Run(m1)
		if arrayBytes > 0 && c1 == 0 {
			t.Fatalf("traversal of %d bytes cost zero cycles", arrayBytes)
		}
		m2 := New(cfg)
		if c2 := tr.Run(m2); c2 != c1 {
			t.Fatalf("nondeterministic traversal: %d then %d cycles", c1, c2)
		}
		// The MRU fast path must be invisible: cycles and every counter
		// agree with the full model.
		slow := New(cfg)
		slow.NoFastPath = true
		cs := tr.Run(slow)
		if cs != c1 {
			t.Fatalf("fast path changed cycles: %d with, %d without", c1, cs)
		}
		if m1.S != slow.S {
			t.Fatalf("fast path changed statistics: %+v with, %+v without", m1.S, slow.S)
		}
		if pte := tr.ActivePTEs(cfg); arrayBytes > 0 && pte <= 0 {
			t.Fatalf("ActivePTEs = %d for %d bytes", pte, arrayBytes)
		}
	})
}
