// Package mmu models the memory-hierarchy hardware of the paper's testbed
// — a 300 MHz Intel Pentium II — at the level of detail the MultiView
// overhead study (Section 4.1 / Figure 5) depends on:
//
//   - a 64-entry data TLB;
//   - a 16 KB L1 data cache;
//   - a 512 KB physically tagged L2 in which page-table entries (4 bytes
//     each on IA-32) are cacheable;
//   - a hardware page walk on TLB miss whose PTE fetch goes through the
//     cache hierarchy.
//
// The paper's explanation of Figure 5 is a statement about PTE residency:
// "the breaking-points occur precisely when the PTEs can no longer be
// cached" in the 512 KB L2 — n·N = 512 (N in MB) is 128 K PTEs = 512 KB.
// We model that mechanism directly: PTE lines compete for an L2-sized
// residency pool, while the traversal's data stream (which is touched
// once per pass and has essentially no L2 reuse at these array sizes)
// gets a small effective share. Beyond the L2 budget, every page walk
// goes to memory and additionally pays an operating-system page-table
// management penalty — the paper's own secondary suspect ("overloading
// the operating system's internal data structures"). The result
// reproduces Figure 5's four reported facts: negligible overhead for
// n <= 32 at 512 KB <= N <= 16 MB; breaking points at n·N = 512 MB·views;
// linear slowdown growth beyond them; and N-independent slopes.
package mmu

// Config describes the modeled hardware.
type Config struct {
	PageSize int
	PTESize  int // bytes per page-table entry (4 on IA-32)

	TLBEntries int // data TLB entries
	TLBAssoc   int // data TLB associativity

	L1Size, L1Line, L1Assoc int

	// L2Size is the unified L2 capacity available to PTE lines — the
	// quantity the breaking points are measured against. L2DataShare is
	// the effective capacity the once-touched traversal data retains
	// under contention.
	L2Size, L2Line, L2Assoc int
	L2DataShare             int

	// Latencies in CPU cycles.
	L1HitCycles int
	L2HitCycles int
	MemCycles   int
	TLBWalkBase int // page-walk overhead beyond the PTE fetch itself
	CPUMHz      int

	// LoopCycles is the per-element instruction cost of the traversal
	// loop itself (index update, bounds check, byte load consume).
	LoopCycles int

	// PTEMissOSPenalty is charged per PTE fetch that misses L2, modeling
	// the OS page-table management cost beyond the raw memory access.
	// It calibrates Figure 5's magnitude; the breaking points and
	// linearity do not depend on it.
	PTEMissOSPenalty int
}

// PentiumII returns the testbed configuration: 300 MHz Pentium II with a
// 64-entry 4-way DTLB, 16 KB 4-way L1D, 512 KB 4-way L2, 32-byte lines.
func PentiumII() Config {
	return Config{
		PageSize:    4096,
		PTESize:     4,
		TLBEntries:  64,
		TLBAssoc:    4,
		L1Size:      16 << 10,
		L1Line:      32,
		L1Assoc:     4,
		L2Size:      512 << 10,
		L2Line:      32,
		L2Assoc:     4,
		L2DataShare: 64 << 10,
		L1HitCycles: 1,
		L2HitCycles: 8,
		MemCycles:   60,
		TLBWalkBase: 3,
		CPUMHz:      300,

		LoopCycles:       2,
		PTEMissOSPenalty: 3400,
	}
}

// cache is a set-associative cache with LRU replacement, tracked at line
// granularity.
type cache struct {
	lineSize uint64
	sets     uint64
	assoc    int
	tags     []uint64
	valid    []bool
	ages     []uint32
	clock    uint32
}

func newCache(size, line, assoc int) *cache {
	sets := size / (line * assoc)
	if sets < 1 {
		sets = 1
	}
	n := sets * assoc
	return &cache{
		lineSize: uint64(line),
		sets:     uint64(sets),
		assoc:    assoc,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		ages:     make([]uint32, n),
	}
}

// access touches addr; it returns true on hit and inserts the line on a
// miss.
func (c *cache) access(addr uint64) bool {
	line := addr / c.lineSize
	set := line % c.sets
	base := int(set) * c.assoc
	c.clock++
	victim, oldest := base, c.clock
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.ages[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.ages[i] < oldest {
			victim, oldest = i, c.ages[i]
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.ages[victim] = c.clock
	return false
}

// tlb is a set-associative TLB over virtual page numbers.
type tlb struct {
	sets  uint64
	assoc int
	tags  []uint64
	valid []bool
	ages  []uint32
	clock uint32
}

func newTLB(entries, assoc int) *tlb {
	sets := entries / assoc
	if sets < 1 {
		sets = 1
	}
	return &tlb{
		sets:  uint64(sets),
		assoc: assoc,
		tags:  make([]uint64, sets*assoc),
		valid: make([]bool, sets*assoc),
		ages:  make([]uint32, sets*assoc),
	}
}

func (t *tlb) access(vpn uint64) bool {
	set := vpn % t.sets
	base := int(set) * t.assoc
	t.clock++
	victim, oldest := base, t.clock
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if t.valid[i] && t.tags[i] == vpn {
			t.ages[i] = t.clock
			return true
		}
		if !t.valid[i] {
			victim, oldest = i, 0
		} else if t.ages[i] < oldest {
			victim, oldest = i, t.ages[i]
		}
	}
	t.tags[victim] = vpn
	t.valid[victim] = true
	t.ages[victim] = t.clock
	return false
}

// Stats accumulates access counts and cycles.
type Stats struct {
	Accesses  uint64
	TLBMisses uint64
	L1Misses  uint64 // data-side L1 misses
	L2Misses  uint64 // data-side effective-L2 misses
	PTEL2Miss uint64 // PTE fetches that missed L2 (the Figure 5 mechanism)
	Cycles    uint64
}

// Machine is one modeled CPU+memory hierarchy instance. Because the PTE
// residency question is what Figure 5 hinges on, PTE lines get a
// dedicated model of the L2's capacity while data goes through a small
// effective share (see the package comment).
type Machine struct {
	cfg    Config
	tlb    *tlb
	l1     *cache
	l2pte  *cache // L2 capacity as seen by page-table lines
	l2data *cache // effective L2 share retained by streaming data

	// Synthetic physical placement of the page table: PTEs for vpn live
	// at PTBase + vpn*PTESize, mirroring IA-32 page-table locality
	// (eight PTEs per 32-byte line).
	PTBase uint64

	// Last-translation fast path. After any access, the touched vpn is
	// the most-recently-used entry of its TLB set and the touched data
	// line is the most-recently-used line of its L1 set (a miss installs
	// the entry and makes it MRU). A repeat of either is therefore a
	// guaranteed hit whose LRU re-stamp cannot change any entry's
	// relative age, so it can be answered without touching the model:
	// identical cycles, identical statistics, identical future behavior.
	// NoFastPath disables the shortcut so tests can verify exactly that.
	lastVPN    uint64
	lastLine   uint64
	lastValid  bool
	NoFastPath bool

	S Stats
}

// New returns a machine with cold caches.
func New(cfg Config) *Machine {
	dataShare := cfg.L2DataShare
	if dataShare <= 0 {
		dataShare = cfg.L2Size
	}
	return &Machine{
		cfg:    cfg,
		tlb:    newTLB(cfg.TLBEntries, cfg.TLBAssoc),
		l1:     newCache(cfg.L1Size, cfg.L1Line, cfg.L1Assoc),
		l2pte:  newCache(cfg.L2Size, cfg.L2Line, cfg.L2Assoc),
		l2data: newCache(dataShare, cfg.L2Line, cfg.L2Assoc),
		PTBase: 0xC000_0000,
	}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// fetchData charges one data reference at physical address addr.
func (m *Machine) fetchData(addr uint64) uint64 {
	if m.l1.access(addr) {
		return uint64(m.cfg.L1HitCycles)
	}
	m.S.L1Misses++
	if m.l2data.access(addr) {
		return uint64(m.cfg.L2HitCycles)
	}
	m.S.L2Misses++
	return uint64(m.cfg.MemCycles)
}

// fetchPTE charges one page-table fetch at physical address addr.
func (m *Machine) fetchPTE(addr uint64) uint64 {
	if m.l2pte.access(addr) {
		return uint64(m.cfg.L2HitCycles)
	}
	m.S.PTEL2Miss++
	return uint64(m.cfg.MemCycles + m.cfg.PTEMissOSPenalty)
}

// Access models one data reference at virtual address va mapping to
// physical address pa: TLB lookup, page walk on miss (a cacheable PTE
// fetch), then the data reference itself. Repeats of the last vpn and
// the last data line take the MRU fast path (see the Machine fields).
func (m *Machine) Access(va, pa uint64) {
	m.S.Accesses++
	cycles := uint64(m.cfg.LoopCycles)
	vpn := va / uint64(m.cfg.PageSize)
	line := pa / m.l1.lineSize
	if m.lastValid && !m.NoFastPath && vpn == m.lastVPN {
		if line == m.lastLine {
			m.S.Cycles += cycles + uint64(m.cfg.L1HitCycles)
			return
		}
	} else if !m.tlb.access(vpn) {
		m.S.TLBMisses++
		pteAddr := m.PTBase + vpn*uint64(m.cfg.PTESize)
		cycles += uint64(m.cfg.TLBWalkBase)
		cycles += m.fetchPTE(pteAddr)
	}
	if m.lastValid && !m.NoFastPath && line == m.lastLine {
		cycles += uint64(m.cfg.L1HitCycles)
	} else {
		cycles += m.fetchData(pa)
	}
	m.lastVPN = vpn
	m.lastLine = line
	m.lastValid = true
	m.S.Cycles += cycles
}

// Seconds converts the accumulated cycles to wall time on the modeled
// CPU.
func (m *Machine) Seconds() float64 {
	return float64(m.S.Cycles) / (float64(m.cfg.CPUMHz) * 1e6)
}
