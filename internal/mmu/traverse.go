package mmu

// This file implements the paper's standalone MultiView overhead
// microbenchmark (Section 4.1): an array of N bytes is divided into
// minipages of equal size, with the number of minipages per page equal to
// the number of views n; the benchmark traverses the array reading each
// element exactly once per pass. We replay the traversal's exact memory
// reference stream (data references plus the page walks their vpages
// induce) through the Machine model.

// Traversal describes one run of the microbenchmark.
type Traversal struct {
	ArrayBytes int // N: size of the shared array
	Views      int // n: minipages per page == number of views
	Passes     int // measured passes over the array (>=1)
	Warmup     int // unmeasured warmup passes
	Stride     int // measure every Stride-th byte (1 = the paper's exact stream)
}

// viewLayout mirrors core.Layout's address arithmetic without importing
// it: view v of an object of `pages` pages is a contiguous VA range.
type viewLayout struct {
	base     uint64
	stride   uint64
	pageSize uint64
}

func (l viewLayout) addr(view int, off uint64) uint64 {
	return l.base + uint64(view)*l.stride + off
}

// Run replays the traversal on machine m and returns the measured cycle
// count. The machine accumulates statistics across the whole run
// (including warmup); the returned count covers only the measured passes.
func (tr Traversal) Run(m *Machine) uint64 {
	if tr.Views < 1 {
		tr.Views = 1
	}
	if tr.Passes < 1 {
		tr.Passes = 1
	}
	if tr.Stride < 1 {
		tr.Stride = 1
	}
	pageSize := uint64(m.cfg.PageSize)
	pages := (uint64(tr.ArrayBytes) + pageSize - 1) / pageSize
	// Choose the inter-view guard gap so consecutive views' page-table
	// lines are stride-coprime with the L2 set count (stridePages mod 16
	// == 8 makes the PTE-line stride odd). Without this, particular
	// (N, n) combinations alias all views' PTEs onto a few cache sets and
	// produce conflict artifacts unrelated to the paper's capacity story.
	guardPages := uint64(256)
	if rem := (pages + guardPages) % 16; rem != 8 {
		guardPages += (8 - rem + 16) % 16
	}
	layout := viewLayout{
		base:     0x2000_0000,
		stride:   (pages + guardPages) * pageSize,
		pageSize: pageSize,
	}
	const physBase = 0x1000_0000
	miniSize := pageSize / uint64(tr.Views)
	if miniSize == 0 {
		miniSize = 1
	}

	// The reference stream is generated a (page, view-slot) segment at a
	// time: the division chain that locates a byte (page, offset, slot)
	// is hoisted out of the per-element loop, and within a segment the
	// virtual and physical addresses just advance by the stride. The
	// stream is element-for-element identical to the naive per-byte
	// computation (FuzzTraverse checks the cycle counts agree).
	pass := func() {
		n := uint64(tr.ArrayBytes)
		stride := uint64(tr.Stride)
		views := uint64(tr.Views)
		for i := uint64(0); i < n; {
			page := i / pageSize
			off := i % pageSize
			slot := off / miniSize
			if slot >= views {
				slot = views - 1
			}
			segEnd := page*pageSize + (slot+1)*miniSize
			if slot == views-1 {
				segEnd = (page + 1) * pageSize
			}
			if segEnd > n {
				segEnd = n
			}
			va := layout.addr(int(slot), page*pageSize+off)
			pa := physBase + i
			for ; i < segEnd; i += stride {
				m.Access(va, pa)
				va += stride
				pa += stride
			}
		}
	}

	for w := 0; w < tr.Warmup; w++ {
		pass()
	}
	before := m.S.Cycles
	for p := 0; p < tr.Passes; p++ {
		pass()
	}
	return m.S.Cycles - before
}

// Slowdown runs the traversal at tr.Views views and at one view on fresh
// machines with configuration cfg, returning the ratio of cycle counts —
// the quantity plotted in Figure 5.
func (tr Traversal) Slowdown(cfg Config) (ratio float64, multi, single *Machine) {
	multi = New(cfg)
	mc := tr.Run(multi)

	base := tr
	base.Views = 1
	single = New(cfg)
	sc := base.Run(single)

	if sc == 0 {
		return 0, multi, single
	}
	return float64(mc) / float64(sc), multi, single
}

// ActivePTEs reports the number of distinct PTEs the traversal touches —
// the paper's "active PT entries" (128 K at the breaking points).
func (tr Traversal) ActivePTEs(cfg Config) int {
	pages := (tr.ArrayBytes + cfg.PageSize - 1) / cfg.PageSize
	views := tr.Views
	if views < 1 {
		views = 1
	}
	return pages * views
}
