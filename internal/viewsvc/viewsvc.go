// Package viewsvc is the directory-shard view service: a small,
// deterministic membership monitor in the 6.824 viewservice shape. One
// instance runs on the allocation authority (dsm host 0) and, for every
// directory shard, publishes a numbered View naming the shard's primary
// and backup. Hosts ping it; a host that misses DeadAfter of virtual
// time is declared dead on the next Tick, its primaryships hand over to
// the (synced) backups, and restarted hosts rejoin as backups once the
// primary has re-synced them with a state transfer.
//
// The package is a pure state machine over int64 nanosecond timestamps:
// no simulator, clock or network dependency, so it is directly unit- and
// fuzz-testable. All transitions happen in Tick (Heartbeat and AckSync
// only record), which keeps view changes on the caller's deterministic
// cadence.
//
// Safety invariants (checked by the tests and FuzzViewChange):
//   - per shard, view numbers are strictly monotone;
//   - a view never names the same host as primary and backup;
//   - the primary of view n+1 is either the primary or the synced
//     backup of view n — an unsynced backup is never promoted, so two
//     hosts can never both have served as primary of one view.
package viewsvc

// View is one published configuration of a directory shard.
type View struct {
	Num     uint64 // strictly monotone per shard, starts at 1
	Primary int    // host currently serving the shard
	Backup  int    // mirror target, -1 when none
	Synced  bool   // backup holds a full copy of the shard state
}

// HasBackup reports whether the view names a backup.
func (v View) HasBackup() bool { return v.Backup >= 0 }

// Service tracks host liveness and the per-shard views. Shard i is the
// directory shard natively homed at host i.
type Service struct {
	hosts     int
	deadAfter int64

	lastBeat []int64
	views    []View

	// Changes counts Tick calls that moved at least one view (test and
	// bench observability).
	Changes uint64
}

// New builds the service for a cluster of hosts. deadAfter is how long a
// host may go without a heartbeat before it is declared dead. The
// initial view of shard k is {1, k, (k+1)%hosts}; with a single host
// there are no backups and the service is inert. Host 0 runs the
// service and is treated as always alive (its death takes the view
// service with it — the documented availability limit).
func New(hosts int, deadAfter int64) *Service {
	if hosts < 1 {
		panic("viewsvc: need at least one host")
	}
	if deadAfter <= 0 {
		panic("viewsvc: DeadAfter must be positive")
	}
	s := &Service{hosts: hosts, deadAfter: deadAfter}
	s.lastBeat = make([]int64, hosts)
	s.views = make([]View, hosts)
	for k := range s.views {
		v := View{Num: 1, Primary: k, Backup: -1}
		if hosts > 1 {
			// The initial backup starts with the same (empty) shard state
			// as the primary, so it is synced by construction.
			v.Backup = (k + 1) % hosts
			v.Synced = true
		}
		s.views[k] = v
	}
	return s
}

// NumHosts returns the cluster size.
func (s *Service) NumHosts() int { return s.hosts }

// Heartbeat records a ping from host at virtual time now. Transitions
// happen only in Tick.
func (s *Service) Heartbeat(host int, now int64) {
	if host < 0 || host >= s.hosts {
		panic("viewsvc: heartbeat from unknown host")
	}
	if now > s.lastBeat[host] {
		s.lastBeat[host] = now
	}
}

// AckSync records that backup has installed the state transfer for its
// shard under view num. Stale acks (older view, or a host that is no
// longer the backup) are ignored.
func (s *Service) AckSync(shard, backup int, num uint64) {
	if shard < 0 || shard >= s.hosts {
		return
	}
	v := &s.views[shard]
	if v.Num == num && v.Backup == backup {
		v.Synced = true
	}
}

// Alive reports whether host has heartbeated within DeadAfter of now.
// Host 0 hosts the service and counts as always alive.
func (s *Service) Alive(host int, now int64) bool {
	return host == 0 || now-s.lastBeat[host] <= s.deadAfter
}

// Tick sweeps liveness at virtual time now and advances any view whose
// primary or backup has died, or that can take on a rejoined host as a
// new backup. It reports whether any view changed (Synced flips count:
// primaries act on them).
func (s *Service) Tick(now int64) bool {
	changed := false
	for k := range s.views {
		v := s.views[k]
		next := v

		if !s.Alive(v.Primary, now) {
			if v.HasBackup() && v.Synced && s.Alive(v.Backup, now) {
				// Promote the synced backup; it serves solo until a new
				// backup is assigned and synced.
				next = View{Num: v.Num + 1, Primary: v.Backup, Backup: -1}
			}
			// Otherwise the shard is unavailable until the primary
			// restarts and pings again: promoting an unsynced backup
			// would serve from partial state, and with no backup there
			// is nothing to promote. The view does not move.
		} else if v.HasBackup() && !s.Alive(v.Backup, now) {
			// Backup died: drop it. The primary releases any mirror-gated
			// effects when it sees the backup leave the view.
			next = View{Num: v.Num + 1, Primary: v.Primary, Backup: -1}
		}

		if !next.HasBackup() {
			if b := s.pickBackup(k, next.Primary, now); b >= 0 {
				next = View{Num: next.Num, Primary: next.Primary, Backup: b}
				if next.Num == v.Num {
					next.Num++ // assigning a backup is itself a view change
				}
			}
		}

		if next != v {
			s.views[k] = next
			changed = true
		}
	}
	if changed {
		s.Changes++
	}
	return changed
}

// pickBackup chooses a backup for shard k: the shard's native host if it
// is alive and not the primary (so a restarted home drifts back toward
// backing — and eventually re-serving — its own shard), else the
// lowest-numbered other alive host.
func (s *Service) pickBackup(k, primary int, now int64) int {
	if k != primary && s.Alive(k, now) {
		return k
	}
	for h := 0; h < s.hosts; h++ {
		if h != primary && s.Alive(h, now) {
			return h
		}
	}
	return -1
}

// View returns the current view of shard k.
func (s *Service) View(k int) View { return s.views[k] }

// Views returns a copy of every shard's current view, indexed by shard.
func (s *Service) Views() []View {
	out := make([]View, len(s.views))
	copy(out, s.views)
	return out
}
