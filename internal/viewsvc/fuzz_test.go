package viewsvc

import (
	"fmt"
	"testing"
)

// history remembers every published view so the invariant checks can
// compare across time: in particular that one (shard, view-number) pair
// never names two different primaries — the split-brain condition.
type history struct {
	prev      []View
	primaries map[[2]uint64]int // (shard, num) -> primary
}

func newHistory(s *Service) *history {
	return &history{prev: s.Views(), primaries: map[[2]uint64]int{}}
}

func (h *history) check(t *testing.T, s *Service) {
	t.Helper()
	cur := s.Views()
	for k, v := range cur {
		if v.Num < 1 {
			t.Fatalf("shard %d: view number %d < 1", k, v.Num)
		}
		if v.Primary < 0 || v.Primary >= s.NumHosts() {
			t.Fatalf("shard %d: primary %d out of range", k, v.Primary)
		}
		if v.HasBackup() && v.Backup == v.Primary {
			t.Fatalf("shard %d: view %+v names one host as both primary and backup", k, v)
		}
		p := h.prev[k]
		if v.Num < p.Num {
			t.Fatalf("shard %d: view number moved backward: %+v -> %+v", k, p, v)
		}
		if v.Num == p.Num && (v.Primary != p.Primary || v.Backup != p.Backup) {
			t.Fatalf("shard %d: view %d republished with different membership: %+v -> %+v", k, p.Num, p, v)
		}
		if v.Num > p.Num {
			// Successor legitimacy: the new primary must be the old
			// primary or the old view's synced backup. Anything else
			// means a host that could not hold the state was elected —
			// and, transitively, that two hosts could believe they are
			// primary of the same lineage.
			if v.Primary != p.Primary && !(p.HasBackup() && p.Synced && v.Primary == p.Backup) {
				t.Fatalf("shard %d: illegitimate succession %+v -> %+v", k, p, v)
			}
		}
		key := [2]uint64{uint64(k), v.Num}
		if was, seen := h.primaries[key]; seen && was != v.Primary {
			t.Fatalf("shard %d view %d: two primaries elected (%d and %d)", k, v.Num, was, v.Primary)
		}
		h.primaries[key] = v.Primary
	}
	h.prev = cur
}

// observe refreshes the recorded views after AckSync deliveries, which
// legitimately flip Synced between ticks without a view change.
func (h *history) observe(s *Service) { h.prev = s.Views() }

// FuzzViewChange feeds arbitrary heartbeat-loss / ack-loss schedules to
// the service and asserts the split-brain invariants after every tick.
// Each input byte is one step: the low bits select which hosts' pings
// arrive this step (lost beats model both network loss and host death),
// and one bit decides whether the pending state-transfer ack arrives
// (ack loss keeps backups unsynced, forcing the frozen-shard path).
func FuzzViewChange(f *testing.F) {
	f.Add(3, []byte{})
	f.Add(4, []byte{0xff, 0xff, 0x00, 0x00, 0xff})
	f.Add(2, []byte{0x01, 0x01, 0x03, 0x02})
	f.Add(5, []byte{0x9f, 0x40, 0x07, 0xff, 0x13, 0x00, 0xe1})
	f.Add(8, []byte{0x80, 0x81, 0xff, 0x00, 0x55, 0xaa, 0x0f, 0xf0, 0x3c})
	f.Fuzz(func(t *testing.T, hosts int, steps []byte) {
		if hosts < 1 || hosts > 16 {
			return
		}
		if len(steps) > 256 {
			steps = steps[:256]
		}
		s := New(hosts, dead)
		hist := newHistory(s)
		now := int64(0)
		for _, b := range steps {
			now += dead / 2
			for h := 0; h < hosts; h++ {
				if b&(1<<(h%7)) != 0 {
					s.Heartbeat(h, now)
				}
			}
			if b&0x80 != 0 {
				// Deliver pending sync acks for every shard with an
				// unsynced backup.
				for k := 0; k < hosts; k++ {
					if v := s.View(k); v.HasBackup() && !v.Synced {
						s.AckSync(k, v.Backup, v.Num)
					}
				}
				hist.observe(s)
			}
			s.Tick(now)
			hist.check(t, s)
		}
		// Final sanity: every published view still satisfies the point
		// invariants (redundant with the loop, cheap to keep explicit).
		for k := 0; k < hosts; k++ {
			v := s.View(k)
			if v.HasBackup() && v.Backup == v.Primary {
				panic(fmt.Sprintf("shard %d: degenerate final view %+v", k, v))
			}
		}
	})
}
