package viewsvc

import "testing"

const dead = int64(2_000_000) // 2ms in nanoseconds

func beatAll(s *Service, now int64, except ...int) {
	skip := map[int]bool{}
	for _, h := range except {
		skip[h] = true
	}
	for h := 0; h < s.NumHosts(); h++ {
		if !skip[h] {
			s.Heartbeat(h, now)
		}
	}
}

func TestInitialViews(t *testing.T) {
	s := New(4, dead)
	for k := 0; k < 4; k++ {
		v := s.View(k)
		if v.Num != 1 || v.Primary != k || v.Backup != (k+1)%4 || !v.Synced {
			t.Fatalf("shard %d initial view = %+v", k, v)
		}
	}
	if s.Tick(0) {
		t.Fatal("Tick moved a view with every host alive")
	}
}

func TestSingleHostInert(t *testing.T) {
	s := New(1, dead)
	if v := s.View(0); v.Backup != -1 || v.Synced {
		t.Fatalf("single-host view = %+v", v)
	}
	if s.Tick(10 * dead) {
		t.Fatal("single-host service moved a view")
	}
}

func TestPrimaryDeathPromotesSyncedBackup(t *testing.T) {
	s := New(4, dead)
	beatAll(s, 1000)
	now := 1000 + dead + 1
	beatAll(s, now, 2) // host 2 stops pinging
	if !s.Tick(now) {
		t.Fatal("no view change after primary death")
	}
	v := s.View(2)
	if v.Num != 2 || v.Primary != 3 {
		t.Fatalf("shard 2 after promotion = %+v (want primary 3, num 2)", v)
	}
	// The replacement backup (lowest alive non-primary: host 0) starts
	// unsynced.
	if v.Backup != 0 || v.Synced {
		t.Fatalf("shard 2 replacement backup = %+v", v)
	}
	// Shard 1 lost its backup (host 2) and re-picks one.
	v1 := s.View(1)
	if v1.Num != 2 || v1.Primary != 1 || v1.Backup != 0 || v1.Synced {
		t.Fatalf("shard 1 after backup death = %+v", v1)
	}
}

func TestUnsyncedBackupNeverPromoted(t *testing.T) {
	s := New(3, dead)
	beatAll(s, 1000)
	// Kill host 2: shard 2 promotes host 0; shard 1's backup becomes
	// host 0, unsynced.
	now := 1000 + dead + 1
	beatAll(s, now, 2)
	s.Tick(now)
	if v := s.View(1); v.Backup != 0 || v.Synced {
		t.Fatalf("precondition: shard 1 view = %+v", v)
	}
	// Now kill host 1 before the backup syncs: shard 1 must freeze.
	before := s.View(1)
	now += dead + 1
	beatAll(s, now, 1, 2)
	s.Tick(now)
	if v := s.View(1); v.Num != before.Num || v.Primary != before.Primary {
		t.Fatalf("unsynced backup promoted: %+v -> %+v", before, v)
	}
}

func TestAckSyncEnablesPromotion(t *testing.T) {
	s := New(3, dead)
	beatAll(s, 1000)
	now := 1000 + dead + 1
	beatAll(s, now, 2)
	s.Tick(now)
	v := s.View(1) // {2, 1, 0, unsynced}
	s.AckSync(1, 0, v.Num)
	if !s.View(1).Synced {
		t.Fatal("AckSync did not mark the backup synced")
	}
	now += dead + 1
	beatAll(s, now, 1, 2)
	s.Tick(now)
	if got := s.View(1); got.Primary != 0 || got.Num != v.Num+1 {
		t.Fatalf("synced backup not promoted: %+v", got)
	}
}

func TestStaleAckSyncIgnored(t *testing.T) {
	s := New(3, dead)
	beatAll(s, 1000)
	now := 1000 + dead + 1
	beatAll(s, now, 2)
	s.Tick(now)
	v := s.View(1)
	s.AckSync(1, 0, v.Num-1) // stale view number
	s.AckSync(1, 2, v.Num)   // wrong host
	s.AckSync(-1, 0, v.Num)  // out-of-range shard
	s.AckSync(99, 0, v.Num)
	if s.View(1).Synced {
		t.Fatal("stale/mismatched AckSync marked the backup synced")
	}
}

func TestRestartRejoinsAsNativeBackup(t *testing.T) {
	s := New(4, dead)
	beatAll(s, 1000)
	now := 1000 + dead + 1
	beatAll(s, now, 2)
	s.Tick(now) // shard 2: primary 3, backup 0
	// Host 2 restarts and pings again; on the next tick nothing changes
	// on shard 2: replacement only fills empty or dead backup slots.
	now += 10
	beatAll(s, now)
	s.Tick(now)
	if v := s.View(2); v.Backup != 0 {
		t.Fatalf("live backup displaced: %+v", v)
	}
	s.AckSync(2, 0, s.View(2).Num)
	// Kill host 3 (shard 2's stand-in primary): the synced backup takes
	// over and the rejoined native host is re-picked as backup.
	now += dead + 1
	beatAll(s, now, 3)
	s.Tick(now)
	if v := s.View(2); v.Primary != 0 || v.Backup != 2 || v.Synced {
		t.Fatalf("shard 2 did not re-pick its native host as backup: %+v", v)
	}
}

func TestBackupDeathReleasesAndReassigns(t *testing.T) {
	s := New(2, dead)
	beatAll(s, 1000)
	now := 1000 + dead + 1
	s.Heartbeat(0, now) // host 1 silent
	s.Tick(now)
	if v := s.View(0); v.Num != 2 || v.Primary != 0 || v.Backup != -1 {
		t.Fatalf("shard 0 after backup death = %+v", v)
	}
	// Shard 1's primary died with a synced backup: host 0 takes over.
	if v := s.View(1); v.Num != 2 || v.Primary != 0 || v.Backup != -1 {
		t.Fatalf("shard 1 after primary death = %+v", v)
	}
	// Restart host 1: both shards take it back as an unsynced backup.
	now += 10
	beatAll(s, now)
	s.Tick(now)
	for k := 0; k < 2; k++ {
		if v := s.View(k); v.Num != 3 || v.Backup != 1 || v.Synced {
			t.Fatalf("shard %d after rejoin = %+v", k, v)
		}
	}
}

func TestHeartbeatMonotone(t *testing.T) {
	s := New(2, dead)
	s.Heartbeat(1, 5000)
	s.Heartbeat(1, 400) // late/reordered beat must not move time backward
	if !s.Alive(1, 5000+dead) {
		t.Fatal("reordered heartbeat rewound lastBeat")
	}
}

func TestHeartbeatUnknownHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range host")
		}
	}()
	New(2, dead).Heartbeat(7, 0)
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, dead) },
		func() { New(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for invalid New args")
				}
			}()
			bad()
		}()
	}
}

func TestViewsReturnsCopy(t *testing.T) {
	s := New(2, dead)
	vs := s.Views()
	vs[0].Primary = 99
	if s.View(0).Primary == 99 {
		t.Fatal("Views aliases internal state")
	}
	if len(vs) != 2 {
		t.Fatalf("len(Views) = %d", len(vs))
	}
}

// TestInvariantsUnderChurn drives a deterministic churn pattern and
// checks the package invariants after every tick — the same checks the
// fuzz target applies to arbitrary sequences.
func TestInvariantsUnderChurn(t *testing.T) {
	s := New(5, dead)
	hist := newHistory(s)
	now := int64(0)
	for step := 0; step < 400; step++ {
		now += dead / 3
		for h := 0; h < 5; h++ {
			// Host h skips beats on a per-host cadence, producing
			// overlapping death/rejoin waves.
			if (step/(3+h))%2 == 0 {
				s.Heartbeat(h, now)
			}
		}
		if step%7 == 0 {
			for k := 0; k < 5; k++ {
				v := s.View(k)
				if v.HasBackup() && !v.Synced {
					s.AckSync(k, v.Backup, v.Num)
				}
			}
			hist.observe(s)
		}
		s.Tick(now)
		hist.check(t, s)
	}
	if s.Changes == 0 {
		t.Fatal("churn produced no view changes")
	}
}
