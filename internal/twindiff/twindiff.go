// Package twindiff implements page twinning and run-length diffs, the
// Munin/TreadMarks-style machinery that multiple-writer DSM protocols use
// to merge concurrent writes to one page.
//
// Millipage's thin-layer design exists to avoid exactly this: the paper
// measures a 250 µs run-length diff for a 4 KB page on its testbed
// (Section 4.2, "obviously, this time is not negligible, and would have
// dominated the overhead if it were required in the dsm protocol"). The
// package provides a real implementation — used by the lazy-release-
// consistency extension and by the Table 1 benchmarks — plus the paper's
// calibrated cost model for charging simulated time.
package twindiff

import (
	"encoding/binary"
	"errors"
	"fmt"

	"millipage/internal/sim"
)

// Twin returns a private copy of page, taken before writes are allowed —
// the "twin" against which a later diff is computed.
func Twin(page []byte) []byte {
	t := make([]byte, len(page))
	copy(t, page)
	return t
}

// Run is one modified span of a page.
type Run struct {
	Off  int
	Data []byte
}

// Diff computes the run-length encoding of the differences between twin
// and cur, which must be the same length. Adjacent or near-adjacent
// changes (gap < minGap) coalesce into one run, as real implementations
// do to keep the encoding compact.
func Diff(twin, cur []byte) ([]Run, error) {
	if len(twin) != len(cur) {
		return nil, fmt.Errorf("twindiff: twin %d bytes vs page %d bytes", len(twin), len(cur))
	}
	const minGap = 8
	var runs []Run
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		last := i
		for j := i + 1; j < len(cur) && j-last < minGap; j++ {
			if twin[j] != cur[j] {
				last = j
			}
		}
		runs = append(runs, Run{Off: start, Data: append([]byte(nil), cur[start:last+1]...)})
		i = last + 1
	}
	return runs, nil
}

// Apply patches page with runs (as produced by Diff against page's twin).
func Apply(page []byte, runs []Run) error {
	for _, r := range runs {
		if r.Off < 0 || r.Off+len(r.Data) > len(page) {
			return fmt.Errorf("twindiff: run [%d,%d) outside page of %d bytes", r.Off, r.Off+len(r.Data), len(page))
		}
		copy(page[r.Off:], r.Data)
	}
	return nil
}

// AppendDiff computes the run-length diff of cur against twin and
// appends its wire encoding directly to dst, returning the extended
// slice. The bytes produced are identical to Encode(Diff(twin, cur)),
// without materializing the intermediate []Run or copying run data out
// of cur — the allocation-free form for protocol hot loops that hold a
// reusable encode buffer.
func AppendDiff(dst, twin, cur []byte) ([]byte, error) {
	if len(twin) != len(cur) {
		return nil, fmt.Errorf("twindiff: twin %d bytes vs page %d bytes", len(twin), len(cur))
	}
	const minGap = 8
	var hdr [4]byte
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		last := i
		for j := i + 1; j < len(cur) && j-last < minGap; j++ {
			if twin[j] != cur[j] {
				last = j
			}
		}
		n := last + 1 - start
		if start > maxField || n > maxField {
			return nil, fmt.Errorf("twindiff: run at offset %d length %d outside uint16 range", start, n)
		}
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(start))
		binary.LittleEndian.PutUint16(hdr[2:4], uint16(n))
		dst = append(dst, hdr[:]...)
		dst = append(dst, cur[start:last+1]...)
		i = last + 1
	}
	return dst, nil
}

// ApplyEncoded patches page directly from an encoded diff, equivalent to
// Apply(page, Decode(enc)) but without materializing runs. Validation is
// all-or-nothing: the encoding is checked in full (canonical order, no
// overlap, in-bounds) before the first byte of page is touched, so a
// corrupt frame never half-applies.
func ApplyEncoded(page, enc []byte) error {
	rest := enc
	end := 0
	for len(rest) > 0 {
		if len(rest) < 4 {
			return ErrCorrupt
		}
		off := int(binary.LittleEndian.Uint16(rest[0:2]))
		n := int(binary.LittleEndian.Uint16(rest[2:4]))
		rest = rest[4:]
		if n == 0 || n > len(rest) {
			return ErrCorrupt
		}
		if off < end {
			return ErrCorrupt
		}
		end = off + n
		if end > len(page) {
			return fmt.Errorf("twindiff: run [%d,%d) outside page of %d bytes", off, end, len(page))
		}
		rest = rest[n:]
	}
	for len(enc) > 0 {
		off := int(binary.LittleEndian.Uint16(enc[0:2]))
		n := int(binary.LittleEndian.Uint16(enc[2:4]))
		copy(page[off:], enc[4:4+n])
		enc = enc[4+n:]
	}
	return nil
}

// ErrCorrupt reports a malformed encoded diff.
var ErrCorrupt = errors.New("twindiff: corrupt encoding")

// maxField is the largest offset or run length the (uint16, uint16)
// record header can carry. Pages in this system are at most 4 KiB, so a
// well-formed diff never comes near it; hitting it means the caller
// diffed something that is not a page.
const maxField = 1<<16 - 1

// Encode serializes runs into the wire format: a sequence of
// (offset uint16, length uint16, data) records. Runs must be canonical —
// sorted by offset, non-overlapping, non-empty, as Diff produces — and
// must fit the 16-bit header fields; Encode returns an error rather than
// silently truncating an offset or length past 64 KiB.
func Encode(runs []Run) ([]byte, error) {
	out := make([]byte, 0, Size(runs))
	var hdr [4]byte
	end := 0
	for i, r := range runs {
		if r.Off < 0 || r.Off > maxField {
			return nil, fmt.Errorf("twindiff: run %d offset %d outside uint16 range", i, r.Off)
		}
		if len(r.Data) == 0 || len(r.Data) > maxField {
			return nil, fmt.Errorf("twindiff: run %d length %d outside [1,%d]", i, len(r.Data), maxField)
		}
		if r.Off < end {
			return nil, fmt.Errorf("twindiff: run %d at offset %d overlaps previous run ending at %d", i, r.Off, end)
		}
		end = r.Off + len(r.Data)
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(r.Off))
		binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(r.Data)))
		out = append(out, hdr[:]...)
		out = append(out, r.Data...)
	}
	return out, nil
}

// Decode parses the wire format back into runs. Only the canonical
// encoding is accepted: non-empty runs, sorted by offset, without
// overlap — exactly what Diff produces and Encode emits. Anything else
// (including a frame whose arbitrary-order patches would make Apply
// last-writer-wins dependent) fails with ErrCorrupt rather than
// half-applying.
func Decode(enc []byte) ([]Run, error) {
	var runs []Run
	end := 0
	for len(enc) > 0 {
		if len(enc) < 4 {
			return nil, ErrCorrupt
		}
		off := int(binary.LittleEndian.Uint16(enc[0:2]))
		n := int(binary.LittleEndian.Uint16(enc[2:4]))
		enc = enc[4:]
		if n == 0 || n > len(enc) {
			return nil, ErrCorrupt
		}
		if off < end {
			return nil, ErrCorrupt
		}
		end = off + n
		runs = append(runs, Run{Off: off, Data: append([]byte(nil), enc[:n]...)})
		enc = enc[n:]
	}
	return runs, nil
}

// Size returns the encoded size of runs in bytes.
func Size(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += 4 + len(r.Data)
	}
	return n
}

// CreateCost is the paper's measured diff-creation time on the testbed:
// 250 µs for a 4 KB page, decreasing linearly with page size.
func CreateCost(pageBytes int) sim.Duration {
	return sim.Duration(int64(250*int64(sim.Microsecond)) * int64(pageBytes) / 4096)
}

// ApplyCost models patching a page with an encoded diff: proportional to
// the diff size, cheaper per byte than creation (no comparison pass).
func ApplyCost(diffBytes int) sim.Duration {
	return sim.Duration(int64(40*int64(sim.Microsecond)) * int64(diffBytes) / 4096)
}

// TwinCost models copying a page to create its twin.
func TwinCost(pageBytes int) sim.Duration {
	return sim.Duration(int64(30*int64(sim.Microsecond)) * int64(pageBytes) / 4096)
}
