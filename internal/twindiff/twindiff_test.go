package twindiff

import (
	"bytes"
	"testing"
	"testing/quick"

	"millipage/internal/sim"
)

func TestDiffEmptyWhenUnchanged(t *testing.T) {
	page := make([]byte, 4096)
	twin := Twin(page)
	runs, err := Diff(twin, page)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("runs = %d, want 0", len(runs))
	}
}

func TestDiffSingleChange(t *testing.T) {
	page := make([]byte, 4096)
	twin := Twin(page)
	page[100] = 0xFF
	runs, err := Diff(twin, page)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Off != 100 || len(runs[0].Data) != 1 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestDiffCoalescesNearbyChanges(t *testing.T) {
	page := make([]byte, 4096)
	twin := Twin(page)
	page[10] = 1
	page[14] = 2 // gap of 3 < minGap: coalesce
	runs, _ := Diff(twin, page)
	if len(runs) != 1 {
		t.Fatalf("runs = %+v, want single coalesced run", runs)
	}
	page2 := make([]byte, 4096)
	twin2 := Twin(page2)
	page2[10] = 1
	page2[200] = 2 // far apart: separate runs
	runs2, _ := Diff(twin2, page2)
	if len(runs2) != 2 {
		t.Fatalf("runs2 = %+v, want two runs", runs2)
	}
}

func TestApplyRejectsOutOfRange(t *testing.T) {
	page := make([]byte, 16)
	if err := Apply(page, []Run{{Off: 12, Data: make([]byte, 8)}}); err == nil {
		t.Fatal("out-of-range run applied")
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Diff(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	runs := []Run{{Off: 3, Data: []byte{1, 2, 3}}, {Off: 4000, Data: []byte{9}}}
	enc, err := Encode(runs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].Off != 3 || !bytes.Equal(dec[1].Data, []byte{9}) {
		t.Fatalf("decoded %+v", dec)
	}
	if Size(runs) != 4+3+4+1 {
		t.Fatalf("Size = %d", Size(runs))
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	cases := []struct {
		name string
		runs []Run
	}{
		{"offset past uint16", []Run{{Off: 1 << 16, Data: []byte{1}}}},
		{"negative offset", []Run{{Off: -1, Data: []byte{1}}}},
		{"length past uint16", []Run{{Off: 0, Data: make([]byte, 1<<16)}}},
		{"empty run", []Run{{Off: 0, Data: nil}}},
		{"unsorted", []Run{{Off: 10, Data: []byte{1}}, {Off: 0, Data: []byte{2}}}},
		{"overlapping", []Run{{Off: 0, Data: []byte{1, 2, 3}}, {Off: 2, Data: []byte{4}}}},
	}
	for _, tc := range cases {
		if _, err := Encode(tc.runs); err == nil {
			t.Errorf("%s: Encode(%+v) succeeded, want error", tc.name, tc.runs)
		}
	}
	// The boundary itself is fine: offset 65535 with one byte.
	enc, err := Encode([]Run{{Off: maxField, Data: []byte{7}}})
	if err != nil {
		t.Fatalf("boundary run rejected: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil || len(dec) != 1 || dec[0].Off != maxField {
		t.Fatalf("boundary roundtrip: %+v, %v", dec, err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := Decode([]byte{0, 0, 255, 0, 1}); err == nil {
		t.Fatal("truncated data accepted")
	}
	// Zero-length run: Diff never produces one, so it is corruption.
	if _, err := Decode([]byte{5, 0, 0, 0}); err == nil {
		t.Fatal("empty run accepted")
	}
	// Unsorted: second run starts before the first ends.
	mustEnc := func(runs []Run) []byte {
		t.Helper()
		enc, err := Encode(runs)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	a := mustEnc([]Run{{Off: 100, Data: []byte{1, 2}}})
	b := mustEnc([]Run{{Off: 0, Data: []byte{3}}})
	if _, err := Decode(append(a, b...)); err == nil {
		t.Fatal("unsorted runs accepted")
	}
	// Overlapping: second run begins inside the first.
	c := mustEnc([]Run{{Off: 101, Data: []byte{9}}})
	if _, err := Decode(append(append([]byte(nil), a...), c...)); err == nil {
		t.Fatal("overlapping runs accepted")
	}
}

// The fundamental diff property: apply(twin, diff(twin, page)) == page.
func TestDiffApplyProperty(t *testing.T) {
	f := func(orig []byte, edits []struct {
		Off uint16
		Val byte
	}) bool {
		if len(orig) == 0 {
			orig = []byte{0}
		}
		if len(orig) > 4096 {
			orig = orig[:4096]
		}
		twin := Twin(orig)
		page := append([]byte(nil), orig...)
		for _, e := range edits {
			page[int(e.Off)%len(page)] = e.Val
		}
		runs, err := Diff(twin, page)
		if err != nil {
			return false
		}
		// Wire roundtrip included.
		enc, err := Encode(runs)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		restored := Twin(twin)
		if err := Apply(restored, dec); err != nil {
			return false
		}
		return bytes.Equal(restored, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingFormsMatch checks the zero-alloc entry points against the
// run-based ones: AppendDiff must emit the exact bytes of Encode(Diff()),
// and ApplyEncoded must patch identically to Decode+Apply, for random
// edit patterns.
func TestStreamingFormsMatch(t *testing.T) {
	f := func(orig []byte, edits []struct {
		Off uint16
		Val byte
	}) bool {
		if len(orig) == 0 {
			orig = []byte{0}
		}
		if len(orig) > 4096 {
			orig = orig[:4096]
		}
		twin := Twin(orig)
		page := append([]byte(nil), orig...)
		for _, e := range edits {
			page[int(e.Off)%len(page)] = e.Val
		}
		runs, err := Diff(twin, page)
		if err != nil {
			return false
		}
		want, err := Encode(runs)
		if err != nil {
			return false
		}
		got, err := AppendDiff(nil, twin, page)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, want) {
			return false
		}
		restored := Twin(twin)
		if err := ApplyEncoded(restored, got); err != nil {
			return false
		}
		return bytes.Equal(restored, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyEncodedAllOrNothing: a diff whose tail is corrupt must leave
// the page untouched — validation happens before any byte is written.
func TestApplyEncodedAllOrNothing(t *testing.T) {
	page := make([]byte, 256)
	twin := Twin(page)
	page[10] = 1
	page[200] = 2
	enc, err := AppendDiff(nil, twin, page)
	if err != nil {
		t.Fatal(err)
	}
	target := Twin(twin)
	bad := append(append([]byte(nil), enc...), 0xff) // truncated trailing header
	if err := ApplyEncoded(target, bad); err == nil {
		t.Fatal("corrupt diff accepted")
	}
	if !bytes.Equal(target, twin) {
		t.Fatal("failed apply modified the page")
	}
	// Out-of-range runs are also rejected before writing.
	short := target[:64]
	if err := ApplyEncoded(short, enc); err == nil {
		t.Fatal("out-of-range diff accepted")
	}
	if !bytes.Equal(short, twin[:64]) {
		t.Fatal("out-of-range apply modified the page")
	}
}

// TestDiffRoundTripAllocFree pins the lrc-mw steady state: with a
// pre-grown destination buffer, the encode+apply round trip the protocol
// performs on every release/fetch allocates nothing.
func TestDiffRoundTripAllocFree(t *testing.T) {
	page := make([]byte, 4096)
	twin := Twin(page)
	for i := 0; i < len(page); i += 97 {
		page[i] ^= 0x5a
	}
	buf := make([]byte, 0, 2*len(page))
	if avg := testing.AllocsPerRun(100, func() {
		enc, err := AppendDiff(buf[:0], twin, page)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyEncoded(page, enc); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("diff round trip allocates %.2f objects/op, want 0", avg)
	}
}

func TestCostsMatchPaper(t *testing.T) {
	// 250 µs for a 4 KB page, linear in size.
	if got := CreateCost(4096); got != 250*sim.Microsecond {
		t.Fatalf("CreateCost(4096) = %v", got)
	}
	if got := CreateCost(2048); got != 125*sim.Microsecond {
		t.Fatalf("CreateCost(2048) = %v", got)
	}
	if TwinCost(4096) <= 0 || ApplyCost(100) <= 0 {
		t.Fatal("non-positive auxiliary costs")
	}
}
