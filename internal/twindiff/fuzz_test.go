package twindiff

import (
	"bytes"
	"testing"
)

// FuzzEncodeDecode feeds Decode adversarial byte strings: it must reject
// garbage with an error (never panic or over-read), and any frame it
// accepts must be canonical — re-encodable, re-decodable, and
// order-insensitive under Apply because accepted runs never overlap.
func FuzzEncodeDecode(f *testing.F) {
	// Seed corpus: real encodings from Diff plus hand-built edge cases.
	seed := func(runs []Run) {
		enc, err := Encode(runs)
		if err != nil {
			panic(err)
		}
		f.Add(enc)
	}
	seed(nil)
	seed([]Run{{Off: 0, Data: []byte{1}}})
	seed([]Run{{Off: 3, Data: []byte{1, 2, 3}}, {Off: 4000, Data: []byte{9}}})
	seed([]Run{{Off: maxField, Data: []byte{7}}})
	page := make([]byte, 4096)
	twin := Twin(page)
	page[0] = 1
	page[100] = 2
	page[101] = 3
	page[4095] = 4
	runs, err := Diff(twin, page)
	if err != nil {
		panic(err)
	}
	seed(runs)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})                // short header
	f.Add([]byte{0, 0, 255, 0, 1})        // truncated data
	f.Add([]byte{5, 0, 0, 0})             // empty run
	f.Add([]byte{9, 0, 1, 0, 1, 0, 0, 1, 0, 2}) // unsorted pair

	f.Fuzz(func(t *testing.T, b []byte) {
		runs, err := Decode(b)
		if err != nil {
			return
		}
		// Accepted frames are canonical: sorted, non-overlapping, non-empty.
		end := 0
		for i, r := range runs {
			if len(r.Data) == 0 {
				t.Fatalf("accepted empty run %d", i)
			}
			if r.Off < end {
				t.Fatalf("accepted overlapping/unsorted run %d: off %d < end %d", i, r.Off, end)
			}
			end = r.Off + len(r.Data)
		}
		// And they round-trip exactly.
		enc, err := Encode(runs)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encode changed an accepted frame: %x -> %x", b, enc)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(dec) != len(runs) {
			t.Fatalf("round trip changed run count: %d -> %d", len(runs), len(dec))
		}
		// Apply to a page large enough for every run: must succeed and
		// reproduce exactly the decoded data at each offset.
		pg := make([]byte, end)
		if err := Apply(pg, dec); err != nil {
			t.Fatalf("apply of accepted frame failed: %v", err)
		}
		for _, r := range dec {
			if !bytes.Equal(pg[r.Off:r.Off+len(r.Data)], r.Data) {
				t.Fatalf("apply lost a run at %d", r.Off)
			}
		}
	})
}
