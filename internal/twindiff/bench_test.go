package twindiff

import "testing"

func benchDiff(b *testing.B, dirtyStride int) {
	page := make([]byte, 4096)
	twin := Twin(page)
	for i := 0; i < 4096; i += dirtyStride {
		page[i] = 0xFF
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diff(twin, page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffSparse: a page with 8 dirty words.
func BenchmarkDiffSparse(b *testing.B) { benchDiff(b, 512) }

// BenchmarkDiffDense: every 16th byte dirty (runs coalesce heavily).
func BenchmarkDiffDense(b *testing.B) { benchDiff(b, 16) }

// BenchmarkApply measures patch application.
func BenchmarkApply(b *testing.B) {
	page := make([]byte, 4096)
	twin := Twin(page)
	for i := 0; i < 4096; i += 128 {
		page[i] = 0xAA
	}
	runs, err := Diff(twin, page)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Apply(twin, runs); err != nil {
			b.Fatal(err)
		}
	}
}
