package faultnet

import (
	"testing"

	"millipage/internal/sim"
)

func TestEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan reports enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if (&Plan{Seed: 42, RTOMin: sim.Millisecond}).Enabled() {
		t.Error("seed/RTO-only plan reports enabled: those fields alone inject nothing")
	}
	cases := []Plan{
		{Drop: 0.1},
		{Dup: 0.1},
		{Reorder: 0.1, Jitter: sim.Millisecond},
		{Partitions: []Partition{{A: 1, B: 2, From: 0, Until: 10}}},
		{Crashes: []Crash{{Host: 0, At: 5, RestartAt: 10}}},
	}
	for i, pl := range cases {
		if !pl.Enabled() {
			t.Errorf("case %d: plan %+v reports disabled", i, pl)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Plan{
		Drop: 0.2, Dup: 0.1, Reorder: 0.3, Jitter: 2 * sim.Millisecond,
		Partitions: []Partition{{A: 0b0011, B: 0b1100, From: 10, Until: 20}},
		Crashes:    []Crash{{Host: 3, At: 100, RestartAt: 200}},
	}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Drop: 1.0},
		{Dup: -0.1},
		{Reorder: 0.5}, // no jitter
		{Jitter: -1},
		{Partitions: []Partition{{A: 0, B: 1, From: 0, Until: 10}}},        // empty side
		{Partitions: []Partition{{A: 1, B: 1, From: 0, Until: 10}}},        // overlap
		{Partitions: []Partition{{A: 1, B: 2, From: 10, Until: 10}}},       // never heals
		{Partitions: []Partition{{A: 1, B: 1 << 10, From: 0, Until: 10}}},  // host out of range
		{Crashes: []Crash{{Host: 9, At: 0, RestartAt: 10}}},                // host out of range
		{Crashes: []Crash{{Host: 0, At: 10, RestartAt: 10}}},               // never restarts
	}
	for i, pl := range bad {
		if err := pl.Validate(4); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, pl)
		}
	}
}

// TestInjectorDeterminism: two injectors with the same plan and seed
// draw the same decision stream; a different seed gives a different one.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Drop: 0.3, Dup: 0.2, Reorder: 0.4, Jitter: 3 * sim.Millisecond}
	draw := func(seed int64) []int64 {
		in, err := NewInjector(plan, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for i := 0; i < 500; i++ {
			v := int64(0)
			if in.DropFrame() {
				v |= 1
			}
			if in.DupFrame() {
				v |= 2
			}
			out = append(out, v<<32|int64(in.ExtraDelay()))
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different decision streams")
	}
	if !diff {
		t.Error("different seeds produced identical decision streams (suspicious)")
	}
}

// TestInjectorSeedIndependence: the plan seed pins the stream regardless
// of the cluster seed.
func TestInjectorSeedIndependence(t *testing.T) {
	plan := Plan{Seed: 99, Drop: 0.5}
	in1, _ := NewInjector(plan, 2, 1)
	in2, _ := NewInjector(plan, 2, 1234)
	for i := 0; i < 200; i++ {
		if in1.DropFrame() != in2.DropFrame() {
			t.Fatal("plan seed did not pin the decision stream")
		}
	}
}

func TestPartitioned(t *testing.T) {
	plan := Plan{Partitions: []Partition{
		{A: 0b0001, B: 0b0110, From: 100, Until: 200},
		{A: 0b1000, B: 0b0001, From: 150, Until: 250},
	}}
	in, err := NewInjector(plan, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		at   sim.Time
		want bool
	}{
		{0, 1, 99, false},   // before the window
		{0, 1, 100, true},   // window start is inclusive
		{1, 0, 150, true},   // symmetric
		{0, 2, 199, true},   // last instant
		{0, 1, 200, false},  // healed
		{1, 2, 150, false},  // same side
		{3, 0, 160, true},   // second window
		{3, 1, 160, false},  // pair not split by any window
		{0, 3, 249, true},   // second window, reversed
	}
	for _, c := range cases {
		if got := in.Partitioned(c.a, c.b, c.at); got != c.want {
			t.Errorf("Partitioned(%d,%d,%v) = %v, want %v", c.a, c.b, c.at, got, c.want)
		}
	}
}

func TestRTOBounds(t *testing.T) {
	var pl Plan
	lo, hi := pl.RTOBounds()
	if lo != DefaultRTOMin || hi != DefaultRTOMax {
		t.Errorf("zero plan RTO bounds = %v,%v; want defaults", lo, hi)
	}
	pl = Plan{RTOMin: 10 * sim.Millisecond, RTOMax: 5 * sim.Millisecond}
	lo, hi = pl.RTOBounds()
	if hi < lo {
		t.Errorf("RTO bounds inverted: %v > %v", lo, hi)
	}
}
