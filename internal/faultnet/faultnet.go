// Package faultnet is the deterministic fault-injection policy for the
// simulated cluster fabric. A Plan describes what can go wrong on the
// wire — per-frame drop/duplicate/reorder probabilities, extra delay
// jitter, scheduled bidirectional partitions that heal at a virtual
// time, and host crash/restart events — and an Injector turns the plan
// into a stream of per-frame decisions drawn from a seeded RNG, so a
// run under faults replays bit-identically for a given (plan, seed).
//
// The package is pure policy: it owns no wires and schedules no events.
// fastmsg consults the injector at transmit and arrival time and layers
// a sequence-numbered ack/retransmit protocol on top (see fastmsg's
// reliable.go); the cluster runtime schedules the crash and restart
// events and drives recovery. A nil Plan — or a Plan with every rate
// zero and no schedule — means the fabric behaves exactly as the
// paper's reliable FIFO FastMessages, on the untouched clean path.
package faultnet

import (
	"fmt"
	"math/rand"

	"millipage/internal/sim"
)

// Plan describes one run's fault schedule. The zero value is the clean
// fabric (Enabled returns false).
type Plan struct {
	// Seed, when nonzero, overrides the cluster seed for the injector's
	// RNG stream. Either way the stream is independent of the engine's
	// RNG, so enabling faults never perturbs sweeper-timer draws.
	Seed int64

	// Per-frame probabilities in [0,1). Every transmitted frame —
	// protocol messages, bulk data and transport acks alike — draws
	// independently.
	Drop float64 // frame vanishes on the wire
	Dup  float64 // frame is delivered twice

	// Reorder is the probability a frame is held back by an extra
	// uniform delay in (0, Jitter], letting later frames overtake it.
	// Reorder > 0 requires Jitter > 0.
	Reorder float64
	Jitter  sim.Duration

	// Partitions are scheduled bidirectional cuts: while From <= now <
	// Until, no frame crosses between a host in mask A and a host in
	// mask B (either direction). Windows may overlap.
	Partitions []Partition

	// Crashes are scheduled host failures. See the Crash doc for the
	// recovery model.
	Crashes []Crash

	// Retransmit timer bounds for the reliability layer; zero selects
	// the defaults (RTOMin 3ms, RTOMax 50ms of virtual time).
	RTOMin sim.Duration
	RTOMax sim.Duration
}

// Partition is one scheduled bidirectional cut between host sets A and B
// (bitmasks, bit i = host i). It heals at Until.
type Partition struct {
	A, B uint64
	From sim.Time
	Until sim.Time
}

// Crash takes a host's network stack down at At and restarts it at
// RestartAt. The model is fail-restart with durable memory: the host's
// memory contents, page protections and directory state survive (the
// production analogue is a checkpoint or battery-backed store), but its
// network state does not — frames on the wire to it are lost, received-
// but-unserviced messages are discarded, and undelivered timer state is
// gone. The reliability layer's durable session floors plus the cluster
// runtime's recovery hook (MPT replica rebuild, in-flight fault
// re-issue) bring the host back into the protocol.
type Crash struct {
	Host      int
	At        sim.Time
	RestartAt sim.Time
}

// DefaultRTOMin and DefaultRTOMax bound the reliability layer's
// exponential-backoff retransmission timer.
const (
	DefaultRTOMin = 3 * sim.Millisecond
	DefaultRTOMax = 50 * sim.Millisecond
)

// Enabled reports whether the plan injects any fault at all. A disabled
// plan leaves the transport on its clean path: no sequence numbers, no
// acks, zero allocation and zero virtual-time cost.
func (pl *Plan) Enabled() bool {
	if pl == nil {
		return false
	}
	return pl.Drop > 0 || pl.Dup > 0 || pl.Reorder > 0 ||
		len(pl.Partitions) > 0 || len(pl.Crashes) > 0
}

// Validate checks the plan against a cluster of `hosts` hosts.
func (pl *Plan) Validate(hosts int) error {
	if pl == nil {
		return nil
	}
	checkProb := func(name string, p float64) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("faultnet: %s = %v out of range [0,1)", name, p)
		}
		return nil
	}
	if err := checkProb("Drop", pl.Drop); err != nil {
		return err
	}
	if err := checkProb("Dup", pl.Dup); err != nil {
		return err
	}
	if err := checkProb("Reorder", pl.Reorder); err != nil {
		return err
	}
	if pl.Jitter < 0 {
		return fmt.Errorf("faultnet: negative Jitter %v", pl.Jitter)
	}
	if pl.Reorder > 0 && pl.Jitter == 0 {
		return fmt.Errorf("faultnet: Reorder = %v needs a nonzero Jitter", pl.Reorder)
	}
	allHosts := uint64(1)<<uint(hosts) - 1
	if hosts >= 64 {
		allHosts = ^uint64(0)
	}
	for i, pt := range pl.Partitions {
		if pt.A == 0 || pt.B == 0 {
			return fmt.Errorf("faultnet: partition %d has an empty side", i)
		}
		if pt.A&^allHosts != 0 || pt.B&^allHosts != 0 {
			return fmt.Errorf("faultnet: partition %d names hosts outside the %d-host cluster", i, hosts)
		}
		if pt.A&pt.B != 0 {
			return fmt.Errorf("faultnet: partition %d has overlapping sides", i)
		}
		if pt.Until <= pt.From {
			return fmt.Errorf("faultnet: partition %d never heals (From %v, Until %v)", i, pt.From, pt.Until)
		}
	}
	for i, c := range pl.Crashes {
		if c.Host < 0 || c.Host >= hosts {
			return fmt.Errorf("faultnet: crash %d names host %d outside the %d-host cluster", i, c.Host, hosts)
		}
		if c.RestartAt <= c.At {
			return fmt.Errorf("faultnet: crash %d never restarts (At %v, RestartAt %v)", i, c.At, c.RestartAt)
		}
	}
	return nil
}

// RTOBounds returns the plan's retransmission-timer bounds with
// defaults applied.
func (pl *Plan) RTOBounds() (lo, hi sim.Duration) {
	lo, hi = pl.RTOMin, pl.RTOMax
	if lo <= 0 {
		lo = DefaultRTOMin
	}
	if hi < lo {
		hi = DefaultRTOMax
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Injector is the per-run decision stream for a plan: a private seeded
// RNG plus the plan's schedule. All methods must be called from
// simulation context (the engine is serial), in which case identical
// call sequences draw identical decisions.
type Injector struct {
	plan  Plan
	hosts int
	rng   *rand.Rand
}

// NewInjector builds the injector for plan on a `hosts`-host cluster.
// clusterSeed seeds the decision stream unless the plan pins its own
// seed; the stream is mixed so it never collides with the engine RNG's.
func NewInjector(plan Plan, hosts int, clusterSeed int64) (*Injector, error) {
	if err := plan.Validate(hosts); err != nil {
		return nil, err
	}
	seed := plan.Seed
	if seed == 0 {
		seed = clusterSeed
	}
	// splitmix64-style scramble: a distinct, well-spread stream per seed.
	mixed := uint64(seed) + 0x9e3779b97f4a7c15
	mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9
	mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111eb
	mixed ^= mixed >> 31
	return &Injector{
		plan:  plan,
		hosts: hosts,
		rng:   rand.New(rand.NewSource(int64(mixed))),
	}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// DropFrame draws whether the next transmitted frame is lost.
func (in *Injector) DropFrame() bool {
	return in.plan.Drop > 0 && in.rng.Float64() < in.plan.Drop
}

// DupFrame draws whether the next transmitted frame is delivered twice.
func (in *Injector) DupFrame() bool {
	return in.plan.Dup > 0 && in.rng.Float64() < in.plan.Dup
}

// ExtraDelay draws the frame's reorder jitter: zero for most frames,
// uniform in (0, Jitter] with probability Reorder.
func (in *Injector) ExtraDelay() sim.Duration {
	if in.plan.Reorder == 0 || in.rng.Float64() >= in.plan.Reorder {
		return 0
	}
	return 1 + sim.Duration(in.rng.Int63n(int64(in.plan.Jitter)))
}

// Partitioned reports whether hosts a and b are on opposite sides of an
// active partition window at time now.
func (in *Injector) Partitioned(a, b int, now sim.Time) bool {
	if len(in.plan.Partitions) == 0 {
		return false
	}
	ba, bb := uint64(1)<<uint(a), uint64(1)<<uint(b)
	for _, pt := range in.plan.Partitions {
		if now < pt.From || now >= pt.Until {
			continue
		}
		if (pt.A&ba != 0 && pt.B&bb != 0) || (pt.A&bb != 0 && pt.B&ba != 0) {
			return true
		}
	}
	return false
}

// Crashes returns the plan's crash schedule.
func (in *Injector) Crashes() []Crash { return in.plan.Crashes }
