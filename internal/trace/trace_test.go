package trace

import (
	"bytes"
	"strings"
	"testing"

	"millipage/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(8)
	r.Recordf(100, Send, 0, 1, "READ_REQUEST mp=%d", 3)
	r.Recordf(200, Fault, 1, -1, "read fault @%#x", 0x2000)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].At != 100 || evs[0].Kind != Send || evs[0].Peer != 1 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if !strings.Contains(evs[1].String(), "FAULT") {
		t.Fatalf("render: %s", evs[1])
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Recordf(sim.Time(i), Note, 0, -1, "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Chronological order, the last four.
	for i, e := range evs {
		want := "e" + string(rune('6'+i))
		if e.What != want {
			t.Fatalf("evs[%d] = %q, want %q", i, e.What, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(8)
	r.Filter = func(e Event) bool { return e.Kind == Fault }
	r.Recordf(1, Send, 0, 1, "dropped")
	r.Recordf(2, Fault, 0, -1, "kept")
	if r.Len() != 1 || r.Events()[0].What != "kept" {
		t.Fatalf("filter failed: %+v", r.Events())
	}
}

func TestDumpAndGrep(t *testing.T) {
	r := NewRecorder(2)
	r.Recordf(1, Send, 0, 1, "alpha")
	r.Recordf(2, Send, 1, 0, "beta")
	r.Recordf(3, Send, 0, 1, "gamma")
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "gamma") || !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dump:\n%s", out)
	}
	if hits := r.Grep("beta"); len(hits) != 1 {
		t.Fatalf("grep = %+v", hits)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
	r.Recordf(0, Note, 0, -1, "x")
}
