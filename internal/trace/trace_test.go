package trace

import (
	"bytes"
	"strings"
	"testing"

	"millipage/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(8)
	r.Recordf(100, Send, 0, 1, "READ_REQUEST mp=%d", 3)
	r.Recordf(200, Fault, 1, -1, "read fault @%#x", 0x2000)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].At != 100 || evs[0].Kind != Send || evs[0].Peer != 1 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if !strings.Contains(evs[1].String(), "FAULT") {
		t.Fatalf("render: %s", evs[1])
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Recordf(sim.Time(i), Note, 0, -1, "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Chronological order, the last four.
	for i, e := range evs {
		want := "e" + string(rune('6'+i))
		if e.What != want {
			t.Fatalf("evs[%d] = %q, want %q", i, e.What, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(8)
	r.Filter = func(e Event) bool { return e.Kind == Fault }
	r.Recordf(1, Send, 0, 1, "dropped")
	r.Recordf(2, Fault, 0, -1, "kept")
	if r.Len() != 1 || r.Events()[0].What != "kept" {
		t.Fatalf("filter failed: %+v", r.Events())
	}
}

func TestDumpAndGrep(t *testing.T) {
	r := NewRecorder(2)
	r.Recordf(1, Send, 0, 1, "alpha")
	r.Recordf(2, Send, 1, 0, "beta")
	r.Recordf(3, Send, 0, 1, "gamma")
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "gamma") || !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dump:\n%s", out)
	}
	if hits := r.Grep("beta"); len(hits) != 1 {
		t.Fatalf("grep = %+v", hits)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
	r.Recordf(0, Note, 0, -1, "x")
	r.RecordMsg(0, Send, 0, 1, -1, 0, 0, 0)
	r.RecordFault(0, 0, true, 0)
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Grep("anything") != nil {
		t.Fatal("nil recorder Grep returned events")
	}
}

// fixtureBase is the test op table's base code, registered once — the
// registry is append-only, so repeated registration per test would leak
// a copy of the table per call.
var fixtureBase = RegisterOps([]string{"READ_REQUEST", "WRITE_REQUEST", "READ_FWD"})

// structuredFixture records a small mixed protocol history through the
// typed entry points, as the DSM layer does.
func structuredFixture() *Recorder {
	r := NewRecorder(32)
	r.RecordMsg(100, Send, 0, 2, 1, fixtureBase+0, 7, 0x2000) // READ_REQUEST mp=7, h0->h2, home h1
	r.RecordMsg(150, Handle, 2, 0, 1, fixtureBase+0, 7, 0)    // its handler
	r.RecordMsg(200, Send, 1, 3, 1, fixtureBase+1, 9, 0x3000) // WRITE_REQUEST mp=9
	r.RecordFault(250, 3, false, 0x4000)                      // read fault on h3
	r.RecordFault(300, 3, true, 0x4100)                       // write fault on h3
	r.Recordf(400, Note, 0, -1, "free-form mp=7 note")
	return r
}

func TestGrepStructuredKind(t *testing.T) {
	r := structuredFixture()
	if got := r.Grep("SEND"); len(got) != 2 {
		t.Fatalf("SEND hits = %d, want 2: %+v", len(got), got)
	}
	faults := r.Grep("FAULT")
	if len(faults) != 2 || faults[0].Host != 3 {
		t.Fatalf("FAULT hits = %+v", faults)
	}
	if got := r.Grep("write fault"); len(got) != 1 || got[0].At != 300 {
		t.Fatalf("write fault hits = %+v", got)
	}
}

func TestGrepStructuredHost(t *testing.T) {
	r := structuredFixture()
	// h1 is never a source or destination here, only a home — homes must
	// still match.
	if got := r.Grep("h1"); len(got) != 3 {
		t.Fatalf("h1 hits = %d, want 3 (two sends + handle via home): %+v", len(got), got)
	}
	if got := r.Grep("h3"); len(got) != 3 {
		t.Fatalf("h3 hits = %d, want 3 (send dest + two faults): %+v", len(got), got)
	}
	if got := r.Grep("h9"); len(got) != 0 {
		t.Fatalf("h9 hits = %+v, want none", got)
	}
}

func TestGrepStructuredMinipage(t *testing.T) {
	r := structuredFixture()
	// mp=7 matches the typed message events; the free-form note mentions
	// "mp=7" only as text and must not match a structured minipage query.
	got := r.Grep("mp=7")
	if len(got) != 2 {
		t.Fatalf("mp=7 hits = %d, want 2: %+v", len(got), got)
	}
	for _, e := range got {
		if !e.Structured || e.MP != 7 {
			t.Fatalf("mp=7 matched %+v", e)
		}
	}
	if got := r.Grep("mp=9"); len(got) != 1 || got[0].Kind != Send {
		t.Fatalf("mp=9 hits = %+v", got)
	}
}

func TestGrepOpName(t *testing.T) {
	r := structuredFixture()
	if got := r.Grep("WRITE_REQUEST"); len(got) != 1 || got[0].MP != 9 {
		t.Fatalf("WRITE_REQUEST hits = %+v", got)
	}
	// Substring of an op name.
	if got := r.Grep("REQUEST"); len(got) != 3 {
		t.Fatalf("REQUEST hits = %d, want 3: %+v", len(got), got)
	}
}

// TestStructuredRendering pins the historical text format produced from
// typed fields: instrumentation stores codes, rendering must still look
// exactly as the eager formatter did.
func TestStructuredRendering(t *testing.T) {
	r := structuredFixture()
	evs := r.Events()
	if s := evs[0].String(); !strings.Contains(s, "READ_REQUEST mp=7 addr=0x2000") ||
		!strings.Contains(s, "h0->h2") || !strings.Contains(s, "home=h1") {
		t.Fatalf("send render: %s", s)
	}
	if s := evs[1].String(); !strings.Contains(s, "READ_REQUEST mp=7") ||
		strings.Contains(s, "addr=") {
		t.Fatalf("handle render (no addr expected): %s", s)
	}
	if s := evs[3].String(); !strings.Contains(s, "read fault @0x4000") {
		t.Fatalf("fault render: %s", s)
	}
}

// TestRecordMsgAllocFree pins the enabled-path cost: recording a typed
// event into the ring performs no heap allocation.
func TestRecordMsgAllocFree(t *testing.T) {
	r := NewRecorder(64)
	if avg := testing.AllocsPerRun(1000, func() {
		r.RecordMsg(1, Send, 0, 1, 2, 3, 4, 0x1000)
	}); avg != 0 {
		t.Fatalf("RecordMsg allocates %.2f objects/event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r.RecordFault(1, 0, true, 0x1000)
	}); avg != 0 {
		t.Fatalf("RecordFault allocates %.2f objects/event, want 0", avg)
	}
}

// TestRecordfArenaNoAlias pins the arena contract: an Events() snapshot
// must stay intact while later Recordf calls rewrite the slot buffers the
// snapshot's events once aliased.
func TestRecordfArenaNoAlias(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 4; i++ {
		r.Recordf(sim.Time(i), Note, 0, -1, "first-%d", i)
	}
	snap := r.Events()
	for i := 0; i < 8; i++ {
		r.Recordf(sim.Time(100+i), Note, 0, -1, "second-%d", i)
	}
	for i, e := range snap {
		want := "first-" + string(rune('0'+i))
		if e.What != want {
			t.Fatalf("snapshot[%d].What = %q after wrap, want %q", i, e.What, want)
		}
	}
	// Slot buffers must be distinct: two retained events may never share
	// payload storage.
	seen := map[*byte]int{}
	for i, e := range r.events {
		if len(e.what) == 0 {
			continue
		}
		p := &e.what[0]
		if j, dup := seen[p]; dup {
			t.Fatalf("slots %d and %d share an arena buffer", j, i)
		}
		seen[p] = i
	}
}

// TestRecordfArenaSteadyAllocs pins the arena payoff: once the ring has
// wrapped, a no-argument Recordf reuses its slot buffer and performs no
// heap allocation at all.
func TestRecordfArenaSteadyAllocs(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 16; i++ { // warm every slot buffer
		r.Recordf(sim.Time(i), Note, 0, -1, "a reasonably long warmup payload")
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r.Recordf(1, Note, 0, -1, "steady-state note payload")
	}); avg != 0 {
		t.Fatalf("Recordf allocates %.2f objects/event in steady state, want 0", avg)
	}
}

// TestResetRecycles checks that a Reset recorder renders a repeated
// history identically — the recycled arena buffers leave no residue.
func TestResetRecycles(t *testing.T) {
	r := NewRecorder(8)
	run := func() string {
		r.Recordf(1, Send, 0, 1, "payload %d and %#x", 42, 0xbeef)
		r.RecordMsg(2, Handle, 1, 0, -1, fixtureBase+2, 5, 0)
		var buf bytes.Buffer
		r.Dump(&buf)
		return buf.String()
	}
	first := run()
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("Reset left Len=%d Total=%d", r.Len(), r.Total())
	}
	second := run()
	if first != second {
		t.Fatalf("recycled recorder rendered differently:\n%s\nvs\n%s", first, second)
	}
}

// BenchmarkRecordMsgDisabled measures the instrumentation guard as the
// DSM hot path uses it: a nil recorder must cost a branch, nothing more.
func BenchmarkRecordMsgDisabled(b *testing.B) {
	b.ReportAllocs()
	var r *Recorder
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.RecordMsg(sim.Time(i), Send, 0, 1, 2, 3, 4, 0x1000)
		}
	}
}

// BenchmarkRecordMsgEnabled measures the typed recording path.
func BenchmarkRecordMsgEnabled(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder(1 << 12)
	for i := 0; i < b.N; i++ {
		r.RecordMsg(sim.Time(i), Send, 0, 1, 2, 3, 4, 0x1000)
	}
}
