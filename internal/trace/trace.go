// Package trace is a lightweight event recorder for the simulated
// cluster: protocol messages, faults and protection changes, timestamped
// on the virtual clock. It exists for debugging protocol issues and for
// the -trace mode of the tools; recording is allocation-bounded (a ring
// buffer) so it can stay on during long runs.
package trace

import (
	"fmt"
	"io"
	"strings"

	"millipage/internal/sim"
)

// Kind classifies an event.
type Kind uint8

const (
	Send Kind = iota
	Deliver
	Handle
	Fault
	Protect
	Note
)

var kindNames = [...]string{"SEND", "DELIVER", "HANDLE", "FAULT", "PROTECT", "NOTE"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Host int    // primary host (source for sends, location otherwise)
	Peer int    // destination for sends/delivers; -1 otherwise
	Home int    // home host of the minipage involved; -1 when inapplicable
	What string // free-form detail ("READ_REQUEST mp=12", "write fault @0x2000_0040")
}

func (e Event) String() string {
	home := ""
	if e.Home >= 0 {
		home = fmt.Sprintf("  home=h%d", e.Home)
	}
	if e.Peer >= 0 {
		return fmt.Sprintf("%12v  %-8s h%d->h%d  %s%s", e.At, e.Kind, e.Host, e.Peer, e.What, home)
	}
	return fmt.Sprintf("%12v  %-8s h%d       %s%s", e.At, e.Kind, e.Host, e.What, home)
}

// Recorder is a bounded ring buffer of events. The zero value is
// unusable; create one with NewRecorder. It is not safe for concurrent
// OS-thread use, which matches the engine's one-process-at-a-time
// execution model.
type Recorder struct {
	events  []Event
	next    int
	wrapped bool
	total   uint64

	// Filter, if set, drops events for which it returns false.
	Filter func(Event) bool
}

// NewRecorder returns a recorder holding the last cap events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Record appends an event (subject to the filter).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.total++
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// Recordf is Record with formatting (no home host attached).
func (r *Recorder) Recordf(at sim.Time, kind Kind, host, peer int, format string, args ...any) {
	r.RecordfHome(at, kind, host, peer, -1, format, args...)
}

// RecordfHome is Recordf with the home host of the involved minipage —
// the host whose directory shard runs the transaction (host 0 under
// central management).
func (r *Recorder) RecordfHome(at sim.Time, kind Kind, host, peer, home int, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(Event{At: at, Kind: kind, Host: host, Peer: peer, Home: home, What: fmt.Sprintf(format, args...)})
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r.wrapped {
		return len(r.events)
	}
	return r.next
}

// Total reports how many events were recorded overall (including those
// that fell off the ring).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e.String())
	}
	if dropped := r.total - uint64(r.Len()); dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", dropped)
	}
}

// Grep returns the retained events whose rendering contains substr.
func (r *Recorder) Grep(substr string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if strings.Contains(e.String(), substr) {
			out = append(out, e)
		}
	}
	return out
}
