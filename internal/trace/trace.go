// Package trace is a lightweight event recorder for the simulated
// cluster: protocol messages, faults and protection changes, timestamped
// on the virtual clock. It exists for debugging protocol issues and for
// the -trace mode of the tools; recording is allocation-bounded (a ring
// buffer) so it can stay on during long runs.
//
// The hot path stores typed fields (kind, hosts, operation code,
// minipage id, address) in the ring and defers all string formatting to
// Dump/Events/String time: recording an event performs no allocation,
// and a nil *Recorder is inert, so instrumented code guards its
// field-gathering work behind Enabled().
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"millipage/internal/sim"
)

// Kind classifies an event.
type Kind uint8

const (
	Send Kind = iota
	Deliver
	Handle
	Fault
	Protect
	Note
)

var kindNames = [...]string{"SEND", "DELIVER", "HANDLE", "FAULT", "PROTECT", "NOTE"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// opNames maps protocol operation codes (Event.Op) to display names. It
// is appended to once per protocol package, from init functions, and
// read-only afterwards.
var opNames []string

// RegisterOps appends a protocol's operation-name table to the shared
// registry and returns the code of its first entry. Each protocol
// package registers once from an init function and records events as
// base+op, so several protocols (dsm, ivy, lrc) coexist in one binary
// without clobbering each other's names.
func RegisterOps(names []string) uint16 {
	base := len(opNames)
	opNames = append(opNames, names...)
	return uint16(base)
}

func opName(op uint16) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op(" + strconv.Itoa(int(op)) + ")"
}

// Fault-kind codes for Event.Op when Kind == Fault.
const (
	FaultRead  uint16 = 0
	FaultWrite uint16 = 1
)

// Event is one recorded occurrence. Message and fault events carry their
// payload in the typed fields (Op, MP, Addr) with Structured set; What
// holds free-form detail for Note events and the formatted legacy API,
// and overrides the typed rendering when non-empty.
type Event struct {
	At   sim.Time
	Kind Kind
	Host int // primary host (source for sends, location otherwise)
	Peer int // destination for sends/delivers; -1 otherwise
	Home int // home host of the minipage involved; -1 when inapplicable

	Op         uint16 // protocol op code (RegisterOpNames); fault kind for Fault events
	MP         int32  // minipage id; -1 when inapplicable
	Addr       uint64
	Structured bool // typed fields are meaningful; render from them

	What string // free-form detail ("READ_REQUEST mp=12", "write fault @0x2000_0040")

	// what holds the formatted payload of Recordf events while the event
	// sits in the ring: it aliases the recorder's per-slot arena buffer,
	// which is reused when the slot is overwritten. Events() materializes
	// it into What, so snapshots never alias recorder-owned memory.
	what []byte
}

// detail renders the event-specific text: What verbatim when set,
// otherwise the structured fields in the historical format.
func (e Event) detail() string {
	if e.What != "" || !e.Structured {
		if e.What == "" && len(e.what) > 0 {
			return string(e.what)
		}
		return e.What
	}
	switch e.Kind {
	case Fault:
		word := "read"
		if e.Op == FaultWrite {
			word = "write"
		}
		return fmt.Sprintf("%s fault @%#x", word, e.Addr)
	case Handle, Deliver:
		return fmt.Sprintf("%s mp=%d", opName(e.Op), e.MP)
	default:
		return fmt.Sprintf("%s mp=%d addr=%#x", opName(e.Op), e.MP, e.Addr)
	}
}

func (e Event) String() string {
	home := ""
	if e.Home >= 0 {
		home = fmt.Sprintf("  home=h%d", e.Home)
	}
	if e.Peer >= 0 {
		return fmt.Sprintf("%12v  %-8s h%d->h%d  %s%s", e.At, e.Kind, e.Host, e.Peer, e.detail(), home)
	}
	return fmt.Sprintf("%12v  %-8s h%d       %s%s", e.At, e.Kind, e.Host, e.detail(), home)
}

// Recorder is a bounded ring buffer of events. The zero value is
// unusable; create one with NewRecorder. It is not safe for concurrent
// OS-thread use, which matches the engine's one-process-at-a-time
// execution model.
type Recorder struct {
	events  []Event
	next    int
	wrapped bool
	total   uint64

	// bufs is the payload arena for Recordf events: one reusable byte
	// buffer per ring slot, created on first use. A slot's buffer is
	// reformatted in place when the ring wraps over it, so a long traced
	// run reaches a steady state with no per-event allocation beyond the
	// formatter's own argument handling.
	bufs [][]byte

	// Filter, if set, drops events for which it returns false.
	Filter func(Event) bool
}

// NewRecorder returns a recorder holding the last cap events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded. Instrumented code
// checks it before gathering event fields so that tracing costs nothing
// when no recorder is attached (the receiver may be nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends an event (subject to the filter). It does not allocate.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.store(e)
}

// store appends e to the ring unconditionally (the caller has already
// applied the filter).
func (r *Recorder) store(e Event) {
	r.total++
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// RecordMsg records a protocol-message event (Send/Deliver/Handle) from
// typed fields, deferring all formatting to render time.
func (r *Recorder) RecordMsg(at sim.Time, kind Kind, host, peer, home int, op uint16, mp int, addr uint64) {
	if r == nil {
		return
	}
	r.Record(Event{At: at, Kind: kind, Host: host, Peer: peer, Home: home,
		Op: op, MP: int32(mp), Addr: addr, Structured: true})
}

// RecordFault records a read/write fault event from typed fields.
func (r *Recorder) RecordFault(at sim.Time, host int, write bool, addr uint64) {
	if r == nil {
		return
	}
	op := FaultRead
	if write {
		op = FaultWrite
	}
	r.Record(Event{At: at, Kind: Fault, Host: host, Peer: -1, Home: -1,
		Op: op, Addr: addr, Structured: true})
}

// Recordf is Record with formatting (no home host attached). The
// formatted payload lands in the recorder's per-slot arena rather than a
// fresh string, so steady-state recording is allocation-free apart from
// the formatter's argument boxing; it remains for free-form notes and
// callers without a protocol op code.
func (r *Recorder) Recordf(at sim.Time, kind Kind, host, peer int, format string, args ...any) {
	r.RecordfHome(at, kind, host, peer, -1, format, args...)
}

// RecordfHome is Recordf with the home host of the involved minipage —
// the host whose directory shard runs the transaction (host 0 under
// central management).
func (r *Recorder) RecordfHome(at sim.Time, kind Kind, host, peer, home int, format string, args ...any) {
	if r == nil {
		return
	}
	if r.bufs == nil {
		r.bufs = make([][]byte, len(r.events))
	}
	buf := fmt.Appendf(r.bufs[r.next][:0], format, args...)
	r.bufs[r.next] = buf // keep grown capacity even if the filter drops the event
	e := Event{At: at, Kind: kind, Host: host, Peer: peer, Home: home, what: buf}
	if r.Filter != nil {
		// The filter sees a materialized copy: handing it the arena slice
		// would let it retain payload bytes the next wrap rewrites.
		mat := e
		mat.What = string(mat.what)
		mat.what = nil
		if !r.Filter(mat) {
			return
		}
	}
	r.store(e)
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r.wrapped {
		return len(r.events)
	}
	return r.next
}

// Total reports how many events were recorded overall (including those
// that fell off the ring).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in chronological order. Arena-held
// payloads are materialized into What, so the snapshot stays valid after
// further recording reuses the underlying buffers.
func (r *Recorder) Events() []Event {
	var out []Event
	if !r.wrapped {
		out = make([]Event, r.next)
		copy(out, r.events[:r.next])
	} else {
		out = make([]Event, 0, len(r.events))
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	}
	for i := range out {
		if len(out[i].what) > 0 {
			out[i].What = string(out[i].what)
			out[i].what = nil
		}
	}
	return out
}

// Reset discards all retained events and the total count but keeps the
// ring and the payload arena, so a recorder can be recycled across runs
// without re-allocating.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	clear(r.events)
	r.next = 0
	r.wrapped = false
	r.total = 0
}

// Dump writes the retained events to w, one per line.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e.String())
	}
	if dropped := r.total - uint64(r.Len()); dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", dropped)
	}
}

// Grep returns the retained events matching query, testing structured
// fields instead of rendering each event to a string. Supported query
// forms:
//
//   - "h<N>"    — host N appears as source, peer, or home
//   - "mp=<N>"  — the event concerns minipage N
//   - a kind name ("SEND", "FAULT", ...) — all events of that kind
//   - anything else — substring of the op name, the fault description
//     ("read fault" / "write fault"), or the free-form What text
func (r *Recorder) Grep(query string) []Event {
	if r == nil {
		return nil
	}
	match := compileQuery(query)
	var out []Event
	for _, e := range r.Events() {
		if match(e) {
			out = append(out, e)
		}
	}
	return out
}

// compileQuery parses query once and returns the per-event predicate.
func compileQuery(query string) func(Event) bool {
	if n, ok := strings.CutPrefix(query, "h"); ok {
		if id, err := strconv.Atoi(n); err == nil {
			return func(e Event) bool {
				return e.Host == id || e.Peer == id || e.Home == id
			}
		}
	}
	if n, ok := strings.CutPrefix(query, "mp="); ok {
		if mp, err := strconv.Atoi(n); err == nil {
			return func(e Event) bool {
				return e.Structured && e.Kind != Fault && e.MP == int32(mp)
			}
		}
	}
	for k, name := range kindNames {
		if query == name {
			k := Kind(k)
			return func(e Event) bool { return e.Kind == k }
		}
	}
	return func(e Event) bool {
		if strings.Contains(e.What, query) {
			return true
		}
		if !e.Structured {
			return false
		}
		if e.Kind == Fault {
			word := "read fault"
			if e.Op == FaultWrite {
				word = "write fault"
			}
			return strings.Contains(word, query)
		}
		return strings.Contains(opName(e.Op), query)
	}
}
