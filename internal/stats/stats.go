// Package stats provides small, allocation-free statistics helpers for
// the simulation: logarithmic latency histograms with quantile queries,
// and running aggregates. The paper reports means ("an average delay of
// about 750us"), but tail behaviour is what the NT timer pathology
// actually produces — the histograms make it visible.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"millipage/internal/sim"
)

// Histogram is a log-scale latency histogram: bucket i covers durations
// in [2^i, 2^(i+1)) microsecond-eighths, giving ~12% resolution from
// 125 ns to over an hour with 64 buckets. The zero value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     sim.Duration
	max     sim.Duration
	min     sim.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	// Units of 125ns so sub-microsecond costs still resolve.
	v := uint64(d) / 125
	if v == 0 {
		return 0
	}
	b := 63 - leadingZeros(v)
	if b > 63 {
		b = 63
	}
	return b
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound of bucket i.
func bucketLow(i int) sim.Duration {
	return sim.Duration(uint64(125) << uint(i))
}

// Add records one observation.
func (h *Histogram) Add(d sim.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if h.count == 1 || d < h.min {
		h.min = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Max reports the largest observation.
func (h *Histogram) Max() sim.Duration { return h.max }

// Min reports the smallest observation.
func (h *Histogram) Min() sim.Duration { return h.min }

// Quantile reports an upper bound on the q-quantile (0 < q <= 1) at the
// histogram's bucket resolution (~2x).
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			// Upper edge of the bucket bounds the quantile.
			return bucketLow(i + 1)
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.count > 0 && (h.count == other.count || other.min < h.min) {
		h.min = other.min
	}
}

// P50, P99 and P999 are the serving-report quantiles, as Quantile
// shorthands. P999 is the one the bucket layout was sized for: with
// ~12% resolution buckets the extreme tail still lands in its own
// bucket instead of saturating a coarse top bin.
func (h *Histogram) P50() sim.Duration  { return h.Quantile(0.50) }
func (h *Histogram) P99() sim.Duration  { return h.Quantile(0.99) }
func (h *Histogram) P999() sim.Duration { return h.Quantile(0.999) }

// Summary renders count/mean/quantiles on one line. It predates the
// serving reports and deliberately omits p999 — golden outputs pin this
// exact rendering; String is the extended form.
func (h *Histogram) Summary() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// String renders the full one-line summary including the p999 tail,
// implementing fmt.Stringer for the serving reports.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		h.count, h.Mean(), h.P50(), h.Quantile(0.95), h.P99(), h.P999(), h.max)
}

// Dump writes an ASCII bar rendering of the non-empty buckets.
func (h *Histogram) Dump(w io.Writer) {
	var peak uint64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := int(c * 40 / peak)
		fmt.Fprintf(w, "%12v %8d %s\n", bucketLow(i), c, strings.Repeat("#", bar))
	}
}
