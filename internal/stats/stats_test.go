package stats

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"millipage/internal/sim"
)

func TestBasicAggregates(t *testing.T) {
	var h Histogram
	for _, d := range []sim.Duration{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond} {
		h.Add(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20*sim.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 30*sim.Microsecond || h.Min() != 10*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	// 99 fast observations, one slow outlier (the NT timer shape).
	for i := 0; i < 99; i++ {
		h.Add(50 * sim.Microsecond)
	}
	h.Add(2 * sim.Millisecond)
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	p100 := h.Quantile(1.0)
	if p50 < 50*sim.Microsecond || p50 > 200*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < 50*sim.Microsecond || p99 > 200*sim.Microsecond {
		t.Fatalf("p99 = %v (99/100 observations are 50us)", p99)
	}
	if p100 < 2*sim.Millisecond {
		t.Fatalf("p100 = %v, must cover the outlier", p100)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10 * sim.Microsecond)
	b.Add(30 * sim.Microsecond)
	b.Add(50 * sim.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Mean() != 30*sim.Microsecond {
		t.Fatalf("mean = %v", a.Mean())
	}
	if a.Min() != 10*sim.Microsecond || a.Max() != 50*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestSummaryAndDump(t *testing.T) {
	var h Histogram
	if h.Summary() != "n=0" {
		t.Fatalf("empty summary = %q", h.Summary())
	}
	var buf bytes.Buffer
	h.Dump(&buf)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty dump")
	}
	for i := 0; i < 100; i++ {
		h.Add(sim.Duration(i+1) * sim.Microsecond)
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Fatalf("summary = %q", h.Summary())
	}
	buf.Reset()
	h.Dump(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("dump has no bars")
	}
}

// TestP999Tail pins the serving-report tail quantile: with 990 fast
// observations and 10 slow outliers, p99 stays in the fast band (the
// 990th-smallest observation is fast) while p999 must cover the
// outliers' bucket — the tail the mean flattens.
func TestP999Tail(t *testing.T) {
	var h Histogram
	for i := 0; i < 990; i++ {
		h.Add(50 * sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Add(5 * sim.Millisecond)
	}
	if p99 := h.P99(); p99 > 200*sim.Microsecond {
		t.Fatalf("p99 = %v (990/1000 observations are 50us)", p99)
	}
	if p999 := h.P999(); p999 < 5*sim.Millisecond {
		t.Fatalf("p999 = %v, must cover the 5ms outlier", p999)
	}
	if h.P50() != h.Quantile(0.50) {
		t.Fatal("P50 disagrees with Quantile(0.50)")
	}
	if !strings.Contains(h.String(), "p999=") {
		t.Fatalf("String() = %q, want the p999 field", h.String())
	}
	var empty Histogram
	if empty.String() != "n=0" {
		t.Fatalf("empty String() = %q", empty.String())
	}
}

// TestMergeDeterministic proves what the serving harness relies on:
// merging per-thread histograms gives identical aggregates whatever the
// merge order, so the combined quantiles are a pure function of the
// observations.
func TestMergeDeterministic(t *testing.T) {
	parts := make([]Histogram, 4)
	r := uint64(12345)
	for i := range parts {
		for j := 0; j < 500; j++ {
			r = r*6364136223846793005 + 1442695040888963407
			parts[i].Add(sim.Duration(r%5_000_000) + 1)
		}
	}
	var fwd, rev Histogram
	for i := range parts {
		fwd.Merge(&parts[i])
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(&parts[i])
	}
	if fwd != rev {
		t.Fatal("merge order changed the histogram state")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("quantile %g differs across merge orders", q)
		}
	}
	if fwd.Count() != 2000 || fwd.Min() != rev.Min() || fwd.Max() != rev.Max() {
		t.Fatalf("aggregates differ: n=%d", fwd.Count())
	}
}

// Property: the bucketed quantile is always an upper bound on the exact
// quantile and within one bucket (2x) of it.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []uint32, qSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		var h Histogram
		ds := make([]sim.Duration, len(raw))
		for i, r := range raw {
			ds[i] = sim.Duration(r%10_000_000) + 1 // up to 10ms
			h.Add(ds[i])
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		q := float64(qSel%100+1) / 100
		// Same convention as Histogram.Quantile: the ceil(q*n)-th smallest.
		idx := int(math.Ceil(q*float64(len(ds)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ds) {
			idx = len(ds) - 1
		}
		exact := ds[idx]
		got := h.Quantile(q)
		// Upper bound within ~2x bucket resolution (plus one bucket slack).
		return got >= exact/2 && (got <= 4*exact+sim.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
