package apps

import (
	"math"
	"math/rand"

	millipage "millipage"
	"millipage/internal/sim"
)

// TSP: the TreadMarks branch-and-bound traveling salesperson, 19 cities,
// recursion level 12. Partial tours with more than 12 cities remaining
// are split into child tours on a shared work stack; deeper tours are
// solved sequentially. The paper extracts the tour array out of the
// global structure and allocates each 148-byte TourElement separately so
// a tour is the sharing unit (27 views: floor(4096/148), Table 2), and
// changes the minimum-bound update to push readable copies to all hosts
// (the Push API) because the bound "is frequently read through an
// unprotected section".

const (
	tspCities    = 19
	tspRecursion = 12 // remaining-city threshold for sequential solving
	tspSplitMax  = 3  // tours split on the shared stack only above this depth
	tspTourBytes = 148
	tspSlots     = 5430 // 785 KB / 148 B, the paper's shared footprint

	// Tour element layout.
	tLen   = 0 // u32 accumulated length
	tCount = 4 // u32 cities so far
	tPath  = 8 // u32 per city

	tspQLock   = 1 << 21
	tspMinLock = 1<<21 + 1
)

// RunTSP executes the branch-and-bound search on p.Hosts hosts.
func RunTSP(p Params) (Result, error) {
	p = p.withDefaults()
	cities := tspCities
	if p.Scale < 1.0 {
		cities = scaled(tspCities, p.Scale, 8)
	}

	dist := tspDistances(cities, p.Seed)
	bnd := makeBounds(dist)

	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:        p.Protocol,
		Hosts:           p.Hosts,
		SharedMemory:    2 << 20,
		Views:           27, // floor(4096/148): Table 2's value
		PageGranularity: p.PageGrain,
		Seed:            p.Seed,
		PerfectTimers:   p.PerfectTimers,
		Engine:          p.Engine,
		ParWorkers:      p.ParWorkers,
	})
	if err != nil {
		return Result{}, err
	}

	tourAddr := make([]millipage.Addr, tspSlots)
	var stackAddr, minAddr millipage.Addr
	var timed sim.Duration
	var check float64

	report, err := cluster.Run(func(w *millipage.Worker) {
		if w.ThreadID() == 0 {
			for i := range tourAddr {
				tourAddr[i] = w.Malloc(tspTourBytes)
			}
			// Stack layout: [0]=top, [1]=freeTop, [2]=active,
			// [3...]=work entries, then free-slot entries.
			stackAddr = w.Malloc(4 * (3 + 2*tspSlots))
			minAddr = w.Malloc(64)

			// Initial bound: plain nearest-neighbor tour (the classic
			// benchmark's bound; intentionally loose enough to leave a
			// substantial parallel search).
			w.WriteU32(minAddr, tspGreedy(dist, false))
			w.Push(minAddr)

			// All slots except slot 0 start free.
			w.WriteU32(stackAddr+0, 0)
			w.WriteU32(stackAddr+8, 0)
			free := 0
			for s := tspSlots - 1; s >= 1; s-- {
				w.WriteU32(stackAddr+uint64(4*(3+tspSlots+free)), uint32(s))
				free++
			}
			w.WriteU32(stackAddr+4, uint32(free))

			// Root tour: city 0.
			w.WriteU32(tourAddr[0]+tLen, 0)
			w.WriteU32(tourAddr[0]+tCount, 1)
			w.WriteU32(tourAddr[0]+tPath, 0)
			pushWork(w, stackAddr, 0)
		}
		w.Barrier() // barrier 1 of 3
		w.ResetStats()
		start := w.Now()

		path := make([]int, cities)
		for {
			// Peek without the lock: sequential consistency makes the
			// stale-read window benign, and it keeps lock traffic at the
			// paper's scale (Table 2: 681 lock operations in all).
			if w.ReadU32(stackAddr) == 0 {
				w.Lock(tspQLock)
				top := w.ReadU32(stackAddr)
				active := w.ReadU32(stackAddr + 8)
				w.Unlock(tspQLock)
				if top == 0 {
					if active == 0 {
						break
					}
					w.Compute(500 * sim.Microsecond) // idle poll
					continue
				}
			}
			w.Lock(tspQLock)
			top := w.ReadU32(stackAddr)
			if top == 0 {
				w.Unlock(tspQLock)
				continue
			}
			slot := w.ReadU32(stackAddr + uint64(4*(3+top-1)))
			w.WriteU32(stackAddr, top-1)
			w.WriteU32(stackAddr+8, w.ReadU32(stackAddr+8)+1)
			w.Unlock(tspQLock)

			// Read the tour element.
			length := w.ReadU32(tourAddr[slot] + tLen)
			count := int(w.ReadU32(tourAddr[slot] + tCount))
			visited := uint32(0)
			for i := 0; i < count; i++ {
				path[i] = int(w.ReadU32(tourAddr[slot] + tPath + uint64(4*i)))
				visited |= 1 << path[i]
			}

			if count < tspSplitMax && cities-count > tspRecursion {
				tspExpand(w, bnd, stackAddr, minAddr, tourAddr, path, count, length, visited, cities)
			} else {
				tspSolve(w, bnd, minAddr, path, count, length, visited, cities)
			}

			w.Lock(tspQLock)
			w.WriteU32(stackAddr+8, w.ReadU32(stackAddr+8)-1)
			w.Unlock(tspQLock)
		}
		w.Barrier() // barrier 2: search complete
		if w.ThreadID() == 0 {
			timed = w.Now() - start
			check = float64(w.ReadU32(minAddr))
		}
		w.Barrier() // barrier 3: Table 2's count
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "TSP", Hosts: p.Hosts, Report: report, Timed: timed, Check: check, Checked: check > 0, Engine: engineShape(cluster)}, nil
}

// pushWork pushes a tour slot on the shared work stack. Caller holds (or
// is initializing before) the queue lock.
func pushWork(w *millipage.Worker, stackAddr millipage.Addr, slot uint32) {
	top := w.ReadU32(stackAddr)
	w.WriteU32(stackAddr+uint64(4*(3+top)), slot)
	w.WriteU32(stackAddr, top+1)
}

// allocSlot takes a tour slot from the free stack; caller holds the lock.
// Slots are not recycled: the shallow split depth bounds the number of
// tours ever queued well below the pool size.
func allocSlot(w *millipage.Worker, stackAddr millipage.Addr) (uint32, bool) {
	freeTop := w.ReadU32(stackAddr + 4)
	if freeTop == 0 {
		return 0, false
	}
	s := w.ReadU32(stackAddr + uint64(4*(3+tspSlots+freeTop-1)))
	w.WriteU32(stackAddr+4, freeTop-1)
	return s, true
}

// tspExpand splits a shallow tour into child tours on the work stack,
// nearest city first so the best children are explored soonest.
func tspExpand(w *millipage.Worker, bnd *bounds,
	stackAddr, minAddr millipage.Addr, tourAddr []millipage.Addr,
	path []int, count int, length, visited uint32, cities int) {

	dist := bnd.dist
	last := path[count-1]
	min := w.ReadU32(minAddr)
	w.Compute(sim.Duration(cities) * tspEdge)
	for _, c := range bnd.order[last] {
		if visited&(1<<c) != 0 {
			continue
		}
		newLen := length + dist[last][c]
		if 2*newLen+bnd.lowerBound2(visited|1<<c, c, cities) >= 2*min {
			continue
		}
		w.Lock(tspQLock)
		slot, ok := allocSlot(w, stackAddr)
		if !ok {
			w.Unlock(tspQLock)
			// Pool exhausted: solve this child in place instead.
			path[count] = c
			tspSolve(w, bnd, minAddr, path, count+1, newLen, visited|1<<c, cities)
			continue
		}
		w.Unlock(tspQLock)

		// Fill the tour element (exclusively ours), then publish it.
		w.WriteU32(tourAddr[slot]+tLen, newLen)
		w.WriteU32(tourAddr[slot]+tCount, uint32(count+1))
		for i := 0; i < count; i++ {
			w.WriteU32(tourAddr[slot]+tPath+uint64(4*i), uint32(path[i]))
		}
		w.WriteU32(tourAddr[slot]+tPath+uint64(4*count), uint32(c))

		w.Lock(tspQLock)
		pushWork(w, stackAddr, slot)
		w.Unlock(tspQLock)
	}
}

// tspSolve finishes a tour sequentially with depth-first branch and
// bound (nearest-first, two-min-edge bound), updating the shared minimum
// when improved.
func tspSolve(w *millipage.Worker, bnd *bounds,
	minAddr millipage.Addr, path []int, count int, length, visited uint32, cities int) {

	dist := bnd.dist
	min := w.ReadU32(minAddr)
	nodes := 0
	best := min
	var dfs func(last int, count int, length, visited uint32)
	dfs = func(last int, count int, length, visited uint32) {
		nodes++
		if count == cities {
			total := length + dist[last][path[0]]
			if total < best {
				best = total
			}
			return
		}
		if 2*length+bnd.lowerBound2(visited, last, cities) >= 2*best {
			return
		}
		for _, c := range bnd.order[last] {
			if visited&(1<<c) != 0 {
				continue
			}
			nl := length + dist[last][c]
			if 2*nl+bnd.lowerBound2(visited|1<<c, c, cities) >= 2*best {
				continue
			}
			path[count] = c
			dfs(c, count+1, nl, visited|1<<c)
		}
	}
	dfs(path[count-1], count, length, visited)
	w.Compute(sim.Duration(nodes*cities) * tspEdge)

	if best < min {
		// The paper's modification: update under the lock, then push
		// readable copies to all hosts.
		w.Lock(tspMinLock)
		if best < w.ReadU32(minAddr) {
			w.WriteU32(minAddr, best)
			w.Push(minAddr)
		}
		w.Unlock(tspMinLock)
	}
}

// bounds holds the precomputed pruning machinery: per-city smallest and
// two-smallest-edge sums (the classic half-degree lower bound) and
// nearest-first neighbor orderings.
type bounds struct {
	minE   []uint32 // smallest incident edge per city
	twoSum []uint32 // sum of the two smallest incident edges
	order  [][]int  // cities sorted by distance, per city
	dist   [][]uint32
}

func makeBounds(dist [][]uint32) *bounds {
	n := len(dist)
	b := &bounds{
		minE:   make([]uint32, n),
		twoSum: make([]uint32, n),
		order:  make([][]int, n),
		dist:   dist,
	}
	for c := 0; c < n; c++ {
		e1, e2 := uint32(math.MaxUint32), uint32(math.MaxUint32)
		for d := 0; d < n; d++ {
			if d == c {
				continue
			}
			if v := dist[c][d]; v < e1 {
				e1, e2 = v, e1
			} else if v < e2 {
				e2 = v
			}
		}
		b.minE[c] = e1
		b.twoSum[c] = e1 + e2
		ord := make([]int, 0, n-1)
		for d := 0; d < n; d++ {
			if d != c {
				ord = append(ord, d)
			}
		}
		for i := 1; i < len(ord); i++ { // insertion sort by distance
			for j := i; j > 0 && dist[c][ord[j]] < dist[c][ord[j-1]]; j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		b.order[c] = ord
	}
	return b
}

// lowerBound2 returns twice the admissible bound on the remaining path
// from last through every unvisited city back to city 0: each unvisited
// city contributes its two cheapest edges, the endpoints one each.
func (b *bounds) lowerBound2(visited uint32, last, cities int) uint32 {
	lb2 := b.minE[last] + b.minE[0]
	for c := 0; c < cities; c++ {
		if visited&(1<<c) == 0 {
			lb2 += b.twoSum[c]
		}
	}
	return lb2
}

// tspGreedy returns the length of a nearest-neighbor tour, optionally
// improved by 2-opt. The search uses the plain tour as its initial bound;
// the 2-opt variant is used by tests as a tighter reference value.
func tspGreedy(dist [][]uint32, twoOpt bool) uint32 {
	n := len(dist)
	visited := make([]bool, n)
	visited[0] = true
	tour := make([]int, 1, n)
	cur := 0
	for step := 1; step < n; step++ {
		best, bd := -1, uint32(math.MaxUint32)
		for c := 0; c < n; c++ {
			if !visited[c] && dist[cur][c] < bd {
				best, bd = c, dist[cur][c]
			}
		}
		visited[best] = true
		tour = append(tour, best)
		cur = best
	}
	// 2-opt until no improving exchange remains.
	improved := twoOpt
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 2; j < n; j++ {
				a, b := tour[i], tour[i+1]
				c, d := tour[j], tour[(j+1)%n]
				if a == d {
					continue
				}
				if dist[a][c]+dist[b][d] < dist[a][b]+dist[c][d] {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						tour[lo], tour[hi] = tour[hi], tour[lo]
					}
					improved = true
				}
			}
		}
	}
	total := uint32(0)
	for i := 0; i < n; i++ {
		total += dist[tour[i]][tour[(i+1)%n]]
	}
	return total
}

// tspDistances builds a deterministic symmetric instance with uniform
// random edge weights. Non-metric instances keep the branch-and-bound
// search substantial (Euclidean ones collapse under the two-min-edge
// bound), matching the long-running searches of the original benchmark.
func tspDistances(n int, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed * 7919))
	d := make([][]uint32, n)
	for i := range d {
		d[i] = make([]uint32, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := uint32(rng.Intn(900) + 100)
			d[i][j], d[j][i] = w, w
		}
	}
	return d
}
