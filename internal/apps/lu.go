package apps

import (
	"encoding/binary"
	"math"

	millipage "millipage"
	"millipage/internal/sim"
)

// LU: SPLASH-2 LU-contiguous — blocked dense LU factorization without
// pivoting. The paper's input is a 1024x1024 matrix in 32x32 blocks of
// 4 KB: "it builds a matrix by allocating sub-blocks ... the size of a
// minipage may be set equal to that of a 4KB page" (Section 4.3), so LU
// needs only one view (Table 2).
//
// Blocks are assigned to threads round-robin. Each step k factors the
// diagonal block, solves the perimeter blocks against it, and updates the
// interior; three barriers per step. The two prefetch calls the paper
// inserted during the LU computation (Section 4.3.1) appear in the
// interior-update loop: the row-k and column-k perimeter blocks are
// prefetched before they are consumed.

const (
	luNFull   = 1024
	luBlock   = 32
	luBlockSz = luBlock * luBlock * 4 // float32: the paper's 4 KB block
)

// RunLU executes blocked LU on p.Hosts hosts.
func RunLU(p Params) (Result, error) {
	p = p.withDefaults()
	n := scaled(luNFull, p.Scale, 4*luBlock)
	n = (n / luBlock) * luBlock
	nb := n / luBlock // blocks per dimension

	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:        p.Protocol,
		Hosts:           p.Hosts,
		SharedMemory:    nb*nb*luBlockSz + (64 << 10),
		Views:           1, // Table 2's value: a block is a full page
		PageGranularity: p.PageGrain,
		Seed:            p.Seed,
		PerfectTimers:   p.PerfectTimers,
		Engine:          p.Engine,
		ParWorkers:      p.ParWorkers,
	})
	if err != nil {
		return Result{}, err
	}

	blockAddr := make([]millipage.Addr, nb*nb)
	addr := func(bi, bj int) millipage.Addr { return blockAddr[bi*nb+bj] }
	var timed sim.Duration
	var check float64

	report, err := cluster.Run(func(w *millipage.Worker) {
		T := w.NumThreads()
		me := w.ThreadID()
		owner := func(bi, bj int) int { return (bi*nb + bj) % T }

		if me == 0 {
			for i := range blockAddr {
				blockAddr[i] = w.Malloc(luBlockSz)
			}
		}
		w.Barrier()
		// Each thread initializes the blocks it owns (first touch where
		// the block is used, as in SPLASH-2): a deterministic diagonally
		// dominant matrix, stable without pivoting.
		blk := make([]float32, luBlock*luBlock)
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				if owner(bi, bj) != me {
					continue
				}
				for x := 0; x < luBlock; x++ {
					for y := 0; y < luBlock; y++ {
						gi, gj := bi*luBlock+x, bj*luBlock+y
						v := float32(1.0 / (1.0 + float64(gi+gj)))
						if gi == gj {
							v += float32(n)
						}
						blk[x*luBlock+y] = v
					}
				}
				writeBlockF32(w, addr(bi, bj), blk)
			}
		}
		w.Barrier()
		w.ResetStats()
		start := w.Now()

		diag := make([]float32, luBlock*luBlock)
		row := make([]float32, luBlock*luBlock)
		col := make([]float32, luBlock*luBlock)
		cur := make([]float32, luBlock*luBlock)

		for k := 0; k < nb; k++ {
			// Factor the diagonal block.
			if owner(k, k) == me {
				readBlockF32(w, addr(k, k), cur)
				factorBlock(cur)
				writeBlockF32(w, addr(k, k), cur)
				w.Compute(sim.Duration(luBlock*luBlock*luBlock/3) * luMADD)
			}
			w.Barrier()

			// Perimeter: row k and column k solve against the diagonal.
			perimDone := false
			for t := k + 1; t < nb; t++ {
				if owner(k, t) == me {
					if !perimDone {
						readBlockF32(w, addr(k, k), diag)
						perimDone = true
					}
					readBlockF32(w, addr(k, t), cur)
					lowerSolve(diag, cur)
					writeBlockF32(w, addr(k, t), cur)
					w.Compute(sim.Duration(luBlock*luBlock*luBlock/2) * luMADD)
				}
				if owner(t, k) == me {
					if !perimDone {
						readBlockF32(w, addr(k, k), diag)
						perimDone = true
					}
					readBlockF32(w, addr(t, k), cur)
					upperSolve(diag, cur)
					writeBlockF32(w, addr(t, k), cur)
					w.Compute(sim.Duration(luBlock*luBlock*luBlock/2) * luMADD)
				}
			}
			w.Barrier()

			// Interior update: A[i][j] -= A[i][k] * A[k][j]. The paper's
			// two prefetch calls (Section 4.3.1): issue asynchronous
			// fetches of the row-k and column-k perimeter blocks this
			// thread will consume, so they arrive while earlier updates
			// compute.
			for t := k + 1; t < nb; t++ {
				for bj := k + 1; bj < nb; bj++ {
					if owner(t, bj) == me {
						w.Prefetch(addr(t, k), luBlockSz)  // prefetch call 1
						w.Prefetch(addr(k, bj), luBlockSz) // prefetch call 2
					}
				}
			}
			for bi := k + 1; bi < nb; bi++ {
				for bj := k + 1; bj < nb; bj++ {
					if owner(bi, bj) != me {
						continue
					}
					readBlockF32(w, addr(bi, k), col)
					readBlockF32(w, addr(k, bj), row)
					readBlockF32(w, addr(bi, bj), cur)
					matmulSub(cur, col, row)
					writeBlockF32(w, addr(bi, bj), cur)
					w.Compute(sim.Duration(luBlock*luBlock*luBlock) * luMADD)
				}
			}
			w.Barrier()
		}
		if me == 0 {
			timed = w.Now() - start
			// Checksum the factored matrix (bitwise deterministic across
			// host counts: every block sees the same update sequence).
			for bi := 0; bi < nb; bi++ {
				readBlockF32(w, addr(bi, bi), cur)
				for _, v := range cur {
					check += float64(v)
				}
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "LU", Hosts: p.Hosts, Report: report, Timed: timed, Check: check, Checked: !math.IsNaN(check) && check != 0, Engine: engineShape(cluster)}, nil
}

// factorBlock performs an in-place unblocked LU (no pivoting) on a
// diagonal block.
func factorBlock(a []float32) {
	for k := 0; k < luBlock; k++ {
		pivot := a[k*luBlock+k]
		for i := k + 1; i < luBlock; i++ {
			a[i*luBlock+k] /= pivot
			lik := a[i*luBlock+k]
			for j := k + 1; j < luBlock; j++ {
				a[i*luBlock+j] -= lik * a[k*luBlock+j]
			}
		}
	}
}

// lowerSolve solves L*X = B in place for a row-perimeter block, where L
// is the unit lower triangle of the factored diagonal block.
func lowerSolve(diag, b []float32) {
	for k := 0; k < luBlock; k++ {
		for i := k + 1; i < luBlock; i++ {
			lik := diag[i*luBlock+k]
			for j := 0; j < luBlock; j++ {
				b[i*luBlock+j] -= lik * b[k*luBlock+j]
			}
		}
	}
}

// upperSolve solves X*U = B in place for a column-perimeter block, where
// U is the upper triangle of the factored diagonal block.
func upperSolve(diag, b []float32) {
	for j := 0; j < luBlock; j++ {
		ujj := diag[j*luBlock+j]
		for i := 0; i < luBlock; i++ {
			b[i*luBlock+j] /= ujj
		}
		for jj := j + 1; jj < luBlock; jj++ {
			ujjj := diag[j*luBlock+jj]
			for i := 0; i < luBlock; i++ {
				b[i*luBlock+jj] -= b[i*luBlock+j] * ujjj
			}
		}
	}
}

// matmulSub computes cur -= col*row (the blocked trailing update).
func matmulSub(cur, col, row []float32) {
	for i := 0; i < luBlock; i++ {
		for k := 0; k < luBlock; k++ {
			cik := col[i*luBlock+k]
			if cik == 0 {
				continue
			}
			base := k * luBlock
			out := i * luBlock
			for j := 0; j < luBlock; j++ {
				cur[out+j] -= cik * row[base+j]
			}
		}
	}
}

func readBlockF32(w *millipage.Worker, addr millipage.Addr, dst []float32) {
	buf := make([]byte, len(dst)*4)
	w.Read(addr, buf)
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
}

func writeBlockF32(w *millipage.Worker, addr millipage.Addr, src []float32) {
	buf := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	w.Write(addr, buf)
}
