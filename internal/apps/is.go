package apps

import (
	millipage "millipage"
	"millipage/internal/sim"
)

// IS: the NAS Integer Sort kernel, 2^23 keys over 2^9 values. The shared
// state is the small rank/histogram array (2 KB at 8 hosts), which the
// paper's modification splits into per-host regions of 256 bytes so each
// region is its own minipage: "we modified the allocation routine to have
// these regions allocated separately" (Section 4.3).
//
// Each of the 10 ranking iterations histograms the host's local keys
// (pure computation), then accumulates into the shared regions with a
// skewed all-to-all schedule — in phase p, host h updates region
// (h+p) mod H, so every region has exactly one writer per phase and no
// locks are needed (Table 2 lists none). A final ranking phase reads the
// host's own region. With the paper's 8 hosts this is 9 barriers per
// iteration: 90 in all, matching Table 2.

const (
	isKeysFull = 1 << 23
	isValues   = 1 << 9
	isIters    = 10
)

// RunIS executes Integer Sort on p.Hosts hosts.
func RunIS(p Params) (Result, error) {
	p = p.withDefaults()
	totalKeys := scaled(isKeysFull, p.Scale, 1<<12)
	hosts := p.Hosts

	// Region geometry: one region per host covering an equal slice of the
	// value range, padded so regions are the allocation (= sharing) unit.
	perRegion := (isValues + hosts - 1) / hosts
	regionBytes := perRegion * 4

	// The shared state is per-host (one region + one check slot each) and
	// every allocation occupies at least one minipage (page/Views = 512
	// bytes at Views 8), so the arena must scale with the cluster in
	// minipage units; grow-only past the paper's 64 KB so host counts
	// <= 8 keep the exact arena the goldens pin.
	const mini = 4096 / 8
	alloc := (regionBytes+mini-1)/mini*mini + mini // region + check slot, rounded up
	shared := 64 << 10
	if need := hosts*alloc + (64 << 10); need > shared {
		shared = need
	}

	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:        p.Protocol,
		Hosts:           hosts,
		SharedMemory:    shared,
		Views:           8, // Table 2's value
		PageGranularity: p.PageGrain,
		Seed:            p.Seed,
		PerfectTimers:   p.PerfectTimers,
		Engine:          p.Engine,
		ParWorkers:      p.ParWorkers,
	})
	if err != nil {
		return Result{}, err
	}

	regionAddr := make([]millipage.Addr, hosts)
	checkAddr := make([]millipage.Addr, hosts)
	var timed sim.Duration
	var check float64

	report, err := cluster.Run(func(w *millipage.Worker) {
		h := w.Host()
		if w.ThreadID() == 0 {
			zero := make([]byte, regionBytes)
			for r := 0; r < hosts; r++ {
				regionAddr[r] = w.Malloc(regionBytes)
				w.Write(regionAddr[r], zero)
			}
			for r := 0; r < hosts; r++ {
				checkAddr[r] = w.Malloc(256)
			}
		}
		w.Barrier()
		w.ResetStats()
		start := w.Now()

		// Local keys: host h takes slice [h*n, (h+1)*n) of a key sequence
		// defined by global index, so the key multiset — and hence the
		// checksum — is identical for every host count.
		nKeys := totalKeys / hosts
		keys := make([]uint16, nKeys)
		for i := range keys {
			keys[i] = uint16(isKeyAt(uint64(h*nKeys+i), uint64(p.Seed)))
		}
		local := make([]uint32, isValues)

		for it := 0; it < isIters; it++ {
			// Histogram the local keys (the dominant computation).
			for i := range local {
				local[i] = 0
			}
			for _, k := range keys {
				local[k]++
			}
			w.Compute(sim.Duration(nKeys) * isKey)

			// Skewed all-to-all accumulation: one writer per region per
			// phase, one barrier per phase.
			buf := make([]byte, regionBytes)
			for phase := 0; phase < hosts; phase++ {
				r := (h + phase) % hosts
				w.Read(regionAddr[r], buf)
				lo := r * perRegion
				for b := 0; b < perRegion && lo+b < isValues; b++ {
					v := leU32(buf[4*b:]) + local[lo+b]
					putU32(buf[4*b:], v)
				}
				w.Write(regionAddr[r], buf)
				w.Compute(sim.Duration(perRegion) * isKey)
				w.Barrier()
			}

			// Ranking: each host reads its own region, computes prefix
			// sums and ranks its local keys, then resets the region for
			// the next iteration.
			w.Read(regionAddr[h], buf)
			var sum uint64
			lo := h * perRegion
			for b := 0; b < perRegion && lo+b < isValues; b++ {
				sum += uint64(leU32(buf[4*b:])) * uint64(lo+b)
			}
			w.Compute(sim.Duration(nKeys) * isKey / 2)
			if it == isIters-1 {
				w.WriteU64(checkAddr[h], sum)
			} else {
				w.Write(regionAddr[h], make([]byte, regionBytes))
			}
			w.Barrier() // 9th barrier of the iteration (at 8 hosts)
		}
		if w.ThreadID() == 0 {
			timed = w.Now() - start
			for r := 0; r < hosts; r++ {
				check += float64(w.ReadU64(checkAddr[r]))
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	// The weighted bucket sum is a deterministic function of the keys, so
	// it validates coherence exactly (integer arithmetic: no FP ordering).
	return Result{Name: "IS", Hosts: hosts, Report: report, Timed: timed, Check: check, Checked: check != 0, Engine: engineShape(cluster)}, nil
}

// isKeyAt is a splitmix64-style hash of the global key index: a
// deterministic uniform key stream independent of the host partitioning.
func isKeyAt(i, seed uint64) uint64 {
	z := i*0x9E3779B97F4A7C15 + seed*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z % isValues
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
