// Package apps implements the paper's five-application benchmark suite
// (Table 2) against the public millipage API:
//
//	SOR    — red/black successive over-relaxation (TreadMarks suite),
//	         32768x64 matrix, one row (256 B) per minipage.
//	IS     — NAS Integer Sort, 2^23 keys with 2^9 values, a 2 KB shared
//	         rank array in 256 B per-host regions.
//	WATER  — SPLASH-2 Water-nsquared (simplified force field), 512
//	         molecules of 672 B, one molecule (or chunk) per minipage.
//	LU     — SPLASH-2 LU-contiguous, 1024x1024 matrix in 32x32 blocks,
//	         one 4 KB block per minipage.
//	TSP    — TreadMarks traveling salesperson, 19 cities, recursion
//	         level 12, one 148 B tour element per minipage.
//
// Each implementation reproduces the sharing pattern the paper describes,
// including the allocation modifications of Section 4.3 (per-molecule,
// per-region, per-tour allocations) and LU's two prefetch calls. The
// computation is real — matrices converge, keys sort, tours are optimal —
// while per-element compute costs are charged to the virtual clock with
// constants calibrated to the 300 MHz Pentium II testbed.
package apps

import (
	"fmt"

	millipage "millipage"
	"millipage/internal/sim"
)

// Params selects a cluster configuration shared by all applications.
type Params struct {
	// Protocol selects the coherence protocol (millipage.Config.Protocol):
	// "" or "millipage", "ivy", "lrc", or "lrc-mw". Every application is
	// data-race-free (barrier/lock structured), so the suite runs — and
	// its checksums hold — under any of the three.
	Protocol      string
	Hosts         int
	ChunkLevel    int  // WATER's chunking switch
	PageGrain     bool // run on the traditional page-based layout instead
	PerfectTimers bool // remove the NT timer pathology
	ComposedViews bool // WATER: gang-fetch the read phase (paper Section 5)
	Seed          int64
	Scale         float64 // problem scale: 1.0 = the paper's data sets

	// Engine selects the event engine ("seq" default, "par" for the
	// sharded parallel engine) and ParWorkers bounds its goroutines; see
	// millipage.Config. Virtual-time results are engine-independent.
	Engine     string
	ParWorkers int
}

func (p Params) withDefaults() Params {
	if p.Hosts == 0 {
		p.Hosts = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	return p
}

// scaled applies the problem scale to a paper-sized quantity, keeping at
// least min.
func scaled(full int, scale float64, min int) int {
	v := int(float64(full) * scale)
	if v < min {
		v = min
	}
	return v
}

// Result bundles an application run's outcome.
type Result struct {
	Name    string
	Hosts   int
	Report  *millipage.Report
	Timed   sim.Duration // the timed parallel section (excludes setup), for speedups
	Check   float64      // application checksum; equal across host counts iff SC holds
	Checked bool         // application-level verification ran and passed
	Engine  EngineShape  // event-engine execution shape of the run
}

// EngineShape records how the event engine executed the run (see
// millipage.Cluster.EngineStats): 1 shard / 0 windows on the sequential
// engine, hosts+1 shards on the parallel one.
type EngineShape struct {
	Shards    int
	Workers   int
	Windows   uint64
	MaxActive int
}

// engineShape captures a cluster's execution shape after Run.
func engineShape(c *millipage.Cluster) EngineShape {
	shards, workers, windows, maxActive := c.EngineStats()
	return EngineShape{Shards: shards, Workers: workers, Windows: windows, MaxActive: maxActive}
}

func (r Result) String() string {
	return fmt.Sprintf("%s hosts=%d timed=%v elapsed=%v", r.Name, r.Hosts, r.Timed, r.Report.Elapsed)
}

// Runner is one suite application.
type Runner func(p Params) (Result, error)

// App is a named suite entry.
type App struct {
	Name string
	Run  Runner
}

// Suite maps application names to runners, in the paper's Table 2 order.
func Suite() []App {
	return []App{
		{"SOR", RunSOR},
		{"IS", RunIS},
		{"WATER", RunWATER},
		{"LU", RunLU},
		{"TSP", RunTSP},
	}
}

// perByte et al. — calibrated per-operation compute costs on the
// 300 MHz testbed, used by the applications to charge virtual time for
// the work between shared-memory operations.
const (
	// sorElem: ~5 flops + 5 loads/store per stencil point.
	sorElem = 80 * sim.Nanosecond
	// isKey: histogram increment with a dependent cache access.
	isKey = 45 * sim.Nanosecond
	// waterPair: one intermolecular interaction of the (simplified) water
	// force field -- several hundred flops on the testbed.
	waterPair = 8000 * sim.Nanosecond
	// luMADD: one fused multiply-add in the blocked update.
	luMADD = 30 * sim.Nanosecond
	// tspEdge: one tour-length accumulation step.
	tspEdge = 25 * sim.Nanosecond
)
