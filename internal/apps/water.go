package apps

import (
	"math"

	millipage "millipage"
	"millipage/internal/sim"
)

// WATER: SPLASH-2 Water-nsquared with a simplified (but real) pairwise
// force field. The paper's input is 512 molecules; its modification
// allocates every molecule separately so the 672-byte molecule is the
// sharing unit: "we altered the main function so that each molecule will
// be allocated separately" (Section 4.3). Config.ChunkLevel aggregates
// several molecules per minipage — the Figure 7 study.
//
// Each iteration runs the classic phases, seven barriers per iteration
// (29 in all with the start barrier, matching Table 2):
//
//	predict positions (write own) | intra-molecular forces (compute) |
//	inter-molecular forces: the read phase fetches every partner
//	molecule's position, each molecule interacting with the next n/2 in
//	the ring | combine foreign force contributions under per-molecule
//	locks (the bulk of Table 2's 6720 lock operations) | correct
//	velocities (write own) | kinetic-energy reduction under a global
//	lock | bookkeeping.

const (
	waterMolsFull = 512
	waterMolBytes = 672
	waterIters    = 4

	// Field offsets within a molecule (float64 triples).
	wPos   = 0
	wVel   = 24
	wForce = 48
	wAux   = 624 // per-molecule partial sums, written during the read phase

	waterEnergyLock = 1 << 20 // lock id namespace separate from molecules
)

// RunWATER executes Water-nsquared on p.Hosts hosts. p.ChunkLevel is the
// paper's chunking switch (0/1 = one molecule per minipage).
func RunWATER(p Params) (Result, error) {
	p = p.withDefaults()
	mols := scaled(waterMolsFull, p.Scale, 32)

	// floor(4096/672) = 6, Table 2's value; chunked minipages need fewer,
	// so 6 remains sufficient for every chunking level.
	views := 6
	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:        p.Protocol,
		Hosts:           p.Hosts,
		SharedMemory:    mols*4096/4 + (256 << 10), // molecules plus slack
		Views:           views,
		ChunkLevel:      p.ChunkLevel,
		PageGranularity: p.PageGrain,
		Seed:            p.Seed,
		PerfectTimers:   p.PerfectTimers,
		Engine:          p.Engine,
		ParWorkers:      p.ParWorkers,
	})
	if err != nil {
		return Result{}, err
	}

	molAddr := make([]millipage.Addr, mols)
	var energyAddr millipage.Addr
	var timed sim.Duration
	var check float64

	report, err := cluster.Run(func(w *millipage.Worker) {
		if w.ThreadID() == 0 {
			for m := range molAddr {
				molAddr[m] = w.Malloc(waterMolBytes)
			}
			energyAddr = w.Malloc(64)
			// Deterministic initial lattice positions and velocities.
			for m := range molAddr {
				x := float64(m%8) + 0.37
				y := float64((m/8)%8) + 0.11
				z := float64(m/64) + 0.73
				writeTriple(w, molAddr[m]+wPos, x, y, z)
				writeTriple(w, molAddr[m]+wVel, 0.01*math.Sin(float64(m)), 0.01*math.Cos(float64(m)), 0)
				writeTriple(w, molAddr[m]+wForce, 0, 0, 0)
			}
			w.WriteF64(energyAddr, 0)
		}
		w.Barrier() // start barrier (1 of 29)
		w.ResetStats()
		start := w.Now()

		lo, hi := band(mols, w.NumThreads(), w.ThreadID())
		own := hi - lo
		half := mols / 2
		const dt = 1e-3

		for it := 0; it < waterIters; it++ {
			// Phase 1: predict positions from velocities (write own).
			for m := lo; m < hi; m++ {
				x, y, z := readTriple(w, molAddr[m]+wPos)
				vx, vy, vz := readTriple(w, molAddr[m]+wVel)
				writeTriple(w, molAddr[m]+wPos, x+dt*vx, y+dt*vy, z+dt*vz)
				writeTriple(w, molAddr[m]+wForce, 0, 0, 0)
			}
			w.Compute(sim.Duration(own) * 300 * sim.Nanosecond)
			w.Barrier()

			// Phase 2: intra-molecular forces (pure computation).
			w.Compute(sim.Duration(own) * 10 * sim.Microsecond)
			w.Barrier()

			// Phase 3: inter-molecular forces — the read phase. Each of
			// our molecules interacts with the next half ring. With
			// composed views, the whole window is gang-fetched first
			// (Section 5: a coarse-grain view for the read phase over
			// fine-grain sharing units).
			if p.ComposedViews {
				spans := make([]millipage.Span, 0, half+own)
				for d := lo + 1; d < hi+half; d++ {
					spans = append(spans, millipage.Span{Addr: molAddr[d%mols], Size: waterMolBytes})
				}
				w.GangFetch(spans)
			}
			acc := make([][3]float64, mols)
			touched := make([]bool, mols)
			for m := lo; m < hi; m++ {
				xi, yi, zi := readTriple(w, molAddr[m]+wPos)
				var fx, fy, fz float64
				for d := 1; d <= half; d++ {
					j := (m + d) % mols
					xj, yj, zj := readTriple(w, molAddr[j]+wPos)
					gx, gy, gz := pairForce(xi, yi, zi, xj, yj, zj)
					fx += gx
					fy += gy
					fz += gz
					acc[j][0] -= gx
					acc[j][1] -= gy
					acc[j][2] -= gz
					touched[j] = true
				}
				acc[m][0] += fx
				acc[m][1] += fy
				acc[m][2] += fz
				touched[m] = true
				// Periodically write partial sums back during the read
				// phase, as the original Water does — the Write-Read
				// data race Perkovic & Keleher reported, which the paper
				// identifies as the source of its competing requests
				// (Section 4.4). At fine granularity only this molecule's
				// readers refetch; at coarse granularity the write
				// invalidates innocent neighbors on the same minipage.
				// The composed-views restructuring defers these writes out
				// of the read phase (they land with the phase-4 combine),
				// exactly the fine/coarse view arbitration Section 5
				// sketches.
				if m%8 == 0 && !p.ComposedViews {
					writeTriple(w, molAddr[m]+wAux, fx, fy, fz)
				}
				w.Compute(sim.Duration(half) * waterPair)
			}
			w.Barrier()

			// Phase 4: combine force contributions in molecule order
			// (deterministic lock acquisition). Every read-modify-write
			// goes under the molecule's lock — several hosts accumulate
			// into the same molecule concurrently.
			for j := 0; j < mols; j++ {
				if !touched[j] {
					continue
				}
				a := acc[j]
				w.Lock(j)
				fx, fy, fz := readTriple(w, molAddr[j]+wForce)
				writeTriple(w, molAddr[j]+wForce, fx+a[0], fy+a[1], fz+a[2])
				if p.ComposedViews && j >= lo && j < hi && j%8 == 0 {
					// The deferred partial-sum write (see phase 3).
					writeTriple(w, molAddr[j]+wAux, a[0], a[1], a[2])
				}
				w.Unlock(j)
			}
			w.Barrier()

			// Phase 5: correct velocities from forces (write own).
			for m := lo; m < hi; m++ {
				vx, vy, vz := readTriple(w, molAddr[m]+wVel)
				fx, fy, fz := readTriple(w, molAddr[m]+wForce)
				writeTriple(w, molAddr[m]+wVel, vx+dt*fx, vy+dt*fy, vz+dt*fz)
			}
			w.Compute(sim.Duration(own) * 300 * sim.Nanosecond)
			w.Barrier()

			// Phase 6: kinetic-energy reduction under the global lock.
			var ke float64
			for m := lo; m < hi; m++ {
				vx, vy, vz := readTriple(w, molAddr[m]+wVel)
				ke += vx*vx + vy*vy + vz*vz
			}
			w.Compute(sim.Duration(own) * 200 * sim.Nanosecond)
			w.Lock(waterEnergyLock)
			w.WriteF64(energyAddr, w.ReadF64(energyAddr)+ke)
			w.Unlock(waterEnergyLock)
			w.Barrier()

			// Phase 7: bookkeeping (scaling, output accumulation).
			w.Compute(sim.Duration(own) * 100 * sim.Nanosecond)
			w.Barrier()
		}
		if w.ThreadID() == 0 {
			timed = w.Now() - start
			check = w.ReadF64(energyAddr)
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "WATER", Hosts: p.Hosts, Report: report, Timed: timed, Check: check, Checked: check != 0, Engine: engineShape(cluster)}, nil
}

// pairForce is a soft inverse-square interaction — a real (if simplified)
// force field, so the dynamics are deterministic and coherence errors
// change the checksum.
func pairForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz float64) {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	r2 := dx*dx + dy*dy + dz*dz + 0.5
	inv := 1.0 / (r2 * math.Sqrt(r2))
	return dx * inv, dy * inv, dz * inv
}

func readTriple(w *millipage.Worker, addr millipage.Addr) (a, b, c float64) {
	return w.ReadF64(addr), w.ReadF64(addr + 8), w.ReadF64(addr + 16)
}

func writeTriple(w *millipage.Worker, addr millipage.Addr, a, b, c float64) {
	w.WriteF64(addr, a)
	w.WriteF64(addr+8, b)
	w.WriteF64(addr+16, c)
}
