package apps

import (
	"math"
	"testing"
)

// small returns test-scale parameters: fast but large enough that every
// sharing pattern (remote fetches, invalidations, locks) is exercised.
func small(hosts int) Params {
	return Params{Hosts: hosts, Scale: 0.02, Seed: 1}
}

// checkAgree verifies an application computes the same answer on 1 host
// and on n hosts — the sequential-consistency acceptance test.
func checkAgree(t *testing.T, run Runner, hosts int, tol float64) (Result, Result) {
	t.Helper()
	r1, err := run(small(1))
	if err != nil {
		t.Fatalf("1 host: %v", err)
	}
	rn, err := run(small(hosts))
	if err != nil {
		t.Fatalf("%d hosts: %v", hosts, err)
	}
	if !r1.Checked || !rn.Checked {
		t.Fatalf("checks did not run: %v %v", r1.Checked, rn.Checked)
	}
	if tol == 0 {
		if r1.Check != rn.Check {
			t.Fatalf("checksum mismatch: 1 host %v, %d hosts %v", r1.Check, hosts, rn.Check)
		}
	} else {
		rel := math.Abs(r1.Check-rn.Check) / math.Max(math.Abs(r1.Check), 1)
		if rel > tol {
			t.Fatalf("checksum divergence %.2e: 1 host %v, %d hosts %v", rel, r1.Check, hosts, rn.Check)
		}
	}
	return r1, rn
}

func TestSORAgreesAcrossHosts(t *testing.T) {
	r1, r4 := checkAgree(t, RunSOR, 4, 0)
	if r4.Timed <= 0 || r1.Timed <= 0 {
		t.Fatal("no timed section recorded")
	}
	// Barrier count: the paper's 21 (10 red/black iterations + start)
	// plus one address-publication barrier after allocation (the original
	// computes row addresses statically).
	if got := r4.Report.Barriers; got != 22 {
		t.Fatalf("barriers = %d, want 22 (21 + allocation barrier)", got)
	}
}

func TestSORSpeedsUpAtScale(t *testing.T) {
	// At tiny scale communication dominates; at a quarter of the paper's
	// input the row-band partitioning must beat one host clearly.
	p := Params{Hosts: 4, Scale: 0.25, Seed: 1}
	r4, err := RunSOR(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Hosts = 1
	r1, err := RunSOR(p)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Timed) / float64(r4.Timed)
	if speedup < 2.0 {
		t.Fatalf("4-host speedup = %.2f, want >= 2 (paper: near-linear)", speedup)
	}
}

func TestISAgreesAcrossHosts(t *testing.T) {
	r1, r4 := checkAgree(t, RunIS, 4, 0)
	if r4.Timed >= r1.Timed {
		t.Fatalf("no speedup: 1 host %v, 4 hosts %v", r1.Timed, r4.Timed)
	}
	// 10 iterations x (hosts phases + ranking) + start barrier.
	want := uint64(10*(4+1) + 1)
	if got := r4.Report.Barriers; got != want {
		t.Fatalf("barriers = %d, want %d", got, want)
	}
	if r4.Report.LockAcquisitions != 0 {
		t.Fatalf("IS used %d locks; Table 2 lists none", r4.Report.LockAcquisitions)
	}
}

func TestWATERAgreesAcrossHosts(t *testing.T) {
	// Floating-point accumulation order differs across host counts (lock
	// order), so allow a small relative tolerance.
	r1, r4 := checkAgree(t, RunWATER, 4, 1e-6)
	if r4.Report.Barriers != 4*7+1 {
		t.Fatalf("barriers = %d, want 29", r4.Report.Barriers)
	}
	if r4.Report.LockAcquisitions == 0 {
		t.Fatal("WATER used no locks; Table 2 lists thousands")
	}
	_ = r1
}

func TestWATERChunkingReducesFaults(t *testing.T) {
	p := small(4)
	plain, err := RunWATER(p)
	if err != nil {
		t.Fatal(err)
	}
	p.ChunkLevel = 4
	chunked, err := RunWATER(p)
	if err != nil {
		t.Fatal(err)
	}
	pf := plain.Report.ReadFaults + plain.Report.WriteFaults
	cf := chunked.Report.ReadFaults + chunked.Report.WriteFaults
	if cf >= pf {
		t.Fatalf("chunking did not reduce faults: %d -> %d", pf, cf)
	}
	// And the opposite tendency (Figure 7): competing requests rise.
	if chunked.Report.CompetingRequests < plain.Report.CompetingRequests {
		t.Logf("note: competing %d -> %d (expected to rise at full scale)",
			plain.Report.CompetingRequests, chunked.Report.CompetingRequests)
	}
}

func TestLUAgreesAcrossHosts(t *testing.T) {
	// LU block updates are applied in identical order regardless of the
	// partitioning, so the checksum matches bitwise.
	r1, r4 := checkAgree(t, RunLU, 4, 0)
	if r4.Timed >= r1.Timed {
		t.Fatalf("no speedup: 1 host %v, 4 hosts %v", r1.Timed, r4.Timed)
	}
	if r4.Report.ViewsUsed != 1 {
		t.Fatalf("LU views = %d, want 1 (Table 2)", r4.Report.ViewsUsed)
	}
}

func TestLUFactorizationIsCorrect(t *testing.T) {
	// Self-check of the numerics at a tiny size: factor, then verify
	// L*U row sums resemble the original (smoke check on the kernels).
	a := make([]float32, luBlock*luBlock)
	for i := 0; i < luBlock; i++ {
		for j := 0; j < luBlock; j++ {
			v := float32(1.0 / (1.0 + float64(i+j)))
			if i == j {
				v += luBlock
			}
			a[i*luBlock+j] = v
		}
	}
	orig := append([]float32(nil), a...)
	factorBlock(a)
	// Reconstruct a[0][*] = U[0][*] and a[*][0] = L[*][0]*U[0][0].
	for j := 0; j < luBlock; j++ {
		if math.Abs(float64(a[j]-orig[j])) > 1e-5 {
			t.Fatalf("U row 0 col %d = %v, want %v", j, a[j], orig[j])
		}
	}
	for i := 1; i < luBlock; i++ {
		got := a[i*luBlock] * a[0]
		if math.Abs(float64(got-orig[i*luBlock])) > 1e-3 {
			t.Fatalf("L col 0 row %d reconstructs %v, want %v", i, got, orig[i*luBlock])
		}
	}
}

func TestTSPFindsOptimumAcrossHosts(t *testing.T) {
	// Branch and bound returns the exact optimum under any schedule, so
	// checksums agree exactly. Test scale shrinks the instance.
	r1, r4 := checkAgree(t, RunTSP, 4, 0)
	if r4.Report.Barriers != 3 {
		t.Fatalf("barriers = %d, want 3 (Table 2)", r4.Report.Barriers)
	}
	if r1.Check <= 0 {
		t.Fatal("degenerate tour length")
	}
}

func TestTSPGreedyIsUpperBound(t *testing.T) {
	dist := tspDistances(12, 1)
	greedy := tspGreedy(dist, true)
	// The optimum found by a full search can't exceed the greedy bound.
	r, err := RunTSP(Params{Hosts: 1, Scale: 12.0 / 19.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if uint32(r.Check) > greedy {
		t.Fatalf("optimum %v exceeds greedy bound %d", r.Check, greedy)
	}
}

func TestSuiteIsComplete(t *testing.T) {
	s := Suite()
	if len(s) != 5 {
		t.Fatalf("suite has %d apps, want 5", len(s))
	}
	names := []string{"SOR", "IS", "WATER", "LU", "TSP"}
	for i, app := range s {
		if app.Name != names[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, app.Name, names[i])
		}
	}
}

func TestTable2ViewCounts(t *testing.T) {
	// The per-application view counts of Table 2 emerge from the
	// allocation sizes: SOR 16, IS 8 (at 8 hosts), WATER 6, LU 1, TSP 27.
	cases := []struct {
		run   Runner
		p     Params
		views int
	}{
		{RunSOR, Params{Hosts: 2, Scale: 0.01}, 16},
		{RunWATER, Params{Hosts: 2, Scale: 0.1}, 6},
		{RunLU, Params{Hosts: 2, Scale: 0.125}, 1},
		{RunTSP, Params{Hosts: 2, Scale: 1}, 27},
	}
	for _, c := range cases {
		r, err := c.run(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Report.ViewsUsed != c.views {
			t.Errorf("%s views = %d, want %d", r.Name, r.Report.ViewsUsed, c.views)
		}
	}
}
