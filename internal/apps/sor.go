package apps

import (
	"encoding/binary"
	"math"

	millipage "millipage"
	"millipage/internal/sim"
)

// SOR: red/black successive over-relaxation from the TreadMarks benchmark
// suite. The paper's input is a 32768x64 matrix iterated to 21 barriers
// (10 red/black iterations plus the start barrier); rows are allocated
// one by one, so each 256-byte row is its own minipage and the row is the
// sharing unit — "there was no need to modify SOR" (Section 4.3).
//
// The matrix is partitioned into contiguous row bands, one per thread.
// Each phase updates half the interior rows (odd rows in the red phase,
// even in the black) from their immediate neighbors; only the band
// boundary rows travel between hosts.

const (
	sorRowsFull  = 32768
	sorCols      = 64
	sorIterFull  = 10
	sorRowBytes  = sorCols * 4 // float32 elements
	sorCompBatch = 64          // rows per virtual-time charge
)

// RunSOR executes SOR on p.Hosts hosts at p.Scale of the paper's input.
func RunSOR(p Params) (Result, error) {
	p = p.withDefaults()
	rows := scaled(sorRowsFull, p.Scale, 64)
	iters := sorIterFull

	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:        p.Protocol,
		Hosts:           p.Hosts,
		SharedMemory:    rows*sorRowBytes + (64 << 10),
		Views:           16, // 4096/256: Table 2's value
		PageGranularity: p.PageGrain,
		Seed:            p.Seed,
		PerfectTimers:   p.PerfectTimers,
		Engine:          p.Engine,
		ParWorkers:      p.ParWorkers,
	})
	if err != nil {
		return Result{}, err
	}

	rowAddr := make([]millipage.Addr, rows)
	var timed sim.Duration
	var check float64

	report, err := cluster.Run(func(w *millipage.Worker) {
		// Host 0 allocates one minipage per row; each thread then
		// initializes its own band (first touch on the computing host, as
		// the original benchmark does), so the timed section starts with
		// rows owned where they are used. Boundary condition: hot top
		// edge, cold interior.
		if w.ThreadID() == 0 {
			for r := range rowAddr {
				rowAddr[r] = w.Malloc(sorRowBytes)
			}
		}
		w.Barrier()
		lo, hi := band(rows, w.NumThreads(), w.ThreadID())
		{
			cold := make([]byte, sorRowBytes)
			hot := make([]byte, sorRowBytes)
			for c := 0; c < sorCols; c++ {
				binary.LittleEndian.PutUint32(hot[4*c:], math.Float32bits(1.0))
			}
			for r := lo; r < hi; r++ {
				if r == 0 {
					w.Write(rowAddr[r], hot)
				} else {
					w.Write(rowAddr[r], cold)
				}
			}
		}
		w.Barrier() // barrier 1 of the paper's 21
		w.ResetStats()
		start := w.Now()
		cur := make([]byte, sorRowBytes)
		up := make([]byte, sorRowBytes)
		down := make([]byte, sorRowBytes)
		out := make([]byte, sorRowBytes)

		for it := 0; it < iters; it++ {
			for phase := 0; phase < 2; phase++ {
				var comp sim.Duration
				n := 0
				for r := lo; r < hi; r++ {
					if r == 0 || r == rows-1 || r%2 != phase {
						continue
					}
					w.Read(rowAddr[r-1], up)
					w.Read(rowAddr[r], cur)
					w.Read(rowAddr[r+1], down)
					sorUpdateRow(up, cur, down, out)
					w.Write(rowAddr[r], out)
					comp += sorCols * sorElem
					if n++; n == sorCompBatch {
						w.Compute(comp)
						comp, n = 0, 0
					}
				}
				if comp > 0 {
					w.Compute(comp)
				}
				w.Barrier() // 2 per iteration: 21 total with the start barrier
			}
		}
		if w.ThreadID() == 0 {
			timed = w.Now() - start
			// Checksum a sample of rows; equal across host counts iff the
			// DSM kept the matrix coherent.
			buf := make([]byte, sorRowBytes)
			for r := 0; r < rows; r += 97 {
				w.Read(rowAddr[r], buf)
				for c := 0; c < sorCols; c++ {
					check += float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*c:])))
				}
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "SOR", Hosts: p.Hosts, Report: report, Timed: timed, Check: check, Checked: check > 0, Engine: engineShape(cluster)}, nil
}

// band returns thread t's contiguous row range out of n threads.
func band(rows, n, t int) (lo, hi int) {
	per := rows / n
	lo = t * per
	hi = lo + per
	if t == n-1 {
		hi = rows
	}
	return lo, hi
}

// sorUpdateRow computes one relaxation step for a row from its vertical
// neighbors (the 64-column rows make horizontal terms intra-row).
func sorUpdateRow(up, cur, down, out []byte) {
	// The center row rides in a rolling three-element window (prev, curv,
	// next), so every element of every row is decoded exactly once — the
	// naive form re-decodes cur twice per column through the clamped
	// left/right terms. The summation keeps the original operand order,
	// so results are bit-identical.
	g := func(b []byte, c int) float32 {
		return math.Float32frombits(binary.LittleEndian.Uint32(b[4*c:]))
	}
	prev := g(cur, 0) // left term clamps to column 0 at the edge
	curv := prev
	for c := 0; c < sorCols; c++ {
		var next float32
		if c+1 < sorCols {
			next = g(cur, c+1)
		} else {
			next = curv // right term clamps to the last column
		}
		v := 0.25 * (g(up, c) + g(down, c) + prev + next)
		binary.LittleEndian.PutUint32(out[4*c:], math.Float32bits(v))
		prev = curv
		curv = next
	}
}
