package bench

import (
	"fmt"
	"io"

	"millipage/internal/apps"
	"millipage/internal/sim"
)

// AppRun is one application execution in the Figure 6 sweep.
type AppRun struct {
	Name    string
	Hosts   int
	Timed   sim.Duration
	Speedup float64
	Result  apps.Result
}

// Figure6Config controls the application sweep.
type Figure6Config struct {
	Protocol   string  // coherence protocol ("" = millipage; "ivy", "lrc", "lrc-mw")
	Hosts      []int   // cluster sizes (paper: 1..8)
	Scale      float64 // 1.0 = the paper's data sets
	Seed       int64
	ChunkWATER int    // chunking level for WATER (paper uses chunking for its results)
	Only       string
	Engine     string // event engine: "" / "seq" classic, "par" sharded parallel
}

// DefaultFigure6 matches the paper's runs: 1, 2, 4, 8 hosts at full scale,
// WATER chunked at the level the paper found optimal for 8 hosts (5).
func DefaultFigure6() Figure6Config {
	return Figure6Config{Hosts: []int{1, 2, 4, 8}, Scale: 1.0, Seed: 1, ChunkWATER: 5}
}

// Figure6 runs the five-application suite over the host counts and
// returns speedups relative to each application's 1-host run. The grid's
// cells are independent simulations, so they run Workers-wide; speedups
// and progress lines are derived afterwards in grid order, making the
// output byte-identical to a sequential sweep.
func Figure6(cfg Figure6Config, progress io.Writer) ([]AppRun, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	type cell struct {
		app   apps.App
		hosts int
	}
	var grid []cell
	for _, app := range apps.Suite() {
		if cfg.Only != "" && cfg.Only != app.Name {
			continue
		}
		for _, h := range cfg.Hosts {
			grid = append(grid, cell{app, h})
		}
	}
	results, err := sweep(len(grid), func(i int) (apps.Result, error) {
		c := grid[i]
		p := apps.Params{Protocol: cfg.Protocol, Hosts: c.hosts, Scale: cfg.Scale, Seed: cfg.Seed, Engine: cfg.Engine}
		if c.app.Name == "WATER" {
			p.ChunkLevel = cfg.ChunkWATER
		}
		res, err := c.app.Run(p)
		if err != nil {
			return res, fmt.Errorf("%s on %d hosts: %w", c.app.Name, c.hosts, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var out []AppRun
	var base sim.Duration
	for i, c := range grid {
		res := results[i]
		if c.hosts == cfg.Hosts[0] {
			base = res.Timed
		}
		sp := 0.0
		if res.Timed > 0 {
			sp = float64(base) / float64(res.Timed) * float64(cfg.Hosts[0])
		}
		out = append(out, AppRun{Name: c.app.Name, Hosts: c.hosts, Timed: res.Timed, Speedup: sp, Result: res})
		if progress != nil {
			fmt.Fprintf(progress, "  %-6s %d hosts: %10v  speedup %.2f\n", c.app.Name, c.hosts, res.Timed, sp)
		}
	}
	return out, nil
}

// WriteFigure6 renders the speedup table (Figure 6 left) and the
// execution-time breakdown at the largest host count (Figure 6 right).
func WriteFigure6(w io.Writer, cfg Figure6Config, runs []AppRun) {
	fmt.Fprintln(w, "Figure 6 (left): speedups")
	fmt.Fprintf(w, "%-8s", "app")
	for _, h := range cfg.Hosts {
		fmt.Fprintf(w, " %6dH", h)
	}
	fmt.Fprintln(w)
	for _, app := range apps.Suite() {
		if cfg.Only != "" && cfg.Only != app.Name {
			continue
		}
		fmt.Fprintf(w, "%-8s", app.Name)
		for _, h := range cfg.Hosts {
			for _, r := range runs {
				if r.Name == app.Name && r.Hosts == h {
					fmt.Fprintf(w, " %7.2f", r.Speedup)
				}
			}
		}
		fmt.Fprintln(w)
	}

	maxH := cfg.Hosts[len(cfg.Hosts)-1]
	fmt.Fprintf(w, "\nFigure 6 (right): execution breakdown at %d hosts\n", maxH)
	fmt.Fprintf(w, "%-8s %7s %9s %10s %11s %7s\n", "app", "comp%", "prefetch%", "readflt%", "writeflt%", "synch%")
	for _, r := range runs {
		if r.Hosts != maxH {
			continue
		}
		c, p, rf, wf, s := r.Result.Report.AvgBreakdown()
		fmt.Fprintf(w, "%-8s %7.1f %9.1f %10.1f %11.1f %7.1f\n",
			r.Name, c*100, p*100, rf*100, wf*100, s*100)
	}
}

// Table2 runs the suite once at the largest host count in the paper's
// Table 2 configuration (no chunking: the table reports per-allocation
// granularity) and renders the summary.
func Table2(w io.Writer, cfg Figure6Config, _ []AppRun) {
	maxH := cfg.Hosts[len(cfg.Hosts)-1]
	var suite []apps.App
	for _, app := range apps.Suite() {
		if cfg.Only != "" && cfg.Only != app.Name {
			continue
		}
		suite = append(suite, app)
	}
	results, err := sweep(len(suite), func(i int) (apps.Result, error) {
		return suite[i].Run(apps.Params{Protocol: cfg.Protocol, Hosts: maxH, Scale: cfg.Scale, Seed: cfg.Seed})
	})
	if err != nil {
		fmt.Fprintf(w, "Table 2: %v\n", err)
		return
	}
	var runs []AppRun
	for i, app := range suite {
		runs = append(runs, AppRun{Name: app.Name, Hosts: maxH, Result: results[i]})
	}
	fmt.Fprintf(w, "Table 2: application suite at %d hosts (paper values in parentheses)\n", maxH)
	paper := map[string][5]string{
		"SOR":   {"8 MB", "16", "a row, 256 bytes", "21", "-"},
		"IS":    {"2 KB", "8", "256 bytes", "90", "-"},
		"WATER": {"336 KB", "6", "a molecule, 672 bytes", "29", "6720"},
		"LU":    {"8 MB", "1", "a block, 4 KB", "577", "-"},
		"TSP":   {"785 KB", "27", "a tour, 148 bytes", "3", "681"},
	}
	fmt.Fprintf(w, "%-7s %-22s %-12s %-14s %-12s %s\n",
		"app", "shared mem", "views", "barriers", "locks", "minipages")
	for _, r := range runs {
		if r.Hosts != maxH {
			continue
		}
		rep := r.Result.Report
		p := paper[r.Name]
		fmt.Fprintf(w, "%-7s %-22s %-12s %-14s %-12s %d\n",
			r.Name,
			fmt.Sprintf("%s (%s)", byteLabel(rep.SharedUsed), p[0]),
			fmt.Sprintf("%d (%s)", rep.ViewsUsed, p[1]),
			fmt.Sprintf("%d (%s)", rep.Barriers, p[3]),
			fmt.Sprintf("%d (%s)", rep.LockAcquisitions, p[4]),
			rep.Minipages)
	}
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
