package bench

import (
	"reflect"
	"testing"

	"millipage/internal/apps"
	"millipage/internal/sim"
)

// Sequential ≡ parallel equivalence harness.
//
// The sharded engine's outcome is a pure function of (program, seed,
// shard count). Two narrow, documented divergences from the sequential
// engine remain (DESIGN.md §7 has the full argument):
//
//  1. NT-timer jitter: the sequential engine draws every sweep gap from
//     one historical stream (pinned by the golden digests, which must
//     not move); the sharded engine gives each shard its own stream —
//     the standard conservative-PDES construction. The sample paths
//     differ like a seed change, so default-timer cells compare the
//     jitter-independent observables. Under PerfectTimers no draw
//     happens and the engines must agree bit for bit, modulo (2).
//
//  2. Same-instant cross-host sends: when two hosts send at the same
//     virtual instant and the deliveries collide at one destination,
//     the sequential engine orders them by global scheduling genealogy
//     (which host's causal chain executed first); the parallel engine
//     cannot observe cross-shard interleavings inside a window and
//     resolves the tie canonically by (arrival, send time, shard, seq).
//     The permutation only reorders same-instant service, so every
//     logical observable (checksums, fault/message/synch counters,
//     footprint) is still identical; elapsed times can shift by the
//     service-order difference (µs-level). The suite cells where such
//     collisions occur are pinned in equivLoose below — an unexpected
//     cell diverging, or a pinned cell diverging beyond the µs scale,
//     fails the gate.

// equivLoose pins the (app, protocol) cells of the 8-host suite where
// same-instant cross-host collisions occur at scale 0.05 / seed 1.
var equivLoose = map[string]bool{
	"SOR/lrc-mw":      true,
	"WATER/millipage": true,
	"WATER/ivy":       true,
}

// countersMatch asserts every jitter- and ordering-independent
// observable: checksum, faults, synchronization structure, traffic,
// and footprint.
func countersMatch(t *testing.T, seq, par apps.Result) {
	t.Helper()
	if !seq.Checked || !par.Checked {
		t.Errorf("checked: seq %v, par %v, want both true", seq.Checked, par.Checked)
	}
	if seq.Check != par.Check {
		t.Errorf("checksum: seq %v, par %v", seq.Check, par.Check)
	}
	sr, pr := seq.Report, par.Report
	if sr.ReadFaults != pr.ReadFaults || sr.WriteFaults != pr.WriteFaults ||
		sr.Invalidations != pr.Invalidations || sr.CompetingRequests != pr.CompetingRequests {
		t.Errorf("faults: seq %d/%d/%d/%d, par %d/%d/%d/%d",
			sr.ReadFaults, sr.WriteFaults, sr.Invalidations, sr.CompetingRequests,
			pr.ReadFaults, pr.WriteFaults, pr.Invalidations, pr.CompetingRequests)
	}
	if sr.Barriers != pr.Barriers || sr.LockAcquisitions != pr.LockAcquisitions {
		t.Errorf("synch: seq %d/%d, par %d/%d", sr.Barriers, sr.LockAcquisitions, pr.Barriers, pr.LockAcquisitions)
	}
	if sr.MessagesSent != pr.MessagesSent || sr.BytesSent != pr.BytesSent {
		t.Errorf("traffic: seq %d/%d, par %d/%d", sr.MessagesSent, sr.BytesSent, pr.MessagesSent, pr.BytesSent)
	}
	if sr.Minipages != pr.Minipages || sr.ViewsUsed != pr.ViewsUsed || sr.SharedUsed != pr.SharedUsed {
		t.Errorf("footprint: seq %d/%d/%d, par %d/%d/%d",
			sr.Minipages, sr.ViewsUsed, sr.SharedUsed, pr.Minipages, pr.ViewsUsed, pr.SharedUsed)
	}
}

// closeEnough bounds the same-instant service-order shift: collisions
// permute µs-scale service at a handful of instants, never more than a
// 0.1% drift of the run.
func closeEnough(a, b sim.Duration) bool {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	m := int64(a)
	if m < int64(b) {
		m = int64(b)
	}
	return d*1000 <= m
}

// equivCell runs one application under both engines with idealized
// timers. Cells without same-instant collisions must match bit for bit;
// the pinned collision cells must match on every logical observable
// with elapsed inside the µs-scale service-order bound.
func equivCell(t *testing.T, app apps.App, protocol string, hosts int, scale float64, parWorkers int) {
	t.Helper()
	p := apps.Params{Protocol: protocol, Hosts: hosts, Scale: scale, Seed: 1, PerfectTimers: true}
	seq, err := app.Run(p)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	p.Engine = "par"
	p.ParWorkers = parWorkers
	par, err := app.Run(p)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	countersMatch(t, seq, par)
	if equivLoose[app.Name+"/"+protocol] {
		if !closeEnough(seq.Timed, par.Timed) {
			t.Errorf("timed section: seq %v, par %v (beyond the service-order bound)", seq.Timed, par.Timed)
		}
		if !closeEnough(sim.Duration(seq.Report.Elapsed), sim.Duration(par.Report.Elapsed)) {
			t.Errorf("elapsed: seq %v, par %v (beyond the service-order bound)", seq.Report.Elapsed, par.Report.Elapsed)
		}
		return
	}
	if seq.Timed != par.Timed {
		t.Errorf("timed section: seq %v, par %v", seq.Timed, par.Timed)
	}
	if !reflect.DeepEqual(seq.Report, par.Report) {
		t.Errorf("reports differ:\nseq: %+v\npar: %+v", seq.Report, par.Report)
	}
}

// jitterCell runs one application under both engines with the default
// NT-timer model and asserts the jitter-independent observables. Fault
// and traffic counters are NOT in that set: under lock-based apps the
// jitter path shifts lock transfer order, and with it the coherence
// traffic — already true of a sequential seed change.
func jitterCell(t *testing.T, app apps.App, protocol string, hosts int, scale float64) {
	t.Helper()
	p := apps.Params{Protocol: protocol, Hosts: hosts, Scale: scale, Seed: 1}
	seq, err := app.Run(p)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	p.Engine = "par"
	par, err := app.Run(p)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !seq.Checked || !par.Checked {
		t.Errorf("checked: seq %v, par %v, want both true", seq.Checked, par.Checked)
	}
	if seq.Check != par.Check {
		t.Errorf("checksum: seq %v, par %v", seq.Check, par.Check)
	}
	sr, pr := seq.Report, par.Report
	if sr.Barriers != pr.Barriers {
		t.Errorf("barriers: seq %d, par %d", sr.Barriers, pr.Barriers)
	}
	if sr.Minipages != pr.Minipages || sr.ViewsUsed != pr.ViewsUsed || sr.SharedUsed != pr.SharedUsed {
		t.Errorf("footprint: seq %d/%d/%d, par %d/%d/%d",
			sr.Minipages, sr.ViewsUsed, sr.SharedUsed, pr.Minipages, pr.ViewsUsed, pr.SharedUsed)
	}
}

var equivMatrix = []struct {
	app      string
	protocol string
}{
	{"SOR", "millipage"},
	{"TSP", "ivy"},
	{"IS", "lrc"},
	{"WATER", "lrc-mw"},
}

func appByName(name string) apps.App {
	for _, app := range apps.Suite() {
		if app.Name == name {
			return app
		}
	}
	panic("unknown app " + name)
}

// TestEngineEquivalence is the sequential ≡ parallel digest gate: the
// five-application suite under all four protocols at 8 hosts with
// idealized timers. `-short` (the -race CI leg) runs a reduced matrix —
// one cell per protocol.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		for _, cell := range equivMatrix {
			t.Run(cell.app+"/"+cell.protocol, func(t *testing.T) {
				equivCell(t, appByName(cell.app), cell.protocol, 8, 0.05, 0)
			})
		}
		return
	}
	for _, app := range apps.Suite() {
		for _, protocol := range []string{"millipage", "ivy", "lrc", "lrc-mw"} {
			t.Run(app.Name+"/"+protocol, func(t *testing.T) {
				equivCell(t, app, protocol, 8, 0.05, 0)
			})
		}
	}
}

// TestEngineEquivalenceNTTimers covers the default jitter model, where
// the engines sample distinct (but per-engine deterministic) NT-timer
// paths: the computation's outcome and the workload-structural counters
// must still agree exactly.
func TestEngineEquivalenceNTTimers(t *testing.T) {
	cells := equivMatrix
	if !testing.Short() {
		cells = append(cells, []struct {
			app      string
			protocol string
		}{
			{"LU", "millipage"},
			{"SOR", "lrc-mw"},
			{"WATER", "ivy"},
			{"TSP", "lrc"},
		}...)
	}
	for _, cell := range cells {
		t.Run(cell.app+"/"+cell.protocol, func(t *testing.T) {
			jitterCell(t, appByName(cell.app), cell.protocol, 8, 0.05)
		})
	}
}

// TestEngineWorkerInvariance: the parallel outcome is a pure function of
// (program, seed, shard count) — the worker-goroutine count must not
// leak into any observable, even under the NT jitter model.
func TestEngineWorkerInvariance(t *testing.T) {
	app := appByName("SOR")
	run := func(workers int) apps.Result {
		r, err := app.Run(apps.Params{Hosts: 8, Scale: 0.05, Seed: 1, Engine: "par", ParWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	one := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		if got.Timed != one.Timed || got.Check != one.Check {
			t.Errorf("workers=%d: timed/check %v/%v, want %v/%v", w, got.Timed, got.Check, one.Timed, one.Check)
		}
		if !reflect.DeepEqual(got.Report, one.Report) {
			t.Errorf("workers=%d: report differs from workers=1", w)
		}
	}
}
