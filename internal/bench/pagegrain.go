package bench

import (
	"fmt"
	"io"

	"millipage/internal/apps"
)

// PageGrainComparison runs the five-application suite at 8 hosts twice —
// with per-allocation minipages and with the traditional page-granularity
// layout. The result is the nuanced version of the paper's story: where
// the sharing unit is small and write-interleaved (IS), fine grain wins
// outright; where reads dominate (WATER's read phase, TSP's one-shot
// tours), page-size units act as free aggregation and the right answer is
// the paper's chunking middle ground (Figure 7); LU is the control, its
// sharing unit already being a page.
func PageGrainComparison(w io.Writer, scale float64, seed int64) error {
	fmt.Fprintln(w, "Granularity extremes on the application suite at 8 hosts")
	fmt.Fprintf(w, "%-7s %13s %13s %9s %16s %16s\n",
		"app", "minipages", "pages", "slowdown", "faults (mini)", "faults (page)")
	for _, app := range apps.Suite() {
		fine, err := app.Run(apps.Params{Hosts: 8, Scale: scale, Seed: seed})
		if err != nil {
			return fmt.Errorf("%s minipage run: %w", app.Name, err)
		}
		page, err := app.Run(apps.Params{Hosts: 8, Scale: scale, Seed: seed, PageGrain: true})
		if err != nil {
			return fmt.Errorf("%s page-grain run: %w", app.Name, err)
		}
		slow := 0.0
		if fine.Timed > 0 {
			slow = float64(page.Timed) / float64(fine.Timed)
		}
		fmt.Fprintf(w, "%-7s %13v %13v %8.2fx %16d %16d\n",
			app.Name, fine.Timed, page.Timed, slow,
			fine.Report.ReadFaults+fine.Report.WriteFaults,
			page.Report.ReadFaults+page.Report.WriteFaults)
	}
	fmt.Fprintln(w, "(>1x: fine grain wins — write-interleaved sharing units; <1x: page units")
	fmt.Fprintln(w, " act as aggregation for read-dominated patterns, which is why the paper")
	fmt.Fprintln(w, " chunks WATER; LU is the control: its blocks are already page-sized)")
	return nil
}
