package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestMsgHopAllocFree pins the clean message path's steady state: with
// pooled envelopes and tracing off, a full one-hop send/deliver/handle
// cycle performs zero heap allocations per message. It reuses the
// perfbench workload so the regression test and the recorded benchmark
// measure exactly the same path.
func TestMsgHopAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	r := testing.Benchmark(benchMsgHop)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Fatalf("message hop allocates %d objects/op in steady state, want 0", allocs)
	}
}

// TestE2ESOR8AllocsRegression is the allocation gate on the end-to-end
// acceptance workload: it reads the E2ESOR8 allocs/op pinned in
// BENCH_sim.json at the repo root and fails if the current simulator
// exceeds twice that value. Allocation counts are deterministic enough
// for a 2x fence (unlike wall-clock time, which shared CI boxes make
// unpinnable), so this catches a pooling regression — a leaked fast
// path, a pool gated off, per-message garbage reintroduced — before it
// shows up as a slow simulator.
func TestE2ESOR8AllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	blob, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Skipf("no pinned report: %v", err)
	}
	var report struct {
		Benchmarks []PerfPoint `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_sim.json: %v", err)
	}
	var pinned int64
	for _, p := range report.Benchmarks {
		if p.Name == "E2ESOR8" {
			pinned = p.AllocsPerOp
		}
	}
	if pinned <= 0 {
		t.Fatal("BENCH_sim.json has no E2ESOR8 allocs/op pin")
	}
	r := testing.Benchmark(benchE2ESOR8)
	if got := r.AllocsPerOp(); got > 2*pinned {
		t.Fatalf("E2ESOR8 allocates %d objects/op, more than 2x the pinned %d", got, pinned)
	}
}

// TestE2ESOR64ParAllocsRegression extends the allocation gate to the
// parallel engine's steady state, against the ParSpeedup row pinned in
// BENCH_sim.json. The sharded path has its own ways to regress that the
// sequential workload never exercises: goroutines spawned per window
// instead of pooled, a sorting closure or reflect swapper on the merge
// barrier, outbox capacity dropped instead of recycled — each one
// multiplies by the tens of thousands of windows in a run.
func TestE2ESOR64ParAllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	blob, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Skipf("no pinned report: %v", err)
	}
	var report struct {
		Benchmarks []PerfPoint `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_sim.json: %v", err)
	}
	var pinned int64
	for _, p := range report.Benchmarks {
		if p.Name == "ParSpeedup" {
			pinned = p.AllocsPerOp
		}
	}
	if pinned <= 0 {
		t.Fatal("BENCH_sim.json has no ParSpeedup allocs/op pin")
	}
	r := testing.Benchmark(benchE2ESOR64Par)
	if got := r.AllocsPerOp(); got > 2*pinned {
		t.Fatalf("64-host parallel SOR allocates %d objects/op, more than 2x the pinned %d", got, pinned)
	}
}

// TestE2EServeAllocsRegression gates the serving path's steady state: it
// reads the E2EServe8 allocs/op pinned in BENCH_sim.json at the repo
// root and fails if the current scenario run exceeds twice that value.
// The pin is setup-dominated (~1.2k allocations for a 20k-op scenario),
// so per-op garbage on the GET/PUT hot loop — a boxed histogram add, an
// interface escape in the generator, a per-response oracle allocation —
// multiplies past the fence immediately.
func TestE2EServeAllocsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	blob, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Skipf("no pinned report: %v", err)
	}
	var report struct {
		Benchmarks []PerfPoint `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_sim.json: %v", err)
	}
	var pinned int64
	for _, p := range report.Benchmarks {
		if p.Name == "E2EServe8" {
			pinned = p.AllocsPerOp
		}
	}
	if pinned <= 0 {
		t.Fatal("BENCH_sim.json has no E2EServe8 allocs/op pin")
	}
	r := testing.Benchmark(benchE2EServe8)
	if got := r.AllocsPerOp(); got > 2*pinned {
		t.Fatalf("serving scenario allocates %d objects/op, more than 2x the pinned %d", got, pinned)
	}
}
