package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServingWorkersInvariance is the acceptance criterion on the sweep
// layer: the serving rows — fingerprints included — must be identical
// whether the scenarios run sequentially or across the full sweep width.
// Each scenario's stream is a pure function of (seed, thread id), so the
// sweep may only change wall-clock time, never results.
func TestServingWorkersInvariance(t *testing.T) {
	names := []string{"smoke", "smoke-lrc-mw"}
	prev := SetWorkers(1)
	seq, err := RunServing(names)
	SetWorkers(4)
	par, parErr := RunServing(names)
	SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if parErr != nil {
		t.Fatal(parErr)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs across sweep widths:\n seq: %+v\n par: %+v", i, seq[i], par[i])
		}
	}
}

// TestWriteServingPreservesBenchmarks checks the BENCH_sim.json contract:
// writing the serving section must leave the wall-clock benchmarks
// section byte-for-byte intact, and vice versa the reader must round-trip
// rows it did not produce.
func TestWriteServingPreservesBenchmarks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")
	pre := benchReport{
		Note:       "pinned",
		Benchmarks: []PerfPoint{{Name: "E2ESOR8", Baseline: PerfBaseline{NsPerOp: 1, AllocsPerOp: 2, BytesPerOp: 3}, NsPerOp: 4, AllocsPerOp: 5, BytesPerOp: 6, Speedup: 7}},
	}
	if err := writeBenchReport(path, pre); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WriteServing(&out, []string{"smoke"}, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "smoke") {
		t.Fatalf("table output missing the scenario row:\n%s", out.String())
	}
	post, err := readBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if post.Note != "pinned" || len(post.Benchmarks) != 1 || post.Benchmarks[0] != pre.Benchmarks[0] {
		t.Fatalf("serving write disturbed the benchmarks section: %+v", post)
	}
	if len(post.Serving) != 1 || post.Serving[0].Name != "smoke" || post.Serving[0].Fingerprint == "" {
		t.Fatalf("serving section not written: %+v", post.Serving)
	}
	if post.Serving[0].GetP999Us <= 0 || post.Serving[0].ThroughputOpsPerSec <= 0 {
		t.Fatalf("serving row missing tail latency or throughput: %+v", post.Serving[0])
	}
}

// TestServingRowsPinned checks the repo-root BENCH_sim.json against a
// live run: the recorded fingerprint of each serving row must match what
// the scenario produces today, so the published latency percentiles are
// never from a stream the current code no longer generates. Rows for
// scenarios this build does not know are a failure too — stale names
// mean the file was not regenerated after a registry change.
func TestServingRowsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the recorded serving scenarios")
	}
	blob, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Skipf("no pinned report: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_sim.json: %v", err)
	}
	if len(report.Serving) == 0 {
		t.Fatal("BENCH_sim.json has no serving rows")
	}
	for _, row := range report.Serving {
		if row.Name == "million" {
			continue // covered by TestMillion in internal/serve; too big for this gate
		}
		pts, err := RunServing([]string{row.Name})
		if err != nil {
			t.Errorf("%s: %v", row.Name, err)
			continue
		}
		if pts[0].Fingerprint != row.Fingerprint {
			t.Errorf("%s: fingerprint %s, recorded %s — regenerate the serving rows",
				row.Name, pts[0].Fingerprint, row.Fingerprint)
		}
	}
}
