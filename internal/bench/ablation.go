package bench

import (
	"fmt"
	"io"

	millipage "millipage"
	"millipage/internal/apps"
	"millipage/internal/dsm"
	"millipage/internal/lrc"
	"millipage/internal/sim"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out:
//
//   - AblationLRC: the paper's Section 5 proposal — once chunking makes
//     minipages coarser than the sharing unit, a lazy-release-consistency
//     protocol can absorb the reintroduced false sharing. Compares
//     sequential consistency at fine grain, SC on chunked minipages
//     (ping-pong), and home-based LRC on the same chunked minipages.
//
//   - AblationTimers: Section 3.5's "once the fm polling problem is
//     resolved and/or the operating system timer resolution is refined"
//     — the suite with and without the NT timer pathology.

// LRCRow is one configuration of the LRC ablation.
type LRCRow struct {
	Name        string
	Elapsed     sim.Duration
	WriteFaults uint64
	Messages    uint64
}

// AblationLRC runs the regime Section 5 describes. Each iteration, every
// host updates its own interleaved 64-byte slots (twice, so invalidations
// bite), then reads the whole array, then barriers:
//
//   - SC at fine grain avoids false sharing but pays one fetch per tiny
//     minipage in the read phase;
//   - SC on chunked minipages fetches fewer, larger minipages but the
//     interleaved writers ping-pong each chunk;
//   - LRC on the same chunked minipages takes one twin per chunk per
//     interval, merges run-length diffs at the barrier, and keeps the
//     coarse fetch granularity — both advantages at once.
func AblationLRC(w io.Writer, hosts, slots, iters, chunk int) error {
	const slotBytes = 64
	const writeRounds = 2
	workPerSlot := 100 * sim.Microsecond

	scRun := func(chunkLevel int) (LRCRow, error) {
		cluster, err := millipage.NewCluster(millipage.Config{
			Hosts:        hosts,
			SharedMemory: 1 << 20,
			Views:        16,
			ChunkLevel:   chunkLevel,
			Seed:         7,
		})
		if err != nil {
			return LRCRow{}, err
		}
		vas := make([]millipage.Addr, slots)
		_, err = cluster.Run(func(wk *millipage.Worker) {
			if wk.Host() == 0 {
				for i := range vas {
					vas[i] = wk.Malloc(slotBytes)
				}
			}
			wk.Barrier()
			for it := 0; it < iters; it++ {
				for round := 0; round < writeRounds; round++ {
					for sIdx := wk.Host(); sIdx < slots; sIdx += hosts {
						wk.WriteU32(vas[sIdx], uint32(it))
						wk.Compute(workPerSlot)
					}
				}
				for sIdx := 0; sIdx < slots; sIdx++ {
					_ = wk.ReadU32(vas[sIdx])
				}
				wk.Barrier()
			}
		})
		if err != nil {
			return LRCRow{}, err
		}
		rep := cluster.System()
		var msgs uint64
		var wf uint64
		for i := 0; i < hosts; i++ {
			msgs += rep.Net.Endpoint(i).Stats().Sent
			wf += rep.Host(i).AS.WriteFaults
		}
		return LRCRow{Elapsed: rep.Elapsed(), WriteFaults: wf, Messages: msgs}, nil
	}

	lrcRun := func(chunkLevel int) (LRCRow, error) {
		sys, err := lrc.New(lrc.Options{
			Hosts:      hosts,
			SharedSize: 1 << 20,
			Views:      16,
			ChunkLevel: chunkLevel,
			Seed:       7,
			Costs:      dsm.DefaultCosts(),
		})
		if err != nil {
			return LRCRow{}, err
		}
		vas := make([]uint64, slots)
		err = sys.Run(func(t *lrc.Thread) {
			if t.Host() == 0 {
				for i := range vas {
					vas[i] = t.Malloc(slotBytes)
				}
			}
			t.Barrier()
			for it := 0; it < iters; it++ {
				for round := 0; round < writeRounds; round++ {
					for sIdx := t.Host(); sIdx < slots; sIdx += hosts {
						t.WriteU32(vas[sIdx], uint32(it))
						t.Compute(workPerSlot)
					}
				}
				for sIdx := 0; sIdx < slots; sIdx++ {
					_ = t.ReadU32(vas[sIdx])
				}
				t.Barrier()
			}
		})
		if err != nil {
			return LRCRow{}, err
		}
		var msgs uint64
		for i := 0; i < hosts; i++ {
			msgs += sys.Net.Endpoint(i).Stats().Sent
		}
		return LRCRow{Elapsed: sys.Elapsed(), WriteFaults: sys.Stats.WriteFault, Messages: msgs}, nil
	}

	mwRun := func(chunkLevel int) (LRCRow, error) {
		sys, err := lrc.NewMW(lrc.Options{
			Hosts:      hosts,
			SharedSize: 1 << 20,
			Views:      16,
			ChunkLevel: chunkLevel,
			Seed:       7,
			Costs:      dsm.DefaultCosts(),
		})
		if err != nil {
			return LRCRow{}, err
		}
		vas := make([]uint64, slots)
		err = sys.Run(func(t *lrc.MWThread) {
			if t.Host() == 0 {
				for i := range vas {
					vas[i] = t.Malloc(slotBytes)
				}
			}
			t.Barrier()
			for it := 0; it < iters; it++ {
				for round := 0; round < writeRounds; round++ {
					for sIdx := t.Host(); sIdx < slots; sIdx += hosts {
						t.WriteU32(vas[sIdx], uint32(it))
						t.Compute(workPerSlot)
					}
				}
				for sIdx := 0; sIdx < slots; sIdx++ {
					_ = t.ReadU32(vas[sIdx])
				}
				t.Barrier()
			}
		})
		if err != nil {
			return LRCRow{}, err
		}
		var msgs uint64
		for i := 0; i < hosts; i++ {
			msgs += sys.Net.Endpoint(i).Stats().Sent
		}
		return LRCRow{Elapsed: sys.Elapsed(), WriteFaults: sys.Stats.WriteFault, Messages: msgs}, nil
	}

	runs := []struct {
		name string
		run  func() (LRCRow, error)
	}{
		{"SC, fine grain (1 slot/minipage)", func() (LRCRow, error) { return scRun(1) }},
		{fmt.Sprintf("SC, chunked (%d slots/minipage)", chunk), func() (LRCRow, error) { return scRun(chunk) }},
		{fmt.Sprintf("LRC, chunked (%d slots/minipage)", chunk), func() (LRCRow, error) { return lrcRun(chunk) }},
		{fmt.Sprintf("LRC-MW, chunked (%d slots/minipage)", chunk), func() (LRCRow, error) { return mwRun(chunk) }},
	}
	rows, err := sweep(len(runs), func(i int) (LRCRow, error) {
		r, err := runs[i].run()
		r.Name = runs[i].name
		return r, err
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Ablation: reduced consistency over chunked minipages (Section 5)\n")
	fmt.Fprintf(w, "%d hosts, %d slots x %d iterations, interleaved writers\n", hosts, slots, iters)
	fmt.Fprintf(w, "%-36s %12s %13s %10s\n", "configuration", "elapsed", "write faults", "messages")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %12v %13d %10d\n", r.Name, r.Elapsed, r.WriteFaults, r.Messages)
	}
	fmt.Fprintln(w, "(expected: SC-chunked ping-pongs; LRC absorbs the intra-minipage false")
	fmt.Fprintln(w, " sharing while keeping the chunked layout's lower minipage count; LRC-MW")
	fmt.Fprintln(w, " additionally merges concurrent twins with run-length diffs at the barrier,")
	fmt.Fprintln(w, " paying the calibrated twin/diff costs instead of whole-minipage refetches)")
	return nil
}

// MWRow is one protocol's run of an SC-vs-multi-writer comparison
// kernel.
type MWRow struct {
	Name     string
	Protocol string
	Timed    sim.Duration
	Faults   uint64
	Messages uint64
}

// FalseShareKernel runs the interleaved-writer false-sharing kernel —
// 64 slots chunked eight to a minipage across 4 hosts, so every chunk
// has four concurrent writers — under the given protocol.
func FalseShareKernel(protocol string, seed int64) (MWRow, error) {
	const slots, iters, slotBytes = 64, 4, 64
	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:     protocol,
		Hosts:        4,
		SharedMemory: 1 << 20,
		Views:        16,
		ChunkLevel:   8,
		Seed:         seed,
	})
	if err != nil {
		return MWRow{}, err
	}
	vas := make([]millipage.Addr, slots)
	rep, err := cluster.Run(func(wk *millipage.Worker) {
		if wk.Host() == 0 {
			for i := range vas {
				vas[i] = wk.Malloc(slotBytes)
			}
		}
		wk.Barrier()
		for it := 0; it < iters; it++ {
			for i := wk.Host(); i < slots; i += wk.NumHosts() {
				wk.WriteU32(vas[i], uint32(it))
				wk.Compute(100 * sim.Microsecond)
			}
			wk.Barrier()
		}
	})
	if err != nil {
		return MWRow{}, err
	}
	return MWRow{
		Name: "falseshare chunk8/4H", Protocol: protocol, Timed: sim.Duration(rep.Elapsed),
		Faults: rep.ReadFaults + rep.WriteFaults, Messages: rep.MessagesSent,
	}, nil
}

// WaterChunkPoint runs WATER at the paper's 8-host chunking level
// (Figure 7's optimum, level 5) under the given protocol.
func WaterChunkPoint(protocol string, scale float64, seed int64) (MWRow, error) {
	res, err := apps.RunWATER(apps.Params{
		Protocol: protocol, Hosts: 8, Scale: scale, Seed: seed, ChunkLevel: 5,
	})
	if err != nil {
		return MWRow{}, err
	}
	rep := res.Report
	return MWRow{
		Name: "WATER chunk5/8H", Protocol: protocol, Timed: res.Timed,
		Faults: rep.ReadFaults + rep.WriteFaults, Messages: rep.MessagesSent,
	}, nil
}

// MWCompare charts the Section 4.2 claim directly: the twin/diff
// machinery Millipage declines is priced with the calibrated twindiff
// cost model and run head to head against SC-Millipage on the two
// workloads where the choice matters — the interleaved-writer false-
// sharing kernel (chunked minipages, every chunk has four concurrent
// writers) and WATER at the paper's 8-host chunking level.
func MWCompare(w io.Writer, scale float64, seed int64) error {
	kernels := []func(string) (MWRow, error){
		func(p string) (MWRow, error) { return FalseShareKernel(p, seed) },
		func(p string) (MWRow, error) { return WaterChunkPoint(p, scale, seed) },
	}
	protocols := []string{"millipage", "lrc-mw"}
	rows, err := sweep(len(kernels)*len(protocols), func(i int) (MWRow, error) {
		return kernels[i/len(protocols)](protocols[i%len(protocols)])
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "SC-Millipage vs multi-writer LRC (calibrated twindiff cost model)")
	fmt.Fprintf(w, "%-22s %-10s %12s %10s %10s\n", "workload", "protocol", "timed", "faults", "messages")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-10s %12v %10d %10d\n", r.Name, r.Protocol, r.Timed, r.Faults, r.Messages)
	}
	fmt.Fprintln(w, "(lrc-mw trades SC's per-write invalidation ping-pong for twin creation at")
	fmt.Fprintln(w, " first write and run-length diff exchange at synchronization; the Section 4.2")
	fmt.Fprintln(w, " diff cost shows up as virtual time charged per twin/diff operation)")
	return nil
}

// AblationComposedViews compares WATER's read-phase strategies at 8
// hosts (Section 5's composed-views proposal): per-molecule minipages
// with sequential faults, the paper's chunking compromise, and composed
// views — fine-grain sharing with a gang-fetched read phase.
func AblationComposedViews(w io.Writer, scale float64, seed int64) error {
	type cfg struct {
		name string
		p    apps.Params
	}
	cfgs := []cfg{
		{"fine grain (chunk 1)", apps.Params{Hosts: 8, Scale: scale, Seed: seed}},
		{"chunked (level 5)", apps.Params{Hosts: 8, Scale: scale, Seed: seed, ChunkLevel: 5}},
		{"composed views (gang read phase)", apps.Params{Hosts: 8, Scale: scale, Seed: seed, ComposedViews: true}},
	}
	results, err := sweep(len(cfgs), func(i int) (apps.Result, error) {
		return apps.RunWATER(cfgs[i].p)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: WATER read-phase strategies at 8 hosts (Section 5, composed views)")
	fmt.Fprintf(w, "%-36s %12s %10s %12s\n", "configuration", "timed", "faults", "competing")
	for i, c := range cfgs {
		res := results[i]
		rep := res.Report
		fmt.Fprintf(w, "%-36s %12v %10d %12d\n",
			c.name, res.Timed, rep.ReadFaults+rep.WriteFaults, rep.CompetingRequests)
	}
	fmt.Fprintln(w, "(composed views cut the read phase substantially while keeping per-molecule")
	fmt.Fprintln(w, " sharing; chunking still wins overall for WATER because the force-combine")
	fmt.Fprintln(w, " phase also benefits from aggregation — the arbitration Section 5 sketches")
	fmt.Fprintln(w, " would want composed views there too)")
	return nil
}

// AblationTimers compares the suite at 8 hosts with the NT timer
// pathology (the paper's measured reality) and with ideal service
// threads.
func AblationTimers(w io.Writer, scale float64, seed int64) error {
	suite := apps.Suite()
	// Two runs per application (with and without the pathology), all
	// independent: flatten to a 2-wide grid.
	results, err := sweep(2*len(suite), func(i int) (apps.Result, error) {
		p := apps.Params{Hosts: 8, Scale: scale, Seed: seed, PerfectTimers: i%2 == 1}
		return suite[i/2].Run(p)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: NT timer pathology vs ideal service threads (Section 3.5)")
	fmt.Fprintf(w, "%-8s %14s %14s %9s\n", "app", "NT timers", "ideal timers", "gain")
	for i, app := range suite {
		real, ideal := results[2*i], results[2*i+1]
		gain := float64(real.Timed) / float64(ideal.Timed)
		fmt.Fprintf(w, "%-8s %14v %14v %8.2fx\n", app.Name, real.Timed, ideal.Timed, gain)
	}
	fmt.Fprintln(w, "(the paper attributes ~2/3 of its 750us average fault service time to")
	fmt.Fprintln(w, " late sweeper wakeups; ideal timers recover most of it)")
	return nil
}
