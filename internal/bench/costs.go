// Package bench contains one driver per table and figure of the paper's
// evaluation (Section 4), each regenerating the same rows or series the
// paper reports, on the simulated testbed.
package bench

import (
	"fmt"
	"io"

	millipage "millipage"
	"millipage/internal/dsm"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/twindiff"
)

// Table1 prints the cost of basic operations (paper Table 1), combining
// the calibrated local costs with the messaging model's end-to-end
// send/receive times.
func Table1(w io.Writer) {
	c := dsm.DefaultCosts()
	net := fastmsg.DefaultParams()
	fmt.Fprintln(w, "Table 1: cost of basic operations (paper value in parentheses)")
	rows := []struct {
		op    string
		got   sim.Duration
		paper string
	}{
		{"access fault", c.AccessFault, "26"},
		{"get protection", c.GetProt, "7"},
		{"set protection", c.SetProt, "12"},
		{"header message send/recv (32 bytes)", net.OneWay(32), "12"},
		{"a data message send/recv (0.5 KB)", net.OneWay(512), "22"},
		{"a data message send/recv (1 KB)", net.OneWay(1024), "34"},
		{"a data message send/recv (4 KB)", net.OneWay(4096), "90"},
		{"minipage translation (MPT lookup)", c.MPTLookup, "7"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-38s %6.1f us   (%s)\n", r.op, r.got.Microseconds(), r.paper)
	}
}

// FetchCosts measures the end-to-end minipage fetch times of Section 4.2:
// bringing a minipage in for reading and for writing, for 128-byte and
// 4 KB minipages, with varying numbers of read copies to invalidate.
func FetchCosts(w io.Writer) error {
	fmt.Fprintln(w, "Section 4.2: minipage fetch times (paper: read 204-314 us; write 212-366 / 327-480 us)")
	for _, size := range []int{128, 4096} {
		rt, err := measureReadFetch(size)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  read  fetch %4dB minipage:            %7.0f us\n", size, rt.Microseconds())
		for _, copies := range []int{1, 3, 7} {
			wt, err := measureWriteFetch(size, copies)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  write fetch %4dB, %d read copies:      %7.0f us\n", size, copies, wt.Microseconds())
		}
	}
	return nil
}

// measureReadFetch times host 1 read-faulting a minipage owned by host 0,
// averaged over several cold fetches.
func measureReadFetch(size int) (sim.Duration, error) {
	const trials = 8
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts: 2, SharedMemory: 1 << 20, Views: 4, Seed: 42,
	})
	if err != nil {
		return 0, err
	}
	addrs := make([]millipage.Addr, trials)
	report, err := cluster.Run(func(wk *millipage.Worker) {
		if wk.Host() == 0 {
			data := make([]byte, size)
			for i := range addrs {
				addrs[i] = wk.Malloc(size)
				wk.Write(addrs[i], data)
			}
		}
		wk.Barrier()
		if wk.Host() == 1 {
			buf := make([]byte, size)
			for i := range addrs {
				wk.Read(addrs[i], buf)
			}
		}
		wk.Barrier()
	})
	if err != nil {
		return 0, err
	}
	for _, tr := range report.Threads {
		if tr.Host == 1 {
			return tr.ReadFault / trials, nil
		}
	}
	return 0, fmt.Errorf("bench: host 1 thread not found")
}

// measureWriteFetch times a write fault that must invalidate `copies`
// read copies first.
func measureWriteFetch(size, copies int) (sim.Duration, error) {
	const trials = 8
	hosts := copies + 1
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts: hosts + 1, SharedMemory: 1 << 20, Views: 4, Seed: 42,
	})
	if err != nil {
		return 0, err
	}
	addrs := make([]millipage.Addr, trials)
	writer := hosts // the last host does the measured writes
	report, err := cluster.Run(func(wk *millipage.Worker) {
		if wk.Host() == 0 {
			data := make([]byte, size)
			for i := range addrs {
				addrs[i] = wk.Malloc(size)
				wk.Write(addrs[i], data)
			}
		}
		wk.Barrier()
		// Hosts 0..copies-1 take read copies.
		if wk.Host() < copies {
			buf := make([]byte, size)
			for i := range addrs {
				wk.Read(addrs[i], buf)
			}
		}
		wk.Barrier()
		if wk.Host() == writer {
			data := make([]byte, size)
			for i := range addrs {
				wk.Write(addrs[i], data)
			}
		}
		wk.Barrier()
	})
	if err != nil {
		return 0, err
	}
	for _, tr := range report.Threads {
		if tr.Host == writer {
			return tr.WriteFlt / trials, nil
		}
	}
	return 0, fmt.Errorf("bench: writer thread not found")
}

// SynchCosts measures barrier and lock costs (Section 4.2: barrier
// 59-153 us linear in hosts; lock followed by unlock 67-80 us).
func SynchCosts(w io.Writer) error {
	fmt.Fprintln(w, "Section 4.2: synchronization (paper: barrier 59-153 us for 1-8 hosts; lock+unlock 67-80 us)")
	for hosts := 1; hosts <= 8; hosts++ {
		d, err := measureBarrier(hosts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  barrier, %d host(s): %6.0f us\n", hosts, d.Microseconds())
	}
	l, err := measureLockUnlock()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  lock + unlock:      %6.0f us\n", l.Microseconds())
	return nil
}

func measureBarrier(hosts int) (sim.Duration, error) {
	const trials = 16
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts: hosts, SharedMemory: 1 << 16, Views: 1, Seed: 42,
	})
	if err != nil {
		return 0, err
	}
	report, err := cluster.Run(func(wk *millipage.Worker) {
		for i := 0; i < trials; i++ {
			wk.Barrier()
		}
	})
	if err != nil {
		return 0, err
	}
	return report.Threads[0].Synch / trials, nil
}

func measureLockUnlock() (sim.Duration, error) {
	const trials = 16
	cluster, err := millipage.NewCluster(millipage.Config{
		Hosts: 2, SharedMemory: 1 << 16, Views: 1, Seed: 42,
	})
	if err != nil {
		return 0, err
	}
	report, err := cluster.Run(func(wk *millipage.Worker) {
		if wk.Host() == 1 { // uncontended, non-manager host
			for i := 0; i < trials; i++ {
				wk.Lock(5)
				wk.Unlock(5)
			}
		}
		wk.Barrier()
	})
	if err != nil {
		return 0, err
	}
	for _, tr := range report.Threads {
		if tr.Host == 1 {
			return tr.Synch / trials, nil
		}
	}
	return 0, fmt.Errorf("bench: host 1 thread not found")
}

// DiffCosts reports the run-length diff measurement of Section 4.2
// (250 us for a 4 KB page, linear in page size) — the cost Millipage's
// thin protocol avoids — from the calibrated model, alongside a real
// diff of a synthetically dirtied page to show the implementation works.
func DiffCosts(w io.Writer) {
	fmt.Fprintln(w, "Section 4.2: run-length diff creation (paper: 250 us for 4 KB, linear in size)")
	for _, size := range []int{512, 1024, 2048, 4096} {
		fmt.Fprintf(w, "  diff of %4dB page: %6.1f us (model)\n", size, twindiff.CreateCost(size).Microseconds())
	}
	// Demonstrate the real machinery.
	page := make([]byte, 4096)
	twin := twindiff.Twin(page)
	for i := 0; i < 4096; i += 128 {
		page[i] = 0xFF
	}
	runs, _ := twindiff.Diff(twin, page)
	fmt.Fprintf(w, "  real diff of a page with 32 dirty words: %d runs, %d encoded bytes\n",
		len(runs), twindiff.Size(runs))
}
