package bench

import (
	"bytes"
	"strings"
	"testing"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// TestChaosAllProtocols runs the chaos bench under every protocol with a
// hostile plan — losses, duplicates, reordering, a partition window and
// a host crash at once — and requires the oracle to hold: faults change
// timing, never application results.
func TestChaosAllProtocols(t *testing.T) {
	for _, proto := range []string{"millipage", "ivy", "lrc"} {
		cfg := DefaultChaos()
		cfg.Protocol = proto
		cfg.Plan.Partitions = []faultnet.Partition{{
			A: 0b0011, B: 0b1100,
			From: sim.Time(2 * sim.Millisecond), Until: sim.Time(10 * sim.Millisecond),
		}}
		cfg.Plan.Crashes = []faultnet.Crash{{
			Host: cfg.Hosts - 1,
			At:   sim.Time(15 * sim.Millisecond), RestartAt: sim.Time(22 * sim.Millisecond),
		}}
		var buf bytes.Buffer
		if err := Chaos(&buf, cfg); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		out := buf.String()
		if !strings.Contains(out, "oracle: OK") {
			t.Errorf("%s: output missing oracle line:\n%s", proto, out)
		}
		if !strings.Contains(out, "retransmits=") {
			t.Errorf("%s: output missing reliability line:\n%s", proto, out)
		}
	}
}

// TestChaosCleanPlanStaysClean runs the chaos bench with an all-zero
// plan: the transport must stay on the clean path, with zero reliability
// activity reported.
func TestChaosCleanPlanStaysClean(t *testing.T) {
	cfg := DefaultChaos()
	cfg.Plan = faultnet.Plan{}
	var buf bytes.Buffer
	if err := Chaos(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reliability: retransmits=0 dups=0 ooo=0 dropped=0") {
		t.Errorf("clean plan produced reliability activity:\n%s", buf.String())
	}
}

// TestFigure6SweepIvyLrc pushes the parallel replica sweep through the
// ivy and lrc protocol paths: the grid must produce identical points and
// identical progress bytes whether it runs sequentially or Workers-wide.
func TestFigure6SweepIvyLrc(t *testing.T) {
	saved := Workers()
	defer SetWorkers(saved)

	for _, proto := range []string{"ivy", "lrc"} {
		run := func(workers int) ([]AppRun, string) {
			SetWorkers(workers)
			var progress bytes.Buffer
			cfg := Figure6Config{Protocol: proto, Hosts: []int{1, 2}, Scale: 0.05, Seed: 3, Only: "SOR"}
			runs, err := Figure6(cfg, &progress)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			return runs, progress.String()
		}
		seqRuns, seqOut := run(1)
		parRuns, parOut := run(4)
		if len(seqRuns) != len(parRuns) {
			t.Fatalf("%s: run counts differ: %d vs %d", proto, len(seqRuns), len(parRuns))
		}
		for i := range seqRuns {
			if seqRuns[i].Timed != parRuns[i].Timed || seqRuns[i].Speedup != parRuns[i].Speedup {
				t.Errorf("%s run %d: sequential %v/%v, parallel %v/%v", proto, i,
					seqRuns[i].Timed, seqRuns[i].Speedup, parRuns[i].Timed, parRuns[i].Speedup)
			}
		}
		if seqOut != parOut {
			t.Errorf("%s: progress output differs:\n--- sequential ---\n%s--- parallel ---\n%s",
				proto, seqOut, parOut)
		}
	}
}

// TestManagerLoadSweepParallelDeterminism runs the managerload
// comparison (which sweeps its two management modes Workers-wide)
// sequentially and in parallel: the rendered comparison must be
// byte-identical.
func TestManagerLoadSweepParallelDeterminism(t *testing.T) {
	saved := Workers()
	defer SetWorkers(saved)

	cfg := ManagerLoadConfig{Hosts: 4, Vars: 16, Rounds: 2, Seed: 5}
	run := func(workers int) string {
		SetWorkers(workers)
		var buf bytes.Buffer
		if err := ManagerLoadCompare(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if seq, par := run(1), run(2); seq != par {
		t.Errorf("comparison output differs:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}
