package bench

import (
	"fmt"
	"io"

	"millipage/internal/apps"
	"millipage/internal/sim"
)

// Figure7Point is one chunking configuration of the WATER study.
type Figure7Point struct {
	Hosts      int
	ChunkLevel int // 0 means "none": page-granularity allocation
	Timed      sim.Duration
	Competing  uint64
	Faults     uint64 // read + write faults
	Efficiency float64
}

// Figure7Config controls the chunking sweep.
type Figure7Config struct {
	Hosts   []int // the paper plots 4 and 8 hosts
	Levels  []int // chunking levels; 0 encodes "none"
	Scale   float64
	Seed    int64
	Repeats int // seeds averaged per point (sweeper jitter is random)
}

// DefaultFigure7 matches the paper: chunking levels 1..6 plus "none",
// on 4 and 8 hosts, averaged over three seeds.
func DefaultFigure7() Figure7Config {
	return Figure7Config{
		Hosts:   []int{4, 8},
		Levels:  []int{1, 2, 3, 4, 5, 6, 0},
		Scale:   1.0,
		Seed:    1,
		Repeats: 3,
	}
}

// Figure7 runs WATER across chunking levels. Every point is averaged
// over cfg.Repeats seeds; efficiency is normalized to the best level per
// host count, as in the paper's figure.
func Figure7(cfg Figure7Config, progress io.Writer) ([]Figure7Point, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	// Every (host, level, repeat) cell is an independent WATER run;
	// flatten the whole grid and fan it out, then aggregate in grid order
	// so averages, efficiency normalization and progress output match a
	// sequential sweep exactly.
	type cell struct {
		h, lvl, r int
	}
	var grid []cell
	for _, h := range cfg.Hosts {
		for _, lvl := range cfg.Levels {
			for r := 0; r < cfg.Repeats; r++ {
				grid = append(grid, cell{h, lvl, r})
			}
		}
	}
	results, err := sweep(len(grid), func(i int) (apps.Result, error) {
		c := grid[i]
		p := apps.Params{Hosts: c.h, Scale: cfg.Scale, Seed: cfg.Seed + int64(c.r)*101, ChunkLevel: c.lvl}
		if c.lvl == 0 {
			p.ChunkLevel = 0
			p.PageGrain = true // "no false-sharing control"
		}
		res, err := apps.RunWATER(p)
		if err != nil {
			return res, fmt.Errorf("WATER chunk=%d on %d hosts: %w", c.lvl, c.h, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure7Point
	ri := 0
	for _, h := range cfg.Hosts {
		var best sim.Duration
		idx := len(out)
		for _, lvl := range cfg.Levels {
			var timed sim.Duration
			var competing, faults uint64
			for r := 0; r < cfg.Repeats; r++ {
				res := results[ri]
				ri++
				timed += res.Timed
				competing += res.Report.CompetingRequests
				faults += res.Report.ReadFaults + res.Report.WriteFaults
			}
			n := sim.Duration(cfg.Repeats)
			pt := Figure7Point{
				Hosts:      h,
				ChunkLevel: lvl,
				Timed:      timed / n,
				Competing:  competing / uint64(cfg.Repeats),
				Faults:     faults / uint64(cfg.Repeats),
			}
			out = append(out, pt)
			if best == 0 || (pt.Timed > 0 && pt.Timed < best) {
				best = pt.Timed
			}
			if progress != nil {
				fmt.Fprintf(progress, "  WATER %d hosts chunk=%-4s timed=%10v competing=%5d faults=%6d\n",
					h, chunkLabel(lvl), pt.Timed, pt.Competing, pt.Faults)
			}
		}
		for i := idx; i < len(out); i++ {
			if out[i].Timed > 0 {
				out[i].Efficiency = float64(best) / float64(out[i].Timed)
			}
		}
	}
	return out, nil
}

func chunkLabel(lvl int) string {
	if lvl == 0 {
		return "none"
	}
	return fmt.Sprintf("%d", lvl)
}

// WriteFigure7 renders the chunking study in the paper's terms: competing
// requests and read/write faults per chunking level, with efficiency
// relative to the best level.
func WriteFigure7(w io.Writer, cfg Figure7Config, pts []Figure7Point) {
	fmt.Fprintln(w, "Figure 7: the effect of chunking in WATER")
	fmt.Fprintf(w, "%-7s %-7s %12s %10s %11s\n", "hosts", "chunk", "competing", "faults", "efficiency")
	for _, p := range pts {
		fmt.Fprintf(w, "%-7d %-7s %12d %10d %11.2f\n",
			p.Hosts, chunkLabel(p.ChunkLevel), p.Competing, p.Faults, p.Efficiency)
	}
	fmt.Fprintln(w, "(paper: competing requests rise with chunking — 21 unchunked to 601 at")
	fmt.Fprintln(w, " \"none\"; faults fall; the best efficiency is at level 4 on 4 hosts and")
	fmt.Fprintln(w, " 5 on 8 hosts)")
}
