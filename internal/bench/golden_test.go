package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"millipage/internal/apps"
	"millipage/internal/dsm"
	"millipage/internal/trace"
)

// The constants below are virtual-time digests captured from the
// pre-optimization simulator (container/heap calendar, eager tracing,
// allocating message path, sequential sweeps). The hot-path rework —
// typed calendar, Sleep fast path, pooled envelopes, lazy trace
// rendering, parallel sweeps — is required to be a pure wall-clock
// optimization: every simulated result must stay bit-identical. A
// failure here means an optimization changed simulation semantics, not
// just speed.

func TestGoldenManagerLoad(t *testing.T) {
	cfg := ManagerLoadConfig{Hosts: 4, Vars: 16, Rounds: 3, Seed: 21}
	want := []struct {
		m        dsm.Management
		elapsed  int64
		pershard string
	}{
		{dsm.Central, 16165735, "[200 0 0 0]"},
		{dsm.HomeBased, 13953191, "[44 52 52 52]"},
	}
	const wantChecksum = uint64(0xc91651f70709a3a9)
	for _, w := range want {
		r, err := ManagerLoad(cfg, w.m)
		if err != nil {
			t.Fatal(err)
		}
		if int64(r.Elapsed) != w.elapsed {
			t.Errorf("%v elapsed = %d, want %d", w.m, int64(r.Elapsed), w.elapsed)
		}
		if r.Checksum != wantChecksum {
			t.Errorf("%v checksum = %#x, want %#x", w.m, r.Checksum, wantChecksum)
		}
		if got := fmt.Sprint(r.PerShard); got != w.pershard {
			t.Errorf("%v pershard = %s, want %s", w.m, got, w.pershard)
		}
	}
}

func TestGoldenSOR(t *testing.T) {
	r, err := apps.RunSOR(apps.Params{Hosts: 4, Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if int64(r.Timed) != 56048170 {
		t.Errorf("timed = %d, want 56048170", int64(r.Timed))
	}
	if got := fmt.Sprint(r.Check); got != "64" {
		t.Errorf("check = %s, want 64", got)
	}
	if r.Report.ReadFaults != 72 || r.Report.WriteFaults != 1286 {
		t.Errorf("faults = %d/%d, want 72/1286", r.Report.ReadFaults, r.Report.WriteFaults)
	}
}

func TestGoldenWATER(t *testing.T) {
	r, err := apps.RunWATER(apps.Params{Hosts: 4, Scale: 0.05, Seed: 3, ChunkLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(r.Timed) != 77775594 {
		t.Errorf("timed = %d, want 77775594", int64(r.Timed))
	}
	if got := fmt.Sprint(r.Check); got != "0.01788228018444332" {
		t.Errorf("check = %s, want 0.01788228018444332", got)
	}
}

// tracedRun executes the fixed three-host HomeBased workload with rec
// attached and returns the run's elapsed virtual time plus the rendered
// trace dump.
func tracedRun(t *testing.T, rec *trace.Recorder) (elapsed int64, dump string) {
	t.Helper()
	s, err := dsm.New(dsm.Options{Hosts: 3, SharedSize: 1 << 16, Views: 4, Seed: 9,
		Management: dsm.HomeBased, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	var vas [8]uint64
	err = s.Run(func(th *dsm.Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(64)
				th.WriteU32(vas[i], uint32(i))
			}
		}
		th.Barrier()
		for r := 0; r < 2; r++ {
			for v := range vas {
				if (v+r)%3 == th.Host() {
					th.WriteU32(vas[v], th.ReadU32(vas[v])*7+uint32(r))
				}
			}
			th.Barrier()
			for v := range vas {
				_ = th.ReadU32(vas[v])
			}
			th.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec.Dump(&buf)
	return int64(s.Elapsed()), buf.String()
}

// TestGoldenTraceDigest drives a three-host HomeBased run with tracing on
// and hashes the rendered dump. The digest pins down both the protocol's
// virtual-time behaviour and the trace text itself, so it proves the lazy
// renderer reproduces the historical eager format byte for byte.
func TestGoldenTraceDigest(t *testing.T) {
	rec := trace.NewRecorder(1 << 16)
	elapsed, dump := tracedRun(t, rec)
	if rec.Total() != 615 {
		t.Errorf("trace total = %d, want 615", rec.Total())
	}
	if elapsed != 4813760 {
		t.Errorf("elapsed = %d, want 4813760", elapsed)
	}
	h := fnv.New64a()
	h.Write([]byte(dump))
	if got := h.Sum64(); got != 0x9f5c539ef8a29fe9 {
		t.Errorf("trace dump digest = %#x, want 0x9f5c539ef8a29fe9", got)
	}
}

// TestTraceDoubleRunDeterminism runs the traced workload twice — the
// second time on the same recorder, recycled with Reset — and demands
// identical elapsed times and byte-identical dumps. A divergence means a
// pooled trace buffer or protocol scratch structure leaked state from the
// first run into the second.
func TestTraceDoubleRunDeterminism(t *testing.T) {
	rec := trace.NewRecorder(1 << 16)
	e1, d1 := tracedRun(t, rec)
	rec.Reset()
	e2, d2 := tracedRun(t, rec)
	if e1 != e2 {
		t.Errorf("elapsed diverged across runs: %d then %d", e1, e2)
	}
	if d1 != d2 {
		t.Errorf("trace dump diverged across runs (%d vs %d bytes)", len(d1), len(d2))
	}
}

// TestSweepParallelMatchesSequential forces the sweep helper through both
// its sequential and its multi-worker path over the same grid and
// requires identical results and identical progress bytes. GOMAXPROCS
// does not matter: parallel sweeps must only reorder wall-clock work.
func TestSweepParallelMatchesSequential(t *testing.T) {
	saved := Workers()
	defer SetWorkers(saved)

	run := func(workers int) ([]Figure7Point, string) {
		SetWorkers(workers)
		var progress bytes.Buffer
		cfg := Figure7Config{Hosts: []int{2, 3}, Levels: []int{1, 2}, Scale: 0.05, Seed: 5, Repeats: 2}
		pts, err := Figure7(cfg, &progress)
		if err != nil {
			t.Fatal(err)
		}
		return pts, progress.String()
	}

	seqPts, seqOut := run(1)
	parPts, parOut := run(4)
	if len(seqPts) != len(parPts) {
		t.Fatalf("point counts differ: %d vs %d", len(seqPts), len(parPts))
	}
	for i := range seqPts {
		if seqPts[i] != parPts[i] {
			t.Errorf("point %d: sequential %+v, parallel %+v", i, seqPts[i], parPts[i])
		}
	}
	if seqOut != parOut {
		t.Errorf("progress output differs:\n--- sequential ---\n%s--- parallel ---\n%s", seqOut, parOut)
	}
}

// TestSweepErrorPropagates exercises the sweep helper's error path on the
// parallel branch: every job runs, the lowest-index error surfaces.
func TestSweepErrorPropagates(t *testing.T) {
	saved := Workers()
	defer SetWorkers(saved)
	SetWorkers(3)

	ran := make([]bool, 7)
	_, err := sweep(len(ran), func(i int) (int, error) {
		ran[i] = true
		if i == 2 || i == 5 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "job 2 failed" {
		t.Fatalf("err = %v, want job 2 failed", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("job %d never ran", i)
		}
	}
}
