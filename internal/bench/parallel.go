package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the number of goroutines replica sweeps fan out over.
// Every simulated run builds its own Engine, Network and System and the
// simulator packages keep no mutable package-level state, so runs are
// independent and their virtual-time results are identical whatever the
// parallelism — sweeps only reorder wall-clock work, never outcomes.
// Tests pin it to 1 and to >1 to prove exactly that.
//
// It is an atomic rather than a plain var: sweeps read it from worker
// launch code while tests and the CLI write it, and a plain int there is
// a data race the moment a caller adjusts the width with a sweep in
// flight (the bench package runs under -race in CI to keep it that way).
var workers atomic.Int64

func init() { workers.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers reports the current replica-sweep width.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the replica-sweep width (1 = sequential) and returns
// the previous value so callers can restore it.
func SetWorkers(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int64(n)))
}

// sweep runs job(0..n-1) across min(Workers, n) goroutines and returns
// the results in index order. All jobs run to completion even when one
// fails; the lowest-index error is returned.
func sweep[T any](n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = job(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
