package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the number of goroutines replica sweeps fan out over.
// Every simulated run builds its own Engine, Network and System and the
// simulator packages keep no mutable package-level state, so runs are
// independent and their virtual-time results are identical whatever the
// parallelism — sweeps only reorder wall-clock work, never outcomes.
// Tests pin it to 1 and to >1 to prove exactly that.
var Workers = runtime.GOMAXPROCS(0)

// sweep runs job(0..n-1) across min(Workers, n) goroutines and returns
// the results in index order. All jobs run to completion even when one
// fails; the lowest-index error is returned.
func sweep[T any](n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = job(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
