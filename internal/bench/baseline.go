package bench

import (
	"fmt"
	"io"

	millipage "millipage"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// protocolLabels names the four protocols in presentation order, with
// the row labels the sweep table prints.
var protocolLabels = []struct {
	proto string
	label string
}{
	{"millipage", "Millipage (minipage granularity)"},
	{"ivy", "Ivy (page granularity, dist. mgr)"},
	{"lrc", "LRC (home-based, twins+diffs)"},
	{"lrc-mw", "LRC-MW (multi-writer, notices)"},
}

// Baseline runs the paper's motivating scenario — hosts updating small
// unrelated variables that pack onto shared pages — through every
// protocol behind the root API: Millipage's minipage-grain SW/MR
// protocol, a classic Li/Hudak page-based DSM (internal/ivy), and
// home-based lazy release consistency (internal/lrc). One driver, one
// workload; only Config.Protocol changes. It is the quantified version
// of the paper's introduction: page-grain false sharing is the problem,
// MultiView minipages and relaxed consistency are the two escapes.
func Baseline(w io.Writer, hosts, varsPerHost, iters int) error {
	const varBytes = 64
	work := 1 * sim.Millisecond
	totalVars := hosts * varsPerHost

	run := func(protocol string) (*millipage.Report, error) {
		cluster, err := millipage.NewCluster(millipage.Config{
			Protocol:     protocol,
			Hosts:        hosts,
			SharedMemory: 1 << 20,
			Views:        16,
			Seed:         3,
		})
		if err != nil {
			return nil, err
		}
		// 64-byte allocations pack onto shared pages in every protocol;
		// Millipage alone gives each one its own coherence unit.
		vas := make([]millipage.Addr, totalVars)
		return cluster.Run(func(wk *millipage.Worker) {
			if wk.Host() == 0 {
				for i := range vas {
					vas[i] = wk.Malloc(varBytes)
				}
			}
			wk.Barrier()
			for it := 0; it < iters; it++ {
				for v := wk.Host(); v < totalVars; v += hosts {
					wk.WriteU32(vas[v], uint32(it))
					wk.Compute(work)
				}
			}
			wk.Barrier()
		})
	}

	reports := make(map[string]*millipage.Report, len(protocolLabels))
	for _, pl := range protocolLabels {
		rep, err := run(pl.proto)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", pl.proto, err)
		}
		reports[pl.proto] = rep
	}

	pagesTouched := (totalVars*varBytes + vm.PageSize - 1) / vm.PageSize
	fmt.Fprintf(w, "Baseline: %d hosts updating %d interleaved 64B variables (%d pages), %d rounds\n",
		hosts, totalVars, pagesTouched, iters)
	fmt.Fprintf(w, "%-34s %12s %13s %10s\n", "system", "elapsed", "write faults", "messages")
	for _, pl := range protocolLabels {
		rep := reports[pl.proto]
		fmt.Fprintf(w, "%-34s %12v %13d %10d\n", pl.label, rep.Elapsed, rep.WriteFaults, rep.MessagesSent)
	}
	mpF, ivF := reports["millipage"].WriteFaults, reports["ivy"].WriteFaults
	if mpF > 0 {
		fmt.Fprintf(w, "false-sharing fault ratio: %.1fx\n", float64(ivF)/float64(mpF))
	}
	fmt.Fprintf(w, "\nexecution breakdown (Figure 6 right, per protocol)\n")
	fmt.Fprintf(w, "%-34s %7s %9s %10s %11s %7s\n", "system", "comp%", "prefetch%", "readflt%", "writeflt%", "synch%")
	for _, pl := range protocolLabels {
		c, p, rf, wf, s := reports[pl.proto].AvgBreakdown()
		fmt.Fprintf(w, "%-34s %7.1f %9.1f %10.1f %11.1f %7.1f\n",
			pl.label, c*100, p*100, rf*100, wf*100, s*100)
	}
	return nil
}
