package bench

import (
	"fmt"
	"io"

	millipage "millipage"
	"millipage/internal/ivy"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// Baseline compares Millipage against a classic Li/Hudak-style
// page-based DSM (internal/ivy, with Ivy's distributed page managers) on
// the paper's motivating scenario: hosts updating small unrelated
// variables that share pages. It is the quantified version of the
// paper's introduction — what MultiView buys over the systems that came
// before.
func Baseline(w io.Writer, hosts, varsPerHost, iters int) error {
	const varBytes = 64
	work := 1 * sim.Millisecond
	totalVars := hosts * varsPerHost

	// Millipage: each variable is its own minipage.
	mpRun := func() (sim.Duration, uint64, uint64, error) {
		cluster, err := millipage.NewCluster(millipage.Config{
			Hosts:        hosts,
			SharedMemory: 1 << 20,
			Views:        16,
			Seed:         3,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		vas := make([]millipage.Addr, totalVars)
		_, err = cluster.Run(func(wk *millipage.Worker) {
			if wk.Host() == 0 {
				for i := range vas {
					vas[i] = wk.Malloc(varBytes)
				}
			}
			wk.Barrier()
			for it := 0; it < iters; it++ {
				for v := wk.Host(); v < totalVars; v += hosts {
					wk.WriteU32(vas[v], uint32(it))
					wk.Compute(work)
				}
			}
			wk.Barrier()
		})
		if err != nil {
			return 0, 0, 0, err
		}
		sys := cluster.System()
		var wf, msgs uint64
		for i := 0; i < hosts; i++ {
			wf += sys.Host(i).AS.WriteFaults
			msgs += sys.Net.Endpoint(i).Stats().Sent
		}
		return sys.Elapsed(), wf, msgs, nil
	}

	// Ivy: variables packed on pages, page-grain coherence.
	ivyRun := func() (sim.Duration, uint64, uint64, error) {
		sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 20, Seed: 3})
		if err != nil {
			return 0, 0, 0, err
		}
		err = sys.Run(func(t *ivy.Thread) {
			for it := 0; it < iters; it++ {
				for v := t.Host(); v < totalVars; v += hosts {
					t.WriteU32(sys.Base()+uint64(v*varBytes), uint32(it))
					t.Compute(work)
				}
			}
			t.Barrier()
		})
		if err != nil {
			return 0, 0, 0, err
		}
		return sys.Elapsed(), sys.Stats.WriteFaults, sys.Messages(), nil
	}

	mpT, mpF, mpM, err := mpRun()
	if err != nil {
		return err
	}
	ivT, ivF, ivM, err := ivyRun()
	if err != nil {
		return err
	}
	pagesTouched := (totalVars*varBytes + vm.PageSize - 1) / vm.PageSize
	fmt.Fprintf(w, "Baseline: %d hosts updating %d interleaved 64B variables (%d pages), %d rounds\n",
		hosts, totalVars, pagesTouched, iters)
	fmt.Fprintf(w, "%-34s %12s %13s %10s\n", "system", "elapsed", "write faults", "messages")
	fmt.Fprintf(w, "%-34s %12v %13d %10d\n", "Millipage (minipage granularity)", mpT, mpF, mpM)
	fmt.Fprintf(w, "%-34s %12v %13d %10d\n", "Ivy (page granularity, dist. mgr)", ivT, ivF, ivM)
	if mpF > 0 {
		fmt.Fprintf(w, "false-sharing fault ratio: %.1fx\n", float64(ivF)/float64(mpF))
	}
	return nil
}
