package bench

import (
	"bytes"
	"strings"
	"testing"

	"millipage/internal/dsm"
)

func TestManagerLoadSpreadsAcrossHomes(t *testing.T) {
	cfg := DefaultManagerLoad()

	central, err := ManagerLoad(cfg, dsm.Central)
	if err != nil {
		t.Fatal(err)
	}
	homed, err := ManagerLoad(cfg, dsm.HomeBased)
	if err != nil {
		t.Fatal(err)
	}

	// Application results are byte-identical across modes.
	if central.Checksum != homed.Checksum {
		t.Fatalf("checksums differ: central=%#x home-based=%#x", central.Checksum, homed.Checksum)
	}

	// Central: every directory request funnels through host 0.
	if central.PerShard[0] == 0 {
		t.Fatal("central: host 0 served no directory requests")
	}
	for i := 1; i < cfg.Hosts; i++ {
		if central.PerShard[i] != 0 {
			t.Fatalf("central: shard %d served %d requests, want 0", i, central.PerShard[i])
		}
	}
	if r := central.MaxMeanRatio(); r != float64(cfg.Hosts) {
		t.Fatalf("central max/mean = %.2f, want %d", r, cfg.Hosts)
	}

	// Home-based: the write-heavy workload spreads over all eight shards
	// with the busiest one no more than 2x the mean.
	for i := 0; i < cfg.Hosts; i++ {
		if homed.PerShard[i] == 0 {
			t.Fatalf("home-based: shard %d served no requests (per-shard: %v)", i, homed.PerShard)
		}
	}
	if r := homed.MaxMeanRatio(); r > 2 {
		t.Fatalf("home-based max/mean = %.2f, want <= 2 (per-shard: %v)", r, homed.PerShard)
	}
}

func TestManagerLoadCompareOutput(t *testing.T) {
	cfg := ManagerLoadConfig{Hosts: 4, Vars: 16, Rounds: 2, Seed: 5}
	var buf bytes.Buffer
	if err := ManagerLoadCompare(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"central", "home-based", "max/mean", "identical checksums"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
