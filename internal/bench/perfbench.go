package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"millipage/internal/apps"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// This file measures the simulator itself — wall-clock nanoseconds and
// heap allocations per operation, not virtual time. The "before" columns
// are frozen measurements of the pre-optimization simulator (container/
// heap calendar with boxed events, closure-allocating Sleep/After, eager
// string tracing, per-message envelope and pending-record allocation,
// map-based page tables) taken on the same workloads; the runner reports
// current numbers next to them so regressions are visible at a glance.

// PerfBaseline is a frozen pre-optimization measurement. BytesPerOp was
// not recorded by the original pre-optimization runs; its baselines were
// captured at the pooled-envelope pin (the commit before the alloc-free
// protocol rework), so the bytes column measures that rework alone.
type PerfBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfPoint is one measured simulator benchmark with its baseline.
type PerfPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	Baseline     PerfBaseline `json:"baseline"`
	Speedup      float64      `json:"speedup"`       // baseline ns / current ns
	AllocsFactor float64      `json:"allocs_factor"` // baseline allocs / current allocs (+Inf -> 0 allocs now)
}

// perfSuite lists the simulator benchmarks with their frozen baselines.
var perfSuite = []struct {
	name     string
	baseline PerfBaseline
	run      func(b *testing.B)
}{
	{"EventDispatch", PerfBaseline{88.31, 2, 0}, benchEventDispatch},
	{"ProcessSwitch", PerfBaseline{575.0, 3, 0}, benchProcessSwitch},
	{"MsgHop", PerfBaseline{2387, 18, 0}, benchMsgHop},
	{"MsgHopReliable", PerfBaseline{2517.5, 0, 44}, benchMsgHopReliable},
	{"E2ESOR8", PerfBaseline{114463687, 455085, 24604741}, benchE2ESOR8},
	{"E2ESOR16", PerfBaseline{70414522, 28140, 46085881}, benchE2ESOR16},
	{"E2ESOR32", PerfBaseline{86816046, 33629, 88812270}, benchE2ESOR32},
	{"E2EFalseShareMW", PerfBaseline{5552905, 968, 12191948}, benchE2EFalseShareMW},
	{"E2EWATER8MW", PerfBaseline{34954527, 11433, 28237266}, benchE2EWATER8MW},
}

// benchEventDispatch: schedule-and-fire throughput of the engine calendar.
func benchEventDispatch(b *testing.B) {
	e := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Spawn("driver", func(p *sim.Proc) {
		for n < b.N {
			p.Sleep(1000)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchProcessSwitch: one Sleep per iteration (fast-path when the
// calendar allows, park/resume handshake otherwise).
func benchProcessSwitch(b *testing.B) {
	e := sim.NewEngine(1)
	e.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMsgHop: the full fastmsg one-hop path with pooled envelopes and
// tracing off — the message hot path exactly as the DSM drives it.
func benchMsgHop(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := fastmsg.New(eng, 2, fastmsg.DefaultParams())
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *fastmsg.Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		for got < b.N {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMsgHopReliable: the same one-hop path with the reliability layer
// armed but no fault ever firing — the plan's only entry is a partition
// window in the far future, so Enabled() holds and every frame pays for
// sequence numbers, cumulative acks and retransmit-timer bookkeeping.
// Re-pinned after the pooled-envelope work: the baseline is now its own
// armed-path measurement at that pin (2517.5 ns, 0 allocs, 44 B), so
// speedup reads as drift of the armed path itself rather than its cost
// relative to MsgHop (compare the two rows directly for that).
func benchMsgHopReliable(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := fastmsg.New(eng, 2, fastmsg.DefaultParams())
	far := sim.Time(1 << 60)
	inj, err := faultnet.NewInjector(faultnet.Plan{
		Partitions: []faultnet.Partition{{A: 0b01, B: 0b10, From: far, Until: far + 1}},
	}, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw.InstallFaults(inj)
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *fastmsg.Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		for got < b.N {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchE2ESOR8: the end-to-end wall-clock cost of simulating an 8-host
// SOR run (reduced scale), the acceptance workload for the hot-path work.
func benchE2ESOR8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 8, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchE2ESOR16 / benchE2ESOR32: the same workload at wider host counts,
// where per-host protocol state and barrier fan-in dominate. Their
// baselines were measured at the pooled-envelope pin (these rows did not
// exist in the pre-optimization simulator), so speedup reads as the gain
// from the alloc-free protocol rework alone.
func benchE2ESOR16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 16, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE2ESOR32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 32, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchE2EFalseShareMW / benchE2EWATER8MW: the wall-clock cost of
// simulating the SC-vs-multi-writer comparison kernels under lrc-mw
// (twins, run-length diffs, write notices). Unlike the rows above,
// their frozen baselines are the SAME workload under SC-Millipage
// measured at pin time, so "speedup" reads as the relative simulator
// cost of the twin/diff machinery: ~1.0 means multi-writer LRC
// simulates about as fast as the SC protocol it is compared against.
func benchE2EFalseShareMW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FalseShareKernel("lrc-mw", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE2EWATER8MW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := WaterChunkPoint("lrc-mw", 0.1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// RunPerfBench measures the simulator benchmark suite.
func RunPerfBench() []PerfPoint {
	var out []PerfPoint
	for _, s := range perfSuite {
		r := testing.Benchmark(s.run)
		p := PerfPoint{
			Name:        s.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Baseline:    s.baseline,
		}
		if p.NsPerOp > 0 {
			p.Speedup = p.Baseline.NsPerOp / p.NsPerOp
		}
		if p.AllocsPerOp > 0 {
			p.AllocsFactor = float64(p.Baseline.AllocsPerOp) / float64(p.AllocsPerOp)
		} else if p.Baseline.AllocsPerOp > 0 {
			p.AllocsFactor = 0 // rendered as "now allocation-free"
		}
		out = append(out, p)
	}
	return out
}

// WritePerfBench runs the suite, renders a table to w, and (when path is
// non-empty) writes the machine-readable report to path.
func WritePerfBench(w io.Writer, path string) error {
	pts := RunPerfBench()
	fmt.Fprintln(w, "Simulator wall-clock benchmarks (before = pre-optimization baseline)")
	fmt.Fprintf(w, "%-15s %14s %14s %8s %13s %13s %13s\n",
		"benchmark", "before ns/op", "now ns/op", "speedup", "before allocs", "now allocs", "now B/op")
	for _, p := range pts {
		fmt.Fprintf(w, "%-15s %14.1f %14.1f %7.2fx %13d %13d %13d\n",
			p.Name, p.Baseline.NsPerOp, p.NsPerOp, p.Speedup, p.Baseline.AllocsPerOp, p.AllocsPerOp, p.BytesPerOp)
	}
	if path == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Note       string      `json:"note"`
		Benchmarks []PerfPoint `json:"benchmarks"`
	}{
		Note:       "wall-clock simulator performance; baseline = pre-optimization simulator on the same workloads, except the *MW rows whose baseline is the same workload under SC-Millipage (speedup = SC cost / multi-writer-LRC cost)",
		Benchmarks: pts,
	}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "(report written to %s)\n", path)
	return nil
}
