package bench

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"millipage/internal/apps"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/serve"
	"millipage/internal/sim"
)

// This file measures the simulator itself — wall-clock nanoseconds and
// heap allocations per operation, not virtual time. The "before" columns
// are frozen measurements of the pre-optimization simulator (container/
// heap calendar with boxed events, closure-allocating Sleep/After, eager
// string tracing, per-message envelope and pending-record allocation,
// map-based page tables) taken on the same workloads; the runner reports
// current numbers next to them so regressions are visible at a glance.

// PerfBaseline is a frozen pre-optimization measurement. BytesPerOp was
// not recorded by the original pre-optimization runs; its baselines were
// captured at the pooled-envelope pin (the commit before the alloc-free
// protocol rework), so the bytes column measures that rework alone.
type PerfBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfPoint is one measured simulator benchmark with its baseline.
type PerfPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	Baseline     PerfBaseline `json:"baseline"`
	Speedup      float64      `json:"speedup"`       // baseline ns / current ns
	AllocsFactor float64      `json:"allocs_factor"` // baseline allocs / current allocs (+Inf -> 0 allocs now)
}

// perfSuite lists the simulator benchmarks with their frozen baselines.
var perfSuite = []struct {
	name     string
	baseline PerfBaseline
	run      func(b *testing.B)
}{
	{"EventDispatch", PerfBaseline{88.31, 2, 0}, benchEventDispatch},
	{"ProcessSwitch", PerfBaseline{575.0, 3, 0}, benchProcessSwitch},
	{"MsgHop", PerfBaseline{2387, 18, 0}, benchMsgHop},
	{"MsgHopReliable", PerfBaseline{2517.5, 0, 44}, benchMsgHopReliable},
	{"E2ESOR8", PerfBaseline{114463687, 455085, 24604741}, benchE2ESOR8},
	{"E2ESOR16", PerfBaseline{70414522, 28140, 46085881}, benchE2ESOR16},
	{"E2ESOR32", PerfBaseline{86816046, 33629, 88812270}, benchE2ESOR32},
	{"E2EFalseShareMW", PerfBaseline{5552905, 968, 12191948}, benchE2EFalseShareMW},
	{"E2EWATER8MW", PerfBaseline{34954527, 11433, 28237266}, benchE2EWATER8MW},
	{"E2ESOR64", PerfBaseline{102808427, 3651, 72700476}, benchE2ESOR64},
	{"E2ESOR256", PerfBaseline{285312197, 14497, 167084576}, benchE2ESOR256},
	{"E2EServe8", PerfBaseline{serveBaselineNs, serveBaselineAllocs, serveBaselineBytes}, benchE2EServe8},
}

// The E2EServe8 baseline was frozen when the serving subsystem landed,
// so its speedup column reads as drift of the serving path since then.
// The alloc pin is setup-dominated (bucket slices, oracle maps, cluster
// construction): at ~1.2k allocs for a 20k-op scenario the per-op steady
// state is effectively alloc-free, riding the simulator's pooled paths.
const (
	serveBaselineNs     = 139_956_987
	serveBaselineAllocs = 1_199
	serveBaselineBytes  = 4_486_268
)

// benchE2EServe8: the end-to-end wall-clock cost of one base serving
// scenario (8 hosts, 100k simulated clients, 20k Zipfian ops under
// SC-Millipage) — the acceptance workload of the serving subsystem and
// the anchor of its allocs/op CI gate (TestE2EServeAllocsRegression).
func benchE2EServe8(b *testing.B) {
	sc, err := serve.Lookup("base-millipage")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := serve.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEventDispatch: schedule-and-fire throughput of the engine calendar.
func benchEventDispatch(b *testing.B) {
	e := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Spawn("driver", func(p *sim.Proc) {
		for n < b.N {
			p.Sleep(1000)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchProcessSwitch: one Sleep per iteration (fast-path when the
// calendar allows, park/resume handshake otherwise).
func benchProcessSwitch(b *testing.B) {
	e := sim.NewEngine(1)
	e.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMsgHop: the full fastmsg one-hop path with pooled envelopes and
// tracing off — the message hot path exactly as the DSM drives it.
func benchMsgHop(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := fastmsg.New(eng, 2, fastmsg.DefaultParams())
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *fastmsg.Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		for got < b.N {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMsgHopReliable: the same one-hop path with the reliability layer
// armed but no fault ever firing — the plan's only entry is a partition
// window in the far future, so Enabled() holds and every frame pays for
// sequence numbers, cumulative acks and retransmit-timer bookkeeping.
// Re-pinned after the pooled-envelope work: the baseline is now its own
// armed-path measurement at that pin (2517.5 ns, 0 allocs, 44 B), so
// speedup reads as drift of the armed path itself rather than its cost
// relative to MsgHop (compare the two rows directly for that).
func benchMsgHopReliable(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := fastmsg.New(eng, 2, fastmsg.DefaultParams())
	far := sim.Time(1 << 60)
	inj, err := faultnet.NewInjector(faultnet.Plan{
		Partitions: []faultnet.Partition{{A: 0b01, B: 0b10, From: far, Until: far + 1}},
	}, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	nw.InstallFaults(inj)
	got := 0
	nw.Endpoint(1).SetHandler(func(p *sim.Proc, m *fastmsg.Message) { got++ })
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := nw.Endpoint(0)
		for i := 0; i < b.N; i++ {
			m := ep.AllocMessage()
			m.Size = 32
			ep.Send(p, 1, m)
		}
		for got < b.N {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchE2ESOR8: the end-to-end wall-clock cost of simulating an 8-host
// SOR run (reduced scale), the acceptance workload for the hot-path work.
func benchE2ESOR8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 8, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchE2ESOR16 / benchE2ESOR32: the same workload at wider host counts,
// where per-host protocol state and barrier fan-in dominate. Their
// baselines were measured at the pooled-envelope pin (these rows did not
// exist in the pre-optimization simulator), so speedup reads as the gain
// from the alloc-free protocol rework alone.
func benchE2ESOR16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 16, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE2ESOR32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 32, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchE2ESOR64 / benchE2ESOR256: the cluster-scaling workloads added
// with the sharded engine, on the classic sequential engine. Their
// baselines were frozen when the rows were introduced (at the sharded-
// engine pin), so speedup reads as drift since then. 256 hosts runs at
// half scale to keep one iteration bounded; its cost is dominated by the
// 257-way barrier fan-in and per-host protocol state.
func benchE2ESOR64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 64, Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE2ESOR256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := apps.RunSOR(apps.Params{Hosts: 256, Scale: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// parShape records the engine shape of the last parallel benchmark run,
// for the report header (shards used alongside the sweep width).
var parShape apps.EngineShape

// benchE2ESOR64Par: the 64-host SOR workload on the sharded parallel
// engine. It is not a perfSuite row of its own; RunPerfBench measures it
// against the sequential E2ESOR64 point from the same invocation and
// reports the ratio as ParSpeedup — a wall-clock engine-vs-engine
// comparison, not a drift row. On a single-core host the ratio reads
// below 1: the shard barriers and merge sort are pure overhead when the
// windows cannot actually overlap.
func benchE2ESOR64Par(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := apps.RunSOR(apps.Params{Hosts: 64, Scale: 0.1, Seed: 1, Engine: "par", ParWorkers: parBenchWorkers})
		if err != nil {
			b.Fatal(err)
		}
		parShape = r.Engine
	}
}

// parBenchWorkers is the goroutine budget for the ParSpeedup row: 4, the
// smallest width where window overlap can pay for the barrier cost on
// real multi-core hardware. The report's note records the cores the
// measurement actually had — on fewer than 4 the ratio is an
// oversubscription number, not a speedup.
const parBenchWorkers = 4

// benchE2EFalseShareMW / benchE2EWATER8MW: the wall-clock cost of
// simulating the SC-vs-multi-writer comparison kernels under lrc-mw
// (twins, run-length diffs, write notices). Unlike the rows above,
// their frozen baselines are the SAME workload under SC-Millipage
// measured at pin time, so "speedup" reads as the relative simulator
// cost of the twin/diff machinery: ~1.0 means multi-writer LRC
// simulates about as fast as the SC protocol it is compared against.
func benchE2EFalseShareMW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FalseShareKernel("lrc-mw", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE2EWATER8MW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := WaterChunkPoint("lrc-mw", 0.1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// RunPerfBench measures the simulator benchmark suite, then the
// ParSpeedup row: the 64-host SOR workload on the parallel engine,
// whose baseline is the sequential E2ESOR64 measurement from this same
// invocation (so the Speedup column is seq wall / par wall, apples to
// apples on this machine, not a frozen pin).
func RunPerfBench() []PerfPoint {
	var out []PerfPoint
	measure := func(name string, run func(b *testing.B), baseline PerfBaseline) PerfPoint {
		r := testing.Benchmark(run)
		p := PerfPoint{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Baseline:    baseline,
		}
		if p.NsPerOp > 0 {
			p.Speedup = p.Baseline.NsPerOp / p.NsPerOp
		}
		if p.AllocsPerOp > 0 {
			p.AllocsFactor = float64(p.Baseline.AllocsPerOp) / float64(p.AllocsPerOp)
		} else if p.Baseline.AllocsPerOp > 0 {
			p.AllocsFactor = 0 // rendered as "now allocation-free"
		}
		return p
	}
	var seqSOR64 PerfBaseline
	for _, s := range perfSuite {
		p := measure(s.name, s.run, s.baseline)
		if s.name == "E2ESOR64" {
			seqSOR64 = PerfBaseline{NsPerOp: p.NsPerOp, AllocsPerOp: p.AllocsPerOp, BytesPerOp: p.BytesPerOp}
		}
		out = append(out, p)
	}
	out = append(out, measure("ParSpeedup", benchE2ESOR64Par, seqSOR64))
	return out
}

// WritePerfBench runs the suite, renders a table to w, and (when path is
// non-empty) writes the machine-readable report to path.
func WritePerfBench(w io.Writer, path string) error {
	pts := RunPerfBench()
	fmt.Fprintln(w, "Simulator wall-clock benchmarks (before = pre-optimization baseline)")
	fmt.Fprintf(w, "sweep workers=%d; parallel engine: shards=%d workers=%d (machine cores=%d)\n",
		Workers(), parShape.Shards, parShape.Workers, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-15s %14s %14s %8s %13s %13s %13s\n",
		"benchmark", "before ns/op", "now ns/op", "speedup", "before allocs", "now allocs", "now B/op")
	for _, p := range pts {
		fmt.Fprintf(w, "%-15s %14.1f %14.1f %7.2fx %13d %13d %13d\n",
			p.Name, p.Baseline.NsPerOp, p.NsPerOp, p.Speedup, p.Baseline.AllocsPerOp, p.AllocsPerOp, p.BytesPerOp)
	}
	if path == "" {
		return nil
	}
	// Update only the benchmarks section: serving rows are written by the
	// serve command and must survive a perf-suite regeneration.
	report, err := readBenchReport(path)
	if err != nil {
		return err
	}
	report.Note = fmt.Sprintf("wall-clock simulator performance; baseline = pre-optimization simulator on the same workloads, except the *MW rows whose baseline is the same workload under SC-Millipage (speedup = SC cost / multi-writer-LRC cost), the ParSpeedup row whose baseline is the sequential-engine E2ESOR64 measured in the same invocation (speedup = seq wall / par wall at %d shard workers on %d machine cores — below 1 when cores < workers), and the E2EServe8 row whose baseline was frozen when the serving subsystem landed",
		parBenchWorkers, runtime.GOMAXPROCS(0))
	report.Benchmarks = pts
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "(report written to %s)\n", path)
	return nil
}
