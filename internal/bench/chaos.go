package bench

import (
	"fmt"
	"io"

	"millipage"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// ChaosConfig sizes one seeded fault-injection run: the write-heavy
// directory workload of ManagerLoad plus a lock-protected accumulator,
// executed through the public Worker API under any protocol while the
// fault plan mangles the wire.
type ChaosConfig struct {
	Protocol string // "millipage", "ivy", "lrc" or "lrc-mw"
	Hosts    int
	Vars     int // shared variables, each its own minipage
	Rounds   int // barrier-separated write/read rounds
	Seed     int64
	Plan     faultnet.Plan

	// Replicated runs the workload with primary/backup directory-shard
	// replication (Config.ManagerReplication, implying home-based
	// management). Millipage-only; pair it with a crash in the plan to
	// watch a directory primary die and its backup take over.
	Replicated bool
}

// DefaultChaos is a short but hostile schedule: every fault class at
// once on a four-host cluster.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Protocol: "millipage",
		Hosts:    4,
		Vars:     16,
		Rounds:   3,
		Seed:     21,
		Plan: faultnet.Plan{
			Drop:    0.10,
			Dup:     0.05,
			Reorder: 0.20,
			Jitter:  2 * sim.Millisecond,
		},
	}
}

// chaosExpected computes the oracle value of variable v after all
// rounds. The workload is phase-deterministic — in round r variable v is
// written exactly once, by thread (v+r) mod hosts — so the final
// contents are a pure function of the configuration, independent of
// protocol, timing and injected faults.
func chaosExpected(v, rounds int) uint32 {
	val := uint32(v)
	for r := 0; r < rounds; r++ {
		val = val*31 + uint32(r+1)
	}
	return val
}

// Chaos runs the workload under the fault plan and checks two oracles:
// every shared variable must end at its phase-deterministic value, and a
// lock-protected accumulator must count exactly hosts x rounds
// increments. It then reports the run's elapsed virtual time and how
// hard the reliability layer worked (retransmits, duplicates dropped,
// out-of-order buffering, frames lost at down hosts). Any oracle
// violation is an error: faults may change timing, never results.
func Chaos(w io.Writer, cfg ChaosConfig) error {
	if cfg.Hosts < 1 {
		return fmt.Errorf("bench: chaos needs at least one host, got %d", cfg.Hosts)
	}
	if cfg.Vars < 1 || cfg.Rounds < 1 {
		return fmt.Errorf("bench: chaos needs at least one variable and one round")
	}
	cl, err := millipage.NewCluster(millipage.Config{
		Protocol:            cfg.Protocol,
		Hosts:               cfg.Hosts,
		SharedMemory:        1 << 20,
		Views:               16,
		Seed:                cfg.Seed,
		Faults:              &cfg.Plan,
		HomeBasedManagement: cfg.Replicated,
		ManagerReplication:  cfg.Replicated,
	})
	if err != nil {
		return err
	}
	vas := make([]millipage.Addr, cfg.Vars)
	var counterVA millipage.Addr
	var oracleErr error
	report, err := cl.Run(func(wk *millipage.Worker) {
		if wk.Host() == 0 {
			for v := range vas {
				vas[v] = wk.Malloc(64)
				wk.WriteU32(vas[v], uint32(v))
			}
			counterVA = wk.Malloc(64)
			wk.WriteU32(counterVA, 0)
		}
		wk.Barrier()
		for r := 0; r < cfg.Rounds; r++ {
			for v := 0; v < cfg.Vars; v++ {
				if (v+r)%cfg.Hosts == wk.Host() {
					wk.WriteU32(vas[v], wk.ReadU32(vas[v])*31+uint32(r+1))
				}
			}
			wk.Lock(0)
			wk.WriteU32(counterVA, wk.ReadU32(counterVA)+1)
			wk.Unlock(0)
			wk.Barrier()
			for v := 0; v < cfg.Vars; v++ {
				_ = wk.ReadU32(vas[v])
			}
			wk.Barrier()
		}
		if wk.Host() == 0 {
			for v := range vas {
				if got, want := wk.ReadU32(vas[v]), chaosExpected(v, cfg.Rounds); got != want {
					oracleErr = fmt.Errorf("bench: chaos oracle: var %d = %d, want %d", v, got, want)
					return
				}
			}
			if got, want := wk.ReadU32(counterVA), uint32(cfg.Hosts*cfg.Rounds); got != want {
				oracleErr = fmt.Errorf("bench: chaos oracle: lock counter = %d, want %d", got, want)
			}
		}
	})
	if err != nil {
		return err
	}
	if oracleErr != nil {
		return oracleErr
	}
	fmt.Fprintf(w, "Chaos: protocol=%s hosts=%d vars=%d rounds=%d seed=%d\n",
		cl.Protocol(), cfg.Hosts, cfg.Vars, cfg.Rounds, cfg.Seed)
	fmt.Fprintf(w, "plan: drop=%.2f dup=%.2f reorder=%.2f jitter=%v partitions=%d crashes=%d\n",
		cfg.Plan.Drop, cfg.Plan.Dup, cfg.Plan.Reorder, cfg.Plan.Jitter,
		len(cfg.Plan.Partitions), len(cfg.Plan.Crashes))
	fmt.Fprintf(w, "elapsed=%v msgs=%d\n", report.Elapsed, report.MessagesSent)
	fmt.Fprintf(w, "reliability: retransmits=%d dups=%d ooo=%d dropped=%d\n",
		report.Retransmits, report.DupsDropped, report.OutOfOrder, report.FramesDropped)
	if cfg.Replicated {
		fmt.Fprintf(w, "replication: mirrors=%d promotions=%d\n", report.MirrorsSent, report.Promotions)
	}
	fmt.Fprintln(w, "oracle: OK (all variables and the lock counter converged)")
	return nil
}
