package bench

import (
	"fmt"
	"io"

	"millipage/internal/mmu"
)

// Figure5Point is one cell of the MultiView overhead study.
type Figure5Point struct {
	ArrayBytes int
	Views      int
	Slowdown   float64
	ActivePTEs int
}

// Figure5Config controls the sweep grid.
type Figure5Config struct {
	Sizes []int // array sizes N
	Views []int // view counts n
	Fast  bool  // single pass, no warmup (quick look)
}

// DefaultFigure5 reproduces the paper's grid: N = 512 KB..16 MB, n = 16,
// 64, 112, ... 496 (the x-axis ticks of Figure 5).
func DefaultFigure5() Figure5Config {
	var views []int
	for n := 16; n <= 496; n += 48 {
		views = append(views, n)
	}
	return Figure5Config{
		Sizes: []int{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20},
		Views: views,
	}
}

// Figure5 runs the MultiView overhead microbenchmark of Section 4.1 over
// the grid and returns the slowdown surface. Each cell simulates its own
// TLB/cache machine, so the grid fans out Workers-wide.
func Figure5(cfg Figure5Config) []Figure5Point {
	hw := mmu.PentiumII()
	type cell struct{ n, v int }
	var grid []cell
	for _, n := range cfg.Sizes {
		for _, v := range cfg.Views {
			grid = append(grid, cell{n, v})
		}
	}
	out, _ := sweep(len(grid), func(i int) (Figure5Point, error) {
		c := grid[i]
		tr := mmu.Traversal{ArrayBytes: c.n, Views: c.v, Passes: 1, Warmup: 1}
		if cfg.Fast {
			tr.Warmup = 0
			tr.Stride = 2
		}
		ratio, _, _ := tr.Slowdown(hw)
		return Figure5Point{
			ArrayBytes: c.n,
			Views:      c.v,
			Slowdown:   ratio,
			ActivePTEs: tr.ActivePTEs(hw),
		}, nil
	})
	return out
}

// WriteFigure5 renders the surface as the paper plots it: one series per
// array size, slowdown vs number of views, with the predicted breaking
// points (n*N = 512 MB*views) marked.
func WriteFigure5(w io.Writer, cfg Figure5Config, pts []Figure5Point) {
	fmt.Fprintln(w, "Figure 5: MultiView overhead (slowdown vs number of views)")
	fmt.Fprintf(w, "%8s", "views")
	for _, n := range cfg.Sizes {
		fmt.Fprintf(w, " %8s", sizeLabel(n))
	}
	fmt.Fprintln(w)
	for _, v := range cfg.Views {
		fmt.Fprintf(w, "%8d", v)
		for _, n := range cfg.Sizes {
			for _, p := range pts {
				if p.ArrayBytes == n && p.Views == v {
					fmt.Fprintf(w, " %8.2f", p.Slowdown)
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "predicted breaking points (n*N = 512, N in MB):")
	for _, n := range cfg.Sizes {
		fmt.Fprintf(w, "  %8s: n = %d\n", sizeLabel(n), 512<<20/n)
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}

// SmallViewOverheads reports the Section 4.1 claim that n <= 32 costs
// less than ~4% for 512 KB <= N <= 16 MB.
func SmallViewOverheads(w io.Writer) {
	hw := mmu.PentiumII()
	fmt.Fprintln(w, "Section 4.1: overhead for n <= 32 (paper: always < 4%)")
	for _, n := range []int{512 << 10, 4 << 20, 16 << 20} {
		for _, v := range []int{8, 16, 32} {
			tr := mmu.Traversal{ArrayBytes: n, Views: v, Passes: 1, Warmup: 1}
			ratio, _, _ := tr.Slowdown(hw)
			fmt.Fprintf(w, "  N=%-6s n=%-3d overhead = %+5.1f%%\n", sizeLabel(n), v, (ratio-1)*100)
		}
	}
}
