package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"access fault", "26.0 us", "MPT lookup", "4 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFetchCostsInPaperBallpark(t *testing.T) {
	d, err := measureReadFetch(128)
	if err != nil {
		t.Fatal(err)
	}
	us := d.Microseconds()
	// Paper: 204 us. Accept a generous band; the trend tests are below.
	if us < 120 || us > 300 {
		t.Fatalf("128B read fetch = %.0fus, want within [120,300] (paper 204)", us)
	}
	d4k, err := measureReadFetch(4096)
	if err != nil {
		t.Fatal(err)
	}
	if d4k <= d {
		t.Fatalf("4KB fetch (%v) not slower than 128B fetch (%v)", d4k, d)
	}
}

func TestWriteFetchGrowsWithCopies(t *testing.T) {
	w1, err := measureWriteFetch(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	w7, err := measureWriteFetch(128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w7 <= w1 {
		t.Fatalf("write fetch with 7 copies (%v) not slower than with 1 (%v)", w7, w1)
	}
}

func TestBarrierLinearInHosts(t *testing.T) {
	b1, err := measureBarrier(1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := measureBarrier(8)
	if err != nil {
		t.Fatal(err)
	}
	if b8 <= b1 {
		t.Fatalf("8-host barrier (%v) not slower than 1-host (%v)", b8, b1)
	}
	// Paper: 59-153 us across 1..8 hosts.
	if us := b8.Microseconds(); us < 90 || us > 250 {
		t.Fatalf("8-host barrier = %.0fus, want within [90,250] (paper 153)", us)
	}
}

func TestLockUnlockInPaperBand(t *testing.T) {
	d, err := measureLockUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if us := d.Microseconds(); us < 40 || us > 120 {
		t.Fatalf("lock+unlock = %.0fus, want within [40,120] (paper 67-80)", us)
	}
}

func TestFigure5ShapeSmallGrid(t *testing.T) {
	// A reduced grid: one below-break cell and one beyond-break cell.
	// Warmed-up passes: Fast mode skips the warmup and would count
	// compulsory PTE misses as slowdown.
	cfg := Figure5Config{
		Sizes: []int{4 << 20},
		Views: []int{16, 256},
	}
	pts := Figure5(cfg)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	below, beyond := pts[0], pts[1]
	if below.Slowdown > 1.15 {
		t.Fatalf("below-break slowdown = %.2f, want ~1", below.Slowdown)
	}
	if beyond.Slowdown < 1.5*below.Slowdown {
		t.Fatalf("beyond-break slowdown %.2f not clearly above below-break %.2f",
			beyond.Slowdown, below.Slowdown)
	}
	var buf bytes.Buffer
	WriteFigure5(&buf, cfg, pts)
	if !strings.Contains(buf.String(), "breaking points") {
		t.Fatal("WriteFigure5 missing breaking-point annotation")
	}
}

func TestFigure6SmallScale(t *testing.T) {
	cfg := Figure6Config{Hosts: []int{1, 2}, Scale: 0.02, Seed: 1, ChunkWATER: 2, Only: "IS"}
	runs, err := Figure6(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[1].Speedup <= 1.0 {
		t.Fatalf("IS 2-host speedup = %.2f, want > 1", runs[1].Speedup)
	}
	var buf bytes.Buffer
	WriteFigure6(&buf, cfg, runs)
	if !strings.Contains(buf.String(), "IS") {
		t.Fatal("WriteFigure6 missing IS row")
	}
}

func TestFigure7SmallScale(t *testing.T) {
	cfg := Figure7Config{Hosts: []int{4}, Levels: []int{1, 4, 0}, Scale: 0.04, Seed: 1}
	pts, err := Figure7(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Chunking must reduce faults relative to unchunked.
	if pts[1].Faults >= pts[0].Faults {
		t.Fatalf("chunk-4 faults (%d) not below unchunked (%d)", pts[1].Faults, pts[0].Faults)
	}
	// Exactly one point per host count carries efficiency 1.0 (the best).
	best := 0
	for _, p := range pts {
		if p.Efficiency > 0.999 && p.Efficiency < 1.001 {
			best++
		}
	}
	if best < 1 {
		t.Fatalf("no best-efficiency point: %+v", pts)
	}
	var buf bytes.Buffer
	WriteFigure7(&buf, cfg, pts)
	if !strings.Contains(buf.String(), "chunking") {
		t.Fatal("WriteFigure7 missing annotation")
	}
}

func TestDiffCostsOutput(t *testing.T) {
	var buf bytes.Buffer
	DiffCosts(&buf)
	if !strings.Contains(buf.String(), "250.0 us") {
		t.Fatalf("DiffCosts missing the paper's 250us point:\n%s", buf.String())
	}
}
