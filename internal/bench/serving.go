package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"millipage/internal/serve"
	"millipage/internal/sim"
)

// The serving bench: the KV/session-cache scenarios of internal/serve
// measured as a sweep and recorded in BENCH_sim.json next to the
// wall-clock simulator rows. Unlike those, serving rows are virtual-time
// service metrics — per-op-type latency percentiles, throughput and the
// fault-service breakdown — and are exactly reproducible (the
// fingerprint column pins the whole run), so regenerating the file on a
// different machine must not change them.

// ServingPoint is one serving-scenario measurement.
type ServingPoint struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Hosts    int    `json:"hosts"`
	Clients  int    `json:"clients"`
	Ops      uint64 `json:"ops"`

	RateOpsPerSec       float64 `json:"rate_ops_per_sec"`
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`

	// Latency percentiles in microseconds of virtual time, per op type.
	GetP50Us  float64 `json:"get_p50_us"`
	GetP99Us  float64 `json:"get_p99_us"`
	GetP999Us float64 `json:"get_p999_us"`
	PutP50Us  float64 `json:"put_p50_us"`
	PutP99Us  float64 `json:"put_p99_us"`
	PutP999Us float64 `json:"put_p999_us"`

	// Fault-service breakdown: how much of the serving traffic turned
	// into DSM protocol work.
	ReadFaults     uint64  `json:"read_faults"`
	WriteFaults    uint64  `json:"write_faults"`
	Invalidations  uint64  `json:"invalidations"`
	LockAcqs       uint64  `json:"lock_acquisitions"`
	AvgReadFaultUs float64 `json:"avg_read_fault_us"`

	Fingerprint string `json:"fingerprint"` // determinism digest, hex
}

// DefaultServingNames is the BENCH_sim.json serving matrix: the base
// shape under all four protocols, the million-client acceptance
// scenario, and the manager-kill failover row (replicated directory
// management with the hot shard's primary crashed mid-burst — its
// percentiles record what a view change costs the tail).
func DefaultServingNames() []string {
	return []string{"base-millipage", "base-ivy", "base-lrc", "base-lrc-mw", "million", "manager-kill"}
}

// servingPoint flattens a serve.Result into its recorded row.
func servingPoint(res *serve.Result) ServingPoint {
	us := func(d sim.Duration) float64 { return d.Microseconds() }
	return ServingPoint{
		Name:                res.Scenario.Name,
		Protocol:            res.Report.Protocol,
		Hosts:               res.Scenario.Hosts,
		Clients:             res.Scenario.Clients,
		Ops:                 res.Ops,
		RateOpsPerSec:       res.Scenario.Rate,
		ThroughputOpsPerSec: res.Throughput,
		GetP50Us:            us(res.GetLat.P50()),
		GetP99Us:            us(res.GetLat.P99()),
		GetP999Us:           us(res.GetLat.P999()),
		PutP50Us:            us(res.PutLat.P50()),
		PutP99Us:            us(res.PutLat.P99()),
		PutP999Us:           us(res.PutLat.P999()),
		ReadFaults:          res.Report.ReadFaults,
		WriteFaults:         res.Report.WriteFaults,
		Invalidations:       res.Report.Invalidations,
		LockAcqs:            res.Report.LockAcquisitions,
		AvgReadFaultUs:      us(res.Report.AvgReadFaultTime),
		Fingerprint:         fmt.Sprintf("%016x", res.Fingerprint),
	}
}

// RunServing executes the named scenarios as a replica sweep (the
// bench.Workers width applies; results are index-ordered and identical
// at any width) and returns their rows.
func RunServing(names []string) ([]ServingPoint, error) {
	return sweep(len(names), func(i int) (ServingPoint, error) {
		sc, err := serve.Lookup(names[i])
		if err != nil {
			return ServingPoint{}, err
		}
		res, err := serve.Run(sc)
		if err != nil {
			return ServingPoint{}, fmt.Errorf("scenario %s: %w", names[i], err)
		}
		return servingPoint(res), nil
	})
}

// WriteServingTable renders the serving rows as the CLI table.
func WriteServingTable(w io.Writer, pts []ServingPoint) {
	fmt.Fprintln(w, "Serving scenarios (virtual-time latency; open-loop arrivals, queueing included)")
	fmt.Fprintf(w, "%-16s %-10s %6s %9s %9s %11s %24s %24s %9s\n",
		"scenario", "protocol", "hosts", "clients", "ops", "thruput/s", "GET p50/p99/p999 (us)", "PUT p50/p99/p999 (us)", "faults")
	for _, p := range pts {
		fmt.Fprintf(w, "%-16s %-10s %6d %9d %9d %11.0f %8.0f/%7.0f/%7.0f %8.0f/%7.0f/%7.0f %9d\n",
			p.Name, p.Protocol, p.Hosts, p.Clients, p.Ops, p.ThroughputOpsPerSec,
			p.GetP50Us, p.GetP99Us, p.GetP999Us,
			p.PutP50Us, p.PutP99Us, p.PutP999Us,
			p.ReadFaults+p.WriteFaults)
	}
}

// benchReport is the full BENCH_sim.json schema: the wall-clock
// simulator rows and the serving rows, written by different commands —
// each writer preserves the other's section.
type benchReport struct {
	Note        string         `json:"note"`
	Benchmarks  []PerfPoint    `json:"benchmarks"`
	ServingNote string         `json:"serving_note,omitempty"`
	Serving     []ServingPoint `json:"serving,omitempty"`
}

// readBenchReport loads path, returning an empty report when the file
// does not exist yet.
func readBenchReport(path string) (benchReport, error) {
	var r benchReport
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(blob, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// writeBenchReport writes the report to path.
func writeBenchReport(path string, r benchReport) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// WriteServing runs the named scenarios (nil = the default matrix),
// renders the table, and — when path is non-empty — updates the serving
// section of the BENCH_sim.json report at path, preserving the
// wall-clock benchmark section.
func WriteServing(w io.Writer, names []string, path string) error {
	if names == nil {
		names = DefaultServingNames()
	}
	pts, err := RunServing(names)
	if err != nil {
		return err
	}
	WriteServingTable(w, pts)
	if path == "" {
		return nil
	}
	report, err := readBenchReport(path)
	if err != nil {
		return err
	}
	report.ServingNote = "DSM-backed KV/session-cache serving scenarios (internal/serve): virtual-time latency percentiles and throughput under open-loop Zipfian traffic; deterministic per scenario — the fingerprint pins the exact run"
	report.Serving = pts
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "(serving rows written to %s)\n", path)
	return nil
}
