package bench

import (
	"fmt"
	"hash/fnv"
	"io"

	"millipage/internal/dsm"
	"millipage/internal/sim"
)

// ManagerLoadResult is one management configuration's run of the
// write-heavy directory workload.
type ManagerLoadResult struct {
	Management dsm.Management
	Elapsed    sim.Duration
	PerShard   []uint64 // directory requests (read + write) served per host
	Checksum   uint64   // FNV-64a over the final variable values
}

// MaxMeanRatio is the load-balance figure of merit: the busiest shard's
// request count over the per-shard mean. A perfectly balanced directory
// scores 1.0; the centralized manager on h hosts scores h.
func (r ManagerLoadResult) MaxMeanRatio() float64 {
	var max, sum uint64
	for _, n := range r.PerShard {
		if n > max {
			max = n
		}
		sum += n
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.PerShard))
	return float64(max) / mean
}

// ManagerLoadConfig sizes the workload.
type ManagerLoadConfig struct {
	Hosts  int
	Vars   int // shared variables, each its own minipage
	Rounds int // barrier-separated write/read rounds
	Seed   int64
}

// DefaultManagerLoad is the write-heavy eight-host configuration the
// sharding was built for: every round each variable changes writers, so
// nearly every access is a directory transaction.
func DefaultManagerLoad() ManagerLoadConfig {
	return ManagerLoadConfig{Hosts: 8, Vars: 64, Rounds: 6, Seed: 21}
}

// ManagerLoad runs the workload under one management mode and reports
// how the directory requests spread across hosts. The program is DRF and
// phase-deterministic: in round r variable v is written by host
// (v+r) mod hosts, then every host reads the full table — so the final
// contents (and the checksum) are independent of the management mode.
func ManagerLoad(cfg ManagerLoadConfig, m dsm.Management) (ManagerLoadResult, error) {
	res := ManagerLoadResult{Management: m}
	if cfg.Hosts < 1 {
		return res, fmt.Errorf("bench: manager load needs at least one host, got %d", cfg.Hosts)
	}
	s, err := dsm.New(dsm.Options{
		Hosts:      cfg.Hosts,
		SharedSize: 1 << 20,
		Views:      16,
		Seed:       cfg.Seed,
		Management: m,
	})
	if err != nil {
		return res, err
	}
	vas := make([]uint64, cfg.Vars)
	sum := fnv.New64a()
	err = s.Run(func(th *dsm.Thread) {
		if th.Host() == 0 {
			for v := range vas {
				vas[v] = th.Malloc(64)
				th.WriteU32(vas[v], uint32(v))
			}
		}
		th.Barrier()
		for r := 0; r < cfg.Rounds; r++ {
			for v := 0; v < cfg.Vars; v++ {
				if (v+r)%cfg.Hosts == th.Host() {
					th.WriteU32(vas[v], th.ReadU32(vas[v])*31+uint32(r+1))
				}
			}
			th.Barrier()
			for v := 0; v < cfg.Vars; v++ {
				_ = th.ReadU32(vas[v])
			}
			th.Barrier()
		}
		if th.Host() == 0 {
			var buf [4]byte
			for v := range vas {
				val := th.ReadU32(vas[v])
				buf[0], buf[1], buf[2], buf[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
				sum.Write(buf[:])
			}
		}
	})
	if err != nil {
		return res, err
	}
	res.Elapsed = s.Elapsed()
	res.Checksum = sum.Sum64()
	for i := 0; i < cfg.Hosts; i++ {
		st := s.ManagerAt(i).Stats
		res.PerShard = append(res.PerShard, st.ReadReqs+st.WriteReqs)
	}
	return res, nil
}

// ManagerLoadCompare runs the workload under central and home-based
// management and renders the comparison: identical application results,
// different directory load placement.
func ManagerLoadCompare(w io.Writer, cfg ManagerLoadConfig) error {
	modes := []dsm.Management{dsm.Central, dsm.HomeBased}
	rows, err := sweep(len(modes), func(i int) (ManagerLoadResult, error) {
		return ManagerLoad(cfg, modes[i])
	})
	if err != nil {
		return err
	}
	central, homed := rows[0], rows[1]
	fmt.Fprintf(w, "Manager load: %d hosts, %d variables, %d write-heavy rounds\n",
		cfg.Hosts, cfg.Vars, cfg.Rounds)
	fmt.Fprintf(w, "%-12s %12s %10s %-28s %18s\n",
		"management", "elapsed", "max/mean", "requests per shard", "checksum")
	for _, r := range []ManagerLoadResult{central, homed} {
		fmt.Fprintf(w, "%-12v %12v %10.2f %-28s %#18x\n",
			r.Management, r.Elapsed, r.MaxMeanRatio(), fmt.Sprint(r.PerShard), r.Checksum)
	}
	if central.Checksum != homed.Checksum {
		return fmt.Errorf("bench: management modes diverged: checksums %#x vs %#x",
			central.Checksum, homed.Checksum)
	}
	fmt.Fprintln(w, "(identical checksums: the sharded directory changes where protocol")
	fmt.Fprintln(w, " work happens, never what the application computes)")
	return nil
}
