package check

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/sim"
)

// The workload bodies below are the DESIGN.md §8 conformance programs
// in portable form: each is a struct holding the run's shared state
// (addresses, observed values, first failure) whose Body method every
// thread executes through the protocol-independent AppThread surface.
// Build one value per run; Err reports the first violation after the
// run completes. The engine runs one process at a time, so the struct
// fields need no locking.

// MessagePassing is the publish/subscribe litmus: host 0 publishes
// data then raises a flag; a spinning host 1 that observes the flag
// must observe the data. Hosts beyond the first two generate
// background traffic so faults and explored schedules have protocol
// state to disturb. Spinning on shared memory is racy, so this runs
// on the SC protocols only.
type MessagePassing struct {
	data, flag uint64
	got        uint32
	seen       bool
}

func (m *MessagePassing) Body(w cluster.AppThread) {
	if w.Host() == 0 {
		m.data = w.Malloc(64)
		m.flag = w.Malloc(64)
		w.WriteU32(m.data, 0)
		w.WriteU32(m.flag, 0)
	}
	w.Barrier()
	switch w.Host() {
	case 0:
		w.Compute(200 * sim.Microsecond)
		w.WriteU32(m.data, 42)
		w.WriteU32(m.flag, 1)
	case 1:
		spins := 0
		for w.ReadU32(m.flag) == 0 {
			if spins++; spins > 100000 {
				panic("message-passing litmus: flag never observed")
			}
			w.Compute(20 * sim.Microsecond)
		}
		m.seen = true
		m.got = w.ReadU32(m.data)
	default:
		for i := 0; i < 8; i++ {
			w.Compute(300 * sim.Microsecond)
		}
	}
	w.Barrier()
}

func (m *MessagePassing) Err() error { return MessagePassingOutcome(m.seen, m.got) }

// Dekker is the store-buffering litmus: each of two hosts writes its
// own word then reads the other's; r0 = r1 = 0 is the forbidden
// outcome. Requires exactly 2 hosts.
type Dekker struct {
	x, y uint64
	r    [2]uint32
}

func (d *Dekker) Body(w cluster.AppThread) {
	if w.Host() == 0 {
		d.x = w.Malloc(64)
		d.y = w.Malloc(64)
		w.WriteU32(d.x, 0)
		w.WriteU32(d.y, 0)
	}
	w.Barrier()
	if w.Host() == 0 {
		w.WriteU32(d.x, 1)
		d.r[0] = w.ReadU32(d.y)
	} else {
		w.WriteU32(d.y, 1)
		d.r[1] = w.ReadU32(d.x)
	}
	w.Barrier()
}

func (d *Dekker) Err() error { return DekkerOutcome(d.r[0], d.r[1]) }

// DRF is the barrier- and lock-structured (data-race-free) agreement
// program: barrier-phased cell hand-offs followed by a lock-guarded
// accumulator. Every protocol — including LRC, whose guarantee covers
// exactly DRF programs — must produce the oracle state.
//
// SkipLock omits the Lock/Unlock pair around the accumulator update.
// That is an intentionally injected bug (the read-modify-write races),
// used by the model checker's self-tests to prove exploration finds
// schedule-dependent lost updates; leave it false everywhere else.
type DRF struct {
	Hosts    int
	Rounds   int
	LockReps int
	SkipLock bool

	cells []uint64
	acc   uint64
	bad   error
}

func (d *DRF) Body(w cluster.AppThread) {
	h := w.Host()
	if h == 0 {
		d.cells = make([]uint64, d.Hosts)
		for i := range d.cells {
			d.cells[i] = w.Malloc(64)
			w.WriteU32(d.cells[i], 0)
		}
		d.acc = w.Malloc(64)
		w.WriteU32(d.acc, 0)
	}
	w.Barrier()
	// Phase 1: ownership hand-off through barriers. In round r, host h
	// writes cell (h+r)%hosts; everyone then reads every cell and
	// checks the value written that round.
	for r := 0; r < d.Rounds; r++ {
		w.WriteU32(d.cells[(h+r)%d.Hosts], uint32(100*r+(h+r)%d.Hosts))
		w.Barrier()
		for c := 0; c < d.Hosts; c++ {
			if err := DRFCellOutcome(r, h, c, w.ReadU32(d.cells[c])); err != nil && d.bad == nil {
				d.bad = err
			}
		}
		w.Barrier()
	}
	// Phase 2: a lock-guarded accumulator.
	for i := 0; i < d.LockReps; i++ {
		if !d.SkipLock {
			w.Lock(3)
		}
		w.WriteU32(d.acc, w.ReadU32(d.acc)+uint32(h+1))
		if !d.SkipLock {
			w.Unlock(3)
		}
		w.Compute(100 * sim.Microsecond)
	}
	w.Barrier()
	if err := DRFAccumulatorOutcome(d.Hosts, d.LockReps, h, w.ReadU32(d.acc)); err != nil && d.bad == nil {
		d.bad = err
	}
	w.Barrier()
}

func (d *DRF) Err() error { return d.bad }

// ConcurrentMerge is the multiple-writer agreement program: every host
// repeatedly writes its own word of ONE shared block (the words share a
// minipage), synchronizes at a barrier, and then checks every other
// host's word. The program is data-race-free — the writes are to
// disjoint bytes and ordered by barriers — so every protocol must
// produce the oracle state; under a multiple-writer LRC it exercises
// twin/diff merging of concurrent intervals directly.
type ConcurrentMerge struct {
	Hosts  int
	Rounds int

	block uint64
	bad   error
}

func (m *ConcurrentMerge) Body(w cluster.AppThread) {
	h := w.Host()
	if h == 0 {
		m.block = w.Malloc(64 * m.Hosts)
		for i := 0; i < m.Hosts; i++ {
			w.WriteU32(m.block+uint64(64*i), 0)
		}
	}
	w.Barrier()
	for r := 0; r < m.Rounds; r++ {
		w.WriteU32(m.block+uint64(64*h), uint32(1000*r+7*h+13))
		w.Barrier()
		for c := 0; c < m.Hosts; c++ {
			if err := MergeWordOutcome(r, h, c, w.ReadU32(m.block+uint64(64*c))); err != nil && m.bad == nil {
				m.bad = err
			}
		}
		w.Barrier()
	}
}

func (m *ConcurrentMerge) Err() error { return m.bad }

// SWMRSweep drives a seed-dependent read/write mix over Words shared
// words and asserts the SW/MR invariant after every completed
// operation. Prots must be set (normally RuntimeProts around the
// run's cluster) before the body runs.
type SWMRSweep struct {
	Words int
	Iters int
	Seed  uint64
	Prots Prots

	vas []uint64
	bad error
}

func (s *SWMRSweep) Body(w cluster.AppThread) {
	if w.Host() == 0 {
		s.vas = make([]uint64, s.Words)
		for i := range s.vas {
			s.vas[i] = w.Malloc(64)
			w.WriteU32(s.vas[i], 0)
		}
	}
	w.Barrier()
	// Thread-local LCG so each host's access pattern differs but stays
	// deterministic per seed.
	r := s.Seed*2654435761 + uint64(w.Host()+1)*40503
	for it := 0; it < s.Iters; it++ {
		r = r*6364136223846793005 + 1442695040888963407
		va := s.vas[(r>>33)%uint64(s.Words)]
		if (r>>62)&1 == 0 {
			_ = w.ReadU32(va)
		} else {
			w.WriteU32(va, uint32(w.Host()*1000+it))
		}
		if err := SWMR(s.Prots, s.vas); err != nil && s.bad == nil {
			s.bad = fmt.Errorf("host %d op %d: %w", w.Host(), it, err)
		}
		w.Compute(50 * sim.Microsecond)
	}
	w.Barrier()
}

func (s *SWMRSweep) Err() error { return s.bad }
