package check

import (
	"strings"
	"testing"

	"millipage/internal/vm"
)

// stubProts hand-builds a page-table history: prots[h][va] is host h's
// protection; missing entries are unmapped.
type stubProts []map[uint64]vm.Prot

func (s stubProts) NumHosts() int { return len(s) }
func (s stubProts) ProtOf(h int, va uint64) (vm.Prot, error) {
	if p, ok := s[h][va]; ok {
		return p, nil
	}
	return 0, errUnmapped
}

type sentinelErr string

func (e sentinelErr) Error() string { return string(e) }

const errUnmapped = sentinelErr("unmapped")

func TestSWMRAccepts(t *testing.T) {
	cases := []struct {
		name string
		p    stubProts
	}{
		{"unmapped everywhere", stubProts{{}, {}}},
		{"single writer", stubProts{{0x1000: vm.ReadWrite}, {}}},
		{"many readers", stubProts{{0x1000: vm.ReadOnly}, {0x1000: vm.ReadOnly}, {0x1000: vm.ReadOnly}}},
		{"writer and reader on different words", stubProts{{0x1000: vm.ReadWrite}, {0x2000: vm.ReadOnly}}},
		{"no-access mapping ignored", stubProts{{0x1000: vm.ReadWrite}, {0x1000: vm.NoAccess}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := SWMR(c.p, []uint64{0x1000, 0x2000}); err != nil {
				t.Fatalf("SWMR rejected a legal history: %v", err)
			}
		})
	}
}

func TestSWMRRejectsTwoWriters(t *testing.T) {
	p := stubProts{{0x1000: vm.ReadWrite}, {0x1000: vm.ReadWrite}, {}}
	err := SWMR(p, []uint64{0x1000})
	if err == nil || !strings.Contains(err.Error(), "2 writable copies") {
		t.Fatalf("SWMR accepted two writers (err=%v)", err)
	}
}

func TestSWMRRejectsWriterWithReaders(t *testing.T) {
	p := stubProts{{0x1000: vm.ReadWrite}, {0x1000: vm.ReadOnly}, {0x1000: vm.ReadOnly}}
	err := SWMR(p, []uint64{0x1000})
	if err == nil || !strings.Contains(err.Error(), "coexists with 2 readers") {
		t.Fatalf("SWMR accepted writer+readers (err=%v)", err)
	}
}

func TestMessagePassingOutcome(t *testing.T) {
	if err := MessagePassingOutcome(true, 42); err != nil {
		t.Errorf("legal outcome rejected: %v", err)
	}
	if err := MessagePassingOutcome(false, 0); err != nil {
		t.Errorf("vacuous outcome (flag never seen) rejected: %v", err)
	}
	if err := MessagePassingOutcome(true, 0); err == nil {
		t.Error("stale-data outcome accepted")
	}
}

func TestDekkerOutcome(t *testing.T) {
	for _, ok := range [][2]uint32{{1, 0}, {0, 1}, {1, 1}} {
		if err := DekkerOutcome(ok[0], ok[1]); err != nil {
			t.Errorf("legal outcome %v rejected: %v", ok, err)
		}
	}
	if err := DekkerOutcome(0, 0); err == nil {
		t.Error("forbidden outcome r0=r1=0 accepted")
	}
}

func TestDRFOutcomes(t *testing.T) {
	if err := DRFCellOutcome(2, 1, 3, 203); err != nil {
		t.Errorf("correct cell value rejected: %v", err)
	}
	if err := DRFCellOutcome(2, 1, 3, 103); err == nil {
		t.Error("stale cell value (previous round) accepted")
	}
	// 4 hosts, 2 reps: sum = 2 * (1+2+3+4) = 20.
	if err := DRFAccumulatorOutcome(4, 2, 0, 20); err != nil {
		t.Errorf("correct accumulator rejected: %v", err)
	}
	if err := DRFAccumulatorOutcome(4, 2, 0, 19); err == nil {
		t.Error("lost-update accumulator accepted")
	}
}

func TestMergeWordOutcome(t *testing.T) {
	// Round 2, word 3: want 1000*2 + 7*3 + 13 = 2034.
	if err := MergeWordOutcome(2, 0, 3, 2034); err != nil {
		t.Errorf("correct merged word rejected: %v", err)
	}
	if err := MergeWordOutcome(2, 0, 3, 1034); err == nil {
		t.Error("stale word (previous round) accepted")
	}
	if err := MergeWordOutcome(2, 0, 3, 2027); err == nil {
		t.Error("neighbor's word value (smeared diff) accepted")
	}
}
