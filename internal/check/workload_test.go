package check_test

import (
	"testing"

	"millipage/internal/check"
	"millipage/internal/cluster"
	"millipage/internal/dsm"
)

// runDSM executes body on a small millipage cluster — the default
// schedule, no faults. The protocol sweep lives in internal/cluster's
// conformance suite; this test only proves the exported workload
// bodies are runnable and their oracles accept a correct protocol.
func runDSM(t *testing.T, hosts int, body func(w cluster.AppThread)) *cluster.Runtime {
	t.Helper()
	sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(func(th *dsm.Thread) { body(th) }); err != nil {
		t.Fatal(err)
	}
	return sys.Runtime()
}

func TestWorkloadsPassOnCorrectProtocol(t *testing.T) {
	t.Run("message-passing", func(t *testing.T) {
		wl := &check.MessagePassing{}
		runDSM(t, 2, wl.Body)
		if err := wl.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dekker", func(t *testing.T) {
		wl := &check.Dekker{}
		runDSM(t, 2, wl.Body)
		if err := wl.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("drf", func(t *testing.T) {
		wl := &check.DRF{Hosts: 3, Rounds: 2, LockReps: 2}
		runDSM(t, 3, wl.Body)
		if err := wl.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("merge", func(t *testing.T) {
		wl := &check.ConcurrentMerge{Hosts: 3, Rounds: 2}
		runDSM(t, 3, wl.Body)
		if err := wl.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("swmr", func(t *testing.T) {
		sys, err := dsm.New(dsm.Options{Hosts: 3, SharedSize: 1 << 16, Views: 8, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		wl := &check.SWMRSweep{Words: 3, Iters: 8, Seed: 2, Prots: check.RuntimeProts{RT: sys.Runtime()}}
		if err := sys.Run(func(th *dsm.Thread) { wl.Body(th) }); err != nil {
			t.Fatal(err)
		}
		if err := wl.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
