// Package check exports the DESIGN.md §8 sharing invariants — the
// Single-Writer/Multiple-Readers page-table invariant, the sequential-
// consistency litmus oracles, and the DRF-agreement oracle — as plain
// functions and portable workload bodies. The conformance and chaos
// suites in internal/cluster assert them on the default schedule; the
// model checker in internal/mcheck asserts them after every explored
// schedule. Keeping the checkers here, outside any _test.go file, is
// what lets both call the same code.
package check

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/vm"
)

// Prots is the slice of cluster state the SW/MR checker reads: each
// host's page-table protection for an address. *cluster.Runtime
// satisfies it via RuntimeProts; tests hand-build violating histories
// with any stub implementation.
type Prots interface {
	NumHosts() int
	// ProtOf reports host h's protection for va; err != nil means the
	// address is unmapped on that host.
	ProtOf(h int, va uint64) (vm.Prot, error)
}

// RuntimeProts adapts a cluster runtime to the Prots view.
type RuntimeProts struct{ RT *cluster.Runtime }

func (r RuntimeProts) NumHosts() int { return r.RT.NumHosts() }
func (r RuntimeProts) ProtOf(h int, va uint64) (vm.Prot, error) {
	return r.RT.Host(h).AS.ProtOf(va)
}

// SWMR verifies the Single-Writer/Multiple-Readers invariant for the
// tracked addresses across every host's page table: at most one
// writable mapping, and a writable mapping excludes readable copies
// elsewhere. The simulation runs one process at a time, so sampling
// global VM state from inside a thread body observes a consistent
// instant of virtual time.
func SWMR(p Prots, vas []uint64) error {
	for _, va := range vas {
		writers, readers := 0, 0
		for i := 0; i < p.NumHosts(); i++ {
			prot, err := p.ProtOf(i, va)
			if err != nil {
				continue // unmapped on this host
			}
			switch prot {
			case vm.ReadWrite:
				writers++
			case vm.ReadOnly:
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("addr %#x: %d writable copies", va, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("addr %#x: writable copy coexists with %d readers", va, readers)
		}
	}
	return nil
}

// MessagePassingOutcome judges one observation of the message-passing
// litmus: a reader that saw the flag raised must see the published
// data. seen is false if the reader never observed the flag (the
// litmus is then vacuous — not a violation).
func MessagePassingOutcome(seen bool, data uint32) error {
	if seen && data != 42 {
		return fmt.Errorf("message-passing litmus: observed flag but read data=%d, want 42", data)
	}
	return nil
}

// DekkerOutcome judges one observation of the store-buffering (Dekker)
// litmus: under sequential consistency at least one side must observe
// the other's write, so r0 = r1 = 0 is forbidden.
func DekkerOutcome(r0, r1 uint32) error {
	if r0 == 0 && r1 == 0 {
		return fmt.Errorf("dekker litmus: forbidden SC outcome r0=r1=0")
	}
	return nil
}

// DRFCellOutcome judges one cell read in the barrier hand-off phase of
// the DRF workload: in round r, cell c must hold the value written
// that round.
func DRFCellOutcome(round, host, cell int, got uint32) error {
	if want := uint32(100*round + cell); got != want {
		return fmt.Errorf("round %d host %d: cell %d = %d, want %d", round, host, cell, got, want)
	}
	return nil
}

// MergeWordOutcome judges one word read in the concurrent-merge
// workload's check phase: in round r, word w (owned by host w) must
// hold the value host w wrote that round. This is the LRC oracle in its
// sharpest form — the words share one minipage, so a multiple-writer
// protocol must merge every concurrent interval's diff without losing
// or smearing a neighbor's bytes.
func MergeWordOutcome(round, reader, word int, got uint32) error {
	if want := uint32(1000*round + 7*word + 13); got != want {
		return fmt.Errorf("round %d reader %d: word %d = %d, want %d", round, reader, word, got, want)
	}
	return nil
}

// DRFAccumulatorOutcome judges the lock-guarded accumulator at the end
// of the DRF workload: every host added its (host+1) contribution
// lockReps times, so anything but the closed-form sum is a lost or
// phantom update.
func DRFAccumulatorOutcome(hosts, lockReps, host int, got uint32) error {
	if want := uint32(lockReps * hosts * (hosts + 1) / 2); got != want {
		return fmt.Errorf("host %d: accumulator = %d, want %d", host, got, want)
	}
	return nil
}
