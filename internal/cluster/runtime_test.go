package cluster

import (
	"strings"
	"testing"

	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// nopHandler is the minimal protocol: no faults, no messages.
type nopHandler struct{}

func (nopHandler) HandleFault(ctx any, f vm.Fault) error          { return nil }
func (nopHandler) HandleMessage(p *sim.Proc, fm *fastmsg.Message) {}
func (nopHandler) DescribeMsg(payload any) (uint16, int, uint64, int) {
	return 0, -1, 0, -1
}

func newTestRuntime(hosts, threadsPerHost int) *Runtime {
	rt := New(Config{Name: "test", Hosts: hosts, ThreadsPerHost: threadsPerHost})
	for i := 0; i < hosts; i++ {
		rt.NewHost(vm.NewAddressSpace(), nopHandler{})
	}
	return rt
}

func TestRunThreadLifecycle(t *testing.T) {
	rt := newTestRuntime(2, 2)
	err := rt.Run(func(ct *Thread) func() {
		return func() {
			ct.Compute(sim.Duration(ct.ID+1) * sim.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ths := rt.Threads()
	if len(ths) != 4 || rt.TotalThreads() != 4 {
		t.Fatalf("threads = %d (total %d), want 4", len(ths), rt.TotalThreads())
	}
	// Global ids in spawn order, local ids per host, hosts in id order.
	wantHost := []int{0, 0, 1, 1}
	wantLID := []int{0, 1, 0, 1}
	for i, th := range ths {
		if th.ID != i || th.Host() != wantHost[i] || th.LID != wantLID[i] {
			t.Fatalf("thread %d: ID=%d host=%d LID=%d, want %d/%d/%d",
				i, th.ID, th.Host(), th.LID, i, wantHost[i], wantLID[i])
		}
		want := sim.Duration(i+1) * sim.Millisecond
		if th.Stats.ComputeTime != want || th.Stats.Total() != want {
			t.Fatalf("thread %d: compute=%v total=%v, want %v",
				i, th.Stats.ComputeTime, th.Stats.Total(), want)
		}
	}
	// The run lasts as long as the slowest thread.
	if rt.Elapsed() != 4*sim.Millisecond {
		t.Fatalf("Elapsed = %v, want 4ms", rt.Elapsed())
	}
}

func TestRunGuards(t *testing.T) {
	rt := newTestRuntime(1, 1)
	if err := rt.Run(nil); err == nil || !strings.Contains(err.Error(), "test: nil thread body") {
		t.Fatalf("Run(nil) = %v, want nil-thread-body error", err)
	}
	mk := func(ct *Thread) func() { return func() {} }
	if err := rt.Run(mk); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(mk); err == nil || !strings.Contains(err.Error(), "Run called twice") {
		t.Fatalf("second Run = %v, want run-twice error", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	rt := New(Config{})
	cfg := rt.Cfg
	if cfg.Name != "cluster" || cfg.Hosts != 1 || cfg.ThreadsPerHost != 1 || cfg.Seed != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Costs == (Costs{}) || cfg.Net == (fastmsg.Params{}) {
		t.Fatal("zero cost/net tables not defaulted")
	}
}
