// Chaos conformance: the same sharing invariants as conformance_test.go,
// re-run under seeded fault injection — frame drops, duplication,
// reordering, link partitions that heal, and host crash/restart
// (including the manager host). The transport's reliability layer plus
// the protocols' retry/dedup hardening must make every run terminate
// with the invariants intact; a watchdog converts a livelock into a
// test failure instead of a hang.
package cluster_test

import (
	"fmt"
	"testing"

	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/faultnet"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
)

// chaosWatchdog bounds a chaos run's virtual time: well past any
// retransmission backoff chain, far below forever.
const chaosWatchdog = 120 * sim.Second

// schedule is one named fault plan of the chaos matrix.
type schedule struct {
	name string
	plan func(hosts int, seed int64) *faultnet.Plan
}

// schedules returns the ISSUE's four-point chaos matrix. Partition and
// crash windows sit a few virtual milliseconds in — inside the barrier
// phases of every workload below.
func schedules() []schedule {
	return []schedule{
		{"drop-heavy", func(hosts int, seed int64) *faultnet.Plan {
			return &faultnet.Plan{Seed: seed, Drop: 0.25, Dup: 0.15}
		}},
		{"reorder-heavy", func(hosts int, seed int64) *faultnet.Plan {
			return &faultnet.Plan{Seed: seed, Drop: 0.05, Reorder: 0.6, Jitter: 3 * sim.Millisecond}
		}},
		{"partition-heal", func(hosts int, seed int64) *faultnet.Plan {
			half := hosts / 2
			var a, b uint64
			for h := 0; h < hosts; h++ {
				if h < half {
					a |= 1 << uint(h)
				} else {
					b |= 1 << uint(h)
				}
			}
			return &faultnet.Plan{
				Seed: seed,
				Drop: 0.05,
				Partitions: []faultnet.Partition{
					{A: a, B: b, From: sim.Time(2 * sim.Millisecond), Until: sim.Time(12 * sim.Millisecond)},
				},
			}
		}},
		{"crash-restart", func(hosts int, seed int64) *faultnet.Plan {
			crashes := []faultnet.Crash{
				{Host: hosts - 1, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(8 * sim.Millisecond)},
				// The manager / allocation authority itself.
				{Host: 0, At: sim.Time(15 * sim.Millisecond), RestartAt: sim.Time(22 * sim.Millisecond)},
			}
			return &faultnet.Plan{Seed: seed, Drop: 0.02, Crashes: crashes}
		}},
	}
}

// chaosRun builds one protocol cluster with a fault plan armed.
type chaosRun struct {
	name string
	sc   bool
	make func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(body func(t cluster.AppThread)) error, error)
}

func chaosProtocols() []chaosRun {
	return []chaosRun{
		{"millipage", true, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *dsm.Thread) { body(t) })
			}, nil
		}},
		{"ivy", true, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 16, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *ivy.Thread) { body(t) })
			}, nil
		}},
		{"lrc", false, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.New(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.Thread) { body(t) })
			}, nil
		}},
	}
}

// runChaos drives body on a freshly built faulty cluster with the
// watchdog armed, and fails the test on timeout instead of hanging.
func runChaos(t *testing.T, pr chaosRun, hosts int, seed int64, plan *faultnet.Plan,
	body func(rt *cluster.Runtime, w cluster.AppThread)) *cluster.Runtime {
	t.Helper()
	rt, run, err := pr.make(hosts, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Faulty() {
		t.Fatal("fault plan did not arm")
	}
	done := 0
	rt.Eng.At(sim.Time(chaosWatchdog), rt.Eng.Stop)
	err = run(func(w cluster.AppThread) {
		body(rt, w)
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != rt.TotalThreads() {
		t.Fatalf("watchdog: %d of %d threads finished before %v (livelock under faults)",
			done, rt.TotalThreads(), chaosWatchdog)
	}
	return rt
}

// TestChaosDRFOracle is the DRF agreement oracle of conformance_test.go
// under every fault schedule, for every protocol: barrier hand-offs and
// a lock-guarded accumulator must produce the exact oracle state no
// matter what the wire does.
func TestChaosDRFOracle(t *testing.T) {
	const hosts, rounds, lockReps = 4, 3, 2
	for _, pr := range chaosProtocols() {
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				var cells [hosts]uint64
				var acc uint64
				var bad error
				runChaos(t, pr, hosts, 1, sc.plan(hosts, 7), func(rt *cluster.Runtime, w cluster.AppThread) {
					h := w.Host()
					if h == 0 {
						for i := range cells {
							cells[i] = w.Malloc(64)
							w.WriteU32(cells[i], 0)
						}
						acc = w.Malloc(64)
						w.WriteU32(acc, 0)
					}
					w.Barrier()
					for r := 0; r < rounds; r++ {
						w.WriteU32(cells[(h+r)%hosts], uint32(100*r+(h+r)%hosts))
						w.Barrier()
						for c := 0; c < hosts; c++ {
							if got, want := w.ReadU32(cells[c]), uint32(100*r+c); got != want && bad == nil {
								bad = fmt.Errorf("round %d host %d: cell %d = %d, want %d", r, h, c, got, want)
							}
						}
						w.Barrier()
					}
					for i := 0; i < lockReps; i++ {
						w.Lock(3)
						w.WriteU32(acc, w.ReadU32(acc)+uint32(h+1))
						w.Unlock(3)
						w.Compute(100 * sim.Microsecond)
					}
					w.Barrier()
					want := uint32(lockReps * hosts * (hosts + 1) / 2)
					if got := w.ReadU32(acc); got != want && bad == nil {
						bad = fmt.Errorf("host %d: accumulator = %d, want %d", h, got, want)
					}
					w.Barrier()
				})
				if bad != nil {
					t.Fatalf("%s/%s: %v", pr.name, sc.name, bad)
				}
			})
		}
	}
}

// TestChaosSWMR re-runs the Single-Writer/Multiple-Readers sweep under
// every fault schedule for the SC protocols, asserting the invariant
// after every completed operation.
func TestChaosSWMR(t *testing.T) {
	const hosts, words, iters = 4, 4, 16
	for _, pr := range chaosProtocols() {
		if !pr.sc {
			continue
		}
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				vas := make([]uint64, words)
				var failure error
				runChaos(t, pr, hosts, 2, sc.plan(hosts, 11), func(rt *cluster.Runtime, w cluster.AppThread) {
					if w.Host() == 0 {
						for i := range vas {
							vas[i] = w.Malloc(64)
							w.WriteU32(vas[i], 0)
						}
					}
					w.Barrier()
					r := uint64(11)*2654435761 + uint64(w.Host()+1)*40503
					for it := 0; it < iters; it++ {
						r = r*6364136223846793005 + 1442695040888963407
						va := vas[(r>>33)%words]
						if (r>>62)&1 == 0 {
							_ = w.ReadU32(va)
						} else {
							w.WriteU32(va, uint32(w.Host()*1000+it))
						}
						if e := checkSWMR(rt, vas); e != nil && failure == nil {
							failure = fmt.Errorf("host %d op %d: %w", w.Host(), it, e)
						}
						w.Compute(50 * sim.Microsecond)
					}
					w.Barrier()
				})
				if failure != nil {
					t.Fatal(failure)
				}
			})
		}
	}
}

// TestChaosSCMessagePassing is the publish/subscribe litmus under
// faults: observing the flag must still imply observing the data, even
// while the wire drops, reorders and partitions.
func TestChaosSCMessagePassing(t *testing.T) {
	for _, pr := range chaosProtocols() {
		if !pr.sc {
			continue
		}
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				var data, flag uint64
				got := uint32(0)
				runChaos(t, pr, 4, 3, sc.plan(4, 13), func(rt *cluster.Runtime, w cluster.AppThread) {
					if w.Host() == 0 {
						data = w.Malloc(64)
						flag = w.Malloc(64)
						w.WriteU32(data, 0)
						w.WriteU32(flag, 0)
					}
					w.Barrier()
					switch w.Host() {
					case 0:
						w.Compute(200 * sim.Microsecond)
						w.WriteU32(data, 42)
						w.WriteU32(flag, 1)
					case 1:
						spins := 0
						for w.ReadU32(flag) == 0 {
							if spins++; spins > 100000 {
								panic("flag never observed")
							}
							w.Compute(20 * sim.Microsecond)
						}
						got = w.ReadU32(data)
					default:
						// Background traffic so partitions and crashes have
						// protocol state to disturb.
						for i := 0; i < 8; i++ {
							w.Compute(300 * sim.Microsecond)
						}
					}
					w.Barrier()
				})
				if got != 42 {
					t.Fatalf("%s/%s: observed flag but read data=%d, want 42", pr.name, sc.name, got)
				}
			})
		}
	}
}

// chaosFingerprint reduces one finished run to a comparable value:
// elapsed virtual time plus every endpoint's full transport counters.
func chaosFingerprint(rt *cluster.Runtime) string {
	s := fmt.Sprintf("elapsed=%d", rt.Elapsed())
	for i := 0; i < rt.NumHosts(); i++ {
		s += fmt.Sprintf(";%+v", rt.Net.Endpoint(i).Stats())
	}
	return s
}

// TestChaosDeterminism runs the DRF workload twice per protocol under
// the everything-at-once schedule and requires bit-identical virtual
// time and transport counters — the replayability guarantee that makes
// fault schedules debuggable.
func TestChaosDeterminism(t *testing.T) {
	const hosts = 4
	everything := func(seed int64) *faultnet.Plan {
		pl := schedules()[3].plan(hosts, seed) // crash-restart
		pl.Drop, pl.Dup = 0.15, 0.1
		pl.Reorder, pl.Jitter = 0.3, 2*sim.Millisecond
		pl.Partitions = schedules()[2].plan(hosts, seed).Partitions
		return pl
	}
	for _, pr := range chaosProtocols() {
		t.Run(pr.name, func(t *testing.T) {
			var prints [2]string
			for run := 0; run < 2; run++ {
				var acc uint64
				rt := runChaos(t, pr, hosts, 5, everything(17), func(rt *cluster.Runtime, w cluster.AppThread) {
					if w.Host() == 0 {
						acc = w.Malloc(64)
						w.WriteU32(acc, 0)
					}
					w.Barrier()
					for i := 0; i < 3; i++ {
						w.Lock(1)
						w.WriteU32(acc, w.ReadU32(acc)+uint32(w.Host()+1))
						w.Unlock(1)
						w.Compute(200 * sim.Microsecond)
					}
					w.Barrier()
				})
				prints[run] = chaosFingerprint(rt)
			}
			if prints[0] != prints[1] {
				t.Fatalf("two runs of the same fault schedule diverged:\n run0: %s\n run1: %s", prints[0], prints[1])
			}
		})
	}
}
