// Chaos conformance: the same sharing invariants as conformance_test.go,
// re-run under seeded fault injection — frame drops, duplication,
// reordering, link partitions that heal, and host crash/restart
// (including the manager host). The transport's reliability layer plus
// the protocols' retry/dedup hardening must make every run terminate
// with the invariants intact; a watchdog converts a livelock into a
// test failure instead of a hang.
package cluster_test

import (
	"fmt"
	"testing"

	"millipage/internal/check"
	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/faultnet"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
)

// chaosWatchdog bounds a chaos run's virtual time: well past any
// retransmission backoff chain, far below forever.
const chaosWatchdog = 120 * sim.Second

// schedule is one named fault plan of the chaos matrix.
type schedule struct {
	name string
	plan func(hosts int, seed int64) *faultnet.Plan
}

// schedules returns the ISSUE's four-point chaos matrix. Partition and
// crash windows sit a few virtual milliseconds in — inside the barrier
// phases of every workload below.
func schedules() []schedule {
	return []schedule{
		{"drop-heavy", func(hosts int, seed int64) *faultnet.Plan {
			return &faultnet.Plan{Seed: seed, Drop: 0.25, Dup: 0.15}
		}},
		{"reorder-heavy", func(hosts int, seed int64) *faultnet.Plan {
			return &faultnet.Plan{Seed: seed, Drop: 0.05, Reorder: 0.6, Jitter: 3 * sim.Millisecond}
		}},
		{"partition-heal", func(hosts int, seed int64) *faultnet.Plan {
			half := hosts / 2
			var a, b uint64
			for h := 0; h < hosts; h++ {
				if h < half {
					a |= 1 << uint(h)
				} else {
					b |= 1 << uint(h)
				}
			}
			return &faultnet.Plan{
				Seed: seed,
				Drop: 0.05,
				Partitions: []faultnet.Partition{
					{A: a, B: b, From: sim.Time(2 * sim.Millisecond), Until: sim.Time(12 * sim.Millisecond)},
				},
			}
		}},
		{"crash-restart", func(hosts int, seed int64) *faultnet.Plan {
			crashes := []faultnet.Crash{
				{Host: hosts - 1, At: sim.Time(2 * sim.Millisecond), RestartAt: sim.Time(8 * sim.Millisecond)},
				// The manager / allocation authority itself.
				{Host: 0, At: sim.Time(15 * sim.Millisecond), RestartAt: sim.Time(22 * sim.Millisecond)},
			}
			return &faultnet.Plan{Seed: seed, Drop: 0.02, Crashes: crashes}
		}},
	}
}

// chaosRun builds one protocol cluster with a fault plan armed.
type chaosRun struct {
	name string
	sc   bool
	make func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(body func(t cluster.AppThread)) error, error)
}

func chaosProtocols() []chaosRun {
	return []chaosRun{
		{"millipage", true, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *dsm.Thread) { body(t) })
			}, nil
		}},
		{"ivy", true, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 16, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *ivy.Thread) { body(t) })
			}, nil
		}},
		{"lrc", false, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.New(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.Thread) { body(t) })
			}, nil
		}},
		{"lrc-mw", false, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.NewMW(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed, Faults: plan})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.MWThread) { body(t) })
			}, nil
		}},
	}
}

// runChaos drives body on a freshly built faulty cluster with the
// watchdog armed, and fails the test on timeout instead of hanging.
func runChaos(t *testing.T, pr chaosRun, hosts int, seed int64, plan *faultnet.Plan,
	body func(rt *cluster.Runtime, w cluster.AppThread)) *cluster.Runtime {
	t.Helper()
	rt, run, err := pr.make(hosts, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Faulty() {
		t.Fatal("fault plan did not arm")
	}
	done := 0
	rt.Eng.At(sim.Time(chaosWatchdog), rt.Eng.Stop)
	err = run(func(w cluster.AppThread) {
		body(rt, w)
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != rt.TotalThreads() {
		t.Fatalf("watchdog: %d of %d threads finished before %v (livelock under faults)",
			done, rt.TotalThreads(), chaosWatchdog)
	}
	return rt
}

// TestChaosDRFOracle is the check.DRF agreement oracle under every
// fault schedule, for every protocol: barrier hand-offs and a
// lock-guarded accumulator must produce the exact oracle state no
// matter what the wire does.
func TestChaosDRFOracle(t *testing.T) {
	const hosts = 4
	for _, pr := range chaosProtocols() {
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				wl := &check.DRF{Hosts: hosts, Rounds: 3, LockReps: 2}
				runChaos(t, pr, hosts, 1, sc.plan(hosts, 7), func(rt *cluster.Runtime, w cluster.AppThread) {
					wl.Body(w)
				})
				if err := wl.Err(); err != nil {
					t.Fatalf("%s/%s: %v", pr.name, sc.name, err)
				}
			})
		}
	}
}

// TestChaosConcurrentMerge is the multiple-writer agreement oracle
// under every fault schedule, for every protocol: concurrent writers to
// disjoint bytes of one minipage, separated by barriers, must converge
// on the oracle state no matter what the wire does. Under lrc-mw this
// drives twin creation, diff flushes and lazy diff fetches through
// drops, partitions and crash/restart windows.
func TestChaosConcurrentMerge(t *testing.T) {
	const hosts = 4
	for _, pr := range chaosProtocols() {
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				wl := &check.ConcurrentMerge{Hosts: hosts, Rounds: 3}
				runChaos(t, pr, hosts, 1, sc.plan(hosts, 9), func(rt *cluster.Runtime, w cluster.AppThread) {
					wl.Body(w)
				})
				if err := wl.Err(); err != nil {
					t.Fatalf("%s/%s: %v", pr.name, sc.name, err)
				}
			})
		}
	}
}

// TestChaosSWMR re-runs the Single-Writer/Multiple-Readers sweep under
// every fault schedule for the SC protocols, asserting the invariant
// after every completed operation.
func TestChaosSWMR(t *testing.T) {
	const hosts = 4
	for _, pr := range chaosProtocols() {
		if !pr.sc {
			continue
		}
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				wl := &check.SWMRSweep{Words: 4, Iters: 16, Seed: 11}
				runChaos(t, pr, hosts, 2, sc.plan(hosts, 11), func(rt *cluster.Runtime, w cluster.AppThread) {
					if wl.Prots == nil {
						wl.Prots = check.RuntimeProts{RT: rt}
					}
					wl.Body(w)
				})
				if err := wl.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosSCMessagePassing is the publish/subscribe litmus under
// faults: observing the flag must still imply observing the data, even
// while the wire drops, reorders and partitions.
func TestChaosSCMessagePassing(t *testing.T) {
	for _, pr := range chaosProtocols() {
		if !pr.sc {
			continue
		}
		for _, sc := range schedules() {
			t.Run(pr.name+"/"+sc.name, func(t *testing.T) {
				wl := &check.MessagePassing{}
				runChaos(t, pr, 4, 3, sc.plan(4, 13), func(rt *cluster.Runtime, w cluster.AppThread) {
					wl.Body(w)
				})
				if err := wl.Err(); err != nil {
					t.Fatalf("%s/%s: %v", pr.name, sc.name, err)
				}
			})
		}
	}
}

// chaosFingerprint reduces one finished run to a comparable value:
// elapsed virtual time plus every endpoint's full transport counters.
func chaosFingerprint(rt *cluster.Runtime) string {
	s := fmt.Sprintf("elapsed=%d", rt.Elapsed())
	for i := 0; i < rt.NumHosts(); i++ {
		s += fmt.Sprintf(";%+v", rt.Net.Endpoint(i).Stats())
	}
	return s
}

// TestChaosDeterminism runs the DRF workload twice per protocol under
// the everything-at-once schedule and requires bit-identical virtual
// time and transport counters — the replayability guarantee that makes
// fault schedules debuggable.
func TestChaosDeterminism(t *testing.T) {
	const hosts = 4
	everything := func(seed int64) *faultnet.Plan {
		pl := schedules()[3].plan(hosts, seed) // crash-restart
		pl.Drop, pl.Dup = 0.15, 0.1
		pl.Reorder, pl.Jitter = 0.3, 2*sim.Millisecond
		pl.Partitions = schedules()[2].plan(hosts, seed).Partitions
		return pl
	}
	for _, pr := range chaosProtocols() {
		t.Run(pr.name, func(t *testing.T) {
			var prints [2]string
			for run := 0; run < 2; run++ {
				var acc uint64
				rt := runChaos(t, pr, hosts, 5, everything(17), func(rt *cluster.Runtime, w cluster.AppThread) {
					if w.Host() == 0 {
						acc = w.Malloc(64)
						w.WriteU32(acc, 0)
					}
					w.Barrier()
					for i := 0; i < 3; i++ {
						w.Lock(1)
						w.WriteU32(acc, w.ReadU32(acc)+uint32(w.Host()+1))
						w.Unlock(1)
						w.Compute(200 * sim.Microsecond)
					}
					w.Barrier()
				})
				prints[run] = chaosFingerprint(rt)
			}
			if prints[0] != prints[1] {
				t.Fatalf("two runs of the same fault schedule diverged:\n run0: %s\n run1: %s", prints[0], prints[1])
			}
		})
	}
}
