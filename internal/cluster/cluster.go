// Package cluster is the shared runtime substrate under every DSM
// protocol in this repository (dsm's Millipage, ivy, lrc): host and
// application-thread lifecycle, the fault/message rendezvous, message
// endpoint wiring with pooled envelopes, per-thread time-breakdown
// accounting, trace hooks, and the barrier/lock/queue services the
// protocols' coordinator hosts run.
//
// A protocol implements the HostHandler interface — fault handling,
// message handling and trace description — and otherwise consists purely
// of policy: what a fault sends where, what a message does to the
// directory, where allocations live. Everything mechanical (spawning
// threads, busy-reference counting around blocking points, envelope
// pooling, stats) lives here exactly once.
//
// Determinism contract: the runtime performs no virtual-time operation
// of its own — every Sleep, Send and Wait is issued by the protocol — so
// porting a protocol onto this package is bit-identical in virtual time
// as long as the protocol issues the same sequence of operations.
package cluster

import (
	"fmt"

	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// Config describes the substrate of one simulated cluster.
type Config struct {
	// Name prefixes error messages ("dsm", "ivy", "lrc").
	Name string

	Hosts          int
	ThreadsPerHost int
	Seed           int64

	// Engine selects the event engine: "seq" (default) is the classic
	// single-calendar engine, bit-identical to every release since the
	// simulator landed; "par" shards the calendar per host (plus shard 0
	// for global services) and executes the shards concurrently inside
	// conservative lookahead windows. The parallel engine is incompatible
	// with fault injection and tracing, which share state across hosts.
	Engine string

	// ParWorkers bounds the parallel engine's worker goroutines
	// (0 = GOMAXPROCS). The simulation's outcome is identical at every
	// width; only wall-clock time changes.
	ParWorkers int

	Net   fastmsg.Params
	Costs Costs

	// Faults, when non-nil and enabled, makes the wire lossy per the
	// plan and arms fastmsg's reliability layer. Protocol packages
	// validate the plan (Plan.Validate) before building the runtime; an
	// invalid plan panics here. Nil — or an all-zero plan — leaves the
	// transport on its untouched clean path.
	Faults *faultnet.Plan

	// Trace, if non-nil, records protocol events (message sends, fault
	// entries, handler dispatches) for debugging.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "cluster"
	}
	if c.Hosts == 0 {
		c.Hosts = 1
	}
	if c.ThreadsPerHost == 0 {
		c.ThreadsPerHost = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Net == (fastmsg.Params{}) {
		c.Net = fastmsg.DefaultParams()
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.Engine == "" {
		c.Engine = EngineSeq
	}
	return c
}

// Engine selector values for Config.Engine.
const (
	EngineSeq = "seq"
	EnginePar = "par"
)

// Runtime is one cluster's substrate: the simulation engine, the network,
// the hosts and the application threads. Protocol packages wrap it in
// their System types; host-count validation stays with them (each has its
// own documented range and error text).
type Runtime struct {
	Cfg   Config
	Eng   *sim.Engine
	Net   *fastmsg.Network
	Trace *trace.Recorder

	hosts   []*Host
	threads []*Thread

	totalThreads int
	ran          bool
	faulty       bool
}

// New builds the engine and network for cfg. Hosts are attached
// afterwards with NewHost, one call per host in id order.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	var eng *sim.Engine
	switch cfg.Engine {
	case EngineSeq:
		eng = sim.NewEngine(cfg.Seed)
	case EnginePar:
		if cfg.Faults.Enabled() {
			panic(cfg.Name + `: Engine "par" is incompatible with fault injection (the reliability layer shares per-link state across hosts); use Engine "seq"`)
		}
		if cfg.Trace != nil {
			panic(cfg.Name + `: Engine "par" is incompatible with tracing (the recorder is a single globally ordered ring); use Engine "seq"`)
		}
		eng = sim.NewShardedEngine(cfg.Seed, cfg.Hosts+1)
		if cfg.ParWorkers > 0 {
			eng.SetParWorkers(cfg.ParWorkers)
		}
	default:
		panic(fmt.Sprintf("%s: unknown Engine %q (want %q or %q)", cfg.Name, cfg.Engine, EngineSeq, EnginePar))
	}
	net := fastmsg.New(eng, cfg.Hosts, cfg.Net)
	rt := &Runtime{Cfg: cfg, Eng: eng, Net: net, Trace: cfg.Trace}
	if cfg.Faults.Enabled() {
		inj, err := faultnet.NewInjector(*cfg.Faults, cfg.Hosts, cfg.Seed)
		if err != nil {
			panic(fmt.Sprintf("%s: %v (validate the fault plan before cluster.New)", cfg.Name, err))
		}
		net.InstallFaults(inj)
		net.SetRestartHook(rt.onRestart)
		rt.faulty = true
	}
	return rt
}

// Faulty reports whether a fault plan is armed on this runtime.
func (rt *Runtime) Faulty() bool { return rt.faulty }

// CrashRecoverer is optionally implemented by a protocol's HostHandler:
// RecoverCrash runs in a fresh recovery process after the host's network
// stack restarts, before the runtime re-issues the host's in-flight
// blocking requests. Protocols charge their recovery work (rebuilding an
// MPT replica, rescanning a directory shard) as virtual time here.
type CrashRecoverer interface {
	RecoverCrash(p *sim.Proc)
}

// onRestart is the fastmsg restart hook: spawn the host's recovery
// process, which runs protocol recovery and then re-sends every
// in-flight blocking request registered with BlockRetry.
func (rt *Runtime) onRestart(h int) {
	host := rt.hosts[h]
	host.sh.SpawnDaemon(fmt.Sprintf("recover-%d", h), func(p *sim.Proc) {
		if cr, ok := host.handler.(CrashRecoverer); ok {
			cr.RecoverCrash(p)
		}
		host.resendInflight(p)
	})
}

// NewHost attaches the next host (ids are assigned in call order) and
// wires its fault and message entry points to hh, with the runtime's
// trace recording layered on top.
func (rt *Runtime) NewHost(as *vm.AddressSpace, hh HostHandler) *Host {
	id := len(rt.hosts)
	ep := rt.Net.Endpoint(id)
	h := &Host{rt: rt, id: id, AS: as, EP: ep, sh: ep.Shard(), handler: hh}
	as.SetFaultHandler(h.onFault)
	h.EP.SetHandler(h.onMessage)
	rt.hosts = append(rt.hosts, h)
	return h
}

// Host returns host i.
func (rt *Runtime) Host(i int) *Host { return rt.hosts[i] }

// NumHosts returns the cluster size.
func (rt *Runtime) NumHosts() int { return rt.Cfg.Hosts }

// Threads returns the application threads after Run (for statistics).
func (rt *Runtime) Threads() []*Thread { return rt.threads }

// TotalThreads returns the application thread count (set by Run).
func (rt *Runtime) TotalThreads() int { return rt.totalThreads }

// Elapsed returns the virtual time at which the simulation stopped — the
// parallel execution time of the application.
func (rt *Runtime) Elapsed() sim.Duration { return sim.Duration(rt.Eng.Now()) }

// Run starts ThreadsPerHost application threads on every host and drives
// the simulation until all of them finish. mk is called once per thread,
// in global-id order, with the thread's substrate record; it returns the
// body to execute. A protocol's mk typically allocates its own thread
// wrapper around t, installs it with t.SetSelf (so faults carry the
// wrapper as context) and closes over it.
func (rt *Runtime) Run(mk func(t *Thread) func()) error {
	if mk == nil {
		return fmt.Errorf("%s: nil thread body", rt.Cfg.Name)
	}
	if rt.ran {
		return fmt.Errorf("%s: System.Run called twice; create a new System per run", rt.Cfg.Name)
	}
	rt.ran = true
	rt.totalThreads = rt.Cfg.Hosts * rt.Cfg.ThreadsPerHost
	gid := 0
	for _, h := range rt.hosts {
		for j := 0; j < rt.Cfg.ThreadsPerHost; j++ {
			t := &Thread{h: h, ID: gid, LID: j}
			t.self = t
			rt.threads = append(rt.threads, t)
			gid++
			h := h
			body := mk(t)
			h.sh.Spawn(fmt.Sprintf("app-%d.%d", h.id, j), func(p *sim.Proc) {
				t.p = p
				h.EP.SetBusy(+1)
				t.Stats.Start = p.Now()
				body()
				t.Stats.End = p.Now()
				h.EP.SetBusy(-1)
			})
		}
	}
	return rt.Eng.Run()
}
