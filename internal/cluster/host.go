package cluster

import (
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// HostHandler is the per-host half of the Protocol interface: the policy
// callbacks the runtime invokes for the events it cannot interpret
// itself. See docs/PROTOCOL.md ("The Protocol interface") for the full
// contract, including determinism rules and trace obligations.
type HostHandler interface {
	// HandleFault services an application-thread access fault. ctx is the
	// value installed with Thread.SetSelf (the protocol's thread wrapper).
	// It runs in the faulting thread's simulated context and may Sleep,
	// Send and block.
	HandleFault(ctx any, f vm.Fault) error

	// HandleMessage dispatches one delivered protocol message in the
	// host's DSM server thread.
	HandleMessage(p *sim.Proc, fm *fastmsg.Message)

	// DescribeMsg extracts the trace fields from a protocol payload: the
	// registered op code (trace.RegisterOps base + message type), the
	// sharing-unit id, the address, and the home host (-1 when the message
	// carries none). Called only when tracing is enabled.
	DescribeMsg(payload any) (op uint16, mp int, addr uint64, home int)
}

// Host is one process of the simulated cluster: an address space, an FM
// endpoint whose service thread runs the protocol handlers, and the
// protocol's policy hooks.
type Host struct {
	rt      *Runtime
	id      int
	sh      *sim.Shard // the host's calendar shard (= its endpoint's)
	handler HostHandler

	AS *vm.AddressSpace
	EP *fastmsg.Endpoint

	// inflight is the host's registry of blocking requests that must
	// survive faults: each entry was registered by Thread.BlockRetry and
	// stays until its thread wakes. Kept as an order-preserving slice —
	// map iteration would make crash recovery's re-send order depend on
	// Go's map hashing and break run determinism.
	inflight []*retryEntry
}

// retryEntry is one registered in-flight blocking request.
type retryEntry struct {
	fw     *Wait
	gen    uint64            // Wait generation at registration; staleness guard
	resend func(p *sim.Proc) // re-issues the request (p may be nil: engine context)
}

// resendInflight re-issues every still-pending blocking request, in
// registration order. Crash recovery calls it after protocol recovery.
func (h *Host) resendInflight(p *sim.Proc) {
	live := append([]*retryEntry(nil), h.inflight...)
	for _, ent := range live {
		if ent.fw.gen != ent.gen || ent.fw.Ev.IsSet() {
			continue
		}
		ent.resend(p)
	}
}

// ID returns the host id.
func (h *Host) ID() int { return h.id }

// Runtime returns the owning cluster runtime.
func (h *Host) Runtime() *Runtime { return h.rt }

// Shard returns the calendar shard that owns this host's processes and
// timers. Protocol code that schedules engine callbacks on behalf of a
// host must use it instead of the engine-level (shard 0) methods.
func (h *Host) Shard() *sim.Shard { return h.sh }

// Costs returns the cluster's host-local cost table.
func (h *Host) Costs() Costs { return h.rt.Cfg.Costs }

// onFault is the installed vm fault handler: record the fault, then
// delegate to the protocol. It runs in the faulting application thread's
// context — the analogue of the SEH handler the wrapper routine installs
// around each application thread (Section 3.5.1 of the paper).
func (h *Host) onFault(ctx any, f vm.Fault) error {
	if tr := h.rt.Trace; tr.Enabled() {
		tr.RecordFault(h.sh.Now(), h.id, f.Kind == vm.Write, f.Addr)
	}
	return h.handler.HandleFault(ctx, f)
}

// onMessage records the dispatch, then delegates to the protocol's
// message handler in the host's DSM server thread.
func (h *Host) onMessage(p *sim.Proc, fm *fastmsg.Message) {
	if tr := h.rt.Trace; tr.Enabled() {
		op, mp, _, home := h.handler.DescribeMsg(fm.Payload)
		tr.RecordMsg(p.Now(), trace.Handle, h.id, fm.From, home, op, mp, 0)
	}
	h.handler.HandleMessage(p, fm)
}

// Send ships a header-sized protocol message to host `to` in a pooled
// envelope (the envelope is recycled after the destination handler
// returns; the payload object survives).
func (h *Host) Send(p *sim.Proc, to int, payload any) {
	h.SendSized(p, to, payload, h.rt.Cfg.Costs.HeaderSize)
}

// SendSized is Send with an explicit wire size, for protocols whose
// headers carry variable-length extras (lrc's encoded diffs).
func (h *Host) SendSized(p *sim.Proc, to int, payload any, size int) {
	if tr := h.rt.Trace; tr.Enabled() {
		op, mp, addr, home := h.handler.DescribeMsg(payload)
		tr.RecordMsg(h.sh.Now(), trace.Send, h.id, to, home, op, mp, addr)
	}
	fm := h.EP.AllocMessage()
	fm.Size = size
	fm.Payload = payload
	h.EP.Send(p, to, fm)
}

// SendData ships raw sharing-unit bytes (no header: FM delivers them
// directly into the destination's memory, the paper's zero-copy path).
// marker is the protocol's shared immutable data-message payload; bulk
// data is deliberately not traced — the preceding header send is.
func (h *Host) SendData(p *sim.Proc, to int, data []byte, marker any) {
	fm := h.EP.AllocMessage()
	fm.Size = len(data)
	fm.Data = data
	fm.Payload = marker
	h.EP.Send(p, to, fm)
}
