package cluster

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/sim"
	"millipage/internal/stats"
	"millipage/internal/vm"
)

// Wait is the per-transaction rendezvous between a requesting thread and
// its host's DSM server thread: the event the thread blocks on, plus the
// reply fields the handler fills in before setting it.
type Wait struct {
	Ev    *sim.Event
	Info  core.Info // translation info carried back by the reply
	VA    uint64    // allocation replies: the address handed out
	Owner bool      // allocation replies: requester owns the new unit
	Home  int       // allocation replies: the unit's home host

	// Txn is the transaction id the rendezvous is currently waiting for.
	// Under fault injection the protocol stamps it on outgoing requests so
	// late replies to an abandoned transaction can be recognized and
	// dropped; 0 means "no transaction" (clean path, untagged protocols).
	Txn uint64

	// gen counts WaitSlot resets. Retry timers capture it at registration
	// and stop firing once the slot has been recycled for a new
	// transaction.
	gen uint64
}

// NewWait returns a fresh rendezvous record. Protocols use it for
// transactions that outlive the issuing call (prefetches); synchronous
// paths reuse the thread's slot via WaitSlot.
func NewWait(eng *sim.Engine) *Wait { return &Wait{Ev: sim.NewEvent(eng)} }

// Thread is one application thread's substrate record: its simulated
// process, its rendezvous slot, and its time-breakdown statistics.
// Protocol packages embed *Thread in their own Thread types, which adds
// the protocol-specific API (Malloc, Barrier, ...) on top of the generic
// surface here.
type Thread struct {
	h    *Host
	self any // the protocol's thread wrapper; fault-handler context
	p    *sim.Proc

	// fw is the thread's reusable rendezvous for synchronous blocking
	// operations (faults, malloc, barriers, locks). A thread blocks on at
	// most one of these at a time, so a single record per thread suffices;
	// prefetch paths allocate fresh records because their rendezvous
	// outlives the issuing call.
	fw *Wait

	ID  int // global thread id
	LID int // local index on the host

	// txnSeq feeds NextTxn: the per-thread transaction counter protocols
	// use to tag retryable requests.
	txnSeq uint64

	Stats ThreadStats
}

// SetSelf installs the protocol's thread wrapper as the fault-handler
// context for this thread's memory accesses. Protocols call it from
// their Run factory, before the body starts.
func (t *Thread) SetSelf(self any) { t.self = self }

// Proc returns the thread's simulated process (valid once running).
func (t *Thread) Proc() *sim.Proc { return t.p }

// HostRef returns the substrate host the thread runs on.
func (t *Thread) HostRef() *Host { return t.h }

// Host returns the hosting process's id.
func (t *Thread) Host() int { return t.h.id }

// ThreadID returns the global thread id.
func (t *Thread) ThreadID() int { return t.ID }

// NumHosts returns the cluster size.
func (t *Thread) NumHosts() int { return t.h.rt.NumHosts() }

// NumThreads returns the total application thread count.
func (t *Thread) NumThreads() int { return t.h.rt.totalThreads }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.p.Now() }

// Compute charges d of pure computation to the thread — the modeled cost
// of the application code between shared-memory operations.
func (t *Thread) Compute(d sim.Duration) {
	t.Stats.ComputeTime += d
	t.p.Sleep(d)
}

// WaitSlot returns the thread's rendezvous, reset for a new transaction.
func (t *Thread) WaitSlot() *Wait {
	if t.fw == nil {
		t.fw = NewWait(t.h.rt.Eng)
		return t.fw
	}
	fw := t.fw
	fw.Ev.Reset()
	fw.Info = core.Info{}
	fw.VA = 0
	fw.Owner = false
	fw.Home = 0
	fw.Txn = 0
	fw.gen++
	return fw
}

// NextTxn returns the thread's next transaction id (monotone from 1).
// Protocols stamp it on retryable requests so managers can deduplicate.
func (t *Thread) NextTxn() uint64 {
	t.txnSeq++
	return t.txnSeq
}

// Block parks the thread on fw's event, releasing the host's busy
// reference so the endpoint poller takes over while it waits.
func (t *Thread) Block(fw *Wait) { t.BlockOn(fw.Ev) }

// BlockOn is Block for a bare event (lrc's flush-completion latch).
func (t *Thread) BlockOn(ev *sim.Event) {
	t.h.EP.SetBusy(-1)
	ev.Wait(t.p)
	t.h.EP.SetBusy(+1)
}

// retryMax caps the exponential backoff of BlockRetry's re-send timer.
const retryMax = 200 * sim.Millisecond

// BlockRetry is Block for requests that must survive faults: while the
// thread is parked, a timer re-issues the request via resend with
// exponential backoff (base, 2·base, ... capped at retryMax), and the
// request is registered in the host's in-flight table so crash recovery
// re-sends it immediately after restart. resend may be invoked from
// engine context (p == nil) and must not block; receivers deduplicate by
// the transaction id stamped in fw.Txn. The timer and the registration
// both die when fw's event is set or the slot is recycled.
func (t *Thread) BlockRetry(fw *Wait, base sim.Duration, resend func(p *sim.Proc)) {
	h := t.h
	ent := &retryEntry{fw: fw, gen: fw.gen, resend: resend}
	h.inflight = append(h.inflight, ent)

	sh := h.sh
	delay := base
	var fire func()
	fire = func() {
		if fw.gen != ent.gen || fw.Ev.IsSet() {
			return
		}
		resend(nil)
		if delay < retryMax {
			delay *= 2
			if delay > retryMax {
				delay = retryMax
			}
		}
		sh.After(delay, fire)
	}
	sh.After(delay, fire)

	t.Block(fw)

	for i, e := range h.inflight {
		if e == ent {
			h.inflight = append(h.inflight[:i], h.inflight[i+1:]...)
			break
		}
	}
}

// ResetStats zeroes the thread's accumulated statistics and restarts its
// clock. Benchmarks call it when the timed section begins so setup
// (allocation, data distribution) is excluded from the breakdown.
func (t *Thread) ResetStats() {
	t.Stats = ThreadStats{Start: t.p.Now()}
}

// Read copies len(buf) bytes of shared memory at va into buf, faulting
// and fetching sharing units as the protocol dictates.
func (t *Thread) Read(va uint64, buf []byte) {
	if err := t.h.AS.Access(t.self, va, buf, vm.Read); err != nil {
		panic(fmt.Sprintf("%s: thread %d: read %#x: %v", t.h.rt.Cfg.Name, t.ID, va, err))
	}
}

// Write stores data into shared memory at va.
func (t *Thread) Write(va uint64, data []byte) {
	if err := t.h.AS.Access(t.self, va, data, vm.Write); err != nil {
		panic(fmt.Sprintf("%s: thread %d: write %#x: %v", t.h.rt.Cfg.Name, t.ID, va, err))
	}
}

// ReadU32 reads a shared little-endian uint32.
func (t *Thread) ReadU32(va uint64) uint32 {
	v, err := t.h.AS.ReadU32(t.self, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU32 writes a shared little-endian uint32.
func (t *Thread) WriteU32(va uint64, v uint32) {
	if err := t.h.AS.WriteU32(t.self, va, v); err != nil {
		panic(err)
	}
}

// ReadU64 reads a shared little-endian uint64.
func (t *Thread) ReadU64(va uint64) uint64 {
	v, err := t.h.AS.ReadU64(t.self, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU64 writes a shared little-endian uint64.
func (t *Thread) WriteU64(va uint64, v uint64) {
	if err := t.h.AS.WriteU64(t.self, va, v); err != nil {
		panic(err)
	}
}

// ReadF64 reads a shared float64.
func (t *Thread) ReadF64(va uint64) float64 {
	v, err := t.h.AS.ReadF64(t.self, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteF64 writes a shared float64.
func (t *Thread) WriteF64(va uint64, v float64) {
	if err := t.h.AS.WriteF64(t.self, va, v); err != nil {
		panic(err)
	}
}

// ThreadStats is the per-thread execution-time breakdown reported in
// Figure 6 (right): computation, prefetch, read faults, write faults and
// synchronization.
type ThreadStats struct {
	Start, End sim.Time

	ComputeTime    sim.Duration
	ReadFaultTime  sim.Duration
	WriteFaultTime sim.Duration
	PrefetchTime   sim.Duration // waits attributable to in-flight prefetches, plus issue cost
	SynchTime      sim.Duration // barriers and locks
	MallocTime     sim.Duration

	ReadFaults  uint64
	WriteFaults uint64
	Prefetches  uint64
	Barriers    uint64
	LockOps     uint64

	// Latency histograms (log-scale) for tail analysis: the paper's mean
	// service delays hide the NT timers' bimodal shape.
	ReadFaultHist  stats.Histogram
	WriteFaultHist stats.Histogram
}

// Total returns the thread's wall time.
func (st ThreadStats) Total() sim.Duration { return st.End.Sub(st.Start) }

// Other returns time not attributed to any category (protocol sends,
// residual bookkeeping); Figure 6 folds this into computation.
func (st ThreadStats) Other() sim.Duration {
	return st.Total() - st.ComputeTime - st.ReadFaultTime - st.WriteFaultTime -
		st.PrefetchTime - st.SynchTime - st.MallocTime
}

// AppThread is the protocol-independent application API: the surface a
// portable DSM program (and the root millipage package) uses, implemented
// by every protocol's Thread type. The generic half comes from the
// embedded *Thread; Malloc, Barrier, Lock and Unlock are protocol policy.
type AppThread interface {
	Host() int
	NumHosts() int
	NumThreads() int
	ThreadID() int
	Now() sim.Time
	Compute(d sim.Duration)
	ResetStats()

	Malloc(size int) uint64
	Read(va uint64, buf []byte)
	Write(va uint64, data []byte)
	ReadU32(va uint64) uint32
	WriteU32(va uint64, v uint32)
	ReadU64(va uint64) uint64
	WriteU64(va uint64, v uint64)
	ReadF64(va uint64) float64
	WriteF64(va uint64, v float64)

	Barrier()
	Lock(id int)
	Unlock(id int)
}
