package cluster

import "testing"

func TestFIFOOrderAndDrainReset(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 {
		t.Fatalf("empty Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v; want %d, true", i, v, ok, i)
		}
	}
	// Fully drained: the backing array must reset so the next cycle
	// reuses it instead of growing.
	if q.head != 0 || len(q.items) != 0 {
		t.Fatalf("drained queue not reset: head=%d len=%d", q.head, len(q.items))
	}
	// Interleaved push/pop keeps FIFO order across the head index.
	q.Push(10)
	q.Push(11)
	if v, _ := q.Pop(); v != 10 {
		t.Fatalf("interleaved Pop = %d, want 10", v)
	}
	q.Push(12)
	for want := 11; want <= 12; want++ {
		if v, ok := q.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d, %v; want %d", v, ok, want)
		}
	}
}

func TestFIFOReleasesReferences(t *testing.T) {
	var q FIFO[*int]
	x := new(int)
	q.Push(x)
	q.Push(new(int))
	q.Pop()
	// The popped slot must be zeroed so the queue does not pin the
	// element for the garbage collector.
	if q.items[0] != nil {
		t.Fatal("popped slot still references the element")
	}
}

func TestBarrierServiceEpisodes(t *testing.T) {
	var b BarrierService[int]
	for ep := 0; ep < 3; ep++ {
		for i := 0; i < 3; i++ {
			arrivals, done := b.Arrive(100*ep+i, 4)
			if done || arrivals != nil {
				t.Fatalf("episode %d: barrier completed after %d arrivals", ep, i+1)
			}
		}
		arrivals, done := b.Arrive(100*ep+3, 4)
		if !done || len(arrivals) != 4 {
			t.Fatalf("episode %d: done=%v arrivals=%d, want true, 4", ep, done, len(arrivals))
		}
		for i, a := range arrivals {
			if a != 100*ep+i {
				t.Fatalf("episode %d: arrival %d = %d (order lost)", ep, i, a)
			}
		}
		if b.Gen != ep+1 || b.Episodes != uint64(ep+1) {
			t.Fatalf("episode %d: Gen=%d Episodes=%d", ep, b.Gen, b.Episodes)
		}
	}
}

func TestLockServiceFIFOGrants(t *testing.T) {
	l := NewLockService[string]()
	if !l.Acquire(7, "a") {
		t.Fatal("first Acquire not granted immediately")
	}
	if l.Acquire(7, "b") || l.Acquire(7, "c") {
		t.Fatal("Acquire of a held lock granted immediately")
	}
	// Another lock id is independent.
	if !l.Acquire(8, "x") {
		t.Fatal("independent lock id not granted")
	}
	next, granted, wasHeld := l.Release(7)
	if !wasHeld || !granted || next != "b" {
		t.Fatalf("Release = %q, %v, %v; want b, true, true", next, granted, wasHeld)
	}
	next, granted, wasHeld = l.Release(7)
	if !wasHeld || !granted || next != "c" {
		t.Fatalf("Release = %q, %v, %v; want c, true, true", next, granted, wasHeld)
	}
	if _, granted, wasHeld = l.Release(7); granted || !wasHeld {
		t.Fatalf("final Release granted=%v wasHeld=%v; want false, true", granted, wasHeld)
	}
	if l.Acquisitions != 4 {
		t.Fatalf("Acquisitions = %d, want 4", l.Acquisitions)
	}
	// Releasing a free lock is the caller's protocol error, reported via
	// wasHeld, not a panic here.
	if _, granted, wasHeld := l.Release(7); granted || wasHeld {
		t.Fatalf("Release of free lock = granted=%v wasHeld=%v", granted, wasHeld)
	}
	if _, _, wasHeld := l.Release(99); wasHeld {
		t.Fatal("Release of never-acquired lock reported wasHeld")
	}
}
