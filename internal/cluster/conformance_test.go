// Conformance tests: the DESIGN.md §8 sharing invariants, run
// generically against every protocol through the cluster substrate and
// the protocol-independent AppThread surface. The checkers and workload
// bodies live in internal/check so the model checker (internal/mcheck)
// asserts the same properties after every explored schedule; these
// tests pin them on the default schedule. The SW/MR and
// sequential-consistency properties apply to the two SC protocols
// (millipage's dsm and ivy); lrc is lazy release consistency, which
// deliberately allows concurrent writers between synchronization points,
// so it joins only the data-race-free agreement test — the guarantee LRC
// actually makes.
package cluster_test

import (
	"fmt"
	"testing"

	"millipage/internal/check"
	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
)

// Every protocol thread implements the portable application surface.
var (
	_ cluster.AppThread = (*dsm.Thread)(nil)
	_ cluster.AppThread = (*ivy.Thread)(nil)
	_ cluster.AppThread = (*lrc.Thread)(nil)
	_ cluster.AppThread = (*lrc.MWThread)(nil)
)

// protoRun builds a cluster for one protocol and runs a portable body on
// it, returning the substrate runtime for introspection.
type protoRun struct {
	name string
	sc   bool // sequentially consistent for racy (non-DRF) programs
	make func(hosts int, seed int64) (*cluster.Runtime, func(body func(t cluster.AppThread)) error, error)
}

func protocols() []protoRun {
	return []protoRun{
		{"millipage", true, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *dsm.Thread) { body(t) })
			}, nil
		}},
		{"ivy", true, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 16, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *ivy.Thread) { body(t) })
			}, nil
		}},
		{"lrc", false, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.New(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.Thread) { body(t) })
			}, nil
		}},
		{"lrc-mw", false, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.NewMW(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.MWThread) { body(t) })
			}, nil
		}},
	}
}

// TestSWMRInvariant drives a random-ish read/write workload over shared
// words and asserts SW/MR after every completed operation, for each SC
// protocol (DESIGN.md §8, first invariant).
func TestSWMRInvariant(t *testing.T) {
	const hosts = 4
	for _, pr := range protocols() {
		if !pr.sc {
			continue // LRC allows concurrent writers between synch points by design
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				rt, run, err := pr.make(hosts, seed)
				if err != nil {
					t.Fatal(err)
				}
				wl := &check.SWMRSweep{Words: 4, Iters: 24, Seed: uint64(seed), Prots: check.RuntimeProts{RT: rt}}
				if err := run(wl.Body); err != nil {
					t.Fatal(err)
				}
				if err := wl.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSCMessagePassing is the message-passing litmus: host 0 publishes
// data then raises a flag; a spinning host 1 that observes the flag must
// observe the data (forbidden outcome: flag=1, data=0). Spinning on
// shared memory is racy, so this runs on the SC protocols only.
func TestSCMessagePassing(t *testing.T) {
	for _, pr := range protocols() {
		if !pr.sc {
			continue
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				_, run, err := pr.make(2, seed)
				if err != nil {
					t.Fatal(err)
				}
				wl := &check.MessagePassing{}
				if err := run(wl.Body); err != nil {
					t.Fatal(err)
				}
				if err := wl.Err(); err != nil {
					t.Fatalf("%s: %v", pr.name, err)
				}
			})
		}
	}
}

// TestSCDekker is the store-buffering litmus: each host writes its own
// word then reads the other's. Under sequential consistency at least one
// host must observe the other's write; r0=r1=0 is the forbidden outcome.
func TestSCDekker(t *testing.T) {
	for _, pr := range protocols() {
		if !pr.sc {
			continue
		}
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				_, run, err := pr.make(2, seed)
				if err != nil {
					t.Fatal(err)
				}
				wl := &check.Dekker{}
				if err := run(wl.Body); err != nil {
					t.Fatal(err)
				}
				if err := wl.Err(); err != nil {
					t.Fatalf("%s: %v", pr.name, err)
				}
			})
		}
	}
}

// TestDRFAgreement runs one barrier- and lock-structured (data-race-free)
// program under all three protocols and asserts every protocol produces
// the exact oracle state. This is the portability contract of the
// Protocol interface: a DRF application may switch Config.Protocol
// freely without changing results.
func TestDRFAgreement(t *testing.T) {
	const hosts = 4
	for _, pr := range protocols() {
		t.Run(pr.name, func(t *testing.T) {
			_, run, err := pr.make(hosts, 1)
			if err != nil {
				t.Fatal(err)
			}
			wl := &check.DRF{Hosts: hosts, Rounds: 3, LockReps: 2}
			if err := run(wl.Body); err != nil {
				t.Fatal(err)
			}
			if err := wl.Err(); err != nil {
				t.Fatalf("%s: %v", pr.name, err)
			}
		})
	}
}

// TestConcurrentMergeAgreement runs the multiple-writer agreement
// program — every host writes its own word of ONE shared minipage each
// round — under every protocol. The program is DRF, so every protocol
// must converge on the oracle state; under lrc-mw it forces the
// twin/diff machinery to merge concurrent intervals from every host
// into the same minipage without losing a neighbor's bytes.
func TestConcurrentMergeAgreement(t *testing.T) {
	const hosts = 4
	for _, pr := range protocols() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				_, run, err := pr.make(hosts, seed)
				if err != nil {
					t.Fatal(err)
				}
				wl := &check.ConcurrentMerge{Hosts: hosts, Rounds: 3}
				if err := run(wl.Body); err != nil {
					t.Fatal(err)
				}
				if err := wl.Err(); err != nil {
					t.Fatalf("%s: %v", pr.name, err)
				}
			})
		}
	}
}
