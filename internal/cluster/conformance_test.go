// Conformance tests: the DESIGN.md §7 sharing invariants, run
// generically against every protocol through the cluster substrate and
// the protocol-independent AppThread surface. The SW/MR and
// sequential-consistency properties apply to the two SC protocols
// (millipage's dsm and ivy); lrc is lazy release consistency, which
// deliberately allows concurrent writers between synchronization points,
// so it joins only the data-race-free agreement test — the guarantee LRC
// actually makes.
package cluster_test

import (
	"fmt"
	"testing"

	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/ivy"
	"millipage/internal/lrc"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// Every protocol thread implements the portable application surface.
var (
	_ cluster.AppThread = (*dsm.Thread)(nil)
	_ cluster.AppThread = (*ivy.Thread)(nil)
	_ cluster.AppThread = (*lrc.Thread)(nil)
)

// protoRun builds a cluster for one protocol and runs a portable body on
// it, returning the substrate runtime for introspection.
type protoRun struct {
	name string
	sc   bool // sequentially consistent for racy (non-DRF) programs
	make func(hosts int, seed int64) (*cluster.Runtime, func(body func(t cluster.AppThread)) error, error)
}

func protocols() []protoRun {
	return []protoRun{
		{"millipage", true, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := dsm.New(dsm.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *dsm.Thread) { body(t) })
			}, nil
		}},
		{"ivy", true, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := ivy.New(ivy.Options{Hosts: hosts, SharedSize: 1 << 16, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *ivy.Thread) { body(t) })
			}, nil
		}},
		{"lrc", false, func(hosts int, seed int64) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
			sys, err := lrc.New(lrc.Options{Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return sys.Runtime(), func(body func(cluster.AppThread)) error {
				return sys.Run(func(t *lrc.Thread) { body(t) })
			}, nil
		}},
	}
}

// checkSWMR verifies the Single-Writer/Multiple-Readers invariant for
// the tracked addresses across every host's page table: at most one
// writable mapping, and a writable mapping excludes readable copies
// elsewhere. The simulation runs one process at a time, so sampling
// global VM state from inside a thread body observes a consistent
// instant of virtual time.
func checkSWMR(rt *cluster.Runtime, vas []uint64) error {
	for _, va := range vas {
		writers, readers := 0, 0
		for i := 0; i < rt.NumHosts(); i++ {
			prot, err := rt.Host(i).AS.ProtOf(va)
			if err != nil {
				continue // unmapped on this host
			}
			switch prot {
			case vm.ReadWrite:
				writers++
			case vm.ReadOnly:
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("addr %#x: %d writable copies", va, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("addr %#x: writable copy coexists with %d readers", va, readers)
		}
	}
	return nil
}

// TestSWMRInvariant drives a random-ish read/write workload over shared
// words and asserts SW/MR after every completed operation, for each SC
// protocol (DESIGN.md §7, first invariant).
func TestSWMRInvariant(t *testing.T) {
	const hosts, words, iters = 4, 4, 24
	for _, pr := range protocols() {
		if !pr.sc {
			continue // LRC allows concurrent writers between synch points by design
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				rt, run, err := pr.make(hosts, seed)
				if err != nil {
					t.Fatal(err)
				}
				vas := make([]uint64, words)
				var failure error
				err = run(func(w cluster.AppThread) {
					if w.Host() == 0 {
						for i := range vas {
							vas[i] = w.Malloc(64)
							w.WriteU32(vas[i], 0)
						}
					}
					w.Barrier()
					// Thread-local LCG so each host's access pattern
					// differs but stays deterministic per seed.
					r := uint64(seed)*2654435761 + uint64(w.Host()+1)*40503
					for it := 0; it < iters; it++ {
						r = r*6364136223846793005 + 1442695040888963407
						va := vas[(r>>33)%words]
						if (r>>62)&1 == 0 {
							_ = w.ReadU32(va)
						} else {
							w.WriteU32(va, uint32(w.Host()*1000+it))
						}
						if e := checkSWMR(rt, vas); e != nil && failure == nil {
							failure = fmt.Errorf("host %d op %d: %w", w.Host(), it, e)
						}
						w.Compute(50 * sim.Microsecond)
					}
					w.Barrier()
				})
				if err != nil {
					t.Fatal(err)
				}
				if failure != nil {
					t.Fatal(failure)
				}
			})
		}
	}
}

// TestSCMessagePassing is the message-passing litmus: host 0 publishes
// data then raises a flag; a spinning host 1 that observes the flag must
// observe the data (forbidden outcome: flag=1, data=0). Spinning on
// shared memory is racy, so this runs on the SC protocols only.
func TestSCMessagePassing(t *testing.T) {
	for _, pr := range protocols() {
		if !pr.sc {
			continue
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				_, run, err := pr.make(2, seed)
				if err != nil {
					t.Fatal(err)
				}
				var data, flag uint64
				got := uint32(0)
				err = run(func(w cluster.AppThread) {
					if w.Host() == 0 {
						data = w.Malloc(64)
						flag = w.Malloc(64)
						w.WriteU32(data, 0)
						w.WriteU32(flag, 0)
					}
					w.Barrier()
					if w.Host() == 0 {
						w.Compute(200 * sim.Microsecond)
						w.WriteU32(data, 42)
						w.WriteU32(flag, 1)
					} else {
						spins := 0
						for w.ReadU32(flag) == 0 {
							if spins++; spins > 100000 {
								panic("flag never observed")
							}
							w.Compute(20 * sim.Microsecond)
						}
						got = w.ReadU32(data)
					}
					w.Barrier()
				})
				if err != nil {
					t.Fatal(err)
				}
				if got != 42 {
					t.Fatalf("%s: observed flag but read data=%d, want 42", pr.name, got)
				}
			})
		}
	}
}

// TestSCDekker is the store-buffering litmus: each host writes its own
// word then reads the other's. Under sequential consistency at least one
// host must observe the other's write; r0=r1=0 is the forbidden outcome.
func TestSCDekker(t *testing.T) {
	for _, pr := range protocols() {
		if !pr.sc {
			continue
		}
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				_, run, err := pr.make(2, seed)
				if err != nil {
					t.Fatal(err)
				}
				var x, y uint64
				var r [2]uint32
				err = run(func(w cluster.AppThread) {
					if w.Host() == 0 {
						x = w.Malloc(64)
						y = w.Malloc(64)
						w.WriteU32(x, 0)
						w.WriteU32(y, 0)
					}
					w.Barrier()
					if w.Host() == 0 {
						w.WriteU32(x, 1)
						r[0] = w.ReadU32(y)
					} else {
						w.WriteU32(y, 1)
						r[1] = w.ReadU32(x)
					}
					w.Barrier()
				})
				if err != nil {
					t.Fatal(err)
				}
				if r[0] == 0 && r[1] == 0 {
					t.Fatalf("%s: forbidden SC outcome r0=r1=0", pr.name)
				}
			})
		}
	}
}

// TestDRFAgreement runs one barrier- and lock-structured (data-race-free)
// program under all three protocols and asserts every protocol produces
// the exact oracle state. This is the portability contract of the
// Protocol interface: a DRF application may switch Config.Protocol
// freely without changing results.
func TestDRFAgreement(t *testing.T) {
	const hosts, rounds, lockReps = 4, 3, 2
	for _, pr := range protocols() {
		t.Run(pr.name, func(t *testing.T) {
			_, run, err := pr.make(hosts, 1)
			if err != nil {
				t.Fatal(err)
			}
			var cells [hosts]uint64
			var acc uint64
			var bad error
			err = run(func(w cluster.AppThread) {
				h := w.Host()
				if h == 0 {
					for i := range cells {
						cells[i] = w.Malloc(64)
						w.WriteU32(cells[i], 0)
					}
					acc = w.Malloc(64)
					w.WriteU32(acc, 0)
				}
				w.Barrier()
				// Phase 1: ownership hand-off through barriers. In round
				// r, host h writes cell (h+r)%hosts; everyone then reads
				// every cell and checks the value written that round.
				for r := 0; r < rounds; r++ {
					w.WriteU32(cells[(h+r)%hosts], uint32(100*r+(h+r)%hosts))
					w.Barrier()
					for c := 0; c < hosts; c++ {
						if got, want := w.ReadU32(cells[c]), uint32(100*r+c); got != want && bad == nil {
							bad = fmt.Errorf("round %d host %d: cell %d = %d, want %d", r, h, c, got, want)
						}
					}
					w.Barrier()
				}
				// Phase 2: a lock-guarded accumulator.
				for i := 0; i < lockReps; i++ {
					w.Lock(3)
					w.WriteU32(acc, w.ReadU32(acc)+uint32(h+1))
					w.Unlock(3)
					w.Compute(100 * sim.Microsecond)
				}
				w.Barrier()
				want := uint32(lockReps * hosts * (hosts + 1) / 2)
				if got := w.ReadU32(acc); got != want && bad == nil {
					bad = fmt.Errorf("host %d: accumulator = %d, want %d", h, got, want)
				}
				w.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if bad != nil {
				t.Fatalf("%s: %v", pr.name, bad)
			}
		})
	}
}
