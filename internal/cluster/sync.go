package cluster

// FIFO is a head-indexed queue. Pop advances a head index instead of
// re-slicing away the front: the q = q[1:] pattern sheds the array's
// front capacity, so a queue that cycles under load re-allocates on
// every append. The backing array is reset (and references released)
// once drained.
type FIFO[T any] struct {
	items []T
	head  int
}

// Len reports the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) - q.head }

// Push appends v.
func (q *FIFO[T]) Push(v T) { q.items = append(q.items, v) }

// Pop removes and returns the oldest item; ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v = q.items[q.head]
	q.items[q.head] = zero // drop the reference for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// BarrierService collects barrier arrivals at the coordinating host.
// T is the protocol's arrival record (typically its message type).
type BarrierService[T any] struct {
	arrivals []T

	Gen      int    // completed episodes, as carried in release messages
	Episodes uint64 // same count, as a stats counter
}

// Arrive records one arrival. When the total-th thread arrives, the
// episode completes: the generation advances and every arrival is
// returned for release (done = true). The returned slice aliases the
// service's backing array, which the next episode reuses — callers must
// consume it before recording another arrival (every protocol drains it
// synchronously inside the completing handler).
func (b *BarrierService[T]) Arrive(m T, total int) (arrivals []T, done bool) {
	b.arrivals = append(b.arrivals, m)
	if len(b.arrivals) < total {
		return nil, false
	}
	arrivals = b.arrivals
	b.arrivals = b.arrivals[:0]
	b.Gen++
	b.Episodes++
	return arrivals, true
}

// LockService is a FIFO lock table for the coordinating host. T is the
// protocol's queued waiter record.
type LockService[T any] struct {
	locks map[int]*lockState[T]

	Acquisitions uint64 // grants handed out (immediate and queued)
}

type lockState[T any] struct {
	held  bool
	queue FIFO[T]
}

// NewLockService returns an empty lock table.
func NewLockService[T any]() *LockService[T] {
	return &LockService[T]{locks: make(map[int]*lockState[T])}
}

// Acquire grants lock id immediately (true) or queues the waiter behind
// the current holder (false); grants are FIFO.
func (l *LockService[T]) Acquire(id int, m T) bool {
	ls := l.locks[id]
	if ls == nil {
		ls = &lockState[T]{}
		l.locks[id] = ls
	}
	if ls.held {
		ls.queue.Push(m)
		return false
	}
	ls.held = true
	l.Acquisitions++
	return true
}

// Release frees lock id or passes it to the next queued waiter (granted
// = true and next is that waiter's record). wasHeld is false for a
// release of a lock nobody holds — a protocol error the caller turns
// into its own panic or message.
func (l *LockService[T]) Release(id int) (next T, granted, wasHeld bool) {
	var zero T
	ls := l.locks[id]
	if ls == nil || !ls.held {
		return zero, false, false
	}
	n, ok := ls.queue.Pop()
	if !ok {
		ls.held = false
		return zero, false, true
	}
	l.Acquisitions++
	return n, true, true
}
