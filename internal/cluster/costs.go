package cluster

import "millipage/internal/sim"

// Costs is the table of local operation costs, calibrated to Table 1 of
// the paper (all on the 300 MHz Pentium II / NT 4.0 testbed). Message
// send/receive costs live in fastmsg.Params; these are the host-local
// costs charged on top. Every protocol shares the table: the point of
// the cross-protocol benchmarks is that the substrate costs are held
// equal while the coherence policy varies.
type Costs struct {
	AccessFault sim.Duration // taking the access violation and dispatching the handler
	GetProt     sim.Duration // querying a vpage protection
	SetProt     sim.Duration // VirtualProtect on a vpage run
	MPTLookup   sim.Duration // manager's minipage-table lookup (Translate)
	ThreadWake  sim.Duration // SetEvent + scheduler latency to resume the faulting thread
	BlockThread sim.Duration // suspending the faulting thread on its event
	FaultResume sim.Duration // SEH unwind and instruction retry after a serviced fault
	BarrierBase sim.Duration // local bookkeeping of one barrier episode
	MallocBase  sim.Duration // allocator bookkeeping at the manager

	// InstallPerByte is the per-byte cost of landing received minipage
	// contents (DMA completion handling, dirty-page bookkeeping).
	InstallPerByte sim.Duration

	HeaderSize int // bytes in a protocol header message
}

// DefaultCosts returns the Table-1 calibration.
func DefaultCosts() Costs {
	return Costs{
		AccessFault:    26 * sim.Microsecond,
		GetProt:        7 * sim.Microsecond,
		SetProt:        12 * sim.Microsecond,
		MPTLookup:      7 * sim.Microsecond,
		ThreadWake:     30 * sim.Microsecond,
		BlockThread:    10 * sim.Microsecond,
		FaultResume:    35 * sim.Microsecond,
		BarrierBase:    8 * sim.Microsecond,
		MallocBase:     5 * sim.Microsecond,
		InstallPerByte: 4 * sim.Nanosecond,
		HeaderSize:     32,
	}
}
