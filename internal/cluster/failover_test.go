// Failover conformance: the chaos battery's sharing invariants re-run
// with replicated directory management, under fault schedules that kill
// the hot shard's primary in the middle of the request burst. The view
// service must promote the synced backup and the cluster must finish
// with the oracles intact — exactly-once, no stall until the dead
// host's restart — and two runs of any schedule must be bit-identical.
package cluster_test

import (
	"testing"

	"millipage/internal/check"
	"millipage/internal/cluster"
	"millipage/internal/dsm"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
)

// failoverVictim is the hot shard's primary: every workload below leans
// on minipages homed at host 1, and every schedule kills host 1 a few
// virtual milliseconds in — mid-burst, well before any barrier drains.
const failoverVictim = 1

// failoverSchedules augments each of the four chaos presets with a
// crash of the hot shard's primary. The victim stays down long enough
// (30ms) that any protocol stalling until its restart trips the
// conformance timing rather than quietly riding it out.
func failoverSchedules() []schedule {
	out := make([]schedule, 0, 4)
	for _, sc := range schedules() {
		base := sc
		out = append(out, schedule{base.name, func(hosts int, seed int64) *faultnet.Plan {
			pl := base.plan(hosts, seed)
			pl.Crashes = append(pl.Crashes, faultnet.Crash{
				Host:      failoverVictim,
				At:        sim.Time(2 * sim.Millisecond),
				RestartAt: sim.Time(30 * sim.Millisecond),
			})
			return pl
		}})
	}
	return out
}

// replicatedMillipage builds the one protocol under test here: millipage
// with home-based management and primary/backup shard replication.
func replicatedMillipage() chaosRun {
	return chaosRun{"millipage-repl", true, func(hosts int, seed int64, plan *faultnet.Plan) (*cluster.Runtime, func(func(cluster.AppThread)) error, error) {
		sys, err := dsm.New(dsm.Options{
			Hosts: hosts, SharedSize: 1 << 16, Views: 8, Seed: seed,
			Management: dsm.HomeBased, Replication: true, Faults: plan,
		})
		if err != nil {
			return nil, nil, err
		}
		return sys.Runtime(), func(body func(cluster.AppThread)) error {
			return sys.Run(func(t *dsm.Thread) { body(t) })
		}, nil
	}}
}

// TestFailoverDRFOracle: barrier hand-offs and a lock-guarded
// accumulator with the hot shard's primary killed mid-burst, under all
// four fault presets. The agreement oracle proves no increment was lost
// or doubled across the view change.
func TestFailoverDRFOracle(t *testing.T) {
	const hosts = 4
	pr := replicatedMillipage()
	for _, sc := range failoverSchedules() {
		t.Run(sc.name, func(t *testing.T) {
			wl := &check.DRF{Hosts: hosts, Rounds: 3, LockReps: 2}
			runChaos(t, pr, hosts, 1, sc.plan(hosts, 7), func(rt *cluster.Runtime, w cluster.AppThread) {
				wl.Body(w)
			})
			if err := wl.Err(); err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
		})
	}
}

// TestFailoverSWMR: the Single-Writer/Multiple-Readers sweep, asserted
// after every completed operation, with the hot shard's primary killed
// mid-burst under all four fault presets.
func TestFailoverSWMR(t *testing.T) {
	const hosts = 4
	pr := replicatedMillipage()
	for _, sc := range failoverSchedules() {
		t.Run(sc.name, func(t *testing.T) {
			wl := &check.SWMRSweep{Words: 4, Iters: 16, Seed: 11}
			runChaos(t, pr, hosts, 2, sc.plan(hosts, 11), func(rt *cluster.Runtime, w cluster.AppThread) {
				if wl.Prots == nil {
					wl.Prots = check.RuntimeProts{RT: rt}
				}
				wl.Body(w)
			})
			if err := wl.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFailoverConcurrentMerge: concurrent writers to disjoint bytes of
// one minipage across the kill window — the merge oracle catches any
// write lost when the shard's directory moved hosts.
func TestFailoverConcurrentMerge(t *testing.T) {
	const hosts = 4
	pr := replicatedMillipage()
	for _, sc := range failoverSchedules() {
		t.Run(sc.name, func(t *testing.T) {
			wl := &check.ConcurrentMerge{Hosts: hosts, Rounds: 3}
			runChaos(t, pr, hosts, 1, sc.plan(hosts, 9), func(rt *cluster.Runtime, w cluster.AppThread) {
				wl.Body(w)
			})
			if err := wl.Err(); err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
		})
	}
}

// TestFailoverDeterminism runs the lock-guarded accumulator twice under
// the drop-heaviest kill schedule and requires bit-identical virtual
// time and transport counters: view changes, promotions and re-drives
// all replay exactly.
func TestFailoverDeterminism(t *testing.T) {
	const hosts = 4
	pr := replicatedMillipage()
	sc := failoverSchedules()[0] // drop-heavy: the most retry-prone preset
	var prints [2]string
	for run := 0; run < 2; run++ {
		var acc uint64
		rt := runChaos(t, pr, hosts, 5, sc.plan(hosts, 17), func(rt *cluster.Runtime, w cluster.AppThread) {
			if w.Host() == 0 {
				acc = w.Malloc(64)
				w.WriteU32(acc, 0)
			}
			w.Barrier()
			for i := 0; i < 3; i++ {
				w.Lock(1)
				w.WriteU32(acc, w.ReadU32(acc)+uint32(w.Host()+1))
				w.Unlock(1)
				w.Compute(200 * sim.Microsecond)
			}
			w.Barrier()
		})
		prints[run] = chaosFingerprint(rt)
	}
	if prints[0] != prints[1] {
		t.Fatalf("two runs of the same kill schedule diverged:\n run0: %s\n run1: %s", prints[0], prints[1])
	}
}
