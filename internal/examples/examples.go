// Package examples holds the runnable bodies of the examples/ programs
// as headless, protocol-parameterized functions. The thin main packages
// under examples/ call into here with os.Stdout; the smoke test runs
// every example under every protocol against a buffer and pins golden
// virtual-time digests, so example rot breaks tier-1 instead of rotting
// silently.
//
// Every example verifies its own result and returns an error on a wrong
// answer, so a run that "completes" with bad data still fails loudly.
package examples

import (
	"fmt"
	"io"

	millipage "millipage"
	"millipage/internal/sim"
)

// An Example runs one example program under the given protocol
// ("millipage", "ivy" or "lrc"), writing its human-readable output to
// out and returning the run's report.
type Example func(protocol string, out io.Writer) (*millipage.Report, error)

// Quickstart is the four-host tour of the Section 3.4 API surface: a
// shared counter incremented under a cluster-wide lock and a message
// buffer written by host 0, with barriers separating the phases.
func Quickstart(protocol string, out io.Writer) (*millipage.Report, error) {
	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:     protocol,
		Hosts:        4,
		SharedMemory: 1 << 20,
		Views:        8, // up to 8 minipages may share a physical page
	})
	if err != nil {
		return nil, err
	}

	var counter, greeting millipage.Addr
	var verr error // worker bodies run serialized on the virtual clock

	report, err := cluster.Run(func(w *millipage.Worker) {
		// Host 0 allocates the shared data. Each allocation becomes its
		// own minipage: the two variables may share a physical page but
		// never falsely share.
		if w.Host() == 0 {
			counter = w.Malloc(8)
			greeting = w.Malloc(64)
			w.WriteU64(counter, 0)
			w.Write(greeting, []byte("hello from host 0       "))
		}
		w.Barrier()

		// Every host increments the counter under a cluster-wide lock.
		// Sequential consistency means no flushes, no release operations:
		// it reads like threads on one machine.
		for i := 0; i < 10; i++ {
			w.Lock(1)
			w.WriteU64(counter, w.ReadU64(counter)+1)
			w.Unlock(1)
		}
		w.Barrier()

		// Everyone reads both variables; the DSM moved them as needed.
		buf := make([]byte, 24)
		w.Read(greeting, buf)
		got := w.ReadU64(counter)
		fmt.Fprintf(out, "host %d: counter=%d greeting=%q\n", w.Host(), got, string(buf))
		if want := uint64(10 * w.NumHosts()); got != want && verr == nil {
			verr = fmt.Errorf("quickstart: host %d read counter=%d, want %d", w.Host(), got, want)
		}
		w.Barrier()
	})
	if err != nil {
		return nil, err
	}
	if verr != nil {
		return nil, verr
	}
	fmt.Fprintf(out, "\nrun summary:\n%s\n", report)
	return report, nil
}

// FalseShare is the experiment the paper opens with: two hosts each
// write their own variable, but the variables live on the same physical
// page. It runs the workload twice — MultiView layout, then the
// traditional page-granularity layout — and prints the fault/message
// comparison. Under "ivy" the layout switch is moot (the protocol is
// page-grain either way) and under "lrc" twins absorb the false sharing;
// the comparison still runs and the returned report is the first
// (MultiView-layout) run's.
func FalseShare(protocol string, out io.Writer) (*millipage.Report, error) {
	run := func(pageGrain bool) (*millipage.Report, error) {
		cluster, err := millipage.NewCluster(millipage.Config{
			Protocol:        protocol,
			Hosts:           2,
			SharedMemory:    1 << 16,
			Views:           4,
			PageGranularity: pageGrain,
		})
		if err != nil {
			return nil, err
		}
		var vars [2]millipage.Addr
		return cluster.Run(func(w *millipage.Worker) {
			if w.Host() == 0 {
				vars[0] = w.Malloc(64) // same physical page,
				vars[1] = w.Malloc(64) // different minipages (or not...)
			}
			w.Barrier()
			mine := vars[w.Host()]
			for i := 0; i < 200; i++ {
				w.WriteU32(mine, uint32(i))
				w.Compute(200 * sim.Microsecond) // 200us of "work"
			}
			w.Barrier()
		})
	}

	multi, err := run(false)
	if err != nil {
		return nil, err
	}
	page, err := run(true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, "two hosts, 200 writes each to neighboring variables on one page")
	fmt.Fprintf(out, "%-22s %12s %12s %14s %12s\n", "layout", "write faults", "messages", "bytes moved", "elapsed")
	fmt.Fprintf(out, "%-22s %12d %12d %14d %12v\n", "MultiView minipages",
		multi.WriteFaults, multi.MessagesSent, multi.BytesSent, multi.Elapsed)
	fmt.Fprintf(out, "%-22s %12d %12d %14d %12v\n", "page granularity",
		page.WriteFaults, page.MessagesSent, page.BytesSent, page.Elapsed)
	fmt.Fprintf(out, "\nfalse-sharing fault ratio: %.0fx\n",
		float64(page.WriteFaults)/float64(max(multi.WriteFaults, 1)))
	return multi, nil
}

// Histogram is a parallel reduction in the style of the paper's IS
// benchmark: eight hosts histogram a large key stream into a shared
// 2 KB array split into per-host 256-byte regions — each region its own
// minipage — combined with a skewed all-to-all schedule so every region
// has exactly one writer per phase and no locks are needed. Host 0
// verifies the grand total. Prefetch overlaps the next region's fetch
// with the current sum (a Millipage hint; a no-op elsewhere).
func Histogram(protocol string, out io.Writer) (*millipage.Report, error) {
	const (
		hosts   = 8
		buckets = 512
		keys    = 1 << 20
	)
	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:     protocol,
		Hosts:        hosts,
		SharedMemory: 64 << 10,
		Views:        8,
	})
	if err != nil {
		return nil, err
	}

	per := buckets / hosts
	regionBytes := per * 4
	var regions [hosts]millipage.Addr
	var verr error

	report, err := cluster.Run(func(w *millipage.Worker) {
		h := w.Host()
		if h == 0 {
			for r := range regions {
				regions[r] = w.Malloc(regionBytes)
				w.Write(regions[r], make([]byte, regionBytes))
			}
		}
		w.Barrier()

		// Local histogram of this host's slice of the key stream.
		local := make([]uint32, buckets)
		n := keys / hosts
		for i := 0; i < n; i++ {
			k := (uint64(h*n+i)*0x9E3779B97F4A7C15 ^ 0xD1B54A32D192ED03) >> 11 % buckets
			local[k]++
		}
		w.Compute(millipage.Duration(n) * 45) // ~45ns per key on the testbed

		// Skewed all-to-all: in phase p host h owns region (h+p)%hosts.
		buf := make([]byte, regionBytes)
		for phase := 0; phase < hosts; phase++ {
			r := (h + phase) % hosts
			if phase+1 < hosts {
				w.Prefetch(regions[(h+phase+1)%hosts], regionBytes)
			}
			w.Read(regions[r], buf)
			for b := 0; b < per; b++ {
				v := uint32(buf[4*b]) | uint32(buf[4*b+1])<<8 | uint32(buf[4*b+2])<<16 | uint32(buf[4*b+3])<<24
				v += local[r*per+b]
				buf[4*b], buf[4*b+1], buf[4*b+2], buf[4*b+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			w.Write(regions[r], buf)
			w.Barrier()
		}

		// Host 0 verifies the grand total.
		if h == 0 {
			var total uint64
			for r := 0; r < hosts; r++ {
				w.Read(regions[r], buf)
				for b := 0; b < per; b++ {
					total += uint64(uint32(buf[4*b]) | uint32(buf[4*b+1])<<8 |
						uint32(buf[4*b+2])<<16 | uint32(buf[4*b+3])<<24)
				}
			}
			fmt.Fprintf(out, "histogram total = %d (want %d)\n", total, uint64(keys/hosts*hosts))
			if total != uint64(keys/hosts*hosts) {
				verr = fmt.Errorf("histogram: grand total %d, want %d", total, keys/hosts*hosts)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if verr != nil {
		return nil, verr
	}
	fmt.Fprintf(out, "\nelapsed %v, %d read faults, %d write faults, %d messages\n",
		report.Elapsed, report.ReadFaults, report.WriteFaults, report.MessagesSent)
	fmt.Fprintf(out, "views in use: %d (eight 256-byte regions per 4 KB page)\n", report.ViewsUsed)
	return report, nil
}

// LazyRelease demonstrates the Section-5 extension: four hosts write
// interleaved slots that chunking (ChunkLevel 8) has packed into shared
// minipages. Under "lrc" each host writes a local twin and run-length
// diffs merge at the barrier — false sharing inside the chunk costs
// nothing between synchronization points. The same data-race-free
// program runs under "millipage" and "ivy" for comparison, where the
// concurrent writers invalidate each other instead.
func LazyRelease(protocol string, out io.Writer) (*millipage.Report, error) {
	cluster, err := millipage.NewCluster(millipage.Config{
		Protocol:     protocol,
		Hosts:        4,
		SharedMemory: 1 << 20,
		Views:        16,
		ChunkLevel:   8, // eight 64-byte slots share each minipage
		Seed:         1,
	})
	if err != nil {
		return nil, err
	}

	const slots = 64
	vas := make([]millipage.Addr, slots)
	var verr error

	report, err := cluster.Run(func(w *millipage.Worker) {
		if w.Host() == 0 {
			for i := range vas {
				vas[i] = w.Malloc(64)
			}
		}
		w.Barrier()

		// Three barrier-separated rounds of interleaved writes: slot i
		// belongs to host i%4, so every chunk has four concurrent writers.
		for round := 0; round < 3; round++ {
			for i := w.Host(); i < slots; i += w.NumHosts() {
				w.WriteU32(vas[i], uint32(round*1000+i))
				w.Compute(200 * sim.Microsecond)
			}
			w.Barrier()
		}

		// Everyone observes the merged result.
		if w.Host() == 0 {
			ok := true
			for i := range vas {
				if got := w.ReadU32(vas[i]); got != uint32(2000+i) {
					fmt.Fprintf(out, "slot %d = %d, want %d\n", i, got, 2000+i)
					ok = false
				}
			}
			if ok {
				fmt.Fprintln(out, "all 64 slots merged correctly across 4 concurrent writers")
			} else {
				verr = fmt.Errorf("lazyrelease: merged slots do not match")
			}
		}
		w.Barrier()
	})
	if err != nil {
		return nil, err
	}
	if verr != nil {
		return nil, verr
	}
	fmt.Fprintf(out, "\nelapsed %v\n", report.Elapsed)
	fmt.Fprintf(out, "write faults: %d, barriers: %d\n", report.WriteFaults, report.Barriers)
	fmt.Fprintf(out, "net: %d messages, %d bytes\n", report.MessagesSent, report.BytesSent)
	return report, nil
}
