package examples

import (
	"bytes"
	"hash/fnv"
	"io"
	"testing"

	"millipage/internal/sim"
)

// golden pins one (example, protocol) run: the elapsed virtual time in
// nanoseconds and an FNV-1a/64 digest of the program's entire text
// output. Any drift in protocol timing, message counts or program
// results shows up here.
type golden struct {
	elapsedNS int64
	digest    uint64
}

var exampleSmoke = []struct {
	name   string
	run    Example
	golden map[string]golden
}{
	{name: "quickstart", run: Quickstart, golden: map[string]golden{
		"millipage": {elapsedNS: 18513564, digest: 0xb72a594aa3712b99},
		"ivy":       {elapsedNS: 22313692, digest: 0x060a2ff85e19c831},
		"lrc":       {elapsedNS: 10841730, digest: 0x432b81c63acd55c4},
		"lrc-mw":    {elapsedNS: 13677218, digest: 0x6188b8bf20720928},
	}},
	{name: "falseshare", run: FalseShare, golden: map[string]golden{
		"millipage": {elapsedNS: 42890570, digest: 0xf3da425141b65a59},
		"ivy":       {elapsedNS: 84931489, digest: 0x331e825ce5a430c1},
		"lrc":       {elapsedNS: 41732500, digest: 0xca1ffa20ac6af7eb},
		"lrc-mw":    {elapsedNS: 41732500, digest: 0x55b5471d9fe0602d},
	}},
	{name: "histogram", run: Histogram, golden: map[string]golden{
		"millipage": {elapsedNS: 17130674, digest: 0x1754937f5345594a},
		"ivy":       {elapsedNS: 34024661, digest: 0xe2b81781d492ca78},
		"lrc":       {elapsedNS: 9893526, digest: 0xca0952503de5b068},
		"lrc-mw":    {elapsedNS: 10961205, digest: 0xbbea382d74761067},
	}},
	{name: "lazyrelease", run: LazyRelease, golden: map[string]golden{
		"millipage": {elapsedNS: 27255393, digest: 0xab83f08930399638},
		"ivy":       {elapsedNS: 44564640, digest: 0x3ff4dc312ccc9c37},
		"lrc":       {elapsedNS: 21044130, digest: 0x677dc56404984491},
		"lrc-mw":    {elapsedNS: 23664798, digest: 0x918e57319c1c1a06},
	}},
}

// TestExamplesSmoke runs every examples/ program headless under all
// four protocols and pins golden virtual-time digests.
func TestExamplesSmoke(t *testing.T) {
	for _, ex := range exampleSmoke {
		for _, proto := range []string{"millipage", "ivy", "lrc", "lrc-mw"} {
			t.Run(ex.name+"/"+proto, func(t *testing.T) {
				var buf bytes.Buffer
				report, err := ex.run(proto, &buf)
				if err != nil {
					t.Fatalf("%s under %s: %v\noutput:\n%s", ex.name, proto, err, buf.String())
				}
				h := fnv.New64a()
				io.WriteString(h, buf.String())
				got := golden{elapsedNS: int64(report.Elapsed), digest: h.Sum64()}
				want := ex.golden[proto]
				if got != want {
					t.Errorf("%s under %s: got {elapsedNS: %d, digest: %#016x}, pinned {elapsedNS: %d, digest: %#016x} (elapsed %v)",
						ex.name, proto, got.elapsedNS, got.digest, want.elapsedNS, want.digest, sim.Duration(report.Elapsed))
				}
			})
		}
	}
}
