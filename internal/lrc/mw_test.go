package lrc

import (
	"testing"

	"millipage/internal/sim"
	"millipage/internal/vm"
)

func newMWSys(t *testing.T, hosts, chunk int) *MWSystem {
	t.Helper()
	s, err := NewMW(Options{Hosts: hosts, SharedSize: 1 << 18, Views: 8, ChunkLevel: chunk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMWSingleHostWriteRead(t *testing.T) {
	s := newMWSys(t, 1, 1)
	var got uint32
	err := s.Run(func(th *MWThread) {
		va := th.Malloc(64)
		th.WriteU32(va, 77)
		got = th.ReadU32(va)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("got %d", got)
	}
}

func TestMWDiffsMergeAtBarrier(t *testing.T) {
	// Two hosts write different words of the same minipage concurrently;
	// after the barrier both must observe both writes merged.
	s := newMWSys(t, 2, 1)
	var va uint64
	var got [2][2]uint32
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
		}
		th.Barrier()
		if th.Host() == 0 {
			th.WriteU32(va, 111)
		} else {
			th.WriteU32(va+128, 222)
		}
		th.Barrier()
		got[th.Host()][0] = th.ReadU32(va)
		got[th.Host()][1] = th.ReadU32(va + 128)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		if got[h][0] != 111 || got[h][1] != 222 {
			t.Fatalf("host %d sees %v, want [111 222]", h, got[h])
		}
	}
	if s.Stats.DiffsSent == 0 {
		t.Fatal("no diffs flushed")
	}
	if s.Stats.TwinsMade < 2 {
		t.Fatalf("TwinsMade = %d, want at least one per writer", s.Stats.TwinsMade)
	}
}

func TestMWConcurrentWritersDoNotPingPong(t *testing.T) {
	// Between barriers, writers to one minipage must not invalidate each
	// other: after each host's first write fault per interval, subsequent
	// writes are local, so the write-fault count stays at one per host
	// per interval no matter how many writes land.
	s := newMWSys(t, 2, 1)
	var va uint64
	const writes = 50
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			va = th.Malloc(512)
		}
		th.Barrier()
		base := va + uint64(th.Host())*256
		for i := 0; i < writes; i++ {
			th.WriteU32(base+uint64(i%32)*4, uint32(i))
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.WriteFault > 4 {
		t.Fatalf("WriteFault = %d for %d writes by 2 hosts; concurrent writers ping-pong", s.Stats.WriteFault, 2*writes)
	}
}

func TestMWNoticeOnlyInvalidation(t *testing.T) {
	// A write notice invalidates exactly the minipages it names: a third
	// host's copy of an untouched minipage survives the barrier mapped,
	// while its copy of the written one is invalidated and lazily merged.
	s := newMWSys(t, 3, 1)
	var vaA, vaB uint64
	var gotA, gotB uint32
	var protA, protB vm.Prot
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			vaA = th.Malloc(256)
			vaB = th.Malloc(256)
			th.WriteU32(vaA, 1)
			th.WriteU32(vaB, 2)
		}
		th.Barrier()
		if th.Host() == 2 {
			// Take copies of both minipages.
			_ = th.ReadU32(vaA)
			_ = th.ReadU32(vaB)
		}
		th.Barrier()
		if th.Host() == 1 {
			th.WriteU32(vaA, 11)
		}
		th.Barrier()
		if th.Host() == 2 {
			h := s.Host(2)
			mpA, _ := s.MPT().Lookup(vaA)
			mpB, _ := s.MPT().Lookup(vaB)
			protA, _ = h.Region.ProtOf(mpA.Info(s.Layout).Base)
			protB, _ = h.Region.ProtOf(mpB.Info(s.Layout).Base)
			gotA = th.ReadU32(vaA)
			gotB = th.ReadU32(vaB)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if protA != vm.NoAccess {
		t.Fatalf("noticed minipage A is %v at host 2 after the barrier, want NoAccess", protA)
	}
	if protB != vm.ReadOnly {
		t.Fatalf("untouched minipage B is %v at host 2 after the barrier, want ReadOnly (no invalidation)", protB)
	}
	if gotA != 11 || gotB != 2 {
		t.Fatalf("host 2 reads A=%d B=%d, want 11 2", gotA, gotB)
	}
	if s.Stats.DiffFetches == 0 {
		t.Fatal("merging the noticed minipage should go through a lazy diff fetch")
	}
}

func TestMWLazyDiffFetchNotFullFetch(t *testing.T) {
	// Re-validating an invalidated copy fetches the interval diff from
	// the writer, not the whole minipage from home.
	s := newMWSys(t, 2, 1)
	var va uint64
	var got uint32
	var fullBefore uint64
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
			th.WriteU32(va, 5)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va) // full fetch: first copy
		}
		th.Barrier()
		if th.Host() == 0 {
			th.WriteU32(va, 6)
		}
		th.Barrier()
		if th.Host() == 1 {
			// Mid-run, the aggregate Stats are not folded yet: read the
			// per-host share (host 1 is the only fetcher in this program).
			fullBefore = s.hosts[1].stats.Fetches
			got = th.ReadU32(va) // invalidated: lazy diff merge
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("got %d, want 6", got)
	}
	if s.Stats.DiffFetches == 0 {
		t.Fatal("no lazy diff fetch recorded")
	}
	if s.Stats.Fetches != fullBefore {
		t.Fatalf("re-validation did a full home fetch (%d -> %d), want diff-only", fullBefore, s.Stats.Fetches)
	}
}

func TestMWLockedAccumulator(t *testing.T) {
	// The lock-guarded accumulator: write notices piggyback on the lock
	// grant, so each holder observes the previous holder's writes.
	const hosts, reps = 3, 4
	s := newMWSys(t, hosts, 1)
	var va uint64
	var got [hosts]uint32
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 0)
		}
		th.Barrier()
		for i := 0; i < reps; i++ {
			th.Lock(7)
			th.WriteU32(va, th.ReadU32(va)+uint32(th.Host()+1))
			th.Unlock(7)
			th.Compute(50 * sim.Microsecond)
		}
		th.Barrier()
		got[th.Host()] = th.ReadU32(va)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(reps * hosts * (hosts + 1) / 2)
	for h := 0; h < hosts; h++ {
		if got[h] != want {
			t.Fatalf("host %d: accumulator = %d, want %d", h, got[h], want)
		}
	}
}

func TestMWIntervalGCFallsBackToHome(t *testing.T) {
	// A copy invalidated by a notice but left untouched across enough
	// barriers outlives the writer's interval record: the lazy fetch
	// reports the interval purged and the host refetches from home —
	// still observing the correct merged value.
	s := newMWSys(t, 3, 1)
	var va uint64
	var got uint32
	err := s.Run(func(th *MWThread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		if th.Host() == 2 {
			_ = th.ReadU32(va) // copy at host 2
		}
		th.Barrier()
		if th.Host() == 1 {
			th.WriteU32(va+128, 7) // interval at host 1; notice invalidates host 2
		}
		th.Barrier()
		th.Barrier() // two more epochs: host 1 garbage-collects the interval
		th.Barrier()
		if th.Host() == 2 {
			got = th.ReadU32(va + 128)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	if s.Stats.IntervalsGCed == 0 {
		t.Fatal("no interval records were garbage-collected")
	}
	if s.Stats.HomeFallbacks == 0 {
		t.Fatal("expected the purged interval to force a home fetch fallback")
	}
}

func TestMWDeterminism(t *testing.T) {
	run := func() (sim.Duration, MWStats) {
		s := newMWSys(t, 4, 1)
		var va uint64
		err := s.Run(func(th *MWThread) {
			if th.Host() == 0 {
				va = th.Malloc(1024)
			}
			th.Barrier()
			for r := 0; r < 3; r++ {
				th.WriteU32(va+uint64(th.Host())*256, uint32(r))
				th.Barrier()
				for h := 0; h < 4; h++ {
					_ = th.ReadU32(va + uint64(h)*256)
				}
				th.Barrier()
			}
			for i := 0; i < 2; i++ {
				th.Lock(1)
				th.WriteU32(va+64, th.ReadU32(va+64)+1)
				th.Unlock(1)
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Elapsed(), s.Stats
	}
	e1, st1 := run()
	e2, st2 := run()
	if e1 != e2 || st1 != st2 {
		t.Fatalf("nondeterministic run: %v %+v vs %v %+v", e1, st1, e2, st2)
	}
}
