package lrc

import (
	"testing"

	"millipage/internal/sim"
	"millipage/internal/vm"
)

func newSys(t *testing.T, hosts, chunk int) *System {
	t.Helper()
	s, err := New(Options{Hosts: hosts, SharedSize: 1 << 18, Views: 8, ChunkLevel: chunk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleHostWriteRead(t *testing.T) {
	s := newSys(t, 1, 1)
	var got uint32
	err := s.Run(func(th *Thread) {
		va := th.Malloc(64)
		th.WriteU32(va, 77)
		got = th.ReadU32(va)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("got %d", got)
	}
}

func TestDiffsMergeAtBarrier(t *testing.T) {
	// Two hosts write DIFFERENT words of the SAME minipage concurrently —
	// the false sharing LRC absorbs. After the barrier both see both
	// writes merged at the home.
	s := newSys(t, 2, 1)
	var va uint64
	var got [2][2]uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(256)
		}
		th.Barrier()
		if th.Host() == 0 {
			th.WriteU32(va, 111)
		} else {
			th.WriteU32(va+128, 222)
		}
		th.Barrier()
		got[th.Host()][0] = th.ReadU32(va)
		got[th.Host()][1] = th.ReadU32(va + 128)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		if got[h][0] != 111 || got[h][1] != 222 {
			t.Fatalf("host %d sees %v, want [111 222]", h, got[h])
		}
	}
	if s.Stats.DiffsSent == 0 {
		t.Fatal("no diffs flushed")
	}
}

func TestConcurrentWritersDoNotPingPong(t *testing.T) {
	// Between barriers, writers to one minipage must not invalidate each
	// other: after each host's first write fault per interval, subsequent
	// writes are local.
	s := newSys(t, 2, 1)
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(512)
		}
		th.Barrier()
		off := uint64(th.Host() * 128)
		for i := 0; i < 100; i++ {
			th.WriteU32(va+off+uint64(4*(i%16)), uint32(i))
			th.Compute(50 * sim.Microsecond)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// One write fault per host for the interval (plus host 1's fetch).
	if s.Stats.WriteFault > 4 {
		t.Fatalf("write faults = %d, want <= 4 (no ping-pong under LRC)", s.Stats.WriteFault)
	}
}

func TestInvalidateAfterBarrierRefetches(t *testing.T) {
	s := newSys(t, 2, 1)
	var va uint64
	var seen uint32
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va) // takes a cached copy
		}
		th.Barrier()
		if th.Host() == 0 {
			th.WriteU32(va, 2)
		}
		th.Barrier()
		if th.Host() == 1 {
			seen = th.ReadU32(va) // must refetch, not reuse the stale copy
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("host 1 read %d after barrier, want 2", seen)
	}
}

func TestHomeProtectionStaysWritable(t *testing.T) {
	s := newSys(t, 2, 1)
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 5)
		}
		th.Barrier()
		if th.Host() == 0 {
			if p, _ := th.host.Region.ProtOf(va); p != vm.ReadWrite {
				t.Errorf("home prot = %v, want ReadWrite", p)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkedLRCAgreesWithUnchunked(t *testing.T) {
	// A SOR-ish band workload: neighbors write adjacent 64-byte rows. The
	// final content must be the same with chunked minipages (intra-chunk
	// false sharing absorbed by diffs) as with per-row minipages.
	run := func(chunk int) []uint32 {
		s := newSys(t, 4, chunk)
		const rows = 32
		vas := make([]uint64, rows)
		out := make([]uint32, rows)
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				for r := range vas {
					vas[r] = th.Malloc(64)
				}
			}
			th.Barrier()
			for it := 0; it < 3; it++ {
				for r := th.Host(); r < rows; r += th.NumHosts() {
					th.WriteU32(vas[r], uint32(r*100+it))
				}
				th.Barrier()
			}
			if th.Host() == 0 {
				for r := range vas {
					out[r] = th.ReadU32(vas[r])
				}
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(1)
	chunked := run(4)
	for r := range plain {
		if plain[r] != chunked[r] {
			t.Fatalf("row %d: plain %d vs chunked %d", r, plain[r], chunked[r])
		}
		if plain[r] != uint32(r*100+2) {
			t.Fatalf("row %d = %d, want %d", r, plain[r], r*100+2)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		s := newSys(t, 4, 2)
		var va uint64
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				va = th.Malloc(256)
			}
			th.Barrier()
			for i := 0; i < 10; i++ {
				th.WriteU32(va+uint64(th.Host()*64), uint32(i))
				th.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Elapsed(), s.Stats.DiffBytes
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, d1, e2, d2)
	}
}
