// Multi-writer lazy release consistency ("lrc-mw").
//
// The single-writer realization in lrc.go already absorbs write-write
// false sharing inside a minipage — but it does so by flushing diffs
// eagerly and invalidating *every* non-home copy at every acquire, so a
// host that never touches a minipage still refetches it after each
// barrier. This file implements the TreadMarks-style refinement: per-host
// vector timestamps partition each host's execution into intervals; a
// release closes the interval by diffing the dirty minipages against
// their twins; and a write notice (creator, interval, minipage ids) is
// what propagates at synchronization, not the data. An acquire
// invalidates only the minipages named by a causally newer notice; the
// diffs themselves are fetched lazily from the writers on the next fault
// and merged in vector-time order, so two hosts writing disjoint bytes
// of one minipage never ping-pong and never invalidate third parties.
//
// Realization choices, sized for the simulated testbed:
//
//   - Home-assisted: every interval's diffs are also flushed to each
//     minipage's home and acked *before* the releaser's notice can
//     circulate. The home is therefore always current for every notice
//     any host can have seen, which gives garbage collection a fallback:
//     a fetcher whose lazy diff request names a purged interval refetches
//     the whole minipage from home instead.
//   - Notices flow through the host-0 coordinator, piggybacked on lock
//     grants and barrier releases. The coordinator stamps each logged
//     notice with a global sequence (a valid linear extension of
//     happens-before, since every release's notice reaches the
//     coordinator before any acquire it precedes is granted), and hands
//     an acquirer every logged notice newer than its vector clock — a
//     conservative superset of the happens-before requirement, which is
//     sound for the data-race-free programs LRC covers.
//   - Garbage collection: the coordinator clears its notice log at every
//     barrier (all vector clocks converge to the global max, so nothing
//     logged earlier can ever be granted again), and each host purges
//     interval diff records two barriers after their creation; purged
//     intervals trigger the home-fetch fallback above.
package lrc

import (
	"fmt"
	"sync"

	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/twindiff"
	"millipage/internal/vm"
)

// multi-writer message types
type mwtype int

const (
	mwFetchReq mwtype = iota
	mwFetchReply
	mwFetchData
	mwDiffFlush
	mwDiffAck
	mwDiffReq
	mwDiffReply
	mwBarrierArrive
	mwBarrierRelease
	mwAllocReq
	mwAllocReply
	mwLockReq
	mwLockGrant
	mwUnlock
)

var mwtypeNames = [...]string{
	"MW_FETCH_REQUEST", "MW_FETCH_REPLY", "MW_FETCH_DATA", "MW_DIFF_FLUSH",
	"MW_DIFF_ACK", "MW_DIFF_REQUEST", "MW_DIFF_REPLY", "MW_BARRIER_ARRIVE",
	"MW_BARRIER_RELEASE", "MW_ALLOC_REQUEST", "MW_ALLOC_REPLY",
	"MW_LOCK_REQUEST", "MW_LOCK_GRANT", "MW_UNLOCK",
}

var mwOpBase = trace.RegisterOps(mwtypeNames[:])

func (m mwtype) String() string {
	if int(m) >= 0 && int(m) < len(mwtypeNames) {
		return mwtypeNames[m]
	}
	return fmt.Sprintf("mwtype(%d)", int(m))
}

// mwNotice is a write notice as created at a release: one closed
// interval and the minipages it modified.
type mwNotice struct {
	Creator int
	Seq     uint64 // the creator's vector-clock component for this interval
	MPs     []int  // minipage ids modified in the interval, sorted
}

// mwCNotice is a write notice as logged by the coordinator, stamped with
// the global sequence number that linearizes happens-before.
type mwCNotice struct {
	mwNotice
	VTSum uint64
}

// mwDiffOut is one interval's diff for one minipage, as served by its
// creator to a lazy fetcher. Purged means the creator has garbage-
// collected the interval; the fetcher falls back to a full home fetch.
type mwDiffOut struct {
	Seq    uint64
	Enc    []byte
	Purged bool
}

// mwDataMarker is the shared payload of every bulk mwFetchData message.
var mwDataMarker = &mwmsg{Type: mwFetchData}

type mwmsg struct {
	Type mwtype
	From int
	Info core.Info

	Diff []byte // encoded run-length diff (mwDiffFlush)

	FW *cluster.Wait

	AllocSize int
	AllocVA   uint64
	Home      int
	LockID    int

	VC      []uint64    // sender's vector clock (mwLockReq, mwBarrierArrive)
	Notice  *mwNotice   // the releaser's closed interval (mwUnlock, mwBarrierArrive)
	Notices []mwCNotice // piggybacked write notices (mwLockGrant, mwBarrierRelease)
	MaxVC   []uint64    // converged clock (mwBarrierRelease)

	MP       int         // minipage id (mwDiffReq, mwDiffReply)
	Seqs     []uint64    // requested interval seqs (mwDiffReq)
	DiffsOut []mwDiffOut // served diffs (mwDiffReply)
}

// mwInterval is one closed interval's retained diffs, kept by the
// creator for lazy serving until garbage collection.
type mwInterval struct {
	diffs map[int][]byte // minipage id -> encoded diff; keyed lookups only

	// mps is the backing array of the interval's write-notice minipage
	// list. The coordinator's log (and every granted copy of the notice)
	// shares it, and the interval's two-barrier retention strictly
	// outlives all of them, so recycling it with the interval is safe.
	mps []int
}

// mwFlush is one eager home flush staged by a release.
type mwFlush struct {
	home int
	info core.Info
	enc  []byte
}

// mwFetched is one lazily fetched interval diff awaiting its
// vector-time-ordered merge.
type mwFetched struct {
	vtsum uint64
	enc   []byte
}

// pendEntry records one write notice a host has applied to its page
// tables (the minipage is invalidated) but whose diff it has not yet
// fetched.
type pendEntry struct {
	vtsum   uint64
	creator int
	seq     uint64
}

// MWStats aggregates multi-writer protocol activity across the run.
type MWStats struct {
	Fetches       uint64 // full minipage fetches from homes
	DiffFetches   uint64 // lazy diff requests to writers
	DiffsFetched  uint64 // interval diffs served by those requests
	HomeFallbacks uint64 // lazy fetches that hit a purged interval
	DiffsSent     uint64 // eager diff flushes to homes
	DiffBytes     uint64
	TwinsMade     uint64
	Barriers      uint64
	WriteFault    uint64
	ReadFault     uint64
	Invalidations uint64 // minipages invalidated by write notices
	Notices       uint64 // write notices logged at the coordinator
	IntervalsGCed uint64 // interval records purged at barriers
}

// MWSystem is a multi-writer LRC cluster. Host 0 coordinates barriers,
// locks and the write-notice log and owns the minipage table; every
// minipage's home is its allocating host.
type MWSystem struct {
	Opt    Options
	Eng    *sim.Engine
	Net    *fastmsg.Network
	Layout core.Layout

	rt *cluster.Runtime

	mpt   *core.MPT
	homes []int // minipage id -> home host

	// homesMu is non-nil only under the parallel engine: homes grows on
	// host 0's shard (the allocation authority) while every host's fault,
	// release and acquire paths index it, and the append's reallocation
	// needs a fence even though the protocol's messages already order each
	// entry's write before any remote read of it.
	homesMu *sync.RWMutex

	hosts   []*MWHost
	threads []*MWThread

	// Coordinator state (host 0 only).
	log     []mwCNotice // append-only between barriers, cleared at each
	vtctr   uint64      // global notice stamp; monotone across clears
	barrier cluster.BarrierService[*mwmsg]
	locks   *cluster.LockService[*mwmsg]
	maxvc   []uint64 // barrier-episode scratch; every release shares it

	// pools holds the clean-path freelists (recycled protocol headers,
	// twin/snapshot/diff buffers and interval records), one per calendar
	// shard. On the sequential engine every host shares pools[0] — the
	// historical system-wide freelists; under the parallel engine each
	// host owns its shard's pool, so the freelists never cross shards
	// (objects migrate between pools, which balances because every
	// request pairs with a reply). See MWHost.allocMW / allocBuf /
	// allocIval.
	pools []*mwPool

	Stats MWStats
}

// mwPool is one calendar shard's clean-path freelists.
type mwPool struct {
	freeMW     []*mwmsg
	freeBuf    [][]byte
	freeIval   []*mwInterval
	freeMPs    [][]int
	freeNotice []*mwNotice
}

// allocMW returns a protocol header for a message whose consumer will
// recycle it. The caller must set every field it needs; recycleMW zeroes
// the rest. Under fault injection the reliability layer may retransmit a
// payload after its first delivery, so pooling is clean-path only.
func (h *MWHost) allocMW() *mwmsg {
	po := h.pool
	if n := len(po.freeMW); n > 0 && !h.sys.rt.Faulty() {
		m := po.freeMW[n-1]
		po.freeMW = po.freeMW[:n-1]
		return m
	}
	return &mwmsg{}
}

// recycleMW returns a fully consumed pooled header to this host's
// shard's freelist, keeping its slice capacities for reuse.
func (h *MWHost) recycleMW(m *mwmsg) {
	if h.sys.rt.Faulty() {
		return
	}
	for i := range m.Notices {
		m.Notices[i] = mwCNotice{}
	}
	for i := range m.DiffsOut {
		m.DiffsOut[i] = mwDiffOut{}
	}
	*m = mwmsg{VC: m.VC[:0], Notices: m.Notices[:0], Seqs: m.Seqs[:0], DiffsOut: m.DiffsOut[:0]}
	h.pool.freeMW = append(h.pool.freeMW, m)
}

// allocBuf returns a byte buffer of length n (twin, minipage snapshot,
// fetch payload); pass 0 for an empty append target (encoded diffs).
func (h *MWHost) allocBuf(n int) []byte {
	if !h.sys.rt.Faulty() {
		po := h.pool
		for i := len(po.freeBuf) - 1; i >= 0; i-- {
			if cap(po.freeBuf[i]) >= n {
				b := po.freeBuf[i][:n]
				po.freeBuf[i] = po.freeBuf[len(po.freeBuf)-1]
				po.freeBuf = po.freeBuf[:len(po.freeBuf)-1]
				return b
			}
		}
	}
	return make([]byte, n)
}

// recycleBuf returns a fully consumed buffer to this host's shard's
// freelist.
func (h *MWHost) recycleBuf(b []byte) {
	if h.sys.rt.Faulty() || cap(b) == 0 {
		return
	}
	h.pool.freeBuf = append(h.pool.freeBuf, b)
}

// allocIval returns an interval record with an empty diff map.
func (h *MWHost) allocIval(n int) *mwInterval {
	po := h.pool
	if k := len(po.freeIval); k > 0 && !h.sys.rt.Faulty() {
		iv := po.freeIval[k-1]
		po.freeIval = po.freeIval[:k-1]
		return iv
	}
	return &mwInterval{diffs: make(map[int][]byte, n)}
}

// recycleIval returns a garbage-collected interval to the freelist,
// recycling its retained diff encodings and notice minipage list. GC
// runs two barriers after the interval closed, and a barrier drains
// every in-flight diff reply, home flush and granted notice, so nothing
// can still alias either here.
func (h *MWHost) recycleIval(iv *mwInterval) {
	if h.sys.rt.Faulty() {
		return
	}
	for id, enc := range iv.diffs { //detlint:ok freelist order is invisible: every pooled buffer is fully overwritten before use
		h.recycleBuf(enc)
		delete(iv.diffs, id)
	}
	if iv.mps != nil {
		h.pool.freeMPs = append(h.pool.freeMPs, iv.mps)
		iv.mps = nil
	}
	h.pool.freeIval = append(h.pool.freeIval, iv)
}

// allocMPs returns an int slice of length n for a notice's minipage
// list, retained by the creator's interval record until GC.
func (h *MWHost) allocMPs(n int) []int {
	if !h.sys.rt.Faulty() {
		po := h.pool
		for i := len(po.freeMPs) - 1; i >= 0; i-- {
			if cap(po.freeMPs[i]) >= n {
				b := po.freeMPs[i][:n]
				po.freeMPs[i] = po.freeMPs[len(po.freeMPs)-1]
				po.freeMPs = po.freeMPs[:len(po.freeMPs)-1]
				return b
			}
		}
	}
	return make([]int, n)
}

// allocNotice returns a write-notice header; the coordinator recycles it
// once the notice is logged (the log keeps a value copy).
func (h *MWHost) allocNotice() *mwNotice {
	po := h.pool
	if n := len(po.freeNotice); n > 0 && !h.sys.rt.Faulty() {
		nt := po.freeNotice[n-1]
		po.freeNotice = po.freeNotice[:n-1]
		return nt
	}
	return &mwNotice{}
}

// recycleNotice returns a logged notice header to this host's shard's
// freelist. The MPs backing array stays with the creator's interval
// record.
func (h *MWHost) recycleNotice(n *mwNotice) {
	if h.sys.rt.Faulty() {
		return
	}
	*n = mwNotice{}
	h.pool.freeNotice = append(h.pool.freeNotice, n)
}

// MWHost is one multi-writer LRC process.
type MWHost struct {
	*cluster.Host
	sys    *MWSystem
	Region *core.Region

	vc []uint64 // vector clock: vc[c] = newest interval of host c known here

	twins     map[int][]byte // minipage id -> twin (the dirty set)
	dirtyInfo map[int]core.Info
	copies    map[int]core.Info    // non-home minipages with a local copy
	seen      map[int][]uint64     // minipage id -> per-creator interval floor the copy reflects
	pend      map[int][]pendEntry  // minipage id -> notices invalidated but not yet merged
	ivals     []*mwInterval        // own closed intervals, ivals[i] has seq ivalBase+1+i
	ivalBase  uint64               // intervals with seq <= ivalBase are purged
	floorPrev uint64               // GC floor: own seq as of two barriers ago
	floorCur  uint64               // own seq as of the last barrier

	pendingHdr map[int]*mwmsg // fetch header awaiting its data message, by sender

	flushAwait int
	flushDone  *sim.Event

	// Acquire-side handoff from the message handler to the (single)
	// application thread: the notices and converged clock delivered with
	// the last lock grant or barrier release, and the last diff reply.
	acqNotices []mwCNotice
	acqMaxVC   []uint64
	acqMsg     *mwmsg // the pooled grant/release header, recycled by acquire
	diffReply  *mwmsg

	// Steady-state scratch, reused across releases and merges.
	relDirty   []int
	relFlush   []mwFlush
	mergeDiffs []mwFetched

	// pool is this host's shard's clean-path freelists (see MWSystem.pools).
	pool *mwPool

	// stats is this host's share of MWSystem.Stats, kept per-host so the
	// parallel engine's shards never race on the counters; Run folds the
	// shares into MWSystem.Stats once the simulation stops.
	stats MWStats
}

// NewMW builds a multi-writer LRC cluster.
func NewMW(opt Options) (*MWSystem, error) {
	if opt.Hosts < 1 || opt.Hosts > 1024 {
		return nil, fmt.Errorf("lrc-mw: Hosts = %d out of range", opt.Hosts)
	}
	if opt.ChunkLevel < 1 {
		opt.ChunkLevel = 1
	}
	if opt.Views < 1 {
		opt.Views = 1
	}
	layout, err := core.NewLayout(opt.SharedSize, opt.Views)
	if err != nil {
		return nil, err
	}
	if opt.Faults.Enabled() {
		if err := opt.Faults.Validate(opt.Hosts); err != nil {
			return nil, fmt.Errorf("lrc-mw: %w", err)
		}
	}
	rt := cluster.New(cluster.Config{
		Name:       "lrc-mw",
		Hosts:      opt.Hosts,
		Seed:       opt.Seed,
		Engine:     opt.Engine,
		ParWorkers: opt.ParWorkers,
		Net:        opt.Net,
		Costs:      opt.Costs,
		Faults:     opt.Faults,
		Trace:      opt.Trace,
	})
	opt.Seed = rt.Cfg.Seed
	opt.Net = rt.Cfg.Net
	opt.Costs = rt.Cfg.Costs
	s := &MWSystem{
		Opt:    opt,
		Eng:    rt.Eng,
		Net:    rt.Net,
		Layout: layout,
		rt:     rt,
		mpt:    core.NewMPT(layout, core.GrainMinipage, opt.ChunkLevel),
		locks:  cluster.NewLockService[*mwmsg](),
	}
	s.pools = make([]*mwPool, rt.Eng.NumShards())
	for i := range s.pools {
		s.pools[i] = &mwPool{}
	}
	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		region, err := core.NewRegion(layout, as)
		if err != nil {
			return nil, err
		}
		h := &MWHost{
			sys:        s,
			Region:     region,
			vc:         make([]uint64, opt.Hosts),
			twins:      make(map[int][]byte),
			dirtyInfo:  make(map[int]core.Info),
			copies:     make(map[int]core.Info),
			seen:       make(map[int][]uint64),
			pend:       make(map[int][]pendEntry),
			pendingHdr: make(map[int]*mwmsg),
		}
		h.Host = rt.NewHost(as, h)
		h.pool = s.pools[h.Shard().ID()]
		s.hosts = append(s.hosts, h)
	}
	if rt.Eng.NumShards() > 1 {
		s.mpt.SetShared(true)
		s.homesMu = &sync.RWMutex{}
	}
	return s, nil
}

// Host returns host i.
func (s *MWSystem) Host(i int) *MWHost { return s.hosts[i] }

// NumHosts returns the cluster size.
func (s *MWSystem) NumHosts() int { return s.Opt.Hosts }

// MPT exposes the minipage table.
func (s *MWSystem) MPT() *core.MPT { return s.mpt }

// Runtime returns the shared cluster substrate.
func (s *MWSystem) Runtime() *cluster.Runtime { return s.rt }

// Threads returns the application threads after Run (for statistics).
func (s *MWSystem) Threads() []*MWThread { return s.threads }

// Elapsed returns the virtual time at which the run stopped.
func (s *MWSystem) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }

// BarrierEpisodes returns the number of completed barrier episodes.
func (s *MWSystem) BarrierEpisodes() uint64 { return s.barrier.Episodes }

// LockAcquisitions returns the number of lock grants handed out.
func (s *MWSystem) LockAcquisitions() uint64 { return s.locks.Acquisitions }

// MWThread is an application thread's handle on the multi-writer DSM.
type MWThread struct {
	*cluster.Thread
	host *MWHost
}

// Run starts one application thread per host and drives the simulation.
func (s *MWSystem) Run(body func(t *MWThread)) error {
	if body == nil {
		return fmt.Errorf("lrc-mw: nil thread body")
	}
	err := s.rt.Run(func(ct *cluster.Thread) func() {
		t := &MWThread{Thread: ct, host: s.hosts[ct.Host()]}
		ct.SetSelf(t)
		s.threads = append(s.threads, t)
		return func() { body(t) }
	})
	// Fold the per-host counters into the aggregate the callers read.
	for _, h := range s.hosts {
		s.Stats.Fetches += h.stats.Fetches
		s.Stats.DiffFetches += h.stats.DiffFetches
		s.Stats.DiffsFetched += h.stats.DiffsFetched
		s.Stats.HomeFallbacks += h.stats.HomeFallbacks
		s.Stats.DiffsSent += h.stats.DiffsSent
		s.Stats.DiffBytes += h.stats.DiffBytes
		s.Stats.TwinsMade += h.stats.TwinsMade
		s.Stats.Barriers += h.stats.Barriers
		s.Stats.WriteFault += h.stats.WriteFault
		s.Stats.ReadFault += h.stats.ReadFault
		s.Stats.Invalidations += h.stats.Invalidations
		s.Stats.Notices += h.stats.Notices
		s.Stats.IntervalsGCed += h.stats.IntervalsGCed
	}
	return err
}

func (s *MWSystem) allocLocal(from, size int) (core.Info, uint64, int) {
	mp, va, err := s.mpt.Alloc(size)
	if err != nil {
		panic(fmt.Sprintf("lrc-mw: alloc %d: %v", size, err))
	}
	if s.homesMu != nil {
		s.homesMu.Lock()
	}
	for id := len(s.homes); id < s.mpt.NumMinipages(); id++ {
		s.homes = append(s.homes, from)
	}
	home := s.homes[mp.ID]
	if s.homesMu != nil {
		s.homesMu.Unlock()
	}
	return mp.Info(s.Layout), va, home
}

// homeOf returns minipage id's home host, taking the reader lock when the
// parallel engine shares the homes slice across shards.
func (s *MWSystem) homeOf(id int) int {
	if s.homesMu != nil {
		s.homesMu.RLock()
		defer s.homesMu.RUnlock()
	}
	return s.homes[id]
}

// Malloc allocates shared memory; the allocating host becomes the
// minipage's home. Unlike the single-writer protocol, the home maps its
// own minipages read-only: a home write must fault so it is twinned into
// an interval and announced by a write notice like any other write.
func (t *MWThread) Malloc(size int) uint64 {
	h := t.host
	s := h.sys
	p := t.Proc()
	start := p.Now()
	if h.ID() == 0 {
		p.Sleep(h.Costs().MallocBase)
		info, va, home := s.allocLocal(h.ID(), size)
		if home == h.ID() {
			h.Region.Protect(info.Base, info.Size, vm.ReadOnly)
		}
		t.Stats.MallocTime += p.Now().Sub(start)
		return va
	}
	fw := t.WaitSlot()
	req := h.allocMW()
	req.Type = mwAllocReq
	req.From = h.ID()
	req.AllocSize = size
	req.FW = fw
	h.Send(p, 0, req)
	t.Block(fw)
	p.Sleep(h.Costs().ThreadWake)
	if fw.Home == h.ID() {
		h.Region.Protect(fw.Info.Base, fw.Info.Size, vm.ReadOnly)
	}
	t.Stats.MallocTime += p.Now().Sub(start)
	return fw.VA
}

// DescribeMsg extracts the trace fields from a protocol header.
func (h *MWHost) DescribeMsg(payload any) (op uint16, mp int, addr uint64, home int) {
	m := payload.(*mwmsg)
	op = mwOpBase + uint16(m.Type)
	if m.Info.Size == 0 {
		return op, -1, 0, -1
	}
	home = -1
	if m.Info.ID < len(h.sys.homes) {
		home = h.sys.homes[m.Info.ID]
	}
	return op, m.Info.ID, m.Info.Base, home
}

// HandleFault services read and write faults: merge pending write
// notices (lazy diff fetch) or fetch from home if absent; on write, twin
// and proceed — concurrent writers to one minipage never ping-pong.
func (h *MWHost) HandleFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*MWThread)
	if !ok {
		return fmt.Errorf("lrc-mw: fault outside app thread at %#x", f.Addr)
	}
	c := h.Costs()
	p := t.Proc()
	start := p.Now()
	p.Sleep(c.AccessFault)
	s := h.sys

	mp, okk := s.mpt.Lookup(f.Addr)
	if !okk {
		return fmt.Errorf("lrc-mw: %#x outside any minipage", f.Addr)
	}
	info := mp.Info(s.Layout)
	home := s.homeOf(mp.ID)

	if prot, _ := h.Region.ProtOf(info.Base); prot == vm.NoAccess {
		if home == h.ID() {
			return fmt.Errorf("lrc-mw: home minipage %d unmapped at its home %d", mp.ID, h.ID())
		}
		if f.Kind == vm.Read {
			h.stats.ReadFault++
		}
		_, have := h.copies[mp.ID]
		if !have || !t.mergePending(mp.ID, info) {
			t.fetchFromHome(mp.ID, info, home)
		}
	}

	_, dirty := h.twins[mp.ID]
	if f.Kind == vm.Write {
		h.stats.WriteFault++
		if !dirty {
			twin := h.allocBuf(info.Size)
			if err := h.Region.ReadPrivInto(info.Base, twin); err != nil {
				return err
			}
			h.twins[mp.ID] = twin
			h.dirtyInfo[mp.ID] = info
			h.stats.TwinsMade++
			p.Sleep(twindiff.TwinCost(info.Size))
		}
		p.Sleep(c.SetProt)
		err := h.Region.Protect(info.Base, info.Size, vm.ReadWrite)
		elapsed := p.Now().Sub(start)
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
		return err
	}
	// A dirty minipage stays writable after a read fault: the thread is
	// mid-interval and its next write must not lose the twin.
	want := vm.ReadOnly
	if dirty {
		want = vm.ReadWrite
	}
	p.Sleep(c.SetProt)
	err := h.Region.Protect(info.Base, info.Size, want)
	elapsed := p.Now().Sub(start)
	t.Stats.ReadFaultTime += elapsed
	t.Stats.ReadFaults++
	t.Stats.ReadFaultHist.Add(elapsed)
	return err
}

// mergePending fetches the diffs named by the minipage's pending write
// notices from their creators, applies them in global vector-time order,
// and reports success. A purged interval at any creator makes it return
// false (after verifying the copy is clean), and the caller refetches
// from home instead.
func (t *MWThread) mergePending(id int, info core.Info) bool {
	h := t.host
	c := h.Costs()
	p := t.Proc()
	pend := h.pend[id]
	if len(pend) == 0 {
		// Invalidated with no pending notices cannot happen (pend and the
		// NoAccess protection are set together), but a fresh never-fetched
		// copy entry would land here; refetch to be safe.
		return false
	}
	// Sorting by (creator, seq) groups the per-creator requests — creators
	// ascending, seqs ascending within one — without staging them through
	// per-call maps. Entries are unique, so the order is deterministic.
	sortPend(pend)
	diffs := h.mergeDiffs[:0]
	for a := 0; a < len(pend); {
		cr := pend[a].creator
		b := a
		for b < len(pend) && pend[b].creator == cr {
			b++
		}
		h.stats.DiffFetches++
		fw := t.WaitSlot()
		req := h.allocMW()
		req.Type = mwDiffReq
		req.From = h.ID()
		req.MP = id
		req.FW = fw
		for k := a; k < b; k++ {
			req.Seqs = append(req.Seqs, pend[k].seq)
		}
		h.Send(p, cr, req)
		t.Block(fw)
		p.Sleep(c.ThreadWake)
		reply := h.diffReply
		h.diffReply = nil
		for i, d := range reply.DiffsOut {
			if d.Purged {
				h.stats.HomeFallbacks++
				if _, dirty := h.twins[id]; dirty {
					// Purge retention spans two barrier epochs and a dirty twin
					// cannot survive a barrier, so a dirty minipage's pending
					// notices are always younger than any purge. A full refetch
					// here would destroy uncommitted local writes.
					panic(fmt.Sprintf("lrc-mw: purged interval %d@%d for dirty minipage %d", d.Seq, cr, id))
				}
				h.mergeDiffs = diffs[:0]
				h.recycleMW(reply)
				return false
			}
			h.stats.DiffsFetched++
			// The reply serves the requested seqs in order, so entry i
			// carries the diff for pend[a+i]'s notice.
			diffs = append(diffs, mwFetched{vtsum: pend[a+i].vtsum, enc: d.Enc})
		}
		h.recycleMW(reply)
		a = b
	}
	sortFetched(diffs)
	h.mergeDiffs = diffs
	cur := h.allocBuf(info.Size)
	if err := h.Region.ReadPrivInto(info.Base, cur); err != nil {
		panic(err)
	}
	twin := h.twins[id]
	for _, d := range diffs {
		if err := twindiff.ApplyEncoded(cur, d.enc); err != nil {
			panic(err)
		}
		if twin != nil {
			// Patch the twin too, so this host's own eventual diff captures
			// only its own writes.
			if err := twindiff.ApplyEncoded(twin, d.enc); err != nil {
				panic(err)
			}
		}
		p.Sleep(twindiff.ApplyCost(len(d.enc)))
	}
	if err := h.Region.WritePriv(info.Base, cur); err != nil {
		panic(err)
	}
	h.recycleBuf(cur)
	h.mergeDiffs = diffs[:0]
	sn := h.seen[id]
	if sn == nil {
		sn = make([]uint64, len(h.vc))
		h.seen[id] = sn
	}
	for _, pe := range pend {
		if pe.seq > sn[pe.creator] {
			sn[pe.creator] = pe.seq
		}
	}
	h.pend[id] = pend[:0] // keep the entry capacity for the next notice
	return true
}

// sortPend is an in-place insertion sort by (creator, seq) — pending
// sets are tiny and the stdlib sorts allocate.
func sortPend(a []pendEntry) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && (a[j].creator > e.creator || (a[j].creator == e.creator && a[j].seq > e.seq)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// sortFetched is an in-place insertion sort by vtsum (globally unique:
// the coordinator stamps each notice with a fresh counter value).
func sortFetched(a []mwFetched) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && a[j].vtsum > e.vtsum {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// fetchFromHome pulls the minipage's merged contents from its home (the
// home is current for every notice this host can have seen, because
// diffs are flushed and acked before any notice circulates).
func (t *MWThread) fetchFromHome(id int, info core.Info, home int) {
	h := t.host
	c := h.Costs()
	p := t.Proc()
	h.stats.Fetches++
	fw := t.WaitSlot()
	req := h.allocMW()
	req.Type = mwFetchReq
	req.From = h.ID()
	req.Info = info
	req.FW = fw
	h.Send(p, home, req)
	t.Block(fw)
	p.Sleep(c.ThreadWake + c.FaultResume)
	h.copies[id] = info
	sn := h.seen[id]
	if sn == nil {
		sn = make([]uint64, len(h.vc))
		h.seen[id] = sn
	}
	copy(sn, h.vc)
	if pe, ok := h.pend[id]; ok {
		h.pend[id] = pe[:0]
	}
}

// release closes the current interval: diff every dirty minipage against
// its twin, retain the diffs for lazy serving, flush non-home diffs to
// their homes (acked before the caller may announce the interval), and
// downgrade the dirty set to read-only so the next write opens a new
// interval. Returns the interval's write notice, or nil if no writes
// happened since the last release.
func (t *MWThread) release() *mwNotice {
	h := t.host
	s := h.sys
	c := h.Costs()
	p := t.Proc()

	if len(h.twins) == 0 {
		return nil
	}
	dirty := h.relDirty[:0]
	for id := range h.twins { //detlint:ok sorted below
		dirty = append(dirty, id)
	}
	sortInts(dirty)
	h.relDirty = dirty

	seq := h.vc[h.ID()] + 1
	iv := h.allocIval(len(dirty))
	flushes := h.relFlush[:0]
	for _, id := range dirty {
		info := h.dirtyInfo[id]
		home := s.homeOf(id)
		twin := h.twins[id]
		cur := h.allocBuf(info.Size)
		if err := h.Region.ReadPrivInto(info.Base, cur); err != nil {
			panic(err)
		}
		p.Sleep(twindiff.CreateCost(info.Size))
		enc, err := twindiff.AppendDiff(h.allocBuf(0), twin, cur)
		if err != nil {
			panic(err) // minipages are sub-page: offsets always fit the header
		}
		h.recycleBuf(cur)
		h.recycleBuf(twin)
		iv.diffs[id] = enc
		delete(h.twins, id)
		delete(h.dirtyInfo, id)
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(info.Base, info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
		if home != h.ID() {
			flushes = append(flushes, mwFlush{home: home, info: info, enc: enc})
		}
	}
	h.ivals = append(h.ivals, iv)
	h.vc[h.ID()] = seq
	h.relFlush = flushes[:0]
	if len(flushes) > 0 {
		h.flushAwait = len(flushes)
		if h.flushDone == nil {
			h.flushDone = sim.NewEvent(s.Eng)
		} else {
			h.flushDone.Reset()
		}
		for _, f := range flushes {
			h.stats.DiffsSent++
			h.stats.DiffBytes += uint64(len(f.enc))
			fm := h.allocMW()
			fm.Type = mwDiffFlush
			fm.From = h.ID()
			fm.Info = f.info
			fm.Diff = f.enc
			h.SendSized(p, f.home, fm, c.HeaderSize+len(f.enc))
		}
		t.BlockOn(h.flushDone)
		p.Sleep(c.ThreadWake)
	}
	// The notice's minipage list is retained by the coordinator's log (and
	// shared by every granted copy) until the next barrier, so it cannot
	// ride in per-release scratch; it is pooled with the interval record,
	// whose two-barrier retention outlives every reader.
	mps := h.allocMPs(len(dirty))
	copy(mps, dirty)
	iv.mps = mps
	n := h.allocNotice()
	n.Creator = h.ID()
	n.Seq = seq
	n.MPs = mps
	return n
}

// sortInts is an in-place insertion sort for small id sets.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && a[j] > e {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// acquire applies the write notices delivered with the last lock grant
// or barrier release: advance the vector clock, and invalidate exactly
// the minipages a causally newer notice names — the diffs are fetched
// lazily on the next fault.
func (t *MWThread) acquire() {
	h := t.host
	s := h.sys
	c := h.Costs()
	p := t.Proc()
	for _, n := range h.acqNotices {
		if n.Seq > h.vc[n.Creator] {
			h.vc[n.Creator] = n.Seq
		}
		for _, id := range n.MPs {
			if s.homeOf(id) == h.ID() {
				continue // the home had this diff applied before the notice could circulate
			}
			_, dirty := h.twins[id]
			info, have := h.copies[id]
			if dirty {
				info = h.dirtyInfo[id]
			} else if !have {
				continue // no copy: nothing to invalidate, a future fetch sees the merge
			}
			h.pend[id] = append(h.pend[id], pendEntry{vtsum: n.VTSum, creator: n.Creator, seq: n.Seq})
			if len(h.pend[id]) == 1 {
				h.stats.Invalidations++
				p.Sleep(c.SetProt)
				if err := h.Region.Protect(info.Base, info.Size, vm.NoAccess); err != nil {
					panic(err)
				}
			}
		}
	}
	if h.acqMaxVC != nil {
		for i, v := range h.acqMaxVC {
			if v > h.vc[i] {
				h.vc[i] = v
			}
		}
	}
	h.acqNotices = nil
	h.acqMaxVC = nil
	if h.acqMsg != nil {
		h.recycleMW(h.acqMsg)
		h.acqMsg = nil
	}
}

// gcIntervals purges this host's interval records that every other host
// has provably merged or can refetch from home: anything two barrier
// epochs old. Runs after each completed barrier.
func (h *MWHost) gcIntervals() {
	for h.ivalBase < h.floorPrev && len(h.ivals) > 0 {
		iv := h.ivals[0]
		h.ivals[0] = nil
		h.ivals = h.ivals[1:]
		h.ivalBase++
		h.stats.IntervalsGCed++
		h.recycleIval(iv)
	}
	h.floorPrev = h.floorCur
	h.floorCur = h.vc[h.ID()]
}

// Barrier closes the interval (release), rendezvouses with every other
// thread, then applies the write notices the coordinator piggybacked on
// the release and garbage-collects old intervals.
func (t *MWThread) Barrier() {
	h := t.host
	c := h.Costs()
	p := t.Proc()
	start := p.Now()

	notice := t.release()

	p.Sleep(c.BarrierBase)
	fw := t.WaitSlot()
	m := h.allocMW()
	m.Type = mwBarrierArrive
	m.From = h.ID()
	m.FW = fw
	m.Notice = notice
	m.VC = append(m.VC[:0], h.vc...)
	h.Send(p, 0, m)
	t.Block(fw)
	p.Sleep(c.ThreadWake)

	t.acquire()
	h.gcIntervals()

	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.Barriers++
}

// Lock acquires the cluster-wide lock with the given id (FIFO at host 0)
// and applies the write notices piggybacked on the grant: only minipages
// with a causally newer write are invalidated, everything else this host
// holds stays mapped.
func (t *MWThread) Lock(id int) {
	h := t.host
	p := t.Proc()
	start := p.Now()
	fw := t.WaitSlot()
	m := h.allocMW()
	m.Type = mwLockReq
	m.From = h.ID()
	m.LockID = id
	m.FW = fw
	m.VC = append(m.VC[:0], h.vc...)
	h.Send(p, 0, m)
	t.Block(fw)
	p.Sleep(h.Costs().ThreadWake)
	t.acquire()
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// Unlock closes the interval (release, with diffs flushed and acked
// before the lock moves on) and hands the lock back with the interval's
// write notice for the coordinator's log.
func (t *MWThread) Unlock(id int) {
	h := t.host
	p := t.Proc()
	start := p.Now()
	notice := t.release()
	m := h.allocMW()
	m.Type = mwUnlock
	m.From = h.ID()
	m.LockID = id
	m.Notice = notice
	h.Send(p, 0, m)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// logNotice stamps and appends a release's write notice at the
// coordinator (host 0 only).
func (h *MWHost) logNotice(n *mwNotice) {
	s := h.sys
	s.vtctr++
	h.stats.Notices++
	s.log = append(s.log, mwCNotice{mwNotice: *n, VTSum: s.vtctr})
}

// grantLock sends m's requester the lock plus every logged notice newer
// than the requester's vector clock, then recycles the request header.
func (s *MWSystem) grantLock(p *sim.Proc, h *MWHost, m *mwmsg) {
	g := h.allocMW()
	g.Type = mwLockGrant
	g.LockID = m.LockID
	g.FW = m.FW
	for _, n := range s.log {
		if n.Seq > m.VC[n.Creator] {
			g.Notices = append(g.Notices, n)
		}
	}
	h.Send(p, m.From, g)
	h.recycleMW(m)
}

// HandleMessage is the multi-writer server-thread dispatcher.
func (h *MWHost) HandleMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*mwmsg)
	s := h.sys
	c := h.Costs()
	switch m.Type {
	case mwAllocReq:
		p.Sleep(c.MallocBase)
		info, va, home := s.allocLocal(m.From, m.AllocSize)
		// Request headers turn around in place (the requester is blocked
		// on FW and holds no other reference); the reply's consumer
		// recycles them.
		m.Type = mwAllocReply
		m.Info = info
		m.AllocVA = va
		m.Home = home
		h.Send(p, m.From, m)

	case mwAllocReply:
		m.FW.Info = m.Info
		m.FW.VA = m.AllocVA
		m.FW.Home = m.Home
		m.FW.Ev.Set()
		h.recycleMW(m)

	case mwFetchReq:
		data := h.allocBuf(m.Info.Size)
		if err := h.Region.ReadPrivInto(m.Info.Base, data); err != nil {
			panic(err)
		}
		to := m.From
		m.Type = mwFetchReply
		h.Send(p, to, m)
		h.SendData(p, to, data, mwDataMarker)

	case mwFetchReply:
		h.pendingHdr[fm.From] = m

	case mwFetchData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic("lrc-mw: data without header")
		}
		delete(h.pendingHdr, fm.From)
		if err := h.Region.WritePriv(hdr.Info.Base, fm.Data); err != nil {
			panic(err)
		}
		h.recycleBuf(fm.Data)
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
		hdr.FW.Info = hdr.Info
		hdr.FW.Ev.Set()
		h.recycleMW(hdr)

	case mwDiffFlush:
		cur := h.allocBuf(m.Info.Size)
		if err := h.Region.ReadPrivInto(m.Info.Base, cur); err != nil {
			panic(err)
		}
		if err := twindiff.ApplyEncoded(cur, m.Diff); err != nil {
			panic(err)
		}
		if err := h.Region.WritePriv(m.Info.Base, cur); err != nil {
			panic(err)
		}
		h.recycleBuf(cur)
		if twin, dirty := h.twins[m.Info.ID]; dirty {
			// The home is itself mid-interval on this minipage: patch the
			// twin too, so the home's own diff stays writes-only.
			if err := twindiff.ApplyEncoded(twin, m.Diff); err != nil {
				panic(err)
			}
		}
		p.Sleep(twindiff.ApplyCost(len(m.Diff)))
		to := m.From
		m.Type = mwDiffAck
		m.From = h.ID()
		m.Diff = nil // the encoding stays with the sender's interval record
		h.Send(p, to, m)

	case mwDiffAck:
		if h.flushAwait--; h.flushAwait == 0 {
			h.flushDone.Set()
		}
		h.recycleMW(m)

	case mwDiffReq:
		size := c.HeaderSize
		for _, seq := range m.Seqs {
			if seq <= h.ivalBase {
				m.DiffsOut = append(m.DiffsOut, mwDiffOut{Seq: seq, Purged: true})
				continue
			}
			iv := h.ivals[seq-h.ivalBase-1]
			enc, ok := iv.diffs[m.MP]
			if !ok {
				panic(fmt.Sprintf("lrc-mw: interval %d at host %d has no diff for noticed minipage %d", seq, h.ID(), m.MP))
			}
			m.DiffsOut = append(m.DiffsOut, mwDiffOut{Seq: seq, Enc: enc})
			size += len(enc)
		}
		to := m.From
		m.Type = mwDiffReply
		m.From = h.ID()
		m.Seqs = m.Seqs[:0]
		h.SendSized(p, to, m, size)

	case mwDiffReply:
		h.diffReply = m
		m.FW.Ev.Set()

	case mwBarrierArrive:
		if h.ID() != 0 {
			panic("lrc-mw: barrier arrive at non-coordinator")
		}
		if m.Notice != nil {
			h.logNotice(m.Notice)
			h.recycleNotice(m.Notice)
			m.Notice = nil
		}
		arrivals, done := s.barrier.Arrive(m, len(s.hosts))
		if !done {
			return
		}
		h.stats.Barriers++
		// One converged-clock scratch serves every release message: each
		// acquirer only reads it, and all of them have consumed it before
		// the next episode can complete and overwrite it.
		if s.maxvc == nil {
			s.maxvc = make([]uint64, len(s.hosts))
		}
		maxvc := s.maxvc
		for i := range maxvc {
			maxvc[i] = 0
		}
		for _, a := range arrivals {
			for i, v := range a.VC {
				if v > maxvc[i] {
					maxvc[i] = v
				}
			}
		}
		for _, n := range s.log {
			if n.Seq > maxvc[n.Creator] {
				maxvc[n.Creator] = n.Seq
			}
		}
		for _, a := range arrivals {
			rel := h.allocMW()
			rel.Type = mwBarrierRelease
			rel.MaxVC = maxvc
			rel.FW = a.FW
			for _, n := range s.log {
				if n.Seq > a.VC[n.Creator] {
					rel.Notices = append(rel.Notices, n)
				}
			}
			h.Send(p, a.From, rel)
			h.recycleMW(a)
		}
		// Every host's clock now converges to maxvc, so nothing in the log
		// can ever be granted again: clear it.
		s.log = s.log[:0]

	case mwBarrierRelease:
		h.acqNotices = m.Notices
		h.acqMaxVC = m.MaxVC
		h.acqMsg = m
		m.FW.Ev.Set()

	case mwLockReq:
		if h.ID() != 0 {
			panic("lrc-mw: lock request at non-coordinator")
		}
		if !s.locks.Acquire(m.LockID, m) {
			return
		}
		s.grantLock(p, h, m)

	case mwLockGrant:
		h.acqNotices = m.Notices
		h.acqMaxVC = nil
		h.acqMsg = m
		m.FW.Ev.Set()

	case mwUnlock:
		if h.ID() != 0 {
			panic("lrc-mw: unlock at non-coordinator")
		}
		if m.Notice != nil {
			h.logNotice(m.Notice)
			h.recycleNotice(m.Notice)
			m.Notice = nil
		}
		next, granted, wasHeld := s.locks.Release(m.LockID)
		if !wasHeld {
			panic(fmt.Sprintf("lrc-mw: unlock of free lock %d", m.LockID))
		}
		if granted {
			s.grantLock(p, h, next)
		}
		h.recycleMW(m)

	default:
		panic(fmt.Sprintf("lrc-mw: unexpected message %d", int(m.Type)))
	}
}
