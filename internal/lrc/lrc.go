// Package lrc implements the paper's first future-work direction
// (Section 5, "Reduced-Consistency Protocols"): a home-based lazy
// release consistency DSM over minipages.
//
// The paper's observation: once chunking makes minipages larger than the
// sharing unit, false sharing reappears *within* a minipage — and a
// reduced-consistency protocol can absorb it. Under LRC, writers do not
// invalidate each other between synchronization points: a write fault
// takes a twin of the minipage and proceeds locally; at a barrier every
// host run-length-diffs its dirty minipages against their twins and
// flushes the diffs to the minipage's home, which applies them; after
// the barrier releases, non-home copies are invalidated so the next
// access refetches the merged contents. Lock/Unlock follow the same
// release-consistency discipline: Unlock flushes the holder's diffs to
// the homes before the lock moves on, and Lock invalidates the new
// holder's non-home copies after the grant. Data-race-free programs
// observe the same results as under sequential consistency, while
// concurrent writers to one (chunked) minipage never ping-pong.
//
// The protocol reuses the whole Millipage substrate: the shared cluster
// runtime (internal/cluster), the MultiView region and privileged view
// (internal/core), the VM fault upcalls (internal/vm), the FastMessages
// model (internal/fastmsg) and the twin/diff machinery with the paper's
// measured costs (internal/twindiff). The cost Millipage's thin layer
// avoids — 250 us per 4 KB diff — is charged here, which is exactly what
// the ablation benchmarks compare.
package lrc

import (
	"fmt"
	"sort"
	"sync"

	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/twindiff"
	"millipage/internal/vm"
)

// Options configures an LRC cluster.
type Options struct {
	Hosts      int
	SharedSize int
	Views      int
	ChunkLevel int
	Seed       int64
	Net        fastmsg.Params
	Costs      cluster.Costs

	// Engine selects the event engine ("seq" default, "par" for the
	// sharded parallel engine) and ParWorkers bounds its goroutines; see
	// cluster.Config.
	Engine     string
	ParWorkers int

	// Faults, when non-nil and enabled, makes the wire lossy per the
	// plan; the transport's reliability layer restores exactly-once FIFO
	// delivery, which is all this protocol's handlers assume. Nil (or an
	// all-zero plan) leaves the clean path untouched.
	Faults *faultnet.Plan

	// Trace, if non-nil, records protocol events (message sends, fault
	// entries, handler dispatches) for debugging.
	Trace *trace.Recorder
}

// message types
type mtype int

const (
	mFetchReq mtype = iota
	mFetchReply
	mFetchData
	mDiffFlush
	mDiffAck
	mBarrierArrive
	mBarrierRelease
	mAllocReq
	mAllocReply
	mLockReq
	mLockGrant
	mUnlock
)

var mtypeNames = [...]string{
	"FETCH_REQUEST", "FETCH_REPLY", "FETCH_DATA", "DIFF_FLUSH", "DIFF_ACK",
	"BARRIER_ARRIVE", "BARRIER_RELEASE", "ALLOC_REQUEST", "ALLOC_REPLY",
	"LOCK_REQUEST", "LOCK_GRANT", "UNLOCK",
}

// The trace recorder stores message types as raw codes offset by the
// package's registered base, so dsm/ivy/lrc coexist in one binary.
var opBase = trace.RegisterOps(mtypeNames[:])

func (m mtype) String() string {
	if int(m) >= 0 && int(m) < len(mtypeNames) {
		return mtypeNames[m]
	}
	return fmt.Sprintf("mtype(%d)", int(m))
}

// dataMarker is the shared payload of every bulk mFetchData message.
var dataMarker = &pmsg{Type: mFetchData}

type pmsg struct {
	Type mtype
	From int
	Info core.Info

	Diff []byte // encoded run-length diff (mDiffFlush)

	FW *cluster.Wait

	AllocSize int
	AllocVA   uint64
	Home      int
	LockID    int
}

// System is an LRC cluster. Host 0 coordinates barriers and locks and
// owns the minipage table; every minipage's home is its allocating host.
type System struct {
	Opt    Options
	Eng    *sim.Engine
	Net    *fastmsg.Network
	Layout core.Layout

	rt *cluster.Runtime

	mpt   *core.MPT
	homes []int // minipage id -> home host

	// homesMu is non-nil only under the parallel engine: homes grows on
	// host 0's shard (the allocation authority) while every host's fault
	// and flush paths index it, and the append's reallocation needs a
	// fence even though the protocol's messages already order each entry's
	// write before any remote read of it.
	homesMu *sync.RWMutex

	hosts   []*Host
	threads []*Thread

	barrier cluster.BarrierService[*pmsg]
	locks   *cluster.LockService[*pmsg]

	Stats Stats
}

// Stats aggregates protocol activity across the run.
type Stats struct {
	Fetches    uint64
	DiffsSent  uint64
	DiffBytes  uint64
	TwinsMade  uint64
	Barriers   uint64
	WriteFault uint64
	ReadFault  uint64
}

// Host is one LRC process.
type Host struct {
	*cluster.Host
	sys    *System
	Region *core.Region

	twins      map[int][]byte // minipage id -> twin (dirty set)
	dirtyInfo  map[int]core.Info
	present    map[int]core.Info // non-home minipages currently mapped in
	pendingHdr map[int]*pmsg

	flushAwait int
	flushDone  *sim.Event

	// stats is this host's share of System.Stats, kept per-host so the
	// parallel engine's shards never race on the counters; Run folds the
	// shares into System.Stats once the simulation stops.
	stats Stats
}

// New builds an LRC cluster.
func New(opt Options) (*System, error) {
	if opt.Hosts < 1 || opt.Hosts > 1024 {
		return nil, fmt.Errorf("lrc: Hosts = %d out of range", opt.Hosts)
	}
	if opt.ChunkLevel < 1 {
		opt.ChunkLevel = 1
	}
	if opt.Views < 1 {
		opt.Views = 1
	}
	layout, err := core.NewLayout(opt.SharedSize, opt.Views)
	if err != nil {
		return nil, err
	}
	if opt.Faults.Enabled() {
		if err := opt.Faults.Validate(opt.Hosts); err != nil {
			return nil, fmt.Errorf("lrc: %w", err)
		}
	}
	rt := cluster.New(cluster.Config{
		Name:       "lrc",
		Hosts:      opt.Hosts,
		Seed:       opt.Seed,
		Engine:     opt.Engine,
		ParWorkers: opt.ParWorkers,
		Net:        opt.Net,
		Costs:      opt.Costs,
		Faults:     opt.Faults,
		Trace:      opt.Trace,
	})
	opt.Seed = rt.Cfg.Seed
	opt.Net = rt.Cfg.Net
	opt.Costs = rt.Cfg.Costs
	s := &System{
		Opt:    opt,
		Eng:    rt.Eng,
		Net:    rt.Net,
		Layout: layout,
		rt:     rt,
		mpt:    core.NewMPT(layout, core.GrainMinipage, opt.ChunkLevel),
		locks:  cluster.NewLockService[*pmsg](),
	}
	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		region, err := core.NewRegion(layout, as)
		if err != nil {
			return nil, err
		}
		h := &Host{
			sys:        s,
			Region:     region,
			twins:      make(map[int][]byte),
			dirtyInfo:  make(map[int]core.Info),
			present:    make(map[int]core.Info),
			pendingHdr: make(map[int]*pmsg),
		}
		h.Host = rt.NewHost(as, h)
		s.hosts = append(s.hosts, h)
	}
	if rt.Eng.NumShards() > 1 {
		s.mpt.SetShared(true)
		s.homesMu = &sync.RWMutex{}
	}
	return s, nil
}

// Host returns host i.
func (s *System) Host(i int) *Host { return s.hosts[i] }

// NumHosts returns the cluster size.
func (s *System) NumHosts() int { return s.Opt.Hosts }

// MPT exposes the minipage table.
func (s *System) MPT() *core.MPT { return s.mpt }

// Runtime returns the shared cluster substrate (engine, network, threads),
// for protocol-independent reporting.
func (s *System) Runtime() *cluster.Runtime { return s.rt }

// Threads returns the application threads after Run (for statistics).
func (s *System) Threads() []*Thread { return s.threads }

// Elapsed returns the virtual time at which the run stopped.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }

// BarrierEpisodes returns the number of completed barrier episodes.
func (s *System) BarrierEpisodes() uint64 { return s.barrier.Episodes }

// LockAcquisitions returns the number of lock grants handed out.
func (s *System) LockAcquisitions() uint64 { return s.locks.Acquisitions }

// Thread is an application thread's handle on the LRC DSM: the generic
// substrate surface plus LRC's allocation and synchronization.
type Thread struct {
	*cluster.Thread
	host *Host
}

// ThreadStats is the per-thread execution-time breakdown, shared across
// protocols via internal/cluster.
type ThreadStats = cluster.ThreadStats

// Run starts one application thread per host and drives the simulation.
func (s *System) Run(body func(t *Thread)) error {
	if body == nil {
		return fmt.Errorf("lrc: nil thread body")
	}
	err := s.rt.Run(func(ct *cluster.Thread) func() {
		t := &Thread{Thread: ct, host: s.hosts[ct.Host()]}
		ct.SetSelf(t)
		s.threads = append(s.threads, t)
		return func() { body(t) }
	})
	// Fold the per-host counters into the aggregate the callers read.
	for _, h := range s.hosts {
		s.Stats.Fetches += h.stats.Fetches
		s.Stats.DiffsSent += h.stats.DiffsSent
		s.Stats.DiffBytes += h.stats.DiffBytes
		s.Stats.TwinsMade += h.stats.TwinsMade
		s.Stats.Barriers += h.stats.Barriers
		s.Stats.WriteFault += h.stats.WriteFault
		s.Stats.ReadFault += h.stats.ReadFault
	}
	return err
}

// Malloc allocates shared memory; the allocating host becomes the
// minipage's home.
func (t *Thread) Malloc(size int) uint64 {
	h := t.host
	s := h.sys
	p := t.Proc()
	start := p.Now()
	if h.ID() == 0 {
		p.Sleep(h.Costs().MallocBase)
		info, va, _ := s.allocLocal(h.ID(), size)
		h.Region.Protect(info.Base, info.Size, vm.ReadWrite)
		t.Stats.MallocTime += p.Now().Sub(start)
		return va
	}
	fw := t.WaitSlot()
	h.Send(p, 0, &pmsg{Type: mAllocReq, From: h.ID(), AllocSize: size, FW: fw})
	t.Block(fw)
	p.Sleep(h.Costs().ThreadWake)
	if fw.Home == h.ID() {
		h.Region.Protect(fw.Info.Base, fw.Info.Size, vm.ReadWrite)
	}
	t.Stats.MallocTime += p.Now().Sub(start)
	return fw.VA
}

func (s *System) allocLocal(from, size int) (core.Info, uint64, int) {
	mp, va, err := s.mpt.Alloc(size)
	if err != nil {
		panic(fmt.Sprintf("lrc: alloc %d: %v", size, err))
	}
	if s.homesMu != nil {
		s.homesMu.Lock()
	}
	for id := len(s.homes); id < s.mpt.NumMinipages(); id++ {
		s.homes = append(s.homes, from)
	}
	home := s.homes[mp.ID]
	if s.homesMu != nil {
		s.homesMu.Unlock()
	}
	return mp.Info(s.Layout), va, home
}

// homeOf returns minipage id's home host, taking the reader lock when the
// parallel engine shares the homes slice across shards.
func (s *System) homeOf(id int) int {
	if s.homesMu != nil {
		s.homesMu.RLock()
		defer s.homesMu.RUnlock()
	}
	return s.homes[id]
}

// DescribeMsg extracts the trace fields from a protocol header (the
// cluster runtime calls it only when tracing is enabled).
func (h *Host) DescribeMsg(payload any) (op uint16, mp int, addr uint64, home int) {
	m := payload.(*pmsg)
	op = opBase + uint16(m.Type)
	if m.Info.Size == 0 {
		return op, -1, 0, -1
	}
	home = -1
	if m.Info.ID < len(h.sys.homes) {
		home = h.sys.homes[m.Info.ID]
	}
	return op, m.Info.ID, m.Info.Base, home
}

// HandleFault services read and write faults in LRC fashion: fetch from
// home if absent; on write, twin and proceed — never invalidate other
// hosts.
func (h *Host) HandleFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("lrc: fault outside app thread at %#x", f.Addr)
	}
	c := h.Costs()
	p := t.Proc()
	start := p.Now()
	p.Sleep(c.AccessFault)
	s := h.sys

	// Identify the minipage (homes and the MPT are replicated read-only
	// state in this simplified realization).
	mp, okk := s.mpt.Lookup(f.Addr)
	if !okk {
		return fmt.Errorf("lrc: %#x outside any minipage", f.Addr)
	}
	info := mp.Info(s.Layout)
	home := s.homeOf(mp.ID)

	if prot, _ := h.Region.ProtOf(info.Base); prot == vm.NoAccess && home != h.ID() {
		// Fetch current contents from home.
		h.stats.Fetches++
		if f.Kind == vm.Read {
			h.stats.ReadFault++
		}
		fw := t.WaitSlot()
		h.Send(p, home, &pmsg{Type: mFetchReq, From: h.ID(), Info: info, FW: fw})
		t.Block(fw)
		p.Sleep(c.ThreadWake + c.FaultResume)
		h.present[mp.ID] = info
	}

	if f.Kind == vm.Write {
		// Twin and write locally; the diff travels at the next release.
		h.stats.WriteFault++
		if _, dirty := h.twins[mp.ID]; !dirty {
			data, err := h.Region.ReadPriv(info.Base, info.Size)
			if err != nil {
				return err
			}
			h.twins[mp.ID] = twindiff.Twin(data)
			h.dirtyInfo[mp.ID] = info
			h.stats.TwinsMade++
			p.Sleep(twindiff.TwinCost(info.Size))
		}
		p.Sleep(c.SetProt)
		err := h.Region.Protect(info.Base, info.Size, vm.ReadWrite)
		elapsed := p.Now().Sub(start)
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
		return err
	}
	p.Sleep(c.SetProt)
	err := h.Region.Protect(info.Base, info.Size, vm.ReadOnly)
	elapsed := p.Now().Sub(start)
	t.Stats.ReadFaultTime += elapsed
	t.Stats.ReadFaults++
	t.Stats.ReadFaultHist.Add(elapsed)
	return err
}

// flushDiffs run-length-diffs every dirty minipage against its twin and
// flushes the diffs to the minipages' homes, blocking until every home
// has acked. It is the release half of the consistency model, shared by
// Barrier and Unlock.
func (t *Thread) flushDiffs() {
	h := t.host
	s := h.sys
	c := h.Costs()
	p := t.Proc()

	dirty := make([]int, 0, len(h.twins))
	for id := range h.twins { //detlint:ok sorted below
		dirty = append(dirty, id)
	}
	// Deterministic flush order.
	for i := 1; i < len(dirty); i++ {
		for j := i; j > 0 && dirty[j] < dirty[j-1]; j-- {
			dirty[j], dirty[j-1] = dirty[j-1], dirty[j]
		}
	}
	// Compute every diff first (charging the paper's diff-creation cost),
	// then arm the completion latch and send, so an early ack can never
	// release the latch while later diffs are still being encoded.
	type flush struct {
		home int
		info core.Info
		enc  []byte
	}
	var flushes []flush
	for _, id := range dirty {
		info := h.dirtyInfo[id]
		home := s.homeOf(id)
		cur, err := h.Region.ReadPriv(info.Base, info.Size)
		if err != nil {
			panic(err)
		}
		runs, err := twindiff.Diff(h.twins[id], cur)
		if err != nil {
			panic(err)
		}
		p.Sleep(twindiff.CreateCost(info.Size)) // the cost Millipage avoids
		delete(h.twins, id)
		delete(h.dirtyInfo, id)
		if home == h.ID() {
			continue // writes are already at home
		}
		enc, err := twindiff.Encode(runs)
		if err != nil {
			panic(err) // minipages are sub-page: offsets always fit the header
		}
		flushes = append(flushes, flush{home: home, info: info, enc: enc})
	}
	if len(flushes) > 0 {
		h.flushAwait = len(flushes)
		h.flushDone = sim.NewEvent(s.Eng)
		for _, f := range flushes {
			h.stats.DiffsSent++
			h.stats.DiffBytes += uint64(len(f.enc))
			h.SendSized(p, f.home, &pmsg{Type: mDiffFlush, From: h.ID(), Info: f.info, Diff: f.enc}, c.HeaderSize+len(f.enc))
		}
		t.BlockOn(h.flushDone)
		p.Sleep(c.ThreadWake)
	}
}

// invalidatePresent drops every non-home copy this host holds, so the
// next access refetches the merged contents from the home. It is the
// acquire half of the consistency model, shared by Barrier and Lock.
func (t *Thread) invalidatePresent() {
	h := t.host
	c := h.Costs()
	p := t.Proc()
	ids := make([]int, 0, len(h.present))
	for id := range h.present { //detlint:ok sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		info := h.present[id]
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(info.Base, info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		delete(h.present, id)
	}
}

// Barrier flushes this host's dirty minipages to their homes, then
// rendezvouses with every other thread; on release, non-home copies are
// invalidated so subsequent accesses see the merged state.
func (t *Thread) Barrier() {
	h := t.host
	c := h.Costs()
	p := t.Proc()
	start := p.Now()

	// Flush diffs and wait for the homes' acks (release).
	t.flushDiffs()

	// Rendezvous.
	p.Sleep(c.BarrierBase)
	fw := t.WaitSlot()
	h.Send(p, 0, &pmsg{Type: mBarrierArrive, From: h.ID(), FW: fw})
	t.Block(fw)
	p.Sleep(c.ThreadWake)

	// Invalidate non-home copies (acquire).
	t.invalidatePresent()

	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.Barriers++
}

// Lock acquires the cluster-wide lock with the given id (FIFO at host 0)
// and then invalidates this host's non-home copies, so accesses inside
// the critical section observe everything flushed by the previous
// holder's Unlock — release consistency over the same diff machinery.
func (t *Thread) Lock(id int) {
	h := t.host
	p := t.Proc()
	start := p.Now()
	fw := t.WaitSlot()
	h.Send(p, 0, &pmsg{Type: mLockReq, From: h.ID(), LockID: id, FW: fw})
	t.Block(fw)
	p.Sleep(h.Costs().ThreadWake)
	t.invalidatePresent()
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// Unlock flushes this host's dirty minipages to their homes (the release
// that makes the critical section's writes visible to the next holder),
// then releases the lock asynchronously.
func (t *Thread) Unlock(id int) {
	h := t.host
	p := t.Proc()
	start := p.Now()
	t.flushDiffs()
	h.Send(p, 0, &pmsg{Type: mUnlock, From: h.ID(), LockID: id})
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// HandleMessage is the LRC server-thread dispatcher.
func (h *Host) HandleMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	s := h.sys
	c := h.Costs()
	switch m.Type {
	case mAllocReq:
		p.Sleep(c.MallocBase)
		info, va, home := s.allocLocal(m.From, m.AllocSize)
		reply := *m
		reply.Type = mAllocReply
		reply.Info = info
		reply.AllocVA = va
		reply.Home = home
		h.Send(p, m.From, &reply)

	case mAllocReply:
		m.FW.Info = m.Info
		m.FW.VA = m.AllocVA
		m.FW.Home = m.Home
		m.FW.Ev.Set()

	case mFetchReq:
		// Home ships its current copy (always readable at home via the
		// privileged view).
		data, err := h.Region.ReadPriv(m.Info.Base, m.Info.Size)
		if err != nil {
			panic(err)
		}
		reply := *m
		reply.Type = mFetchReply
		h.Send(p, m.From, &reply)
		h.SendData(p, m.From, data, dataMarker)

	case mFetchReply:
		h.pendingHdr[fm.From] = m

	case mFetchData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic("lrc: data without header")
		}
		delete(h.pendingHdr, fm.From)
		if err := h.Region.WritePriv(hdr.Info.Base, fm.Data); err != nil {
			panic(err)
		}
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
		hdr.FW.Info = hdr.Info
		hdr.FW.Ev.Set()

	case mDiffFlush:
		runs, err := twindiff.Decode(m.Diff)
		if err != nil {
			panic(err)
		}
		cur, err := h.Region.ReadPriv(m.Info.Base, m.Info.Size)
		if err != nil {
			panic(err)
		}
		if err := twindiff.Apply(cur, runs); err != nil {
			panic(err)
		}
		if err := h.Region.WritePriv(m.Info.Base, cur); err != nil {
			panic(err)
		}
		p.Sleep(twindiff.ApplyCost(len(m.Diff)))
		h.Send(p, m.From, &pmsg{Type: mDiffAck, From: h.ID(), Info: m.Info})

	case mDiffAck:
		if h.flushAwait--; h.flushAwait == 0 {
			h.flushDone.Set()
		}

	case mBarrierArrive:
		if h.ID() != 0 {
			panic("lrc: barrier arrive at non-coordinator")
		}
		arrivals, done := s.barrier.Arrive(m, len(s.hosts))
		if !done {
			return
		}
		h.stats.Barriers++
		for _, a := range arrivals {
			rel := pmsg{Type: mBarrierRelease, FW: a.FW}
			h.Send(p, a.From, &rel)
		}

	case mBarrierRelease:
		m.FW.Ev.Set()

	case mLockReq:
		if h.ID() != 0 {
			panic("lrc: lock request at non-coordinator")
		}
		if !s.locks.Acquire(m.LockID, m) {
			return
		}
		grant := pmsg{Type: mLockGrant, LockID: m.LockID, FW: m.FW}
		h.Send(p, m.From, &grant)

	case mLockGrant:
		m.FW.Ev.Set()

	case mUnlock:
		if h.ID() != 0 {
			panic("lrc: unlock at non-coordinator")
		}
		next, granted, wasHeld := s.locks.Release(m.LockID)
		if !wasHeld {
			panic(fmt.Sprintf("lrc: unlock of free lock %d", m.LockID))
		}
		if !granted {
			return
		}
		grant := pmsg{Type: mLockGrant, LockID: next.LockID, FW: next.FW}
		h.Send(p, next.From, &grant)

	default:
		panic(fmt.Sprintf("lrc: unexpected message %d", int(m.Type)))
	}
}
