// Package lrc implements the paper's first future-work direction
// (Section 5, "Reduced-Consistency Protocols"): a home-based lazy
// release consistency DSM over minipages.
//
// The paper's observation: once chunking makes minipages larger than the
// sharing unit, false sharing reappears *within* a minipage — and a
// reduced-consistency protocol can absorb it. Under LRC, writers do not
// invalidate each other between synchronization points: a write fault
// takes a twin of the minipage and proceeds locally; at a barrier every
// host run-length-diffs its dirty minipages against their twins and
// flushes the diffs to the minipage's home, which applies them; after
// the barrier releases, non-home copies are invalidated so the next
// access refetches the merged contents. Data-race-free programs observe
// the same results as under sequential consistency, while concurrent
// writers to one (chunked) minipage never ping-pong.
//
// The protocol reuses the whole Millipage substrate: the MultiView
// region and privileged view (internal/core), the VM fault upcalls
// (internal/vm), the FastMessages model (internal/fastmsg) and the
// twin/diff machinery with the paper's measured costs
// (internal/twindiff). The cost Millipage's thin layer avoids — 250 us
// per 4 KB diff — is charged here, which is exactly what the ablation
// benchmarks compare.
package lrc

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/dsm"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/twindiff"
	"millipage/internal/vm"
)

// Options configures an LRC cluster.
type Options struct {
	Hosts      int
	SharedSize int
	Views      int
	ChunkLevel int
	Seed       int64
	Net        fastmsg.Params
	Costs      dsm.Costs
}

// message types
type mtype int

const (
	mFetchReq mtype = iota
	mFetchReply
	mFetchData
	mDiffFlush
	mDiffAck
	mBarrierArrive
	mBarrierRelease
	mAllocReq
	mAllocReply
)

type pmsg struct {
	Type mtype
	From int
	Addr uint64
	Info core.Info

	Diff []byte // encoded run-length diff (mDiffFlush)

	FW *wait

	AllocSize int
	AllocVA   uint64
	Home      int
}

type wait struct {
	ev   *sim.Event
	info core.Info
	va   uint64
	home int
}

// System is an LRC cluster. Host 0 coordinates barriers and owns the
// minipage table; every minipage's home is its allocating host.
type System struct {
	Opt    Options
	Eng    *sim.Engine
	Net    *fastmsg.Network
	Layout core.Layout

	mpt   *core.MPT
	homes []int // minipage id -> home host

	hosts []*Host

	barrierArrivals []*pmsg

	Stats Stats
}

// Stats aggregates protocol activity across the run.
type Stats struct {
	Fetches    uint64
	DiffsSent  uint64
	DiffBytes  uint64
	TwinsMade  uint64
	Barriers   uint64
	WriteFault uint64
	ReadFault  uint64
}

// Host is one LRC process.
type Host struct {
	sys    *System
	id     int
	AS     *vm.AddressSpace
	Region *core.Region
	ep     *fastmsg.Endpoint

	twins      map[int][]byte // minipage id -> twin (dirty set)
	dirtyInfo  map[int]core.Info
	present    map[int]core.Info // non-home minipages currently mapped in
	pendingHdr map[int]*pmsg

	flushAwait int
	flushDone  *sim.Event
}

// New builds an LRC cluster.
func New(opt Options) (*System, error) {
	if opt.Hosts < 1 || opt.Hosts > 64 {
		return nil, fmt.Errorf("lrc: Hosts = %d out of range", opt.Hosts)
	}
	if opt.ChunkLevel < 1 {
		opt.ChunkLevel = 1
	}
	if opt.Views < 1 {
		opt.Views = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Net == (fastmsg.Params{}) {
		opt.Net = fastmsg.DefaultParams()
	}
	if opt.Costs == (dsm.Costs{}) {
		opt.Costs = dsm.DefaultCosts()
	}
	layout, err := core.NewLayout(opt.SharedSize, opt.Views)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(opt.Seed)
	net := fastmsg.New(eng, opt.Hosts, opt.Net)
	s := &System{
		Opt:    opt,
		Eng:    eng,
		Net:    net,
		Layout: layout,
		mpt:    core.NewMPT(layout, core.GrainMinipage, opt.ChunkLevel),
	}
	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		region, err := core.NewRegion(layout, as)
		if err != nil {
			return nil, err
		}
		h := &Host{
			sys:        s,
			id:         i,
			AS:         as,
			Region:     region,
			ep:         net.Endpoint(i),
			twins:      make(map[int][]byte),
			dirtyInfo:  make(map[int]core.Info),
			present:    make(map[int]core.Info),
			pendingHdr: make(map[int]*pmsg),
		}
		as.SetFaultHandler(h.onFault)
		h.ep.SetHandler(h.onMessage)
		s.hosts = append(s.hosts, h)
	}
	return s, nil
}

// Host returns host i.
func (s *System) Host(i int) *Host { return s.hosts[i] }

// MPT exposes the minipage table.
func (s *System) MPT() *core.MPT { return s.mpt }

// Elapsed returns the virtual time at which the run stopped.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }

// Thread is an application thread's handle on the LRC DSM.
type Thread struct {
	host *Host
	ID   int
	p    *sim.Proc
}

// Run starts one application thread per host and drives the simulation.
func (s *System) Run(body func(t *Thread)) error {
	for i, h := range s.hosts {
		h := h
		t := &Thread{host: h, ID: i}
		s.Eng.Spawn(fmt.Sprintf("lrc-app-%d", i), func(p *sim.Proc) {
			t.p = p
			h.ep.SetBusy(+1)
			body(t)
			h.ep.SetBusy(-1)
		})
	}
	return s.Eng.Run()
}

func (h *Host) costs() dsm.Costs { return h.sys.Opt.Costs }

func (h *Host) send(p *sim.Proc, to int, m *pmsg, extra int) {
	h.ep.Send(p, to, &fastmsg.Message{Size: h.costs().HeaderSize + extra, Payload: m})
}

// Host returns the thread's host id.
func (t *Thread) Host() int { return t.host.id }

// NumHosts returns the cluster size.
func (t *Thread) NumHosts() int { return len(t.host.sys.hosts) }

// Compute charges pure computation time.
func (t *Thread) Compute(d sim.Duration) { t.p.Sleep(d) }

// Malloc allocates shared memory; the allocating host becomes the
// minipage's home.
func (t *Thread) Malloc(size int) uint64 {
	h := t.host
	s := h.sys
	if h.id == 0 {
		t.p.Sleep(h.costs().MallocBase)
		info, va, _ := s.allocLocal(h.id, size)
		h.Region.Protect(info.Base, info.Size, vm.ReadWrite)
		return va
	}
	fw := &wait{ev: sim.NewEvent(s.Eng)}
	h.send(t.p, 0, &pmsg{Type: mAllocReq, From: h.id, AllocSize: size, FW: fw}, 0)
	h.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(h.costs().ThreadWake)
	if fw.home == h.id {
		h.Region.Protect(fw.info.Base, fw.info.Size, vm.ReadWrite)
	}
	return fw.va
}

func (s *System) allocLocal(from, size int) (core.Info, uint64, int) {
	mp, va, err := s.mpt.Alloc(size)
	if err != nil {
		panic(fmt.Sprintf("lrc: alloc %d: %v", size, err))
	}
	for id := len(s.homes); id < s.mpt.NumMinipages(); id++ {
		s.homes = append(s.homes, from)
	}
	return mp.Info(s.Layout), va, s.homes[mp.ID]
}

// Read copies shared memory, faulting as needed.
func (t *Thread) Read(va uint64, buf []byte) {
	if err := t.host.AS.Access(t, va, buf, vm.Read); err != nil {
		panic(err)
	}
}

// Write stores into shared memory, faulting (and twinning) as needed.
func (t *Thread) Write(va uint64, data []byte) {
	if err := t.host.AS.Access(t, va, data, vm.Write); err != nil {
		panic(err)
	}
}

// ReadU32 reads a shared uint32.
func (t *Thread) ReadU32(va uint64) uint32 {
	v, err := t.host.AS.ReadU32(t, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU32 writes a shared uint32.
func (t *Thread) WriteU32(va uint64, v uint32) {
	if err := t.host.AS.WriteU32(t, va, v); err != nil {
		panic(err)
	}
}

// onFault services read and write faults in LRC fashion: fetch from home
// if absent; on write, twin and proceed — never invalidate other hosts.
func (h *Host) onFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("lrc: fault outside app thread at %#x", f.Addr)
	}
	c := h.costs()
	t.p.Sleep(c.AccessFault)
	s := h.sys

	// Identify the minipage (homes and the MPT are replicated read-only
	// state in this simplified realization).
	mp, okk := s.mpt.Lookup(f.Addr)
	if !okk {
		return fmt.Errorf("lrc: %#x outside any minipage", f.Addr)
	}
	info := mp.Info(s.Layout)
	home := s.homes[mp.ID]

	if prot, _ := h.Region.ProtOf(info.Base); prot == vm.NoAccess && home != h.id {
		// Fetch current contents from home.
		s.Stats.Fetches++
		if f.Kind == vm.Read {
			s.Stats.ReadFault++
		}
		fw := &wait{ev: sim.NewEvent(s.Eng)}
		h.send(t.p, home, &pmsg{Type: mFetchReq, From: h.id, Info: info, FW: fw}, 0)
		h.ep.SetBusy(-1)
		fw.ev.Wait(t.p)
		h.ep.SetBusy(+1)
		t.p.Sleep(c.ThreadWake + c.FaultResume)
		h.present[mp.ID] = info
	}

	if f.Kind == vm.Write {
		// Twin and write locally; the diff travels at the next barrier.
		s.Stats.WriteFault++
		if _, dirty := h.twins[mp.ID]; !dirty {
			data, err := h.Region.ReadPriv(info.Base, info.Size)
			if err != nil {
				return err
			}
			h.twins[mp.ID] = twindiff.Twin(data)
			h.dirtyInfo[mp.ID] = info
			s.Stats.TwinsMade++
			t.p.Sleep(twindiff.TwinCost(info.Size))
		}
		t.p.Sleep(c.SetProt)
		return h.Region.Protect(info.Base, info.Size, vm.ReadWrite)
	}
	t.p.Sleep(c.SetProt)
	return h.Region.Protect(info.Base, info.Size, vm.ReadOnly)
}

// Barrier flushes this host's dirty minipages to their homes, then
// rendezvouses with every other thread; on release, non-home copies are
// invalidated so subsequent accesses see the merged state.
func (t *Thread) Barrier() {
	h := t.host
	s := h.sys
	c := h.costs()

	// Flush diffs and wait for the homes' acks.
	dirty := make([]int, 0, len(h.twins))
	for id := range h.twins {
		dirty = append(dirty, id)
	}
	// Deterministic flush order.
	for i := 1; i < len(dirty); i++ {
		for j := i; j > 0 && dirty[j] < dirty[j-1]; j-- {
			dirty[j], dirty[j-1] = dirty[j-1], dirty[j]
		}
	}
	// Compute every diff first (charging the paper's diff-creation cost),
	// then arm the completion latch and send, so an early ack can never
	// release the latch while later diffs are still being encoded.
	type flush struct {
		home int
		info core.Info
		enc  []byte
	}
	var flushes []flush
	for _, id := range dirty {
		info := h.dirtyInfo[id]
		home := s.homes[id]
		cur, err := h.Region.ReadPriv(info.Base, info.Size)
		if err != nil {
			panic(err)
		}
		runs, err := twindiff.Diff(h.twins[id], cur)
		if err != nil {
			panic(err)
		}
		t.p.Sleep(twindiff.CreateCost(info.Size)) // the cost Millipage avoids
		delete(h.twins, id)
		delete(h.dirtyInfo, id)
		if home == h.id {
			continue // writes are already at home
		}
		flushes = append(flushes, flush{home: home, info: info, enc: twindiff.Encode(runs)})
	}
	if len(flushes) > 0 {
		h.flushAwait = len(flushes)
		h.flushDone = sim.NewEvent(s.Eng)
		for _, f := range flushes {
			s.Stats.DiffsSent++
			s.Stats.DiffBytes += uint64(len(f.enc))
			h.send(t.p, f.home, &pmsg{Type: mDiffFlush, From: h.id, Info: f.info, Diff: f.enc}, len(f.enc))
		}
		h.ep.SetBusy(-1)
		h.flushDone.Wait(t.p)
		h.ep.SetBusy(+1)
		t.p.Sleep(c.ThreadWake)
	}

	// Rendezvous.
	t.p.Sleep(c.BarrierBase)
	fw := &wait{ev: sim.NewEvent(s.Eng)}
	h.send(t.p, 0, &pmsg{Type: mBarrierArrive, From: h.id, FW: fw}, 0)
	h.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake)

	// Invalidate non-home copies: the next access refetches merged data.
	for id, info := range h.present {
		t.p.Sleep(c.SetProt)
		if err := h.Region.Protect(info.Base, info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		delete(h.present, id)
	}
}

// onMessage is the LRC server-thread dispatcher.
func (h *Host) onMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	s := h.sys
	c := h.costs()
	switch m.Type {
	case mAllocReq:
		p.Sleep(c.MallocBase)
		info, va, home := s.allocLocal(m.From, m.AllocSize)
		reply := *m
		reply.Type = mAllocReply
		reply.Info = info
		reply.AllocVA = va
		reply.Home = home
		h.send(p, m.From, &reply, 0)

	case mAllocReply:
		m.FW.info = m.Info
		m.FW.va = m.AllocVA
		m.FW.home = m.Home
		m.FW.ev.Set()

	case mFetchReq:
		// Home ships its current copy (always readable at home via the
		// privileged view).
		data, err := h.Region.ReadPriv(m.Info.Base, m.Info.Size)
		if err != nil {
			panic(err)
		}
		reply := *m
		reply.Type = mFetchReply
		h.send(p, m.From, &reply, 0)
		h.ep.Send(p, m.From, &fastmsg.Message{Size: len(data), Data: data, Payload: &pmsg{Type: mFetchData}})

	case mFetchReply:
		h.pendingHdr[fm.From] = m

	case mFetchData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic("lrc: data without header")
		}
		delete(h.pendingHdr, fm.From)
		if err := h.Region.WritePriv(hdr.Info.Base, fm.Data); err != nil {
			panic(err)
		}
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
		hdr.FW.info = hdr.Info
		hdr.FW.ev.Set()

	case mDiffFlush:
		runs, err := twindiff.Decode(m.Diff)
		if err != nil {
			panic(err)
		}
		cur, err := h.Region.ReadPriv(m.Info.Base, m.Info.Size)
		if err != nil {
			panic(err)
		}
		if err := twindiff.Apply(cur, runs); err != nil {
			panic(err)
		}
		if err := h.Region.WritePriv(m.Info.Base, cur); err != nil {
			panic(err)
		}
		p.Sleep(twindiff.ApplyCost(len(m.Diff)))
		h.send(p, m.From, &pmsg{Type: mDiffAck, From: h.id, Info: m.Info}, 0)

	case mDiffAck:
		if h.flushAwait--; h.flushAwait == 0 {
			h.flushDone.Set()
		}

	case mBarrierArrive:
		if h.id != 0 {
			panic("lrc: barrier arrive at non-coordinator")
		}
		s.barrierArrivals = append(s.barrierArrivals, m)
		if len(s.barrierArrivals) < len(s.hosts) {
			return
		}
		arrivals := s.barrierArrivals
		s.barrierArrivals = nil
		s.Stats.Barriers++
		for _, a := range arrivals {
			rel := pmsg{Type: mBarrierRelease, FW: a.FW}
			h.send(p, a.From, &rel, 0)
		}

	case mBarrierRelease:
		m.FW.ev.Set()

	default:
		panic(fmt.Sprintf("lrc: unexpected message %d", int(m.Type)))
	}
}
