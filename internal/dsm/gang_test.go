package dsm

import (
	"testing"

	"millipage/internal/sim"
	"millipage/internal/vm"
)

func TestGangFetchBringsAllMinipages(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 18, Views: 8})
	const n = 12
	vas := make([]uint64, n)
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(256)
				th.WriteU32(vas[i], uint32(i)*3)
			}
		}
		th.Barrier()
		if th.Host() == 1 {
			spans := make([]Span, n)
			for i := range spans {
				spans[i] = Span{Addr: vas[i], Size: 256}
			}
			th.GangFetch(spans)
			// All minipages readable locally: zero read faults follow.
			for i := range vas {
				if got := th.ReadU32(vas[i]); got != uint32(i)*3 {
					t.Errorf("minipage %d = %d", i, got)
				}
				if prot, _ := th.host.Region.ProtOf(vas[i]); prot != vm.ReadOnly {
					t.Errorf("minipage %d prot = %v after gang fetch", i, prot)
				}
			}
			if rf := th.host.AS.ReadFaults; rf != 0 {
				t.Errorf("read faults after gang fetch = %d, want 0", rf)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGangFetchOverlapsLatency(t *testing.T) {
	// Fetching N minipages as a gang must be much faster than N
	// dependent faults: the requests overlap in the network and at the
	// owner.
	const n = 16
	run := func(gang bool) sim.Duration {
		s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 18, Views: 8, Seed: 3})
		vas := make([]uint64, n)
		var spent sim.Duration
		err := s.Run(func(th *Thread) {
			if th.Host() == 0 {
				for i := range vas {
					vas[i] = th.Malloc(256)
					th.WriteU32(vas[i], 1)
				}
			}
			th.Barrier()
			if th.Host() == 1 {
				start := th.Now()
				if gang {
					spans := make([]Span, n)
					for i := range spans {
						spans[i] = Span{Addr: vas[i], Size: 256}
					}
					th.GangFetch(spans)
				}
				for i := range vas {
					_ = th.ReadU32(vas[i])
				}
				spent = th.Now().Sub(start)
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return spent
	}
	sequential := run(false)
	gang := run(true)
	if gang >= sequential {
		t.Fatalf("gang fetch (%v) not faster than sequential faults (%v)", gang, sequential)
	}
	if gang > sequential/2 {
		t.Logf("note: gang=%v sequential=%v (expected a larger gap)", gang, sequential)
	}
}

func TestGangFetchSkipsPresent(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 18, Views: 4})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(128)
			th.WriteU32(va, 9)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va) // already fetched
			before := th.Stats.Prefetches
			th.GangFetch([]Span{{Addr: va, Size: 128}})
			if th.Stats.Prefetches != before {
				t.Error("gang fetch re-requested a readable minipage")
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportLatencyDecomposition(t *testing.T) {
	// The paper's Section 4.3.1: with busy hosts, the average fault time
	// is dominated by service-thread delay. Build a busy two-host
	// workload and check the report exposes sensible decomposition.
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 18, Views: 4, Seed: 11})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(128)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		if th.Host() == 0 {
			th.Compute(30 * sim.Millisecond) // stays busy: sweeper-bound service
		} else {
			for i := 0; i < 12; i++ {
				th.WriteU32(va, th.ReadU32(va)+1)
				th.Compute(2 * sim.Millisecond)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var ft sim.Duration
	var n uint64
	for _, th := range s.Threads() {
		ft += th.Stats.ReadFaultTime + th.Stats.WriteFaultTime
		n += th.Stats.ReadFaults + th.Stats.WriteFaults
	}
	if n == 0 {
		t.Fatal("no faults")
	}
	avg := ft / sim.Duration(n)
	// The paper reports ~750us averages under load; the model should land
	// in the same order of magnitude (hundreds of us to ~2ms).
	if avg < 200*sim.Microsecond || avg > 3*sim.Millisecond {
		t.Fatalf("avg fault time = %v, want hundreds of us (paper: ~750us)", avg)
	}
}
