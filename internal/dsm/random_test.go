package dsm

import (
	"fmt"
	"math/rand"
	"testing"

	"millipage/internal/sim"
)

// TestRandomDRFPrograms generates random data-race-free programs and
// checks that the DSM executes them to the same final memory state as
// direct computation predicts, for several cluster sizes and seeds.
//
// Program shape: V variables of random sizes, R rounds. In round r,
// variable v is written (with a value derived from (v, r)) only by the
// thread (v + r) mod T; all threads read a random subset of variables
// every round. Rounds are barrier-separated, so the program is DRF and
// the final state is independent of scheduling — any divergence is a
// coherence bug.
func TestRandomDRFPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, hosts := range []int{2, 3, 5, 8} {
			seed, hosts := seed, hosts
			t.Run(fmt.Sprintf("seed=%d/hosts=%d", seed, hosts), func(t *testing.T) {
				runRandomProgram(t, seed, hosts)
			})
		}
	}
}

func runRandomProgram(t *testing.T, seed int64, hosts int) {
	t.Helper()
	prg := rand.New(rand.NewSource(seed * 7))
	nVars := prg.Intn(24) + 4
	rounds := prg.Intn(4) + 2
	sizes := make([]int, nVars)
	for v := range sizes {
		sizes[v] = (prg.Intn(64) + 1) * 4 // 4..256 bytes
	}
	// Random per-round read sets, fixed up front so every cluster size
	// runs the same program.
	readSet := make([][][]int, rounds)
	for r := range readSet {
		readSet[r] = make([][]int, hosts)
		for h := range readSet[r] {
			n := prg.Intn(nVars)
			for i := 0; i < n; i++ {
				readSet[r][h] = append(readSet[r][h], prg.Intn(nVars))
			}
		}
	}

	val := func(v, r int) uint32 { return uint32(v*1000003 + r*10007 + 13) }

	s := newSys(t, Options{Hosts: hosts, SharedSize: 1 << 20, Views: 16, Seed: seed})
	vas := make([]uint64, nVars)
	var finalErr error
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for v := range vas {
				vas[v] = th.Malloc(sizes[v])
			}
		}
		th.Barrier()
		for r := 0; r < rounds; r++ {
			for v := 0; v < nVars; v++ {
				if (v+r)%th.NumThreads() == th.ID {
					th.WriteU32(vas[v], val(v, r))
					// Also touch the variable's last word (when distinct)
					// so multi-word minipages move in full.
					if sizes[v] >= 8 {
						th.WriteU32(vas[v]+uint64(sizes[v]-4), ^val(v, r))
					}
				}
			}
			for _, v := range readSet[r][th.Host()] {
				_ = th.ReadU32(vas[v])
			}
			th.Compute(sim.Duration(th.ID) * 20 * sim.Microsecond)
			th.Barrier()
		}
		// Thread 0 verifies the final state, then lingers so the last
		// acks drain before the engine stops (the quiescence check below
		// would otherwise see the verification's own open transactions).
		if th.ID == 0 {
			defer th.Compute(10 * sim.Millisecond)
			for v := 0; v < nVars; v++ {
				want := val(v, rounds-1)
				if got := th.ReadU32(vas[v]); got != want {
					finalErr = fmt.Errorf("var %d = %d, want %d", v, got, want)
					return
				}
				if sizes[v] >= 8 {
					if got := th.ReadU32(vas[v] + uint64(sizes[v]-4)); got != ^want {
						finalErr = fmt.Errorf("var %d tail = %d, want %d", v, got, ^want)
						return
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalErr != nil {
		t.Fatal(finalErr)
	}
	// Post-run protocol invariants: quiesced directory, SW/MR protections.
	for id, e := range s.Manager().Directory() {
		if e.Busy() || e.queue.Len() != 0 {
			t.Fatalf("minipage %d not quiesced", id)
		}
		mp, _ := s.Manager().MPT().ByID(id)
		info := mp.Info(s.Layout)
		writable, readable := 0, 0
		for i := 0; i < hosts; i++ {
			prot, err := s.Host(i).Region.ProtOf(info.Base)
			if err != nil {
				t.Fatal(err)
			}
			switch prot {
			case 2: // vm.ReadWrite
				writable++
			case 1: // vm.ReadOnly
				readable++
			}
		}
		if writable > 1 || (writable == 1 && readable > 0) {
			t.Fatalf("minipage %d violates SW/MR: %d writable, %d readable", id, writable, readable)
		}
	}
}
