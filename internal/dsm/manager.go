package dsm

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/hostset"
	"millipage/internal/core"
	"millipage/internal/sim"
)

// dirEntry is the manager's directory record for one minipage: which
// hosts hold copies, who the preferred source is, and the transaction
// state. Requests arriving while a transaction is open are queued here —
// and only here: non-manager hosts never queue (Section 3.3).
type dirEntry struct {
	copyset hostset.Set // hosts holding a valid copy
	owner   int    // preferred replica: last writer (or allocator)

	busy  bool
	queue cluster.FIFO[*pmsg]

	// In-flight write invalidation.
	pendingWrite *pmsg
	invAwait     int
	upgrade      bool // pending write is an upgrade (requester already has the bytes)
	writeSrc     int  // source replica once invalidations finish

	// In-flight push.
	pushAwait int

	// Replicated-management state (Options.Replication; zero otherwise).
	// openTID/openTxn/openMsg identify the open transaction so late or
	// duplicate acks can be matched exactly; preCopyset/preOwner snapshot
	// the entry at admission for the intent mirror and state transfers;
	// invMask/pushMask track which hosts still owe a reply, so replies
	// forwarded from a deposed primary cannot double-count.
	openTID    int
	openTxn    uint64
	openMsg    pmsg
	preCopyset hostset.Set
	preOwner   int
	invMask    hostset.Set
	pushMask   hostset.Set

	Competing uint64 // requests that found this entry busy (Figure 7's metric)
}

// ManagerStats aggregates the manager's protocol activity.
type ManagerStats struct {
	ReadReqs          uint64
	WriteReqs         uint64
	Invalidations     uint64 // invalidate requests issued
	CompetingRequests uint64 // requests queued behind an open transaction
	BarrierEpisodes   uint64
	LockAcquisitions  uint64
	Allocs            uint64
	Pushes            uint64
}

// manager is one host's directory shard: the transaction state for every
// minipage homed at that host. Its handlers run in the host's server
// thread; the job is essentially "to mark and forward requests to hosts".
// Host 0's instance is additionally the allocation authority (the MPT
// grows only there) and runs the centralized barrier and lock services.
// Under Central management host 0 is home to every minipage and the
// other shards stay empty.
type manager struct {
	sys *System
	me  int // the host this shard runs on

	// dir is sparse: index = minipage id; nil for minipages homed
	// elsewhere (or whose DIR_INIT has not arrived yet).
	dir []*dirEntry

	// waitInit holds requests that reached this home before the
	// allocation authority's DIR_INIT seeded the shard entry (message
	// ordering across sender pairs is not guaranteed).
	waitInit map[int][]*pmsg

	// dirInited (allocation authority only) counts minipages whose
	// directory entries have been placed, locally or via DIR_INIT.
	dirInited int

	// Retry dedup, keyed by requesting thread id (transaction numbers are
	// monotone per thread). done is the highest transaction this shard has
	// seen acked; inflight the highest it has admitted. A request whose
	// Txn is at or below either is a duplicate — created by a retry timer
	// or crash recovery — and is dropped, never redone: redoing a write
	// transaction would re-ship bytes over the requester's post-install
	// stores. Both maps move only under fault injection (Txn == 0 and
	// the maps stay empty on the clean path).
	done     map[int]uint64
	inflight map[int]uint64

	// DupRequests counts dropped duplicates (chaos-test observability).
	DupRequests uint64

	// deArena slab-allocates directory entries: one entry per minipage
	// adds up to tens of thousands of records per run.
	deArena []dirEntry

	barrier cluster.BarrierService[*pmsg]
	locks   *cluster.LockService[*pmsg]

	Stats ManagerStats
}

func newManager(s *System, me int) *manager {
	return &manager{
		sys: s, me: me,
		waitInit: make(map[int][]*pmsg),
		locks:    cluster.NewLockService[*pmsg](),
		done:     make(map[int]uint64),
		inflight: make(map[int]uint64),
	}
}

// MPT exposes the minipage table (for statistics and tests).
func (mg *manager) MPT() *core.MPT { return mg.sys.mpt }

// Directory returns the shard's directory entries, indexed by minipage
// id. Entries homed at other hosts are nil (under Central management,
// host 0's shard has every entry).
func (mg *manager) Directory() []*dirEntry { return mg.dir }

// Copyset returns the copyset and owner of minipage id.
func (e *dirEntry) Copyset() (hostset.Set, int) { return e.copyset, e.owner }

// Busy reports whether a transaction is open on the entry.
func (e *dirEntry) Busy() bool { return e.busy }

func (mg *manager) host() *Host  { return mg.sys.hosts[mg.me] }
func (mg *manager) costs() Costs { return mg.sys.Opt.Costs }
func (mg *manager) entry(id int) *dirEntry {
	if e := mg.entryOrNil(id); e != nil {
		return e
	}
	panic(fmt.Sprintf("dsm: host %d has no directory entry for minipage %d", mg.me, id))
}

func (mg *manager) entryOrNil(id int) *dirEntry {
	if id < 0 || id >= len(mg.dir) {
		return nil
	}
	return mg.dir[id]
}

func (mg *manager) setEntry(id int, e *dirEntry) {
	for len(mg.dir) <= id {
		mg.dir = append(mg.dir, nil)
	}
	mg.dir[id] = e
}

// newEntry carves a directory entry out of the shard's slab arena.
func (mg *manager) newEntry(copyset hostset.Set, owner int) *dirEntry {
	if len(mg.deArena) == 0 {
		mg.deArena = make([]dirEntry, 256)
	}
	e := &mg.deArena[0]
	mg.deArena = mg.deArena[1:]
	e.copyset = copyset
	e.owner = owner
	return e
}

// dropDup reports whether m is a duplicate of a transaction this shard
// has already admitted or completed, recording fresh admissions as it
// goes. A requeued message was admitted before it was queued, so it
// skips the admission check — but not the completion check: if a twin
// of a queued copy already ran to completion, re-dispatching this copy
// would reopen a closed transaction against stale directory state.
func (mg *manager) dropDup(m *pmsg) bool {
	if m.Txn == 0 {
		return false
	}
	if mg.done[m.TID] >= m.Txn && !m.Redrive {
		mg.DupRequests++
		return true
	}
	if m.Requeued {
		return false
	}
	if mg.inflight[m.TID] >= m.Txn && !m.Redrive {
		mg.DupRequests++
		return true
	}
	if mg.inflight[m.TID] < m.Txn {
		mg.inflight[m.TID] = m.Txn
	}
	return false
}

// dispatch routes one manager-bound message.
func (mg *manager) dispatch(p *sim.Proc, m *pmsg) {
	switch m.Type {
	case mReadReq:
		if mg.dropDup(m) {
			return
		}
		mg.handleRead(p, m)
	case mWriteReq:
		if mg.dropDup(m) {
			return
		}
		mg.handleWrite(p, m)
	case mAck:
		mg.handleAck(p, m)
	case mInvalidateReply:
		mg.handleInvReply(p, m)
	case mAllocReq:
		mg.handleAlloc(p, m)
	case mBarrierArrive:
		mg.handleBarrier(p, m)
	case mLockReq:
		mg.handleLock(p, m)
	case mUnlock:
		mg.handleUnlock(p, m)
	case mPushReq:
		mg.handlePush(p, m)
	case mPushAck:
		mg.handlePushAck(p, m)
	case mDirInit:
		mg.handleDirInit(p, m)
	default:
		panic(fmt.Sprintf("dsm: manager got %v", m.Type))
	}
}

// resolve performs the directory side of Figure 3's Translate step and
// locates the shard entry. Under Central management the manager always
// does the MPT lookup itself (the request carries only the fault
// address); under HomeBased management the requester has already
// resolved the address against its MPT replica and filled m.Info, so
// the home only fetches its entry. ok is false when the request had to
// be parked until the allocation authority's DIR_INIT arrives.
func (mg *manager) resolve(p *sim.Proc, m *pmsg) (e *dirEntry, ok bool) {
	if mg.sys.Opt.Management == Central || m.Info.Size == 0 {
		p.Sleep(mg.costs().MPTLookup)
		mp, found := mg.sys.mpt.Lookup(m.Addr)
		if !found {
			panic(fmt.Sprintf("dsm: access violation: %#x is not in any minipage", m.Addr))
		}
		m.Info = mp.Info(mg.sys.Layout)
	}
	id := m.Info.ID
	if home := mg.sys.homeOf(id); home != mg.me && mg.sys.replAt(mg.me) == nil {
		// Under replication a promoted backup legitimately serves shards
		// homed elsewhere; dispatchDir already gated on serving state.
		panic(fmt.Sprintf("dsm: host %d got request for minipage %d homed at host %d", mg.me, id, home))
	}
	if e := mg.entryOrNil(id); e != nil {
		return e, true
	}
	if mg.sys.Opt.Management == Central {
		panic(fmt.Sprintf("dsm: no directory entry for minipage %d", id))
	}
	mg.waitInit[id] = append(mg.waitInit[id], m)
	return nil, false
}

// handleDirInit seeds the shard entry for a freshly allocated minipage
// (copyset and ownership start at the allocating host) and replays any
// requests that raced ahead of the init.
func (mg *manager) handleDirInit(p *sim.Proc, m *pmsg) {
	id := m.Info.ID
	if home := mg.sys.homeOf(id); home != mg.me {
		panic(fmt.Sprintf("dsm: host %d got DIR_INIT for minipage %d homed at host %d", mg.me, id, home))
	}
	if mg.entryOrNil(id) != nil {
		panic(fmt.Sprintf("dsm: duplicate DIR_INIT for minipage %d", id))
	}
	mg.setEntry(id, mg.newEntry(hostset.One(m.From), m.From))
	mg.host().recyclePM(m) // the DIR_INIT ends here
	if q := mg.waitInit[id]; len(q) > 0 {
		delete(mg.waitInit, id)
		for _, held := range q {
			held.Requeued = true
			mg.dispatch(p, held)
		}
	}
}

// enqueue records a competing request (Figure 7 counts these).
func (mg *manager) enqueue(e *dirEntry, m *pmsg) {
	e.queue.Push(m)
	e.Competing++
	mg.Stats.CompetingRequests++
}

// closeTxn ends the open transaction on e and dispatches queued competing
// requests until one reopens the entry (or the queue drains). The loop
// matters under fault injection: a queued request whose dispatch ends up
// dropped or deflected must not strand the requests behind it.
func (mg *manager) closeTxn(p *sim.Proc, e *dirEntry) {
	e.busy = false
	for !e.busy {
		next, ok := e.queue.Pop()
		if !ok {
			return
		}
		next.Requeued = true
		mg.dispatch(p, next)
	}
}

// handleRead is Figure 3's "Manager: Handle Read Request": translate,
// pick a replica, add the requester to the copyset, and forward.
func (mg *manager) handleRead(p *sim.Proc, m *pmsg) {
	if !m.Requeued {
		mg.Stats.ReadReqs++
	}
	e, ok := mg.resolve(p, m)
	if !ok {
		return
	}
	if e.busy {
		mg.enqueue(e, m)
		return
	}
	e.busy = true
	if mg.sys.replAt(mg.me) != nil {
		mg.commitIntent(p, e, m, func(p *sim.Proc) { mg.readEffect(p, e, m) })
		return
	}
	mg.readEffect(p, e, m)
}

// readEffect is the directory effect of an admitted read: pick a source,
// extend the copyset, forward. Under replication it runs only after the
// admission has been mirrored to the backup.
func (mg *manager) readEffect(p *sim.Proc, e *dirEntry, m *pmsg) {
	src := mg.findReplica(e)
	e.copyset = e.copyset.With(m.From)
	fwd := mg.host().allocPM()
	*fwd = *m
	fwd.Type = mReadFwd
	mg.host().Send(p, src, fwd)
}

// findReplica picks the host to source the minipage from: the owner if it
// still holds a copy, otherwise the lowest-numbered replica.
func (mg *manager) findReplica(e *dirEntry) int {
	if e.copyset.Empty() {
		panic("dsm: findReplica on empty copyset")
	}
	if e.copyset.Has(e.owner) {
		return e.owner
	}
	return e.copyset.First()
}

// handleWrite is "Manager: Handle Write Request": invalidate every other
// replica, then have the remaining one ship the minipage (or grant an
// upgrade if the requester already holds the only bytes).
func (mg *manager) handleWrite(p *sim.Proc, m *pmsg) {
	if !m.Requeued {
		mg.Stats.WriteReqs++
	}
	e, ok := mg.resolve(p, m)
	if !ok {
		return
	}
	if e.busy {
		mg.enqueue(e, m)
		return
	}
	e.busy = true
	if mg.sys.replAt(mg.me) != nil {
		mg.commitIntent(p, e, m, func(p *sim.Proc) { mg.writeEffect(p, e, m) })
		return
	}
	mg.writeEffect(p, e, m)
}

// writeEffect is the directory effect of an admitted write; under
// replication it runs only after the admission has been mirrored.
func (mg *manager) writeEffect(p *sim.Proc, e *dirEntry, m *pmsg) {
	others := e.copyset.Without(m.From)

	if others.Empty() {
		// Requester is the sole holder: pure protection upgrade.
		if e.copyset != hostset.One(m.From) {
			panic(fmt.Sprintf("dsm: write fault on minipage %d with empty copyset", m.Info.ID))
		}
		e.owner = m.From
		grant := mg.host().allocPM()
		*grant = *m
		grant.Type = mUpgradeGrant
		mg.host().Send(p, m.From, grant)
		return
	}

	if e.copyset.Has(m.From) {
		// Upgrade: the requester has the bytes; invalidate everyone else.
		e.pendingWrite = m
		e.upgrade = true
		e.invAwait = others.Count()
		e.invMask = others
		mg.sendInvalidates(p, m, others)
		return
	}

	// The requester has nothing: pick a source, invalidate the rest.
	src := e.owner
	if !e.copyset.Has(src) {
		src = others.First()
	}
	invTargets := others.Without(src)
	if invTargets.Empty() {
		mg.forwardWrite(p, e, m, src)
		return
	}
	e.pendingWrite = m
	e.upgrade = false
	e.writeSrc = src
	e.invAwait = invTargets.Count()
	e.invMask = invTargets
	mg.sendInvalidates(p, m, invTargets)
}

// sendInvalidates issues INVALIDATE_REQUESTs to every host in mask.
func (mg *manager) sendInvalidates(p *sim.Proc, m *pmsg, mask hostset.Set) {
	for h := 0; h < mg.sys.NumHosts(); h++ {
		if !mask.Has(h) {
			continue
		}
		mg.Stats.Invalidations++
		inv := mg.host().allocPM()
		// TID/Txn (zero on the clean path) are echoed in the reply so a
		// replicated home can match it against the open transaction.
		*inv = pmsg{Type: mInvalidateReq, From: m.From, Info: m.Info, TID: m.TID, Txn: m.Txn}
		mg.host().Send(p, h, inv)
	}
}

// forwardWrite sends the translated write request to the chosen source,
// transferring ownership to the requester.
func (mg *manager) forwardWrite(p *sim.Proc, e *dirEntry, m *pmsg, src int) {
	e.copyset = hostset.One(m.From)
	e.owner = m.From
	fwd := mg.host().allocPM()
	*fwd = *m
	fwd.Type = mWriteFwd
	mg.host().Send(p, src, fwd)
}

// handleInvReply is "Manager: Handle Invalidate Reply": once every
// invalidation is confirmed, release the pending write.
func (mg *manager) handleInvReply(p *sim.Proc, m *pmsg) {
	if rp := mg.sys.replAt(mg.me); rp != nil {
		// A reply forwarded from a deposed primary (or re-delivered after a
		// re-drive) must not double-count: accept one reply per host per
		// open invalidation round, matched to the open transaction.
		e := mg.entryOrNil(m.Info.ID)
		if e == nil || e.pendingWrite == nil || e.invAwait == 0 ||
			!e.invMask.Has(m.From) || m.TID != e.openTID || m.Txn != e.openTxn {
			return
		}
		e.invMask = e.invMask.Without(m.From)
	}
	e := mg.entry(m.Info.ID)
	// The replying host no longer holds a copy.
	e.copyset = e.copyset.Without(m.From)
	mg.host().recyclePM(m) // the invalidate reply ends here
	if e.invAwait--; e.invAwait > 0 {
		return
	}
	w := e.pendingWrite
	e.pendingWrite = nil
	if e.upgrade {
		e.upgrade = false
		e.copyset = hostset.One(w.From)
		e.owner = w.From
		grant := mg.host().allocPM()
		*grant = *w
		grant.Type = mUpgradeGrant
		mg.host().Send(p, w.From, grant)
		return
	}
	mg.forwardWrite(p, e, w, e.writeSrc)
}

// handleAck closes the transaction the woken faulting thread confirms,
// records it as done (so late retries of it are dropped, not replayed),
// and serves the next competing request.
func (mg *manager) handleAck(p *sim.Proc, m *pmsg) {
	if m.Txn != 0 && m.Txn > mg.done[m.TID] {
		mg.done[m.TID] = m.Txn
	}
	if mg.sys.replAt(mg.me) != nil {
		// Replicated path: duplicate re-acks (a requester dropping the
		// re-driven twin of a completed transaction) and late acks
		// forwarded across a view change must close only the transaction
		// they belong to. Unstamped transactions (Txn 0: the fault-free
		// clean path, where delivery is FIFO and duplicates cannot arise)
		// carry the thread id in TID but open with TID 0, so they match on
		// Txn alone.
		e := mg.entryOrNil(m.Info.ID)
		if e == nil || !e.busy {
			return
		}
		unstamped := m.Txn == 0 && e.openTxn == 0
		if !unstamped && (m.TID != e.openTID || m.Txn != e.openTxn) {
			return
		}
		mg.commitClose(p, e, m.Info.ID, m.TID, m.Txn)
		return
	}
	e := mg.entry(m.Info.ID)
	mg.host().recyclePM(m) // the ack ends here
	mg.closeTxn(p, e)
}

// allocLocal carves minipage(s) for host `from` and creates directory
// entries it owns — locally when this host is the minipage's home,
// via a DIR_INIT message to the home otherwise. It runs only on host 0
// (the allocation authority: the MPT grows nowhere else) and is shared
// by the remote allocation path and the manager host's local malloc
// (which, as in the real system, is an in-process call, not a message).
func (mg *manager) allocLocal(p *sim.Proc, from, size int) (core.Info, uint64, bool) {
	if mg.me != managerHost {
		panic(fmt.Sprintf("dsm: host %d is not the allocation authority", mg.me))
	}
	mg.Stats.Allocs++
	mpt := mg.sys.mpt
	mp, va, err := mpt.Alloc(size)
	if err != nil {
		panic(fmt.Sprintf("dsm: allocation of %d bytes failed: %v", size, err))
	}
	firstNew := mg.dirInited
	rp := mg.sys.replAt(mg.me)
	for id := firstNew; id < mpt.NumMinipages(); id++ {
		if rp != nil {
			// Replicated management: seed both the shard's current primary
			// and its backup (per the authoritative view service on this
			// host), so neither a failover nor a lost seed can stall the
			// minipage until restart.
			mg.seedRepl(p, rp, id, from)
			continue
		}
		if home := mg.sys.homeOf(id); home == mg.me {
			mg.setEntry(id, mg.newEntry(hostset.One(from), from))
		} else {
			nmp, _ := mpt.ByID(id)
			init := mg.host().allocPM()
			*init = pmsg{Type: mDirInit, From: from, Info: nmp.Info(mg.sys.Layout)}
			mg.host().Send(p, home, init)
		}
	}
	mg.dirInited = mpt.NumMinipages()

	// Does the requester own the minipage (and so get it writable with
	// no fault)? Fresh minipages: always — nobody else can hold a copy
	// yet. Chunk-extended minipages whose directory lives here: ask the
	// live entry, exactly as the central manager does. Chunk-extended
	// minipages homed remotely: conservatively no — the first write
	// faults to the home instead, which keeps SW/MR without another
	// round-trip from the allocation path.
	owner := mp.ID >= firstNew
	if !owner {
		if rp != nil {
			if _, ok := rp.serving[mg.sys.homeOf(mp.ID)]; ok {
				owner = mg.entry(mp.ID).owner == from
			}
		} else if mg.sys.homeOf(mp.ID) == mg.me {
			owner = mg.entry(mp.ID).owner == from
		}
	}
	return mp.Info(mg.sys.Layout), va, owner
}

// handleAlloc services the malloc-like API for non-manager hosts.
func (mg *manager) handleAlloc(p *sim.Proc, m *pmsg) {
	p.Sleep(mg.costs().MallocBase)
	info, va, owner := mg.allocLocal(p, m.From, m.AllocSize)
	reply := mg.host().allocPM()
	*reply = *m
	reply.Type = mAllocReply
	reply.Info = info
	reply.AllocVA = va
	reply.Owner = owner
	mg.host().Send(p, m.From, reply)
	mg.host().recyclePM(m) // the alloc request ends here
}

// handleBarrier collects arrivals and releases everyone once the last
// thread arrives.
func (mg *manager) handleBarrier(p *sim.Proc, m *pmsg) {
	arrivals, done := mg.barrier.Arrive(m, mg.sys.rt.TotalThreads())
	if !done {
		return
	}
	mg.Stats.BarrierEpisodes++
	for _, a := range arrivals {
		rel := mg.host().allocPM()
		*rel = pmsg{Type: mBarrierRelease, From: managerHost, Gen: mg.barrier.Gen, FW: a.FW}
		mg.host().Send(p, a.From, rel)
		mg.host().recyclePM(a) // the arrival ends here
	}
}

// handleLock grants or queues a lock request (FIFO).
func (mg *manager) handleLock(p *sim.Proc, m *pmsg) {
	if !mg.locks.Acquire(m.LockID, m) {
		return // queued: the service holds m until the unlock pops it
	}
	mg.Stats.LockAcquisitions++
	grant := mg.host().allocPM()
	*grant = pmsg{Type: mLockGrant, From: managerHost, LockID: m.LockID, FW: m.FW}
	mg.host().Send(p, m.From, grant)
	mg.host().recyclePM(m) // immediate grant: the request ends here
}

// handleUnlock passes the lock to the next waiter or frees it.
func (mg *manager) handleUnlock(p *sim.Proc, m *pmsg) {
	next, granted, wasHeld := mg.locks.Release(m.LockID)
	if !wasHeld {
		panic(fmt.Sprintf("dsm: unlock of free lock %d", m.LockID))
	}
	mg.host().recyclePM(m) // the unlock ends here
	if !granted {
		return
	}
	mg.Stats.LockAcquisitions++
	grant := mg.host().allocPM()
	*grant = pmsg{Type: mLockGrant, From: managerHost, LockID: next.LockID, FW: next.FW}
	mg.host().Send(p, next.From, grant)
	mg.host().recyclePM(next) // the queued request ends here
}

// handlePush opens a push transaction: order the owner to replicate the
// minipage to all hosts.
func (mg *manager) handlePush(p *sim.Proc, m *pmsg) {
	if !m.Requeued {
		mg.Stats.Pushes++
	}
	e, ok := mg.resolve(p, m)
	if !ok {
		return
	}
	if e.busy {
		mg.enqueue(e, m)
		return
	}
	if mg.sys.NumHosts() == 1 {
		mg.host().recyclePM(m)
		return // nothing to replicate to
	}
	e.busy = true
	if mg.sys.replAt(mg.me) != nil {
		mg.commitIntent(p, e, m, func(p *sim.Proc) { mg.pushEffect(p, e, m) })
		return
	}
	mg.pushEffect(p, e, m)
}

// pushEffect is the directory effect of an admitted push; under
// replication it runs only after the admission has been mirrored.
func (mg *manager) pushEffect(p *sim.Proc, e *dirEntry, m *pmsg) {
	e.pushAwait = mg.sys.NumHosts() - 1
	src := mg.findReplica(e)
	if mg.sys.replAt(mg.me) != nil {
		// Expect one ack from every host but the pusher; acks forwarded
		// from a deposed primary must not double-count (see handlePushAck).
		var mask hostset.Set
		for h := 0; h < mg.sys.NumHosts(); h++ {
			if h != src {
				mask = mask.With(h)
			}
		}
		e.pushMask = mask
	}
	order := mg.host().allocPM()
	*order = *m
	order.Type = mPushOrder
	mg.host().Send(p, src, order)
	mg.host().recyclePM(m) // the push request ends here
}

// handlePushAck completes the push once every other host holds a copy.
func (mg *manager) handlePushAck(p *sim.Proc, m *pmsg) {
	if rp := mg.sys.replAt(mg.me); rp != nil {
		e := mg.entryOrNil(m.Info.ID)
		if e == nil || !e.busy || e.pushAwait == 0 ||
			!e.pushMask.Has(m.From) || m.TID != e.openTID || m.Txn != e.openTxn {
			return
		}
		e.pushMask = e.pushMask.Without(m.From)
		e.copyset = e.copyset.With(m.From)
		if e.pushAwait--; e.pushAwait > 0 {
			return
		}
		mg.commitClose(p, e, m.Info.ID, e.openTID, e.openTxn)
		return
	}
	e := mg.entry(m.Info.ID)
	e.copyset = e.copyset.With(m.From)
	mg.host().recyclePM(m) // the push ack ends here
	if e.pushAwait--; e.pushAwait > 0 {
		return
	}
	mg.closeTxn(p, e)
}
