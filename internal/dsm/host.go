package dsm

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// faultWait is the per-transaction rendezvous between a requesting thread
// and its host's DSM server thread — the shared substrate record (the
// event the thread blocks on, plus the translation info the reply carries
// back, which the thread needs for its ack message).
type faultWait = cluster.Wait

// requestRetryBase is the initial re-send timeout for fault-path manager
// requests under fault injection: comfortably above a clean round trip
// plus a long sweeper tick, so retries only fire when something was
// actually lost. BlockRetry doubles it up to its own cap.
const requestRetryBase = 10 * sim.Millisecond

// Host is one Millipage process: the substrate host (address space, FM
// endpoint whose service thread runs the protocol handlers) plus the
// MultiView region and the protocol's per-host state.
type Host struct {
	*cluster.Host
	sys    *System
	pool   *hostPool // the host's shard's freelists (shared on shard 0)
	Region *core.Region

	// pendingHdr pairs a reply header with the mData message that follows
	// it on the same FIFO channel, indexed by source host id.
	pendingHdr []*pmsg

	// prefetchSpans tracks in-flight prefetch requests so a fault into a
	// prefetched region is accounted as prefetch wait, not a read fault.
	prefetchSpans []span

	Stats HostStats
}

// allocPM returns a protocol header for a message whose consumer will
// recycle it. The caller must fully initialize the result (*m = pmsg{...});
// pooled headers are returned dirty. The freelists belong to the host's
// calendar shard (every host shares one on the sequential engine; each
// host owns its own under the parallel engine) and stay empty under
// fault injection: retries, duplicate drops and late replies can
// reference a header after its transaction closed, so the faulty path
// keeps fresh allocations and its existing lifetime rules.
func (h *Host) allocPM() *pmsg {
	pool := h.pool
	if n := len(pool.freePM); n > 0 && !h.sys.rt.Faulty() {
		m := pool.freePM[n-1]
		pool.freePM = pool.freePM[:n-1]
		return m
	}
	return &pmsg{}
}

// recyclePM returns a fully consumed pooled header to the freelist. Only
// headers obtained from allocPM may be recycled — never a thread's fault
// request (those live in the thread's own slot) and never dataMarker.
func (h *Host) recyclePM(m *pmsg) {
	if h.sys.rt.Faulty() {
		return
	}
	h.pool.freePM = append(h.pool.freePM, m)
}

// allocBuf returns a byte buffer of length n for a minipage snapshot
// that travels on a data message; the receiver recycles it after
// installing the bytes.
func (h *Host) allocBuf(n int) []byte {
	pool := h.pool
	if !h.sys.rt.Faulty() {
		for i := len(pool.freeBuf) - 1; i >= 0; i-- {
			if cap(pool.freeBuf[i]) >= n {
				b := pool.freeBuf[i][:n]
				pool.freeBuf[i] = pool.freeBuf[len(pool.freeBuf)-1]
				pool.freeBuf = pool.freeBuf[:len(pool.freeBuf)-1]
				return b
			}
		}
	}
	return make([]byte, n)
}

// recycleBuf returns a delivered snapshot buffer to the freelist. The
// faulty path keeps buffers live: retransmission can re-ship a frame
// after first delivery.
func (h *Host) recycleBuf(b []byte) {
	if h.sys.rt.Faulty() || cap(b) == 0 {
		return
	}
	h.pool.freeBuf = append(h.pool.freeBuf, b)
}

type span struct {
	base uint64
	size int
}

func (sp span) contains(va uint64) bool {
	return va >= sp.base && va < sp.base+uint64(sp.size)
}

// HostStats aggregates per-host protocol activity.
type HostStats struct {
	RequestsServed uint64 // read/write forwards served by this host
	Invalidations  uint64 // invalidate requests honored
	PushesServed   uint64
}

// DescribeMsg extracts the trace fields from a protocol header (the
// cluster runtime calls it only when tracing is enabled).
func (h *Host) DescribeMsg(payload any) (op uint16, mp int, addr uint64, home int) {
	m := payload.(*pmsg)
	return opBase + uint16(m.Type), m.Info.ID, m.Addr, h.homeOfMsg(m)
}

// homeOfMsg returns the home host of the minipage a message concerns,
// or -1 for messages that carry no translation record (untranslated
// requests, synchronization and allocation traffic).
func (h *Host) homeOfMsg(m *pmsg) int {
	if m.Info.Size == 0 {
		return -1
	}
	return h.sys.homeOf(m.Info.ID)
}

// route returns the host that runs the directory transaction for the
// minipage backing va. Under Central management that is host 0 and the
// request leaves untranslated (the manager performs the MPT lookup);
// under HomeBased management the requester resolves va against its MPT
// replica — charging the same MPTLookup the manager would have — and
// returns the translation so the home can skip its own lookup.
func (h *Host) route(p *sim.Proc, va uint64) (int, core.Info) {
	if h.sys.Opt.Management == Central {
		return managerHost, core.Info{}
	}
	p.Sleep(h.Costs().MPTLookup)
	mp, ok := h.sys.mpt.Lookup(va)
	if !ok {
		panic(fmt.Sprintf("dsm: access violation: %#x is not in any minipage", va))
	}
	return h.primaryFor(mp.ID), mp.Info(h.sys.Layout)
}

// readMinipage snapshots a minipage's bytes through the privileged view
// into a pooled buffer (recycled by the receiver once installed).
func (h *Host) readMinipage(info core.Info) []byte {
	data := h.allocBuf(info.Size)
	if err := h.Region.ReadPrivInto(info.Base, data); err != nil {
		panic(fmt.Sprintf("dsm: host %d: privileged read of %+v: %v", h.ID(), info, err))
	}
	return data
}

// HandleFault services one application access fault. It runs in the
// faulting thread's context; the cluster runtime has already recorded the
// fault event.
//
// Per Figure 3 ("On Read or Write Fault"): build a request carrying only
// the faulting address, send it to the manager, and wait on the thread's
// event. On wakeup, send the transaction-closing ack.
func (h *Host) HandleFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("dsm: fault at %#x outside an application thread", f.Addr)
	}
	c := h.Costs()
	p := t.Proc()
	start := p.Now()
	p.Sleep(c.AccessFault)

	fw := t.WaitSlot()
	typ := mReadReq
	if f.Kind == vm.Write {
		typ = mWriteReq
	}
	home, info := h.route(p, f.Addr)
	// A fault transaction never references the request after the faulting
	// thread wakes (the home forwards a copy and clears pendingWrite before
	// granting), so on the clean path the request lives in a per-thread
	// slot. The faulty path allocates fresh: retry copies and dedup can
	// keep the original reachable past the wake.
	var req *pmsg
	if h.sys.rt.Faulty() {
		req = &pmsg{}
	} else {
		req = &t.reqMsg
	}
	*req = pmsg{Type: typ, From: h.ID(), Addr: f.Addr, Info: info, FW: fw}
	if h.sys.rt.Faulty() {
		// Tag the transaction so the home can deduplicate retries, send,
		// and block with a backoff timer re-issuing the request — the
		// request survives crashes on either side. The clean path below is
		// untouched (bit-identical virtual time).
		req.TID = t.ID
		req.Txn = t.NextTxn()
		fw.Txn = req.Txn
		h.Send(p, home, req)
		p.Sleep(c.BlockThread)
		t.BlockRetry(fw, requestRetryBase, func(rp *sim.Proc) {
			// The home mutates the original request in place (Info fill-in,
			// Requeued when it pops the queue) — simulator messages travel
			// by pointer. Re-send a copy with the queue marker cleared, or
			// the duplicate would bypass the home's dedup check. Under
			// replicated management the believed primary is recomputed per
			// retry: that is how a requester finds the promoted backup.
			cp := *req
			cp.Requeued = false
			cp.Redrive = false
			h.Send(rp, h.primaryFor(req.Info.ID), &cp)
		})
	} else {
		h.Send(p, home, req)
		p.Sleep(c.BlockThread)
		t.Block(fw) // the host may go idle; the poller takes over
	}
	p.Sleep(c.ThreadWake + c.FaultResume)

	// The ack that closes the transaction at the minipage's home. TID/Txn
	// (zero on the clean path) let the home record the transaction as done.
	ack := h.allocPM()
	*ack = pmsg{Type: mAck, From: h.ID(), Info: fw.Info,
		Write: f.Kind == vm.Write, TID: t.ID, Txn: fw.Txn}
	h.Send(p, h.primaryFor(fw.Info.ID), ack)

	elapsed := p.Now().Sub(start)
	switch {
	case f.Kind == vm.Write:
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
	case t.inPrefetchSpan(f.Addr):
		t.Stats.PrefetchTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	default:
		t.Stats.ReadFaultTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	}
	return nil
}

// inPrefetchSpan reports whether va falls in a region with an in-flight
// prefetch issued by this host.
func (t *Thread) inPrefetchSpan(va uint64) bool {
	for _, sp := range t.host.prefetchSpans {
		if sp.contains(va) {
			return true
		}
	}
	return false
}

// HandleMessage dispatches one delivered message in the host's DSM server
// thread. Directory traffic is routed to this host's shard (the whole
// directory under Central management, where only host 0 receives it);
// allocation and synchronization stay with host 0. Everything else is
// the thin non-manager protocol of Figure 3 — note that it does no
// queuing, no table lookups and no translation of any kind.
func (h *Host) HandleMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	switch m.Type {
	// ---- Directory traffic, handled by the minipage's home ----------
	case mReadReq, mWriteReq, mAck, mInvalidateReply, mPushReq, mPushAck, mDirInit,
		mPing, mViewUpdate, mMirror, mMirrorAck, mMirrorNak, mStateXfer, mSyncAck:
		if rp := h.sys.replAt(h.ID()); rp != nil {
			rp.dispatchDir(p, m)
			return
		}
		if h.sys.Opt.Management == Central && h.ID() != managerHost {
			panic(fmt.Sprintf("dsm: host %d received manager message %v", h.ID(), m.Type))
		}
		h.sys.mgrs[h.ID()].dispatch(p, m)

	// ---- Allocation and synchronization, centralized on host 0 ------
	case mAllocReq, mBarrierArrive, mLockReq, mUnlock:
		if h.ID() != managerHost {
			panic(fmt.Sprintf("dsm: host %d received manager message %v", h.ID(), m.Type))
		}
		h.sys.mgrs[managerHost].dispatch(p, m)

	// ---- Forwarded requests served by any host ----------------------
	case mReadFwd:
		// Handle Read Request: downgrade a writable copy, then reply with
		// header and data straight out of the privileged view.
		c := h.Costs()
		p.Sleep(c.GetProt)
		if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
			p.Sleep(c.SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
				panic(err)
			}
		}
		h.Stats.RequestsServed++
		reply := h.allocPM()
		*reply = *m
		reply.Type = mReadReply
		h.Send(p, m.From, reply)
		h.SendData(p, m.From, h.readMinipage(m.Info), dataMarker)
		h.recyclePM(m) // the forwarded request ends here

	case mWriteFwd:
		// Handle Write Request: invalidate own copy, reply with data. The
		// privileged view still reaches the bytes after the application
		// views are NoAccess — that is what makes this safe and atomic.
		c := h.Costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.RequestsServed++
		reply := h.allocPM()
		*reply = *m
		reply.Type = mWriteReply
		h.Send(p, m.From, reply)
		h.SendData(p, m.From, h.readMinipage(m.Info), dataMarker)
		h.recyclePM(m)

	case mInvalidateReq:
		c := h.Costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.Invalidations++
		// The reply returns to whichever home issued the invalidation,
		// echoing the transaction identity (zero off the replicated path).
		rep := h.allocPM()
		*rep = pmsg{Type: mInvalidateReply, From: h.ID(), Info: m.Info, FW: m.FW, TID: m.TID, Txn: m.Txn}
		h.Send(p, fm.From, rep)
		h.recyclePM(m)

	// ---- Replies back at the requester ------------------------------
	case mReadReply, mWriteReply, mPushData:
		// Header first; the minipage bytes follow on the same channel.
		h.pendingHdr[fm.From] = m

	case mData:
		hdr := h.pendingHdr[fm.From]
		if hdr == nil {
			panic(fmt.Sprintf("dsm: host %d: data from %d with no pending header", h.ID(), fm.From))
		}
		h.pendingHdr[fm.From] = nil
		h.installMinipage(p, hdr, fm.Data)
		h.recyclePM(hdr)
		h.recycleBuf(fm.Data)

	case mUpgradeGrant:
		if m.Txn != 0 && m.FW.Txn != m.Txn {
			// Late grant for an abandoned transaction: drop it. Under
			// replication it may be the re-driven twin of a completed
			// transaction — the re-ack closes it at the new primary.
			h.replReAck(p, m)
			return
		}
		if h.sys.replAt(h.ID()) != nil && m.FW.Ev.IsSet() {
			h.replReAck(p, m) // duplicate grant for the same transaction
			return
		}
		c := h.Costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
			panic(err)
		}
		m.FW.Info = m.Info
		m.FW.Ev.Set()
		h.recyclePM(m)

	case mAllocReply:
		if m.FW.Owner = m.Owner; m.Owner {
			p.Sleep(h.Costs().SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
				panic(err)
			}
		}
		m.FW.Info = m.Info
		m.FW.VA = m.AllocVA
		m.FW.Ev.Set()
		h.recyclePM(m)

	case mBarrierRelease, mLockGrant:
		m.FW.Ev.Set()
		h.recyclePM(m)

	case mPushOrder:
		h.servePush(p, m)

	default:
		panic(fmt.Sprintf("dsm: host %d: unexpected message type %v", h.ID(), m.Type))
	}
}

// installMinipage receives minipage contents into the privileged view,
// raises the application-view protection, and releases whoever waits.
// This is Figure 3's "Handle Read or Write Reply".
func (h *Host) installMinipage(p *sim.Proc, hdr *pmsg, data []byte) {
	if hdr.Txn != 0 && hdr.FW != nil && hdr.FW.Txn != hdr.Txn {
		// Late reply for an abandoned transaction: drop before installing.
		// Under replication, re-ack so a re-driven twin closes at the new
		// primary instead of holding its entry busy forever.
		h.replReAck(p, hdr)
		return
	}
	if h.sys.replAt(h.ID()) != nil && hdr.FW != nil && hdr.FW.Ev.IsSet() {
		// Duplicate reply for a transaction this thread already completed
		// (its re-driven twin): installing again could re-raise protection
		// over bytes a later writer invalidated. Drop and re-ack.
		h.replReAck(p, hdr)
		return
	}
	c := h.Costs()
	if len(data) != hdr.Info.Size {
		panic(fmt.Sprintf("dsm: host %d: minipage %d size mismatch: got %d want %d",
			h.ID(), hdr.Info.ID, len(data), hdr.Info.Size))
	}
	if err := h.Region.WritePriv(hdr.Info.Base, data); err != nil {
		panic(err)
	}
	p.Sleep(sim.Duration(len(data))*c.InstallPerByte + c.SetProt)
	prot := vm.ReadOnly
	if hdr.Type == mWriteReply {
		prot = vm.ReadWrite
	}
	if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, prot); err != nil {
		panic(err)
	}
	home := h.primaryFor(hdr.Info.ID)
	switch {
	case hdr.Type == mPushData:
		// Pushed replica: ack to the home; nobody is waiting. TID/Txn
		// (zero off the replicated path) match the ack to the open push.
		ack := h.allocPM()
		*ack = pmsg{Type: mPushAck, From: h.ID(), Info: hdr.Info, TID: hdr.TID, Txn: hdr.Txn}
		h.Send(p, home, ack)
	case hdr.Prefetch:
		// Prefetch completion: the server thread closes the transaction.
		h.clearPrefetchSpan(hdr.Info)
		ack := h.allocPM()
		*ack = pmsg{Type: mAck, From: h.ID(), Info: hdr.Info, Write: false, TID: hdr.TID, Txn: hdr.Txn}
		h.Send(p, home, ack)
		if hdr.FW != nil {
			hdr.FW.Ev.Set()
		}
	default:
		hdr.FW.Info = hdr.Info
		hdr.FW.Ev.Set()
	}
}

// replReAck closes a re-driven transaction whose reply this requester
// dropped as a duplicate: the twin of a transaction that already
// completed here. The new primary re-drove it from its mirror and holds
// the entry busy until an ack arrives — this is that ack. A no-op off
// the replicated path (the guards' old silent-drop behavior stands) and
// for unstamped transactions.
func (h *Host) replReAck(p *sim.Proc, m *pmsg) {
	rp := h.sys.replAt(h.ID())
	if rp == nil || m.Txn == 0 {
		return
	}
	rp.Stats.ReAcks++
	ack := h.allocPM()
	*ack = pmsg{Type: mAck, From: h.ID(), Info: m.Info,
		Write: m.Type == mUpgradeGrant || m.Type == mWriteReply, TID: m.TID, Txn: m.Txn}
	h.Send(p, h.primaryFor(m.Info.ID), ack)
}

// RecoverCrash runs after this host's network stack restarts (fail-restart
// with durable memory: directory shards, region contents and protections
// survive). The modeled recovery work is rebuilding the host's MPT replica
// from the allocation authority — one lookup-sized scan per minipage.
func (h *Host) RecoverCrash(p *sim.Proc) {
	p.Sleep(sim.Duration(h.sys.mpt.NumMinipages()) * h.Costs().MPTLookup)
}

// servePush is the owner side of a push update: downgrade to ReadOnly,
// then replicate the minipage to every other host.
func (h *Host) servePush(p *sim.Proc, m *pmsg) {
	c := h.Costs()
	p.Sleep(c.GetProt)
	if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
	}
	h.Stats.PushesServed++
	for i := 0; i < h.sys.NumHosts(); i++ {
		if i == h.ID() {
			continue
		}
		hdr := h.allocPM()
		*hdr = *m
		hdr.Type = mPushData
		h.Send(p, i, hdr)
		// One snapshot per destination: each buffer is recycled
		// independently by its receiver's install path.
		h.SendData(p, i, h.readMinipage(m.Info), dataMarker)
	}
	h.recyclePM(m) // the push order ends here
}

// clearPrefetchSpan removes the in-flight markers satisfied by the
// installed minipage. A span is recorded at the address the application
// passed to Prefetch/GangFetch, which need not be minipage-aligned, so
// matching is by containment — the span whose base lies inside the
// fetched minipage was resolved to exactly this minipage when the
// request was issued. Matching on base equality instead would leak the
// span forever for unaligned prefetches, misclassifying every later
// fault in the range as a prefetch wait and silently disabling every
// later Prefetch of it.
func (h *Host) clearPrefetchSpan(info core.Info) {
	end := info.Base + uint64(info.Size)
	kept := h.prefetchSpans[:0]
	for _, sp := range h.prefetchSpans {
		if sp.base >= info.Base && sp.base < end {
			continue
		}
		kept = append(kept, sp)
	}
	h.prefetchSpans = kept
}
