package dsm

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// faultWait is the per-transaction rendezvous between a requesting thread
// and its host's DSM server thread: the event the thread blocks on, plus
// the translation info the reply carries back (which the thread needs for
// its ack message).
type faultWait struct {
	ev    *sim.Event
	info  core.Info
	va    uint64 // for allocation replies
	owner bool   // allocation reply: requester owns the new minipage
}

// Host is one Millipage process: an address space with the mapped views,
// an FM endpoint whose service thread runs the protocol handlers, and the
// application threads.
type Host struct {
	sys    *System
	id     int
	AS     *vm.AddressSpace
	Region *core.Region
	ep     *fastmsg.Endpoint

	// pendingHdr pairs a reply header with the mData message that follows
	// it on the same FIFO channel, keyed by source host.
	pendingHdr map[int]*pmsg

	// prefetchSpans tracks in-flight prefetch requests so a fault into a
	// prefetched region is accounted as prefetch wait, not a read fault.
	prefetchSpans []span

	Stats HostStats
}

type span struct {
	base uint64
	size int
}

func (sp span) contains(va uint64) bool {
	return va >= sp.base && va < sp.base+uint64(sp.size)
}

// HostStats aggregates per-host protocol activity.
type HostStats struct {
	RequestsServed uint64 // read/write forwards served by this host
	Invalidations  uint64 // invalidate requests honored
	PushesServed   uint64
}

// ID returns the host id.
func (h *Host) ID() int { return h.id }

func (h *Host) costs() Costs { return h.sys.Opt.Costs }
func (h *Host) send(p *sim.Proc, to int, m *pmsg) {
	h.sys.Opt.Trace.Recordf(h.sys.Eng.Now(), trace.Send, h.id, to, "%v mp=%d addr=%#x", m.Type, m.Info.ID, m.Addr)
	h.ep.Send(p, to, &fastmsg.Message{Size: h.costs().HeaderSize, Payload: m})
}

// sendData ships raw minipage bytes (no header: FM delivers them directly
// into the privileged view at the far side, the paper's zero-copy path).
func (h *Host) sendData(p *sim.Proc, to int, data []byte) {
	h.ep.Send(p, to, &fastmsg.Message{Size: len(data), Data: data, Payload: &pmsg{Type: mData}})
}

// readMinipage snapshots a minipage's bytes through the privileged view.
func (h *Host) readMinipage(info core.Info) []byte {
	data, err := h.Region.ReadPriv(info.Base, info.Size)
	if err != nil {
		panic(fmt.Sprintf("dsm: host %d: privileged read of %+v: %v", h.id, info, err))
	}
	return data
}

// onFault is the installed vm fault handler. It runs in the faulting
// application thread's context — the analogue of the SEH handler the
// wrapper routine installs around each application thread (Section 3.5.1).
//
// Per Figure 3 ("On Read or Write Fault"): build a request carrying only
// the faulting address, send it to the manager, and wait on the thread's
// event. On wakeup, send the transaction-closing ack.
func (h *Host) onFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("dsm: fault at %#x outside an application thread", f.Addr)
	}
	c := h.costs()
	start := t.p.Now()
	h.sys.Opt.Trace.Recordf(start, trace.Fault, h.id, -1, "%v fault @%#x", f.Kind, f.Addr)
	t.p.Sleep(c.AccessFault)

	fw := &faultWait{ev: sim.NewEvent(h.sys.Eng)}
	typ := mReadReq
	if f.Kind == vm.Write {
		typ = mWriteReq
	}
	h.send(t.p, managerHost, &pmsg{Type: typ, From: h.id, Addr: f.Addr, FW: fw})

	t.p.Sleep(c.BlockThread)
	h.ep.SetBusy(-1) // the host may go idle; the poller takes over
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake + c.FaultResume)

	// The ack that closes the transaction at the manager.
	h.send(t.p, managerHost, &pmsg{Type: mAck, From: h.id, Info: fw.info, Write: f.Kind == vm.Write})

	elapsed := t.p.Now().Sub(start)
	switch {
	case f.Kind == vm.Write:
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
	case t.inPrefetchSpan(f.Addr):
		t.Stats.PrefetchTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	default:
		t.Stats.ReadFaultTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	}
	return nil
}

// inPrefetchSpan reports whether va falls in a region with an in-flight
// prefetch issued by this host.
func (t *Thread) inPrefetchSpan(va uint64) bool {
	for _, sp := range t.host.prefetchSpans {
		if sp.contains(va) {
			return true
		}
	}
	return false
}

// onMessage dispatches one delivered message in the host's DSM server
// thread. Manager-only types are routed to the manager state (which lives
// on host 0); everything else is the thin non-manager protocol of
// Figure 3 — note that it does no queuing, no table lookups and no
// translation of any kind.
func (h *Host) onMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	h.sys.Opt.Trace.Recordf(p.Now(), trace.Handle, h.id, fm.From, "%v mp=%d", m.Type, m.Info.ID)
	switch m.Type {
	// ---- Manager-bound messages -------------------------------------
	case mReadReq, mWriteReq, mAck, mInvalidateReply, mAllocReq,
		mBarrierArrive, mLockReq, mUnlock, mPushReq, mPushAck:
		if h.id != managerHost {
			panic(fmt.Sprintf("dsm: host %d received manager message %v", h.id, m.Type))
		}
		h.sys.mgr.dispatch(p, m)

	// ---- Forwarded requests served by any host ----------------------
	case mReadFwd:
		// Handle Read Request: downgrade a writable copy, then reply with
		// header and data straight out of the privileged view.
		c := h.costs()
		p.Sleep(c.GetProt)
		if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
			p.Sleep(c.SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
				panic(err)
			}
		}
		h.Stats.RequestsServed++
		reply := *m
		reply.Type = mReadReply
		h.send(p, m.From, &reply)
		h.sendData(p, m.From, h.readMinipage(m.Info))

	case mWriteFwd:
		// Handle Write Request: invalidate own copy, reply with data. The
		// privileged view still reaches the bytes after the application
		// views are NoAccess — that is what makes this safe and atomic.
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.RequestsServed++
		reply := *m
		reply.Type = mWriteReply
		h.send(p, m.From, &reply)
		h.sendData(p, m.From, h.readMinipage(m.Info))

	case mInvalidateReq:
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.Invalidations++
		h.send(p, managerHost, &pmsg{Type: mInvalidateReply, From: h.id, Info: m.Info, FW: m.FW})

	// ---- Replies back at the requester ------------------------------
	case mReadReply, mWriteReply, mPushData:
		// Header first; the minipage bytes follow on the same channel.
		h.pendingHdr[fm.From] = m

	case mData:
		hdr, ok := h.pendingHdr[fm.From]
		if !ok {
			panic(fmt.Sprintf("dsm: host %d: data from %d with no pending header", h.id, fm.From))
		}
		delete(h.pendingHdr, fm.From)
		h.installMinipage(p, hdr, fm.Data)

	case mUpgradeGrant:
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
			panic(err)
		}
		m.FW.info = m.Info
		m.FW.ev.Set()

	case mAllocReply:
		if m.FW.owner = m.Owner; m.Owner {
			p.Sleep(h.costs().SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
				panic(err)
			}
		}
		m.FW.info = m.Info
		m.FW.va = m.AllocVA
		m.FW.ev.Set()

	case mBarrierRelease, mLockGrant:
		m.FW.ev.Set()

	case mPushOrder:
		h.servePush(p, m)

	default:
		panic(fmt.Sprintf("dsm: host %d: unexpected message type %v", h.id, m.Type))
	}
}

// installMinipage receives minipage contents into the privileged view,
// raises the application-view protection, and releases whoever waits.
// This is Figure 3's "Handle Read or Write Reply".
func (h *Host) installMinipage(p *sim.Proc, hdr *pmsg, data []byte) {
	c := h.costs()
	if len(data) != hdr.Info.Size {
		panic(fmt.Sprintf("dsm: host %d: minipage %d size mismatch: got %d want %d",
			h.id, hdr.Info.ID, len(data), hdr.Info.Size))
	}
	if err := h.Region.WritePriv(hdr.Info.Base, data); err != nil {
		panic(err)
	}
	p.Sleep(sim.Duration(len(data))*c.InstallPerByte + c.SetProt)
	prot := vm.ReadOnly
	if hdr.Type == mWriteReply {
		prot = vm.ReadWrite
	}
	if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, prot); err != nil {
		panic(err)
	}
	switch {
	case hdr.Type == mPushData:
		// Pushed replica: ack to the manager; nobody is waiting.
		h.send(p, managerHost, &pmsg{Type: mPushAck, From: h.id, Info: hdr.Info})
	case hdr.Prefetch:
		// Prefetch completion: the server thread closes the transaction.
		h.clearPrefetchSpan(hdr.Info.Base)
		h.send(p, managerHost, &pmsg{Type: mAck, From: h.id, Info: hdr.Info, Write: false})
		if hdr.FW != nil {
			hdr.FW.ev.Set()
		}
	default:
		hdr.FW.info = hdr.Info
		hdr.FW.ev.Set()
	}
}

// servePush is the owner side of a push update: downgrade to ReadOnly,
// then replicate the minipage to every other host.
func (h *Host) servePush(p *sim.Proc, m *pmsg) {
	c := h.costs()
	p.Sleep(c.GetProt)
	if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
	}
	h.Stats.PushesServed++
	data := h.readMinipage(m.Info)
	for i := 0; i < h.sys.NumHosts(); i++ {
		if i == h.id {
			continue
		}
		hdr := *m
		hdr.Type = mPushData
		h.send(p, i, &hdr)
		h.sendData(p, i, data)
	}
}

// clearPrefetchSpan removes the in-flight marker for base.
func (h *Host) clearPrefetchSpan(base uint64) {
	for i, sp := range h.prefetchSpans {
		if sp.base == base {
			h.prefetchSpans = append(h.prefetchSpans[:i], h.prefetchSpans[i+1:]...)
			return
		}
	}
}
