package dsm

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// faultWait is the per-transaction rendezvous between a requesting thread
// and its host's DSM server thread: the event the thread blocks on, plus
// the translation info the reply carries back (which the thread needs for
// its ack message).
type faultWait struct {
	ev    *sim.Event
	info  core.Info
	va    uint64 // for allocation replies
	owner bool   // allocation reply: requester owns the new minipage
}

// Host is one Millipage process: an address space with the mapped views,
// an FM endpoint whose service thread runs the protocol handlers, and the
// application threads.
type Host struct {
	sys    *System
	id     int
	AS     *vm.AddressSpace
	Region *core.Region
	ep     *fastmsg.Endpoint

	// pendingHdr pairs a reply header with the mData message that follows
	// it on the same FIFO channel, indexed by source host id.
	pendingHdr []*pmsg

	// prefetchSpans tracks in-flight prefetch requests so a fault into a
	// prefetched region is accounted as prefetch wait, not a read fault.
	prefetchSpans []span

	Stats HostStats
}

type span struct {
	base uint64
	size int
}

func (sp span) contains(va uint64) bool {
	return va >= sp.base && va < sp.base+uint64(sp.size)
}

// HostStats aggregates per-host protocol activity.
type HostStats struct {
	RequestsServed uint64 // read/write forwards served by this host
	Invalidations  uint64 // invalidate requests honored
	PushesServed   uint64
}

// ID returns the host id.
func (h *Host) ID() int { return h.id }

func (h *Host) costs() Costs { return h.sys.Opt.Costs }
func (h *Host) send(p *sim.Proc, to int, m *pmsg) {
	if tr := h.sys.Opt.Trace; tr.Enabled() {
		tr.RecordMsg(h.sys.Eng.Now(), trace.Send, h.id, to, h.homeOfMsg(m),
			uint16(m.Type), m.Info.ID, m.Addr)
	}
	fm := h.ep.AllocMessage()
	fm.Size = h.costs().HeaderSize
	fm.Payload = m
	h.ep.Send(p, to, fm)
}

// homeOfMsg returns the home host of the minipage a message concerns,
// or -1 for messages that carry no translation record (untranslated
// requests, synchronization and allocation traffic).
func (h *Host) homeOfMsg(m *pmsg) int {
	if m.Info.Size == 0 {
		return -1
	}
	return h.sys.homeOf(m.Info.ID)
}

// route returns the host that runs the directory transaction for the
// minipage backing va. Under Central management that is host 0 and the
// request leaves untranslated (the manager performs the MPT lookup);
// under HomeBased management the requester resolves va against its MPT
// replica — charging the same MPTLookup the manager would have — and
// returns the translation so the home can skip its own lookup.
func (h *Host) route(p *sim.Proc, va uint64) (int, core.Info) {
	if h.sys.Opt.Management == Central {
		return managerHost, core.Info{}
	}
	p.Sleep(h.costs().MPTLookup)
	mp, ok := h.sys.mpt.Lookup(va)
	if !ok {
		panic(fmt.Sprintf("dsm: access violation: %#x is not in any minipage", va))
	}
	return h.sys.homeOf(mp.ID), mp.Info(h.sys.Layout)
}

// sendData ships raw minipage bytes (no header: FM delivers them directly
// into the privileged view at the far side, the paper's zero-copy path).
func (h *Host) sendData(p *sim.Proc, to int, data []byte) {
	fm := h.ep.AllocMessage()
	fm.Size = len(data)
	fm.Data = data
	fm.Payload = dataMarker
	h.ep.Send(p, to, fm)
}

// readMinipage snapshots a minipage's bytes through the privileged view.
func (h *Host) readMinipage(info core.Info) []byte {
	data, err := h.Region.ReadPriv(info.Base, info.Size)
	if err != nil {
		panic(fmt.Sprintf("dsm: host %d: privileged read of %+v: %v", h.id, info, err))
	}
	return data
}

// onFault is the installed vm fault handler. It runs in the faulting
// application thread's context — the analogue of the SEH handler the
// wrapper routine installs around each application thread (Section 3.5.1).
//
// Per Figure 3 ("On Read or Write Fault"): build a request carrying only
// the faulting address, send it to the manager, and wait on the thread's
// event. On wakeup, send the transaction-closing ack.
func (h *Host) onFault(ctx any, f vm.Fault) error {
	t, ok := ctx.(*Thread)
	if !ok {
		return fmt.Errorf("dsm: fault at %#x outside an application thread", f.Addr)
	}
	c := h.costs()
	start := t.p.Now()
	if tr := h.sys.Opt.Trace; tr.Enabled() {
		tr.RecordFault(start, h.id, f.Kind == vm.Write, f.Addr)
	}
	t.p.Sleep(c.AccessFault)

	fw := t.waitSlot()
	typ := mReadReq
	if f.Kind == vm.Write {
		typ = mWriteReq
	}
	home, info := h.route(t.p, f.Addr)
	h.send(t.p, home, &pmsg{Type: typ, From: h.id, Addr: f.Addr, Info: info, FW: fw})

	t.p.Sleep(c.BlockThread)
	h.ep.SetBusy(-1) // the host may go idle; the poller takes over
	fw.ev.Wait(t.p)
	h.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake + c.FaultResume)

	// The ack that closes the transaction at the minipage's home.
	h.send(t.p, h.sys.homeOf(fw.info.ID), &pmsg{Type: mAck, From: h.id, Info: fw.info, Write: f.Kind == vm.Write})

	elapsed := t.p.Now().Sub(start)
	switch {
	case f.Kind == vm.Write:
		t.Stats.WriteFaultTime += elapsed
		t.Stats.WriteFaults++
		t.Stats.WriteFaultHist.Add(elapsed)
	case t.inPrefetchSpan(f.Addr):
		t.Stats.PrefetchTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	default:
		t.Stats.ReadFaultTime += elapsed
		t.Stats.ReadFaults++
		t.Stats.ReadFaultHist.Add(elapsed)
	}
	return nil
}

// inPrefetchSpan reports whether va falls in a region with an in-flight
// prefetch issued by this host.
func (t *Thread) inPrefetchSpan(va uint64) bool {
	for _, sp := range t.host.prefetchSpans {
		if sp.contains(va) {
			return true
		}
	}
	return false
}

// onMessage dispatches one delivered message in the host's DSM server
// thread. Directory traffic is routed to this host's shard (the whole
// directory under Central management, where only host 0 receives it);
// allocation and synchronization stay with host 0. Everything else is
// the thin non-manager protocol of Figure 3 — note that it does no
// queuing, no table lookups and no translation of any kind.
func (h *Host) onMessage(p *sim.Proc, fm *fastmsg.Message) {
	m := fm.Payload.(*pmsg)
	if tr := h.sys.Opt.Trace; tr.Enabled() {
		tr.RecordMsg(p.Now(), trace.Handle, h.id, fm.From, h.homeOfMsg(m),
			uint16(m.Type), m.Info.ID, 0)
	}
	switch m.Type {
	// ---- Directory traffic, handled by the minipage's home ----------
	case mReadReq, mWriteReq, mAck, mInvalidateReply, mPushReq, mPushAck, mDirInit:
		if h.sys.Opt.Management == Central && h.id != managerHost {
			panic(fmt.Sprintf("dsm: host %d received manager message %v", h.id, m.Type))
		}
		h.sys.mgrs[h.id].dispatch(p, m)

	// ---- Allocation and synchronization, centralized on host 0 ------
	case mAllocReq, mBarrierArrive, mLockReq, mUnlock:
		if h.id != managerHost {
			panic(fmt.Sprintf("dsm: host %d received manager message %v", h.id, m.Type))
		}
		h.sys.mgrs[managerHost].dispatch(p, m)

	// ---- Forwarded requests served by any host ----------------------
	case mReadFwd:
		// Handle Read Request: downgrade a writable copy, then reply with
		// header and data straight out of the privileged view.
		c := h.costs()
		p.Sleep(c.GetProt)
		if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
			p.Sleep(c.SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
				panic(err)
			}
		}
		h.Stats.RequestsServed++
		reply := *m
		reply.Type = mReadReply
		h.send(p, m.From, &reply)
		h.sendData(p, m.From, h.readMinipage(m.Info))

	case mWriteFwd:
		// Handle Write Request: invalidate own copy, reply with data. The
		// privileged view still reaches the bytes after the application
		// views are NoAccess — that is what makes this safe and atomic.
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.RequestsServed++
		reply := *m
		reply.Type = mWriteReply
		h.send(p, m.From, &reply)
		h.sendData(p, m.From, h.readMinipage(m.Info))

	case mInvalidateReq:
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.NoAccess); err != nil {
			panic(err)
		}
		h.Stats.Invalidations++
		// The reply returns to whichever home issued the invalidation.
		h.send(p, fm.From, &pmsg{Type: mInvalidateReply, From: h.id, Info: m.Info, FW: m.FW})

	// ---- Replies back at the requester ------------------------------
	case mReadReply, mWriteReply, mPushData:
		// Header first; the minipage bytes follow on the same channel.
		h.pendingHdr[fm.From] = m

	case mData:
		hdr := h.pendingHdr[fm.From]
		if hdr == nil {
			panic(fmt.Sprintf("dsm: host %d: data from %d with no pending header", h.id, fm.From))
		}
		h.pendingHdr[fm.From] = nil
		h.installMinipage(p, hdr, fm.Data)

	case mUpgradeGrant:
		c := h.costs()
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
			panic(err)
		}
		m.FW.info = m.Info
		m.FW.ev.Set()

	case mAllocReply:
		if m.FW.owner = m.Owner; m.Owner {
			p.Sleep(h.costs().SetProt)
			if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadWrite); err != nil {
				panic(err)
			}
		}
		m.FW.info = m.Info
		m.FW.va = m.AllocVA
		m.FW.ev.Set()

	case mBarrierRelease, mLockGrant:
		m.FW.ev.Set()

	case mPushOrder:
		h.servePush(p, m)

	default:
		panic(fmt.Sprintf("dsm: host %d: unexpected message type %v", h.id, m.Type))
	}
}

// installMinipage receives minipage contents into the privileged view,
// raises the application-view protection, and releases whoever waits.
// This is Figure 3's "Handle Read or Write Reply".
func (h *Host) installMinipage(p *sim.Proc, hdr *pmsg, data []byte) {
	c := h.costs()
	if len(data) != hdr.Info.Size {
		panic(fmt.Sprintf("dsm: host %d: minipage %d size mismatch: got %d want %d",
			h.id, hdr.Info.ID, len(data), hdr.Info.Size))
	}
	if err := h.Region.WritePriv(hdr.Info.Base, data); err != nil {
		panic(err)
	}
	p.Sleep(sim.Duration(len(data))*c.InstallPerByte + c.SetProt)
	prot := vm.ReadOnly
	if hdr.Type == mWriteReply {
		prot = vm.ReadWrite
	}
	if err := h.Region.Protect(hdr.Info.Base, hdr.Info.Size, prot); err != nil {
		panic(err)
	}
	home := h.sys.homeOf(hdr.Info.ID)
	switch {
	case hdr.Type == mPushData:
		// Pushed replica: ack to the home; nobody is waiting.
		h.send(p, home, &pmsg{Type: mPushAck, From: h.id, Info: hdr.Info})
	case hdr.Prefetch:
		// Prefetch completion: the server thread closes the transaction.
		h.clearPrefetchSpan(hdr.Info)
		h.send(p, home, &pmsg{Type: mAck, From: h.id, Info: hdr.Info, Write: false})
		if hdr.FW != nil {
			hdr.FW.ev.Set()
		}
	default:
		hdr.FW.info = hdr.Info
		hdr.FW.ev.Set()
	}
}

// servePush is the owner side of a push update: downgrade to ReadOnly,
// then replicate the minipage to every other host.
func (h *Host) servePush(p *sim.Proc, m *pmsg) {
	c := h.costs()
	p.Sleep(c.GetProt)
	if prot, _ := h.Region.ProtOf(m.Info.Base); prot == vm.ReadWrite {
		p.Sleep(c.SetProt)
		if err := h.Region.Protect(m.Info.Base, m.Info.Size, vm.ReadOnly); err != nil {
			panic(err)
		}
	}
	h.Stats.PushesServed++
	data := h.readMinipage(m.Info)
	for i := 0; i < h.sys.NumHosts(); i++ {
		if i == h.id {
			continue
		}
		hdr := *m
		hdr.Type = mPushData
		h.send(p, i, &hdr)
		h.sendData(p, i, data)
	}
}

// clearPrefetchSpan removes the in-flight markers satisfied by the
// installed minipage. A span is recorded at the address the application
// passed to Prefetch/GangFetch, which need not be minipage-aligned, so
// matching is by containment — the span whose base lies inside the
// fetched minipage was resolved to exactly this minipage when the
// request was issued. Matching on base equality instead would leak the
// span forever for unaligned prefetches, misclassifying every later
// fault in the range as a prefetch wait and silently disabling every
// later Prefetch of it.
func (h *Host) clearPrefetchSpan(info core.Info) {
	end := info.Base + uint64(info.Size)
	kept := h.prefetchSpans[:0]
	for _, sp := range h.prefetchSpans {
		if sp.base >= info.Base && sp.base < end {
			continue
		}
		kept = append(kept, sp)
	}
	h.prefetchSpans = kept
}
