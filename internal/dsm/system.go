package dsm

import (
	"fmt"

	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/faultnet"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// Management selects how directory duties are placed across the cluster.
type Management int

const (
	// Central is the paper's Section 3.3 configuration: host 0 handles
	// every fault, invalidation reply, ack and push for every minipage.
	Central Management = iota
	// HomeBased shards the directory: each minipage has a statically
	// assigned home host (Options.HomeOf, default id % Hosts) that runs
	// its transactions. Host 0 remains the allocation authority, and
	// barriers/locks stay centralized there.
	HomeBased
)

func (m Management) String() string {
	if m == HomeBased {
		return "home-based"
	}
	return "central"
}

// Options configures a Millipage cluster.
type Options struct {
	Hosts          int // number of hosts (the paper's cluster: 1..8)
	ThreadsPerHost int // application threads per host (paper: uniprocessors, 1)
	SharedSize     int // bytes of shared memory (the memory object size)
	Views          int // application views; see Table 2 for per-app values
	ChunkLevel     int // the paper's chunking switch; <=1 means off
	Grain          core.Grain
	Seed           int64 // simulation seed (deterministic runs)

	// Management places directory duties: Central (the default, host 0
	// does everything) or HomeBased (per-minipage home hosts).
	Management Management

	// HomeOf maps a minipage id to its home host under HomeBased
	// management. Nil selects the static default, id % hosts. It must be
	// a pure function: every host computes homes independently.
	HomeOf func(id, hosts int) int

	// Replication replicates each directory shard as a primary/backup
	// pair coordinated by a view service on host 0: directory mutations
	// are mirrored to the backup before their effects escape, and on the
	// primary's death the synced backup promotes and re-serves, so a
	// crashed manager no longer stalls the minipages it homes until
	// restart. Requires HomeBased management and the sequential engine.
	// See docs/PROTOCOL.md, "Replicated management".
	Replication bool

	// Engine selects the event engine ("seq" default, "par" for the
	// sharded parallel engine) and ParWorkers bounds its goroutines; see
	// cluster.Config.
	Engine     string
	ParWorkers int

	Net   fastmsg.Params
	Costs Costs

	// Faults, when non-nil and enabled, makes the wire lossy per the plan:
	// frames drop, duplicate, jitter, links partition and hosts crash, all
	// deterministically from the plan's seed. The transport's reliability
	// layer and the protocol's retry/dedup machinery then restore
	// exactly-once FIFO semantics. Nil (or an all-zero plan) leaves the
	// clean path untouched.
	Faults *faultnet.Plan

	// Trace, if non-nil, records protocol events (message sends, fault
	// entries, handler dispatches) for debugging.
	Trace *trace.Recorder
}

// withDefaults fills zero fields with the calibrated defaults.
func (o Options) withDefaults() Options {
	if o.Hosts == 0 {
		o.Hosts = 1
	}
	if o.ThreadsPerHost == 0 {
		o.ThreadsPerHost = 1
	}
	if o.Views == 0 {
		o.Views = 1
	}
	if o.ChunkLevel == 0 {
		o.ChunkLevel = 1
	}
	if o.Net == (fastmsg.Params{}) {
		o.Net = fastmsg.DefaultParams()
	}
	if o.Costs == (Costs{}) {
		o.Costs = DefaultCosts()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HomeOf == nil {
		o.HomeOf = func(id, hosts int) int { return id % hosts }
	}
	return o
}

// System is one Millipage cluster: the shared cluster runtime plus the
// protocol state — the MPT and one directory shard per host. Host 0 is
// the allocation authority and, under Central management, the sole
// directory manager; under HomeBased management every host runs the
// directory shard for the minipages it is home to.
type System struct {
	Opt    Options
	Eng    *sim.Engine
	Net    *fastmsg.Network
	Layout core.Layout

	rt    *cluster.Runtime
	hosts []*Host
	mpt   *core.MPT  // grown only on host 0; read-only replica elsewhere
	mgrs  []*manager // one directory shard per host
	repl  []*replMgr // per-host replication layer; nil when Replication is off

	// pools holds the clean-path freelists (recycled protocol headers
	// and minipage-snapshot buffers), one per calendar shard. On the
	// sequential engine every host shares pools[0] — the historical
	// system-wide pool; under the parallel engine each host owns its
	// shard's pool, so the freelists never cross shards. See
	// Host.allocPM / Host.allocBuf.
	pools []*hostPool

	threads []*Thread
}

// hostPool is one calendar shard's clean-path freelists.
type hostPool struct {
	freePM  []*pmsg
	freeBuf [][]byte
}

// New builds a cluster. The memory object, views and privileged view are
// mapped identically in every host (Section 2.4: no address translation
// between hosts is ever needed).
func New(opt Options) (*System, error) {
	opt = opt.withDefaults()
	if opt.Hosts < 1 || opt.Hosts > 1024 {
		return nil, fmt.Errorf("dsm: Hosts = %d out of range [1,1024]", opt.Hosts)
	}
	if opt.SharedSize <= 0 {
		return nil, fmt.Errorf("dsm: SharedSize must be positive")
	}
	layout, err := core.NewLayout(opt.SharedSize, opt.Views)
	if err != nil {
		return nil, err
	}
	if opt.Faults.Enabled() {
		if err := opt.Faults.Validate(opt.Hosts); err != nil {
			return nil, fmt.Errorf("dsm: %w", err)
		}
	}
	if opt.Replication {
		if opt.Management != HomeBased {
			return nil, fmt.Errorf("dsm: Replication requires HomeBased management")
		}
		if opt.Engine == "par" {
			return nil, fmt.Errorf("dsm: Replication requires the sequential engine")
		}
	}
	rt := cluster.New(cluster.Config{
		Name:           "dsm",
		Hosts:          opt.Hosts,
		ThreadsPerHost: opt.ThreadsPerHost,
		Seed:           opt.Seed,
		Engine:         opt.Engine,
		ParWorkers:     opt.ParWorkers,
		Net:            opt.Net,
		Costs:          opt.Costs,
		Faults:         opt.Faults,
		Trace:          opt.Trace,
	})
	s := &System{Opt: opt, Eng: rt.Eng, Net: rt.Net, Layout: layout, rt: rt}
	s.pools = make([]*hostPool, rt.Eng.NumShards())
	for i := range s.pools {
		s.pools[i] = &hostPool{}
	}

	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		region, err := core.NewRegion(layout, as)
		if err != nil {
			return nil, fmt.Errorf("dsm: host %d: %w", i, err)
		}
		h := &Host{
			sys:        s,
			Region:     region,
			pendingHdr: make([]*pmsg, opt.Hosts),
		}
		h.Host = rt.NewHost(as, h)
		h.pool = s.pools[h.Shard().ID()]
		s.hosts = append(s.hosts, h)
	}
	s.mpt = core.NewMPT(layout, opt.Grain, opt.ChunkLevel)
	if rt.Eng.NumShards() > 1 {
		// Every host routes through the shared MPT replica concurrently
		// under the parallel engine; host 0's allocation-time growth needs
		// the replica's reader lock (see core.MPT.SetShared).
		s.mpt.SetShared(true)
	}
	for i := 0; i < opt.Hosts; i++ {
		s.mgrs = append(s.mgrs, newManager(s, i))
	}
	if opt.Replication {
		s.initRepl()
		s.startReplDaemons()
	}
	return s, nil
}

// Host returns host i (0 is the manager).
func (s *System) Host(i int) *Host { return s.hosts[i] }

// NumHosts returns the cluster size.
func (s *System) NumHosts() int { return s.Opt.Hosts }

// Runtime returns the shared cluster substrate (engine, network, threads),
// for protocol-independent reporting.
func (s *System) Runtime() *cluster.Runtime { return s.rt }

// Manager returns host 0's manager state (directory, MPT, counters).
// Under Central management it holds every directory entry.
func (s *System) Manager() *manager { return s.mgrs[managerHost] }

// ManagerAt returns host i's directory shard. Under Central management
// only host 0's shard is populated.
func (s *System) ManagerAt(i int) *manager { return s.mgrs[i] }

// ManagerStatsTotal sums the protocol counters over every directory
// shard. Under Central management it equals Manager().Stats.
func (s *System) ManagerStatsTotal() ManagerStats {
	var tot ManagerStats
	for _, mg := range s.mgrs {
		tot.ReadReqs += mg.Stats.ReadReqs
		tot.WriteReqs += mg.Stats.WriteReqs
		tot.Invalidations += mg.Stats.Invalidations
		tot.CompetingRequests += mg.Stats.CompetingRequests
		tot.BarrierEpisodes += mg.Stats.BarrierEpisodes
		tot.LockAcquisitions += mg.Stats.LockAcquisitions
		tot.Allocs += mg.Stats.Allocs
		tot.Pushes += mg.Stats.Pushes
	}
	return tot
}

// homeOf returns the host that runs the directory for minipage id:
// host 0 under Central management, Options.HomeOf otherwise.
func (s *System) homeOf(id int) int {
	if s.Opt.Management == Central {
		return managerHost
	}
	return s.Opt.HomeOf(id, s.Opt.Hosts)
}

// Threads returns the application threads after Run (for statistics).
func (s *System) Threads() []*Thread { return s.threads }

// Run starts ThreadsPerHost application threads on every host, each
// executing body, and drives the simulation until all of them finish.
// body receives the thread context, which is the entire application-facing
// DSM API (Malloc, memory access, Barrier, Lock/Unlock, Prefetch, Push).
func (s *System) Run(body func(t *Thread)) error {
	return s.RunPerHost(func(t *Thread) { body(t) })
}

// RunPerHost is Run with explicit control retained for symmetry; kept
// separate so future per-host bodies don't change Run's signature.
func (s *System) RunPerHost(body func(t *Thread)) error {
	if body == nil {
		return fmt.Errorf("dsm: nil thread body")
	}
	return s.rt.Run(func(ct *cluster.Thread) func() {
		t := &Thread{Thread: ct, host: s.hosts[ct.Host()]}
		ct.SetSelf(t)
		s.threads = append(s.threads, t)
		return func() { body(t) }
	})
}

// Elapsed returns the virtual time at which the simulation stopped — the
// parallel execution time of the application.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }
