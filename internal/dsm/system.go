package dsm

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/fastmsg"
	"millipage/internal/sim"
	"millipage/internal/trace"
	"millipage/internal/vm"
)

// Options configures a Millipage cluster.
type Options struct {
	Hosts          int // number of hosts (the paper's cluster: 1..8)
	ThreadsPerHost int // application threads per host (paper: uniprocessors, 1)
	SharedSize     int // bytes of shared memory (the memory object size)
	Views          int // application views; see Table 2 for per-app values
	ChunkLevel     int // the paper's chunking switch; <=1 means off
	Grain          core.Grain
	Seed           int64 // simulation seed (deterministic runs)

	Net   fastmsg.Params
	Costs Costs

	// Trace, if non-nil, records protocol events (message sends, fault
	// entries, handler dispatches) for debugging.
	Trace *trace.Recorder
}

// withDefaults fills zero fields with the calibrated defaults.
func (o Options) withDefaults() Options {
	if o.Hosts == 0 {
		o.Hosts = 1
	}
	if o.ThreadsPerHost == 0 {
		o.ThreadsPerHost = 1
	}
	if o.Views == 0 {
		o.Views = 1
	}
	if o.ChunkLevel == 0 {
		o.ChunkLevel = 1
	}
	if o.Net == (fastmsg.Params{}) {
		o.Net = fastmsg.DefaultParams()
	}
	if o.Costs == (Costs{}) {
		o.Costs = DefaultCosts()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// System is one Millipage cluster: a simulation engine, a network, and a
// process per host. Host 0 is the manager.
type System struct {
	Opt    Options
	Eng    *sim.Engine
	Net    *fastmsg.Network
	Layout core.Layout

	hosts []*Host
	mgr   *manager

	totalThreads int
	threads      []*Thread
}

// New builds a cluster. The memory object, views and privileged view are
// mapped identically in every host (Section 2.4: no address translation
// between hosts is ever needed).
func New(opt Options) (*System, error) {
	opt = opt.withDefaults()
	if opt.Hosts < 1 || opt.Hosts > 64 {
		return nil, fmt.Errorf("dsm: Hosts = %d out of range [1,64]", opt.Hosts)
	}
	if opt.SharedSize <= 0 {
		return nil, fmt.Errorf("dsm: SharedSize must be positive")
	}
	layout, err := core.NewLayout(opt.SharedSize, opt.Views)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(opt.Seed)
	net := fastmsg.New(eng, opt.Hosts, opt.Net)
	s := &System{Opt: opt, Eng: eng, Net: net, Layout: layout}

	for i := 0; i < opt.Hosts; i++ {
		as := vm.NewAddressSpace()
		region, err := core.NewRegion(layout, as)
		if err != nil {
			return nil, fmt.Errorf("dsm: host %d: %w", i, err)
		}
		h := &Host{
			sys:        s,
			id:         i,
			AS:         as,
			Region:     region,
			ep:         net.Endpoint(i),
			pendingHdr: make(map[int]*pmsg),
		}
		as.SetFaultHandler(h.onFault)
		h.ep.SetHandler(h.onMessage)
		s.hosts = append(s.hosts, h)
	}
	s.mgr = newManager(s, core.NewMPT(layout, opt.Grain, opt.ChunkLevel))
	return s, nil
}

// Host returns host i (0 is the manager).
func (s *System) Host(i int) *Host { return s.hosts[i] }

// NumHosts returns the cluster size.
func (s *System) NumHosts() int { return s.Opt.Hosts }

// Manager returns the manager state (directory, MPT, counters).
func (s *System) Manager() *manager { return s.mgr }

// Threads returns the application threads after Run (for statistics).
func (s *System) Threads() []*Thread { return s.threads }

// Run starts ThreadsPerHost application threads on every host, each
// executing body, and drives the simulation until all of them finish.
// body receives the thread context, which is the entire application-facing
// DSM API (Malloc, memory access, Barrier, Lock/Unlock, Prefetch, Push).
func (s *System) Run(body func(t *Thread)) error {
	return s.RunPerHost(func(t *Thread) { body(t) })
}

// RunPerHost is Run with explicit control retained for symmetry; kept
// separate so future per-host bodies don't change Run's signature.
func (s *System) RunPerHost(body func(t *Thread)) error {
	if body == nil {
		return fmt.Errorf("dsm: nil thread body")
	}
	s.totalThreads = s.Opt.Hosts * s.Opt.ThreadsPerHost
	gid := 0
	for _, h := range s.hosts {
		for j := 0; j < s.Opt.ThreadsPerHost; j++ {
			t := &Thread{host: h, ID: gid, LID: j}
			s.threads = append(s.threads, t)
			gid++
			h := h
			s.Eng.Spawn(fmt.Sprintf("app-%d.%d", h.id, j), func(p *sim.Proc) {
				t.p = p
				h.ep.SetBusy(+1)
				t.Stats.Start = p.Now()
				body(t)
				t.Stats.End = p.Now()
				h.ep.SetBusy(-1)
			})
		}
	}
	return s.Eng.Run()
}

// Elapsed returns the virtual time at which the simulation stopped — the
// parallel execution time of the application.
func (s *System) Elapsed() sim.Duration { return sim.Duration(s.Eng.Now()) }
