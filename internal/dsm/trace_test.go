package dsm

import (
	"testing"

	"millipage/internal/trace"
)

func TestProtocolTracing(t *testing.T) {
	rec := trace.NewRecorder(4096)
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4, Trace: rec})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 5)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() == 0 {
		t.Fatal("no events recorded")
	}
	// The read transaction leaves its footprints: the fault, the request
	// to the manager, the forward, the reply, and the ack.
	for _, want := range []string{
		"read fault",
		"READ_REQUEST",
		"READ_FWD",
		"READ_REPLY",
		"ACK",
		"BARRIER_ARRIVE",
	} {
		if len(rec.Grep(want)) == 0 {
			t.Errorf("trace missing %q", want)
		}
	}
	// Events are time-ordered.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d: %v then %v", i, evs[i-1], evs[i])
		}
	}
}

func TestTracingFilter(t *testing.T) {
	rec := trace.NewRecorder(1024)
	rec.Filter = func(e trace.Event) bool { return e.Kind == trace.Fault }
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 2, Trace: rec})
	var va uint64
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			va = th.Malloc(64)
			th.WriteU32(va, 1)
		}
		th.Barrier()
		if th.Host() == 1 {
			_ = th.ReadU32(va)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.Events() {
		if e.Kind != trace.Fault {
			t.Fatalf("non-fault event passed the filter: %v", e)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("no fault events recorded")
	}
}
