package dsm

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/trace"
	"millipage/internal/viewsvc"
)

// managerHost is the elected manager process (Section 3.3: "one of the
// processes is elected as the manager").
const managerHost = 0

// mtype enumerates the protocol message types of Figure 3, plus the
// service messages (allocation, synchronization, push updates) the paper
// describes in prose.
type mtype int

const (
	mReadReq   mtype = iota // requester -> manager, carries only the fault address
	mWriteReq               // requester -> manager
	mReadFwd                // manager -> replica, carries translation info
	mWriteFwd               // manager -> chosen owner
	mReadReply              // owner -> requester header; an mData message follows
	mWriteReply
	mUpgradeGrant // manager -> requester that already holds the bytes
	mData         // bulk minipage contents, received directly into the privileged view
	mInvalidateReq
	mInvalidateReply
	mAck // faulting thread's transaction-closing ack to the manager

	mAllocReq
	mAllocReply

	mBarrierArrive
	mBarrierRelease
	mLockReq
	mLockGrant
	mUnlock

	mPushReq   // app thread asks the manager to replicate a minipage everywhere
	mPushOrder // manager tells the owner to push
	mPushData  // header for pushed contents (mData follows)
	mPushAck

	mDirInit // allocation authority -> home: seed the directory shard entry

	// Replicated-management traffic (Options.Replication).
	mPing       // host -> view service (host 0): liveness heartbeat
	mViewUpdate // view service -> all hosts: the published view table
	mMirror     // shard primary -> backup: one mirrored directory mutation
	mMirrorAck  // backup -> primary: mirror applied, release the effect
	mMirrorNak  // backup -> primary: mirror refused (newer view); demote
	mStateXfer  // primary -> fresh backup: full shard state snapshot
	mSyncAck    // fresh backup -> view service: state transfer installed
)

var mtypeNames = [...]string{
	"READ_REQUEST", "WRITE_REQUEST", "READ_FWD", "WRITE_FWD",
	"READ_REPLY", "WRITE_REPLY", "UPGRADE_GRANT", "DATA",
	"INVALIDATE_REQUEST", "INVALIDATE_REPLY", "ACK",
	"ALLOC_REQUEST", "ALLOC_REPLY",
	"BARRIER_ARRIVE", "BARRIER_RELEASE", "LOCK_REQUEST", "LOCK_GRANT", "UNLOCK",
	"PUSH_REQUEST", "PUSH_ORDER", "PUSH_DATA", "PUSH_ACK",
	"DIR_INIT",
	"PING", "VIEW_UPDATE", "MIRROR", "MIRROR_ACK", "MIRROR_NAK",
	"STATE_XFER", "SYNC_ACK",
}

// The trace recorder stores message types as raw codes (offset by the
// package's registered base, so dsm/ivy/lrc coexist in one binary) and
// renders the names only at dump time.
var opBase = trace.RegisterOps(mtypeNames[:])

func (m mtype) String() string {
	if int(m) >= 0 && int(m) < len(mtypeNames) {
		return mtypeNames[m]
	}
	return fmt.Sprintf("mtype(%d)", int(m))
}

// dataMarker is the shared payload of every bulk mData message: the
// header that matters was sent separately, so data messages all carry
// the same immutable marker instead of allocating a header apiece.
var dataMarker = &pmsg{Type: mData}

// pmsg is the protocol header. On the wire it is Costs.HeaderSize bytes
// (32 in the paper's implementation: type, requester, faulting address,
// and reserved translation-info space the manager fills in — Section 3.3).
// The FW pointer models the requester-local event handle that rides in the
// header; only the requester dereferences it.
type pmsg struct {
	Type mtype
	From int    // original requester host
	Addr uint64 // faulting address (all a request carries when it leaves the requester)

	Info core.Info // translation info, filled in by the manager (reserved header space)

	Write    bool // for mAck: closing a write transaction
	Prefetch bool // request was issued by a prefetch: no thread is waiting
	Requeued bool // dispatched again from a directory queue (stats count it once)

	// Redrive marks a request re-dispatched from a promoted backup's
	// mirror (Options.Replication). It bypasses the done-side dedup
	// check: a re-driven transaction whose original completed converges
	// to the same directory state, and the requester's reply guards plus
	// its duplicate re-ack close it. Never set off the replicated path.
	Redrive bool

	// Retry identity, stamped only under fault injection (zero on the
	// clean path). TID is the requesting thread's global id and Txn its
	// per-thread transaction number: together they let the home recognize
	// and drop duplicate requests created by retry timers and crash
	// recovery, and let the requester discard replies to an abandoned
	// transaction. They ride the forward chain untouched (struct copies).
	TID int
	Txn uint64

	FW *faultWait // requester-local rendezvous (event + reply landing zone)

	// Service fields.
	AllocSize int    // mAllocReq
	AllocVA   uint64 // mAllocReply: address handed to the application
	Owner     bool   // mAllocReply: requester owns the (new) minipage
	LockID    int    // mLockReq / mLockGrant / mUnlock
	Gen       int    // mBarrierArrive / mBarrierRelease generation

	// Replicated-management payloads (nil/empty off the replicated path).
	Mir   *mirrorRec     // mMirror / mMirrorAck / mMirrorNak / mStateXfer / mSyncAck
	Views []viewsvc.View // mViewUpdate: the full published view table
}
