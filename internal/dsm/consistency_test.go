package dsm

import (
	"fmt"
	"testing"

	"millipage/internal/sim"
)

// Sequential-consistency litmus tests, run across many seeds so the
// random service-thread timing explores different interleavings.

// Message passing: host 0 writes data then raises a flag (different
// minipages); host 1 spins on the flag and must then observe the data.
// Under SC the data write is ordered before the flag write for every
// observer — no fences or release operations exist in the API at all.
func TestLitmusMessagePassing(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4, Seed: seed})
			var data, flag uint64
			var observed uint32
			err := s.Run(func(th *Thread) {
				if th.Host() == 0 {
					data = th.Malloc(64)
					flag = th.Malloc(64)
					th.WriteU32(data, 0)
					th.WriteU32(flag, 0)
				}
				th.Barrier()
				if th.Host() == 0 {
					th.Compute(sim.Duration(seed) * 37 * sim.Microsecond)
					th.WriteU32(data, 42)
					th.WriteU32(flag, 1)
				} else {
					for th.ReadU32(flag) == 0 {
						th.Compute(20 * sim.Microsecond)
					}
					observed = th.ReadU32(data)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if observed != 42 {
				t.Fatalf("flag observed but data = %d (SC violation)", observed)
			}
		})
	}
}

// Dekker: both hosts raise their flag, then read the other's. Under SC
// at least one host must observe the other's flag raised.
func TestLitmusDekker(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4, Seed: seed})
			var flags [2]uint64
			var saw [2]uint32
			err := s.Run(func(th *Thread) {
				if th.Host() == 0 {
					flags[0] = th.Malloc(64)
					flags[1] = th.Malloc(64)
					th.WriteU32(flags[0], 0)
					th.WriteU32(flags[1], 0)
				}
				th.Barrier()
				me := th.Host()
				th.Compute(sim.Duration((seed*int64(me+1))%7) * 13 * sim.Microsecond)
				th.WriteU32(flags[me], 1)
				saw[me] = th.ReadU32(flags[1-me])
			})
			if err != nil {
				t.Fatal(err)
			}
			if saw[0] == 0 && saw[1] == 0 {
				t.Fatal("both hosts read 0 (forbidden under SC)")
			}
		})
	}
}

// Coherence (single location): writes to one minipage are seen in a
// single total order by all hosts — reads never go backwards.
func TestLitmusCoherence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newSys(t, Options{Hosts: 4, SharedSize: 1 << 16, Views: 4, Seed: seed})
			var cell uint64
			violated := false
			err := s.Run(func(th *Thread) {
				if th.Host() == 0 {
					cell = th.Malloc(64)
					th.WriteU32(cell, 0)
				}
				th.Barrier()
				if th.Host() == 0 {
					for i := uint32(1); i <= 20; i++ {
						th.WriteU32(cell, i)
						th.Compute(150 * sim.Microsecond)
					}
				} else {
					last := uint32(0)
					for last < 20 {
						v := th.ReadU32(cell)
						if v < last {
							violated = true
							return
						}
						last = v
						th.Compute(90 * sim.Microsecond)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if violated {
				t.Fatal("monotonic writer observed out of order")
			}
		})
	}
}

// Atomic visibility of multi-word minipage updates: the server installs
// minipage contents through the privileged view while application views
// are protected, so a reader never observes a torn 16-byte record.
func TestLitmusNoTornRecords(t *testing.T) {
	s := newSys(t, Options{Hosts: 2, SharedSize: 1 << 16, Views: 4, Seed: 9})
	var rec uint64
	torn := false
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			rec = th.Malloc(64)
			th.WriteU64(rec, 0)
			th.WriteU64(rec+8, 0)
		}
		th.Barrier()
		if th.Host() == 0 {
			for i := uint64(1); i <= 30; i++ {
				// The two words are always written to be equal, within
				// one minipage write transaction.
				var buf [16]byte
				for b := 0; b < 8; b++ {
					buf[b] = byte(i >> (8 * b))
					buf[8+b] = byte(i >> (8 * b))
				}
				th.Write(rec, buf[:])
				th.Compute(120 * sim.Microsecond)
			}
		} else {
			for i := 0; i < 40; i++ {
				var buf [16]byte
				th.Read(rec, buf[:])
				var a, b uint64
				for k := 0; k < 8; k++ {
					a |= uint64(buf[k]) << (8 * k)
					b |= uint64(buf[8+k]) << (8 * k)
				}
				if a != b {
					torn = true
					return
				}
				th.Compute(80 * sim.Microsecond)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("reader observed a torn record")
	}
}
