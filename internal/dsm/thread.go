package dsm

import (
	"fmt"

	"millipage/internal/core"
	"millipage/internal/sim"
	"millipage/internal/stats"
	"millipage/internal/vm"
)

// Thread is one application thread's view of the DSM: the entire
// user-facing Millipage API (Section 3.4's library interface). All methods
// must be called from the thread's own body function.
type Thread struct {
	host *Host
	ID   int // global thread id
	LID  int // local index on the host
	p    *sim.Proc

	// fw is the thread's reusable rendezvous for synchronous blocking
	// operations (faults, malloc, barriers, locks). A thread blocks on at
	// most one of these at a time, so a single record per thread suffices;
	// prefetch paths allocate fresh records because their rendezvous
	// outlives the issuing call.
	fw *faultWait

	Stats ThreadStats
}

// waitSlot returns the thread's rendezvous, reset for a new transaction.
func (t *Thread) waitSlot() *faultWait {
	if t.fw == nil {
		t.fw = &faultWait{ev: sim.NewEvent(t.host.sys.Eng)}
		return t.fw
	}
	fw := t.fw
	fw.ev.Reset()
	fw.info = core.Info{}
	fw.va = 0
	fw.owner = false
	return fw
}

// ThreadStats is the per-thread execution-time breakdown reported in
// Figure 6 (right): computation, prefetch, read faults, write faults and
// synchronization.
type ThreadStats struct {
	Start, End sim.Time

	ComputeTime    sim.Duration
	ReadFaultTime  sim.Duration
	WriteFaultTime sim.Duration
	PrefetchTime   sim.Duration // waits attributable to in-flight prefetches, plus issue cost
	SynchTime      sim.Duration // barriers and locks
	MallocTime     sim.Duration

	ReadFaults  uint64
	WriteFaults uint64
	Prefetches  uint64
	Barriers    uint64
	LockOps     uint64

	// Latency histograms (log-scale) for tail analysis: the paper's mean
	// service delays hide the NT timers' bimodal shape.
	ReadFaultHist  stats.Histogram
	WriteFaultHist stats.Histogram
}

// Total returns the thread's wall time.
func (st ThreadStats) Total() sim.Duration { return st.End.Sub(st.Start) }

// ResetStats zeroes the thread's accumulated statistics and restarts its
// clock. Benchmarks call it when the timed section begins so setup
// (allocation, data distribution) is excluded from the breakdown.
func (t *Thread) ResetStats() {
	t.Stats = ThreadStats{Start: t.p.Now()}
}

// Other returns time not attributed to any category (protocol sends,
// residual bookkeeping); Figure 6 folds this into computation.
func (st ThreadStats) Other() sim.Duration {
	return st.Total() - st.ComputeTime - st.ReadFaultTime - st.WriteFaultTime -
		st.PrefetchTime - st.SynchTime - st.MallocTime
}

// Host returns the hosting process's id.
func (t *Thread) Host() int { return t.host.id }

// NumHosts returns the cluster size.
func (t *Thread) NumHosts() int { return t.host.sys.NumHosts() }

// NumThreads returns the total application thread count.
func (t *Thread) NumThreads() int { return t.host.sys.totalThreads }

// Now returns the current virtual time.
func (t *Thread) Now() sim.Time { return t.p.Now() }

// Compute charges d of pure computation to the thread — the modeled cost
// of the application code between shared-memory operations.
func (t *Thread) Compute(d sim.Duration) {
	t.Stats.ComputeTime += d
	t.p.Sleep(d)
}

// Malloc allocates size bytes of shared memory via the manager and
// returns the application-view address, exactly like the paper's
// malloc-like API: the pointer is used normally afterwards; sharing is
// managed per-minipage underneath.
func (t *Thread) Malloc(size int) uint64 {
	start := t.p.Now()
	c := t.host.costs()
	if t.host.id == managerHost {
		// On the manager host, malloc is an in-process call on the MPT,
		// as in the real library — no protocol messages (though DIR_INITs
		// may be sent to remote homes under HomeBased management).
		t.p.Sleep(c.MallocBase + c.MPTLookup)
		info, va, owner := t.host.sys.mgrs[managerHost].allocLocal(t.p, t.host.id, size)
		if owner {
			t.p.Sleep(c.SetProt)
			if err := t.host.Region.Protect(info.Base, info.Size, vm.ReadWrite); err != nil {
				panic(err)
			}
		}
		t.Stats.MallocTime += t.p.Now().Sub(start)
		return va
	}
	fw := t.waitSlot()
	t.host.send(t.p, managerHost, &pmsg{Type: mAllocReq, From: t.host.id, AllocSize: size, FW: fw})
	t.host.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	t.host.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake)
	t.Stats.MallocTime += t.p.Now().Sub(start)
	return fw.va
}

// Read copies len(buf) bytes of shared memory at va into buf, faulting
// and fetching minipages as needed.
func (t *Thread) Read(va uint64, buf []byte) {
	if err := t.host.AS.Access(t, va, buf, vm.Read); err != nil {
		panic(fmt.Sprintf("dsm: thread %d: read %#x: %v", t.ID, va, err))
	}
}

// Write stores data into shared memory at va.
func (t *Thread) Write(va uint64, data []byte) {
	if err := t.host.AS.Access(t, va, data, vm.Write); err != nil {
		panic(fmt.Sprintf("dsm: thread %d: write %#x: %v", t.ID, va, err))
	}
}

// ReadU32 reads a shared little-endian uint32.
func (t *Thread) ReadU32(va uint64) uint32 {
	v, err := t.host.AS.ReadU32(t, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU32 writes a shared little-endian uint32.
func (t *Thread) WriteU32(va uint64, v uint32) {
	if err := t.host.AS.WriteU32(t, va, v); err != nil {
		panic(err)
	}
}

// ReadU64 reads a shared little-endian uint64.
func (t *Thread) ReadU64(va uint64) uint64 {
	v, err := t.host.AS.ReadU64(t, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteU64 writes a shared little-endian uint64.
func (t *Thread) WriteU64(va uint64, v uint64) {
	if err := t.host.AS.WriteU64(t, va, v); err != nil {
		panic(err)
	}
}

// ReadF64 reads a shared float64.
func (t *Thread) ReadF64(va uint64) float64 {
	v, err := t.host.AS.ReadF64(t, va)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteF64 writes a shared float64.
func (t *Thread) WriteF64(va uint64, v float64) {
	if err := t.host.AS.WriteF64(t, va, v); err != nil {
		panic(err)
	}
}

// Barrier blocks until every application thread in the cluster arrives.
func (t *Thread) Barrier() {
	start := t.p.Now()
	c := t.host.costs()
	t.p.Sleep(c.BarrierBase)
	fw := t.waitSlot()
	t.host.send(t.p, managerHost, &pmsg{Type: mBarrierArrive, From: t.host.id, FW: fw})
	t.host.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	t.host.ep.SetBusy(+1)
	t.p.Sleep(c.ThreadWake)
	t.Stats.SynchTime += t.p.Now().Sub(start)
	t.Stats.Barriers++
}

// Lock acquires the cluster-wide lock with the given id (FIFO at the
// manager).
func (t *Thread) Lock(id int) {
	start := t.p.Now()
	fw := t.waitSlot()
	t.host.send(t.p, managerHost, &pmsg{Type: mLockReq, From: t.host.id, LockID: id, FW: fw})
	t.host.ep.SetBusy(-1)
	fw.ev.Wait(t.p)
	t.host.ep.SetBusy(+1)
	t.p.Sleep(t.host.costs().ThreadWake)
	t.Stats.SynchTime += t.p.Now().Sub(start)
	t.Stats.LockOps++
}

// Unlock releases the lock with the given id. The release is
// asynchronous; the manager grants it to the next waiter in FIFO order.
func (t *Thread) Unlock(id int) {
	start := t.p.Now()
	t.host.send(t.p, managerHost, &pmsg{Type: mUnlock, From: t.host.id, LockID: id})
	t.Stats.SynchTime += t.p.Now().Sub(start)
	t.Stats.LockOps++
}

// Prefetch asynchronously requests a read copy of the minipage(s) backing
// [va, va+size). If the region is already readable it is a no-op. The
// paper inserts two such calls in LU to hide its large minipage service
// delays (Section 4.3.1).
func (t *Thread) Prefetch(va uint64, size int) {
	start := t.p.Now()
	if prot, err := t.host.AS.ProtOf(va); err == nil && prot >= vm.ReadOnly {
		return
	}
	if t.inPrefetchSpan(va) {
		return
	}
	t.host.prefetchSpans = append(t.host.prefetchSpans, span{base: va, size: size})
	fw := &faultWait{ev: sim.NewEvent(t.host.sys.Eng)}
	home, info := t.host.route(t.p, va)
	t.host.send(t.p, home, &pmsg{Type: mReadReq, From: t.host.id, Addr: va, Info: info, Prefetch: true, FW: fw})
	t.Stats.Prefetches++
	t.Stats.PrefetchTime += t.p.Now().Sub(start)
}

// Push replicates the minipage containing va (which this thread's host
// must currently hold writable) to every host as a read copy — the
// paper's modification to TSP's minimal-tour bound: "it pushes readable
// copies of the new value to all hosts".
func (t *Thread) Push(va uint64) {
	home, info := t.host.route(t.p, va)
	t.host.send(t.p, home, &pmsg{Type: mPushReq, From: t.host.id, Addr: va, Info: info})
}

// Span names a shared region for group operations.
type Span struct {
	Addr uint64
	Size int
}

// GangFetch realizes the paper's composed-views proposal (Section 5):
// treat a group of minipages as one higher-level unit for fetching. All
// missing members are requested concurrently and the thread blocks once
// for the whole group, so the group's fetch latency is the slowest
// member rather than the sum — the "coarse grain operation mode" for
// read phases, without giving up fine-grain write sharing.
func (t *Thread) GangFetch(spans []Span) {
	start := t.p.Now()
	h := t.host
	c := h.costs()
	var evs []*sim.Event
	for _, sp := range spans {
		if prot, err := h.AS.ProtOf(sp.Addr); err != nil || prot >= vm.ReadOnly {
			continue
		}
		if t.inPrefetchSpan(sp.Addr) {
			continue
		}
		h.prefetchSpans = append(h.prefetchSpans, span{base: sp.Addr, size: sp.Size})
		fw := &faultWait{ev: sim.NewEvent(h.sys.Eng)}
		home, info := h.route(t.p, sp.Addr)
		h.send(t.p, home, &pmsg{Type: mReadReq, From: h.id, Addr: sp.Addr, Info: info, Prefetch: true, FW: fw})
		evs = append(evs, fw.ev)
		t.Stats.Prefetches++
	}
	if len(evs) > 0 {
		h.ep.SetBusy(-1)
		for _, ev := range evs {
			ev.Wait(t.p)
		}
		h.ep.SetBusy(+1)
		t.p.Sleep(c.ThreadWake)
	}
	t.Stats.PrefetchTime += t.p.Now().Sub(start)
}
