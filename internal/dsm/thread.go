package dsm

import (
	"millipage/internal/cluster"
	"millipage/internal/core"
	"millipage/internal/sim"
	"millipage/internal/vm"
)

// Thread is one application thread's view of the DSM: the entire
// user-facing Millipage API (Section 3.4's library interface). The
// generic surface (memory access, Compute, stats) is the embedded
// substrate thread; this type adds the Millipage protocol operations.
// All methods must be called from the thread's own body function.
type Thread struct {
	*cluster.Thread
	host *Host

	// reqMsg is the thread's reusable fault-request header (clean path
	// only). A fault transaction never references the request after the
	// faulting thread wakes — the home forwards a copy and clears
	// pendingWrite before granting — so one slot per thread suffices.
	reqMsg pmsg

	// pfSeq numbers this thread's prefetches for the replicated path's
	// private prefetch transaction identity (see sendPrefetch).
	pfSeq int
}

// prefetchRetryMax caps the doubling prefetch re-send backoff, matching
// the fault path's retry ceiling.
const prefetchRetryMax = 200 * sim.Millisecond

// sendPrefetch issues one prefetch request for the minipage backing va.
// Under replicated management with fault injection the request gets a
// private transaction identity — TID from a space disjoint from thread
// ids, so prefetch dedup never interferes with the thread's own txn
// monotonicity — and is re-sent on a timer (recomputing the believed
// primary) until satisfied: a prefetch dropped at a deposed primary must
// not stall a waiting GangFetch.
func (t *Thread) sendPrefetch(p *sim.Proc, va uint64, home int, info core.Info, fw *cluster.Wait) {
	h := t.host
	req := &pmsg{Type: mReadReq, From: h.ID(), Addr: va, Info: info, Prefetch: true, FW: fw}
	if h.sys.replAt(h.ID()) != nil && h.sys.rt.Faulty() {
		t.pfSeq++
		req.TID = h.sys.rt.TotalThreads()*t.pfSeq + t.ID
		req.Txn = 1
		fw.Txn = 1
		sh := h.Shard()
		delay := requestRetryBase
		var rearm func()
		rearm = func() {
			if fw.Ev.IsSet() {
				return
			}
			cp := *req
			cp.Requeued = false
			cp.Redrive = false
			h.Send(nil, h.primaryFor(info.ID), &cp)
			if delay *= 2; delay > prefetchRetryMax {
				delay = prefetchRetryMax
			}
			sh.After(delay, rearm)
		}
		sh.After(delay, rearm)
	}
	h.Send(p, home, req)
	t.Stats.Prefetches++
}

// ThreadStats is the per-thread execution-time breakdown reported in
// Figure 6 (right); it lives in internal/cluster so every protocol
// reports the same categories.
type ThreadStats = cluster.ThreadStats

// Malloc allocates size bytes of shared memory via the manager and
// returns the application-view address, exactly like the paper's
// malloc-like API: the pointer is used normally afterwards; sharing is
// managed per-minipage underneath.
func (t *Thread) Malloc(size int) uint64 {
	p := t.Proc()
	start := p.Now()
	c := t.host.Costs()
	if t.host.ID() == managerHost {
		// On the manager host, malloc is an in-process call on the MPT,
		// as in the real library — no protocol messages (though DIR_INITs
		// may be sent to remote homes under HomeBased management).
		p.Sleep(c.MallocBase + c.MPTLookup)
		info, va, owner := t.host.sys.mgrs[managerHost].allocLocal(p, t.host.ID(), size)
		if owner {
			p.Sleep(c.SetProt)
			if err := t.host.Region.Protect(info.Base, info.Size, vm.ReadWrite); err != nil {
				panic(err)
			}
		}
		t.Stats.MallocTime += p.Now().Sub(start)
		return va
	}
	fw := t.WaitSlot()
	req := t.host.allocPM()
	*req = pmsg{Type: mAllocReq, From: t.host.ID(), AllocSize: size, FW: fw}
	t.host.Send(p, managerHost, req)
	t.Block(fw)
	p.Sleep(c.ThreadWake)
	t.Stats.MallocTime += p.Now().Sub(start)
	return fw.VA
}

// Barrier blocks until every application thread in the cluster arrives.
func (t *Thread) Barrier() {
	p := t.Proc()
	start := p.Now()
	c := t.host.Costs()
	p.Sleep(c.BarrierBase)
	fw := t.WaitSlot()
	req := t.host.allocPM()
	*req = pmsg{Type: mBarrierArrive, From: t.host.ID(), FW: fw}
	t.host.Send(p, managerHost, req)
	t.Block(fw)
	p.Sleep(c.ThreadWake)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.Barriers++
}

// Lock acquires the cluster-wide lock with the given id (FIFO at the
// manager).
func (t *Thread) Lock(id int) {
	p := t.Proc()
	start := p.Now()
	fw := t.WaitSlot()
	req := t.host.allocPM()
	*req = pmsg{Type: mLockReq, From: t.host.ID(), LockID: id, FW: fw}
	t.host.Send(p, managerHost, req)
	t.Block(fw)
	p.Sleep(t.host.Costs().ThreadWake)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// Unlock releases the lock with the given id. The release is
// asynchronous; the manager grants it to the next waiter in FIFO order.
func (t *Thread) Unlock(id int) {
	p := t.Proc()
	start := p.Now()
	req := t.host.allocPM()
	*req = pmsg{Type: mUnlock, From: t.host.ID(), LockID: id}
	t.host.Send(p, managerHost, req)
	t.Stats.SynchTime += p.Now().Sub(start)
	t.Stats.LockOps++
}

// Prefetch asynchronously requests a read copy of the minipage(s) backing
// [va, va+size). If the region is already readable it is a no-op. The
// paper inserts two such calls in LU to hide its large minipage service
// delays (Section 4.3.1).
func (t *Thread) Prefetch(va uint64, size int) {
	p := t.Proc()
	start := p.Now()
	if prot, err := t.host.AS.ProtOf(va); err == nil && prot >= vm.ReadOnly {
		return
	}
	if t.inPrefetchSpan(va) {
		return
	}
	t.host.prefetchSpans = append(t.host.prefetchSpans, span{base: va, size: size})
	fw := cluster.NewWait(t.host.sys.Eng)
	home, info := t.host.route(p, va)
	t.sendPrefetch(p, va, home, info, fw)
	t.Stats.PrefetchTime += p.Now().Sub(start)
}

// Push replicates the minipage containing va (which this thread's host
// must currently hold writable) to every host as a read copy — the
// paper's modification to TSP's minimal-tour bound: "it pushes readable
// copies of the new value to all hosts".
func (t *Thread) Push(va uint64) {
	p := t.Proc()
	home, info := t.host.route(p, va)
	req := t.host.allocPM()
	*req = pmsg{Type: mPushReq, From: t.host.ID(), Addr: va, Info: info}
	t.host.Send(p, home, req)
}

// Span names a shared region for group operations.
type Span struct {
	Addr uint64
	Size int
}

// GangFetch realizes the paper's composed-views proposal (Section 5):
// treat a group of minipages as one higher-level unit for fetching. All
// missing members are requested concurrently and the thread blocks once
// for the whole group, so the group's fetch latency is the slowest
// member rather than the sum — the "coarse grain operation mode" for
// read phases, without giving up fine-grain write sharing.
func (t *Thread) GangFetch(spans []Span) {
	p := t.Proc()
	start := p.Now()
	h := t.host
	c := h.Costs()
	var evs []*sim.Event
	for _, sp := range spans {
		if prot, err := h.AS.ProtOf(sp.Addr); err != nil || prot >= vm.ReadOnly {
			continue
		}
		if t.inPrefetchSpan(sp.Addr) {
			continue
		}
		h.prefetchSpans = append(h.prefetchSpans, span{base: sp.Addr, size: sp.Size})
		fw := cluster.NewWait(h.sys.Eng)
		home, info := h.route(p, sp.Addr)
		t.sendPrefetch(p, sp.Addr, home, info, fw)
		evs = append(evs, fw.Ev)
	}
	if len(evs) > 0 {
		h.EP.SetBusy(-1)
		for _, ev := range evs {
			ev.Wait(p)
		}
		h.EP.SetBusy(+1)
		p.Sleep(c.ThreadWake)
	}
	t.Stats.PrefetchTime += p.Now().Sub(start)
}
