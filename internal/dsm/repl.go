package dsm

import (
	"fmt"
	"sort"

	"millipage/internal/hostset"
	"millipage/internal/sim"
	"millipage/internal/viewsvc"
)

// This file is the replicated-management layer (Options.Replication): a
// primary/backup pair per directory shard, coordinated by a viewsvc
// instance on host 0 (the allocation authority, which the crash model
// already treats as immortal for allocation and synchronization).
//
// Shard k is the directory natively homed at host k. The shard's current
// primary serves it; before any directory *effect* escapes (a forward, a
// grant, an invalidate burst, a close), the primary mirrors the mutation
// to the view's backup and waits for the ack — mirror-before-effect. On
// the primary's death the view service promotes the synced backup, which
// replays its mirror: completed transactions are re-driven (they converge
// — see Redrive in msg.go) and the shard re-serves with no state lost.
// Requesters need no view awareness beyond routing: they send to the host
// they believe is primary, stale primaries forward, and the TID/Txn retry
// identity dedups across the handoff.
const (
	pingInterval = 300 * sim.Microsecond
	tickInterval = 500 * sim.Microsecond
	// deadAfter tolerates four lost heartbeats before declaring a host
	// dead. Heartbeats travel a dedicated out-of-band channel (see
	// startReplDaemons) that crashes and partitions cut but stochastic
	// frame loss does not, so this can stay tight: a real crash is
	// detected in ~1.5ms and the backup promotes on the next tick.
	deadAfter = 4 * pingInterval
	// hbLatency is the heartbeat channel's fixed one-way delay.
	hbLatency = 10 * sim.Microsecond
)

// mirKind discriminates mirror records.
type mirKind int

const (
	mirIntent mirKind = iota // txn admitted: entry busy, openMsg recorded
	mirClose                 // txn closed: final copyset/owner, done entry
	mirSeed                  // directory seed (DIR_INIT twin) for the shadow
	mirState                 // full shard snapshot (state transfer)
)

// mirrorRec is one replicated directory mutation (or a full snapshot).
// It travels by pointer and is echoed verbatim in the ack.
type mirrorRec struct {
	Kind  mirKind
	Shard int    // directory shard (native home host id)
	View  uint64 // primary's view number when sent
	Seq   uint64 // per-(shard,view) FIFO sequence, for ack matching
	ID    int    // minipage id (mirIntent/mirClose/mirSeed)

	// mirIntent: the admitted request (by value: the original keeps
	// mutating at the primary) plus the entry's pre-transaction state.
	Intent     pmsg
	PreCopyset hostset.Set
	PreOwner   int

	// mirClose: the entry's post-transaction state and the dedup record.
	Copyset hostset.Set
	Owner   int
	TID     int
	Txn     uint64

	// mirState: the full shard snapshot.
	State *xferState
}

// xferState is a full shard snapshot for a fresh backup. All slices are
// sorted (by id / TID) so the transfer is deterministic.
type xferEntry struct {
	ID      int
	Copyset hostset.Set
	Owner   int
	Busy    bool
	Intent  pmsg // valid when Busy: the open transaction's request
}

type doneRec struct {
	TID int
	Txn uint64
}

type xferState struct {
	Entries []xferEntry
	Done    []doneRec // completed-transaction high-water marks
}

// shardServe is the primary-side state for one shard this host serves.
type shardServe struct {
	shard    int
	num      uint64 // view number under which we serve
	mirrorTo int    // current backup, -1 for solo (effects release immediately)
	seq      uint64 // next mirror sequence

	// pending holds mirror continuations in FIFO order; pending[0]
	// matches the next ack.
	pending []pendingMirror
}

type pendingMirror struct {
	seq uint64
	run func(p *sim.Proc)
}

// shardShadow is the backup-side mirror of a shard: enough to promote.
type shardShadow struct {
	shard   int
	num     uint64 // view number we believe for this shard
	entries map[int]*dirEntry
	intents map[int]pmsg // open transactions by minipage id
	done    map[int]uint64
}

// ReplStats counts replication-layer activity (test observability).
type ReplStats struct {
	MirrorsSent uint64
	MirrorNaks  uint64
	Promotions  uint64
	Demotions   uint64
	Redrives    uint64
	StateXfers  uint64
	Forwards    uint64 // misrouted requests forwarded to the believed primary
	ReAcks      uint64 // duplicate replies re-acked by requesters
}

// replMgr is one host's replication layer: its view table, the shards it
// serves as primary, and the shadows it keeps as backup. Host 0's
// instance additionally embeds the view service.
type replMgr struct {
	mg *manager
	me int

	views   []viewsvc.View
	serving map[int]*shardServe
	shadows map[int]*shardShadow

	svc      *viewsvc.Service // non-nil on host 0 only
	xferSent map[int]uint64   // shard -> view num of last state transfer sent

	pushSeq int // manager-assigned TIDs for unstamped push requests

	Stats ReplStats
}

func newReplMgr(mg *manager) *replMgr {
	rp := &replMgr{
		mg: mg, me: mg.me,
		serving:  make(map[int]*shardServe),
		shadows:  make(map[int]*shardShadow),
		xferSent: make(map[int]uint64),
	}
	return rp
}

func (rp *replMgr) host() *Host { return rp.mg.host() }

// initRepl wires the replication layer into a freshly built System: one
// replMgr per host, the view service on host 0, and everyone primary of
// their native shard under the initial views.
func (s *System) initRepl() {
	hosts := s.Opt.Hosts
	s.repl = make([]*replMgr, hosts)
	for i := 0; i < hosts; i++ {
		rp := newReplMgr(s.mgrs[i])
		if i == managerHost {
			rp.svc = viewsvc.New(hosts, int64(deadAfter))
			rp.views = rp.svc.Views()
		} else {
			rp.views = viewsvc.New(hosts, int64(deadAfter)).Views()
		}
		for k, v := range rp.views {
			if v.Primary == i {
				rp.serving[k] = &shardServe{shard: k, num: v.Num, mirrorTo: v.Backup}
			}
			if v.Backup == i {
				rp.shadows[k] = newShadow(k, v.Num)
			}
		}
		s.repl[i] = rp
	}
}

func newShadow(shard int, num uint64) *shardShadow {
	return &shardShadow{
		shard:   shard,
		num:     num,
		entries: make(map[int]*dirEntry),
		intents: make(map[int]pmsg),
		done:    make(map[int]uint64),
	}
}

// hbLinkUp reports whether the out-of-band heartbeat channel from host h
// to host 0 is up at virtual time now: severed while either end is
// inside a crash window or while the two are partitioned, untouched by
// the data path's stochastic drop/dup/jitter. Both fault features are
// static windows in the plan, so this is deterministic.
func (s *System) hbLinkUp(h int, now sim.Time) bool {
	pl := s.Opt.Faults
	if !pl.Enabled() {
		return true
	}
	for _, c := range pl.Crashes {
		if now < c.At || now >= c.RestartAt {
			continue
		}
		if c.Host == h || c.Host == managerHost {
			return false
		}
	}
	ba, b0 := uint64(1)<<uint(h), uint64(1)<<uint(managerHost)
	for _, pt := range pl.Partitions {
		if now < pt.From || now >= pt.Until {
			continue
		}
		if (pt.A&ba != 0 && pt.B&b0 != 0) || (pt.A&b0 != 0 && pt.B&ba != 0) {
			return false
		}
	}
	return true
}

// startReplDaemons spawns the heartbeat daemons (hosts 1..n-1) and the
// view-service tick daemon (host 0). Daemons do not keep Run alive.
//
// Heartbeats deliberately bypass the reliable data transport: a failure
// detector sharing the go-back-N sessions conflates congestion with
// death — one dropped wire frame silences the ping stream for a full
// retransmission timeout (3ms minimum, exponentially backed off), so
// any usefully tight deadAfter flaps continuously under lossy
// schedules and the view churns forever. They are modeled instead as a
// dedicated management channel (the out-of-band UDP path real clusters
// use for liveness): crashes and partitions sever it, but it carries no
// payload and is not subject to the data wire's stochastic faults.
func (s *System) startReplDaemons() {
	rp0 := s.repl[managerHost]
	for i := 1; i < s.Opt.Hosts; i++ {
		h := s.hosts[i]
		me := i
		sh := h.Shard()
		sh.SpawnDaemon(fmt.Sprintf("repl-ping-%d", i), func(p *sim.Proc) {
			for {
				if s.hbLinkUp(me, p.Now()) {
					at := int64(p.Now()) + int64(hbLatency)
					sh.After(hbLatency, func() {
						rp0.svc.Heartbeat(me, at)
					})
				}
				p.Sleep(pingInterval)
			}
		})
	}
	if s.Opt.Hosts < 2 {
		return
	}
	h0 := s.hosts[managerHost]
	h0.Shard().SpawnDaemon("repl-tick", func(p *sim.Proc) {
		for {
			p.Sleep(tickInterval)
			now := int64(p.Now())
			rp0.svc.Heartbeat(managerHost, now)
			if rp0.svc.Tick(now) {
				views := rp0.svc.Views()
				rp0.applyViews(p, views)
				for i := 1; i < s.Opt.Hosts; i++ {
					upd := &pmsg{Type: mViewUpdate, Views: rp0.svc.Views()}
					h0.Send(nil, i, upd)
				}
			}
		}
	})
}

// primaryOf returns the host this replMgr believes currently serves the
// directory shard of minipage id.
func (rp *replMgr) primaryOf(id int) int {
	return rp.views[rp.mg.sys.homeOf(id)].Primary
}

// primaryFor is the host-side routing hook: the believed primary for
// minipage id, or the native home when replication is off.
func (h *Host) primaryFor(id int) int {
	if rp := h.sys.replAt(h.ID()); rp != nil {
		return rp.primaryOf(id)
	}
	return h.sys.homeOf(id)
}

// replAt returns host i's replication layer, nil when replication is off.
func (s *System) replAt(i int) *replMgr {
	if s.repl == nil {
		return nil
	}
	return s.repl[i]
}

// ---------------------------------------------------------------------
// Dispatch: the replicated front door for directory traffic.
// ---------------------------------------------------------------------

// dispatchDir routes one directory-bound message under replication.
// Serving shards dispatch locally; anything else is forwarded to the
// believed primary (dropped if that is ourselves with no serving state:
// the view will catch up and the requester's retry re-delivers).
func (rp *replMgr) dispatchDir(p *sim.Proc, m *pmsg) {
	switch m.Type {
	case mPing:
		rp.svc.Heartbeat(m.From, int64(p.Now()))
		return
	case mViewUpdate:
		rp.applyViews(p, m.Views)
		return
	case mMirror:
		rp.handleMirror(p, m)
		return
	case mMirrorAck:
		rp.handleMirrorAck(p, m)
		return
	case mMirrorNak:
		rp.handleMirrorNak(p, m)
		return
	case mStateXfer:
		rp.handleStateXfer(p, m)
		return
	case mSyncAck:
		rp.svc.AckSync(m.Mir.Shard, m.From, m.Mir.View)
		return
	case mDirInit:
		rp.handleSeed(p, m)
		return
	}

	shard := rp.mg.sys.homeOf(m.Info.ID)
	if _, ok := rp.serving[shard]; ok {
		rp.mg.dispatch(p, m)
		return
	}
	// Not serving: forward to the believed primary. If we believe that is
	// ourselves the view is stale in a way forwarding can't fix — drop,
	// the requester's retry will find the promoted primary.
	if to := rp.views[shard].Primary; to != rp.me {
		rp.Stats.Forwards++
		fwd := &pmsg{}
		*fwd = *m
		fwd.Requeued = false
		rp.host().Send(p, to, fwd)
	}
}

// handleSeed installs a directory seed. The allocation authority sends a
// seed to both the shard's primary (who serves it) and its backup (who
// shadows it); either may be this host, in any view.
func (rp *replMgr) handleSeed(p *sim.Proc, m *pmsg) {
	id := m.Info.ID
	shard := rp.mg.sys.homeOf(id)
	if _, ok := rp.serving[shard]; ok {
		if rp.mg.entryOrNil(id) == nil {
			rp.mg.setEntry(id, rp.mg.newEntry(hostset.One(m.From), m.From))
			if q := rp.mg.waitInit[id]; len(q) > 0 {
				delete(rp.mg.waitInit, id)
				for _, held := range q {
					held.Requeued = true
					rp.mg.dispatch(p, held)
				}
			}
		}
		return
	}
	if sh, ok := rp.shadows[shard]; ok {
		if _, dup := sh.entries[id]; !dup {
			sh.entries[id] = &dirEntry{copyset: hostset.One(m.From), owner: m.From}
		}
		return
	}
	// Neither serving nor shadowing: a stale seed for a shard that moved
	// on. The authority re-seeds the live pair; drop.
}

// seedRepl places the directory seed for freshly allocated minipage id
// with both the shard's current primary and backup, per this host's
// authoritative view service (it runs only on host 0). Local targets are
// applied in-process; handleSeed is idempotent on re-seeds.
func (mg *manager) seedRepl(p *sim.Proc, rp *replMgr, id, from int) {
	shard := mg.sys.homeOf(id)
	v := rp.svc.View(shard)
	mp, _ := mg.sys.mpt.ByID(id)
	info := mp.Info(mg.sys.Layout)
	targets := [2]int{v.Primary, -1}
	if v.HasBackup() {
		targets[1] = v.Backup
	}
	for _, to := range targets {
		if to < 0 {
			continue
		}
		if to == mg.me {
			rp.handleSeed(p, &pmsg{Type: mDirInit, From: from, Info: info})
			continue
		}
		init := &pmsg{Type: mDirInit, From: from, Info: info}
		mg.host().Send(p, to, init)
	}
}

// ---------------------------------------------------------------------
// Primary side: mirror-before-effect.
// ---------------------------------------------------------------------

// commitIntent admits request m on entry e: records the open transaction,
// mirrors the admission, and runs the effect (run) once the backup acks —
// immediately when serving solo. Pushes arrive unstamped; the manager
// assigns them a private negative TID so acks can be matched.
func (mg *manager) commitIntent(p *sim.Proc, e *dirEntry, m *pmsg, run func(p *sim.Proc)) {
	rp := mg.sys.replAt(mg.me)
	if rp == nil {
		run(p)
		return
	}
	if m.Type == mPushReq && m.Txn == 0 {
		// Pushes arrive unstamped (fire-and-forget, no waiting thread):
		// assign a manager-private negative TID so acks can be matched.
		rp.pushSeq++
		m.TID = -rp.pushSeq
		m.Txn = 1
	}
	e.openTID, e.openTxn = m.TID, m.Txn
	e.openMsg = *m
	e.preCopyset, e.preOwner = e.copyset, e.owner

	shard := mg.sys.homeOf(m.Info.ID)
	sv := rp.serving[shard]
	if sv == nil {
		panic(fmt.Sprintf("dsm: host %d admitted txn for shard %d it does not serve", mg.me, shard))
	}
	rec := &mirrorRec{
		Kind: mirIntent, Shard: shard, View: sv.num, ID: m.Info.ID,
		Intent: *m, PreCopyset: e.preCopyset, PreOwner: e.preOwner,
	}
	rp.mirror(p, sv, rec, run)
}

// commitClose closes the open transaction on e: mirrors the final entry
// state plus the dedup record, then (on ack) clears the open markers and
// runs closeTxn. handleAck already recorded done[tid] locally.
func (mg *manager) commitClose(p *sim.Proc, e *dirEntry, id int, tid int, txn uint64) {
	rp := mg.sys.replAt(mg.me)
	if rp == nil {
		mg.closeTxn(p, e)
		return
	}
	shard := mg.sys.homeOf(id)
	sv := rp.serving[shard]
	if sv == nil {
		// Demoted with the transaction open: the new primary re-drives it
		// from the mirror; nothing to close here.
		return
	}
	rec := &mirrorRec{
		Kind: mirClose, Shard: shard, View: sv.num, ID: id,
		Copyset: e.copyset, Owner: e.owner, TID: tid, Txn: txn,
	}
	rp.mirror(p, sv, rec, func(p *sim.Proc) {
		e.openTID, e.openTxn = 0, 0
		e.openMsg = pmsg{}
		mg.closeTxn(p, e)
	})
}

// mirror sends rec to the shard's backup and queues run behind the ack;
// with no backup the effect releases immediately.
func (rp *replMgr) mirror(p *sim.Proc, sv *shardServe, rec *mirrorRec, run func(p *sim.Proc)) {
	if sv.mirrorTo < 0 {
		run(p)
		return
	}
	sv.seq++
	rec.Seq = sv.seq
	rp.Stats.MirrorsSent++
	mir := &pmsg{Type: mMirror, From: rp.me, Mir: rec}
	rp.host().Send(p, sv.mirrorTo, mir)
	sv.pending = append(sv.pending, pendingMirror{seq: rec.Seq, run: run})
}

// handleMirrorAck releases the oldest pending effect. Acks for a stale
// view (a departed backup's) are dropped.
func (rp *replMgr) handleMirrorAck(p *sim.Proc, m *pmsg) {
	rec := m.Mir
	sv, ok := rp.serving[rec.Shard]
	if !ok || rec.View != sv.num || len(sv.pending) == 0 || sv.pending[0].seq != rec.Seq {
		return
	}
	next := sv.pending[0]
	sv.pending = sv.pending[1:]
	next.run(p)
}

// handleMirrorNak demotes this primary if the naker has seen a newer
// view (its believed number rides in pmsg.Txn).
func (rp *replMgr) handleMirrorNak(p *sim.Proc, m *pmsg) {
	rec := m.Mir
	sv, ok := rp.serving[rec.Shard]
	if !ok {
		return
	}
	if m.Txn > sv.num {
		rp.demote(rec.Shard)
	}
}

// ---------------------------------------------------------------------
// Backup side: the shadow.
// ---------------------------------------------------------------------

// handleMirror applies one mirrored mutation to the shard's shadow, or
// Naks it when the sender's view is stale (our believed number rides in
// the nak's pmsg.Txn).
func (rp *replMgr) handleMirror(p *sim.Proc, m *pmsg) {
	rec := m.Mir
	shard := rec.Shard
	if _, srv := rp.serving[shard]; srv || rec.View < rp.views[shard].Num {
		rp.Stats.MirrorNaks++
		nak := &pmsg{Type: mMirrorNak, From: rp.me, Txn: rp.views[shard].Num, Mir: rec}
		rp.host().Send(p, m.From, nak)
		return
	}
	sh := rp.shadows[shard]
	if sh == nil || sh.num < rec.View {
		if sh == nil {
			sh = newShadow(shard, rec.View)
			rp.shadows[shard] = sh
		}
		sh.num = rec.View
	}
	switch rec.Kind {
	case mirIntent:
		e := sh.entries[rec.ID]
		if e == nil {
			e = &dirEntry{}
			sh.entries[rec.ID] = e
		}
		e.copyset, e.owner = rec.PreCopyset, rec.PreOwner
		e.busy = true
		sh.intents[rec.ID] = rec.Intent
	case mirClose:
		e := sh.entries[rec.ID]
		if e == nil {
			e = &dirEntry{}
			sh.entries[rec.ID] = e
		}
		e.copyset, e.owner = rec.Copyset, rec.Owner
		e.busy = false
		delete(sh.intents, rec.ID)
		if rec.Txn > sh.done[rec.TID] {
			sh.done[rec.TID] = rec.Txn
		}
	}
	ack := &pmsg{Type: mMirrorAck, From: rp.me, Mir: rec}
	rp.host().Send(p, m.From, ack)
}

// handleStateXfer installs a full shard snapshot as this host's shadow
// and acks the sync to the view service.
func (rp *replMgr) handleStateXfer(p *sim.Proc, m *pmsg) {
	rec := m.Mir
	shard := rec.Shard
	if rec.View < rp.views[shard].Num {
		return // stale transfer from a deposed primary
	}
	if _, srv := rp.serving[shard]; srv {
		if rec.View <= rp.views[shard].Num {
			return
		}
		// A newer primary exists: we were deposed without hearing it.
		rp.demote(shard)
	}
	sh := newShadow(shard, rec.View)
	for _, xe := range rec.State.Entries {
		e := &dirEntry{copyset: xe.Copyset, owner: xe.Owner, busy: xe.Busy}
		sh.entries[xe.ID] = e
		if xe.Busy {
			sh.intents[xe.ID] = xe.Intent
		}
	}
	for _, d := range rec.State.Done {
		sh.done[d.TID] = d.Txn
	}
	rp.shadows[shard] = sh
	rp.Stats.StateXfers++
	ack := &pmsg{Type: mSyncAck, From: rp.me, Mir: &mirrorRec{Shard: shard, View: rec.View}}
	rp.host().Send(p, managerHost, ack)
}

// ---------------------------------------------------------------------
// View changes: promotion, demotion, backup churn.
// ---------------------------------------------------------------------

// applyViews installs a published view table, promoting, demoting and
// re-targeting mirrors as needed. Stale per-shard entries (older numbers
// than we already believe) are skipped.
func (rp *replMgr) applyViews(p *sim.Proc, views []viewsvc.View) {
	for k := 0; k < len(views); k++ {
		nv := views[k]
		if nv.Num < rp.views[k].Num {
			continue
		}
		old := rp.views[k]
		rp.views[k] = nv
		sv, serving := rp.serving[k]

		switch {
		case nv.Primary == rp.me && !serving:
			rp.promote(p, k, nv)
		case nv.Primary != rp.me && serving:
			rp.demote(k)
		case serving && nv.Num > old.Num:
			// Same primary, new view: the backup changed (died, or a fresh
			// one was assigned). Retarget and re-sync.
			sv.num = nv.Num
			rp.retargetBackup(p, k, sv, nv)
		}
	}
}

// retargetBackup points the shard's mirror stream at the new view's
// backup: state-transfer first (so the snapshot precedes incremental
// mirrors in FIFO order), then release effects that were gated on the
// departed backup's acks.
func (rp *replMgr) retargetBackup(p *sim.Proc, k int, sv *shardServe, nv viewsvc.View) {
	sv.mirrorTo = nv.Backup
	if nv.HasBackup() && !nv.Synced && rp.xferSent[k] < nv.Num {
		rp.xferSent[k] = nv.Num
		rp.sendXfer(p, k, sv, nv.Backup)
	}
	rp.flushPending(p, sv)
}

// flushPending releases every effect still gated on a departed backup.
// The snapshot (if one was just sent) captured the pre-effect state;
// re-driving those transactions after a later promotion converges.
func (rp *replMgr) flushPending(p *sim.Proc, sv *shardServe) {
	for len(sv.pending) > 0 {
		next := sv.pending[0]
		sv.pending = sv.pending[1:]
		next.run(p)
	}
}

// sendXfer snapshots the shard and ships it to the fresh backup. Busy
// entries travel as their pre-transaction state plus the open request —
// exactly what the incremental intent mirror would have carried.
func (rp *replMgr) sendXfer(p *sim.Proc, k int, sv *shardServe, to int) {
	mg := rp.mg
	st := &xferState{}
	for id := 0; id < len(mg.dir); id++ {
		e := mg.dir[id]
		if e == nil || mg.sys.homeOf(id) != k {
			continue
		}
		xe := xferEntry{ID: id, Copyset: e.copyset, Owner: e.owner, Busy: e.busy}
		if e.busy {
			xe.Copyset, xe.Owner = e.preCopyset, e.preOwner
			xe.Intent = e.openMsg
		}
		st.Entries = append(st.Entries, xe)
	}
	// Ship only completed transactions (done), never the inflight
	// admission markers: an inflight-only TID may belong to a request
	// that was merely queued here — the queue is not mirrored, its
	// effects never ran, and the requester's retry must be served fresh
	// at the successor, not dropped as a duplicate. Open transactions
	// (admitted, effects possibly escaped) travel as busy entries with
	// their intent and are re-driven instead.
	tids := make([]int, 0, len(mg.done))
	for tid := range mg.done { //detlint:ok keys are sorted before use
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		st.Done = append(st.Done, doneRec{TID: tid, Txn: mg.done[tid]})
	}
	rp.Stats.StateXfers++
	xfer := &pmsg{Type: mStateXfer, From: rp.me,
		Mir: &mirrorRec{Kind: mirState, Shard: k, View: sv.num, State: st}}
	rp.host().Send(p, to, xfer)
}

// promote turns this host's shadow of shard k into live serving state:
// install the entries, merge the dedup records, and re-drive every open
// transaction from its mirrored intent.
func (rp *replMgr) promote(p *sim.Proc, k int, nv viewsvc.View) {
	mg := rp.mg
	sh := rp.shadows[k]
	if sh == nil {
		// Promoted with no shadow: only possible for our native shard in
		// view 1 (initial state) — serve empty.
		sh = newShadow(k, nv.Num)
	}
	delete(rp.shadows, k)
	rp.Stats.Promotions++

	sv := &shardServe{shard: k, num: nv.Num, mirrorTo: nv.Backup}
	rp.serving[k] = sv

	ids := make([]int, 0, len(sh.entries))
	for id := range sh.entries { //detlint:ok keys are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := sh.entries[id]
		ne := mg.newEntry(e.copyset, e.owner)
		mg.setEntry(id, ne)
	}
	// Replay completed transactions into the dedup table so a
	// post-failover duplicate of a finished request is dropped, never
	// redone. Inflight markers are deliberately NOT replayed: a TID the
	// old primary had only queued must retry fresh here (see sendXfer);
	// re-driven open intents re-mark inflight through dropDup below.
	for tid, txn := range sh.done { //detlint:ok max-merge into a map is order-independent
		if txn > mg.done[tid] {
			mg.done[tid] = txn
		}
	}

	if nv.HasBackup() && !nv.Synced && rp.xferSent[k] < nv.Num {
		rp.xferSent[k] = nv.Num
		rp.sendXfer(p, k, sv, nv.Backup)
	}

	// Re-drive open transactions in id order. Redrive bypasses the done
	// check: an intent whose close mirror was lost may have completed at
	// the old primary — re-driving converges, the requester's guards drop
	// the duplicate reply, and its re-ack closes the transaction.
	open := make([]int, 0, len(sh.intents))
	for id := range sh.intents { //detlint:ok keys are sorted before use
		open = append(open, id)
	}
	sort.Ints(open)
	for _, id := range open {
		m := sh.intents[id]
		req := &pmsg{}
		*req = m
		req.Requeued = false
		req.Redrive = true
		rp.Stats.Redrives++
		mg.dispatch(p, req)
	}
}

// demote drops this host's serving state for shard k: a newer primary
// exists, so pending effects must never release here. In-flight
// transactions are re-driven by the successor from its mirror; the local
// directory entries stay (stale but unreachable — dispatchDir forwards).
func (rp *replMgr) demote(k int) {
	if _, ok := rp.serving[k]; !ok {
		return
	}
	delete(rp.serving, k)
	rp.Stats.Demotions++
}

// Serving reports whether host i currently serves shard k (tests).
func (s *System) Serving(i, k int) bool {
	rp := s.replAt(i)
	if rp == nil {
		return s.homeOf(k) == i // degenerate: shard == native home
	}
	_, ok := rp.serving[k]
	return ok
}

// ReplStatsAt returns host i's replication counters (zero value when
// replication is off).
func (s *System) ReplStatsAt(i int) ReplStats {
	if rp := s.replAt(i); rp != nil {
		return rp.Stats
	}
	return ReplStats{}
}

// ViewOf returns host 0's authoritative view of shard k (tests).
func (s *System) ViewOf(k int) viewsvc.View {
	rp := s.replAt(managerHost)
	if rp == nil || rp.svc == nil {
		return viewsvc.View{}
	}
	return rp.svc.View(k)
}
