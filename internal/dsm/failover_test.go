package dsm

import (
	"testing"

	"millipage/internal/faultnet"
	"millipage/internal/sim"
	"millipage/internal/viewsvc"
)

// failoverWatchdog bounds a replicated run's virtual time.
const failoverWatchdog = 10 * sim.Second

func newReplSys(t *testing.T, opt Options) *System {
	t.Helper()
	opt.Management = HomeBased
	opt.Replication = true
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplicationOptionValidation(t *testing.T) {
	if _, err := New(Options{Hosts: 2, SharedSize: 1 << 12, Replication: true}); err == nil {
		t.Fatal("Replication under Central management was accepted")
	}
	if _, err := New(Options{Hosts: 2, SharedSize: 1 << 12, Management: HomeBased,
		Replication: true, Engine: "par"}); err == nil {
		t.Fatal("Replication under the parallel engine was accepted")
	}
}

// TestReplicationCleanRun: with replication on and no faults, every
// workload result is unchanged, every host still serves its native
// shard, and directory effects were mirror-gated (mirrors flowed).
func TestReplicationCleanRun(t *testing.T) {
	s := newReplSys(t, Options{Hosts: 3, SharedSize: 1 << 16, Views: 4})
	rt := s.Runtime()
	rt.Eng.At(sim.Time(failoverWatchdog), rt.Eng.Stop)
	var vas [3]uint64
	var got [3]uint32
	done := 0
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(128) // minipage i, homed at host i
				th.WriteU32(vas[i], uint32(100*(i+1)))
			}
		}
		th.Barrier()
		var sum uint32
		for i := range vas {
			sum += th.ReadU32(vas[i])
		}
		got[th.Host()] = sum
		th.Barrier()
		// A write fault per host exercises the invalidate path too.
		th.WriteU32(vas[th.Host()]+64, uint32(th.Host()))
		th.Barrier()
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("watchdog: %d of 3 threads finished (stalled clean run)", done)
	}
	for h, g := range got {
		if g != 600 {
			t.Fatalf("host %d read sum %d, want 600", h, g)
		}
	}
	var mirrors uint64
	for i := 0; i < 3; i++ {
		if !s.Serving(i, i) {
			t.Fatalf("host %d no longer serves its native shard with no faults", i)
		}
		mirrors += s.ReplStatsAt(i).MirrorsSent
		if st := s.ReplStatsAt(i); st.Promotions != 0 || st.Demotions != 0 {
			t.Fatalf("host %d saw view churn with no faults: %+v", i, st)
		}
	}
	if mirrors == 0 {
		t.Fatal("no directory mutation was mirrored: effects are not mirror-gated")
	}
}

// TestReplicationFailoverMidBurst is the tentpole end-to-end proof: the
// primary of a hot shard is crashed mid-burst, the synced backup
// promotes, and a lock-guarded increment burst against minipages homed
// at the dead host completes exactly-once — long before the crashed
// host restarts.
func TestReplicationFailoverMidBurst(t *testing.T) {
	const (
		hosts    = 4
		victim   = 2
		incsEach = 6
		crashAt  = 2 * sim.Millisecond
		restart  = 2 * sim.Second // far beyond the burst: completion proves no stall
	)
	plan := &faultnet.Plan{
		Seed:    5,
		Crashes: []faultnet.Crash{{Host: victim, At: sim.Time(crashAt), RestartAt: sim.Time(restart)}},
	}
	s := newReplSys(t, Options{Hosts: hosts, SharedSize: 1 << 16, Views: 4, Seed: 3, Faults: plan})
	rt := s.Runtime()
	rt.Eng.At(sim.Time(failoverWatchdog), rt.Eng.Stop)

	var vas [hosts]uint64
	var burstEnd [hosts]sim.Time
	done := 0
	err := s.Run(func(th *Thread) {
		if th.Host() == 0 {
			for i := range vas {
				vas[i] = th.Malloc(128) // minipage i, homed at host i
				th.WriteU32(vas[i], 0)
			}
		}
		th.Barrier() // pre-crash rendezvous: everyone, victim included
		if th.Host() == victim {
			done++
			return // the victim sits out; its host crashes at 2ms
		}
		// Let the crash land and the view service promote (dead after
		// ~1.2ms of silence, ticked every 0.5ms), then hammer the dead
		// host's shard.
		th.Compute(sim.Duration(4 * sim.Millisecond))
		for i := 0; i < incsEach; i++ {
			th.Lock(0)
			v := th.ReadU32(vas[victim])
			th.WriteU32(vas[victim], v+1)
			th.Unlock(0)
		}
		burstEnd[th.Host()] = th.Now()
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != hosts {
		t.Fatalf("watchdog: %d of %d threads finished (stalled failover)", done, hosts)
	}

	// Exactly-once: the lock-guarded counter saw every increment once.
	want := uint32((hosts - 1) * incsEach)
	if got := replReadU32(t, s, vas[victim]); got != want {
		t.Fatalf("counter = %d, want %d (lost or duplicated increments across the view change)", got, want)
	}

	// The burst finished long before the victim's restart: no stall.
	for h, end := range burstEnd {
		if h == victim || vas[h] == 0 {
			continue
		}
		if end == 0 || end >= sim.Time(restart) {
			t.Fatalf("host %d burst ended at %v — stalled until the victim's restart (%v)", h, end, sim.Time(restart))
		}
	}

	// The view service moved the victim's shard to a survivor. (The dead
	// host's own serving flag is stale by design while it is isolated —
	// it demotes when the first post-restart view update or Nak reaches
	// it.)
	v := s.ViewOf(victim)
	if v.Primary == victim || v.Num == 1 {
		t.Fatalf("shard %d still at %+v after its primary died", victim, v)
	}
	if !s.Serving(v.Primary, victim) {
		t.Fatalf("new primary %d of shard %d is not serving it", v.Primary, victim)
	}
	var promos uint64
	for i := 0; i < hosts; i++ {
		promos += s.ReplStatsAt(i).Promotions
	}
	if promos == 0 {
		t.Fatal("no host recorded a promotion")
	}
}

// replReadU32 reads a shared word post-run through the privileged view
// of the minipage's current owner (per the serving primary's directory).
func replReadU32(t *testing.T, s *System, va uint64) uint32 {
	t.Helper()
	mp, ok := s.mpt.Lookup(va)
	if !ok {
		t.Fatalf("no minipage backs %#x", va)
	}
	shard := s.homeOf(mp.ID)
	for i := 0; i < s.NumHosts(); i++ {
		rp := s.replAt(i)
		if _, serving := rp.serving[shard]; !serving {
			continue
		}
		e := s.mgrs[i].entryOrNil(mp.ID)
		if e == nil {
			t.Fatalf("serving host %d has no entry for minipage %d", i, mp.ID)
		}
		var buf [4]byte
		if err := s.hosts[e.owner].Region.ReadPrivInto(va, buf[:]); err != nil {
			t.Fatal(err)
		}
		return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	}
	t.Fatalf("no host serves shard %d", shard)
	return 0
}

// TestPromotionReplaysDedupTable is the satellite-4 regression: before
// this layer, a manager rebuilt its done/inflight dedup tables empty on
// takeover, so a post-failover duplicate of a completed transaction was
// redone against live directory state. Promotion must replay the dedup
// records from the mirror; this fails on the old (no-merge) behavior.
func TestPromotionReplaysDedupTable(t *testing.T) {
	s := newReplSys(t, Options{Hosts: 2, SharedSize: 1 << 14, Views: 2})
	rt := s.Runtime()
	rt.Eng.At(sim.Time(failoverWatchdog), rt.Eng.Stop)
	err := s.Run(func(th *Thread) {
		if th.Host() != 0 {
			return
		}
		va := th.Malloc(64) // minipage 0, shard 0: primary host 0, backup host 1
		th.WriteU32(va, 5)
		p := th.Proc()

		// The allocation seeded host 1's shadow of shard 0. Record a
		// completed transaction in the mirror, as a close record would
		// have, then promote host 1 the way a view change does.
		rp1 := s.repl[1]
		sh := rp1.shadows[0]
		if sh == nil {
			t.Fatal("backup host 1 has no shadow of shard 0")
		}
		sh.done[77] = 3
		rp1.promote(p, 0, viewsvc.View{Num: 9, Primary: 1, Backup: -1})

		mg1 := s.mgrs[1]
		if mg1.done[77] != 3 {
			t.Fatalf("promotion did not replay the dedup table: done=%d", mg1.done[77])
		}
		if mg1.inflight[77] != 0 {
			// Inflight markers must NOT replay: they cover requests the old
			// primary may only have queued, whose retries must serve fresh.
			t.Fatalf("promotion replayed an inflight admission marker: %d", mg1.inflight[77])
		}

		// A duplicate of the completed transaction arrives at the new
		// primary (the requester's retry timer fired across the view
		// change). It must be dropped, never redone.
		mp, _ := s.mpt.Lookup(va)
		e := mg1.entryOrNil(mp.ID)
		if e == nil {
			t.Fatal("promotion did not install the shadow's directory entry")
		}
		preCopy, preOwner := e.copyset, e.owner
		dup := &pmsg{Type: mWriteReq, From: 0, Addr: va, Info: mp.Info(s.Layout), TID: 77, Txn: 3}
		before := mg1.DupRequests
		mg1.dispatch(p, dup)
		if mg1.DupRequests != before+1 {
			t.Fatal("post-failover duplicate of a completed transaction was redone")
		}
		if e.copyset != preCopy || e.owner != preOwner || e.busy {
			t.Fatalf("duplicate mutated the directory: %v/%d -> %v/%d busy=%v",
				preCopy, preOwner, e.copyset, e.owner, e.busy)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplicationSoloPrimaryReleasesEffects: when the view drops a dead
// backup, the primary must flush mirror-gated effects and keep serving
// solo rather than wait for acks that can never come.
func TestReplicationSoloPrimaryReleasesEffects(t *testing.T) {
	const (
		hosts   = 2
		crashAt = 2 * sim.Millisecond
		restart = 2 * sim.Second
	)
	// Host 1 is shard 0's backup; crashing it forces host 0 solo.
	plan := &faultnet.Plan{
		Seed:    11,
		Crashes: []faultnet.Crash{{Host: 1, At: sim.Time(crashAt), RestartAt: sim.Time(restart)}},
	}
	s := newReplSys(t, Options{Hosts: hosts, SharedSize: 1 << 14, Views: 2, Seed: 7, Faults: plan})
	rt := s.Runtime()
	rt.Eng.At(sim.Time(failoverWatchdog), rt.Eng.Stop)

	var va uint64
	var end sim.Time
	done := 0
	err := s.Run(func(th *Thread) {
		if th.Host() != 0 {
			done++
			return
		}
		va = th.Malloc(64)
		th.WriteU32(va, 1)
		th.Compute(sim.Duration(4 * sim.Millisecond)) // backup is dead and dropped by now
		for i := 0; i < 4; i++ {
			v := th.ReadU32(va)
			th.WriteU32(va, v+1)
		}
		end = th.Now()
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != hosts {
		t.Fatal("watchdog: solo primary stalled on its dead backup")
	}
	if end >= sim.Time(restart) {
		t.Fatalf("host 0 finished at %v — waited for the dead backup's restart", end)
	}
	if got := replReadU32(t, s, va); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if v := s.ViewOf(0); v.HasBackup() || v.Num == 1 {
		t.Fatalf("shard 0 view %+v — dead backup not dropped", v)
	}
}
